// Declarative defect-scenario sweep: model x rate-grid x crossbar size
// through the parallel Monte Carlo engine.
//
// Every cell of the sweep runs runDefectExperiment twice (1 and 2 worker
// threads) and asserts bit-identical outcomes — the engine's determinism
// contract must hold for every DefectModel, not just the paper's i.i.d.
// world. Results are emitted as machine-readable JSON (MCX_BENCH_JSON,
// default BENCH_scenarios.json). Each record also carries the analytic
// i.i.d. yield estimate (src/mc/yield_model.hpp) at the cell's rate: it
// tracks the Monte Carlo result under paper-iid and visibly diverges under
// the correlated models (clustering concentrates damage on few rows, line
// failures kill rows/columns outright — both break the independence
// assumption the closed form rests on).
//
// Usage:
//   mcx_bench scenarios [--samples N] [--seed S] [--scenarios a,b,...]
//                       [--rates r1,r2,...] [--circuits c1,c2,...]
//                       [--spec '<json model spec>'] [--sweep '<json sweep spec>']
//                       [--json PATH] [--list]
//
// --sweep takes the whole sweep as one JSON document:
//   {"scenarios": ["clustered", {"model": "lines", "rowClosed": 0.05}],
//    "rates": [0.02, 0.10], "circuits": ["rd53"], "samples": 100, "seed": 7}
// Scenario entries are preset names or inline model specs (see
// src/scenario/registry.hpp for the spec grammar). Env knobs MCX_SAMPLES
// and MCX_BENCH_JSON apply when the flags are absent.
#include <cmath>
#include <fstream>
#include <iostream>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "api/driver.hpp"
#include "circuit/cache.hpp"
#include "circuit/registry.hpp"
#include "defect_sweep.hpp"
#include "map/hybrid_mapper.hpp"
#include "mc/yield_model.hpp"
#include "scenario/registry.hpp"
#include "util/env.hpp"
#include "util/error.hpp"
#include "util/text_table.hpp"

namespace {

using namespace mcx;

struct ScenarioEntry {
  std::string label;
  std::shared_ptr<const DefectModel> fixed;  ///< null = rate-scalable preset
  const ScenarioPreset* preset = nullptr;

  std::shared_ptr<const DefectModel> at(double rate) const {
    return fixed ? fixed : preset->make(rate);
  }
};

struct Sweep {
  std::vector<ScenarioEntry> scenarios;
  std::vector<double> rates;
  std::vector<std::string> circuits{"rd53", "misex1"};
  std::size_t samples = envSizeT("MCX_SAMPLES", 60);
  std::uint64_t seed = 0x5ce7a210;
};

ScenarioEntry entryFromName(const std::string& name) {
  ScenarioEntry entry;
  entry.label = name;
  const ScenarioPreset* preset = findScenarioPreset(name);
  if (preset != nullptr) {
    entry.preset = preset;
  } else {
    entry.fixed = makeScenario(name);  // JSON spec, or throws with the preset list
    entry.label = entry.fixed->describe();
  }
  return entry;
}

/// Comma-split that respects JSON nesting and string quoting: commas
/// inside {...} / [...] or "..." do not separate items, so inline
/// multi-member specs work in --scenarios and --circuits.
std::vector<std::string> splitList(const std::string& csv) {
  std::vector<std::string> out;
  std::string item;
  int depth = 0;
  bool inString = false, escaped = false;
  for (const char c : csv) {
    if (inString) {
      if (escaped) escaped = false;
      else if (c == '\\') escaped = true;
      else if (c == '"') inString = false;
    } else if (c == '"') {
      inString = true;
    } else if (c == '{' || c == '[') {
      ++depth;
    } else if ((c == '}' || c == ']') && depth > 0) {
      --depth;
    } else if (c == ',' && depth == 0) {
      if (!item.empty()) out.push_back(std::move(item));
      item.clear();
      continue;
    }
    item += c;
  }
  if (!item.empty()) out.push_back(std::move(item));
  return out;
}

void applySweepSpec(Sweep& sweep, const std::string& text) {
  const SpecValue spec = parseSpec(text);
  MCX_REQUIRE(spec.isObject(), "--sweep: expected a JSON object");
  for (const auto& [key, value] : spec.members)
    MCX_REQUIRE(key == "scenarios" || key == "rates" || key == "circuits" ||
                    key == "samples" || key == "seed",
                "--sweep: unknown member \"" + key + "\"");
  if (const SpecValue* scenarios = spec.find("scenarios")) {
    MCX_REQUIRE(scenarios->isArray(), "--sweep: \"scenarios\" must be an array");
    sweep.scenarios.clear();
    for (const SpecValue& s : scenarios->array) {
      if (s.kind == SpecValue::Kind::String) {
        sweep.scenarios.push_back(entryFromName(s.string));
      } else {
        ScenarioEntry entry;
        entry.fixed = modelFromSpec(s);
        entry.label = entry.fixed->describe();
        sweep.scenarios.push_back(std::move(entry));
      }
    }
  }
  if (const SpecValue* rates = spec.find("rates")) {
    MCX_REQUIRE(rates->isArray(), "--sweep: \"rates\" must be an array");
    sweep.rates.clear();
    for (const SpecValue& r : rates->array) {
      MCX_REQUIRE(r.kind == SpecValue::Kind::Number,
                  "--sweep: \"rates\" entries must be numbers");
      sweep.rates.push_back(r.number);
    }
  }
  if (const SpecValue* circuits = spec.find("circuits")) {
    MCX_REQUIRE(circuits->isArray(), "--sweep: \"circuits\" must be an array");
    sweep.circuits.clear();
    for (const SpecValue& c : circuits->array) {
      MCX_REQUIRE(c.kind == SpecValue::Kind::String,
                  "--sweep: \"circuits\" entries must be strings");
      sweep.circuits.push_back(c.string);
    }
  }
  // Validate before the unsigned casts: a negative count would be undefined
  // behaviour, and a seed above 2^53 would silently round through double.
  const double samples = spec.numberOr("samples", static_cast<double>(sweep.samples));
  MCX_REQUIRE(samples >= 0.0 && samples <= 1e9, "--sweep: \"samples\" out of range");
  sweep.samples = static_cast<std::size_t>(samples);
  const double seed = spec.numberOr("seed", static_cast<double>(sweep.seed));
  MCX_REQUIRE(seed >= 0.0 && seed <= 9007199254740992.0,  // 2^53
              "--sweep: \"seed\" must be an integer below 2^53");
  sweep.seed = static_cast<std::uint64_t>(seed);
}

/// Execute the sweep; returns the process exit code (0 = deterministic).
int runSweep(const Sweep& sweep, const std::string& jsonPath) {
  // Buffer the JSON and write the file only once the sweep has finished:
  // a mid-sweep error must not clobber a previously committed
  // BENCH_scenarios.json with a truncated document.
  std::ostringstream jsonBuffer;
  JsonWriter json(jsonBuffer);
  json.beginObject();
  json.field("bench", "scenario_runner");
  json.field("samples", sweep.samples);
  json.field("seed", sweep.seed);
  json.field("hardware_concurrency", resolveThreadCount(0));
  json.key("runs").beginArray();

  const HybridMapper mapper;
  TextTable table({"circuit", "scenario", "rate", "Psucc", "analytic iid", "mean ms", "det"});
  bool allDeterministic = true;

  for (const std::string& name : sweep.circuits) {
    // Circuit declarations through the memoized pipeline: registry names
    // keep the fast two-level load (the committed BENCH_scenarios counts
    // pin it), and any file:/pla:/sop:/gen:/JSON spec sweeps too.
    const std::shared_ptr<const Circuit> circuit = compileCircuit(name);
    const FunctionMatrix& fm = circuit->fm;
    for (const ScenarioEntry& scenario : sweep.scenarios) {
      // A fixed (JSON-spec) entry carries its own parameters: running it
      // once per grid rate would duplicate identical experiments under
      // misleading rate labels. NaN marks the rate axis as not applicable
      // (the JSON writer emits it as null).
      const std::vector<double> rateAxis =
          scenario.fixed ? std::vector<double>{std::numeric_limits<double>::quiet_NaN()}
                         : sweep.rates;
      for (const double rate : rateAxis) {
        DefectExperimentConfig cfg;
        cfg.samples = sweep.samples;
        cfg.seed = sweep.seed;
        cfg.model = scenario.at(rate);
        cfg.keepMappings = true;

        cfg.threads = 1;
        const DefectExperimentResult reference = runDefectExperiment(fm, mapper, cfg);
        cfg.threads = 2;
        const DefectExperimentResult rerun = runDefectExperiment(fm, mapper, cfg);

        bool deterministic = reference.successes == rerun.successes;
        for (std::size_t s = 0; deterministic && s < reference.mappings.size(); ++s)
          deterministic =
              reference.mappings[s].rowAssignment == rerun.mappings[s].rowAssignment;
        allDeterministic = allDeterministic && deterministic;

        const double analytic =
            std::isnan(rate) ? rate : estimateYield(fm, rate).successProbability;

        json.beginObject();
        json.field("circuit", name);
        json.field("scenario", scenario.label);
        json.field("model", cfg.model->describe());
        json.field("rate", rate);
        json.field("area", fm.dims().area());
        json.field("successes", reference.successes);
        json.field("success_rate", reference.successRate());
        json.field("analytic_iid_estimate", analytic);
        // Wall time per sample (sampling + mapping + verify): the sweep
        // runs with per-sample timing off, sparing two clock reads per
        // sample on the hot path.
        json.field("mean_sample_millis", reference.meanSeconds() * 1e3);
        json.field("deterministic_across_threads", deterministic);
        json.endObject();

        table.addRow({name, scenario.label,
                      std::isnan(rate) ? std::string("-") : TextTable::percent(rate),
                      TextTable::percent(reference.successRate()),
                      std::isnan(rate) ? std::string("-") : TextTable::percent(analytic),
                      TextTable::num(reference.meanSeconds() * 1e3, 3),
                      deterministic ? "yes" : "NO"});
      }
    }
  }
  json.endArray();
  json.field("all_deterministic", allDeterministic);
  json.endObject();

  std::ofstream jsonFile(jsonPath);
  jsonFile << jsonBuffer.str() << "\n";
  jsonFile.flush();
  if (!jsonFile) {
    std::cerr << "scenario_runner: cannot write " << jsonPath << "\n";
    return 2;
  }

  std::cout << table << "\n";
  std::cout << "analytic iid = closed-form estimate assuming independent defects: it\n"
               "tracks Psucc under paper-iid and diverges under clustered/lines/gradient\n"
               "(correlated damage breaks the independence assumption).\n";
  std::cout << "deterministic across 1/2 threads for every cell: "
            << (allDeterministic ? "yes" : "NO") << "; JSON written to " << jsonPath << "\n";
  return allDeterministic ? 0 : 1;
}

int runScenarios(const std::vector<std::string>& args) {
  Sweep sweep;
  bench::CommonOptions common;

  cli::ArgParser parser("mcx_bench scenarios",
                        "declarative defect-scenario sweep: model x rate x circuit");
  common.addSamplesTo(parser);
  common.addSeedTo(parser);
  common.addJsonTo(parser);
  parser.addCallback("--scenarios", "a,b,...", "preset names / JSON specs to sweep",
                     [&sweep](const std::string& value) {
                       sweep.scenarios.clear();
                       for (const std::string& name : splitList(value))
                         sweep.scenarios.push_back(entryFromName(name));
                     });
  parser.addCallback("--rates", "r1,r2,...", "defect-rate grid",
                     [&sweep](const std::string& value) {
                       sweep.rates.clear();
                       for (const std::string& r : splitList(value)) {
                         double rate{};
                         const auto [end, ec] =
                             std::from_chars(r.data(), r.data() + r.size(), rate);
                         MCX_REQUIRE(ec == std::errc() && end == r.data() + r.size(),
                                     "--rates: bad value \"" + r + "\"");
                         sweep.rates.push_back(rate);
                       }
                     });
  parser.addCallback("--circuits", "c1,c2,...",
                     "circuit declarations to sweep (presets or file:/pla:/sop:/gen: specs)",
                     [&sweep](const std::string& value) { sweep.circuits = splitList(value); });
  parser.addCallback("--spec", "JSON", "add one inline scenario spec to the sweep",
                     [&sweep](const std::string& value) {
                       sweep.scenarios.push_back(entryFromName(value));
                     });
  parser.addCallback("--sweep", "JSON", "whole sweep as one JSON document",
                     [&sweep](const std::string& value) { applySweepSpec(sweep, value); });
  parser.addAction("--list", "list the scenario presets", bench::listScenarios);
  if (const auto code = bench::parseSuiteArgs(parser, args)) return *code;

  // Explicit flags beat --sweep members beat the env/default (the Sweep
  // initializer already folded MCX_SAMPLES in, so only a real flag wins).
  if (common.samples.has_value()) sweep.samples = *common.samples;
  if (common.seed.has_value()) sweep.seed = *common.seed;
  const std::string jsonPath = common.jsonOr("BENCH_scenarios.json");

  if (sweep.scenarios.empty())
    for (const ScenarioPreset& preset : scenarioPresets())
      sweep.scenarios.push_back(entryFromName(preset.name));
  if (sweep.rates.empty()) sweep.rates = standardRateGrid();

  std::cout << "scenario sweep: " << sweep.scenarios.size() << " models x "
            << sweep.rates.size() << " rates x " << sweep.circuits.size() << " circuits, "
            << sweep.samples << " samples per cell (seed " << sweep.seed << ")\n\n";

  try {
    return runSweep(sweep, jsonPath);
  } catch (const std::exception& e) {  // unknown circuit, out-of-range preset rate, ...
    std::cerr << "mcx_bench scenarios: " << e.what() << "\n";
    return 2;
  }
}

}  // namespace

MCX_BENCH_SUITE("scenarios",
                "defect-scenario sweep with per-cell determinism checks (BENCH_scenarios)",
                runScenarios);
