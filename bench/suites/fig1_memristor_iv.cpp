// Figure 1 reproduction: memristor I-V characteristics.
//
// Drives the threshold ion-drift device model with two sinusoidal periods
// and prints the I-V trajectory — the pinched hysteresis loop with SET above
// +V_th and RESET below -V_th that Fig. 1 sketches. Output is a CSV-like
// series (voltage, current, state) usable for plotting, plus a summary of
// the SET/RESET transitions.
#include <cmath>
#include <iostream>
#include <vector>

#include "api/driver.hpp"
#include "sim/device_model.hpp"
#include "util/text_table.hpp"

namespace {

int runFig1(const std::vector<std::string>& args) {
  using namespace mcx;

  cli::ArgParser parser("mcx_bench fig1",
                        "Figure 1: memristor I-V pinched-hysteresis sweep");
  if (const auto code = bench::parseSuiteArgs(parser, args)) return *code;

  DeviceParams params;  // R_ON=100, R_OFF=16k, V_th=1V
  const double amplitude = 2.0;
  const auto points = sweepIV(params, amplitude, 2, 64);

  std::cout << "Figure 1: memristor I-V sweep (" << amplitude << " V sinusoid, 2 periods, "
            << "V_th = " << params.vThreshold << " V, R_ON = " << params.rOn
            << " ohm, R_OFF = " << params.rOff << " ohm)\n\n";

  TextTable table({"t", "V", "I (mA)", "state w"});
  for (std::size_t i = 0; i < points.size(); i += 4) {
    const IvPoint& p = points[i];
    table.addRow({TextTable::num(p.time, 3), TextTable::num(p.voltage, 3),
                  TextTable::num(p.current * 1e3, 4), TextTable::num(p.state, 3)});
  }
  std::cout << table << "\n";

  // Pinched hysteresis + switching summary.
  double maxState = 0, minStateAfterSet = 1;
  bool set = false;
  for (const IvPoint& p : points) {
    maxState = std::max(maxState, p.state);
    if (maxState > 0.9) set = true;
    if (set) minStateAfterSet = std::min(minStateAfterSet, p.state);
  }
  double currentRatio = 0;
  double iOff = 0, iOn = 0;
  for (const IvPoint& p : points) {
    if (std::abs(p.voltage - 0.9) < 0.05) {
      if (p.time < 0.2) iOff = std::max(iOff, std::abs(p.current));
      else iOn = std::max(iOn, std::abs(p.current));
    }
  }
  if (iOff > 0) currentRatio = iOn / iOff;

  std::cout << "SET reached (w > 0.9): " << (set ? "yes" : "no") << "\n";
  std::cout << "RESET after SET (min w): " << TextTable::num(minStateAfterSet, 3) << "\n";
  std::cout << "ON/OFF read-current ratio at 0.9 V: " << TextTable::num(currentRatio, 1)
            << " (paper's Fig. 1 shape: low-resistance branch after SET)\n";
  std::cout << "I(V=0) = 0 at every crossing: pinched loop confirmed by construction\n";
  return 0;
}

}  // namespace

MCX_BENCH_SUITE("fig1", "Fig. 1: memristor I-V characteristics (threshold ion drift)",
                runFig1);
