// Ablation A9: transient-fault sensitivity of mapped crossbars.
//
// The paper explicitly scopes transient faults out ("we only explore the
// switching defects"); this bench measures them: output bit-error rate as a
// function of per-evaluation transient open/short rates, on crossbars
// already carrying 5% permanent stuck-open defects and a valid HBA mapping.
#include <iostream>
#include <vector>

#include "api/driver.hpp"
#include "benchdata/registry.hpp"
#include "map/hybrid_mapper.hpp"
#include "sim/transient_faults.hpp"
#include "util/text_table.hpp"
#include "xbar/layout.hpp"

namespace {

int runTransient(const std::vector<std::string>& args) {
  using namespace mcx;

  bench::CommonOptions common;
  cli::ArgParser parser("mcx_bench ablation-transient",
                        "Ablation A9: transient-fault bit-error rates on mapped crossbars");
  common.addSamplesTo(parser);
  if (const auto code = bench::parseSuiteArgs(parser, args)) return *code;

  const std::size_t trials = common.samplesOr(200) * 2;
  std::cout << "Transient-fault sensitivity (HBA-mapped crossbars with 5% permanent\n"
               "stuck-open defects; " << trials << " random evaluations per cell)\n\n";

  for (const char* name : {"rd53", "misex1"}) {
    const BenchmarkCircuit bench = loadBenchmarkFast(name);
    const TwoLevelLayout layout = buildTwoLevelLayout(bench.cover);

    // Find one permanently-defective crossbar with a valid mapping.
    Rng rng(0x7a5);
    MappingResult mapping;
    DefectMap defects;
    for (int attempt = 0; attempt < 50 && !mapping.success; ++attempt) {
      Rng sample = rng.split();
      defects = DefectMap::sample(layout.fm.rows(), layout.fm.cols(), 0.05, 0.0, sample);
      mapping = HybridMapper().map(layout.fm, crossbarMatrix(defects));
    }
    if (!mapping.success) {
      std::cout << name << ": no valid permanent mapping found (unexpected)\n";
      continue;
    }

    TextTable table({"transient open", "transient short", "output bit-error rate"});
    for (const double open : {0.0, 0.005, 0.02, 0.05}) {
      for (const double shortRate : {0.0, 0.005}) {
        if (open == 0.0 && shortRate == 0.0) continue;
        TransientFaultConfig cfg;
        cfg.openRate = open;
        cfg.shortRate = shortRate;
        Rng evalRng(99);
        const TransientFaultStats stats = measureTransientErrors(
            layout, mapping.rowAssignment, defects, cfg, trials, evalRng);
        table.addRow({TextTable::percent(open, 1), TextTable::percent(shortRate, 1),
                      TextTable::percent(stats.bitErrorRate(), 2)});
      }
    }
    std::cout << name << ":\n" << table << "\n";
  }
  std::cout << "expected shape: bit-error rate grows with both rates; transient shorts\n"
               "dominate (each poisons a full row and column for that evaluation) —\n"
               "quantifying why the paper's permanent-defect mapping alone cannot give\n"
               "reliability guarantees under runtime faults.\n";
  return 0;
}

}  // namespace

MCX_BENCH_SUITE("ablation-transient", "A9: transient-fault bit-error sensitivity",
                runTransient);
