// Table I reproduction: two-level and multi-level area cost of benchmark
// circuits, for the original function and its negation.
//
// The paper's numbers come from MCNC PLAs + ABC; ours come from the
// generated / stand-in circuits (see DESIGN.md substitution policy) and our
// own factoring NAND mapper, so absolute values differ — the shape to check
// is: multi-level is drastically WORSE on multi-output benchmarks and WINS
// on the structured single-output ones (t481, cordic).
#include <iostream>
#include <optional>
#include <vector>

#include "api/driver.hpp"
#include "benchdata/registry.hpp"
#include "circuit/cache.hpp"
#include "circuit/registry.hpp"
#include "logic/espresso.hpp"
#include "netlist/nand_mapper.hpp"
#include "util/text_table.hpp"
#include "xbar/area_model.hpp"

namespace {

struct PaperRow {
  const char* name;
  std::size_t two, multi, twoNeg, multiNeg;
};

// Table I as printed.
constexpr PaperRow kPaper[] = {
    {"rd53", 544, 3000, 560, 2000},       {"con1", 198, 480, 198, 527},
    {"misex1", 570, 4836, 1590, 4161},    {"bw", 3300, 52875, 3564, 53110},
    {"sqrt8", 1008, 2745, 792, 3300},     {"rd84", 6216, 48124, 7128, 20276},
    {"b12", 2496, 7800, 2064, 2691},      {"t481", 16388, 5760, 12274, 8034},
    {"cordic", 45800, 9594, 59650, 10668}};

std::optional<PaperRow> paperRow(const std::string& name) {
  for (const PaperRow& r : kPaper)
    if (name == r.name) return r;
  return std::nullopt;
}

int runTable1(const std::vector<std::string>& args) {
  using namespace mcx;

  cli::ArgParser parser("mcx_bench table1",
                        "Table I: two-level vs multi-level area on benchmark circuits");
  if (const auto code = bench::parseSuiteArgs(parser, args)) return *code;

  std::cout << "Table I: two-level and multi-level area cost, original circuit and its "
               "negation\n(ours vs paper; stand-in circuits — shapes, not absolute values, "
               "are comparable)\n\n";

  TextTable table({"bench", "2L ours", "2L paper", "ML ours", "ML paper", "2L-neg ours",
                   "2L-neg paper", "ML-neg ours", "ML-neg paper", "ML wins (ours/paper)"});

  for (const auto& info : paperBenchmarks()) {
    if (!info.inTable1) continue;
    const auto paper = paperRow(info.name);

    // Both realizations of the polished registry circuit through the
    // pipeline (synth=espresso = the registry's polished load; factoring
    // "best" = mapToNandBest, what this table always measured). The memo
    // cache shares the compiles with any suite running the same specs.
    CircuitSpec spec = makeCircuitSpec(info.name);
    spec.synth = CircuitSpec::Synth::Espresso;
    const std::shared_ptr<const Circuit> twoLevel = compileCircuit(spec);
    spec.realize = CircuitSpec::Realize::MultiLevel;
    spec.factoring = CircuitSpec::Factoring::Best;
    const std::shared_ptr<const Circuit> multiLevel = compileCircuit(spec);

    const Cover& on = twoLevel->cover;
    const std::size_t two = twoLevel->dims().area();
    const std::size_t multi = multiLevel->dims().area();

    // Negation: complement each output; large stand-ins use the light
    // complement (no espresso polish) to keep the bench fast.
    std::size_t twoNeg = 0, multiNeg = 0;
    std::string twoNegStr = "-", multiNegStr = "-";
    if (on.nin() <= 16) {
      Cover neg = complementCover(on);
      if (on.nin() <= 10) neg = espressoMinimize(neg);
      if (!neg.empty()) {
        twoNeg = twoLevelDims(neg).area();
        bool constant = false;
        for (std::size_t o = 0; o < neg.nout(); ++o)
          if (neg.projection(o).empty()) constant = true;
        if (!constant) multiNeg = multiLevelDims(mapToNandBest(neg)).area();
        twoNegStr = std::to_string(twoNeg);
        multiNegStr = multiNeg > 0 ? std::to_string(multiNeg) : "-";
      }
    }

    const bool oursWin = multi < two;
    const bool paperWin = paper && paper->multi < paper->two;
    table.addRow({info.name, std::to_string(two),
                  paper ? std::to_string(paper->two) : "-", std::to_string(multi),
                  paper ? std::to_string(paper->multi) : "-", twoNegStr,
                  paper ? std::to_string(paper->twoNeg) : "-", multiNegStr,
                  paper ? std::to_string(paper->multiNeg) : "-",
                  std::string(oursWin ? "yes" : "no") + "/" + (paperWin ? "yes" : "no")});
  }
  std::cout << table << "\n";
  std::cout << "expected shape: multi-level loses badly on the multi-output circuits\n"
               "(rd53/misex1/bw/...) and wins on the structured single-output ones\n"
               "(t481, cordic) — compare the final column's ours/paper agreement.\n";
  return 0;
}

}  // namespace

MCX_BENCH_SUITE("table1", "Table I: two-level and multi-level area, original and negation",
                runTable1);
