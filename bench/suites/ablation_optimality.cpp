// Ablation A9: heuristic optimality gap against the exact SAT backend.
//
// Runs every heuristic mapper variant and the SAT backend on the SAME
// per-sample defect maps (forEachDefectSample pre-splits the RNG streams,
// so every mapper sees bit-identical crossbars) and reports, per circuit x
// defect rate, how far each heuristic's yield falls short of the exact
// verdict. Two invariants are enforced, not just reported:
//
//   * every heuristic success must be CONFIRMED SAT — an actual model found
//     by the SAT backend, not just "no proof of unsat" (a heuristic mapping
//     an unmappable sample would be a soundness bug — zero tolerance), and
//   * every SAT verdict the backend resolves must equal fast-ea's
//     Hopcroft--Karp verdict (two independent exact algorithms must agree).
//
// The backend runs under a per-cube conflict budget. Feasible samples
// resolve constructively in a few hundred conflicts; a budget-out is only
// ever seen on infeasible samples whose Hall certificate is large —
// pigeonhole-style formulas with an exponential resolution lower bound, so
// no conflict budget is "enough" and the honest output is an explicit
// unresolved count (the gap itself uses the cross-checked exact verdict).
// Any invariant violation prints loudly and fails the suite (exit 1),
// which also turns the CTest smoke run into a cross-check of the SAT
// encoder against the matching heuristics on real circuit workloads.
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "api/driver.hpp"
#include "circuit/cache.hpp"
#include "defect_sweep.hpp"
#include "map/registry.hpp"
#include "mc/defect_experiment.hpp"
#include "sat/cnf.hpp"
#include "sat/cube.hpp"
#include "sat/solver.hpp"
#include "util/json_writer.hpp"
#include "util/text_table.hpp"

namespace {

/// Exact verdict of one sample from the SAT backend (budgeted).
mcx::sat::Verdict satVerdict(const mcx::FunctionMatrix& fm, const mcx::BitMatrix& cm,
                             mcx::MappingContext& ctx, std::uint64_t conflictLimit) {
  using namespace mcx;
  if (fm.rows() > cm.rows()) return sat::Verdict::Unsat;
  const BitMatrix& adj = ctx.candidateAdjacency(fm.bits(), cm);
  sat::MatchingCnf enc = sat::encodeMatching(adj);
  if (enc.trivialUnsat) return sat::Verdict::Unsat;
  sat::SolverOptions base;
  base.conflictLimit = conflictLimit;
  return sat::solveCubes(enc.cnf, sat::generateCubes(enc, 2), base).verdict;
}

int runOptimality(const std::vector<std::string>& args) {
  using namespace mcx;

  bench::CommonOptions common;
  cli::ArgParser parser("mcx_bench ablation-optimality",
                        "A9: exact SAT verdict vs heuristic mappers on identical samples");
  common.addSamplesTo(parser);
  common.addSeedTo(parser);
  common.addJsonTo(parser);
  if (const auto code = bench::parseSuiteArgs(parser, args)) return *code;

  const std::size_t samples = common.samplesOr(100);
  const std::uint64_t seed = common.seedOr(0xc0ffee);
  const std::string jsonPath = common.jsonOr("BENCH_optimality.json");
  constexpr std::uint64_t kConflictBudget = 10000;  // per cube; see header

  const std::vector<std::string> heuristics = {"greedy", "hba-nobt", "hba"};
  std::vector<std::shared_ptr<const IMapper>> heuristicMappers;
  for (const std::string& name : heuristics) heuristicMappers.push_back(makeMapper(name));
  const std::shared_ptr<const IMapper> fastEa = makeMapper("fast-ea");

  std::ofstream jsonFile(jsonPath);
  JsonWriter json(jsonFile);
  json.beginObject();
  json.field("bench", "ablation-optimality");
  json.field("samples", static_cast<std::uint64_t>(samples));
  json.field("seed", seed);
  json.field("conflict_budget", kConflictBudget);
  json.key("cells").beginArray();

  TextTable table({"circuit", "rate", "exact", "unresolved", "Greedy", "HBA-nobt", "HBA",
                   "contradict"});
  std::size_t totalContradictions = 0;
  std::size_t exactMismatches = 0;
  std::size_t nonzeroGapCells = 0;

  for (const char* circuitName : {"rd53", "sao2"}) {
    const std::shared_ptr<const Circuit> circuit = compileCircuit(circuitName);
    for (const double rate : {0.05, 0.10, 0.15}) {
      DefectExperimentConfig config;
      config.samples = samples;
      config.seed = seed;
      config.stuckOpenRate = rate;

      std::size_t exactOk = 0;
      std::size_t unresolved = 0;
      std::size_t cellMismatches = 0;
      std::vector<std::size_t> heurOk(heuristics.size(), 0);
      std::vector<std::size_t> heurContradictions(heuristics.size(), 0);
      MappingContext ctx;

      forEachDefectSample(
          circuit->fm, config, [&](std::size_t, const DefectMap&, const BitMatrix& cm) {
            const sat::Verdict v = satVerdict(circuit->fm, cm, ctx, kConflictBudget);
            const bool fastOk = fastEa->map(circuit->fm, cm).success;
            // The exact yield column uses the cross-checked exact verdict:
            // where the SAT backend resolved, it must agree with fast-ea.
            if (v == sat::Verdict::Unknown)
              ++unresolved;
            else if ((v == sat::Verdict::Sat) != fastOk)
              ++cellMismatches;
            if (fastOk) ++exactOk;
            for (std::size_t h = 0; h < heuristics.size(); ++h) {
              const bool ok = heuristicMappers[h]->map(circuit->fm, cm).success;
              if (ok) ++heurOk[h];
              // "Confirmed SAT" means a model, not merely no refutation.
              if (ok && v != sat::Verdict::Sat) ++heurContradictions[h];
            }
          });

      json.beginObject();
      json.field("circuit", circuitName);
      json.field("rate", rate);
      json.field("exact_successes", static_cast<std::uint64_t>(exactOk));
      json.field("sat_unresolved", static_cast<std::uint64_t>(unresolved));
      json.field("sat_fastea_mismatches", static_cast<std::uint64_t>(cellMismatches));
      json.key("mappers").beginArray();
      std::vector<std::string> row{circuitName, TextTable::percent(rate),
                                   std::to_string(exactOk) + "/" + std::to_string(samples),
                                   std::to_string(unresolved)};
      std::size_t cellContradictions = 0;
      bool cellHasGap = false;
      for (std::size_t h = 0; h < heuristics.size(); ++h) {
        const std::size_t gap = exactOk - heurOk[h];
        if (gap > 0) cellHasGap = true;
        cellContradictions += heurContradictions[h];
        json.beginObject();
        json.field("name", heuristics[h]);
        json.field("successes", static_cast<std::uint64_t>(heurOk[h]));
        json.field("gap", static_cast<std::uint64_t>(gap));
        json.field("contradictions", static_cast<std::uint64_t>(heurContradictions[h]));
        json.endObject();
        row.push_back(std::to_string(heurOk[h]) + " (gap " + std::to_string(gap) + ")");
      }
      json.endArray();
      json.endObject();
      row.push_back(std::to_string(cellContradictions));
      table.addRow(std::move(row));
      totalContradictions += cellContradictions;
      exactMismatches += cellMismatches;
      if (cellHasGap) ++nonzeroGapCells;
    }
  }

  json.endArray();
  json.field("total_contradictions", static_cast<std::uint64_t>(totalContradictions));
  json.field("exact_mismatches", static_cast<std::uint64_t>(exactMismatches));
  json.field("nonzero_gap_cells", static_cast<std::uint64_t>(nonzeroGapCells));
  json.endObject();
  jsonFile << "\n";

  std::cout << "Optimality gap vs exact verdict (" << samples
            << " samples per cell, identical defect maps across mappers)\n\n";
  std::cout << table << "\n";
  std::cout << "gap N = samples proven mappable that the heuristic missed; unresolved =\n"
               "infeasible-side samples the SAT backend could not refute in budget (large\n"
               "Hall certificates; exponential for resolution); contradict = heuristic\n"
               "successes not confirmed by a SAT model (must be 0).\n";
  std::cout << "json: " << jsonPath << "\n";

  if (totalContradictions != 0 || exactMismatches != 0) {
    std::cout << "FAIL: " << totalContradictions << " unconfirmed heuristic success(es), "
              << exactMismatches << " SAT/fast-ea mismatch(es)\n";
    return 1;
  }
  return 0;
}

}  // namespace

MCX_BENCH_SUITE("ablation-optimality", "A9: exact-vs-heuristic yield gap (SAT ground truth)",
                runOptimality);
