// Ablation A1 (the paper's Section VI future work): yield vs redundancy.
//
// Sweeps spare rows / spare column pairs on defective crossbars, with and
// without stuck-at-closed defects. On an optimum-size crossbar any
// stuck-at-closed defect is fatal (it poisons a full row and column); spare
// lines plus column-pair reassignment recover the yield, quantifying the
// area-redundancy tradeoff the paper calls for.
#include <iostream>
#include <vector>

#include "api/driver.hpp"
#include "circuit/cache.hpp"
#include "map/redundant_mapper.hpp"
#include "util/text_table.hpp"

namespace {

int runRedundancy(const std::vector<std::string>& args) {
  using namespace mcx;

  bench::CommonOptions common;
  cli::ArgParser parser("mcx_bench ablation-redundancy",
                        "Ablation A1: yield vs spare rows / column pairs");
  common.addSamplesTo(parser);
  if (const auto code = bench::parseSuiteArgs(parser, args)) return *code;

  const std::size_t samples = common.samplesOr(100);
  const std::shared_ptr<const Circuit> circuit = compileCircuit("squar5");
  const FunctionMatrix& fm = circuit->fm;
  std::cout << "Ablation: yield vs redundant lines on " << circuit->label << " ("
            << fm.rows() << "x" << fm.cols() << " optimum, " << samples
            << " samples per cell)\n\n";

  struct Scenario {
    const char* label;
    double open, closed;
  };
  const Scenario scenarios[] = {{"10% stuck-open only", 0.10, 0.0},
                                {"10% open + 0.2% stuck-closed", 0.10, 0.002},
                                {"10% open + 1% stuck-closed", 0.10, 0.01}};

  for (const Scenario& sc : scenarios) {
    TextTable table({"spares (rows/in-pairs/out-pairs)", "area overhead", "success rate"});
    for (const std::size_t spare : {0u, 1u, 2u, 4u, 8u, 12u}) {
      RedundantCrossbarSpec spec;
      spec.spareRows = spare;
      spec.spareInputPairs = (spare + 1) / 2;
      spec.spareOutputPairs = (spare + 2) / 3;
      const CrossbarDims dims = redundantDims(fm, spec);
      const RedundantMapper mapper(spec);

      Rng rng(1234 + spare);
      std::size_t successes = 0;
      for (std::size_t s = 0; s < samples; ++s) {
        Rng sampleRng = rng.split();
        const DefectMap defects =
            DefectMap::sample(dims.rows, dims.cols, sc.open, sc.closed, sampleRng);
        if (mapper.map(fm, defects, 77 + s).success) ++successes;
      }
      const double overhead =
          100.0 * (double(dims.area()) / double(fm.dims().area()) - 1.0);
      table.addRow({std::to_string(spare) + "/" + std::to_string(spec.spareInputPairs) + "/" +
                        std::to_string(spec.spareOutputPairs),
                    TextTable::num(overhead, 0) + "%",
                    TextTable::percent(double(successes) / double(samples))});
    }
    std::cout << sc.label << ":\n" << table << "\n";
  }
  std::cout << "expected shape: with stuck-closed defects the zero-spare yield collapses\n"
               "(Section IV-A: untolerable without redundancy); modest spare budgets\n"
               "recover it at bounded area overhead.\n";
  return 0;
}

}  // namespace

MCX_BENCH_SUITE("ablation-redundancy", "A1: yield vs spare rows and column pairs",
                runRedundancy);
