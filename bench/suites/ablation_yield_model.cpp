// Ablation A8: analytic yield model vs Monte Carlo ground truth.
//
// Quantifies where the closed-form estimate (mc/yield_model.hpp) is usable
// instead of a 200-sample Monte Carlo run, and uses it to answer the
// paper's future-work question "how much redundancy for a target yield?"
// instantly per circuit.
#include <cmath>
#include <iostream>
#include <vector>

#include "api/driver.hpp"
#include "api/experiment.hpp"
#include "benchdata/registry.hpp"
#include "mc/yield_model.hpp"
#include "util/text_table.hpp"
#include "xbar/function_matrix.hpp"

namespace {

int runYieldModel(const std::vector<std::string>& args) {
  using namespace mcx;

  bench::CommonOptions common;
  cli::ArgParser parser("mcx_bench ablation-yield-model",
                        "Ablation A8: analytic yield model vs Monte Carlo");
  common.addSamplesTo(parser);
  if (const auto code = bench::parseSuiteArgs(parser, args)) return *code;

  const std::size_t samples = common.samplesOr(200);
  std::cout << "Analytic yield model vs Monte Carlo (" << samples
            << " samples), optimum-size crossbars\n\n";

  TextTable table({"circuit", "rate", "model", "Monte Carlo", "abs err"});
  for (const char* name : {"rd53", "misex1", "sao2", "clip"}) {
    const BenchmarkCircuit bench = loadBenchmarkFast(name);
    const FunctionMatrix fm = buildFunctionMatrix(bench.cover);
    for (const double q : {0.05, 0.10, 0.20}) {
      const double model = estimateYield(fm, q).successProbability;
      const double mc = ExperimentBuilder()
                            .circuit(name, fm)
                            .mapper("hba")
                            .legacyRates(q)
                            .samples(samples)
                            .run()
                            .successRate();
      table.addRow({name, TextTable::percent(q), TextTable::percent(model, 1),
                    TextTable::percent(mc, 1), TextTable::num(std::abs(model - mc), 3)});
    }
  }
  std::cout << table << "\n";

  std::cout << "spare rows needed for 99% estimated yield at 10% defects:\n";
  TextTable spares({"circuit", "optimum rows", "spares for 99%", "row overhead"});
  for (const char* name : {"rd53", "misex1", "sao2", "rd73", "clip", "alu4"}) {
    const BenchmarkCircuit bench = loadBenchmarkFast(name);
    const FunctionMatrix fm = buildFunctionMatrix(bench.cover);
    const std::size_t s = sparesForTargetYield(fm, 0.10, 0.99, 128);
    spares.addRow({name, std::to_string(fm.rows()), std::to_string(s),
                   TextTable::percent(double(s) / double(fm.rows()), 1)});
  }
  std::cout << spares << "\n";
  std::cout << "expected shape: the sequential-greedy approximation brackets the truth\n"
               "from both sides — optimistic when dense-row tails compete for the same\n"
               "healthy rows (rd53 at 20%), pessimistic on uniform-row circuits where\n"
               "real matchings rearrange globally (misex1, augmenting paths beat greedy);\n"
               "errors stay within ~0.2 and shrink at the 0%/100% extremes, good enough\n"
               "for the spare-row sizing table below.\n";
  return 0;
}

}  // namespace

MCX_BENCH_SUITE("ablation-yield-model", "A8: analytic yield estimate vs Monte Carlo",
                runYieldModel);
