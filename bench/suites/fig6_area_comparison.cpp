// Figure 6 reproduction: two-level vs multi-level area on random functions.
//
// For each input size (the paper plots 8, 9, 10 and 15; we run the full
// 8..15 range) 200 random single-output SOPs are drawn, minimized, factored
// and mapped to NAND gates; the success rate is the share of samples whose
// multi-level crossbar is smaller. The paper's trends: success rate FALLS
// with input size and RISES with product count.
//
// The scenario extension the paper's figure lacks: each sample's two-level
// and multi-level implementations are also mapped against defect maps from
// a scenario (--scenario preset name or JSON spec, env MCX_AREA_SCENARIO,
// default paper-iid at 10%), so the table shows the area/yield tradeoff
// next to the area win rate.
#include <cstdlib>
#include <iostream>
#include <map>
#include <vector>

#include "api/driver.hpp"
#include "api/experiment.hpp"
#include "circuit/cache.hpp"
#include "circuit/registry.hpp"
#include "mc/area_experiment.hpp"
#include "scenario/registry.hpp"
#include "util/error.hpp"
#include "util/text_table.hpp"

namespace {

int runFig6(const std::vector<std::string>& args) {
  using namespace mcx;

  bench::CommonOptions common;
  std::string scenarioArg;
  std::vector<std::string> referenceSpecs;
  double rate = 0.10;
  cli::ArgParser parser("mcx_bench fig6",
                        "Figure 6: two-level vs multi-level area on random functions");
  common.addSamplesTo(parser);
  parser.add("--scenario", &scenarioArg, "NAME|SPEC",
             "defect scenario for the yield columns (env MCX_AREA_SCENARIO)");
  parser.add("--rate", &rate, "R", "scenario defect budget (default 0.10)");
  parser.addCallback("--circuit-spec", "NAME|SPEC",
                     "add a declared circuit as a reference row next to the random-"
                     "function trend (repeatable)",
                     [&referenceSpecs](const std::string& value) {
                       // The reference row compares both realizations itself;
                       // an explicit realize knob would be silently ignored.
                       if (makeCircuitSpec(value).realizeExplicit)
                         throw InvalidArgument(
                             "--circuit-spec: the reference row compares both "
                             "realizations; drop the \"realize\" member");
                       referenceSpecs.push_back(value);
                     });
  parser.addAction("--list", "list the scenario presets", bench::listScenarios);
  if (const auto code = bench::parseSuiteArgs(parser, args)) return *code;

  const std::size_t samples = common.samplesOr(200);
  if (scenarioArg.empty()) {
    const char* env = std::getenv("MCX_AREA_SCENARIO");
    scenarioArg = (env != nullptr && *env != '\0') ? env : "paper-iid";
  }
  std::shared_ptr<const DefectModel> scenario;
  try {
    scenario = makeScenario(scenarioArg, rate);
  } catch (const std::exception& e) {
    std::cerr << "mcx_bench fig6: " << e.what() << "\n";
    return 2;
  }
  std::cout << "Figure 6: two-level vs multi-level area cost, random functions, "
            << samples << " samples per input size\n";
  std::cout << "paper reference success rates: I=8: 65%, I=9: 60%, I=10: 54%, I=15: 33%\n";
  std::cout << "yield columns: mapping success under " << scenario->describe() << "\n\n";

  TextTable summary({"input size", "success rate", "paper", "mean two-level",
                     "mean multi-level", "2L yield", "ML yield"});
  const std::map<std::size_t, const char*> paperRates{
      {8, "65%"}, {9, "60%"}, {10, "54%"}, {15, "33%"}};

  std::vector<AreaExperimentResult> results;
  for (std::size_t nin = 8; nin <= 15; ++nin) {
    AreaExperimentConfig cfg;
    cfg.nin = nin;
    cfg.samples = samples;
    cfg.seed = 600 + nin;
    // The paper does not publish its random-function generator parameters;
    // this literal density (calibrated once against the four published
    // success rates) reproduces both Fig. 6 trends: multi-level wins get
    // rarer as inputs grow and commoner as products grow.
    cfg.literalsPerProduct = 0.36 + 0.148 * static_cast<double>(nin);
    cfg.defectModel = scenario;
    cfg.defectDraws = 12;
    const AreaExperimentResult r = runAreaExperiment(cfg);
    results.push_back(r);

    double twoSum = 0, multiSum = 0, twoYield = 0, multiYield = 0;
    for (const AreaSample& s : r.samples) {
      twoSum += static_cast<double>(s.twoLevelArea);
      multiSum += static_cast<double>(s.multiLevelArea);
      twoYield += s.twoLevelYield;
      multiYield += s.multiLevelYield;
    }
    const auto it = paperRates.find(nin);
    const double n = static_cast<double>(r.samples.size());
    summary.addRow({std::to_string(nin), TextTable::percent(r.successRate()),
                    it != paperRates.end() ? it->second : "-",
                    TextTable::num(twoSum / n, 1), TextTable::num(multiSum / n, 1),
                    TextTable::percent(twoYield / n), TextTable::percent(multiYield / n)});
  }
  std::cout << summary << "\n";

  // The per-sample series of the four plotted sizes (sorted by product
  // count, the paper's x axis), showing the "flat two-level line vs
  // fluctuating multi-level" structure.
  for (const std::size_t nin : {std::size_t{8}, std::size_t{15}}) {
    const AreaExperimentResult& r = results[nin - 8];
    std::cout << "series for input size " << nin
              << " (sample: products, two-level, multi-level) — every 10th sample:\n";
    for (std::size_t i = 0; i < r.samples.size(); i += 10) {
      const AreaSample& s = r.samples[i];
      std::cout << "  " << i << ": P=" << s.products << "  two=" << s.twoLevelArea
                << "  multi=" << s.multiLevelArea << (s.multiLevelArea < s.twoLevelArea ? "  *" : "")
                << "\n";
    }
    std::cout << "\n";
  }

  // Declared reference circuits: where a real (non-random) function sits
  // relative to the random-function trend — both realizations compiled
  // through the memoized pipeline, both mapped under the same scenario.
  if (!referenceSpecs.empty()) {
    TextTable reference({"circuit", "I", "P", "two-level", "multi-level", "2L yield",
                         "ML yield", "ML wins"});
    for (const std::string& specText : referenceSpecs) {
      CircuitSpec spec = makeCircuitSpec(specText);
      spec.realize = CircuitSpec::Realize::TwoLevel;
      const std::shared_ptr<const Circuit> two = compileCircuit(spec);
      spec.realize = CircuitSpec::Realize::MultiLevel;
      // Default to the best factoring (what Fig. 6 measures) but respect an
      // explicitly declared strategy.
      if (!spec.factoringExplicit) spec.factoring = CircuitSpec::Factoring::Best;
      const std::shared_ptr<const Circuit> multi = compileCircuit(spec);
      auto yield = [&](const CircuitSpec& s) {
        return ExperimentBuilder()
            .circuit(s)
            .mapper("hba")
            .scenario(scenario)
            .samples(samples)
            .seed(640)
            .run()
            .successRate();
      };
      reference.addRow({two->label, std::to_string(two->cover.nin()),
                        std::to_string(two->cover.size()),
                        std::to_string(two->dims().area()),
                        std::to_string(multi->dims().area()),
                        TextTable::percent(yield(two->spec)),
                        TextTable::percent(yield(multi->spec)),
                        multi->dims().area() < two->dims().area() ? "yes" : "no"});
    }
    std::cout << "declared reference circuits under " << scenario->describe() << ":\n"
              << reference << "\n";
  }

  // Trend checks the paper claims.
  const double first = results.front().successRate();
  const double last = results.back().successRate();
  std::cout << "trend: success rate " << TextTable::percent(first) << " at I=8 vs "
            << TextTable::percent(last) << " at I=15 — "
            << (last < first ? "falls with input size (matches the paper)"
                             : "UNEXPECTED: does not fall")
            << "\n";
  return 0;
}

}  // namespace

MCX_BENCH_SUITE("fig6", "Fig. 6: two-level vs multi-level area + yield on random functions",
                runFig6);
