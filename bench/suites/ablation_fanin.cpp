// Ablation A4: multi-level area vs NAND fan-in bound.
//
// The paper lets ABC use NAND gates with fan-in 2..n. This sweep shows how
// the fan-in ceiling moves the gate count, depth, connection-column count
// and final crossbar area, on a structured and an arithmetic function.
#include <iostream>
#include <vector>

#include "api/driver.hpp"
#include "benchdata/registry.hpp"
#include "logic/espresso.hpp"
#include "logic/generators.hpp"
#include "logic/isop.hpp"
#include "netlist/nand_mapper.hpp"
#include "util/text_table.hpp"
#include "xbar/area_model.hpp"

namespace {

int runFanin(const std::vector<std::string>& args) {
  using namespace mcx;

  cli::ArgParser parser("mcx_bench ablation-fanin",
                        "Ablation A4: multi-level area vs NAND fan-in bound");
  if (const auto code = bench::parseSuiteArgs(parser, args)) return *code;

  struct Workload {
    std::string label;
    Cover cover;
  };
  std::vector<Workload> workloads;
  workloads.push_back({"t481 stand-in (structured)", loadBenchmarkFast("t481").cover});
  workloads.push_back({"rd53 (arithmetic)", espressoMinimize(isopCover(weightFunction(5)))});
  workloads.push_back({"majority-7", espressoMinimize(isopCover(majorityFunction(7)))});

  for (const Workload& w : workloads) {
    std::cout << w.label << "  (I=" << w.cover.nin() << " O=" << w.cover.nout()
              << " P=" << w.cover.size() << ", two-level area "
              << twoLevelDims(w.cover).area() << "):\n";
    TextTable table({"max fan-in", "gates", "levels", "conn cols", "ML area", "vs two-level"});
    for (const std::size_t k :
         {std::size_t{2}, std::size_t{3}, std::size_t{4}, std::size_t{6}, std::size_t{8},
          std::size_t{0}}) {
      NandMapOptions opts;
      opts.maxFanin = k;
      const NandNetwork net = mapToNand(w.cover, opts);
      const MultiLevelStats stats = multiLevelStats(net);
      const std::size_t area = multiLevelDims(stats).area();
      table.addRow({k == 0 ? "unbounded (paper: n)" : std::to_string(k),
                    std::to_string(stats.gates), std::to_string(net.levelCount()),
                    std::to_string(stats.connections), std::to_string(area),
                    TextTable::num(100.0 * double(area) / double(twoLevelDims(w.cover).area()),
                                   0) +
                        "%"});
    }
    std::cout << table << "\n";
  }
  std::cout << "expected shape: tighter fan-in bounds add NAND+inverter chains (more gates,\n"
               "more levels, more connection columns), inflating multi-level area; the\n"
               "paper's fan-in-n choice is the area-optimal end of the sweep.\n";
  return 0;
}

}  // namespace

MCX_BENCH_SUITE("ablation-fanin", "A4: multi-level area vs NAND fan-in bound", runFanin);
