// Ablation A4: multi-level area vs NAND fan-in bound.
//
// The paper lets ABC use NAND gates with fan-in 2..n. This sweep shows how
// the fan-in ceiling moves the gate count, depth, connection-column count
// and final crossbar area, on a structured and an arithmetic function.
#include <iostream>
#include <vector>

#include "api/driver.hpp"
#include "circuit/cache.hpp"
#include "circuit/registry.hpp"
#include "util/text_table.hpp"
#include "xbar/area_model.hpp"

namespace {

int runFanin(const std::vector<std::string>& args) {
  using namespace mcx;

  cli::ArgParser parser("mcx_bench ablation-fanin",
                        "Ablation A4: multi-level area vs NAND fan-in bound");
  if (const auto code = bench::parseSuiteArgs(parser, args)) return *code;

  // Workloads as circuit declarations; the fan-in ceiling is the spec's
  // maxFanin knob, so the sweep is one declaration with one field varied.
  struct Workload {
    std::string label;
    const char* spec;
  };
  const std::vector<Workload> workloads{{"t481 stand-in (structured)", "t481"},
                                        {"rd53 (arithmetic)", "rd53-min"},
                                        {"majority-7", "majority7-min"}};

  for (const Workload& w : workloads) {
    const std::shared_ptr<const Circuit> twoLevel = compileCircuit(w.spec);
    const std::size_t twoLevelArea = twoLevel->dims().area();
    std::cout << w.label << "  (I=" << twoLevel->cover.nin() << " O="
              << twoLevel->cover.nout() << " P=" << twoLevel->cover.size()
              << ", two-level area " << twoLevelArea << "):\n";
    TextTable table({"max fan-in", "gates", "levels", "conn cols", "ML area", "vs two-level"});
    for (const std::size_t k :
         {std::size_t{2}, std::size_t{3}, std::size_t{4}, std::size_t{6}, std::size_t{8},
          std::size_t{0}}) {
      CircuitSpec spec = makeCircuitSpec(w.spec);
      spec.realize = CircuitSpec::Realize::MultiLevel;
      spec.maxFanin = k;
      const std::shared_ptr<const Circuit> circuit = compileCircuit(spec);
      const MultiLevelStats stats = multiLevelStats(circuit->layout->network);
      const std::size_t area = circuit->dims().area();
      table.addRow({k == 0 ? "unbounded (paper: n)" : std::to_string(k),
                    std::to_string(stats.gates),
                    std::to_string(circuit->layout->network.levelCount()),
                    std::to_string(stats.connections), std::to_string(area),
                    TextTable::num(100.0 * double(area) / double(twoLevelArea), 0) + "%"});
    }
    std::cout << table << "\n";
  }
  std::cout << "expected shape: tighter fan-in bounds add NAND+inverter chains (more gates,\n"
               "more levels, more connection columns), inflating multi-level area; the\n"
               "paper's fan-in-n choice is the area-optimal end of the sweep.\n";
  return 0;
}

}  // namespace

MCX_BENCH_SUITE("ablation-fanin", "A4: multi-level area vs NAND fan-in bound", runFanin);
