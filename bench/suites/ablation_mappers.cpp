// Ablation A3: what each ingredient of the hybrid algorithm buys.
//
// Compares, at several defect rates: greedy first-fit over all rows, HBA
// without backtracking, full HBA (Algorithm 1), HBA + input-column
// permutation (our extension), and the exact algorithm. Every variant is a
// mapper-registry name resolved by the ExperimentBuilder facade — adding a
// variant to this table is one string.
#include <iostream>
#include <vector>

#include "api/driver.hpp"
#include "api/experiment.hpp"
#include "util/text_table.hpp"

namespace {

int runMappers(const std::vector<std::string>& args) {
  using namespace mcx;

  bench::CommonOptions common;
  cli::ArgParser parser("mcx_bench ablation-mappers",
                        "Ablation A3: mapper variants (greedy / HBA / colperm / EA)");
  common.addSamplesTo(parser);
  if (const auto code = bench::parseSuiteArgs(parser, args)) return *code;

  const std::size_t samples = common.samplesOr(100);
  ExperimentBuilder base;
  base.circuit("sao2").samples(samples).seed(0xc0ffee).timePerSample(true);

  // The paper's Munkres-based EA is the "EA" column; fast-ea shows the
  // Hopcroft-Karp fast path at identical success rates.
  const char* mappers[] = {"greedy", "hba-nobt", "hba", "colperm", "ea-munkres", "fast-ea"};

  TextTable table({"defect rate", "Greedy", "HBA-nobt", "HBA", "ColPerm+HBA", "EA", "EA-fast"});
  std::size_t area = 0;
  for (const double rate : {0.05, 0.10, 0.15, 0.20}) {
    std::vector<std::string> row{TextTable::percent(rate)};
    for (const char* mapper : mappers) {
      const ExperimentResult r =
          ExperimentBuilder(base).mapper(mapper).legacyRates(rate).run();
      area = r.area();
      row.push_back(TextTable::percent(r.successRate()) + " @" +
                    TextTable::num(r.meanSeconds() * 1e3, 2) + "ms");
    }
    table.addRow(std::move(row));
  }
  std::cout << "Ablation: mapper variants on sao2 (area " << area << ", " << samples
            << " samples per cell)\n\n";
  std::cout << table << "\n";
  std::cout << "expected shape: Greedy <= HBA-nobt <= HBA <= ColPerm+HBA and HBA <= EA in\n"
               "success rate; EA-fast matches EA's success exactly (both are exact) at a\n"
               "fraction of the Munkres runtime; the column-permutation extension can\n"
               "exceed both (they only permute rows).\n";
  return 0;
}

}  // namespace

MCX_BENCH_SUITE("ablation-mappers", "A3: mapper-variant ablation through the registry",
                runMappers);
