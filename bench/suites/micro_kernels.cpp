// Microbenchmarks (google-benchmark) of the library's hot kernels:
// row matching, matching-matrix construction, Munkres, tautology checking,
// complement, ISOP, espresso, factoring, end-to-end HBA/EA mapping, and the
// three layers of the Monte Carlo hot path (legacy vs sparse sampling, full
// vs incremental adjacency, cold vs warm-started Hopcroft-Karp) on the bw
// multi-level workload at the paper's 10% stuck-open rate, plus the
// memoized synthesis front-end (full pipeline compile vs cache hit), and
// the telemetry layer's own overhead (counter adds, histogram records,
// disarmed vs histogram-fed spans).
#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "api/driver.hpp"
#include "assign/hopcroft_karp.hpp"
#include "assign/munkres.hpp"
#include "benchdata/registry.hpp"
#include "circuit/cache.hpp"
#include "circuit/registry.hpp"
#include "logic/espresso.hpp"
#include "logic/generators.hpp"
#include "logic/isop.hpp"
#include "map/exact_mapper.hpp"
#include "map/hybrid_mapper.hpp"
#include "netlist/factor.hpp"
#include "netlist/nand_mapper.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "scenario/defect_model.hpp"
#include "xbar/defects.hpp"
#include "xbar/function_matrix.hpp"
#include "xbar/multilevel_layout.hpp"

namespace {

using namespace mcx;

Cover benchCover(std::size_t nin, std::size_t products) {
  Rng rng(1);
  RandomSopOptions opts;
  opts.nin = nin;
  opts.nout = 4;
  opts.products = products;
  opts.literalsPerProduct = nin / 2.0;
  return randomSop(opts, rng);
}

void BM_RowMatching(benchmark::State& state) {
  const Cover cover = benchCover(14, static_cast<std::size_t>(state.range(0)));
  const FunctionMatrix fm = buildFunctionMatrix(cover);
  Rng rng(2);
  const DefectMap defects = DefectMap::sample(fm.rows(), fm.cols(), 0.1, 0.0, rng);
  const BitMatrix cm = crossbarMatrix(defects);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(rowMatches(fm.bits(), i % fm.rows(), cm, i % cm.rows()));
    ++i;
  }
}
BENCHMARK(BM_RowMatching)->Arg(64)->Arg(256);

void BM_MatchingMatrix(benchmark::State& state) {
  const Cover cover = benchCover(12, static_cast<std::size_t>(state.range(0)));
  const FunctionMatrix fm = buildFunctionMatrix(cover);
  Rng rng(3);
  const DefectMap defects = DefectMap::sample(fm.rows(), fm.cols(), 0.1, 0.0, rng);
  const BitMatrix cm = crossbarMatrix(defects);
  std::vector<std::size_t> rows(fm.rows());
  for (std::size_t r = 0; r < fm.rows(); ++r) rows[r] = r;
  for (auto _ : state)
    benchmark::DoNotOptimize(buildMatchingMatrix(fm.bits(), rows, cm, rows));
}
BENCHMARK(BM_MatchingMatrix)->Arg(64)->Arg(256);

void BM_Munkres(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(4);
  CostMatrix cost(n, n, 1);
  for (std::size_t r = 0; r < n; ++r)
    for (std::size_t c = 0; c < n; ++c)
      if (rng.bernoulli(0.8)) cost.at(r, c) = 0;
  for (auto _ : state) benchmark::DoNotOptimize(munkresSolve(cost));
}
BENCHMARK(BM_Munkres)->Arg(32)->Arg(128)->Arg(512);

void BM_Tautology(benchmark::State& state) {
  const Cover cover = benchCover(static_cast<std::size_t>(state.range(0)), 40);
  const auto cubes = cover.projection(0);
  for (auto _ : state) benchmark::DoNotOptimize(tautology(cubes, cover.nin()));
}
BENCHMARK(BM_Tautology)->Arg(8)->Arg(12)->Arg(16);

void BM_Complement(benchmark::State& state) {
  const Cover cover = benchCover(static_cast<std::size_t>(state.range(0)), 30);
  const auto cubes = cover.projection(0);
  for (auto _ : state) benchmark::DoNotOptimize(complementCubes(cubes, cover.nin()));
}
BENCHMARK(BM_Complement)->Arg(8)->Arg(12);

void BM_Isop(benchmark::State& state) {
  const TruthTable tt = weightFunction(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) benchmark::DoNotOptimize(isopCover(tt));
}
BENCHMARK(BM_Isop)->Arg(5)->Arg(8)->Arg(10);

void BM_Espresso(benchmark::State& state) {
  const TruthTable tt = weightFunction(static_cast<std::size_t>(state.range(0)));
  const Cover cover = isopCover(tt);
  for (auto _ : state) benchmark::DoNotOptimize(espressoMinimize(cover));
}
BENCHMARK(BM_Espresso)->Arg(5)->Arg(7);

void BM_Factor(benchmark::State& state) {
  const Cover cover = loadBenchmarkFast("t481").cover;
  const auto cubes = cover.projection(0);
  for (auto _ : state) benchmark::DoNotOptimize(factorCover(cubes, cover.nin()));
}
BENCHMARK(BM_Factor);

// --- Monte Carlo hot-path layers on the bw multi-level workload ------------

const FunctionMatrix& bwFunctionMatrix() {
  static const MultiLevelLayout layout =
      buildMultiLevelLayout(mapToNand(loadBenchmarkFast("bw").cover));
  return layout.fm;
}

void BM_SamplerLegacy(benchmark::State& state) {
  const FunctionMatrix& fm = bwFunctionMatrix();
  const IidBernoulli model(0.10, 0.0);
  Rng rng(6);
  DefectMap map;
  DirtyRows dirty;
  for (auto _ : state) {
    model.generateTracked(fm.rows(), fm.cols(), rng, map, dirty);
    benchmark::DoNotOptimize(map);
  }
}
BENCHMARK(BM_SamplerLegacy);

void BM_SamplerSparse(benchmark::State& state) {
  const FunctionMatrix& fm = bwFunctionMatrix();
  const SparseIidBernoulli model(0.10, 0.0);
  Rng rng(6);
  DefectMap map;
  DirtyRows dirty;
  for (auto _ : state) {
    model.generateTracked(fm.rows(), fm.cols(), rng, map, dirty);
    benchmark::DoNotOptimize(map);
  }
}
BENCHMARK(BM_SamplerSparse);

void BM_AdjacencyFull(benchmark::State& state) {
  const FunctionMatrix& fm = bwFunctionMatrix();
  Rng rng(6);
  const SparseIidBernoulli model(0.10, 0.0);
  const DefectMap defects = model.sample(fm.rows(), fm.cols(), rng);
  const BitMatrix cm = crossbarMatrix(defects);
  BitMatrix adjacency;
  for (auto _ : state) {
    buildCandidateAdjacencyInto(fm.bits(), cm, adjacency);
    benchmark::DoNotOptimize(adjacency);
  }
}
BENCHMARK(BM_AdjacencyFull);

void BM_AdjacencyIncremental(benchmark::State& state) {
  const FunctionMatrix& fm = bwFunctionMatrix();
  Rng rng(6);
  const SparseIidBernoulli model(0.10, 0.0);
  DefectMap defects;
  DirtyRows dirty;
  model.generateTracked(fm.rows(), fm.cols(), rng, defects, dirty);
  const BitMatrix cm = crossbarMatrix(defects);
  MappingContext ctx;
  ctx.setSample(&defects, &dirty);
  for (auto _ : state) benchmark::DoNotOptimize(ctx.candidateAdjacency(fm.bits(), cm));
}
BENCHMARK(BM_AdjacencyIncremental);

void BM_MatchingColdStart(benchmark::State& state) {
  const FunctionMatrix& fm = bwFunctionMatrix();
  Rng rng(6);
  const SparseIidBernoulli model(0.10, 0.0);
  const DefectMap defects = model.sample(fm.rows(), fm.cols(), rng);
  const BitMatrix cm = crossbarMatrix(defects);
  const BitMatrix adjacency = buildCandidateAdjacency(fm.bits(), cm);
  for (auto _ : state)
    benchmark::DoNotOptimize(hopcroftKarp(adjacency, /*warmStart=*/false));
}
BENCHMARK(BM_MatchingColdStart);

void BM_MatchingWarmStart(benchmark::State& state) {
  const FunctionMatrix& fm = bwFunctionMatrix();
  Rng rng(6);
  const SparseIidBernoulli model(0.10, 0.0);
  const DefectMap defects = model.sample(fm.rows(), fm.cols(), rng);
  const BitMatrix cm = crossbarMatrix(defects);
  const BitMatrix adjacency = buildCandidateAdjacency(fm.bits(), cm);
  for (auto _ : state)
    benchmark::DoNotOptimize(hopcroftKarp(adjacency, /*warmStart=*/true));
}
BENCHMARK(BM_MatchingWarmStart);

void BM_MapHba(benchmark::State& state) {
  const BenchmarkCircuit bench = loadBenchmarkFast("alu4");
  const FunctionMatrix fm = buildFunctionMatrix(bench.cover);
  Rng rng(5);
  const DefectMap defects = DefectMap::sample(fm.rows(), fm.cols(), 0.1, 0.0, rng);
  const BitMatrix cm = crossbarMatrix(defects);
  const HybridMapper mapper;
  for (auto _ : state) benchmark::DoNotOptimize(mapper.map(fm, cm));
}
BENCHMARK(BM_MapHba);

void BM_MapEa(benchmark::State& state) {
  const BenchmarkCircuit bench = loadBenchmarkFast("alu4");
  const FunctionMatrix fm = buildFunctionMatrix(bench.cover);
  Rng rng(5);
  const DefectMap defects = DefectMap::sample(fm.rows(), fm.cols(), 0.1, 0.0, rng);
  const BitMatrix cm = crossbarMatrix(defects);
  const ExactMapper mapper;
  for (auto _ : state) benchmark::DoNotOptimize(mapper.map(fm, cm));
}
BENCHMARK(BM_MapEa);

// --- Memoized synthesis front-end: full pipeline vs cache lookup -----------

void BM_CircuitCompileCacheMiss(benchmark::State& state) {
  const CircuitSpec spec = makeCircuitSpec("rd53-min");
  for (auto _ : state)
    benchmark::DoNotOptimize(compileCircuit(spec, /*useCache=*/false));
}
BENCHMARK(BM_CircuitCompileCacheMiss);

void BM_CircuitCompileCacheHit(benchmark::State& state) {
  const CircuitSpec spec = makeCircuitSpec("rd53-min");
  compileCircuit(spec);  // warm the global cache
  for (auto _ : state) benchmark::DoNotOptimize(compileCircuit(spec));
}
BENCHMARK(BM_CircuitCompileCacheHit);

// --- Telemetry overhead: counter increments, histogram records, spans -----

void BM_ObsCounterAdd(benchmark::State& state) {
  obs::Counter counter;
  for (auto _ : state) counter.add(1);
  benchmark::DoNotOptimize(counter.value());
}
BENCHMARK(BM_ObsCounterAdd);

void BM_ObsHistogramRecord(benchmark::State& state) {
  obs::Histogram hist;
  std::uint64_t v = 1;
  for (auto _ : state) {
    hist.record(v);
    v = v * 2862933555777941757ull + 3037000493ull;  // cheap LCG spread
  }
  benchmark::DoNotOptimize(hist.count());
}
BENCHMARK(BM_ObsHistogramRecord);

// The cost left in an instrumented hot path when nothing is armed: the
// constructor's relaxed load + branch, no clock reads.
void BM_ObsSpanDisarmed(benchmark::State& state) {
  obs::setProfiling(false);
  for (auto _ : state) {
    obs::Span span("bench_disarmed");
    benchmark::DoNotOptimize(&span);
  }
}
BENCHMARK(BM_ObsSpanDisarmed);

// A span feeding a histogram (no trace sink): two clock reads + a record.
void BM_ObsSpanHistogram(benchmark::State& state) {
  obs::Histogram hist;
  for (auto _ : state) {
    obs::Span span("bench_histogram", &hist);
    benchmark::DoNotOptimize(&span);
  }
}
BENCHMARK(BM_ObsSpanHistogram);

// The profilingArmed() gate itself, as used by the HK hooks.
void BM_ObsProfilingGate(benchmark::State& state) {
  obs::setProfiling(false);
  for (auto _ : state) benchmark::DoNotOptimize(obs::profilingArmed());
}
BENCHMARK(BM_ObsProfilingGate);

// Google Benchmark owns this suite's flag grammar (--benchmark_filter,
// --benchmark_min_time, ...): args are forwarded verbatim instead of going
// through cli::ArgParser, and --help prints benchmark's own usage.
int runMicroKernels(const std::vector<std::string>& args) {
  std::vector<std::string> argvStore;
  argvStore.emplace_back("mcx_bench-micro");
  argvStore.insert(argvStore.end(), args.begin(), args.end());
  std::vector<char*> argv;
  argv.reserve(argvStore.size());
  for (std::string& arg : argvStore) argv.push_back(arg.data());
  int argc = static_cast<int>(argv.size());
  benchmark::Initialize(&argc, argv.data());
  if (benchmark::ReportUnrecognizedArguments(argc, argv.data())) return 2;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

}  // namespace

MCX_BENCH_SUITE("micro", "google-benchmark microkernels of the library's hot paths",
                runMicroKernels);
