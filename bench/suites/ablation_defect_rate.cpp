// Ablation A2: mapping success rate vs stuck-at-open defect rate.
//
// The paper fixes 10%; this sweep shows where each circuit's yield cliff
// sits on an optimum-size crossbar, for both HBA and EA. Declared through
// the ExperimentBuilder facade: one base declaration per circuit, cloned
// per rate and mapper (the legacy rate-pair path, so success counts stay
// bit-identical to the pre-facade bench).
#include <iostream>
#include <vector>

#include "api/driver.hpp"
#include "api/experiment.hpp"
#include "scenario/registry.hpp"
#include "util/text_table.hpp"

namespace {

int runDefectRate(const std::vector<std::string>& args) {
  using namespace mcx;

  bench::CommonOptions common;
  cli::ArgParser parser("mcx_bench ablation-defect-rate",
                        "Ablation A2: success rate vs stuck-at-open defect rate");
  common.addSamplesTo(parser);
  if (const auto code = bench::parseSuiteArgs(parser, args)) return *code;

  const std::size_t samples = common.samplesOr(100);
  const std::vector<double>& rates = standardRateGrid();
  const char* circuits[] = {"rd53", "misex1", "sao2", "rd73", "clip"};

  std::cout << "Ablation: success rate vs defect rate (optimum-size crossbars, " << samples
            << " samples per cell)\n\n";

  for (const char* name : circuits) {
    ExperimentBuilder base;
    base.circuit(name).samples(samples).seed(0xab1a);

    TextTable table({"defect rate", "HBA Psucc", "EA Psucc", "HBA backtracks/sample"});
    std::size_t area = 0;
    for (const double rate : rates) {
      const ExperimentResult hba =
          ExperimentBuilder(base).mapper("hba").legacyRates(rate).run();
      const ExperimentResult ea =
          ExperimentBuilder(base).mapper("ea").legacyRates(rate).run();
      area = hba.area();
      table.addRow({TextTable::percent(rate), TextTable::percent(hba.successRate()),
                    TextTable::percent(ea.successRate()),
                    TextTable::num(double(hba.outcome.totalBacktracks) / double(samples), 2)});
    }
    std::cout << name << " (area " << area << "):\n" << table << "\n";
  }
  std::cout << "expected shape: success degrades monotonically with rate; EA >= HBA\n"
               "everywhere; backtracking activity peaks around the cliff.\n";
  return 0;
}

}  // namespace

MCX_BENCH_SUITE("ablation-defect-rate", "A2: success rate vs defect rate (yield cliffs)",
                runDefectRate);
