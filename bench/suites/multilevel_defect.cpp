// Ablation A5 (the paper's closing future-work item): defect-tolerant
// mapping of MULTI-LEVEL designs.
//
// The row-matching formulation carries over unchanged — the multi-level
// function matrix has gate rows instead of minterm rows plus connection
// columns — so HBA and EA run as-is. Every successful mapping is
// additionally validated end-to-end with the behavioral simulator.
//
// This bench also drives the parallel Monte Carlo engine through a threads
// sweep (1/2/4/hw): success counts and row assignments must be identical at
// every thread count (the engine's determinism contract), and wall-clock
// per sweep is emitted as machine-readable JSON (MCX_BENCH_JSON, default
// BENCH_defect_mc.json) to track the perf trajectory.
#include <fstream>
#include <iostream>
#include <vector>

#include "api/driver.hpp"
#include "circuit/cache.hpp"
#include "circuit/registry.hpp"
#include "defect_sweep.hpp"
#include "logic/truth_table.hpp"
#include "map/exact_mapper.hpp"
#include "map/hybrid_mapper.hpp"
#include "sim/crossbar_sim.hpp"
#include "util/error.hpp"
#include "util/text_table.hpp"

namespace {

int runMultilevelDefect(const std::vector<std::string>& args) {
  using namespace mcx;

  // Default workloads as circuit-pipeline declarations: the generated
  // circuits espresso-polished (what this suite always synthesized by
  // hand), the stand-ins through the registry's fast load. The committed
  // BENCH_defect_mc.json success counts pin this path bit-identically.
  struct Workload {
    std::string label;  ///< committed JSON circuit name
    std::string spec;
  };
  std::vector<Workload> workloads{
      {"rd53", "rd53-min"},
      {"sqrt8", "sqrt8-min"},
      {"t481 stand-in", "t481"},
      // Large multi-level instance (289x299 FM): the one that actually
      // exercises the engine's solver and threading path.
      {"bw", "bw"},
  };

  bench::CommonOptions common;
  bool userWorkloads = false;
  cli::ArgParser parser("mcx_bench multilevel",
                        "defect-tolerant mapping of multi-level designs (threads sweep)");
  common.addSamplesTo(parser);
  common.addJsonTo(parser);
  parser.addCallback("--circuit-spec", "NAME|SPEC",
                     "replace the default workloads with this circuit declaration "
                     "(preset name, file:/pla:/sop:/gen: source or JSON spec; "
                     "realized multi-level; repeatable)",
                     [&workloads, &userWorkloads](const std::string& value) {
                       const CircuitSpec spec = makeCircuitSpec(value);
                       // This suite always realizes multi-level; silently
                       // overriding an explicit contrary knob would run a
                       // different pipeline than the accepted declaration.
                       if (spec.realizeExplicit && !spec.multiLevel())
                         throw InvalidArgument(
                             "--circuit-spec: this suite realizes circuits "
                             "multi-level; drop the \"realize\" member");
                       if (!userWorkloads) workloads.clear();
                       userWorkloads = true;
                       workloads.push_back({spec.displayLabel(), value});
                     });
  parser.addAction("--list-circuits", "list the circuit presets", bench::listCircuits);
  if (const auto code = bench::parseSuiteArgs(parser, args)) return *code;

  const std::size_t samples = common.samplesOr(100);
  const std::string jsonPath = common.jsonOr("BENCH_defect_mc.json");
  std::cout << "Defect-tolerant mapping of multi-level designs (paper future work), "
            << samples << " samples per cell, 10% stuck-at-open\n\n";

  const std::vector<std::size_t> sweep = benchutil::threadsSweep();
  std::ofstream jsonFile(jsonPath);
  JsonWriter json(jsonFile);
  json.beginObject();
  json.field("bench", "multilevel_defect");
  json.field("samples", samples);
  json.field("stuck_open_rate", 0.10);
  json.field("hardware_concurrency", resolveThreadCount(0));
  json.key("circuits").beginArray();

  TextTable table({"circuit", "ML area", "HBA Psucc", "EA Psucc", "HBA 1T s", "sparse 1T s",
                   "sparse gain", "det", "sim-validated"});
  bool allDeterministic = true;

  for (const Workload& w : workloads) {
    CircuitSpec spec = makeCircuitSpec(w.spec);
    spec.realize = CircuitSpec::Realize::MultiLevel;
    const std::shared_ptr<const Circuit> circuit = compileCircuit(spec);
    const MultiLevelLayout& layout = *circuit->layout;
    const FunctionMatrix& fm = circuit->fm;

    // Legacy rate-pair configuration: draw-for-draw identical to the
    // pre-scenario engine, so these success counts are the bit-identity
    // regression surface of the committed JSON.
    DefectExperimentConfig cfg;
    cfg.samples = samples;
    cfg.stuckOpenRate = 0.10;
    cfg.seed = 0x51a;
    cfg.keepMappings = true;

    // Sparse configuration: same rate through the O(defects) sampler —
    // statistically identical, different stream, and the wall-clock row the
    // hot-path speedup target is measured on.
    DefectExperimentConfig sparseCfg = cfg;
    sparseCfg.model = std::make_shared<SparseIidBernoulli>(0.10, 0.0);

    json.beginObject();
    json.field("name", w.label);
    json.field("area", fm.dims().area());

    const HybridMapper hba;
    const ExactMapper ea;

    json.key("mappers").beginArray();
    const benchutil::SweepOutcome hbaOut = benchutil::runThreadsSweep(fm, hba, cfg, sweep, json);
    const benchutil::SweepOutcome eaOut = benchutil::runThreadsSweep(fm, ea, cfg, sweep, json);
    const benchutil::SweepOutcome hbaSparse =
        benchutil::runThreadsSweep(fm, hba, sparseCfg, sweep, json);
    const benchutil::SweepOutcome eaSparse =
        benchutil::runThreadsSweep(fm, ea, sparseCfg, sweep, json);
    json.endArray();
    const bool circuitDeterministic = hbaOut.deterministic && eaOut.deterministic &&
                                      hbaSparse.deterministic && eaSparse.deterministic;
    allDeterministic = allDeterministic && circuitDeterministic;

    // Spot-check successful HBA mappings functionally: re-derive each
    // sample's defect map (identical streams by the engine contract) and
    // simulate the mapped crossbar on random inputs. Runs for the legacy
    // AND the sparse stream.
    std::size_t validated = 0, validationChecks = 0;
    const TruthTable ref = TruthTable::fromCover(circuit->cover);
    for (const auto* run : {&hbaOut, &hbaSparse}) {
      const DefectExperimentResult& reference = run->reference;
      const DefectExperimentConfig& runCfg = run == &hbaOut ? cfg : sparseCfg;
      std::size_t budget = 10;
      forEachDefectSample(
          fm, runCfg, [&](std::size_t s, const DefectMap& defects, const BitMatrix&) {
            const MappingResult& mapping = reference.mappings[s];
            if (!mapping.success || budget == 0) return;
            --budget;
            ++validationChecks;
            bool good = true;
            Rng inputRng(900 + s);
            for (int check = 0; check < 16 && good; ++check) {
              DynBits in(circuit->cover.nin());
              std::size_t minterm = 0;
              for (std::size_t v = 0; v < circuit->cover.nin(); ++v) {
                const bool bit = inputRng.bernoulli(0.5);
                in.set(v, bit);
                minterm |= static_cast<std::size_t>(bit) << v;
              }
              const DynBits out = simulateMultiLevel(layout, mapping.rowAssignment, defects, in);
              for (std::size_t o = 0; o < circuit->cover.nout(); ++o)
                if (out.test(o) != ref.get(o, minterm)) good = false;
            }
            if (good) ++validated;
          });
    }
    json.field("sim_validated", validated);
    json.field("sim_checks", validationChecks);
    json.endObject();

    table.addRow({w.label, std::to_string(fm.dims().area()),
                  TextTable::percent(hbaSparse.reference.successRate()),
                  TextTable::percent(eaSparse.reference.successRate()),
                  TextTable::num(hbaOut.wallAt1, 3), TextTable::num(hbaSparse.wallAt1, 3),
                  hbaSparse.wallAt1 > 0
                      ? TextTable::num(hbaOut.wallAt1 / hbaSparse.wallAt1, 2) + "x"
                      : "-",
                  circuitDeterministic ? "yes" : "NO",
                  std::to_string(validated) + "/" + std::to_string(validationChecks)});
  }
  json.endArray();
  json.endObject();
  jsonFile << "\n";

  std::cout << table << "\n";
  std::cout << "every simulated spot-check of a successful mapping must pass (last column\n"
               "n/n): the mapped multi-level crossbar computes the original function.\n"
               "det = success counts and row assignments identical across the threads\n"
               "sweep (1/2/4/hw) for a fixed seed, for the legacy AND sparse samplers.\n"
               "sparse gain = legacy 1T wall / sparse 1T wall on this run (the tracked\n"
               "hot-path speedup is vs the committed baseline JSON).\n"
               "JSON written to " << jsonPath << "\n";
  return allDeterministic ? 0 : 1;
}

}  // namespace

MCX_BENCH_SUITE("multilevel",
                "A5: multi-level defect mapping + engine determinism sweep (BENCH_defect_mc)",
                runMultilevelDefect);
