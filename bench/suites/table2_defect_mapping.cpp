// Table II reproduction: success rate and runtime of the proposed hybrid
// algorithm (HBA) vs the exact algorithm (EA) on optimum-size crossbars
// with 10% stuck-at-open defects, 200 Monte Carlo samples per circuit.
//
// The Monte Carlo engine runs a threads sweep (1/2/4/hw) per circuit and
// mapper: identical success counts at every thread count are asserted, and
// per-sweep wall time is emitted as machine-readable JSON
// (MCX_BENCH_JSON, default BENCH_table2_defect_mc.json).
//
// Override the sample count with MCX_SAMPLES.
#include <fstream>
#include <iostream>
#include <vector>

#include "api/driver.hpp"
#include "benchdata/registry.hpp"
#include "circuit/cache.hpp"
#include "circuit/registry.hpp"
#include "defect_sweep.hpp"
#include "map/exact_mapper.hpp"
#include "map/hybrid_mapper.hpp"
#include "util/text_table.hpp"

namespace {

int runTable2(const std::vector<std::string>& args) {
  using namespace mcx;

  bench::CommonOptions common;
  cli::ArgParser parser("mcx_bench table2",
                        "Table II: HBA vs EA success/runtime at 10% stuck-open");
  common.addSamplesTo(parser);
  common.addJsonTo(parser);
  if (const auto code = bench::parseSuiteArgs(parser, args)) return *code;

  const std::size_t samples = common.samplesOr(200);
  const std::string jsonPath = common.jsonOr("BENCH_table2_defect_mc.json");
  std::cout << "Table II: HBA vs EA on optimum-size crossbars, 10% stuck-at-open, "
            << samples << " samples per circuit\n\n";

  TextTable table({"name", "I", "O", "P", "area", "IR", "HBA Psucc", "(paper)", "HBA time s",
                   "EA Psucc", "(paper)", "EA time s", "speedup"});

  const HybridMapper hba;
  const ExactMapper ea;
  const std::vector<std::size_t> sweep = benchutil::threadsSweep();

  std::ofstream jsonFile(jsonPath);
  JsonWriter json(jsonFile);
  json.beginObject();
  json.field("bench", "table2_defect_mapping");
  json.field("samples", samples);
  json.field("stuck_open_rate", 0.10);
  json.field("hardware_concurrency", resolveThreadCount(0));
  json.key("circuits").beginArray();

  bool allDeterministic = true;
  double worstGap = 0;
  for (const auto& info : paperBenchmarks()) {
    if (!info.inTable2) continue;
    // Registry circuit through the pipeline; synth=espresso is the
    // registry's polished load (loadBenchmark), exactly what this table
    // always used — the committed BENCH_table2 counts anchor it.
    CircuitSpec spec = makeCircuitSpec(info.name);
    spec.synth = CircuitSpec::Synth::Espresso;
    const std::shared_ptr<const Circuit> circuit = compileCircuit(spec);
    const Cover& cover = circuit->cover;
    const FunctionMatrix& fm = circuit->fm;

    DefectExperimentConfig cfg;
    cfg.samples = samples;
    cfg.stuckOpenRate = 0.10;
    cfg.seed = 0x7ab1e2;

    json.beginObject();
    json.field("name", info.name);
    json.field("area", fm.dims().area());

    json.key("mappers").beginArray();
    const benchutil::SweepOutcome hbaOut = benchutil::runThreadsSweep(fm, hba, cfg, sweep, json);
    const benchutil::SweepOutcome eaOut = benchutil::runThreadsSweep(fm, ea, cfg, sweep, json);
    json.endArray();
    json.endObject();
    allDeterministic = allDeterministic && hbaOut.deterministic && eaOut.deterministic;

    const DefectExperimentResult& hbaR = hbaOut.reference;
    const DefectExperimentResult& eaR = eaOut.reference;
    const double speedup = hbaR.meanSeconds() > 0 ? eaR.meanSeconds() / hbaR.meanSeconds() : 0;
    worstGap = std::max(worstGap, eaR.successRate() - hbaR.successRate());

    table.addRow({info.name, std::to_string(cover.nin()),
                  std::to_string(cover.nout()), std::to_string(cover.size()),
                  std::to_string(fm.dims().area()),
                  TextTable::percent(fm.inclusionRatio()),
                  TextTable::percent(hbaR.successRate()),
                  info.paperPsuccHba ? TextTable::percent(*info.paperPsuccHba) : "-",
                  TextTable::num(hbaR.meanSeconds(), 6),
                  TextTable::percent(eaR.successRate()),
                  info.paperPsuccEa ? TextTable::percent(*info.paperPsuccEa) : "-",
                  TextTable::num(eaR.meanSeconds(), 6), TextTable::num(speedup, 1) + "x"});
  }
  json.endArray();
  json.field("all_deterministic", allDeterministic);
  json.endObject();
  jsonFile << "\n";

  std::cout << table << "\n";
  std::cout << "expected shape (paper): HBA within ~15% of EA's success rate while being\n"
               "faster on the large circuits (apex4, alu4); EA now runs the Hopcroft-Karp\n"
               "fast path, so the gap is narrower than the paper's Munkres-based EA.\n";
  std::cout << "largest EA-HBA success gap observed: " << TextTable::percent(worstGap, 1)
            << "\n";
  std::cout << "success counts identical across threads sweep: "
            << (allDeterministic ? "yes" : "NO") << "; JSON written to " << jsonPath << "\n";
  return allDeterministic ? 0 : 1;
}

}  // namespace

MCX_BENCH_SUITE("table2",
                "Table II: HBA vs EA on optimum-size crossbars (BENCH_table2_defect_mc)",
                runTable2);
