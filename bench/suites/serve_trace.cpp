// Service trace replay: the mcx_serve engine under a mixed request stream.
//
// Drives an in-process ExperimentService with a deterministic trace of
// mixed requests — several circuits and mappers, legacy and scenario
// paths, a sprinkling of tight deadlines and malformed lines, plus one
// deliberate no-backpressure burst — twice: once against a cold circuit
// cache (every distinct circuit synthesizes) and once warm (everything
// coalesces onto cached artifacts). Emits BENCH_serve.json with sustained
// request throughput, p50/p90/p99 response latency (obs::Histogram
// quantiles), per-stage queue-wait and synthesis-time distributions, shed
// and deadline-miss counts for both passes.
//
// Usage:
//   mcx_bench serve-trace [--requests N] [--queue-depth N] [--pool-threads N]
//                         [--seed S] [--json PATH]
#include <algorithm>
#include <chrono>
#include <fstream>
#include <iostream>
#include <memory>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "api/driver.hpp"
#include "circuit/cache.hpp"
#include "obs/metrics.hpp"
#include "scenario/spec.hpp"
#include "serve/service.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"
#include "util/stopwatch.hpp"
#include "util/text_table.hpp"

namespace {

using namespace mcx;
using serve::ExperimentService;
using serve::ServiceCounters;
using serve::ServiceOptions;

struct TraceConfig {
  std::size_t requests = 1000;
  std::size_t queueDepth = 64;
  std::size_t poolThreads = 1;
  std::uint64_t seed = 0x7ace;
};

/// The deterministic mixed trace: same seed, same requests, same order.
std::vector<std::string> buildTrace(const TraceConfig& config) {
  const char* const circuits[] = {"rd53-min", "sqrt8-min", "majority7-min", "bw", "t481"};
  const char* const mappers[] = {"hba", "hba", "hba", "fast-ea"};  // hba-heavy mix
  const char* const scenarios[] = {"", "", "paper-iid", "clustered"};  // "" = legacy

  Rng rng(config.seed);
  std::vector<std::string> trace;
  trace.reserve(config.requests);
  for (std::size_t i = 0; i < config.requests; ++i) {
    // ~2% malformed lines: the parse path is part of the served mix.
    if (rng.bernoulli(0.02)) {
      // Built via append: GCC 12 -Wrestrict false positive (PR 105329).
      std::string bad = R"({"id": "bad-)";
      bad += std::to_string(i);
      bad += R"(", "circuit": )";
      trace.push_back(std::move(bad));
      continue;
    }
    std::ostringstream req;
    req << "{\"id\": \"r" << i << "\"";
    req << ", \"circuit\": \"" << circuits[rng.uniformInt(0, 4)] << "\"";
    req << ", \"mapper\": \"" << mappers[rng.uniformInt(0, 3)] << "\"";
    const char* scenario = scenarios[rng.uniformInt(0, 3)];
    if (scenario[0] != '\0')
      req << ", \"scenario\": \"" << scenario << "\", \"rate\": 0.08";
    req << ", \"samples\": " << rng.uniformInt(10, 40);
    req << ", \"seed\": " << rng.uniformInt(1, 1u << 20);
    // ~5% carry deadlines tight enough that queue waits push some over.
    if (rng.bernoulli(0.05)) req << ", \"deadline_ms\": " << rng.uniformInt(2, 12);
    req << "}";
    trace.push_back(req.str());
  }
  return trace;
}

struct PassResult {
  double wallSeconds = 0;
  double sustainedRps = 0;
  double p50Millis = 0;
  double p90Millis = 0;
  double p99Millis = 0;
  double queueP50Millis = 0;
  double queueP99Millis = 0;
  double synthP50Millis = 0;
  double synthP99Millis = 0;
  double synthMaxMillis = 0;
  ServiceCounters counters;
  std::uint64_t cacheEvictions = 0;      ///< byte-budget evictions during the pass
  std::uint64_t cacheEvictedBytes = 0;
};

constexpr double kNsPerMs = 1e6;  // obs::Histogram quantiles are nanoseconds

/// Replay the trace through a fresh service. Submission uses backpressure
/// (wait for queue room) so the measured shed/deadline numbers come from
/// the deliberate burst phase and the deadline mix, not from the replay
/// loop outrunning a 1-thread executor by construction.
PassResult runPass(const std::vector<std::string>& trace, const TraceConfig& config) {
  ServiceOptions options;
  options.queueDepth = config.queueDepth;
  options.requestThreads = 1;
  options.poolThreads = config.poolThreads;

  // Per-pass distributions, straight into log-bucketed histograms: no
  // vector growth or post-hoc sort on the response path, and the same
  // quantile math the service's own "serve.*" histograms report.
  const auto latencyHist = std::make_unique<obs::Histogram>();
  const auto queueHist = std::make_unique<obs::Histogram>();
  const auto synthHist = std::make_unique<obs::Histogram>();
  ExperimentService service(options, [&](const std::string& line) {
    const SpecValue doc = parseSpec(line);
    if (doc.find("total_ms") != nullptr)
      latencyHist->recordMillis(doc.numberOr("total_ms", 0));
    if (doc.find("queue_ms") != nullptr)
      queueHist->recordMillis(doc.numberOr("queue_ms", 0));
    if (doc.find("synth_ms") != nullptr)
      synthHist->recordMillis(doc.numberOr("synth_ms", 0));
  });

  const auto inSystem = [&] {
    const ServiceCounters c = service.counters();
    return c.accepted - (c.completedOk + c.deadlineExceeded + c.cancelled + c.internalErrors);
  };

  const CircuitCache::Stats cacheBefore = CircuitCache::global().stats();
  Stopwatch wall;
  for (const std::string& line : trace) {
    // Backpressure: hold submission while the queue is at capacity.
    while (inSystem() >= options.queueDepth)
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    service.submit(line);
  }
  // The burst: 2x queue depth fired with no backpressure — the bounded
  // queue must shed the overflow immediately and keep everything else.
  for (std::size_t i = 0; i < 2 * config.queueDepth; ++i) {
    std::string burst = R"({"id": "burst-)";
    burst += std::to_string(i);
    burst += R"(", "circuit": "rd53-min", "samples": 10, "seed": 1})";
    service.submit(burst);
  }
  service.drain();

  PassResult result;
  result.wallSeconds = wall.seconds();
  result.counters = service.counters();
  const CircuitCache::Stats cacheAfter = CircuitCache::global().stats();
  result.cacheEvictions = cacheAfter.evictions - cacheBefore.evictions;
  result.cacheEvictedBytes = cacheAfter.evictedBytes - cacheBefore.evictedBytes;
  result.sustainedRps =
      static_cast<double>(result.counters.completedOk) / result.wallSeconds;
  const obs::Histogram::Snapshot latency = latencyHist->snapshot();
  result.p50Millis = latency.quantile(0.50) / kNsPerMs;
  result.p90Millis = latency.quantile(0.90) / kNsPerMs;
  result.p99Millis = latency.quantile(0.99) / kNsPerMs;
  const obs::Histogram::Snapshot queueWait = queueHist->snapshot();
  result.queueP50Millis = queueWait.quantile(0.50) / kNsPerMs;
  result.queueP99Millis = queueWait.quantile(0.99) / kNsPerMs;
  const obs::Histogram::Snapshot synth = synthHist->snapshot();
  result.synthP50Millis = synth.quantile(0.50) / kNsPerMs;
  result.synthP99Millis = synth.quantile(0.99) / kNsPerMs;
  result.synthMaxMillis = static_cast<double>(synth.max) / kNsPerMs;
  return result;
}

void writePass(JsonWriter& json, const char* label, const PassResult& pass) {
  json.beginObject();
  json.field("pass", label);
  json.field("wall_seconds", pass.wallSeconds);
  json.field("sustained_rps", pass.sustainedRps);
  json.field("p50_latency_ms", pass.p50Millis);
  json.field("p90_latency_ms", pass.p90Millis);
  json.field("p99_latency_ms", pass.p99Millis);
  json.field("queue_wait_p50_ms", pass.queueP50Millis);
  json.field("queue_wait_p99_ms", pass.queueP99Millis);
  json.field("synth_p50_ms", pass.synthP50Millis);
  json.field("synth_p99_ms", pass.synthP99Millis);
  json.field("synth_max_ms", pass.synthMaxMillis);
  json.field("received", pass.counters.received);
  json.field("completed_ok", pass.counters.completedOk);
  json.field("parse_errors", pass.counters.parseErrors);
  json.field("shed_overloaded", pass.counters.shedOverloaded);
  // Governance breakdown: which shedder did the work (all zero at the
  // default knobs — the committed invariants ok+ddl/parse/shed are measured
  // with governance off, and MUST stay identical when it merely exists).
  json.field("client_shed", pass.counters.clientShed);
  json.field("cost_shed", pass.counters.costShed);
  json.field("batch_shed", pass.counters.batchShed);
  json.field("aged_out", pass.counters.agedOut);
  json.field("degraded_responses", pass.counters.degradedResponses);
  json.field("deadline_exceeded", pass.counters.deadlineExceeded);
  json.field("internal_errors", pass.counters.internalErrors);
  json.field("queue_high_water", pass.counters.queueHighWater);
  json.field("samples_completed", pass.counters.samplesCompleted);
  json.field("circuit_cache_hits", pass.counters.circuitCacheHits);
  json.field("circuit_cache_misses", pass.counters.circuitCacheMisses);
  json.field("cache_evictions", pass.cacheEvictions);
  json.field("cache_evicted_bytes", pass.cacheEvictedBytes);
  json.field("synthesis_runs", pass.counters.synthesisRuns);
  json.endObject();
}

int runServeTrace(const std::vector<std::string>& args) {
  TraceConfig config;
  bench::CommonOptions common;

  cli::ArgParser parser("mcx_bench serve-trace",
                        "mixed-request trace replay through the experiment service "
                        "(cold vs warm circuit cache)");
  common.addSeedTo(parser);
  common.addJsonTo(parser);
  parser.add("--requests", &config.requests, "N", "trace length (default 1000)");
  parser.add("--queue-depth", &config.queueDepth, "N", "admission queue depth (default 64)");
  parser.add("--pool-threads", &config.poolThreads, "N",
             "sample-pool parallelism (default 1)");
  if (const auto code = bench::parseSuiteArgs(parser, args)) return *code;
  config.seed = common.seedOr(config.seed);
  const std::string jsonPath = common.jsonOr("BENCH_serve.json");
  MCX_REQUIRE(config.requests > 0, "--requests must be positive");
  MCX_REQUIRE(config.queueDepth > 0, "--queue-depth must be positive");

  const std::vector<std::string> trace = buildTrace(config);
  std::cout << "serve-trace: " << trace.size() << " requests, queue depth "
            << config.queueDepth << ", pool threads " << config.poolThreads << " (seed "
            << config.seed << ")\n\n";

  // Cold pass: every distinct circuit declaration synthesizes from scratch.
  CircuitCache::global().clear();
  const PassResult cold = runPass(trace, config);
  // Warm pass: the same trace again, everything already compiled.
  const PassResult warm = runPass(trace, config);

  std::ostringstream jsonBuffer;
  JsonWriter json(jsonBuffer);
  json.beginObject();
  json.field("bench", "serve_trace");
  json.field("requests", trace.size());
  json.field("queue_depth", config.queueDepth);
  json.field("pool_threads", config.poolThreads);
  json.field("seed", config.seed);
  json.key("passes").beginArray();
  writePass(json, "cold", cold);
  writePass(json, "warm", warm);
  json.endArray();
  json.endObject();
  std::ofstream jsonFile(jsonPath);
  jsonFile << jsonBuffer.str() << "\n";
  jsonFile.flush();
  if (!jsonFile) {
    std::cerr << "serve_trace: cannot write " << jsonPath << "\n";
    return 2;
  }

  TextTable table({"pass", "req/s", "p50 ms", "p90 ms", "p99 ms", "q p99", "syn p99", "ok",
                   "shed", "ddl miss", "synth"});
  const auto addRow = [&table](const char* label, const PassResult& pass) {
    table.addRow({label, TextTable::num(pass.sustainedRps, 1),
                  TextTable::num(pass.p50Millis, 3), TextTable::num(pass.p90Millis, 3),
                  TextTable::num(pass.p99Millis, 3),
                  TextTable::num(pass.queueP99Millis, 3),
                  TextTable::num(pass.synthP99Millis, 3),
                  std::to_string(pass.counters.completedOk),
                  std::to_string(pass.counters.shedOverloaded),
                  std::to_string(pass.counters.deadlineExceeded),
                  std::to_string(pass.counters.synthesisRuns)});
  };
  addRow("cold", cold);
  addRow("warm", warm);
  std::cout << table << "\nJSON written to " << jsonPath << "\n";

  // Self-checks: the burst must shed, the warm pass must not re-synthesize.
  int failures = 0;
  if (cold.counters.shedOverloaded == 0 || warm.counters.shedOverloaded == 0) {
    std::cerr << "serve_trace: the no-backpressure burst was not shed\n";
    ++failures;
  }
  if (warm.counters.synthesisRuns != 0) {
    std::cerr << "serve_trace: warm pass re-synthesized " << warm.counters.synthesisRuns
              << " circuits (cache coalescing broken)\n";
    ++failures;
  }
  // The workload must leave the service's per-stage registry histograms
  // populated — the contract behind the {"type":"stats"} snapshot.
  for (const char* stage : {"serve.queue_wait", "serve.synthesis", "serve.mc_run",
                            "serve.emit"}) {
    if (obs::Registry::global().histogram(stage).count() == 0) {
      std::cerr << "serve_trace: registry histogram " << stage << " stayed empty\n";
      ++failures;
    }
  }
  return failures == 0 ? 0 : 1;
}

}  // namespace

MCX_BENCH_SUITE("serve-trace",
                "mixed-request trace through the experiment service, cold vs warm cache "
                "(BENCH_serve)",
                runServeTrace);
