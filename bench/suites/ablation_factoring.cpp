// Ablation A6: factoring quality vs multi-level crossbar area.
//
// Compares the three SOP -> NAND strategies (flat NAND-NAND, literal-based
// quick factoring, kernel-based good factoring) on structured, arithmetic
// and random workloads. This is the knob that decides whether multi-level
// synthesis beats two-level (Fig. 6 / Table I behaviour).
#include <iostream>
#include <vector>

#include "api/driver.hpp"
#include "circuit/cache.hpp"
#include "circuit/registry.hpp"
#include "logic/generators.hpp"
#include "util/text_table.hpp"

namespace {

int runFactoring(const std::vector<std::string>& args) {
  using namespace mcx;

  cli::ArgParser parser("mcx_bench ablation-factoring",
                        "Ablation A6: factoring strategy vs multi-level crossbar area");
  if (const auto code = bench::parseSuiteArgs(parser, args)) return *code;

  // Workloads as circuit-pipeline declarations; the factoring axis is the
  // spec's own knob, so every cell is the same declaration with one field
  // changed (and the memo cache shares the parse/synthesis work).
  struct Workload {
    std::string label;
    CircuitSpec spec;
  };
  std::vector<Workload> workloads;
  workloads.push_back({"(x1+x2)(x3+x4) textbook",
                       makeCircuitSpec("sop:x1 x3 + x1 x4 + x2 x3 + x2 x4")});
  workloads.push_back({"t481 stand-in", makeCircuitSpec("t481")});
  workloads.push_back({"rd53", makeCircuitSpec("rd53-min")});
  workloads.push_back({"sqrt8", makeCircuitSpec("sqrt8-min")});
  {
    Rng rng(31415);
    RandomSopOptions opts;
    opts.nin = 10;
    opts.nout = 1;
    opts.products = 20;
    opts.literalsPerProduct = 3.0;
    CircuitSpec random;
    random.source = CircuitSpec::Source::Cover;
    random.cover = randomSop(opts, rng);
    workloads.push_back({"random 10-in 20-prod", std::move(random)});
  }

  TextTable table({"workload", "two-level", "flat G/area", "quick G/area", "kernel G/area"});
  for (const Workload& w : workloads) {
    auto cell = [&w](CircuitSpec::Factoring factoring) {
      CircuitSpec spec = w.spec;
      spec.realize = CircuitSpec::Realize::MultiLevel;
      spec.factoring = factoring;
      const std::shared_ptr<const Circuit> circuit = compileCircuit(spec);
      return std::to_string(circuit->layout->network.gateCount()) + "/" +
             std::to_string(circuit->dims().area());
    };
    const std::shared_ptr<const Circuit> twoLevel = compileCircuit(w.spec);
    table.addRow({w.label, std::to_string(twoLevel->dims().area()),
                  cell(CircuitSpec::Factoring::Flat), cell(CircuitSpec::Factoring::Quick),
                  cell(CircuitSpec::Factoring::Kernel)});
  }
  std::cout << "Factoring strategy vs multi-level area (G = NAND gates):\n" << table << "\n";
  std::cout << "expected shape: kernel factoring wins on structured functions (shared\n"
               "divisors); on unfactorable functions (rd53, random) the flat NAND-NAND\n"
               "form wins because factoring only adds inverter gates. mapToNandBest()\n"
               "picks per function, like a real technology mapper.\n";
  return 0;
}

}  // namespace

MCX_BENCH_SUITE("ablation-factoring",
                "A6: SOP-to-NAND factoring strategies vs multi-level area", runFactoring);
