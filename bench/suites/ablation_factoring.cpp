// Ablation A6: factoring quality vs multi-level crossbar area.
//
// Compares the three SOP -> NAND strategies (flat NAND-NAND, literal-based
// quick factoring, kernel-based good factoring) on structured, arithmetic
// and random workloads. This is the knob that decides whether multi-level
// synthesis beats two-level (Fig. 6 / Table I behaviour).
#include <iostream>
#include <vector>

#include "api/driver.hpp"
#include "benchdata/registry.hpp"
#include "logic/espresso.hpp"
#include "logic/generators.hpp"
#include "logic/isop.hpp"
#include "netlist/nand_mapper.hpp"
#include "util/text_table.hpp"
#include "xbar/area_model.hpp"

namespace {

int runFactoring(const std::vector<std::string>& args) {
  using namespace mcx;

  cli::ArgParser parser("mcx_bench ablation-factoring",
                        "Ablation A6: factoring strategy vs multi-level crossbar area");
  if (const auto code = bench::parseSuiteArgs(parser, args)) return *code;

  struct Workload {
    std::string label;
    Cover cover;
  };
  std::vector<Workload> workloads;
  workloads.push_back({"(x1+x2)(x3+x4) textbook", [] {
    Cover c(4, 1);
    c.add(makeCube("1-1-", "1"));
    c.add(makeCube("1--1", "1"));
    c.add(makeCube("-11-", "1"));
    c.add(makeCube("-1-1", "1"));
    return c;
  }()});
  workloads.push_back({"t481 stand-in", loadBenchmarkFast("t481").cover});
  workloads.push_back({"rd53", espressoMinimize(isopCover(weightFunction(5)))});
  workloads.push_back({"sqrt8", espressoMinimize(isopCover(sqrtFunction(8)))});
  {
    Rng rng(31415);
    RandomSopOptions opts;
    opts.nin = 10;
    opts.nout = 1;
    opts.products = 20;
    opts.literalsPerProduct = 3.0;
    workloads.push_back({"random 10-in 20-prod", randomSop(opts, rng)});
  }

  TextTable table({"workload", "two-level", "flat G/area", "quick G/area", "kernel G/area"});
  for (const Workload& w : workloads) {
    auto cell = [&w](const NandMapOptions& opts) {
      const NandNetwork net = mapToNand(w.cover, opts);
      return std::to_string(net.gateCount()) + "/" +
             std::to_string(multiLevelDims(net).area());
    };
    NandMapOptions flat;
    flat.factored = false;
    NandMapOptions quick;
    NandMapOptions kernel;
    kernel.kernelFactoring = true;
    table.addRow({w.label, std::to_string(twoLevelDims(w.cover).area()), cell(flat),
                  cell(quick), cell(kernel)});
  }
  std::cout << "Factoring strategy vs multi-level area (G = NAND gates):\n" << table << "\n";
  std::cout << "expected shape: kernel factoring wins on structured functions (shared\n"
               "divisors); on unfactorable functions (rd53, random) the flat NAND-NAND\n"
               "form wins because factoring only adds inverter gates. mapToNandBest()\n"
               "picks per function, like a real technology mapper.\n";
  return 0;
}

}  // namespace

MCX_BENCH_SUITE("ablation-factoring",
                "A6: SOP-to-NAND factoring strategies vs multi-level area", runFactoring);
