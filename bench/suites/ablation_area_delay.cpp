// Ablation A7: the area-delay tradeoff between two-level and multi-level
// designs (the paper discusses area only; the multi-level design's
// gate-at-a-time evaluation costs cycles — Fig. 4's CR loop).
#include <iostream>
#include <vector>

#include "api/driver.hpp"
#include "benchdata/registry.hpp"
#include "logic/espresso.hpp"
#include "logic/generators.hpp"
#include "logic/isop.hpp"
#include "logic/sop_parser.hpp"
#include "netlist/nand_mapper.hpp"
#include "util/text_table.hpp"
#include "xbar/timing_model.hpp"

namespace {

int runAreaDelay(const std::vector<std::string>& args) {
  using namespace mcx;

  cli::ArgParser parser("mcx_bench ablation-area-delay",
                        "Ablation A7: two-level vs multi-level area-delay tradeoff");
  if (const auto code = bench::parseSuiteArgs(parser, args)) return *code;

  struct Workload {
    std::string label;
    Cover cover;
  };
  std::vector<Workload> workloads;
  workloads.push_back({"fig5 example", parseSop("x1 + x2 + x3 + x4 + x5 x6 x7 x8")});
  workloads.push_back({"rd53", espressoMinimize(isopCover(weightFunction(5)))});
  workloads.push_back({"sqrt8", espressoMinimize(isopCover(sqrtFunction(8)))});
  workloads.push_back({"t481 stand-in", loadBenchmarkFast("t481").cover});
  workloads.push_back({"majority-7", espressoMinimize(isopCover(majorityFunction(7)))});

  TextTable table({"workload", "2L area", "2L cycles", "2L AD", "ML area", "ML cycles",
                   "ML AD", "ML wins area", "ML wins AD"});
  for (const Workload& w : workloads) {
    const AreaDelay two = twoLevelAreaDelay(w.cover);
    const NandNetwork net = mapToNand(w.cover);
    const AreaDelay multi = multiLevelAreaDelay(net);
    table.addRow({w.label, std::to_string(two.area), std::to_string(two.cycles),
                  std::to_string(two.product()), std::to_string(multi.area),
                  std::to_string(multi.cycles), std::to_string(multi.product()),
                  multi.area < two.area ? "yes" : "no",
                  multi.product() < two.product() ? "yes" : "no"});
  }
  std::cout << "Area-delay tradeoff (cycles per evaluation; AD = area x cycles):\n"
            << table << "\n";
  std::cout << "expected shape: the multi-level design's area wins shrink or vanish under\n"
               "the area-delay metric — its 2G+4-step evaluation is the hidden cost the\n"
               "paper's Section VI alludes to.\n";
  return 0;
}

}  // namespace

MCX_BENCH_SUITE("ablation-area-delay",
                "A7: area-delay tradeoff of two-level vs multi-level designs",
                runAreaDelay);
