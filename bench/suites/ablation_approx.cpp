// Ablation A10: approximate mapping and functional yield(epsilon).
//
// Classical defect-map experiments are pass/fail: a sample either realizes
// the full function or it is dead. This suite replaces the verdict with a
// graded one — the approx mapper (inner fast-ea, sacrifice budget 1.0)
// reports every sample's exact realized error, and the suite derives the
// functional-yield curve yield(eps) = fraction of samples whose realized
// error is <= eps, over a fixed epsilon grid. Two invariants are enforced,
// not just reported:
//
//   * yield(0) must be bit-identical to the exact success count — the
//     graded path is a strict generalization of pass/fail (the rescue path
//     only ever runs after the inner exact mapper failed, and espresso
//     covers are irredundant, so every drop costs error > 0), and
//   * the curve must be monotone non-decreasing in epsilon (it counts a
//     nested family of events).
//
// The NN workload axis: binarized sign-neuron layers (gen:nn-<nin>x<nout>)
// degrade gracefully — a rescued sample loses a few minterms, i.e. a few
// misclassified input patterns — so the suite also emits an
// accuracy-vs-defect-rate table (accuracy = 1 - mean realized error) for
// the committed nn presets. Any invariant violation exits 1, turning the
// CTest smoke run into a regression check of the graded engine.
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "api/driver.hpp"
#include "api/experiment.hpp"
#include "util/json_writer.hpp"
#include "util/text_table.hpp"

namespace {

constexpr double kEpsilonGrid[] = {0.0, 0.01, 0.02, 0.05, 0.10, 0.20};

int runApprox(const std::vector<std::string>& args) {
  using namespace mcx;

  bench::CommonOptions common;
  cli::ArgParser parser("mcx_bench ablation-approx",
                        "A10: functional yield(eps) curves and NN accuracy vs defect rate");
  common.addSamplesTo(parser);
  common.addSeedTo(parser);
  common.addJsonTo(parser);
  if (const auto code = bench::parseSuiteArgs(parser, args)) return *code;

  const std::size_t samples = common.samplesOr(100);
  const std::uint64_t seed = common.seedOr(0xa99);
  const std::string jsonPath = common.jsonOr("BENCH_approx.json");

  const std::string approxSpec =
      R"({"mapper": "approx", "inner": "fast-ea", "epsilon": 1.0})";

  std::ofstream jsonFile(jsonPath);
  JsonWriter json(jsonFile);
  json.beginObject();
  json.field("bench", "ablation-approx");
  json.field("samples", static_cast<std::uint64_t>(samples));
  json.field("seed", seed);
  json.key("epsilon_grid").beginArray();
  for (const double eps : kEpsilonGrid) json.value(eps);
  json.endArray();

  std::vector<std::string> yieldHeader{"circuit", "rate", "exact"};
  for (const double eps : kEpsilonGrid)
    yieldHeader.push_back("y(" + TextTable::percent(eps) + ")");
  yieldHeader.push_back("rescued");
  TextTable yieldTable(std::move(yieldHeader));

  std::size_t totalRescued = 0;
  std::size_t yieldZeroMismatches = 0;
  std::size_t monotonicityViolations = 0;

  // Per-sample realized errors of one graded run; shared by both tables.
  const auto runGraded = [&](const std::string& circuit, double rate) {
    return ExperimentBuilder()
        .circuit(circuit)
        .mapper(approxSpec)
        .legacyRates(rate)
        .samples(samples)
        .seed(seed)
        .errorBudget(1.0)
        .keepMappings(true)
        .run();
  };

  json.key("cells").beginArray();
  for (const char* circuitName : {"rd53-min", "sqrt8-min", "nn-small", "nn-wide"}) {
    for (const double rate : {0.15, 0.25}) {
      const ExperimentResult result = runGraded(circuitName, rate);
      std::vector<double> errors;
      errors.reserve(result.outcome.mappings.size());
      for (const MappingResult& m : result.outcome.mappings)
        errors.push_back(m.realizedErrorOrBinary());

      std::vector<std::size_t> yieldCounts;
      for (const double eps : kEpsilonGrid) {
        std::size_t ok = 0;
        for (const double e : errors)
          if (e <= eps) ++ok;
        yieldCounts.push_back(ok);
      }
      // yield(0) == exact successes: the graded path must reproduce the
      // classical verdict bit-for-bit at a zero budget.
      if (yieldCounts.front() != result.outcome.successes) ++yieldZeroMismatches;
      for (std::size_t i = 1; i < yieldCounts.size(); ++i)
        if (yieldCounts[i] < yieldCounts[i - 1]) ++monotonicityViolations;
      const std::size_t rescued = yieldCounts.back() - yieldCounts.front();
      totalRescued += result.outcome.rescued;

      json.beginObject();
      json.field("circuit", circuitName);
      json.field("rate", rate);
      json.field("rows", result.rows);
      json.field("cols", result.cols);
      json.field("successes", result.outcome.successes);
      json.field("rescued", result.outcome.rescued);
      json.field("mean_realized_error", result.meanRealizedError());
      json.key("yield").beginArray();
      for (const std::size_t count : yieldCounts) json.value(count);
      json.endArray();
      json.endObject();

      std::vector<std::string> row{circuitName, TextTable::percent(rate),
                                   std::to_string(result.outcome.successes) + "/" +
                                       std::to_string(samples)};
      for (const std::size_t count : yieldCounts) row.push_back(std::to_string(count));
      row.push_back(std::to_string(rescued));
      yieldTable.addRow(std::move(row));
    }
  }
  json.endArray();

  // The error-tolerant workload axis: classification accuracy of the NN
  // layers as the defect rate grows. Accuracy = 1 - mean realized error
  // (the fraction of (pattern, neuron) decisions the rescued crossbars get
  // right, exact successes counting as 1).
  TextTable nnTable({"circuit", "rate", "exact", "accuracy"});
  json.key("nn_accuracy").beginArray();
  for (const char* circuitName : {"nn-small", "nn-wide"}) {
    for (const double rate : {0.05, 0.10, 0.15, 0.20}) {
      const ExperimentResult result = runGraded(circuitName, rate);
      const double accuracy = 1.0 - result.meanRealizedError();
      json.beginObject();
      json.field("circuit", circuitName);
      json.field("rate", rate);
      json.field("successes", result.outcome.successes);
      json.field("rescued", result.outcome.rescued);
      json.field("accuracy", accuracy);
      json.endObject();
      nnTable.addRow({circuitName, TextTable::percent(rate),
                      std::to_string(result.outcome.successes) + "/" +
                          std::to_string(samples),
                      TextTable::percent(accuracy)});
    }
  }
  json.endArray();

  json.field("total_rescued", static_cast<std::uint64_t>(totalRescued));
  json.field("yield_zero_mismatches", static_cast<std::uint64_t>(yieldZeroMismatches));
  json.field("monotonicity_violations", static_cast<std::uint64_t>(monotonicityViolations));
  json.endObject();
  jsonFile << "\n";

  std::cout << "Functional yield(eps): samples within the error budget, per cell ("
            << samples << " samples, approx(fast-ea) mapper)\n\n";
  std::cout << yieldTable << "\n";
  std::cout << "NN layer accuracy vs defect rate (1 - mean realized error)\n\n";
  std::cout << nnTable << "\n";
  std::cout << "json: " << jsonPath << "\n";

  if (yieldZeroMismatches != 0 || monotonicityViolations != 0) {
    std::cout << "FAIL: " << yieldZeroMismatches << " yield(0) mismatch(es), "
              << monotonicityViolations << " monotonicity violation(s)\n";
    return 1;
  }
  // The subsystem must actually rescue dead samples on the committed cells.
  // Tiny smoke runs (ctest -L bench trims --samples) may legitimately see
  // none, so the check applies to full-size runs only.
  if (samples >= 50 && totalRescued == 0) {
    std::cout << "FAIL: no sample was rescued at any epsilon on any cell\n";
    return 1;
  }
  return 0;
}

}  // namespace

MCX_BENCH_SUITE("ablation-approx", "A10: functional yield(eps) + NN accuracy vs defect rate",
                runApprox);
