// Yield explorer: how much redundancy buys how much mapping success.
//
// The paper leaves redundant-line yield analysis as future work (Section
// VI); this suite walks a benchmark across spare-line budgets under a
// configurable defect scenario — by default a mixed i.i.d. world including
// stuck-at-closed defects, which are untolerable on an optimum-size
// crossbar but absorbable with spare rows and column pairs.
//
// --scenario takes a registry preset name (see --list) or an inline JSON
// spec; --rate sets the preset's overall defect budget. Samples are
// distributed over --threads workers with pre-split per-sample RNG
// streams, so results do not depend on the thread count.
#include <iostream>
#include <string>
#include <vector>

#include "api/driver.hpp"
#include "benchdata/registry.hpp"
#include "map/redundant_mapper.hpp"
#include "mc/executor.hpp"
#include "mc/stats.hpp"
#include "scenario/registry.hpp"
#include "util/text_table.hpp"
#include "xbar/function_matrix.hpp"

namespace {

int runYieldExplorer(const std::vector<std::string>& args) {
  using namespace mcx;

  bench::CommonOptions common;
  std::string circuit = "misex1";
  std::string scenarioArg;
  double rate = 0.055;  // the historical default budget (5% open + 0.5% closed)

  cli::ArgParser parser("mcx_bench yield",
                        "yield vs spare-line budget under a configurable defect scenario");
  parser.add("--circuit", &circuit, "NAME", "benchmark circuit (default misex1)");
  common.addSamplesTo(parser);
  common.addSeedTo(parser);
  common.addThreadsTo(parser);
  parser.add("--scenario", &scenarioArg, "NAME|SPEC",
             "scenario preset name or inline JSON model spec");
  parser.add("--rate", &rate, "R", "preset's overall defect budget (default 0.055)");
  parser.addAction("--list", "list the scenario presets", bench::listScenarios);
  if (const auto code = bench::parseSuiteArgs(parser, args)) return *code;

  const std::size_t samples = common.samplesOr(100);
  const std::uint64_t seed = common.seedOr(97);
  const std::size_t threads = common.threadsOr(0);

  std::shared_ptr<const DefectModel> model;
  BenchmarkCircuit bench;
  try {
    model = scenarioArg.empty()
                ? std::make_shared<IidBernoulli>(rate * 10.0 / 11.0, rate / 11.0)
                : makeScenario(scenarioArg, rate);
    bench = loadBenchmarkFast(circuit);
  } catch (const std::exception& e) {  // unknown scenario/circuit, bad rate
    std::cerr << "mcx_bench yield: " << e.what() << "\n";
    return 2;
  }
  const FunctionMatrix fm = buildFunctionMatrix(bench.cover);
  std::cout << "circuit: " << bench.info.name << "  (" << fm.rows() << "x" << fm.cols()
            << " optimum crossbar, " << samples << " Monte Carlo samples per cell)\n";
  std::cout << "scenario: " << model->describe() << "  (seed " << seed << ", "
            << resolveThreadCount(threads) << " threads)\n\n";

  TextTable table({"spare rows", "spare in-pairs", "spare out-pairs", "success rate"});
  for (const std::size_t spare : {0u, 1u, 2u, 4u, 8u}) {
    RedundantCrossbarSpec spec;
    spec.spareRows = spare;
    spec.spareInputPairs = spare / 2;
    spec.spareOutputPairs = spare / 2;
    const CrossbarDims dims = redundantDims(fm, spec);
    const RedundantMapper mapper(spec);

    // One pre-split stream per sample (in sample order): success counts are
    // identical at any --threads value.
    const std::vector<Rng> streams = splitSampleStreams(seed + spare, samples);
    std::vector<char> success(samples, 0);
    const std::size_t workers = resolveThreadCount(threads);
    std::vector<DefectMap> scratch(workers);
    parallelForEach(samples, threads, [&](std::size_t worker, std::size_t s) {
      Rng sampleRng = streams[s];
      model->generate(dims.rows, dims.cols, sampleRng, scratch[worker]);
      if (mapper.map(fm, scratch[worker], 1000 + s).success) success[s] = 1;
    });
    std::size_t successes = 0;
    for (const char ok : success) successes += static_cast<std::size_t>(ok);

    const double successRate = static_cast<double>(successes) / static_cast<double>(samples);
    table.addRow({std::to_string(spare), std::to_string(spec.spareInputPairs),
                  std::to_string(spec.spareOutputPairs),
                  TextTable::percent(successRate) + " +/- " +
                      TextTable::percent(wilsonHalfWidth(successes, samples), 1)});
  }
  std::cout << table;
  std::cout << "\nWith zero spares any stuck-closed defect is fatal (Section IV-A of the\n"
               "paper); spare lines recover most of the yield.\n";
  return 0;
}

}  // namespace

MCX_BENCH_SUITE("yield", "redundancy explorer: yield vs spare lines under any scenario",
                runYieldExplorer);
