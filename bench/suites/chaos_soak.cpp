// Chaos soak: the experiment service under seeded randomized fault weather.
//
// Arms every compiled-in faultinject site PROBABILISTICALLY (seeded draws —
// the same --seed replays the same storm), bounds the shared circuit cache
// below the workload's working set so eviction churn runs the whole time,
// turns on the full governance surface (cost-aware admission, per-client
// buckets, batch shedding, sample degradation, the stuck-request watchdog),
// then hammers a live in-process service from several client threads with a
// randomized schedule of valid, malformed, oversized, probe, batch and
// deadline-carrying requests for a fixed wall budget.
//
// The soak is an executable robustness contract, not a measurement:
//   - zero crashes and a clean drain (the suite exits 0)
//   - response conservation: every submitted line yields exactly one
//     response, and the taxonomy counters sum back to `received`
//   - the bounded cache really cycled (evictions > 0, bytes <= budget)
//   - injected faults really flowed (fired() > 0 across the armed sites)
//   - peak RSS stayed under start + slack (no leak under fault churn)
//
// Usage:
//   mcx_bench chaos-soak [--seconds S] [--clients N] [--seed S]
//                        [--cache-budget-kb KB] [--max-rss-growth-mb MB]
//                        [--faults SPEC] [--json PATH]
#include <atomic>
#include <chrono>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "api/driver.hpp"
#include "circuit/cache.hpp"
#include "serve/service.hpp"
#include "util/error.hpp"
#include "util/faultinject.hpp"
#include "util/process.hpp"
#include "util/rng.hpp"
#include "util/stopwatch.hpp"
#include "util/text_table.hpp"

namespace {

using namespace mcx;
using serve::ExperimentService;
using serve::ServiceCounters;
using serve::ServiceOptions;

struct SoakConfig {
  double seconds = 10;
  std::size_t clients = 4;
  std::uint64_t seed = 0xc4a05;
  std::size_t cacheBudgetKb = 24;  ///< below the mixed circuits' working set
  std::size_t maxRssGrowthMb = 512;
  // Every site armed, none deterministic: most requests succeed, the rest
  // exercise the throw / allocation-failure / deadline-stall paths.
  std::string faults =
      "circuit.synthesize=throw%2;mc.sample=stall:1%1;serve.enqueue=badalloc%1;"
      "sat.solve=throw%2;approx.evaluate=throw%2";
};

/// One client's next request line, drawn from its own deterministic stream.
std::string drawLine(Rng& rng, std::size_t client, std::uint64_t serial) {
  const char* const circuits[] = {"rd53-min", "sqrt8-min", "majority7-min", "bw", "t481"};
  const int draw = rng.uniformInt(0, 99);
  const std::string id = "c" + std::to_string(client) + "-" + std::to_string(serial);
  if (draw < 5) return R"({"type": "health", "id": ")" + id + "\"}";
  if (draw < 8) return R"({"type": "stats", "id": ")" + id + "\"}";
  if (draw < 13) {  // malformed: truncated JSON, the parse path is on duty
    return R"({"id": ")" + id + R"(", "circuit": )";
  }
  if (draw < 16) {  // oversized: must be answered and bounded, not buffered
    return R"({"id": ")" + id + R"(", "circuit": ")" + std::string(5000, 'x') + "\"}";
  }
  std::ostringstream req;
  req << "{\"id\": \"" << id << "\"";
  // Exact SAT backend draws hit the sat.solve fault site. They stick to
  // the small circuits and modest sample counts (per-sample CNF solving on
  // bw-scale matrices would outlive the soak), with a bounded conflict
  // budget: infeasible samples with big Hall certificates are
  // pigeonhole-hard, and a soak request must never outlive its lane.
  const bool satDraw = rng.bernoulli(0.2);
  req << ", \"circuit\": \"" << circuits[rng.uniformInt(0, satDraw ? 2 : 4)] << "\"";
  if (rng.bernoulli(0.3)) req << ", \"multilevel\": " << (rng.bernoulli(0.5) ? "true" : "false");
  if (satDraw) req << R"(, "mapper": {"mapper": "sat", "conflictLimit": 2048})";
  // Graded draws exercise the approx rescue path (and its approx.evaluate
  // fault site) plus the epsilon response fields under churn.
  const bool approxDraw = !satDraw && rng.bernoulli(0.2);
  if (approxDraw) {
    req << R"(, "mapper": {"mapper": "approx", "inner": "fast-ea", "epsilon": 1.0})";
    req << ", \"epsilon\": 0." << rng.uniformInt(0, 9);
  }
  if (!satDraw && draw < 20) {  // deliberately expensive: feeds the cost/bucket shedders
    req << ", \"samples\": " << rng.uniformInt(500, 2000);
  } else {
    req << ", \"samples\": " << rng.uniformInt(5, 30);
  }
  req << ", \"seed\": " << rng.uniformInt(1, 1u << 20);
  if (rng.bernoulli(0.25)) req << ", \"deadline_ms\": " << rng.uniformInt(5, 60);
  if (rng.bernoulli(0.15)) req << ", \"lane\": \"batch\"";
  req << "}";
  return req.str();
}

int runChaosSoak(const std::vector<std::string>& args) {
  SoakConfig config;
  bench::CommonOptions common;

  cli::ArgParser parser("mcx_bench chaos-soak",
                        "seeded fault-injection soak of the experiment service "
                        "(conservation, bounded cache, bounded RSS, clean drain)");
  common.addSeedTo(parser);
  common.addJsonTo(parser);
  parser.add("--seconds", &config.seconds, "S", "wall budget (default 10)");
  parser.add("--clients", &config.clients, "N", "client threads (default 4)");
  parser.add("--cache-budget-kb", &config.cacheBudgetKb, "KB",
             "circuit-cache byte budget; keep it below the working set so "
             "eviction churn runs throughout (default 24)");
  parser.add("--max-rss-growth-mb", &config.maxRssGrowthMb, "MB",
             "peak-RSS growth allowed over the soak (default 512)");
  parser.add("--faults", &config.faults, "SPEC",
             "MCX_FAULTINJECT-style plan armed for the soak");
  if (const auto code = bench::parseSuiteArgs(parser, args)) return *code;
  config.seed = common.seedOr(config.seed);
  const std::string jsonPath = common.jsonOr("BENCH_chaos.json");
  MCX_REQUIRE(config.seconds > 0, "--seconds must be positive");
  MCX_REQUIRE(config.clients > 0, "--clients must be positive");

  const proc::MemoryUsage rssStart = proc::memoryUsage();
  CircuitCache::global().clear();
  CircuitCache::global().setByteBudget(config.cacheBudgetKb * 1024);
  const CircuitCache::Stats cacheStart = CircuitCache::global().stats();
  faultinject::reset();
  faultinject::seed(config.seed);
  faultinject::armFromSpec(config.faults);

  ServiceOptions options;
  options.queueDepth = 16;
  options.requestThreads = 2;
  options.poolThreads = 2;
  options.limits.maxLineBytes = 4096;  // the oversized draws must trip it
  options.queueCostBudget = 200000;
  options.clientCostRate = 100000;
  options.clientCostBurst = 200000;
  options.degradeSamples = true;
  options.watchdogFactor = 4;

  std::cout << "chaos-soak: " << config.clients << " clients for " << config.seconds
            << "s, faults \"" << config.faults << "\" (seed " << config.seed
            << "), cache budget " << config.cacheBudgetKb << " KiB\n\n";

  // The default sink is serialized by the service's emission lock, so these
  // tallies need no atomics of their own.
  std::uint64_t responses = 0;
  std::uint64_t degradedSeen = 0;
  ServiceCounters counters;
  {
    ExperimentService service(options, [&](const std::string& line) {
      ++responses;
      if (line.find("\"degraded\": true") != std::string::npos) ++degradedSeen;
    });

    std::atomic<std::uint64_t> submitted{0};
    std::vector<std::thread> clients;
    clients.reserve(config.clients);
    for (std::size_t i = 0; i < config.clients; ++i) {
      clients.emplace_back([&, i] {
        Rng rng(config.seed ^ (0x9e3779b97f4a7c15ull * (i + 1)));
        const std::string client = "client-" + std::to_string(i);
        const Stopwatch wall;
        std::uint64_t serial = 0;
        while (wall.seconds() < config.seconds) {
          service.submit(drawLine(rng, i, serial++), nullptr, client);
          submitted.fetch_add(1, std::memory_order_relaxed);
          std::this_thread::sleep_for(std::chrono::milliseconds(rng.uniformInt(0, 3)));
        }
      });
    }
    for (std::thread& t : clients) t.join();
    service.drain();
    counters = service.counters();

    // Conservation: every submitted line came back exactly once, and the
    // taxonomy partitions `received` (probes and admission rejections on one
    // side, every accepted request retired on the other).
    const std::uint64_t tallied = counters.parseErrors + counters.internalErrors +
                                  counters.shedOverloaded + counters.statsRequests +
                                  counters.healthRequests + counters.completedOk +
                                  counters.deadlineExceeded + counters.cancelled;
    int failures = 0;
    if (counters.received != submitted.load() || responses != submitted.load()) {
      std::cerr << "chaos_soak: response conservation broken: submitted "
                << submitted.load() << ", received " << counters.received
                << ", responses " << responses << "\n";
      ++failures;
    }
    if (tallied != counters.received) {
      std::cerr << "chaos_soak: taxonomy does not sum to received: " << tallied
                << " != " << counters.received << "\n";
      ++failures;
    }

    const CircuitCache::Stats cacheEnd = CircuitCache::global().stats();
    const std::uint64_t evictions = cacheEnd.evictions - cacheStart.evictions;
    const std::size_t cacheBytes = CircuitCache::global().currentBytes();
    if (evictions == 0) {
      std::cerr << "chaos_soak: the bounded cache never evicted (budget too big "
                   "for the working set?)\n";
      ++failures;
    }
    if (cacheBytes > config.cacheBudgetKb * 1024) {
      std::cerr << "chaos_soak: cache over budget after drain: " << cacheBytes
                << " bytes\n";
      ++failures;
    }

    std::uint64_t firedTotal = 0;
    for (const char* site : {"circuit.synthesize", "mc.sample", "serve.enqueue", "sat.solve",
                             "approx.evaluate"})
      firedTotal += faultinject::fired(site);
    if (firedTotal == 0) {
      std::cerr << "chaos_soak: no injected fault ever fired — the storm was a "
                   "no-op\n";
      ++failures;
    }

    const proc::MemoryUsage rssEnd = proc::memoryUsage();
    const std::size_t rssCap =
        rssStart.rssBytes + config.maxRssGrowthMb * (std::size_t{1} << 20);
    if (rssEnd.peakRssBytes != 0 && rssEnd.peakRssBytes > rssCap) {
      std::cerr << "chaos_soak: peak RSS " << rssEnd.peakRssBytes << " exceeds start + "
                << config.maxRssGrowthMb << " MB slack\n";
      ++failures;
    }

    std::ostringstream jsonBuffer;
    JsonWriter json(jsonBuffer);
    json.beginObject();
    json.field("bench", "chaos_soak");
    json.field("seconds", config.seconds);
    json.field("clients", config.clients);
    json.field("seed", config.seed);
    json.field("faults", config.faults);
    json.field("cache_budget_bytes", config.cacheBudgetKb * 1024);
    json.field("submitted", submitted.load());
    json.field("received", counters.received);
    json.field("responses", responses);
    json.field("completed_ok", counters.completedOk);
    json.field("parse_errors", counters.parseErrors);
    json.field("oversized_lines", counters.oversizedLines);
    json.field("shed_overloaded", counters.shedOverloaded);
    json.field("client_shed", counters.clientShed);
    json.field("cost_shed", counters.costShed);
    json.field("batch_shed", counters.batchShed);
    json.field("aged_out", counters.agedOut);
    json.field("deadline_exceeded", counters.deadlineExceeded);
    json.field("cancelled", counters.cancelled);
    json.field("internal_errors", counters.internalErrors);
    json.field("stats_requests", counters.statsRequests);
    json.field("health_requests", counters.healthRequests);
    json.field("degraded_responses", counters.degradedResponses);
    json.field("watchdog_flags", counters.watchdogFlags);
    json.field("cache_evictions", evictions);
    json.field("cache_evicted_bytes", cacheEnd.evictedBytes - cacheStart.evictedBytes);
    json.field("cache_bytes_after_drain", cacheBytes);
    json.field("fired_synthesize", faultinject::fired("circuit.synthesize"));
    json.field("fired_mc_sample", faultinject::fired("mc.sample"));
    json.field("fired_enqueue", faultinject::fired("serve.enqueue"));
    json.field("fired_sat_solve", faultinject::fired("sat.solve"));
    json.field("fired_approx_evaluate", faultinject::fired("approx.evaluate"));
    json.field("rss_start_bytes", rssStart.rssBytes);
    json.field("rss_peak_bytes", rssEnd.peakRssBytes);
    json.endObject();
    std::ofstream jsonFile(jsonPath);
    jsonFile << jsonBuffer.str() << "\n";
    jsonFile.flush();
    if (!jsonFile) {
      std::cerr << "chaos_soak: cannot write " << jsonPath << "\n";
      return 2;
    }

    TextTable table({"submitted", "ok", "parse", "shed", "ddl", "internal", "degraded",
                     "evict", "fired"});
    table.addRow({std::to_string(submitted.load()), std::to_string(counters.completedOk),
                  std::to_string(counters.parseErrors),
                  std::to_string(counters.shedOverloaded),
                  std::to_string(counters.deadlineExceeded),
                  std::to_string(counters.internalErrors),
                  std::to_string(counters.degradedResponses), std::to_string(evictions),
                  std::to_string(firedTotal)});
    std::cout << table << "\nJSON written to " << jsonPath << "\n";
    if (degradedSeen != counters.degradedResponses) {
      std::cerr << "chaos_soak: degraded label/counter mismatch: saw " << degradedSeen
                << " labeled responses, counter says " << counters.degradedResponses
                << "\n";
      ++failures;
    }

    faultinject::reset();
    CircuitCache::global().setByteBudget(0);
    if (failures != 0) return 1;
  }
  return 0;
}

}  // namespace

MCX_BENCH_SUITE("chaos-soak",
                "seeded randomized fault soak of the experiment service "
                "(conservation, bounded cache/RSS, clean drain; BENCH_chaos)",
                runChaosSoak);
