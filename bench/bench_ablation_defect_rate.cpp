// Ablation A2: mapping success rate vs stuck-at-open defect rate.
//
// The paper fixes 10%; this sweep shows where each circuit's yield cliff
// sits on an optimum-size crossbar, for both HBA and EA.
#include <iostream>

#include "benchdata/registry.hpp"
#include "map/exact_mapper.hpp"
#include "map/hybrid_mapper.hpp"
#include "mc/defect_experiment.hpp"
#include "scenario/registry.hpp"
#include "util/env.hpp"
#include "util/text_table.hpp"
#include "xbar/function_matrix.hpp"

int main() {
  using namespace mcx;

  const std::size_t samples = envSizeT("MCX_SAMPLES", 100);
  const std::vector<double>& rates = standardRateGrid();
  const char* circuits[] = {"rd53", "misex1", "sao2", "rd73", "clip"};

  std::cout << "Ablation: success rate vs defect rate (optimum-size crossbars, " << samples
            << " samples per cell)\n\n";

  for (const char* name : circuits) {
    const BenchmarkCircuit bench = loadBenchmarkFast(name);
    const FunctionMatrix fm = buildFunctionMatrix(bench.cover);
    TextTable table({"defect rate", "HBA Psucc", "EA Psucc", "HBA backtracks/sample"});
    for (const double rate : rates) {
      DefectExperimentConfig cfg;
      cfg.samples = samples;
      cfg.stuckOpenRate = rate;
      cfg.seed = 0xab1a;
      const auto hba = runDefectExperiment(fm, HybridMapper(), cfg);
      const auto ea = runDefectExperiment(fm, ExactMapper(), cfg);
      table.addRow({TextTable::percent(rate), TextTable::percent(hba.successRate()),
                    TextTable::percent(ea.successRate()),
                    TextTable::num(double(hba.totalBacktracks) / double(samples), 2)});
    }
    std::cout << name << " (area " << fm.dims().area() << ", IR "
              << TextTable::percent(fm.inclusionRatio()) << "):\n"
              << table << "\n";
  }
  std::cout << "expected shape: success degrades monotonically with rate; EA >= HBA\n"
               "everywhere; backtracking activity peaks around the cliff.\n";
  return 0;
}
