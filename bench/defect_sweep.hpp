// Shared threads-sweep and JSON plumbing for the defect benches.
//
// Runs one mapper's Monte Carlo experiment at every thread count of the
// sweep, emits a {"mapper", "runs": [...], "deterministic_across_threads"}
// JSON object, and reports whether the results were identical at every
// thread count (success counts always; row assignments too when
// cfg.keepMappings is set).
#pragma once

#include <cstddef>
#include <cstdlib>
#include <string>
#include <vector>

#include "map/matching.hpp"
#include "mc/defect_experiment.hpp"
#include "mc/executor.hpp"
#include "util/json_writer.hpp"
#include "util/stopwatch.hpp"
#include "xbar/function_matrix.hpp"

namespace mcx::benchutil {

/// 1/2/4 threads, plus hardware concurrency when it exceeds 4.
inline std::vector<std::size_t> threadsSweep() {
  std::vector<std::size_t> sweep{1, 2, 4};
  const std::size_t hw = resolveThreadCount(0);
  if (hw > 4) sweep.push_back(hw);
  return sweep;
}

/// Machine-readable output path: MCX_BENCH_JSON, or the bench's default
/// (shared by every JSON-emitting bench; previously copy-pasted).
inline std::string jsonOutputPath(const std::string& fallback) {
  const char* env = std::getenv("MCX_BENCH_JSON");
  return (env != nullptr && *env != '\0') ? env : fallback;
}

struct SweepOutcome {
  /// The result of the first (threads = sweep.front()) run.
  DefectExperimentResult reference;
  bool deterministic = true;
  double wallAt1 = 0;
};

inline SweepOutcome runThreadsSweep(const FunctionMatrix& fm, const IMapper& mapper,
                                    DefectExperimentConfig cfg,
                                    const std::vector<std::size_t>& sweep, JsonWriter& json) {
  SweepOutcome out;
  cfg.timePerSample = true;  // the benches report the paper's "Time" column
  json.beginObject();
  json.field("mapper", mapper.name());
  json.field("scenario", cfg.model ? cfg.model->describe() : std::string("iid (legacy rates)"));
  json.key("runs").beginArray();
  for (const std::size_t threads : sweep) {
    cfg.threads = threads;
    Stopwatch watch;
    DefectExperimentResult result = runDefectExperiment(fm, mapper, cfg);
    const double wall = watch.seconds();

    json.beginObject();
    json.field("threads", threads);
    json.field("wall_seconds", wall);
    json.field("successes", result.successes);
    json.field("mean_map_millis", result.perSampleMillis.mean);
    json.endObject();

    if (threads == 1) out.wallAt1 = wall;

    if (threads == sweep.front()) {
      out.reference = std::move(result);
      continue;
    }
    if (result.successes != out.reference.successes) {
      out.deterministic = false;
    } else if (cfg.keepMappings) {
      for (std::size_t s = 0; s < result.mappings.size(); ++s)
        if (result.mappings[s].rowAssignment != out.reference.mappings[s].rowAssignment)
          out.deterministic = false;
    }
  }
  json.endArray();
  json.field("deterministic_across_threads", out.deterministic);
  json.endObject();
  return out;
}

}  // namespace mcx::benchutil
