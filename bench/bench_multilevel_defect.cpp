// Ablation A5 (the paper's closing future-work item): defect-tolerant
// mapping of MULTI-LEVEL designs.
//
// The row-matching formulation carries over unchanged — the multi-level
// function matrix has gate rows instead of minterm rows plus connection
// columns — so HBA and EA run as-is. Every successful mapping is
// additionally validated end-to-end with the behavioral simulator.
#include <iostream>

#include "benchdata/registry.hpp"
#include "logic/espresso.hpp"
#include "logic/isop.hpp"
#include "logic/generators.hpp"
#include "logic/truth_table.hpp"
#include "map/exact_mapper.hpp"
#include "map/hybrid_mapper.hpp"
#include "netlist/nand_mapper.hpp"
#include "sim/crossbar_sim.hpp"
#include "util/env.hpp"
#include "util/text_table.hpp"
#include "xbar/multilevel_layout.hpp"

int main() {
  using namespace mcx;

  const std::size_t samples = envSizeT("MCX_SAMPLES", 100);
  std::cout << "Defect-tolerant mapping of multi-level designs (paper future work), "
            << samples << " samples per cell, 10% stuck-at-open\n\n";

  struct Workload {
    std::string label;
    Cover cover;
  };
  std::vector<Workload> workloads;
  workloads.push_back({"rd53", espressoMinimize(isopCover(weightFunction(5)))});
  workloads.push_back({"sqrt8", espressoMinimize(isopCover(sqrtFunction(8)))});
  workloads.push_back({"t481 stand-in", loadBenchmarkFast("t481").cover});

  TextTable table({"circuit", "ML area", "HBA Psucc", "EA Psucc", "sim-validated"});
  for (const Workload& w : workloads) {
    const MultiLevelLayout layout = buildMultiLevelLayout(mapToNand(w.cover));
    const FunctionMatrix& fm = layout.fm;

    Rng rng(0x51a);
    std::size_t hbaOk = 0, eaOk = 0, validated = 0, validationChecks = 0;
    const TruthTable ref = TruthTable::fromCover(w.cover);
    for (std::size_t s = 0; s < samples; ++s) {
      Rng sampleRng = rng.split();
      const DefectMap defects =
          DefectMap::sample(fm.rows(), fm.cols(), 0.10, 0.0, sampleRng);
      const BitMatrix cm = crossbarMatrix(defects);
      const MappingResult hba = HybridMapper().map(fm, cm);
      if (ExactMapper().map(fm, cm).success) ++eaOk;
      if (!hba.success) continue;
      ++hbaOk;
      // Spot-check the mapped crossbar functionally on sampled inputs.
      if (validationChecks < 10) {
        ++validationChecks;
        bool good = true;
        Rng inputRng(900 + s);
        for (int check = 0; check < 16 && good; ++check) {
          DynBits in(w.cover.nin());
          std::size_t m = 0;
          for (std::size_t v = 0; v < w.cover.nin(); ++v) {
            const bool bit = inputRng.bernoulli(0.5);
            in.set(v, bit);
            m |= static_cast<std::size_t>(bit) << v;
          }
          const DynBits out = simulateMultiLevel(layout, hba.rowAssignment, defects, in);
          for (std::size_t o = 0; o < w.cover.nout(); ++o)
            if (out.test(o) != ref.get(o, m)) good = false;
        }
        if (good) ++validated;
      }
    }
    table.addRow({w.label, std::to_string(fm.dims().area()),
                  TextTable::percent(double(hbaOk) / double(samples)),
                  TextTable::percent(double(eaOk) / double(samples)),
                  std::to_string(validated) + "/" + std::to_string(validationChecks)});
  }
  std::cout << table << "\n";
  std::cout << "every simulated spot-check of a successful mapping must pass (last column\n"
               "n/n): the mapped multi-level crossbar computes the original function.\n";
  return 0;
}
