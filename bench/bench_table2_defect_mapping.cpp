// Table II reproduction: success rate and runtime of the proposed hybrid
// algorithm (HBA) vs the exact algorithm (EA) on optimum-size crossbars
// with 10% stuck-at-open defects, 200 Monte Carlo samples per circuit.
//
// Override the sample count with MCX_SAMPLES.
#include <iostream>

#include "benchdata/registry.hpp"
#include "map/exact_mapper.hpp"
#include "map/hybrid_mapper.hpp"
#include "mc/defect_experiment.hpp"
#include "util/env.hpp"
#include "util/text_table.hpp"
#include "xbar/function_matrix.hpp"

int main() {
  using namespace mcx;

  const std::size_t samples = envSizeT("MCX_SAMPLES", 200);
  std::cout << "Table II: HBA vs EA on optimum-size crossbars, 10% stuck-at-open, "
            << samples << " samples per circuit\n\n";

  TextTable table({"name", "I", "O", "P", "area", "IR", "HBA Psucc", "(paper)", "HBA time s",
                   "EA Psucc", "(paper)", "EA time s", "speedup"});

  const HybridMapper hba;
  const ExactMapper ea;

  double worstGap = 0;
  for (const auto& info : paperBenchmarks()) {
    if (!info.inTable2) continue;
    const BenchmarkCircuit bench = loadBenchmark(info.name);
    const FunctionMatrix fm = buildFunctionMatrix(bench.cover);

    DefectExperimentConfig cfg;
    cfg.samples = samples;
    cfg.stuckOpenRate = 0.10;
    cfg.seed = 0x7ab1e2;

    const DefectExperimentResult hbaR = runDefectExperiment(fm, hba, cfg);
    const DefectExperimentResult eaR = runDefectExperiment(fm, ea, cfg);

    const double speedup = hbaR.meanSeconds() > 0 ? eaR.meanSeconds() / hbaR.meanSeconds() : 0;
    worstGap = std::max(worstGap, eaR.successRate() - hbaR.successRate());

    table.addRow({info.name, std::to_string(bench.cover.nin()),
                  std::to_string(bench.cover.nout()), std::to_string(bench.cover.size()),
                  std::to_string(fm.dims().area()),
                  TextTable::percent(fm.inclusionRatio()),
                  TextTable::percent(hbaR.successRate()),
                  info.paperPsuccHba ? TextTable::percent(*info.paperPsuccHba) : "-",
                  TextTable::num(hbaR.meanSeconds(), 6),
                  TextTable::percent(eaR.successRate()),
                  info.paperPsuccEa ? TextTable::percent(*info.paperPsuccEa) : "-",
                  TextTable::num(eaR.meanSeconds(), 6), TextTable::num(speedup, 1) + "x"});
  }
  std::cout << table << "\n";
  std::cout << "expected shape (paper): HBA within ~15% of EA's success rate while being\n"
               "one to two orders of magnitude faster on the large circuits (apex4, alu4).\n";
  std::cout << "largest EA-HBA success gap observed: " << TextTable::percent(worstGap, 1)
            << "\n";
  return 0;
}
