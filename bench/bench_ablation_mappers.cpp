// Ablation A3: what each ingredient of the hybrid algorithm buys.
//
// Compares, at several defect rates: greedy first-fit over all rows, HBA
// without backtracking, full HBA (Algorithm 1), HBA + input-column
// permutation (our extension), and the exact algorithm.
#include <iostream>
#include <memory>

#include "benchdata/registry.hpp"
#include "map/column_permutation_mapper.hpp"
#include "map/exact_mapper.hpp"
#include "map/fast_exact_mapper.hpp"
#include "map/greedy_mapper.hpp"
#include "map/hybrid_mapper.hpp"
#include "mc/defect_experiment.hpp"
#include "util/env.hpp"
#include "util/text_table.hpp"
#include "xbar/function_matrix.hpp"

int main() {
  using namespace mcx;

  const std::size_t samples = envSizeT("MCX_SAMPLES", 100);
  const BenchmarkCircuit bench = loadBenchmarkFast("sao2");
  const FunctionMatrix fm = buildFunctionMatrix(bench.cover);
  std::cout << "Ablation: mapper variants on " << bench.info.name << " (area "
            << fm.dims().area() << ", " << samples << " samples per cell)\n\n";

  HybridMapperOptions noBt;
  noBt.backtracking = false;
  const GreedyMapper greedy;
  const HybridMapper hbaNoBt(noBt);
  const HybridMapper hba;
  const ColumnPermutationMapper colPerm;
  ExactMapperOptions munkres;
  munkres.useMunkres = true;
  const ExactMapper ea(munkres);  // the paper's Munkres baseline
  const FastExactMapper eaFast;
  const IMapper* mappers[] = {&greedy, &hbaNoBt, &hba, &colPerm, &ea, &eaFast};

  TextTable table({"defect rate", "Greedy", "HBA-nobt", "HBA", "ColPerm+HBA", "EA", "EA-fast"});
  for (const double rate : {0.05, 0.10, 0.15, 0.20}) {
    std::vector<std::string> row{TextTable::percent(rate)};
    for (const IMapper* mapper : mappers) {
      DefectExperimentConfig cfg;
      cfg.samples = samples;
      cfg.stuckOpenRate = rate;
      cfg.seed = 0xc0ffee;
      cfg.timePerSample = true;  // the table reports per-mapper mean time
      const auto r = runDefectExperiment(fm, *mapper, cfg);
      row.push_back(TextTable::percent(r.successRate()) + " @" +
                    TextTable::num(r.meanSeconds() * 1e3, 2) + "ms");
    }
    table.addRow(std::move(row));
  }
  std::cout << table << "\n";
  std::cout << "expected shape: Greedy <= HBA-nobt <= HBA <= ColPerm+HBA and HBA <= EA in\n"
               "success rate; EA-fast matches EA's success exactly (both are exact) at a\n"
               "fraction of the Munkres runtime; the column-permutation extension can\n"
               "exceed both (they only permute rows).\n";
  return 0;
}
