// mcx_bench: the one multiplexed bench driver.
//
// Every suite in bench/suites/ registers itself with bench::Driver at load
// time (MCX_BENCH_SUITE); this main only dispatches. See --help for the
// suite list and the registry listing flags.
//
// MCX_TRACE=<path> arms Chrome trace_event output for any suite (the spans
// in the synthesis front-end, MC engine and executor pool light up);
// MCX_PROFILE=1 arms the gated hot-path profiling counters.
#include <iostream>

#include "api/driver.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

int main(int argc, char** argv) {
  mcx::obs::armTraceFromEnv();
  mcx::obs::armProfilingFromEnv();
  return mcx::bench::Driver::global().run(argc, argv, std::cout, std::cerr);
}
