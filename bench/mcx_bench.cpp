// mcx_bench: the one multiplexed bench driver.
//
// Every suite in bench/suites/ registers itself with bench::Driver at load
// time (MCX_BENCH_SUITE); this main only dispatches. See --help for the
// suite list and the registry listing flags.
#include <iostream>

#include "api/driver.hpp"

int main(int argc, char** argv) {
  return mcx::bench::Driver::global().run(argc, argv, std::cout, std::cerr);
}
