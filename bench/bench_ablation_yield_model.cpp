// Ablation A8: analytic yield model vs Monte Carlo ground truth.
//
// Quantifies where the closed-form estimate (mc/yield_model.hpp) is usable
// instead of a 200-sample Monte Carlo run, and uses it to answer the
// paper's future-work question "how much redundancy for a target yield?"
// instantly per circuit.
#include <iostream>

#include "benchdata/registry.hpp"
#include "map/hybrid_mapper.hpp"
#include "mc/defect_experiment.hpp"
#include "mc/yield_model.hpp"
#include "util/env.hpp"
#include "util/text_table.hpp"
#include "xbar/function_matrix.hpp"

int main() {
  using namespace mcx;

  const std::size_t samples = envSizeT("MCX_SAMPLES", 200);
  std::cout << "Analytic yield model vs Monte Carlo (" << samples
            << " samples), optimum-size crossbars\n\n";

  TextTable table({"circuit", "rate", "model", "Monte Carlo", "abs err"});
  for (const char* name : {"rd53", "misex1", "sao2", "clip"}) {
    const BenchmarkCircuit bench = loadBenchmarkFast(name);
    const FunctionMatrix fm = buildFunctionMatrix(bench.cover);
    for (const double q : {0.05, 0.10, 0.20}) {
      const double model = estimateYield(fm, q).successProbability;
      DefectExperimentConfig cfg;
      cfg.samples = samples;
      cfg.stuckOpenRate = q;
      const double mc = runDefectExperiment(fm, HybridMapper(), cfg).successRate();
      table.addRow({name, TextTable::percent(q), TextTable::percent(model, 1),
                    TextTable::percent(mc, 1), TextTable::num(std::abs(model - mc), 3)});
    }
  }
  std::cout << table << "\n";

  std::cout << "spare rows needed for 99% estimated yield at 10% defects:\n";
  TextTable spares({"circuit", "optimum rows", "spares for 99%", "row overhead"});
  for (const char* name : {"rd53", "misex1", "sao2", "rd73", "clip", "alu4"}) {
    const BenchmarkCircuit bench = loadBenchmarkFast(name);
    const FunctionMatrix fm = buildFunctionMatrix(bench.cover);
    const std::size_t s = sparesForTargetYield(fm, 0.10, 0.99, 128);
    spares.addRow({name, std::to_string(fm.rows()), std::to_string(s),
                   TextTable::percent(double(s) / double(fm.rows()), 1)});
  }
  std::cout << spares << "\n";
  std::cout << "expected shape: the sequential-greedy approximation brackets the truth\n"
               "from both sides — optimistic when dense-row tails compete for the same\n"
               "healthy rows (rd53 at 20%), pessimistic on uniform-row circuits where\n"
               "real matchings rearrange globally (misex1, augmenting paths beat greedy);\n"
               "errors stay within ~0.2 and shrink at the 0%/100% extremes, good enough\n"
               "for the spare-row sizing table below.\n";
  return 0;
}
