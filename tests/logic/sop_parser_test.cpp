#include "logic/sop_parser.hpp"

#include <gtest/gtest.h>

#include "logic/truth_table.hpp"
#include "util/error.hpp"

namespace mcx {
namespace {

TEST(SopParser, ParsesFig3Function) {
  // The paper's running example: f = x1 + x2 + x3 + x4 + x5 x6 x7 x8.
  const Cover c = parseSop("x1 + x2 + x3 + x4 + x5 x6 x7 x8");
  EXPECT_EQ(c.nin(), 8u);
  EXPECT_EQ(c.nout(), 1u);
  EXPECT_EQ(c.size(), 5u);
  EXPECT_EQ(c.cube(4).literalCount(), 4u);
}

TEST(SopParser, NegationStyles) {
  const Cover a = parseSop("!x1 x2");
  const Cover b = parseSop("~x1 x2");
  const Cover c = parseSop("x1' x2");
  EXPECT_EQ(TruthTable::fromCover(a), TruthTable::fromCover(b));
  EXPECT_EQ(TruthTable::fromCover(a), TruthTable::fromCover(c));
  EXPECT_EQ(a.cube(0).lit(0), Lit::Neg);
  EXPECT_EQ(a.cube(0).lit(1), Lit::Pos);
}

TEST(SopParser, DoubleNegationCancels) {
  const Cover c = parseSop("!x1'");
  EXPECT_EQ(c.cube(0).lit(0), Lit::Pos);
}

TEST(SopParser, ExplicitArityPadsVariables) {
  const Cover c = parseSop("x1", 4);
  EXPECT_EQ(c.nin(), 4u);
}

TEST(SopParser, StarsAsAndSeparators) {
  const Cover c = parseSop("x1*x2 + x3");
  EXPECT_EQ(c.size(), 2u);
  EXPECT_EQ(c.cube(0).literalCount(), 2u);
}

TEST(SopParser, SemanticsMatchTruthTable) {
  const Cover c = parseSop("x1 !x2 + x2 x3");
  const TruthTable tt = TruthTable::fromCover(c);
  for (std::size_t m = 0; m < 8; ++m) {
    const bool x1 = m & 1, x2 = m & 2, x3 = m & 4;
    EXPECT_EQ(tt.get(0, m), (x1 && !x2) || (x2 && x3)) << "m=" << m;
  }
}

TEST(SopParser, Rejections) {
  EXPECT_THROW(parseSop(""), InvalidArgument);
  EXPECT_THROW(parseSop("x1 +"), InvalidArgument);
  EXPECT_THROW(parseSop("+ x1"), InvalidArgument);
  EXPECT_THROW(parseSop("y1"), ParseError);
  EXPECT_THROW(parseSop("x0"), ParseError);
  EXPECT_THROW(parseSop("x"), ParseError);
  EXPECT_THROW(parseSop("x1 !x1"), ParseError);    // contradictory literal
  EXPECT_THROW(parseSop("x9", 4), InvalidArgument);  // exceeds declared arity
}

}  // namespace
}  // namespace mcx
