#include "logic/cover.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace mcx {
namespace {

Cover twoOutputExample() {
  // O1 = x1 x2 + x2 x3 ; O2 = x1 x3 + x2 x3  (the paper's Fig. 7/8 function)
  Cover c(3, 2);
  c.add(makeCube("11-", "10"));
  c.add(makeCube("-11", "10"));
  c.add(makeCube("1-1", "01"));
  c.add(makeCube("-11", "01"));
  return c;
}

TEST(Cover, AddChecksArity) {
  Cover c(3, 1);
  EXPECT_THROW(c.add(makeCube("11", "1")), InvalidArgument);
  EXPECT_THROW(c.add(makeCube("111", "11")), InvalidArgument);
  c.add(makeCube("1-1", "1"));
  EXPECT_EQ(c.size(), 1u);
}

TEST(Cover, EvaluateMultiOutput) {
  const Cover c = twoOutputExample();
  DynBits in(3);
  in.set(0);
  in.set(1);  // x1=1 x2=1 x3=0
  DynBits out = c.evaluate(in);
  EXPECT_TRUE(out.test(0));
  EXPECT_FALSE(out.test(1));

  in.set(2);  // 111 -> both
  out = c.evaluate(in);
  EXPECT_TRUE(out.test(0));
  EXPECT_TRUE(out.test(1));

  DynBits zero(3);
  out = c.evaluate(zero);
  EXPECT_TRUE(out.none());
}

TEST(Cover, LiteralCountSums) {
  const Cover c = twoOutputExample();
  EXPECT_EQ(c.literalCount(), 8u);
}

TEST(Cover, ProjectionSelectsByOutput) {
  const Cover c = twoOutputExample();
  EXPECT_EQ(c.projection(0).size(), 2u);
  EXPECT_EQ(c.projection(1).size(), 2u);
  EXPECT_THROW(c.projection(2), InvalidArgument);
}

TEST(Cover, MergeDuplicateInputsOrsOutputs) {
  Cover c = twoOutputExample();
  c.mergeDuplicateInputs();
  // The two "-11" cubes merge into one asserting both outputs.
  EXPECT_EQ(c.size(), 3u);
  bool merged = false;
  for (const Cube& cube : c.cubes())
    if (cube.inputString() == "-11") {
      EXPECT_TRUE(cube.out(0));
      EXPECT_TRUE(cube.out(1));
      merged = true;
    }
  EXPECT_TRUE(merged);
}

TEST(Cover, MergeDropsEmptyCubes) {
  Cover c(2, 1);
  Cube empty(2, 1);
  empty.setLit(0, Lit::Empty);
  empty.setOut(0);
  c.add(empty);
  Cube noOut = makeCube("1-", "0");
  c.add(noOut);
  c.mergeDuplicateInputs();
  EXPECT_TRUE(c.empty());
}

TEST(Cover, RemoveSingleCubeContained) {
  Cover c(3, 1);
  c.add(makeCube("1--", "1"));
  c.add(makeCube("11-", "1"));
  c.add(makeCube("0-1", "1"));
  c.removeSingleCubeContained();
  EXPECT_EQ(c.size(), 2u);
}

TEST(Cover, RemoveContainedKeepsOneOfIdenticalPair) {
  Cover c(2, 1);
  c.add(makeCube("1-", "1"));
  c.add(makeCube("1-", "1"));
  c.removeSingleCubeContained();
  EXPECT_EQ(c.size(), 1u);
}

TEST(Cover, UniverseCoversEverything) {
  const Cover u = Cover::universe(4, 3);
  DynBits in(4);
  in.set(2);
  const DynBits out = u.evaluate(in);
  EXPECT_EQ(out.count(), 3u);
}

TEST(Cover, ToStringIsPlaBody) {
  Cover c(2, 1);
  c.add(makeCube("10", "1"));
  EXPECT_EQ(c.toString(), "10 1\n");
}

}  // namespace
}  // namespace mcx
