#include "logic/cube.hpp"

#include <gtest/gtest.h>

#include "logic/cover.hpp"
#include "util/error.hpp"

namespace mcx {
namespace {

TEST(Cube, FreshCubeIsFullDontCare) {
  Cube c(4, 2);
  for (std::size_t v = 0; v < 4; ++v) EXPECT_EQ(c.lit(v), Lit::DontCare);
  EXPECT_FALSE(c.out(0));
  EXPECT_FALSE(c.out(1));
  EXPECT_FALSE(c.inputEmpty());
  EXPECT_EQ(c.literalCount(), 0u);
}

TEST(Cube, SetAndReadLiterals) {
  Cube c(3, 1);
  c.setLit(0, Lit::Pos);
  c.setLit(1, Lit::Neg);
  c.setLit(2, Lit::Empty);
  EXPECT_EQ(c.lit(0), Lit::Pos);
  EXPECT_EQ(c.lit(1), Lit::Neg);
  EXPECT_EQ(c.lit(2), Lit::Empty);
  EXPECT_TRUE(c.inputEmpty());
  EXPECT_EQ(c.literalCount(), 2u);
}

TEST(Cube, MakeCubeParsesPatterns) {
  const Cube c = makeCube("1-0", "10");
  EXPECT_EQ(c.lit(0), Lit::Pos);
  EXPECT_EQ(c.lit(1), Lit::DontCare);
  EXPECT_EQ(c.lit(2), Lit::Neg);
  EXPECT_TRUE(c.out(0));
  EXPECT_FALSE(c.out(1));
  EXPECT_EQ(c.toPlaString(), "1-0 10");
}

TEST(Cube, MakeCubeRejectsGarbage) {
  EXPECT_THROW(makeCube("x", "1"), ParseError);
  EXPECT_THROW(makeCube("1", "z"), ParseError);
}

TEST(Cube, ContainmentInputOnly) {
  const Cube wide = makeCube("1--", "1");
  const Cube narrow = makeCube("1-0", "1");
  EXPECT_TRUE(wide.inputContains(narrow));
  EXPECT_FALSE(narrow.inputContains(wide));
  EXPECT_TRUE(wide.inputContains(wide));
}

TEST(Cube, ContainmentIncludesOutputs) {
  const Cube a = makeCube("1--", "11");
  const Cube b = makeCube("1-0", "10");
  EXPECT_TRUE(a.contains(b));
  EXPECT_FALSE(b.contains(a));
}

TEST(Cube, IntersectionAndDistance) {
  const Cube a = makeCube("11-", "1");
  const Cube b = makeCube("1-0", "1");
  EXPECT_TRUE(a.inputIntersects(b));
  EXPECT_EQ(a.inputDistance(b), 0u);
  const Cube c = makeCube("0--", "1");
  EXPECT_FALSE(a.inputIntersects(c));
  EXPECT_EQ(a.inputDistance(c), 1u);
  const Cube d = makeCube("001", "1");
  EXPECT_EQ(a.inputDistance(d), 2u);

  const Cube ab = a.intersect(b);
  EXPECT_EQ(ab.lit(0), Lit::Pos);
  EXPECT_EQ(ab.lit(1), Lit::Pos);
  EXPECT_EQ(ab.lit(2), Lit::Neg);
}

TEST(Cube, EmptyIntersectionDetected) {
  const Cube a = makeCube("1", "1");
  const Cube b = makeCube("0", "1");
  EXPECT_TRUE(a.intersect(b).inputEmpty());
}

TEST(Cube, SupercubeIsBitwiseOr) {
  const Cube a = makeCube("10-", "10");
  const Cube b = makeCube("11-", "01");
  const Cube s = a.supercubeWith(b);
  EXPECT_EQ(s.lit(0), Lit::Pos);
  EXPECT_EQ(s.lit(1), Lit::DontCare);
  EXPECT_EQ(s.lit(2), Lit::DontCare);
  EXPECT_TRUE(s.out(0));
  EXPECT_TRUE(s.out(1));
}

TEST(Cube, CoversMinterm) {
  const Cube c = makeCube("1-0", "1");
  DynBits m(3);
  m.set(0);          // x1=1, x2=0, x3=0
  EXPECT_TRUE(c.coversMinterm(m));
  m.set(2);          // x3=1 violates the negative literal
  EXPECT_FALSE(c.coversMinterm(m));
}

TEST(Cube, LiteralCountOnWideCubes) {
  Cube c(100, 1);
  c.setLit(0, Lit::Pos);
  c.setLit(63, Lit::Neg);
  c.setLit(64, Lit::Pos);
  c.setLit(99, Lit::Neg);
  EXPECT_EQ(c.literalCount(), 4u);
  EXPECT_FALSE(c.inputEmpty());
}

TEST(Cube, DistanceOnWideCubes) {
  Cube a(80, 0), b(80, 0);
  a.setLit(70, Lit::Pos);
  b.setLit(70, Lit::Neg);
  a.setLit(10, Lit::Pos);
  b.setLit(10, Lit::Neg);
  EXPECT_EQ(a.inputDistance(b), 2u);
}

TEST(Cube, ArityMismatchThrows) {
  Cube a(3, 1), b(4, 1);
  EXPECT_THROW(a.inputDistance(b), InvalidArgument);
  EXPECT_THROW((void)a.lit(3), InvalidArgument);
}

}  // namespace
}  // namespace mcx
