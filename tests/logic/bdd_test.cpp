#include "logic/bdd.hpp"

#include <gtest/gtest.h>

#include "logic/generators.hpp"
#include "logic/isop.hpp"
#include "util/rng.hpp"

namespace mcx {
namespace {

TEST(Bdd, TerminalsAndVariables) {
  BddManager mgr(3);
  EXPECT_NE(mgr.zero(), mgr.one());
  const BddRef x0 = mgr.variable(0);
  EXPECT_EQ(x0, mgr.variable(0));  // canonical
  DynBits in(3);
  EXPECT_FALSE(mgr.evaluate(x0, in));
  in.set(0);
  EXPECT_TRUE(mgr.evaluate(x0, in));
  EXPECT_TRUE(mgr.evaluate(mgr.one(), in));
  EXPECT_FALSE(mgr.evaluate(mgr.zero(), in));
}

TEST(Bdd, BasicAlgebra) {
  BddManager mgr(2);
  const BddRef a = mgr.variable(0);
  const BddRef b = mgr.variable(1);
  EXPECT_EQ(mgr.bddAnd(a, mgr.one()), a);
  EXPECT_EQ(mgr.bddAnd(a, mgr.zero()), mgr.zero());
  EXPECT_EQ(mgr.bddOr(a, mgr.zero()), a);
  EXPECT_EQ(mgr.bddAnd(a, a), a);
  EXPECT_EQ(mgr.bddOr(a, mgr.bddNot(a)), mgr.one());
  EXPECT_EQ(mgr.bddAnd(a, mgr.bddNot(a)), mgr.zero());
  EXPECT_EQ(mgr.bddXor(a, a), mgr.zero());
  // Commutativity through canonicity.
  EXPECT_EQ(mgr.bddAnd(a, b), mgr.bddAnd(b, a));
  EXPECT_EQ(mgr.bddNot(mgr.bddNot(b)), b);
}

TEST(Bdd, CanonicityDetectsEquivalence) {
  BddManager mgr(3);
  const BddRef a = mgr.variable(0), b = mgr.variable(1), c = mgr.variable(2);
  // (a+b)(a+c) == a + bc
  const BddRef lhs = mgr.bddAnd(mgr.bddOr(a, b), mgr.bddOr(a, c));
  const BddRef rhs = mgr.bddOr(a, mgr.bddAnd(b, c));
  EXPECT_EQ(lhs, rhs);
  // De Morgan.
  EXPECT_EQ(mgr.bddNot(mgr.bddAnd(a, b)), mgr.bddOr(mgr.bddNot(a), mgr.bddNot(b)));
}

TEST(Bdd, CountMinterms) {
  BddManager mgr(4);
  EXPECT_EQ(mgr.countMinterms(mgr.zero()), 0u);
  EXPECT_EQ(mgr.countMinterms(mgr.one()), 16u);
  EXPECT_EQ(mgr.countMinterms(mgr.variable(2)), 8u);
  const BddRef f = mgr.bddAnd(mgr.variable(0), mgr.variable(3));
  EXPECT_EQ(mgr.countMinterms(f), 4u);
  const BddRef g = mgr.bddXor(mgr.variable(0), mgr.variable(1));
  EXPECT_EQ(mgr.countMinterms(g), 8u);
}

TEST(Bdd, Cofactors) {
  BddManager mgr(3);
  const BddRef a = mgr.variable(0), b = mgr.variable(1);
  const BddRef f = mgr.bddOr(mgr.bddAnd(a, b), mgr.bddNot(a));
  EXPECT_EQ(mgr.cofactor(f, 0, true), b);
  EXPECT_EQ(mgr.cofactor(f, 0, false), mgr.one());
  // Shannon reconstruction: f = a f_a + !a f_!a.
  const BddRef rebuilt = mgr.bddOr(mgr.bddAnd(a, mgr.cofactor(f, 0, true)),
                                   mgr.bddAnd(mgr.bddNot(a), mgr.cofactor(f, 0, false)));
  EXPECT_EQ(rebuilt, f);
}

TEST(Bdd, TruthTableRoundTrip) {
  Rng rng(606);
  for (std::size_t nin = 1; nin <= 8; ++nin) {
    DynBits tt(std::size_t{1} << nin);
    for (std::size_t m = 0; m < tt.size(); ++m)
      if (rng.bernoulli(0.45)) tt.set(m);
    BddManager mgr(nin);
    const BddRef f = mgr.fromTruthTable(tt);
    EXPECT_EQ(mgr.toTruthTable(f), tt) << "nin=" << nin;
    EXPECT_EQ(mgr.countMinterms(f), tt.count());
  }
}

TEST(Bdd, FromCoverMatchesTruthTable) {
  Rng rng(607);
  for (int rep = 0; rep < 20; ++rep) {
    RandomSopOptions opts;
    opts.nin = 6;
    opts.nout = 2;
    opts.products = 8;
    const Cover cover = randomSop(opts, rng);
    const TruthTable tt = TruthTable::fromCover(cover);
    BddManager mgr(6);
    for (std::size_t o = 0; o < 2; ++o) {
      const BddRef f = mgr.fromCover(cover, o);
      EXPECT_EQ(mgr.toTruthTable(f), tt.bits(o)) << "rep=" << rep << " o=" << o;
    }
  }
}

TEST(Bdd, OracleConfirmsIsopAndMinimizerEquivalence) {
  // Independent cross-check of the synthesis pipeline: cover, its ISOP and
  // its minimized form all hash to the same BDD node.
  Rng rng(608);
  RandomSopOptions opts;
  opts.nin = 7;
  opts.nout = 1;
  opts.products = 12;
  const Cover cover = randomSop(opts, rng);
  const TruthTable tt = TruthTable::fromCover(cover);
  const Cover viaIsop = isopCover(tt);
  BddManager mgr(7);
  EXPECT_EQ(mgr.fromCover(cover, 0), mgr.fromCover(viaIsop, 0));
  EXPECT_EQ(mgr.fromCover(cover, 0), mgr.fromTruthTable(tt.bits(0)));
}

TEST(Bdd, SizeIsReasonable) {
  BddManager mgr(8);
  BddRef parity = mgr.zero();
  for (std::size_t v = 0; v < 8; ++v) parity = mgr.bddXor(parity, mgr.variable(v));
  // Parity BDDs are linear in the variable count.
  EXPECT_LE(mgr.size(parity), 2u * 8u + 4u);
  EXPECT_EQ(mgr.countMinterms(parity), 128u);
}

}  // namespace
}  // namespace mcx
