#include "logic/isop.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

#include "logic/generators.hpp"
#include "util/rng.hpp"

namespace mcx {
namespace {

TEST(Isop, EmptyFunctionGivesEmptyCover) {
  const std::size_t nin = 4;
  DynBits zero(16);
  DynBits all(16, true);
  EXPECT_TRUE(isop(zero, zero, nin).empty());
  EXPECT_TRUE(isop(zero, all, nin).empty());  // lower bound empty: nothing required
}

TEST(Isop, TautologyGivesSingleUniversalCube) {
  DynBits all(16, true);
  const auto cubes = isop(all, all, 4);
  ASSERT_EQ(cubes.size(), 1u);
  EXPECT_EQ(cubes[0].literalCount(), 0u);
}

TEST(Isop, RejectsBadInterval) {
  DynBits l(8, true);
  DynBits u(8);
  EXPECT_THROW(isop(l, u, 3), InvalidArgument);
  DynBits wrongWidth(4, true);
  EXPECT_THROW(isop(wrongWidth, wrongWidth, 3), InvalidArgument);
}

TEST(Isop, ExactCoverOfRandomFunctions) {
  Rng rng(1234);
  for (std::size_t nin = 1; nin <= 10; ++nin) {
    for (int rep = 0; rep < 5; ++rep) {
      DynBits f(std::size_t{1} << nin);
      for (std::size_t m = 0; m < f.size(); ++m)
        if (rng.bernoulli(0.35)) f.set(m);
      const auto cubes = isop(f, f, nin);
      EXPECT_EQ(ttOfCubes(cubes, nin), f) << "nin=" << nin;
    }
  }
}

TEST(Isop, CoverStaysInsideDontCareInterval) {
  Rng rng(77);
  const std::size_t nin = 8;
  DynBits on(256), dc(256);
  for (std::size_t m = 0; m < 256; ++m) {
    const double u = rng.uniform();
    if (u < 0.3) on.set(m);
    else if (u < 0.5) dc.set(m);
  }
  DynBits upper = on | dc;
  const auto cubes = isop(on, upper, nin);
  const DynBits covered = ttOfCubes(cubes, nin);
  EXPECT_TRUE(on.subsetOf(covered));
  EXPECT_TRUE(covered.subsetOf(upper));
  // Don't-cares usually let ISOP use fewer cubes than the exact cover.
  const auto exact = isop(on, on, nin);
  EXPECT_LE(cubes.size(), exact.size());
}

TEST(Isop, ResultIsIrredundant) {
  Rng rng(5);
  const std::size_t nin = 7;
  DynBits f(128);
  for (std::size_t m = 0; m < 128; ++m)
    if (rng.bernoulli(0.4)) f.set(m);
  const auto cubes = isop(f, f, nin);
  // Dropping any single cube must lose coverage (Minato ISOPs are
  // irredundant).
  for (std::size_t skip = 0; skip < cubes.size(); ++skip) {
    std::vector<Cube> rest;
    for (std::size_t i = 0; i < cubes.size(); ++i)
      if (i != skip) rest.push_back(cubes[i]);
    EXPECT_NE(ttOfCubes(rest, nin), f) << "cube " << skip << " is redundant";
  }
}

TEST(IsopCover, MultiOutputMatchesTruthTable) {
  const TruthTable tt = weightFunction(5);  // rd53
  const Cover cover = isopCover(tt);
  EXPECT_EQ(TruthTable::fromCover(cover), tt);
  EXPECT_EQ(cover.nin(), 5u);
  EXPECT_EQ(cover.nout(), 3u);
}

TEST(IsopCover, MergesSharedInputParts) {
  // Two outputs with identical functions must share cubes after merging.
  TruthTable tt(3, 2);
  for (std::size_t m = 0; m < 8; ++m)
    if (m & 1u) {
      tt.set(0, m);
      tt.set(1, m);
    }
  const Cover cover = isopCover(tt);
  ASSERT_EQ(cover.size(), 1u);
  EXPECT_TRUE(cover.cube(0).out(0));
  EXPECT_TRUE(cover.cube(0).out(1));
}

TEST(IsopCover, ParityNeedsAllMintermCubes) {
  const TruthTable tt = parityFunction(4);
  const Cover cover = isopCover(tt);
  // Parity has no don't-cares to exploit: 2^(n-1) product terms.
  EXPECT_EQ(cover.size(), 8u);
}

TEST(IsopCover, RespectsDcTable) {
  TruthTable on(4, 1), dc(4, 1);
  on.set(0, 3);
  for (std::size_t m = 0; m < 16; ++m)
    if (m != 3) dc.set(0, m);
  // Everything except minterm 3 is don't-care: a single universal cube works.
  const Cover cover = isopCover(on, dc);
  ASSERT_EQ(cover.size(), 1u);
  EXPECT_EQ(cover.cube(0).literalCount(), 0u);
}

}  // namespace
}  // namespace mcx
