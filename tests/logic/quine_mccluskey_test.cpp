#include "logic/quine_mccluskey.hpp"

#include <gtest/gtest.h>

#include "logic/espresso.hpp"
#include "logic/generators.hpp"
#include "logic/isop.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace mcx {
namespace {

TEST(PrimeImplicants, FullDontCareForTautology) {
  DynBits on(8, true), dc(8);
  const auto primes = primeImplicants(on, dc, 3);
  ASSERT_EQ(primes.size(), 1u);
  EXPECT_EQ(primes[0].literalCount(), 0u);
}

TEST(PrimeImplicants, KnownSmallExample) {
  // f(a,b) = a XOR b has exactly two primes: a!b and !ab.
  DynBits on(4), dc(4);
  on.set(1);  // a=1 b=0
  on.set(2);  // a=0 b=1
  const auto primes = primeImplicants(on, dc, 2);
  EXPECT_EQ(primes.size(), 2u);
  for (const Cube& p : primes) EXPECT_EQ(p.literalCount(), 2u);
}

TEST(PrimeImplicants, DcEnlargesPrimes) {
  // ON = {11}, DC = {01, 10}: primes a and b appear (merged through DC).
  DynBits on(4), dc(4);
  on.set(3);
  dc.set(1);
  dc.set(2);
  const auto primes = primeImplicants(on, dc, 2);
  EXPECT_EQ(primes.size(), 2u);
  for (const Cube& p : primes) EXPECT_EQ(p.literalCount(), 1u);
}

TEST(QuineMcCluskey, ConstantZero) {
  TruthTable tt(3, 1);
  const QmResult r = quineMcCluskey(tt);
  EXPECT_TRUE(r.cover.empty());
}

TEST(QuineMcCluskey, ClassicTextbookExample) {
  // f = sum m(0,1,2,5,6,7) over 3 vars: minimum has 3 products? The known
  // result for this function is 3 cubes (e.g. !a!b + bc'... ). Verify size
  // against exhaustive check via espresso >= exact and correctness.
  TruthTable tt(3, 1);
  for (const std::size_t m : {0u, 1u, 2u, 5u, 6u, 7u}) tt.set(0, m);
  const QmResult r = quineMcCluskey(tt);
  EXPECT_EQ(ttOfCubes(r.cover, 3), tt.bits(0));
  EXPECT_LE(r.cover.size(), 4u);
  EXPECT_GE(r.cover.size(), 3u);
}

TEST(QuineMcCluskey, ParityNeedsAllMinterms) {
  const TruthTable tt = parityFunction(4);
  const QmResult r = quineMcCluskey(tt);
  EXPECT_EQ(r.cover.size(), 8u);  // exact minimum for parity
  EXPECT_EQ(ttOfCubes(r.cover, 4), tt.bits(0));
}

TEST(QuineMcCluskey, CoverAlwaysExactOnRandomFunctions) {
  Rng rng(505);
  for (int rep = 0; rep < 30; ++rep) {
    const std::size_t nin = 3 + static_cast<std::size_t>(rng.uniformInt(0, 3));
    const TruthTable tt = randomTruthTable(nin, 1, 0.4, rng);
    const QmResult r = quineMcCluskey(tt);
    EXPECT_EQ(ttOfCubes(r.cover, nin), tt.bits(0)) << "rep=" << rep;
  }
}

TEST(QuineMcCluskey, LowerBoundsEspresso) {
  // The exact cover can never use more cubes than the heuristic minimizer.
  Rng rng(506);
  for (int rep = 0; rep < 20; ++rep) {
    const std::size_t nin = 4 + static_cast<std::size_t>(rng.uniformInt(0, 2));
    const TruthTable tt = randomTruthTable(nin, 1, 0.35, rng);
    if (tt.countOnes(0) == 0) continue;
    const QmResult exact = quineMcCluskey(tt);
    const Cover heuristic = espressoMinimize(isopCover(tt));
    EXPECT_LE(exact.cover.size(), heuristic.size()) << "rep=" << rep;
  }
}

TEST(QuineMcCluskey, EspressoCloseToOptimal) {
  // Aggregate gap check: espresso should stay within ~20% of optimal cubes
  // on small random functions.
  Rng rng(507);
  std::size_t exactTotal = 0, heuristicTotal = 0;
  for (int rep = 0; rep < 25; ++rep) {
    const TruthTable tt = randomTruthTable(5, 1, 0.4, rng);
    if (tt.countOnes(0) == 0) continue;
    exactTotal += quineMcCluskey(tt).cover.size();
    heuristicTotal += espressoMinimize(isopCover(tt)).size();
  }
  EXPECT_LE(heuristicTotal, exactTotal + exactTotal / 5 + 2);
}

TEST(QuineMcCluskey, RespectsDcSet) {
  TruthTable on(3, 1), dc(3, 1);
  on.set(0, 7);
  for (std::size_t m = 0; m < 7; ++m) dc.set(0, m);
  const QmResult r = quineMcCluskey(on, dc, 0);
  ASSERT_EQ(r.cover.size(), 1u);
  EXPECT_EQ(r.cover[0].literalCount(), 0u);
}

TEST(QuineMcCluskey, ValidatesArity) {
  TruthTable big(13, 1);
  EXPECT_THROW(quineMcCluskey(big), InvalidArgument);
  TruthTable ok(3, 1);
  EXPECT_THROW(quineMcCluskey(ok, 1), InvalidArgument);  // bad output index
}

}  // namespace
}  // namespace mcx
