#include "logic/generators.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

#include <bit>

namespace mcx {
namespace {

TEST(RandomSop, ShapeAndDeterminism) {
  RandomSopOptions opts;
  opts.nin = 7;
  opts.nout = 3;
  opts.products = 12;
  Rng a(5), b(5);
  const Cover ca = randomSop(opts, a);
  const Cover cb = randomSop(opts, b);
  EXPECT_EQ(ca, cb);
  EXPECT_EQ(ca.nin(), 7u);
  EXPECT_EQ(ca.nout(), 3u);
  EXPECT_EQ(ca.size(), 12u);
}

TEST(RandomSop, EveryCubeHasLiteralAndOutput) {
  RandomSopOptions opts;
  opts.nin = 6;
  opts.nout = 4;
  opts.products = 30;
  opts.literalsPerProduct = 1.0;
  Rng rng(9);
  const Cover c = randomSop(opts, rng);
  for (const Cube& cube : c.cubes()) {
    EXPECT_GE(cube.literalCount(), 1u);
    EXPECT_TRUE(cube.outputBits().any());
  }
}

TEST(RandomSop, IrredundantOptionAvoidsContainment) {
  RandomSopOptions opts;
  opts.nin = 5;
  opts.nout = 1;
  opts.products = 15;
  opts.irredundant = true;
  Rng rng(11);
  const Cover c = randomSop(opts, rng);
  for (std::size_t i = 0; i < c.size(); ++i)
    for (std::size_t j = 0; j < c.size(); ++j)
      if (i != j) {
        EXPECT_FALSE(c.cube(i).contains(c.cube(j)));
      }
}

TEST(WeightFunction, Rd53Shape) {
  const TruthTable tt = weightFunction(5);
  EXPECT_EQ(tt.nin(), 5u);
  EXPECT_EQ(tt.nout(), 3u);
  for (std::size_t m = 0; m < 32; ++m) {
    const auto w = static_cast<std::size_t>(std::popcount(static_cast<unsigned>(m)));
    for (std::size_t o = 0; o < 3; ++o) EXPECT_EQ(tt.get(o, m), ((w >> o) & 1u) != 0);
  }
}

TEST(WeightFunction, OutputWidths) {
  EXPECT_EQ(weightFunction(7).nout(), 3u);   // rd73
  EXPECT_EQ(weightFunction(8).nout(), 4u);   // rd84
  EXPECT_EQ(weightFunction(3).nout(), 2u);
}

TEST(SqrtFunction, ComputesFloorSqrt) {
  const TruthTable tt = sqrtFunction(8);
  EXPECT_EQ(tt.nin(), 8u);
  EXPECT_EQ(tt.nout(), 4u);
  for (std::size_t m = 0; m < 256; ++m) {
    std::size_t expected = 0;
    while ((expected + 1) * (expected + 1) <= m) ++expected;
    std::size_t got = 0;
    for (std::size_t o = 0; o < 4; ++o) got |= static_cast<std::size_t>(tt.get(o, m)) << o;
    EXPECT_EQ(got, expected) << "m=" << m;
  }
}

TEST(ParityFunction, Correct) {
  const TruthTable tt = parityFunction(6);
  for (std::size_t m = 0; m < 64; ++m)
    EXPECT_EQ(tt.get(0, m), (std::popcount(static_cast<unsigned>(m)) & 1) != 0);
}

TEST(MajorityFunction, Correct) {
  const TruthTable tt = majorityFunction(5);
  for (std::size_t m = 0; m < 32; ++m)
    EXPECT_EQ(tt.get(0, m), std::popcount(static_cast<unsigned>(m)) >= 3);
}

TEST(AdderFunction, AddsOperands) {
  const TruthTable tt = adderFunction(3);
  EXPECT_EQ(tt.nin(), 6u);
  EXPECT_EQ(tt.nout(), 4u);
  for (std::size_t m = 0; m < 64; ++m) {
    const std::size_t a = m & 7, b = m >> 3;
    std::size_t got = 0;
    for (std::size_t o = 0; o < 4; ++o) got |= static_cast<std::size_t>(tt.get(o, m)) << o;
    EXPECT_EQ(got, a + b);
  }
}

TEST(RandomTruthTable, DensityRoughlyRespected) {
  Rng rng(3);
  const TruthTable tt = randomTruthTable(10, 2, 0.3, rng);
  const double density =
      static_cast<double>(tt.countOnes(0) + tt.countOnes(1)) / (2.0 * 1024.0);
  EXPECT_NEAR(density, 0.3, 0.06);
}

TEST(Generators, RejectBadShapes) {
  EXPECT_THROW(weightFunction(0), InvalidArgument);
  EXPECT_THROW(sqrtFunction(1), InvalidArgument);
  EXPECT_THROW(adderFunction(0), InvalidArgument);
  RandomSopOptions opts;
  opts.products = 0;
  Rng rng(1);
  EXPECT_THROW(randomSop(opts, rng), InvalidArgument);
}

}  // namespace
}  // namespace mcx
