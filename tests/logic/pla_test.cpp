#include "logic/pla.hpp"

#include <gtest/gtest.h>

#include "logic/truth_table.hpp"
#include "util/error.hpp"

namespace mcx {
namespace {

TEST(Pla, ParsesBasicFdFile) {
  const std::string text =
      ".i 3\n"
      ".o 2\n"
      ".p 2\n"
      "1-0 10\n"
      "011 01\n"
      ".e\n";
  const PlaFile pla = parsePlaString(text);
  EXPECT_EQ(pla.on.nin(), 3u);
  EXPECT_EQ(pla.on.nout(), 2u);
  ASSERT_EQ(pla.on.size(), 2u);
  EXPECT_EQ(pla.on.cube(0).inputString(), "1-0");
  EXPECT_TRUE(pla.on.cube(0).out(0));
  EXPECT_FALSE(pla.on.cube(0).out(1));
}

TEST(Pla, ParsesDontCareOutputs) {
  const std::string text =
      ".i 2\n.o 2\n.type fd\n"
      "11 1-\n"
      ".e\n";
  const PlaFile pla = parsePlaString(text);
  ASSERT_EQ(pla.on.size(), 1u);
  ASSERT_EQ(pla.dc.size(), 1u);
  EXPECT_TRUE(pla.on.cube(0).out(0));
  EXPECT_TRUE(pla.dc.cube(0).out(1));
}

TEST(Pla, ParsesFrTypeOffSet) {
  const std::string text =
      ".i 2\n.o 1\n.type fr\n"
      "11 1\n"
      "00 0\n"
      ".e\n";
  const PlaFile pla = parsePlaString(text);
  EXPECT_EQ(pla.on.size(), 1u);
  EXPECT_EQ(pla.off.size(), 1u);
  EXPECT_TRUE(pla.dc.empty());
}

TEST(Pla, NamesAndComments) {
  const std::string text =
      "# a comment\n"
      ".i 2\n.o 1\n"
      ".ilb a b\n"
      ".ob f\n"
      "11 1  # trailing comment\n"
      ".end\n";
  const PlaFile pla = parsePlaString(text);
  EXPECT_EQ(pla.inputNames, (std::vector<std::string>{"a", "b"}));
  EXPECT_EQ(pla.outputNames, (std::vector<std::string>{"f"}));
  EXPECT_EQ(pla.on.size(), 1u);
}

TEST(Pla, CompactBodyWithoutSpace) {
  const std::string text = ".i 2\n.o 1\n111\n.e\n";
  const PlaFile pla = parsePlaString(text);
  ASSERT_EQ(pla.on.size(), 1u);
  EXPECT_EQ(pla.on.cube(0).inputString(), "11");
}

TEST(Pla, RejectsMalformedInput) {
  EXPECT_THROW(parsePlaString("11 1\n"), ParseError);            // cube before .i/.o
  EXPECT_THROW(parsePlaString(".i 2\n.o 1\n1x 1\n"), ParseError);  // bad char
  EXPECT_THROW(parsePlaString(".i 2\n.o 1\n111 1\n"), ParseError); // width
  EXPECT_THROW(parsePlaString(".i 2\n.foo\n"), ParseError);        // directive
  EXPECT_THROW(parsePlaString(".o 1\n.e\n"), ParseError);          // missing .i
}

// Every malformed construct is a hard error that names the offending line —
// a file that parses at all parses exactly.
TEST(Pla, ErrorsCarryLineNumbers) {
  auto errorOf = [](const std::string& text) -> std::string {
    try {
      parsePlaString(text);
    } catch (const ParseError& e) {
      return e.what();
    }
    return "";
  };
  EXPECT_NE(errorOf(".i 2\n.o 1\n11 1\n1x 1\n.e\n").find("PLA line 4"), std::string::npos);
  EXPECT_NE(errorOf(".i 2\n.o 1\n111 1\n.e\n").find("line 3"), std::string::npos);
  EXPECT_NE(errorOf("# c\n.i abc\n").find("line 2"), std::string::npos);
  EXPECT_NE(errorOf("11 1\n").find("line 1"), std::string::npos);
}

TEST(Pla, RejectsMalformedDirectives) {
  EXPECT_THROW(parsePlaString(".i abc\n.o 1\n.e\n"), ParseError);   // non-numeric
  EXPECT_THROW(parsePlaString(".i 2x\n.o 1\n.e\n"), ParseError);    // trailing garbage
  EXPECT_THROW(parsePlaString(".i 0\n.o 1\n.e\n"), ParseError);     // zero inputs
  EXPECT_THROW(parsePlaString(".i 2\n.i 2\n.o 1\n.e\n"), ParseError);  // duplicate .i
  EXPECT_THROW(parsePlaString(".i 2\n.o 1\n.o 1\n.e\n"), ParseError);  // duplicate .o
  EXPECT_THROW(parsePlaString(".i 2\n.o 1\n.type fx\n.e\n"), ParseError);  // bad type
  EXPECT_THROW(parsePlaString(".i 2 3\n.o 1\n.e\n"), ParseError);   // extra argument
}

TEST(Pla, MissingEndIsAnError) {
  EXPECT_THROW(parsePlaString(".i 2\n.o 1\n11 1\n"), ParseError);
  EXPECT_NO_THROW(parsePlaString(".i 2\n.o 1\n11 1\n.e\n"));
  EXPECT_NO_THROW(parsePlaString(".i 2\n.o 1\n11 1\n.end\n"));
}

TEST(Pla, CubeWidthMismatchNamesTheExpectation) {
  try {
    parsePlaString(".i 3\n.o 2\n1-0 1\n.e\n");  // output part too narrow
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("line 3"), std::string::npos);
    EXPECT_NE(what.find("expected 2"), std::string::npos);
  }
  EXPECT_THROW(parsePlaString(".i 3\n.o 2\n1-0- 10\n.e\n"), ParseError);  // input too wide
  EXPECT_THROW(parsePlaString(".i 3\n.o 2\n1-01\n.e\n"), ParseError);     // compact, short
}

TEST(Pla, RoundTripPreservesFunction) {
  const std::string text =
      ".i 4\n.o 2\n"
      "1--0 10\n"
      "-01- 11\n"
      "0--- 01\n"
      ".e\n";
  const PlaFile pla = parsePlaString(text);
  const std::string written = writePla(pla);
  const PlaFile reparsed = parsePlaString(written);
  EXPECT_EQ(TruthTable::fromCover(reparsed.on), TruthTable::fromCover(pla.on));
  EXPECT_EQ(reparsed.on.size(), pla.on.size());
}

TEST(Pla, RoundTripPreservesDcSet) {
  const std::string text =
      ".i 2\n.o 1\n"
      "11 1\n"
      "00 -\n"
      ".e\n";
  const PlaFile pla = parsePlaString(text);
  const PlaFile reparsed = parsePlaString(writePla(pla));
  EXPECT_EQ(reparsed.dc.size(), pla.dc.size());
  EXPECT_EQ(TruthTable::fromCover(reparsed.dc), TruthTable::fromCover(pla.dc));
}

TEST(Pla, MissingFileThrows) {
  EXPECT_THROW(readPlaFile("/nonexistent/file.pla"), ParseError);
}

}  // namespace
}  // namespace mcx
