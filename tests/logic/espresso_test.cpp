#include "logic/espresso.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

#include "logic/generators.hpp"
#include "logic/isop.hpp"
#include "logic/truth_table.hpp"
#include "util/rng.hpp"

namespace mcx {
namespace {

std::vector<Cube> inputCubes(std::initializer_list<const char*> patterns) {
  std::vector<Cube> cubes;
  for (const char* p : patterns) cubes.push_back(makeCube(p, ""));
  return cubes;
}

TEST(Cofactor, DropsOppositePhaseAndRaises) {
  const auto cubes = inputCubes({"1-0", "0-1", "-1-"});
  const auto pos = cofactor(cubes, 0, true);
  ASSERT_EQ(pos.size(), 2u);
  EXPECT_EQ(pos[0].inputString(), "--0");
  EXPECT_EQ(pos[1].inputString(), "-1-");
}

TEST(CofactorCube, GeneralizedCofactor) {
  const auto cubes = inputCubes({"11-", "00-"});
  const Cube c = makeCube("1--", "");
  const auto cof = cofactorCube(cubes, c);
  ASSERT_EQ(cof.size(), 1u);
  EXPECT_EQ(cof[0].inputString(), "-1-");
}

TEST(Tautology, UniversalCube) {
  EXPECT_TRUE(tautology(inputCubes({"---"}), 3));
}

TEST(Tautology, EmptyCoverIsNot) {
  EXPECT_FALSE(tautology({}, 3));
}

TEST(Tautology, ComplementaryPairIsTautology) {
  EXPECT_TRUE(tautology(inputCubes({"1--", "0--"}), 3));
}

TEST(Tautology, AlmostFullIsNot) {
  EXPECT_FALSE(tautology(inputCubes({"1--", "01-", "001"}), 3));  // misses 000
  EXPECT_TRUE(tautology(inputCubes({"1--", "01-", "001", "000"}), 3));
}

TEST(Tautology, MatchesTruthTableOnRandomCovers) {
  Rng rng(31);
  for (int rep = 0; rep < 60; ++rep) {
    const std::size_t nin = 3 + static_cast<std::size_t>(rng.uniformInt(0, 4));
    RandomSopOptions opts;
    opts.nin = nin;
    opts.nout = 1;
    opts.products = 1 + static_cast<std::size_t>(rng.uniformInt(0, 12));
    opts.literalsPerProduct = 1.6;
    opts.irredundant = false;
    const Cover cover = randomSop(opts, rng);
    std::vector<Cube> cubes = cover.cubes();
    const bool expected = ttOfCubes(cubes, nin).all();
    EXPECT_EQ(tautology(cubes, nin), expected) << "rep=" << rep;
  }
}

TEST(Complement, EmptyCoverGivesUniverse) {
  const auto comp = complementCubes({}, 3);
  ASSERT_EQ(comp.size(), 1u);
  EXPECT_EQ(comp[0].literalCount(), 0u);
}

TEST(Complement, UniverseGivesEmpty) {
  EXPECT_TRUE(complementCubes(inputCubes({"---"}), 3).empty());
}

TEST(Complement, SingleCubeDeMorgan) {
  const auto comp = complementCubes(inputCubes({"10-"}), 3);
  // !(x1 !x2) = !x1 + x2
  const DynBits tt = ttOfCubes(comp, 3);
  const DynBits orig = ttOfCubes(inputCubes({"10-"}), 3);
  EXPECT_EQ(tt, ~orig);
}

TEST(Complement, RandomCoversExact) {
  Rng rng(47);
  for (int rep = 0; rep < 40; ++rep) {
    const std::size_t nin = 2 + static_cast<std::size_t>(rng.uniformInt(0, 6));
    RandomSopOptions opts;
    opts.nin = nin;
    opts.nout = 1;
    opts.products = 1 + static_cast<std::size_t>(rng.uniformInt(0, 10));
    opts.literalsPerProduct = 2.0;
    opts.irredundant = false;
    const Cover cover = randomSop(opts, rng);
    const auto comp = complementCubes(cover.cubes(), nin);
    const DynBits orig = ttOfCubes(cover.cubes(), nin);
    const DynBits compTT = ttOfCubes(comp, nin);
    EXPECT_EQ(compTT, ~orig) << "rep=" << rep << " nin=" << nin;
  }
}

TEST(CubeCoveredBy, DetectsCoverage) {
  const auto cubes = inputCubes({"1--", "01-"});
  EXPECT_TRUE(cubeCoveredBy(makeCube("11-", ""), cubes, 3));
  EXPECT_FALSE(cubeCoveredBy(makeCube("0--", ""), cubes, 3));
  EXPECT_TRUE(cubeCoveredBy(makeCube("-1-", ""), cubes, 3));
}

TEST(Supercube, SmallestEnclosingCube) {
  const Cube s = supercube(inputCubes({"110", "100"}));
  EXPECT_EQ(s.inputString(), "1-0");
  EXPECT_THROW(supercube({}), InvalidArgument);
}

TEST(EspressoMinimize, PreservesFunctionSingleOutput) {
  Rng rng(91);
  for (int rep = 0; rep < 25; ++rep) {
    const std::size_t nin = 3 + static_cast<std::size_t>(rng.uniformInt(0, 5));
    RandomSopOptions opts;
    opts.nin = nin;
    opts.nout = 1;
    opts.products = 2 + static_cast<std::size_t>(rng.uniformInt(0, 10));
    opts.literalsPerProduct = 2.5;
    const Cover cover = randomSop(opts, rng);
    const Cover minimized = espressoMinimize(cover);
    EXPECT_EQ(TruthTable::fromCover(minimized), TruthTable::fromCover(cover)) << "rep=" << rep;
    EXPECT_LE(minimized.size(), cover.size());
  }
}

TEST(EspressoMinimize, PreservesFunctionMultiOutput) {
  Rng rng(92);
  for (int rep = 0; rep < 15; ++rep) {
    RandomSopOptions opts;
    opts.nin = 6;
    opts.nout = 4;
    opts.products = 12;
    opts.literalsPerProduct = 3.0;
    opts.outputsPerProduct = 1.8;
    const Cover cover = randomSop(opts, rng);
    const Cover minimized = espressoMinimize(cover);
    EXPECT_EQ(TruthTable::fromCover(minimized), TruthTable::fromCover(cover)) << "rep=" << rep;
  }
}

TEST(EspressoMinimize, CollapsesRedundantCover) {
  // x1 + !x1 x2 + x1 x2  ->  two cubes at most (x1 + x2).
  Cover c(2, 1);
  c.add(makeCube("1-", "1"));
  c.add(makeCube("01", "1"));
  c.add(makeCube("11", "1"));
  const Cover minimized = espressoMinimize(c);
  EXPECT_EQ(minimized.size(), 2u);
  EXPECT_EQ(TruthTable::fromCover(minimized), TruthTable::fromCover(c));
}

TEST(EspressoMinimize, MergesAdjacentMinterms) {
  // Four minterms of a 2-variable tautology collapse to one cube.
  Cover c(2, 1);
  c.add(makeCube("00", "1"));
  c.add(makeCube("01", "1"));
  c.add(makeCube("10", "1"));
  c.add(makeCube("11", "1"));
  const Cover minimized = espressoMinimize(c);
  ASSERT_EQ(minimized.size(), 1u);
  EXPECT_EQ(minimized.cube(0).literalCount(), 0u);
}

TEST(EspressoMinimize, SharesProductsAcrossOutputs) {
  // Same function on both outputs, written with disjoint cube lists.
  Cover c(3, 2);
  c.add(makeCube("11-", "10"));
  c.add(makeCube("11-", "01"));
  const Cover minimized = espressoMinimize(c);
  EXPECT_EQ(minimized.size(), 1u);
}

TEST(EspressoMinimize, UsesDontCares) {
  // f = minterm 3 with everything else DC: must collapse to a universal cube.
  Cover on(2, 1), dc(2, 1);
  on.add(makeCube("11", "1"));
  dc.add(makeCube("0-", "1"));
  dc.add(makeCube("10", "1"));
  const Cover minimized = espressoMinimize(on, dc);
  ASSERT_EQ(minimized.size(), 1u);
  EXPECT_EQ(minimized.cube(0).literalCount(), 0u);
}

TEST(EspressoMinimize, NoWorseThanIsop) {
  const TruthTable tt = weightFunction(5);
  const Cover isopC = isopCover(tt);
  const Cover polished = espressoMinimize(isopC);
  EXPECT_LE(polished.size(), isopC.size());
  EXPECT_EQ(TruthTable::fromCover(polished), tt);
}

TEST(ComplementCover, MultiOutputComplement) {
  Rng rng(17);
  RandomSopOptions opts;
  opts.nin = 5;
  opts.nout = 3;
  opts.products = 8;
  const Cover cover = randomSop(opts, rng);
  const Cover comp = complementCover(cover);
  const TruthTable tt = TruthTable::fromCover(cover);
  const TruthTable ct = TruthTable::fromCover(comp);
  EXPECT_EQ(ct, tt.complemented());
}

// Parameterized sweep: espresso must preserve the function for every input
// arity in the benchmark-relevant range.
class EspressoSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(EspressoSweep, FunctionPreservedAtArity) {
  const std::size_t nin = GetParam();
  Rng rng(1000 + nin);
  RandomSopOptions opts;
  opts.nin = nin;
  opts.nout = 2;
  opts.products = nin + 2;
  opts.literalsPerProduct = nin / 2.0;
  const Cover cover = randomSop(opts, rng);
  const Cover minimized = espressoMinimize(cover);
  EXPECT_EQ(TruthTable::fromCover(minimized), TruthTable::fromCover(cover));
}

INSTANTIATE_TEST_SUITE_P(Arity, EspressoSweep, ::testing::Range<std::size_t>(2, 12));

}  // namespace
}  // namespace mcx
