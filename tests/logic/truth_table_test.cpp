#include "logic/truth_table.hpp"

#include <gtest/gtest.h>

#include "logic/cover.hpp"
#include "util/rng.hpp"

namespace mcx {
namespace {

TEST(TruthTable, FromFunctionAndGet) {
  const TruthTable tt = TruthTable::fromFunction(
      3, 1, [](std::size_t m, std::size_t) { return (m & 1u) != 0; });  // = x1
  for (std::size_t m = 0; m < 8; ++m) EXPECT_EQ(tt.get(0, m), (m & 1u) != 0);
  EXPECT_EQ(tt.countOnes(0), 4u);
}

TEST(TruthTable, FromCoverMatchesEvaluate) {
  Cover c(4, 2);
  c.add(makeCube("1--0", "10"));
  c.add(makeCube("-01-", "11"));
  c.add(makeCube("0-0-", "01"));
  const TruthTable tt = TruthTable::fromCover(c);
  DynBits in(4);
  for (std::size_t m = 0; m < 16; ++m) {
    for (std::size_t v = 0; v < 4; ++v) in.set(v, ((m >> v) & 1u) != 0);
    const DynBits out = c.evaluate(in);
    for (std::size_t o = 0; o < 2; ++o) EXPECT_EQ(tt.get(o, m), out.test(o)) << "m=" << m;
  }
}

TEST(TruthTable, ComplementFlipsEverything) {
  const TruthTable tt = TruthTable::fromFunction(
      3, 2, [](std::size_t m, std::size_t o) { return ((m >> o) & 1u) != 0; });
  const TruthTable nt = tt.complemented();
  for (std::size_t o = 0; o < 2; ++o)
    for (std::size_t m = 0; m < 8; ++m) EXPECT_NE(tt.get(o, m), nt.get(o, m));
}

TEST(TruthTable, VarMaskSelectsHalfTheSpace) {
  for (std::size_t nin = 1; nin <= 10; ++nin) {
    for (std::size_t v = 0; v < nin; ++v) {
      const DynBits mask = ttVarMask(nin, v);
      EXPECT_EQ(mask.count(), (std::size_t{1} << nin) / 2) << "nin=" << nin << " v=" << v;
      for (std::size_t m = 0; m < (std::size_t{1} << nin); ++m)
        EXPECT_EQ(mask.test(m), ((m >> v) & 1u) != 0) << "nin=" << nin << " v=" << v << " m=" << m;
    }
  }
}

TEST(TruthTable, CofactorsAreIndependentOfVariable) {
  Rng rng(99);
  for (std::size_t nin = 2; nin <= 9; ++nin) {
    DynBits f(std::size_t{1} << nin);
    for (std::size_t m = 0; m < f.size(); ++m)
      if (rng.bernoulli(0.4)) f.set(m);
    for (std::size_t v = 0; v < nin; ++v) {
      const DynBits f0 = ttCofactor0(f, nin, v);
      const DynBits f1 = ttCofactor1(f, nin, v);
      for (std::size_t m = 0; m < f.size(); ++m) {
        const std::size_t m0 = m & ~(std::size_t{1} << v);
        const std::size_t m1 = m | (std::size_t{1} << v);
        EXPECT_EQ(f0.test(m), f.test(m0));
        EXPECT_EQ(f1.test(m), f.test(m1));
      }
    }
  }
}

TEST(TruthTable, ShannonExpansionReconstructs) {
  Rng rng(7);
  const std::size_t nin = 7;
  DynBits f(std::size_t{1} << nin);
  for (std::size_t m = 0; m < f.size(); ++m)
    if (rng.bernoulli(0.5)) f.set(m);
  for (std::size_t v = 0; v < nin; ++v) {
    const DynBits mask = ttVarMask(nin, v);
    DynBits rebuilt = ttCofactor1(f, nin, v);
    rebuilt &= mask;
    DynBits low = ttCofactor0(f, nin, v);
    low.andNot(mask);
    rebuilt |= low;
    EXPECT_EQ(rebuilt, f) << "v=" << v;
  }
}

TEST(TruthTable, TtOfCubeMatchesCoversMinterm) {
  const Cube c = makeCube("1-0-1", "1");
  const DynBits tt = ttOfCube(c);
  DynBits in(5);
  for (std::size_t m = 0; m < 32; ++m) {
    for (std::size_t v = 0; v < 5; ++v) in.set(v, ((m >> v) & 1u) != 0);
    EXPECT_EQ(tt.test(m), c.coversMinterm(in)) << "m=" << m;
  }
}

TEST(TruthTable, TtOfEmptyCubeIsZero) {
  Cube c(3, 1);
  c.setLit(1, Lit::Empty);
  EXPECT_TRUE(ttOfCube(c).none());
}

TEST(TruthTable, TtOfCubesIsUnion) {
  std::vector<Cube> cubes{makeCube("1--", "1"), makeCube("-1-", "1")};
  const DynBits u = ttOfCubes(cubes, 3);
  EXPECT_EQ(u.count(), 6u);
}

}  // namespace
}  // namespace mcx
