#include "benchdata/registry.hpp"

#include <gtest/gtest.h>

#include "logic/generators.hpp"
#include "logic/truth_table.hpp"
#include "util/error.hpp"
#include "xbar/area_model.hpp"

namespace mcx {
namespace {

TEST(Registry, ListsAllPaperCircuits) {
  const auto& infos = paperBenchmarks();
  EXPECT_EQ(infos.size(), 20u);
  std::size_t table2 = 0;
  for (const auto& info : infos) table2 += info.inTable2 ? 1 : 0;
  EXPECT_EQ(table2, 16u);  // the 16 rows of Table II
}

TEST(Registry, UnknownNameThrows) {
  EXPECT_THROW(loadBenchmark("nonexistent"), InvalidArgument);
}

TEST(Registry, SyntheticStandInsMatchPaperStats) {
  for (const auto& info : paperBenchmarks()) {
    if (info.source != BenchmarkSource::Synthetic) continue;
    const BenchmarkCircuit c = loadBenchmarkFast(info.name);
    EXPECT_EQ(c.cover.nin(), info.inputs) << info.name;
    EXPECT_EQ(c.cover.nout(), info.outputs) << info.name;
    EXPECT_EQ(c.cover.size(), info.products) << info.name;
    // misex3c's printed area (11856) disagrees with the paper's own formula
    // ((197+14)(56) = 11816); its note documents this.
    if (info.paperAreaTwoLevel && info.name != "misex3c") {
      EXPECT_EQ(twoLevelDims(c.cover).area(), *info.paperAreaTwoLevel) << info.name;
    }
  }
}

TEST(Registry, GeneratedCircuitsComputeTheRightFunction) {
  const BenchmarkCircuit rd53 = loadBenchmarkFast("rd53");
  EXPECT_EQ(TruthTable::fromCover(rd53.cover), weightFunction(5));
  const BenchmarkCircuit rd73 = loadBenchmarkFast("rd73");
  EXPECT_EQ(TruthTable::fromCover(rd73.cover), weightFunction(7));
}

TEST(Registry, Sqrt8UsesTheDual) {
  // Table II implements sqrt8 as its complement (bold row).
  const BenchmarkCircuit sqrt8 = loadBenchmark("sqrt8");
  const TruthTable direct = sqrtFunction(8);
  const TruthTable got = TruthTable::fromCover(sqrt8.cover);
  EXPECT_TRUE(got == direct || got == direct.complemented());
  EXPECT_TRUE(sqrt8.info.paperUsedDual);
}

TEST(Registry, Rd53MinimizedProductCountNearPaper) {
  const BenchmarkCircuit rd53 = loadBenchmark("rd53");
  // The paper's espresso-minimized rd53 has P=31; our minimizer must land in
  // the same neighborhood (the generated circuit is the real function).
  EXPECT_GE(rd53.cover.size(), 31u);
  EXPECT_LE(rd53.cover.size(), 40u);
  EXPECT_EQ(TruthTable::fromCover(rd53.cover), weightFunction(5));
}

TEST(Registry, StructureSeededCircuitsAreMultiOutputSafe) {
  const BenchmarkCircuit cordic = loadBenchmarkFast("cordic");
  EXPECT_EQ(cordic.cover.nin(), 23u);
  EXPECT_EQ(cordic.cover.nout(), 2u);
  EXPECT_GT(cordic.cover.size(), 500u);
}

TEST(Registry, EveryEntryLoads) {
  for (const auto& info : paperBenchmarks()) {
    const BenchmarkCircuit c = loadBenchmarkFast(info.name);
    EXPECT_FALSE(c.cover.empty()) << info.name;
    EXPECT_EQ(c.info.name, info.name);
  }
}

TEST(Registry, NotesDocumentSubstitutions) {
  for (const auto& info : paperBenchmarks()) EXPECT_FALSE(info.note.empty()) << info.name;
}

}  // namespace
}  // namespace mcx
