#include "benchdata/synthetic.hpp"

#include <gtest/gtest.h>

#include "logic/truth_table.hpp"
#include "netlist/nand_mapper.hpp"
#include "util/error.hpp"
#include "xbar/area_model.hpp"

namespace mcx {
namespace {

TEST(SyntheticCover, ExactShape) {
  const Cover c = syntheticCover("test-a", 7, 3, 20, 4.0, 1.5);
  EXPECT_EQ(c.nin(), 7u);
  EXPECT_EQ(c.nout(), 3u);
  EXPECT_EQ(c.size(), 20u);
}

TEST(SyntheticCover, DeterministicPerName) {
  EXPECT_EQ(syntheticCover("x", 5, 2, 10, 3.0), syntheticCover("x", 5, 2, 10, 3.0));
  EXPECT_NE(syntheticCover("x", 5, 2, 10, 3.0), syntheticCover("y", 5, 2, 10, 3.0));
}

TEST(SyntheticCover, IrredundantByConstruction) {
  const Cover c = syntheticCover("test-b", 6, 2, 25, 3.0);
  for (std::size_t i = 0; i < c.size(); ++i)
    for (std::size_t j = 0; j < c.size(); ++j)
      if (i != j) {
        EXPECT_FALSE(c.cube(i).contains(c.cube(j)));
      }
}

TEST(ProductOfSums, ExpansionSizeIsProductOfGroupSizes) {
  const Cover c = productOfSumsCover(8, {2, 3});
  EXPECT_EQ(c.size(), 6u);
  EXPECT_EQ(c.nin(), 8u);
  for (const Cube& cube : c.cubes()) EXPECT_EQ(cube.literalCount(), 2u);
}

TEST(ProductOfSums, SemanticsMatchDefinition) {
  const Cover c = productOfSumsCover(5, {2, 3});
  const TruthTable tt = TruthTable::fromCover(c);
  for (std::size_t m = 0; m < 32; ++m) {
    const bool g1 = (m & 0b00011) != 0;        // x1 + x2
    const bool g2 = (m & 0b11100) != 0;        // x3 + x4 + x5
    EXPECT_EQ(tt.get(0, m), g1 && g2) << "m=" << m;
  }
}

TEST(ProductOfSums, FactorsBackToSmallNetwork) {
  // The t481/cordic substitution property: huge SOP, tiny factored network.
  const Cover c = productOfSumsCover(16, {4, 4, 4, 4});
  EXPECT_EQ(c.size(), 256u);
  const NandNetwork net = mapToNand(c);
  EXPECT_LT(net.gateCount(), 20u);
  EXPECT_LT(multiLevelDims(net).area(), twoLevelDims(c).area() / 10);
}

TEST(ProductOfSums, Validation) {
  EXPECT_THROW(productOfSumsCover(3, {}), InvalidArgument);
  EXPECT_THROW(productOfSumsCover(3, {2, 2}), InvalidArgument);   // needs 4 vars
  EXPECT_THROW(productOfSumsCover(3, {0}), InvalidArgument);
}

}  // namespace
}  // namespace mcx
