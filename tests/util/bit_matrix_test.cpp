#include "util/bit_matrix.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace mcx {
namespace {

TEST(BitMatrix, ConstructClear) {
  BitMatrix m(3, 70);
  EXPECT_EQ(m.rows(), 3u);
  EXPECT_EQ(m.cols(), 70u);
  EXPECT_EQ(m.count(), 0u);
}

TEST(BitMatrix, ConstructAllSetMasksTailPerRow) {
  BitMatrix m(4, 70, true);
  EXPECT_EQ(m.count(), 4u * 70u);
  for (std::size_t r = 0; r < 4; ++r) EXPECT_EQ(m.rowCount(r), 70u);
}

TEST(BitMatrix, SetTestReset) {
  BitMatrix m(2, 130);
  m.set(0, 0);
  m.set(1, 129);
  m.set(0, 64);
  EXPECT_TRUE(m.test(0, 0));
  EXPECT_TRUE(m.test(1, 129));
  EXPECT_TRUE(m.test(0, 64));
  EXPECT_FALSE(m.test(1, 0));
  m.reset(0, 64);
  EXPECT_FALSE(m.test(0, 64));
  m.set(0, 0, false);
  EXPECT_FALSE(m.test(0, 0));
}

TEST(BitMatrix, OutOfRangeThrows) {
  BitMatrix m(2, 2);
  EXPECT_THROW(m.test(2, 0), InvalidArgument);
  EXPECT_THROW(m.set(0, 2), InvalidArgument);
}

TEST(BitMatrix, RowAndColCounts) {
  BitMatrix m(3, 5);
  m.set(0, 0);
  m.set(0, 4);
  m.set(2, 0);
  EXPECT_EQ(m.rowCount(0), 2u);
  EXPECT_EQ(m.rowCount(1), 0u);
  EXPECT_EQ(m.colCount(0), 2u);
  EXPECT_EQ(m.colCount(4), 1u);
}

TEST(BitMatrix, SetRowSetCol) {
  BitMatrix m(3, 4);
  m.setRow(1, true);
  EXPECT_EQ(m.rowCount(1), 4u);
  m.setCol(2, true);
  EXPECT_EQ(m.colCount(2), 3u);
  m.setRow(1, false);
  EXPECT_EQ(m.rowCount(1), 0u);
  EXPECT_EQ(m.colCount(2), 2u);
}

TEST(BitMatrix, RowSubsetOf) {
  BitMatrix fm(2, 100);
  BitMatrix cm(2, 100, true);
  fm.set(0, 10);
  fm.set(0, 99);
  EXPECT_TRUE(fm.rowSubsetOf(0, cm, 0));
  cm.reset(1, 99);
  EXPECT_TRUE(fm.rowSubsetOf(0, cm, 0));
  EXPECT_FALSE(fm.rowSubsetOf(0, cm, 1));
  // An all-zero FM row fits anything.
  EXPECT_TRUE(fm.rowSubsetOf(1, cm, 1));
}

TEST(BitMatrix, ToString) {
  BitMatrix m(2, 3);
  m.set(0, 1);
  m.set(1, 2);
  EXPECT_EQ(m.toString(), ".1.\n..1\n");
}

TEST(BitMatrix, EqualityIsStructural) {
  BitMatrix a(2, 3), b(2, 3);
  EXPECT_EQ(a, b);
  b.set(0, 0);
  EXPECT_NE(a, b);
}

TEST(BitMatrix, SetRowWordWiseMasksTail) {
  BitMatrix m(3, 70);  // two words per row, 6 tail bits
  m.setRow(1, true);
  EXPECT_EQ(m.rowCount(1), 70u);
  EXPECT_EQ(m.count(), 70u);
  m.set(0, 69);
  m.setRow(1, false);
  EXPECT_EQ(m.count(), 1u);
  EXPECT_TRUE(m.test(0, 69));
  // Tail padding must stay clear so operator== and count() remain exact.
  BitMatrix viaBits(3, 70);
  viaBits.set(0, 69);
  EXPECT_EQ(m, viaBits);
}

TEST(BitMatrix, SetColTouchesEveryRow) {
  BitMatrix m(5, 130);
  m.setCol(128, true);
  EXPECT_EQ(m.colCount(128), 5u);
  EXPECT_EQ(m.count(), 5u);
  m.setCol(128, false);
  EXPECT_EQ(m.count(), 0u);
}

TEST(BitMatrix, AssignTransposedMatchesPerBitTranspose) {
  Rng rng(41);
  // Dimensions straddling the 64-bit word boundaries in both directions.
  const std::size_t dims[][2] = {{1, 1}, {7, 3}, {64, 64}, {65, 63}, {128, 1},
                                 {1, 128}, {100, 200}, {289, 299}};
  for (const auto& d : dims) {
    BitMatrix a(d[0], d[1]);
    for (std::size_t r = 0; r < a.rows(); ++r)
      for (std::size_t c = 0; c < a.cols(); ++c)
        if (rng.bernoulli(0.3)) a.set(r, c);
    BitMatrix t;
    t.assignTransposed(a);
    ASSERT_EQ(t.rows(), a.cols());
    ASSERT_EQ(t.cols(), a.rows());
    for (std::size_t r = 0; r < a.rows(); ++r)
      for (std::size_t c = 0; c < a.cols(); ++c)
        ASSERT_EQ(t.test(c, r), a.test(r, c)) << d[0] << "x" << d[1] << " @" << r << "," << c;
    // Double transpose is the identity.
    BitMatrix back;
    back.assignTransposed(t);
    EXPECT_EQ(back, a);
  }
}

TEST(BitMatrix, AssignTransposedHandlesEmpty) {
  BitMatrix a(0, 5), t(3, 3, true);
  t.assignTransposed(a);
  EXPECT_EQ(t.rows(), 5u);
  EXPECT_EQ(t.cols(), 0u);
  EXPECT_EQ(t.count(), 0u);
}

TEST(BitMatrix, FillAndReshapeReuseBuffers) {
  BitMatrix m(4, 70);
  m.fill(true);
  EXPECT_EQ(m.count(), 4u * 70u);
  m.fill(false);
  EXPECT_EQ(m.count(), 0u);
  m.reshape(2, 130, true);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 130u);
  EXPECT_EQ(m.count(), 2u * 130u);
  EXPECT_EQ(m, BitMatrix(2, 130, true));
  m.reshape(3, 5);
  EXPECT_EQ(m.count(), 0u);
  EXPECT_EQ(m, BitMatrix(3, 5));
}

}  // namespace
}  // namespace mcx
