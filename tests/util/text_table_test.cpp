#include "util/text_table.hpp"

#include <gtest/gtest.h>

namespace mcx {
namespace {

TEST(TextTable, RendersHeaderAndRows) {
  TextTable t({"Name", "Area"});
  t.addRow({"rd53", "544"});
  t.addRow({"alu4", "25652"});
  const std::string s = t.toString();
  EXPECT_NE(s.find("Name"), std::string::npos);
  EXPECT_NE(s.find("rd53"), std::string::npos);
  EXPECT_NE(s.find("25652"), std::string::npos);
  EXPECT_EQ(t.rowCount(), 2u);
}

TEST(TextTable, PadsShortRows) {
  TextTable t({"a", "b", "c"});
  t.addRow({"1"});
  EXPECT_NE(t.toString().find('1'), std::string::npos);
}

TEST(TextTable, CsvOutput) {
  TextTable t({"x", "y"});
  t.addRow({"1", "2"});
  EXPECT_EQ(t.toCsv(), "x,y\n1,2\n");
}

TEST(TextTable, NumFormatsPrecision) {
  EXPECT_EQ(TextTable::num(1.23456, 2), "1.23");
  EXPECT_EQ(TextTable::num(2.0, 0), "2");
}

TEST(TextTable, PercentFormatsRatio) {
  EXPECT_EQ(TextTable::percent(0.98), "98%");
  EXPECT_EQ(TextTable::percent(0.125, 1), "12.5%");
}

}  // namespace
}  // namespace mcx
