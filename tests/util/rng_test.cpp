#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <set>

namespace mcx {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  bool anyDifferent = false;
  for (int i = 0; i < 10; ++i) anyDifferent |= (a() != b());
  EXPECT_TRUE(anyDifferent);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformIntRespectsBounds) {
  Rng rng(9);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.uniformInt(3, 9);
    EXPECT_GE(v, 3u);
    EXPECT_LE(v, 9u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // all values hit
}

TEST(Rng, UniformIntSingleton) {
  Rng rng(11);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.uniformInt(5, 5), 5u);
}

TEST(Rng, BernoulliExtremes) {
  Rng rng(13);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(Rng, BernoulliRoughlyCalibrated) {
  Rng rng(17);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.25) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.25, 0.02);
}

TEST(Rng, ShuffleKeepsMultiset) {
  Rng rng(19);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto sorted = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng a(23);
  Rng child = a.split();
  // Parent and child should not produce identical sequences.
  bool anyDifferent = false;
  Rng parentCopy = a;
  for (int i = 0; i < 10; ++i) anyDifferent |= (parentCopy() != child());
  EXPECT_TRUE(anyDifferent);
}

}  // namespace
}  // namespace mcx
