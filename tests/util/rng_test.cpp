#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <set>

namespace mcx {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  bool anyDifferent = false;
  for (int i = 0; i < 10; ++i) anyDifferent |= (a() != b());
  EXPECT_TRUE(anyDifferent);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformIntRespectsBounds) {
  Rng rng(9);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.uniformInt(3, 9);
    EXPECT_GE(v, 3u);
    EXPECT_LE(v, 9u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // all values hit
}

TEST(Rng, UniformIntSingleton) {
  Rng rng(11);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.uniformInt(5, 5), 5u);
}

TEST(Rng, BernoulliExtremes) {
  Rng rng(13);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(Rng, BernoulliRoughlyCalibrated) {
  Rng rng(17);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.25) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.25, 0.02);
}

TEST(Rng, ShuffleKeepsMultiset) {
  Rng rng(19);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto sorted = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng a(23);
  Rng child = a.split();
  // Parent and child should not produce identical sequences.
  bool anyDifferent = false;
  Rng parentCopy = a;
  for (int i = 0; i < 10; ++i) anyDifferent |= (parentCopy() != child());
  EXPECT_TRUE(anyDifferent);
}

TEST(Rng, BinomialEdgeCases) {
  Rng rng(29);
  EXPECT_EQ(rng.binomial(0, 0.5), 0u);
  EXPECT_EQ(rng.binomial(100, 0.0), 0u);
  EXPECT_EQ(rng.binomial(100, 1.0), 100u);
  for (int i = 0; i < 200; ++i) {
    const std::uint64_t k = rng.binomial(7, 0.4);
    EXPECT_LE(k, 7u);
  }
}

TEST(Rng, BinomialConsumesOneDrawAndIsDeterministic) {
  Rng a(31), b(31);
  EXPECT_EQ(a.binomial(100000, 0.1), b.binomial(100000, 0.1));
  // Exactly one uniform consumed per call, whatever the outcome: the
  // sparse sampler's draw-order contract depends on it.
  b = Rng(31);
  (void)b();
  Rng c(31);
  (void)c.binomial(12345, 0.37);
  EXPECT_EQ(b(), c());
}

TEST(Rng, BinomialMatchesMomentsAndBernoulliSum) {
  // Mean and variance of Binomial(n, p), plus agreement with an explicit
  // Bernoulli-trial sum: both samplers must draw from the same
  // distribution (the O(defects) fast path relies on it).
  const std::uint64_t n = 4096;
  const double p = 0.1;
  const int reps = 4000;
  Rng rng(37), trials(38);
  double sum = 0, sumSq = 0, trialSum = 0;
  for (int i = 0; i < reps; ++i) {
    const double k = static_cast<double>(rng.binomial(n, p));
    sum += k;
    sumSq += k * k;
    int hits = 0;
    for (std::uint64_t t = 0; t < n; ++t) hits += trials.bernoulli(p) ? 1 : 0;
    trialSum += hits;
  }
  const double mean = sum / reps;
  const double var = sumSq / reps - mean * mean;
  const double expectedMean = static_cast<double>(n) * p;          // 409.6
  const double expectedVar = expectedMean * (1.0 - p);             // 368.6
  // Standard error of the mean is ~0.3; allow ~6 sigma.
  EXPECT_NEAR(mean, expectedMean, 2.0);
  EXPECT_NEAR(mean, trialSum / reps, 2.5);
  EXPECT_NEAR(var, expectedVar, expectedVar * 0.12);
}

}  // namespace
}  // namespace mcx
