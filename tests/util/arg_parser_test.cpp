#include "util/arg_parser.hpp"

#include <gtest/gtest.h>

#include <optional>
#include <sstream>

namespace mcx::cli {
namespace {

using Outcome = ArgParser::Outcome;

struct ParserFixture {
  ArgParser parser{"prog", "a test program"};
  std::ostringstream out, err;

  Outcome parse(std::vector<std::string> args) { return parser.parse(args, out, err); }
};

TEST(ArgParser, TypedFlagsBindValues) {
  ParserFixture f;
  std::size_t samples = 7;
  std::uint64_t seed = 1;
  double rate = 0.5;
  std::string name = "default";
  bool verbose = false;
  f.parser.add("--samples", &samples, "N", "sample count");
  f.parser.add("--seed", &seed, "S", "rng seed");
  f.parser.add("--rate", &rate, "R", "defect rate");
  f.parser.add("--name", &name, "NAME", "a label");
  f.parser.addSwitch("--verbose", &verbose, "chatty output");

  EXPECT_EQ(f.parse({"--samples", "42", "--seed", "123456789012345", "--rate", "0.25",
                     "--name", "bw", "--verbose"}),
            Outcome::Ok);
  EXPECT_EQ(samples, 42u);
  EXPECT_EQ(seed, 123456789012345ull);
  EXPECT_DOUBLE_EQ(rate, 0.25);
  EXPECT_EQ(name, "bw");
  EXPECT_TRUE(verbose);
}

TEST(ArgParser, OptionalFlagsDistinguishAbsent) {
  ParserFixture f;
  std::optional<std::size_t> samples;
  f.parser.add("--samples", &samples, "N", "sample count");
  EXPECT_EQ(f.parse({}), Outcome::Ok);
  EXPECT_FALSE(samples.has_value());
  EXPECT_EQ(f.parse({"--samples", "5"}), Outcome::Ok);
  EXPECT_EQ(samples, 5u);
}

TEST(ArgParser, UnknownFlagIsAnError) {
  ParserFixture f;
  std::size_t samples = 0;
  f.parser.add("--samples", &samples, "N", "sample count");
  EXPECT_EQ(f.parse({"--sampels", "5"}), Outcome::Error);
  EXPECT_NE(f.err.str().find("unknown flag --sampels"), std::string::npos);
  EXPECT_NE(f.err.str().find("--help"), std::string::npos);
}

TEST(ArgParser, MissingValueIsAnError) {
  ParserFixture f;
  std::size_t samples = 0;
  f.parser.add("--samples", &samples, "N", "sample count");
  EXPECT_EQ(f.parse({"--samples"}), Outcome::Error);
  EXPECT_NE(f.err.str().find("needs a value"), std::string::npos);
}

TEST(ArgParser, MalformedNumberIsAnError) {
  ParserFixture f;
  std::size_t samples = 0;
  double rate = 0;
  f.parser.add("--samples", &samples, "N", "sample count");
  f.parser.add("--rate", &rate, "R", "rate");
  EXPECT_EQ(f.parse({"--samples", "12abc"}), Outcome::Error);
  EXPECT_NE(f.err.str().find("bad value \"12abc\""), std::string::npos);

  ParserFixture g;
  g.parser.add("--rate", &rate, "R", "rate");
  EXPECT_EQ(g.parse({"--rate", "0.1.2"}), Outcome::Error);
}

TEST(ArgParser, HelpListsFlagsAndDocs) {
  ParserFixture f;
  std::size_t samples = 0;
  f.parser.add("--samples", &samples, "N", "Monte Carlo sample count");
  EXPECT_EQ(f.parse({"--help"}), Outcome::Handled);
  const std::string help = f.out.str();
  EXPECT_NE(help.find("usage: prog"), std::string::npos);
  EXPECT_NE(help.find("a test program"), std::string::npos);
  EXPECT_NE(help.find("--samples N"), std::string::npos);
  EXPECT_NE(help.find("Monte Carlo sample count"), std::string::npos);
  EXPECT_NE(help.find("--help"), std::string::npos);
}

TEST(ArgParser, ActionFlagShortCircuits) {
  ParserFixture f;
  std::size_t samples = 0;
  f.parser.add("--samples", &samples, "N", "sample count");
  f.parser.addAction("--list", "list things",
                     [](std::ostream& out) { out << "thing-one\n"; });
  EXPECT_EQ(f.parse({"--list", "--samples", "9"}), Outcome::Handled);
  EXPECT_EQ(f.out.str(), "thing-one\n");
  EXPECT_EQ(samples, 0u) << "flags after an action flag must not run";
}

TEST(ArgParser, CallbackErrorsAreReported) {
  ParserFixture f;
  f.parser.addCallback("--spec", "JSON", "a spec", [](const std::string&) {
    throw InvalidArgument("bad spec");
  });
  EXPECT_EQ(f.parse({"--spec", "{}"}), Outcome::Error);
  EXPECT_NE(f.err.str().find("bad spec"), std::string::npos);
}

TEST(ArgParser, PositionalArguments) {
  ParserFixture f;
  std::string file;
  bool flag = false;
  f.parser.addPositional("file", &file, "input file");
  f.parser.addSwitch("--flag", &flag, "a switch");
  EXPECT_EQ(f.parse({"--flag", "input.pla"}), Outcome::Ok);
  EXPECT_EQ(file, "input.pla");
  EXPECT_TRUE(flag);

  ParserFixture g;
  std::string required;
  g.parser.addPositional("file", &required, "input file");
  EXPECT_EQ(g.parse({}), Outcome::Error);
  EXPECT_NE(g.err.str().find("missing required argument <file>"), std::string::npos);

  ParserFixture h;
  std::string one;
  h.parser.addPositional("file", &one, "input file");
  EXPECT_EQ(h.parse({"a", "b"}), Outcome::Error) << "extra positionals must be rejected";
}

}  // namespace
}  // namespace mcx::cli
