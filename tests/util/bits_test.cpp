#include "util/bits.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace mcx {
namespace {

TEST(DynBits, DefaultIsEmpty) {
  DynBits b;
  EXPECT_EQ(b.size(), 0u);
  EXPECT_TRUE(b.empty());
  EXPECT_TRUE(b.none());
}

TEST(DynBits, ConstructAllClear) {
  DynBits b(130);
  EXPECT_EQ(b.size(), 130u);
  EXPECT_EQ(b.count(), 0u);
  EXPECT_FALSE(b.any());
}

TEST(DynBits, ConstructAllSetMasksTail) {
  DynBits b(70, true);
  EXPECT_EQ(b.count(), 70u);
  EXPECT_TRUE(b.all());
  // The tail word must not carry bits beyond size().
  EXPECT_EQ(b.words()[1] >> 6, 0u);
}

TEST(DynBits, SetResetFlipTest) {
  DynBits b(100);
  b.set(0);
  b.set(63);
  b.set(64);
  b.set(99);
  EXPECT_TRUE(b.test(0));
  EXPECT_TRUE(b.test(63));
  EXPECT_TRUE(b.test(64));
  EXPECT_TRUE(b.test(99));
  EXPECT_FALSE(b.test(1));
  EXPECT_EQ(b.count(), 4u);
  b.reset(63);
  EXPECT_FALSE(b.test(63));
  b.flip(63);
  EXPECT_TRUE(b.test(63));
  b.set(0, false);
  EXPECT_FALSE(b.test(0));
}

TEST(DynBits, OutOfRangeThrows) {
  DynBits b(10);
  EXPECT_THROW(b.test(10), InvalidArgument);
  EXPECT_THROW(b.set(10), InvalidArgument);
  EXPECT_THROW(b.reset(11), InvalidArgument);
}

TEST(DynBits, FindFirstAndNext) {
  DynBits b(200);
  EXPECT_EQ(b.findFirst(), 200u);
  b.set(5);
  b.set(77);
  b.set(199);
  EXPECT_EQ(b.findFirst(), 5u);
  EXPECT_EQ(b.findNext(6), 77u);
  EXPECT_EQ(b.findNext(78), 199u);
  EXPECT_EQ(b.findNext(200), 200u);
}

TEST(DynBits, BitwiseOps) {
  DynBits a(96), b(96);
  a.set(1);
  a.set(70);
  b.set(70);
  b.set(90);
  DynBits andBits = a & b;
  EXPECT_EQ(andBits.count(), 1u);
  EXPECT_TRUE(andBits.test(70));
  DynBits orBits = a | b;
  EXPECT_EQ(orBits.count(), 3u);
  DynBits xorBits = a ^ b;
  EXPECT_EQ(xorBits.count(), 2u);
  EXPECT_FALSE(xorBits.test(70));
  DynBits diff = a;
  diff.andNot(b);
  EXPECT_EQ(diff.count(), 1u);
  EXPECT_TRUE(diff.test(1));
}

TEST(DynBits, ComplementMasksTail) {
  DynBits a(67);
  a.set(3);
  DynBits c = ~a;
  EXPECT_EQ(c.count(), 66u);
  EXPECT_FALSE(c.test(3));
  EXPECT_TRUE(c.test(66));
}

TEST(DynBits, SizeMismatchThrows) {
  DynBits a(5), b(6);
  EXPECT_THROW(a &= b, InvalidArgument);
  EXPECT_THROW(a.subsetOf(b), InvalidArgument);
}

TEST(DynBits, SubsetAndIntersect) {
  DynBits a(128), b(128);
  a.set(10);
  a.set(100);
  b.set(10);
  b.set(100);
  b.set(50);
  EXPECT_TRUE(a.subsetOf(b));
  EXPECT_FALSE(b.subsetOf(a));
  EXPECT_TRUE(a.intersects(b));
  DynBits c(128);
  c.set(51);
  EXPECT_FALSE(a.intersects(c));
  EXPECT_TRUE(c.subsetOf(b | c));
}

TEST(DynBits, SetAllResetAll) {
  DynBits a(130);
  a.setAll();
  EXPECT_TRUE(a.all());
  a.resetAll();
  EXPECT_TRUE(a.none());
}

TEST(DynBits, ForEachSetVisitsInOrder) {
  DynBits a(300);
  const std::size_t positions[] = {0, 63, 64, 128, 299};
  for (const std::size_t p : positions) a.set(p);
  std::vector<std::size_t> seen;
  a.forEachSet([&](std::size_t i) { seen.push_back(i); });
  EXPECT_EQ(seen, std::vector<std::size_t>(std::begin(positions), std::end(positions)));
}

TEST(DynBits, ToStringPlacesBitZeroFirst) {
  DynBits a(5);
  a.set(0);
  a.set(3);
  EXPECT_EQ(a.toString(), "10010");
}

TEST(DynBits, CompareIsTotalOrder) {
  DynBits a(64), b(64);
  EXPECT_EQ(a.compare(b), 0);
  b.set(1);
  EXPECT_NE(a.compare(b), 0);
  EXPECT_EQ(a.compare(b), -b.compare(a));
  DynBits shorter(10);
  EXPECT_LT(shorter.compare(a), 0);
}

TEST(DynBits, HashDiffersForDifferentContent) {
  DynBits a(64), b(64);
  b.set(13);
  EXPECT_NE(a.hash(), b.hash());
}

TEST(DynBits, RandomizedCountMatchesReference) {
  Rng rng(42);
  for (int iter = 0; iter < 20; ++iter) {
    const std::size_t n = 1 + static_cast<std::size_t>(rng.uniformInt(0, 400));
    DynBits bits(n);
    std::size_t expected = 0;
    for (std::size_t i = 0; i < n; ++i) {
      if (rng.bernoulli(0.3)) {
        if (!bits.test(i)) ++expected;
        bits.set(i);
      }
    }
    EXPECT_EQ(bits.count(), expected);
  }
}

}  // namespace
}  // namespace mcx
