// Error-path coverage for the scenario spec JSON parser and the
// spec-to-model resolution (the happy paths are covered by the registry
// tests): malformed documents, unknown model names, out-of-range rates.
#include "scenario/spec.hpp"

#include <gtest/gtest.h>

#include "scenario/registry.hpp"
#include "util/error.hpp"

namespace mcx {
namespace {

TEST(SpecParserErrors, MalformedDocumentsThrow) {
  EXPECT_THROW(parseSpec(""), ParseError);
  EXPECT_THROW(parseSpec("{"), ParseError);
  EXPECT_THROW(parseSpec("[1, 2"), ParseError);
  EXPECT_THROW(parseSpec(R"({"a": })"), ParseError);
  EXPECT_THROW(parseSpec(R"({"a" "b"})"), ParseError);
  EXPECT_THROW(parseSpec(R"({1: 2})"), ParseError);
  EXPECT_THROW(parseSpec(R"({"a": 1,})"), ParseError);
  EXPECT_THROW(parseSpec(R"("unterminated)"), ParseError);
  EXPECT_THROW(parseSpec(R"("bad \q escape")"), ParseError);
  EXPECT_THROW(parseSpec("truthy"), ParseError);
  EXPECT_THROW(parseSpec("1e"), ParseError);
  EXPECT_THROW(parseSpec("1."), ParseError);
  EXPECT_THROW(parseSpec("{} trailing"), ParseError);
  EXPECT_THROW(parseSpec("1 2"), ParseError);
}

TEST(SpecParserErrors, ErrorsCarryTheOffset) {
  try {
    parseSpec(R"({"model": )");
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_NE(std::string(e.what()).find("at offset"), std::string::npos);
  }
}

TEST(SpecParserErrors, TypedAccessorsIncludingBoolOr) {
  const SpecValue spec = parseSpec(R"({"open": "lots", "model": 3, "flag": 1})");
  EXPECT_THROW(spec.numberOr("open", 0.1), ParseError);
  EXPECT_THROW(spec.stringOr("model", "iid"), ParseError);
  EXPECT_THROW(spec.boolOr("flag", false), ParseError);
  // Absent members fall back instead of throwing.
  EXPECT_DOUBLE_EQ(spec.numberOr("absent", 0.25), 0.25);
  EXPECT_EQ(spec.stringOr("absent", "x"), "x");
  EXPECT_TRUE(spec.boolOr("absent", true));
}

TEST(ModelFromSpec, UnknownModelNameThrows) {
  EXPECT_THROW(modelFromSpec(parseSpec(R"({"model": "bogus"})")), ParseError);
  EXPECT_THROW(modelFromSpec(parseSpec(R"({})")), ParseError);
  EXPECT_THROW(modelFromSpec(parseSpec(R"([1])")), ParseError);
  EXPECT_THROW(modelFromSpec(parseSpec(R"({"preset": "bogus"})")), ParseError);
  // A typo'd member must not be silently dropped.
  EXPECT_THROW(modelFromSpec(parseSpec(R"({"model": "iid", "opne": 0.1})")), ParseError);
}

TEST(ModelFromSpec, OutOfRangeRatesThrow) {
  EXPECT_THROW(modelFromSpec(parseSpec(R"({"model": "iid", "open": 1.5})")), Error);
  EXPECT_THROW(modelFromSpec(parseSpec(R"({"model": "iid", "open": -0.1})")), Error);
  EXPECT_THROW(modelFromSpec(parseSpec(R"({"model": "iid", "open": 0.6, "closed": 0.6})")),
               Error);
  EXPECT_THROW(modelFromSpec(parseSpec(R"({"model": "iid-sparse", "open": 2.0})")), Error);
  EXPECT_THROW(makeScenario("paper-iid", 1.5), Error);
  EXPECT_THROW(makeScenario("paper-iid", -0.2), Error);
}

TEST(ModelFromSpec, CompositeValidation) {
  EXPECT_THROW(modelFromSpec(parseSpec(R"({"model": "composite"})")), ParseError);
  EXPECT_THROW(modelFromSpec(parseSpec(R"({"model": "composite", "parts": []})")), ParseError);
  EXPECT_THROW(
      modelFromSpec(parseSpec(R"({"model": "composite", "parts": [{"model": "bad"}]})")),
      ParseError);
}

TEST(MakeScenario, UnknownNameListsPresets) {
  try {
    makeScenario("bogus");
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("unknown scenario \"bogus\""), std::string::npos);
    EXPECT_NE(what.find("paper-iid"), std::string::npos);
  }
}

}  // namespace
}  // namespace mcx
