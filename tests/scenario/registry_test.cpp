#include "scenario/registry.hpp"

#include <gtest/gtest.h>

#include "scenario/spec.hpp"
#include "util/error.hpp"

namespace mcx {
namespace {

// --- Spec parsing (the JSON subset) -----------------------------------------

TEST(SpecParser, ParsesScalarsArraysAndObjects) {
  const SpecValue v = parseSpec(
      R"({"model": "clustered", "density": 8e-4, "deep": {"on": true, "off": false},
          "list": [1, 2.5, -3], "none": null})");
  ASSERT_TRUE(v.isObject());
  EXPECT_EQ(v.stringOr("model", ""), "clustered");
  EXPECT_DOUBLE_EQ(v.numberOr("density", 0.0), 8e-4);
  const SpecValue* deep = v.find("deep");
  ASSERT_NE(deep, nullptr);
  EXPECT_TRUE(deep->find("on")->boolean);
  EXPECT_FALSE(deep->find("off")->boolean);
  const SpecValue* list = v.find("list");
  ASSERT_NE(list, nullptr);
  ASSERT_EQ(list->array.size(), 3u);
  EXPECT_DOUBLE_EQ(list->array[2].number, -3.0);
  EXPECT_EQ(v.find("none")->kind, SpecValue::Kind::Null);
}

TEST(SpecParser, HandlesEscapesAndWhitespace) {
  const SpecValue v = parseSpec("  { \"a\\nb\" : \"c\\\"d\" }  ");
  ASSERT_TRUE(v.isObject());
  EXPECT_EQ(v.members.at(0).first, "a\nb");
  EXPECT_EQ(v.members.at(0).second.string, "c\"d");
}

TEST(SpecParser, RejectsMalformedInput) {
  EXPECT_THROW(parseSpec(""), ParseError);
  EXPECT_THROW(parseSpec("{"), ParseError);
  EXPECT_THROW(parseSpec("{\"a\": }"), ParseError);
  EXPECT_THROW(parseSpec("{\"a\": 1,}"), ParseError);
  EXPECT_THROW(parseSpec("[1 2]"), ParseError);
  EXPECT_THROW(parseSpec("{\"a\": 1} trailing"), ParseError);
  EXPECT_THROW(parseSpec("{1: 2}"), ParseError);
  EXPECT_THROW(parseSpec("\"unterminated"), ParseError);
}

TEST(SpecParser, TypedAccessorsRejectWrongTypes) {
  const SpecValue v = parseSpec(R"({"rate": "high", "name": 3})");
  EXPECT_THROW(v.numberOr("rate", 0.0), ParseError);
  EXPECT_THROW(v.stringOr("name", ""), ParseError);
  EXPECT_DOUBLE_EQ(v.numberOr("absent", 0.25), 0.25);
  EXPECT_EQ(v.stringOr("absent", "dflt"), "dflt");
}

// --- Presets ----------------------------------------------------------------

TEST(ScenarioRegistry, EveryPresetBuildsAndGenerates) {
  ASSERT_GE(scenarioPresets().size(), 5u);
  for (const ScenarioPreset& preset : scenarioPresets()) {
    SCOPED_TRACE(preset.name);
    const auto model = preset.make(0.10);
    ASSERT_NE(model, nullptr);
    EXPECT_FALSE(model->name().empty());
    EXPECT_FALSE(model->describe().empty());
    Rng rng(5);
    const DefectMap map = model->sample(24, 24, rng);
    EXPECT_EQ(map.rows(), 24u);
    EXPECT_EQ(map.cols(), 24u);
  }
  EXPECT_NE(findScenarioPreset("paper-iid"), nullptr);
  EXPECT_EQ(findScenarioPreset("nonsense"), nullptr);
}

TEST(ScenarioRegistry, PaperPresetIsTheIidModel) {
  const auto model = findScenarioPreset("paper-iid")->make(0.10);
  const auto* iid = dynamic_cast<const IidBernoulli*>(model.get());
  ASSERT_NE(iid, nullptr);
  EXPECT_DOUBLE_EQ(iid->stuckOpenRate(), 0.10);
  EXPECT_DOUBLE_EQ(iid->stuckClosedRate(), 0.0);
}

// --- makeScenario / modelFromSpec --------------------------------------------

TEST(ScenarioRegistry, MakeScenarioResolvesPresetNames) {
  EXPECT_EQ(makeScenario("clustered", 0.05)->name(), "clustered");
  EXPECT_EQ(makeScenario("lines")->name(), "lines");
  EXPECT_THROW(makeScenario("no-such-scenario"), ParseError);
}

TEST(ScenarioRegistry, MakeScenarioParsesInlineSpecs) {
  const auto model = makeScenario(R"(  {"model": "gradient", "center": 0.01, "edge": 0.3})");
  EXPECT_EQ(model->name(), "gradient");
  const auto* gradient = dynamic_cast<const RadialGradient*>(model.get());
  ASSERT_NE(gradient, nullptr);
  EXPECT_DOUBLE_EQ(gradient->params().centerRate, 0.01);
  EXPECT_DOUBLE_EQ(gradient->params().edgeRate, 0.3);
}

TEST(ScenarioRegistry, SpecBuildsEveryModelKind) {
  EXPECT_EQ(modelFromSpec(parseSpec(R"({"model": "iid", "open": 0.2})"))->name(), "iid");
  EXPECT_EQ(modelFromSpec(parseSpec(R"({"model": "clustered"})"))->name(), "clustered");
  EXPECT_EQ(modelFromSpec(parseSpec(R"({"model": "lines", "rowClosed": 0.1})"))->name(),
            "lines");
  EXPECT_EQ(modelFromSpec(parseSpec(R"({"model": "gradient"})"))->name(), "gradient");
  const auto composite = modelFromSpec(parseSpec(
      R"({"model": "composite", "parts": [{"model": "iid", "open": 0.05},
                                          {"preset": "lines", "rate": 0.02}]})"));
  EXPECT_EQ(composite->name(), "composite");
  const auto* parts = dynamic_cast<const CompositeModel*>(composite.get());
  ASSERT_NE(parts, nullptr);
  EXPECT_EQ(parts->parts().size(), 2u);
}

TEST(ScenarioRegistry, SpecRejectsUnknownModelsAndBadShapes) {
  EXPECT_THROW(modelFromSpec(parseSpec(R"({"model": "martian"})")), ParseError);
  EXPECT_THROW(modelFromSpec(parseSpec(R"({"preset": "martian"})")), ParseError);
  EXPECT_THROW(modelFromSpec(parseSpec(R"({"model": "composite", "parts": []})")),
               ParseError);
  EXPECT_THROW(modelFromSpec(parseSpec("[1, 2]")), ParseError);
}

TEST(ScenarioRegistry, SpecRejectsUnknownMembers) {
  // A typo'd parameter must fail loudly, not silently run the defaults
  // under the intended scenario's label.
  EXPECT_THROW(modelFromSpec(parseSpec(R"({"model": "iid", "opne": 0.2})")), ParseError);
  EXPECT_THROW(modelFromSpec(parseSpec(R"({"model": "iid", "rate": 0.2})")), ParseError);
  EXPECT_THROW(modelFromSpec(parseSpec(R"({"preset": "lines", "open": 0.1})")), ParseError);
  EXPECT_THROW(modelFromSpec(parseSpec(
                   R"({"model": "composite", "spread": 1, "parts": [{"model": "iid"}]})")),
               ParseError);
  EXPECT_THROW(modelFromSpec(parseSpec(R"({"model": "gradient", "density": 0.1})")),
               ParseError);
}

TEST(ScenarioRegistry, StandardRateGridIsAscendingAndNonEmpty) {
  const std::vector<double>& grid = standardRateGrid();
  ASSERT_FALSE(grid.empty());
  for (std::size_t i = 1; i < grid.size(); ++i) EXPECT_LT(grid[i - 1], grid[i]);
}

}  // namespace
}  // namespace mcx
