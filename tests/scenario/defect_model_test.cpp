#include "scenario/defect_model.hpp"

#include <gtest/gtest.h>

#include <bit>

#include "logic/sop_parser.hpp"
#include "map/hybrid_mapper.hpp"
#include "mc/defect_experiment.hpp"
#include "util/error.hpp"
#include "xbar/function_matrix.hpp"

namespace mcx {
namespace {

FunctionMatrix testFm() {
  return buildFunctionMatrix(parseSop("x1 x2 + !x2 x3 + x1 !x3 + x2 x3"));
}

bool sameMap(const DefectMap& a, const DefectMap& b) {
  return a.openBits() == b.openBits() && a.closedBits() == b.closedBits();
}

// --- IidBernoulli: the regression anchor of the whole rewiring -----------

TEST(IidBernoulli, DrawForDrawIdenticalToLegacyResample) {
  const IidBernoulli model(0.12, 0.03);
  for (const std::uint64_t seed : {1ull, 42ull, 0xfeedull}) {
    Rng a(seed), b(seed);
    const DefectMap viaModel = model.sample(37, 53, a);
    const DefectMap viaLegacy = DefectMap::sample(37, 53, 0.12, 0.03, b);
    EXPECT_TRUE(sameMap(viaModel, viaLegacy)) << "seed=" << seed;
    // Identical draw *counts* too: the streams must stay in lockstep.
    EXPECT_EQ(a(), b()) << "seed=" << seed;
  }
}

TEST(IidBernoulli, EngineResultsBitIdenticalToLegacyRatePath) {
  // DefectExperimentConfig without a model must behave exactly like one
  // with the equivalent IidBernoulli: same seeds => same success counts and
  // row assignments (the BENCH_defect_mc.json regression guarantee).
  const FunctionMatrix fm = testFm();
  DefectExperimentConfig legacy;
  legacy.samples = 80;
  legacy.stuckOpenRate = 0.12;
  legacy.stuckClosedRate = 0.01;
  legacy.seed = 0x7ab1e2;
  legacy.keepMappings = true;

  DefectExperimentConfig scenario = legacy;
  scenario.model = std::make_shared<IidBernoulli>(0.12, 0.01);

  const auto a = runDefectExperiment(fm, HybridMapper(), legacy);
  const auto b = runDefectExperiment(fm, HybridMapper(), scenario);
  EXPECT_EQ(a.successes, b.successes);
  EXPECT_EQ(a.totalBacktracks, b.totalBacktracks);
  ASSERT_EQ(a.mappings.size(), b.mappings.size());
  for (std::size_t s = 0; s < a.mappings.size(); ++s) {
    EXPECT_EQ(a.mappings[s].success, b.mappings[s].success) << "sample=" << s;
    EXPECT_EQ(a.mappings[s].rowAssignment, b.mappings[s].rowAssignment) << "sample=" << s;
  }
}

TEST(IidBernoulli, Validation) {
  EXPECT_THROW(IidBernoulli(-0.1, 0.0), InvalidArgument);
  EXPECT_THROW(IidBernoulli(0.6, 0.6), InvalidArgument);
}

// --- SparseIidBernoulli ----------------------------------------------------

TEST(SparseIidBernoulli, StatisticallyEquivalentToLegacySampler) {
  // The O(defects) sampler draws from the same i.i.d. distribution as the
  // legacy per-crosspoint sweep: defect-count mean/variance and the
  // per-cell marginal rate must agree within sampling tolerance.
  const std::size_t rows = 64, cols = 64;
  const double p = 0.10;
  const int reps = 2000;
  const SparseIidBernoulli sparse(p, 0.0);
  const IidBernoulli legacy(p, 0.0);

  struct Moments {
    double mean = 0, var = 0;
    std::vector<std::size_t> perCell;
  };
  const auto collect = [&](const DefectModel& model, std::uint64_t seed) {
    Rng rng(seed);
    DefectMap map;
    Moments m;
    m.perCell.assign(rows * cols, 0);
    double sum = 0, sumSq = 0;
    for (int i = 0; i < reps; ++i) {
      model.generate(rows, cols, rng, map);
      const auto k = static_cast<double>(map.stuckOpenCount());
      sum += k;
      sumSq += k * k;
      for (std::size_t r = 0; r < rows; ++r) {
        const auto words = map.openBits().rowWords(r);
        for (std::size_t w = 0; w < words.size(); ++w) {
          BitMatrix::Word bits = words[w];
          while (bits != 0) {
            const std::size_t c =
                w * BitMatrix::kWordBits + static_cast<std::size_t>(std::countr_zero(bits));
            bits &= bits - 1;
            ++m.perCell[r * cols + c];
          }
        }
      }
    }
    m.mean = sum / reps;
    m.var = sumSq / reps - m.mean * m.mean;
    return m;
  };

  const Moments a = collect(sparse, 101);
  const Moments b = collect(legacy, 202);
  const double expectedMean = static_cast<double>(rows * cols) * p;  // 409.6
  const double expectedVar = expectedMean * (1.0 - p);               // 368.6
  EXPECT_NEAR(a.mean, expectedMean, 2.0);
  EXPECT_NEAR(a.mean, b.mean, 3.0);
  EXPECT_NEAR(a.var, expectedVar, expectedVar * 0.12);
  // Per-cell marginal: each cell is Binomial(reps, p) -> sd of the rate is
  // ~0.0067; bound the worst cell at ~6 sigma.
  for (std::size_t cell = 0; cell < rows * cols; ++cell) {
    const double rate = static_cast<double>(a.perCell[cell]) / reps;
    ASSERT_NEAR(rate, p, 0.04) << "cell=" << cell;
  }
}

TEST(SparseIidBernoulli, MixedRatesSplitTypesByShare) {
  const SparseIidBernoulli model(0.09, 0.01);
  Rng rng(7);
  DefectMap map;
  std::size_t open = 0, closed = 0;
  for (int i = 0; i < 300; ++i) {
    model.generate(96, 96, rng, map);
    open += map.stuckOpenCount();
    closed += map.stuckClosedCount();
  }
  const double total = static_cast<double>(open + closed);
  EXPECT_NEAR(total / (300.0 * 96 * 96), 0.10, 0.005);
  EXPECT_NEAR(static_cast<double>(closed) / total, 0.10, 0.02);
}

TEST(SparseIidBernoulli, TracksExactlyTheDefectiveRows) {
  const SparseIidBernoulli model(0.04, 0.01);
  Rng rng(11);
  DefectMap map;
  DirtyRows dirty;
  model.generateTracked(40, 70, rng, map, dirty);
  EXPECT_FALSE(dirty.all);
  EXPECT_EQ(dirty.stuckOpen, map.stuckOpenCount());
  EXPECT_EQ(dirty.stuckClosed, map.stuckClosedCount());
  std::vector<std::size_t> expected;
  for (std::size_t r = 0; r < map.rows(); ++r) {
    bool any = false;
    for (std::size_t c = 0; c < map.cols(); ++c)
      any = any || map.type(r, c) != DefectType::None;
    if (any) expected.push_back(r);
  }
  EXPECT_EQ(dirty.rows, expected);
}

TEST(SparseIidBernoulli, TrackedAndUntrackedDrawIdentically) {
  // generate() and generateTracked() must consume the stream identically
  // (the engine and forEachDefectSample may call either for a sample).
  const SparseIidBernoulli model(0.08, 0.02);
  Rng a(13), b(13);
  DefectMap viaGenerate;
  model.generate(33, 55, a, viaGenerate);
  DefectMap viaTracked;
  DirtyRows dirty;
  model.generateTracked(33, 55, b, viaTracked, dirty);
  EXPECT_TRUE(sameMap(viaGenerate, viaTracked));
  EXPECT_EQ(a(), b());
}

TEST(SparseIidBernoulli, DenseRatesFallBackToTheLegacySweep) {
  // Above the cutoff the rejection loop stops paying; the model must fall
  // back to the parent's draw-for-draw dense sweep.
  const double rate = SparseIidBernoulli::kDenseRateCutoff + 0.10;
  const SparseIidBernoulli sparse(rate, 0.0);
  const IidBernoulli dense(rate, 0.0);
  Rng a(17), b(17);
  EXPECT_TRUE(sameMap(sparse.sample(30, 41, a), dense.sample(30, 41, b)));
  EXPECT_EQ(a(), b());
}

TEST(DefectModels, DefaultGenerateTrackedScansTheFinishedMap) {
  // Dense models get dirty-row tracking for free via the base-class scan.
  ClusteredDefects::Params p;
  p.clusterDensity = 2e-3;
  const ClusteredDefects model(p);
  Rng a(19), b(19);
  DefectMap viaGenerate;
  model.generate(48, 48, a, viaGenerate);
  DefectMap viaTracked;
  DirtyRows dirty;
  model.generateTracked(48, 48, b, viaTracked, dirty);
  EXPECT_TRUE(sameMap(viaGenerate, viaTracked));
  EXPECT_FALSE(dirty.all);
  EXPECT_EQ(dirty.stuckOpen, viaTracked.stuckOpenCount());
  for (const std::size_t r : dirty.rows) {
    std::size_t defects = 0;
    for (std::size_t c = 0; c < 48; ++c)
      defects += viaTracked.type(r, c) != DefectType::None ? 1 : 0;
    EXPECT_GT(defects, 0u) << "row " << r;
  }
}

// --- ClusteredDefects ------------------------------------------------------

TEST(ClusteredDefects, DefectsAreSpatiallyClustered) {
  ClusteredDefects::Params p;
  p.clusterDensity = 2e-3;
  p.spread = 0.9;  // expected cluster size 10
  const ClusteredDefects model(p);
  Rng rng(7);
  const DefectMap map = model.sample(96, 96, rng);
  ASSERT_GT(map.stuckOpenCount(), 0u);

  // A random-walk cluster leaves its cells 4-adjacent; single-cell clusters
  // (probability 1 - spread) are the only isolated ones, so the adjacency
  // share must be far above what i.i.d. sprinkling at this density gives.
  std::size_t defective = 0, adjacent = 0;
  for (std::size_t r = 0; r < map.rows(); ++r) {
    for (std::size_t c = 0; c < map.cols(); ++c) {
      if (map.type(r, c) == DefectType::None) continue;
      ++defective;
      const bool nb =
          (r > 0 && map.type(r - 1, c) != DefectType::None) ||
          (r + 1 < map.rows() && map.type(r + 1, c) != DefectType::None) ||
          (c > 0 && map.type(r, c - 1) != DefectType::None) ||
          (c + 1 < map.cols() && map.type(r, c + 1) != DefectType::None);
      if (nb) ++adjacent;
    }
  }
  EXPECT_GT(static_cast<double>(adjacent) / static_cast<double>(defective), 0.5);
}

TEST(ClusteredDefects, Validation) {
  ClusteredDefects::Params p;
  p.clusterDensity = 1e300;  // would overflow the cluster-count cast
  EXPECT_THROW(ClusteredDefects{p}, InvalidArgument);
  p.clusterDensity = 5e-4;
  p.spread = 1.0;  // would never terminate a cluster walk
  EXPECT_THROW(ClusteredDefects{p}, InvalidArgument);
}

TEST(ClusteredDefects, DeterministicPerSeed) {
  ClusteredDefects::Params p;
  p.clusterDensity = 1e-3;
  const ClusteredDefects model(p);
  Rng a(11), b(11), c(12);
  EXPECT_TRUE(sameMap(model.sample(64, 64, a), model.sample(64, 64, b)));
  Rng a2(11);
  EXPECT_FALSE(sameMap(model.sample(64, 64, a2), model.sample(64, 64, c)));
}

// --- LineCorrelated --------------------------------------------------------

TEST(LineCorrelated, CertainRowFailurePoisonsEveryRow) {
  LineCorrelated::Params p;
  p.rowStuckClosedRate = 1.0;
  const LineCorrelated model(p);
  Rng rng(3);
  const DefectMap map = model.sample(12, 20, rng);
  for (std::size_t r = 0; r < map.rows(); ++r) EXPECT_TRUE(map.rowPoisoned(r)) << r;
  EXPECT_EQ(map.stuckClosedCount(), 12u);  // exactly one closed crosspoint per row
}

TEST(LineCorrelated, WholeLineStuckOpenKillsEverySwitchInTheLine) {
  LineCorrelated::Params p;
  p.colStuckOpenRate = 0.5;
  const LineCorrelated model(p);
  Rng rng(9);
  const DefectMap map = model.sample(16, 16, rng);
  ASSERT_GT(map.stuckOpenCount(), 0u);
  // Stuck-open cells come only in full columns.
  for (std::size_t c = 0; c < map.cols(); ++c) {
    const bool anyOpen = map.isStuckOpen(0, c);
    for (std::size_t r = 0; r < map.rows(); ++r)
      EXPECT_EQ(map.isStuckOpen(r, c), anyOpen) << "col=" << c << " row=" << r;
  }
}

// --- RadialGradient --------------------------------------------------------

TEST(RadialGradient, EdgeIsDenserThanCenter) {
  RadialGradient::Params p;
  p.centerRate = 0.01;
  p.edgeRate = 0.40;
  const RadialGradient model(p);
  Rng rng(21);
  const DefectMap map = model.sample(128, 128, rng);

  // Compare the central quarter against the outer frame.
  std::size_t center = 0, edge = 0;
  for (std::size_t r = 0; r < 128; ++r) {
    for (std::size_t c = 0; c < 128; ++c) {
      if (map.type(r, c) == DefectType::None) continue;
      if (r >= 48 && r < 80 && c >= 48 && c < 80) ++center;
      if (r < 16 || r >= 112 || c < 16 || c >= 112) ++edge;
    }
  }
  EXPECT_GT(edge, center * 3);
}

TEST(RadialGradient, ClosedShareProducesStuckClosed) {
  RadialGradient::Params p;
  p.centerRate = 0.2;
  p.edgeRate = 0.2;
  p.stuckClosedShare = 0.5;
  const RadialGradient model(p);
  Rng rng(5);
  const DefectMap map = model.sample(48, 48, rng);
  EXPECT_GT(map.stuckOpenCount(), 0u);
  EXPECT_GT(map.stuckClosedCount(), 0u);
}

// --- CompositeModel --------------------------------------------------------

TEST(CompositeModel, UnionsPartsAndClosedDominates) {
  const auto allOpen = std::make_shared<IidBernoulli>(1.0, 0.0);
  const auto allClosed = std::make_shared<IidBernoulli>(0.0, 1.0);
  const CompositeModel model("both", {allOpen, allClosed});
  Rng rng(1);
  const DefectMap map = model.sample(8, 8, rng);
  EXPECT_EQ(map.stuckClosedCount(), 64u);  // closed wins every conflict
  EXPECT_EQ(map.stuckOpenCount(), 0u);
}

TEST(CompositeModel, AtLeastAsDefectiveAsEachPart) {
  const auto iid = std::make_shared<IidBernoulli>(0.05, 0.0);
  ClusteredDefects::Params cp;
  cp.clusterDensity = 1e-3;
  const auto clustered = std::make_shared<ClusteredDefects>(cp);
  const CompositeModel model("mix", {clustered, iid});

  Rng composite(77), partOnly(77);
  const DefectMap whole = model.sample(64, 64, composite);
  // The first part draws from the same stream prefix, so its pattern is a
  // subset of the composite's.
  const DefectMap first = clustered->sample(64, 64, partOnly);
  for (std::size_t r = 0; r < 64; ++r)
    for (std::size_t c = 0; c < 64; ++c)
      if (first.type(r, c) != DefectType::None) {
        EXPECT_NE(whole.type(r, c), DefectType::None) << r << "," << c;
      }
}

TEST(CompositeModel, NestedCompositesDoNotAliasScratch) {
  // Regression: a composite nested as a non-first part used to receive the
  // outer loop's per-thread scratch as its own output buffer and
  // self-overlay, silently discarding all but its last sub-part.
  const auto none = std::make_shared<IidBernoulli>(0.0, 0.0);
  const auto allOpen = std::make_shared<IidBernoulli>(1.0, 0.0);
  const auto inner = std::make_shared<CompositeModel>(
      "inner", std::vector<std::shared_ptr<const DefectModel>>{allOpen, none});
  const CompositeModel outer("outer", {none, inner});
  Rng rng(5);
  const DefectMap map = outer.sample(8, 8, rng);
  EXPECT_EQ(map.stuckOpenCount(), 64u);
}

TEST(CompositeModel, Validation) {
  EXPECT_THROW(CompositeModel("empty", {}), InvalidArgument);
  EXPECT_THROW(CompositeModel("null", {nullptr}), InvalidArgument);
}

// --- DefectMap::overlay (the composite primitive) --------------------------

TEST(DefectMapOverlay, ClosedDominatesOpen) {
  DefectMap a(4, 4), b(4, 4);
  a.setType(1, 2, DefectType::StuckOpen);
  a.setType(0, 0, DefectType::StuckOpen);
  b.setType(1, 2, DefectType::StuckClosed);
  b.setType(3, 3, DefectType::StuckOpen);
  a.overlay(b);
  EXPECT_EQ(a.type(1, 2), DefectType::StuckClosed);
  EXPECT_EQ(a.type(0, 0), DefectType::StuckOpen);
  EXPECT_EQ(a.type(3, 3), DefectType::StuckOpen);
  EXPECT_EQ(a.type(2, 2), DefectType::None);
}

TEST(DefectMapOverlay, RejectsDimensionMismatch) {
  DefectMap a(4, 4), b(4, 5);
  EXPECT_THROW(a.overlay(b), InvalidArgument);
}

// --- Model names ------------------------------------------------------------

TEST(DefectModels, NamesAndDescriptionsAreStable) {
  ClusteredDefects::Params cp;
  LineCorrelated::Params lp;
  RadialGradient::Params gp;
  const auto iid = std::make_shared<IidBernoulli>(0.1, 0.0);
  EXPECT_EQ(iid->name(), "iid");
  EXPECT_EQ(ClusteredDefects(cp).name(), "clustered");
  EXPECT_EQ(LineCorrelated(lp).name(), "lines");
  EXPECT_EQ(RadialGradient(gp).name(), "gradient");
  EXPECT_EQ(CompositeModel("x", {iid}).name(), "composite");
  EXPECT_NE(iid->describe().find("10%"), std::string::npos);
}

}  // namespace
}  // namespace mcx
