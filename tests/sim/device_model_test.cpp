#include "sim/device_model.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/error.hpp"

namespace mcx {
namespace {

TEST(Memristor, StartsReset) {
  const Memristor dev;
  EXPECT_DOUBLE_EQ(dev.state(), 0.0);
  EXPECT_NEAR(dev.resistance(), DeviceParams{}.rOff, 1e-9);
}

TEST(Memristor, SetAndResetEndpoints) {
  Memristor dev;
  dev.set();
  EXPECT_NEAR(dev.resistance(), DeviceParams{}.rOn, 1e-9);
  dev.reset();
  EXPECT_NEAR(dev.resistance(), DeviceParams{}.rOff, 1e-9);
}

TEST(Memristor, RetentionInsideThresholdWindow) {
  Memristor dev;
  dev.apply(0.9, 10.0);  // below +-1V threshold: no drift no matter how long
  EXPECT_DOUBLE_EQ(dev.state(), 0.0);
  dev.set();
  dev.apply(-0.9, 10.0);
  EXPECT_DOUBLE_EQ(dev.state(), 1.0);
}

TEST(Memristor, SetAboveThresholdResetBelow) {
  Memristor dev;
  dev.apply(2.0, 0.5);
  EXPECT_GT(dev.state(), 0.0);
  const double after = dev.state();
  dev.apply(-2.0, 0.5);
  EXPECT_LT(dev.state(), after);
}

TEST(Memristor, StateSaturatesInUnitInterval) {
  Memristor dev;
  for (int i = 0; i < 100; ++i) dev.apply(3.0, 1.0);
  EXPECT_LE(dev.state(), 1.0);
  for (int i = 0; i < 100; ++i) dev.apply(-3.0, 1.0);
  EXPECT_GE(dev.state(), 0.0);
}

TEST(Memristor, ResistanceMonotoneInState) {
  DeviceParams p;
  double last = Memristor(p, 0.0).resistance();
  for (double w = 0.1; w <= 1.0; w += 0.1) {
    const double r = Memristor(p, w).resistance();
    EXPECT_LT(r, last);
    last = r;
  }
}

TEST(Memristor, LinearMixResistance) {
  DeviceParams p;
  p.linearMix = true;
  EXPECT_NEAR(Memristor(p, 0.5).resistance(), (p.rOn + p.rOff) / 2.0, 1e-9);
}

TEST(Memristor, RejectsBadParams) {
  DeviceParams p;
  p.rOn = 0;
  EXPECT_THROW(Memristor dev(p), InvalidArgument);
  DeviceParams q;
  q.rOff = q.rOn;
  EXPECT_THROW(Memristor dev(q), InvalidArgument);
}

TEST(SweepIV, PinchedHysteresis) {
  const auto points = sweepIV(DeviceParams{}, 2.0, 2, 256);
  ASSERT_EQ(points.size(), 512u);
  // I(V=0) ~ 0 at every zero crossing: the defining pinched property.
  for (const IvPoint& pt : points)
    if (std::abs(pt.voltage) < 1e-9) {
      EXPECT_NEAR(pt.current, 0.0, 1e-12);
    }
  // Hysteresis: the device must actually switch (state changes).
  double minState = 1.0, maxState = 0.0;
  for (const IvPoint& pt : points) {
    minState = std::min(minState, pt.state);
    maxState = std::max(maxState, pt.state);
  }
  EXPECT_GT(maxState - minState, 0.5);
}

TEST(SweepIV, SetIncreasesCurrentAtSameVoltage) {
  // After a SET cycle the same positive voltage drives much more current.
  const auto points = sweepIV(DeviceParams{}, 2.0, 1, 512);
  double early = 0, late = 0;
  for (const IvPoint& pt : points) {
    if (pt.time < 0.1 && std::abs(pt.voltage - 1.2) < 0.1) early = std::abs(pt.current);
    if (pt.time > 0.3 && pt.time < 0.5 && std::abs(pt.voltage - 1.2) < 0.1)
      late = std::abs(pt.current);
  }
  EXPECT_GT(late, early);
}

TEST(SweepIV, RejectsBadSweep) {
  EXPECT_THROW(sweepIV(DeviceParams{}, -1.0, 1, 64), InvalidArgument);
  EXPECT_THROW(sweepIV(DeviceParams{}, 1.0, 0, 64), InvalidArgument);
  EXPECT_THROW(sweepIV(DeviceParams{}, 1.0, 1, 4), InvalidArgument);
}

}  // namespace
}  // namespace mcx
