#include "sim/transient_faults.hpp"

#include <gtest/gtest.h>

#include "logic/sop_parser.hpp"
#include "sim/crossbar_sim.hpp"
#include "util/error.hpp"

namespace mcx {
namespace {

TwoLevelLayout testLayout() { return buildTwoLevelLayout(parseSop("x1 x2 + !x2 x3 + x1 x3")); }

TEST(TransientFaults, ZeroRateIsErrorFree) {
  const TwoLevelLayout layout = testLayout();
  const DefectMap clean(layout.fm.rows(), layout.fm.cols());
  Rng rng(1);
  const TransientFaultStats stats = measureTransientErrors(
      layout, identityAssignment(layout.fm.rows()), clean, {}, 200, rng);
  EXPECT_EQ(stats.bitErrors, 0u);
  EXPECT_EQ(stats.evaluations, 200u);  // 1 output x 200 trials
  EXPECT_DOUBLE_EQ(stats.bitErrorRate(), 0.0);
}

TEST(TransientFaults, ErrorsGrowWithFaultRate) {
  const TwoLevelLayout layout = testLayout();
  const DefectMap clean(layout.fm.rows(), layout.fm.cols());
  const auto id = identityAssignment(layout.fm.rows());
  double last = -1.0;
  for (const double rate : {0.01, 0.05, 0.2}) {
    Rng rng(7);
    TransientFaultConfig cfg;
    cfg.openRate = rate;
    cfg.shortRate = rate / 4;
    const TransientFaultStats stats = measureTransientErrors(layout, id, clean, cfg, 400, rng);
    EXPECT_GE(stats.bitErrorRate(), last) << "rate=" << rate;
    last = stats.bitErrorRate();
  }
  EXPECT_GT(last, 0.05);  // 20% fault rate must visibly corrupt outputs
}

TEST(TransientFaults, ShortsAreWorseThanOpens) {
  // A transient short poisons a whole row and column; at equal rates it
  // must produce at least as many errors as transient opens.
  const TwoLevelLayout layout = testLayout();
  const DefectMap clean(layout.fm.rows(), layout.fm.cols());
  const auto id = identityAssignment(layout.fm.rows());
  TransientFaultConfig opens;
  opens.openRate = 0.08;
  TransientFaultConfig shorts;
  shorts.shortRate = 0.08;
  Rng rngA(3), rngB(3);
  const auto openStats = measureTransientErrors(layout, id, clean, opens, 600, rngA);
  const auto shortStats = measureTransientErrors(layout, id, clean, shorts, 600, rngB);
  EXPECT_GE(shortStats.bitErrorRate() + 0.02, openStats.bitErrorRate());
}

TEST(TransientFaults, LayersOnPermanentDefects) {
  // With a permanent defect already breaking the function, transient stats
  // report those errors too (they compare against the ideal function).
  const TwoLevelLayout layout = testLayout();
  DefectMap defects(layout.fm.rows(), layout.fm.cols());
  defects.setType(0, layout.fm.colOfPosLiteral(0), DefectType::StuckOpen);
  Rng rng(5);
  const TransientFaultStats stats = measureTransientErrors(
      layout, identityAssignment(layout.fm.rows()), defects, {}, 400, rng);
  EXPECT_GT(stats.bitErrors, 0u);
}

TEST(TransientFaults, Validation) {
  const TwoLevelLayout layout = testLayout();
  const DefectMap clean(layout.fm.rows(), layout.fm.cols());
  Rng rng(1);
  TransientFaultConfig bad;
  bad.openRate = 0.8;
  bad.shortRate = 0.5;
  EXPECT_THROW(measureTransientErrors(layout, identityAssignment(layout.fm.rows()), clean, bad,
                                      10, rng),
               InvalidArgument);
}

}  // namespace
}  // namespace mcx
