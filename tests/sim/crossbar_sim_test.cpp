#include "sim/crossbar_sim.hpp"

#include <gtest/gtest.h>

#include "logic/espresso.hpp"
#include "logic/generators.hpp"
#include "logic/sop_parser.hpp"
#include "logic/truth_table.hpp"
#include "map/hybrid_mapper.hpp"
#include "netlist/nand_mapper.hpp"
#include "util/error.hpp"

namespace mcx {
namespace {

DynBits inputBitsOf(std::size_t m, std::size_t nin) {
  DynBits in(nin);
  for (std::size_t v = 0; v < nin; ++v) in.set(v, ((m >> v) & 1u) != 0);
  return in;
}

TEST(TwoLevelSim, CleanCrossbarComputesFunction) {
  const TwoLevelLayout layout = buildTwoLevelLayout(parseSop("x1 x2 + !x1 x3"));
  const DefectMap clean(layout.fm.rows(), layout.fm.cols());
  const auto id = identityAssignment(layout.fm.rows());
  EXPECT_EQ(countTwoLevelMismatches(layout, id, clean), 0u);
}

TEST(TwoLevelSim, Fig3FunctionFullSweep) {
  const TwoLevelLayout layout =
      buildTwoLevelLayout(parseSop("x1 + x2 + x3 + x4 + x5 x6 x7 x8"));
  const DefectMap clean(layout.fm.rows(), layout.fm.cols());
  EXPECT_EQ(countTwoLevelMismatches(layout, identityAssignment(layout.fm.rows()), clean), 0u);
}

TEST(TwoLevelSim, MultiOutputRandomCovers) {
  Rng rng(808);
  for (int rep = 0; rep < 15; ++rep) {
    RandomSopOptions opts;
    opts.nin = 5;
    opts.nout = 3;
    opts.products = 7;
    const Cover cover = randomSop(opts, rng);
    const TwoLevelLayout layout = buildTwoLevelLayout(cover);
    const DefectMap clean(layout.fm.rows(), layout.fm.cols());
    EXPECT_EQ(countTwoLevelMismatches(layout, identityAssignment(layout.fm.rows()), clean), 0u)
        << "rep=" << rep;
  }
}

TEST(TwoLevelSim, StuckOpenOnUsedSwitchBreaksFunction) {
  const Cover cover = parseSop("x1 x2");
  const TwoLevelLayout layout = buildTwoLevelLayout(cover);
  DefectMap defects(layout.fm.rows(), layout.fm.cols());
  // Break the x1 literal switch of product row 0: the row now computes
  // NAND(x2) and the function degrades to x2.
  defects.setType(0, layout.fm.colOfPosLiteral(0), DefectType::StuckOpen);
  const auto id = identityAssignment(layout.fm.rows());
  EXPECT_GT(countTwoLevelMismatches(layout, id, defects), 0u);
  DynBits in(2);
  in.set(1);  // x1=0 x2=1: true function = 0, defective crossbar says 1
  EXPECT_TRUE(simulateTwoLevel(layout, id, defects, in).test(0));
}

TEST(TwoLevelSim, StuckOpenOnUnusedSwitchIsHarmless) {
  const Cover cover = parseSop("x1 x2 + !x3");
  const TwoLevelLayout layout = buildTwoLevelLayout(cover);
  DefectMap defects(layout.fm.rows(), layout.fm.cols());
  // Stuck-open where the FM has zeros: exactly the paper's observation that
  // stuck-open behaves like a disabled switch.
  defects.setType(0, layout.fm.colOfNegLiteral(0), DefectType::StuckOpen);
  defects.setType(1, layout.fm.colOfPosLiteral(0), DefectType::StuckOpen);
  EXPECT_EQ(countTwoLevelMismatches(layout, identityAssignment(layout.fm.rows()), defects), 0u);
}

TEST(TwoLevelSim, StuckClosedPoisonsRow) {
  const Cover cover = parseSop("x1 x2 + x3");
  const TwoLevelLayout layout = buildTwoLevelLayout(cover);
  DefectMap defects(layout.fm.rows(), layout.fm.cols());
  // Stuck-closed on product row 0, in a column nobody needs (x1's negative
  // rail): the row still outputs constant 1 -> product x1 x2 disappears.
  defects.setType(0, layout.fm.colOfNegLiteral(0), DefectType::StuckClosed);
  const auto id = identityAssignment(layout.fm.rows());
  DynBits in(3);
  in.set(0);
  in.set(1);  // x1 x2 = 1, x3 = 0 -> true 1; defective row kills the product
  EXPECT_FALSE(simulateTwoLevel(layout, id, defects, in).test(0));
  // ... and the poisoned column corrupts anything reading it; the overall
  // function must be wrong somewhere.
  EXPECT_GT(countTwoLevelMismatches(layout, id, defects), 0u);
}

TEST(TwoLevelSim, StuckClosedOnOutputColumnForcesOutputHigh) {
  const Cover cover = parseSop("x1 x2");
  const TwoLevelLayout layout = buildTwoLevelLayout(cover);
  DefectMap defects(layout.fm.rows(), layout.fm.cols());
  defects.setType(0, layout.fm.colOfOutput(0), DefectType::StuckClosed);
  const auto id = identityAssignment(layout.fm.rows());
  DynBits in(2);  // 00 -> true 0, but the poisoned O column reads R_ON = 0 -> f = 1
  EXPECT_TRUE(simulateTwoLevel(layout, id, defects, in).test(0));
}

TEST(TwoLevelSim, ValidRemappingRestoresFunction) {
  // End-to-end: defective crossbar, naive mapping wrong, HBA mapping right.
  const Cover cover = parseSop("x1 x2 + x2 x3 + x1 x3");
  const TwoLevelLayout layout = buildTwoLevelLayout(cover);
  DefectMap defects(layout.fm.rows(), layout.fm.cols());
  // Break row 0 for its own product but keep it usable for product row 2
  // (x1 x3 does not need x2).
  defects.setType(0, layout.fm.colOfPosLiteral(1), DefectType::StuckOpen);
  const auto id = identityAssignment(layout.fm.rows());
  EXPECT_GT(countTwoLevelMismatches(layout, id, defects), 0u);

  const BitMatrix cm = crossbarMatrix(defects);
  const MappingResult r = HybridMapper().map(layout.fm, cm);
  ASSERT_TRUE(r.success);
  EXPECT_EQ(countTwoLevelMismatches(layout, r.rowAssignment, defects), 0u);
}

TEST(TwoLevelSim, SpareRowAssignmentWorks) {
  const Cover cover = parseSop("x1 + !x2");
  const TwoLevelLayout layout = buildTwoLevelLayout(cover);
  const DefectMap clean(layout.fm.rows() + 2, layout.fm.cols());
  std::vector<std::size_t> assignment{4, 1, 2};  // product 0 lives on spare row 4
  EXPECT_EQ(countTwoLevelMismatches(layout, assignment, clean), 0u);
}

TEST(TwoLevelSim, ArityValidation) {
  const TwoLevelLayout layout = buildTwoLevelLayout(parseSop("x1"));
  const DefectMap clean(layout.fm.rows(), layout.fm.cols());
  DynBits wrong(2);
  EXPECT_THROW(simulateTwoLevel(layout, identityAssignment(1), clean, wrong), InvalidArgument);
}

// ---- multi-level ----------------------------------------------------------

TEST(MultiLevelSim, Fig5CleanCrossbar) {
  const Cover cover = parseSop("x1 + x2 + x3 + x4 + x5 x6 x7 x8");
  const MultiLevelLayout layout = buildMultiLevelLayout(mapToNand(cover));
  const DefectMap clean(layout.fm.rows(), layout.fm.cols());
  const auto id = identityAssignment(layout.fm.rows());
  const TruthTable ref = TruthTable::fromCover(cover);
  for (std::size_t m = 0; m < 256; ++m) {
    const DynBits out = simulateMultiLevel(layout, id, clean, inputBitsOf(m, 8));
    EXPECT_EQ(out.test(0), ref.get(0, m)) << "m=" << m;
  }
}

TEST(MultiLevelSim, RandomNetworksMatchReference) {
  Rng rng(909);
  for (int rep = 0; rep < 10; ++rep) {
    RandomSopOptions opts;
    opts.nin = 5;
    opts.nout = 2;
    opts.products = 6;
    const Cover cover = randomSop(opts, rng);
    bool constant = false;
    for (std::size_t o = 0; o < cover.nout(); ++o) {
      const auto proj = cover.projection(o);
      if (proj.empty() || tautology(proj, cover.nin())) constant = true;
    }
    if (constant) continue;
    const MultiLevelLayout layout = buildMultiLevelLayout(mapToNand(cover));
    const DefectMap clean(layout.fm.rows(), layout.fm.cols());
    const auto id = identityAssignment(layout.fm.rows());
    const TruthTable ref = TruthTable::fromCover(cover);
    for (std::size_t m = 0; m < 32; ++m) {
      const DynBits out = simulateMultiLevel(layout, id, clean, inputBitsOf(m, 5));
      for (std::size_t o = 0; o < 2; ++o)
        EXPECT_EQ(out.test(o), ref.get(o, m)) << "rep=" << rep << " m=" << m;
    }
  }
}

TEST(MultiLevelSim, BrokenConnectionColumnBreaksFunction) {
  const Cover cover = parseSop("x1 + x2 + x3 + x4 + x5 x6 x7 x8");
  const MultiLevelLayout layout = buildMultiLevelLayout(mapToNand(cover));
  DefectMap defects(layout.fm.rows(), layout.fm.cols());
  // Break the writer switch of gate 0's connection column: downstream reads
  // the initialization value instead of the gate result.
  defects.setType(0, layout.fm.colOfConnection(0), DefectType::StuckOpen);
  const auto id = identityAssignment(layout.fm.rows());
  const TruthTable ref = TruthTable::fromCover(cover);
  std::size_t mismatches = 0;
  for (std::size_t m = 0; m < 256; ++m) {
    const DynBits out = simulateMultiLevel(layout, id, defects, inputBitsOf(m, 8));
    if (out.test(0) != ref.get(0, m)) ++mismatches;
  }
  EXPECT_GT(mismatches, 0u);
}

TEST(MultiLevelSim, HybridMappingOnDefectiveMultiLevelCrossbar) {
  // The paper's future-work integration: defect-tolerant mapping of the
  // multi-level design, validated by simulation.
  const Cover cover = parseSop("x1 x2 + x3 x4 + x1 x4 + x2 x3");
  const MultiLevelLayout layout = buildMultiLevelLayout(mapToNand(cover));
  Rng rng(4242);
  const TruthTable ref = TruthTable::fromCover(cover);
  std::size_t checked = 0;
  for (int rep = 0; rep < 40 && checked < 5; ++rep) {
    Rng sample = rng.split();
    const DefectMap defects =
        DefectMap::sample(layout.fm.rows(), layout.fm.cols(), 0.05, 0.0, sample);
    const MappingResult r = HybridMapper().map(layout.fm, crossbarMatrix(defects));
    if (!r.success) continue;
    ++checked;
    for (std::size_t m = 0; m < 16; ++m) {
      const DynBits out = simulateMultiLevel(layout, r.rowAssignment, defects, inputBitsOf(m, 4));
      EXPECT_EQ(out.test(0), ref.get(0, m)) << "rep=" << rep << " m=" << m;
    }
  }
  EXPECT_GT(checked, 0u);
}

}  // namespace
}  // namespace mcx
