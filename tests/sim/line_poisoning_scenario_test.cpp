// Stuck-closed line poisoning in the behavioral simulator and the transient
// fault harness, exercised with scenario-generated (line-correlated and
// composite) defect maps rather than the i.i.d. draws the rest of the suite
// uses.
#include <gtest/gtest.h>

#include "logic/sop_parser.hpp"
#include "logic/truth_table.hpp"
#include "scenario/defect_model.hpp"
#include "sim/crossbar_sim.hpp"
#include "sim/transient_faults.hpp"

namespace mcx {
namespace {

TwoLevelLayout testLayout() { return buildTwoLevelLayout(parseSop("x1 x2 + !x1 x3 + x2 !x3")); }

/// Number of (input, output) pairs where the reference function is 1 — the
/// mismatch count of a crossbar whose outputs are all forced to 0.
std::size_t onCount(const Cover& cover) {
  const TruthTable ref = TruthTable::fromCover(cover);
  std::size_t on = 0;
  for (std::size_t o = 0; o < cover.nout(); ++o)
    for (std::size_t m = 0; m < ref.numMinterms(); ++m)
      if (ref.get(o, m)) ++on;
  return on;
}

TEST(LinePoisoningSim, EveryRowStuckClosedForcesAllOutputsLow) {
  // rowStuckClosedRate = 1: every physical row carries a stuck-closed
  // crosspoint. Every product row is poisoned (its NAND reads the forced 0)
  // and every output latch row is poisoned too, so each latch keeps its
  // R_OFF initialization and every output reads 0 — regardless of which
  // columns the closed crosspoints happened to poison.
  const TwoLevelLayout layout = testLayout();
  LineCorrelated::Params p;
  p.rowStuckClosedRate = 1.0;
  const LineCorrelated model(p);
  Rng rng(17);
  const DefectMap defects = model.sample(layout.fm.rows(), layout.fm.cols(), rng);
  for (std::size_t r = 0; r < defects.rows(); ++r) ASSERT_TRUE(defects.rowPoisoned(r));

  const auto id = identityAssignment(layout.fm.rows());
  EXPECT_EQ(countTwoLevelMismatches(layout, id, defects), onCount(layout.cover));
}

TEST(LinePoisoningSim, WholeLineStuckOpenSilentlyDropsEveryConnection) {
  // colStuckOpenRate = 1: all switches unusable but nothing poisoned. No
  // product ever pulls its output column and every latch switch is broken,
  // so outputs are all 0 — the stuck-open line failure mode is silent, not
  // poisoning.
  const TwoLevelLayout layout = testLayout();
  LineCorrelated::Params p;
  p.colStuckOpenRate = 1.0;
  const LineCorrelated model(p);
  Rng rng(23);
  const DefectMap defects = model.sample(layout.fm.rows(), layout.fm.cols(), rng);
  EXPECT_EQ(defects.stuckClosedCount(), 0u);
  for (std::size_t r = 0; r < defects.rows(); ++r) ASSERT_FALSE(defects.rowPoisoned(r));

  const auto id = identityAssignment(layout.fm.rows());
  EXPECT_EQ(countTwoLevelMismatches(layout, id, defects), onCount(layout.cover));
}

TEST(LinePoisoningSim, PoisonedOutputColumnForcesTheOutputHigh) {
  // Scenario-generated partial poisoning: scan seeds until a map poisons
  // the (single) output column while the latch row and its switch stay
  // healthy. Per Section IV-A the column is forced to R_ON = 0 (= !f), so
  // after inversion the output reads constant 1.
  const TwoLevelLayout layout = testLayout();
  const FunctionMatrix& fm = layout.fm;
  LineCorrelated::Params p;
  p.rowStuckClosedRate = 0.4;
  const LineCorrelated model(p);
  const auto id = identityAssignment(fm.rows());
  const std::size_t outCol = fm.colOfOutput(0);
  const std::size_t outRow = fm.rowOfOutput(0);

  bool found = false;
  for (std::uint64_t seed = 0; seed < 200 && !found; ++seed) {
    Rng rng(seed);
    const DefectMap defects = model.sample(fm.rows(), fm.cols(), rng);
    if (!defects.colPoisoned(outCol)) continue;
    if (defects.rowPoisoned(outRow) || defects.isStuckOpen(outRow, outCol)) continue;
    found = true;
    DynBits input(fm.nin());
    for (std::size_t m = 0; m < (std::size_t{1} << fm.nin()); ++m) {
      for (std::size_t v = 0; v < fm.nin(); ++v) input.set(v, ((m >> v) & 1u) != 0);
      const DynBits out = simulateTwoLevel(layout, id, defects, input);
      EXPECT_TRUE(out.test(0)) << "seed=" << seed << " minterm=" << m;
    }
  }
  ASSERT_TRUE(found) << "no seed produced the poisoned-output configuration";
}

TEST(LinePoisoningTransients, ZeroTransientRateReproducesPermanentDamage) {
  // With zero transient rates, measureTransientErrors is a deterministic
  // evaluation of the permanent map: a line-correlated map that breaks the
  // function must show a positive bit error rate, and a clean map must not.
  const TwoLevelLayout layout = testLayout();
  const auto id = identityAssignment(layout.fm.rows());

  LineCorrelated::Params p;
  p.rowStuckClosedRate = 1.0;
  Rng mapRng(31);
  const DefectMap poisoned =
      LineCorrelated(p).sample(layout.fm.rows(), layout.fm.cols(), mapRng);
  Rng evalRng(1);
  const TransientFaultStats broken =
      measureTransientErrors(layout, id, poisoned, {}, 200, evalRng);
  EXPECT_EQ(broken.evaluations, 200u * layout.cover.nout());
  // All outputs forced low: errors exactly on the reference-1 evaluations.
  EXPECT_GT(broken.bitErrors, 0u);

  const DefectMap clean(layout.fm.rows(), layout.fm.cols());
  Rng evalRng2(1);
  const TransientFaultStats ok = measureTransientErrors(layout, id, clean, {}, 200, evalRng2);
  EXPECT_EQ(ok.bitErrors, 0u);
}

TEST(LinePoisoningTransients, TransientsCannotWorsenAFullyPoisonedCrossbar) {
  // Every row poisoned permanently => outputs are all 0 no matter what, so
  // layering transient upsets on top must not change the error count (the
  // transient layer only ever adds stuck behaviour, and there is nothing
  // left to break).
  const TwoLevelLayout layout = testLayout();
  const auto id = identityAssignment(layout.fm.rows());
  LineCorrelated::Params p;
  p.rowStuckClosedRate = 1.0;
  Rng mapRng(37);
  const DefectMap poisoned =
      LineCorrelated(p).sample(layout.fm.rows(), layout.fm.cols(), mapRng);

  Rng quietRng(9);
  const TransientFaultStats quiet =
      measureTransientErrors(layout, id, poisoned, {}, 300, quietRng);
  TransientFaultConfig noisy;
  noisy.openRate = 0.2;
  noisy.shortRate = 0.2;
  Rng noisyRng(9);
  const TransientFaultStats stormy =
      measureTransientErrors(layout, id, poisoned, noisy, 300, noisyRng);
  EXPECT_EQ(stormy.bitErrors, quiet.bitErrors);
}

TEST(LinePoisoningTransients, CompositePermanentsLayerUnderTransients) {
  // Composite permanents (clustered opens + line failures) under a
  // transient storm: the harness must count every evaluation, and the error
  // rate must be at least the permanent-only rate observed on the same
  // inputs (transient shorts poison lines, transient opens drop literals —
  // on this crossbar every single-switch failure biases outputs toward 0,
  // and the reference does not change).
  const TwoLevelLayout layout = testLayout();
  const auto id = identityAssignment(layout.fm.rows());

  ClusteredDefects::Params cp;
  cp.clusterDensity = 2e-3;
  LineCorrelated::Params lp;
  lp.rowStuckClosedRate = 0.25;
  const CompositeModel model(
      "fab", {std::make_shared<ClusteredDefects>(cp), std::make_shared<LineCorrelated>(lp)});
  Rng mapRng(41);
  const DefectMap defects = model.sample(layout.fm.rows(), layout.fm.cols(), mapRng);

  TransientFaultConfig storm;
  storm.shortRate = 0.3;
  Rng rng(3);
  const TransientFaultStats stats = measureTransientErrors(layout, id, defects, storm, 250, rng);
  EXPECT_EQ(stats.evaluations, 250u * layout.cover.nout());
  EXPECT_GT(stats.bitErrorRate(), 0.0);
  EXPECT_LE(stats.bitErrorRate(), 1.0);
}

}  // namespace
}  // namespace mcx
