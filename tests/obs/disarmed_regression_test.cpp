// The telemetry layer must be a pure observer: with tracing disarmed (the
// default) AND with a sink armed + profiling on, the MC engine must keep
// reproducing the committed BENCH_defect_mc.json success count bit-for-bit.
// The spans and gated counters live inside runDefectExperiment, the
// executor pool chunk loop and the Hopcroft–Karp engine — this test proves
// none of them perturb the RNG streams or the work partition.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "api/experiment.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "scenario/spec.hpp"

#ifndef MCX_REPO_ROOT
#error "MCX_REPO_ROOT must point at the repository root (set by CMake)"
#endif

namespace mcx {
namespace {

/// Committed success count for the rd53 / HBA / legacy-rates row.
std::size_t committedRd53HbaSuccesses() {
  std::ifstream file(std::string(MCX_REPO_ROOT) + "/BENCH_defect_mc.json");
  EXPECT_TRUE(file.good()) << "committed BENCH_defect_mc.json not found";
  std::ostringstream buffer;
  buffer << file.rdbuf();
  const SpecValue doc = parseSpec(buffer.str());
  const SpecValue* circuits = doc.find("circuits");
  if (circuits == nullptr) return 0;
  for (const SpecValue& circuit : circuits->array) {
    if (circuit.stringOr("name", "") != "rd53") continue;
    const SpecValue* mappers = circuit.find("mappers");
    if (mappers == nullptr) return 0;
    for (const SpecValue& entry : mappers->array) {
      if (entry.stringOr("mapper", "") != "HBA") continue;
      if (entry.stringOr("scenario", "") != "iid (legacy rates)") continue;
      const SpecValue* runs = entry.find("runs");
      if (runs == nullptr || runs->array.empty()) return 0;
      return static_cast<std::size_t>(runs->array.front().numberOr("successes", 0));
    }
  }
  return 0;
}

ExperimentResult runCommittedWorkload() {
  std::ifstream file(std::string(MCX_REPO_ROOT) + "/BENCH_defect_mc.json");
  std::ostringstream buffer;
  buffer << file.rdbuf();
  const SpecValue doc = parseSpec(buffer.str());
  return ExperimentBuilder()
      .circuit("rd53-min")
      .multiLevel()
      .mapper("hba")
      .legacyRates(doc.numberOr("stuck_open_rate", 0.0))
      .samples(static_cast<std::size_t>(doc.numberOr("samples", 0)))
      .seed(0x51a)
      .threads(2)  // spans + chunk counters on the pooled path too
      .run();
}

TEST(ObsDisarmedRegression, TelemetryNeverPerturbsTheCommittedSuccessCounts) {
  const std::size_t committed = committedRd53HbaSuccesses();
  ASSERT_GT(committed, 0u) << "committed regression surface missing";

  // Disarmed (the production default): spans are inert, gated counters off.
  obs::setProfiling(false);
  EXPECT_EQ(runCommittedWorkload().outcome.successes, committed)
      << "disarmed telemetry changed the MC result";

  // Fully armed: trace sink + profiling counters live on the same run.
  const std::string trace = ::testing::TempDir() + "mcx_disarmed_regression.json";
  obs::armTrace(trace);
  const ExperimentResult armed = runCommittedWorkload();
  obs::disarmTrace();
  obs::setProfiling(false);
  std::remove(trace.c_str());
  EXPECT_EQ(armed.outcome.successes, committed)
      << "armed telemetry changed the MC result";
}

}  // namespace
}  // namespace mcx
