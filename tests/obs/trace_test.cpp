// Span/TraceSink behaviour: disarmed spans stay inert (no clock, returns
// 0), armed spans emit Chrome trace_event lines whose timestamps nest the
// way the code did, histogram-fed spans record regardless of arming, and
// disarm/re-arm round-trips cleanly. The emitted lines are parsed with the
// repo's own SpecValue parser to pin the JSON shape chrome://tracing needs.
#include "obs/trace.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"
#include "scenario/spec.hpp"

namespace mcx::obs {
namespace {

struct Event {
  std::string name;
  double ts = 0;   // microseconds
  double dur = 0;  // microseconds
  int tid = -1;
};

/// Parses the trace file: "[" header then one `{...},` event per line.
std::vector<Event> readTrace(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "trace file missing: " << path;
  std::vector<Event> events;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '[') continue;
    if (line.back() == ',') line.pop_back();
    const SpecValue doc = parseSpec(line);
    EXPECT_TRUE(doc.isObject()) << line;
    Event e;
    e.name = doc.stringOr("name", "");
    e.ts = doc.numberOr("ts", -1);
    e.dur = doc.numberOr("dur", -1);
    e.tid = static_cast<int>(doc.numberOr("tid", -1));
    EXPECT_EQ(doc.stringOr("ph", ""), "X") << "complete events only";
    EXPECT_EQ(doc.stringOr("cat", ""), "mcx");
    events.push_back(e);
  }
  return events;
}

class ObsTrace : public ::testing::Test {
protected:
  void SetUp() override {
    // Unique per test: ctest runs each test as its own process, possibly in
    // parallel — a shared path lets concurrent ObsTrace tests clobber each
    // other's trace files (observed as a flaky parse failure under -j).
    path_ = ::testing::TempDir() + "mcx_trace_test_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name() + ".json";
  }
  void TearDown() override {
    disarmTrace();
    setProfiling(false);
    std::remove(path_.c_str());
  }
  std::string path_;
};

TEST_F(ObsTrace, DisarmedSpanIsInertAndReturnsZero) {
  ASSERT_FALSE(traceArmed());
  Span span("nothing");
  EXPECT_EQ(span.finish(), 0u);
  EXPECT_EQ(span.finish(), 0u);  // idempotent
}

TEST_F(ObsTrace, HistogramFedSpanRecordsEvenWhenDisarmed) {
  ASSERT_FALSE(traceArmed());
  Histogram hist;
  {
    Span span("timed", &hist);
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(hist.count(), 1u);
  EXPECT_GE(hist.snapshot().max, 1'000'000u) << "slept >= 1ms";
}

TEST_F(ObsTrace, ArmingAlsoArmsProfiling) {
  ASSERT_FALSE(profilingArmed());
  armTrace(path_);
  EXPECT_TRUE(traceArmed());
  EXPECT_TRUE(profilingArmed());
}

TEST_F(ObsTrace, NestedSpansEmitContainedOrderedEvents) {
  armTrace(path_);
  {
    Span outer("outer");
    {
      Span first("inner-a");
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    {
      Span second("inner-b");
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
  disarmTrace();

  const std::vector<Event> events = readTrace(path_);
  ASSERT_EQ(events.size(), 3u);
  // Complete events flush at finish time: children precede their parent.
  EXPECT_EQ(events[0].name, "inner-a");
  EXPECT_EQ(events[1].name, "inner-b");
  EXPECT_EQ(events[2].name, "outer");

  const Event& outer = events[2];
  // Chrome reconstructs nesting from containment; timestamps are rounded
  // to 1ns (0.001us) in the writer, so allow that much slack.
  constexpr double kEps = 0.002;
  for (std::size_t i = 0; i < 2; ++i) {
    EXPECT_GE(events[i].ts + kEps, outer.ts) << events[i].name;
    EXPECT_LE(events[i].ts + events[i].dur, outer.ts + outer.dur + kEps)
        << events[i].name;
    EXPECT_EQ(events[i].tid, outer.tid) << "same thread, same lane";
  }
  // The two siblings do not overlap.
  EXPECT_LE(events[0].ts + events[0].dur, events[1].ts + kEps);
}

TEST_F(ObsTrace, EarlyFinishStopsTheClockAndTheDestructorStaysQuiet) {
  armTrace(path_);
  {
    Span span("early");
    const std::uint64_t nanos = span.finish();
    EXPECT_GT(nanos, 0u);
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    // Destructor must not write a second event.
  }
  disarmTrace();
  EXPECT_EQ(readTrace(path_).size(), 1u);
}

TEST_F(ObsTrace, ThreadsGetDistinctStableLanes) {
  const int here = currentTraceTid();
  EXPECT_EQ(currentTraceTid(), here) << "lane id is stable per thread";
  int other = -1;
  std::thread t([&other] { other = currentTraceTid(); });
  t.join();
  EXPECT_NE(other, here);
}

TEST_F(ObsTrace, SpansFromMultipleThreadsSerializeIntoOneValidFile) {
  armTrace(path_);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([] {
      for (int i = 0; i < 25; ++i) Span span("worker");
    });
  }
  for (std::thread& t : threads) t.join();
  disarmTrace();
  const std::vector<Event> events = readTrace(path_);
  EXPECT_EQ(events.size(), 100u);  // every event parsed cleanly
}

TEST_F(ObsTrace, ArmTraceToAnUnwritablePathThrows) {
  EXPECT_THROW(armTrace("/nonexistent-dir/trace.json"), std::runtime_error);
  EXPECT_FALSE(traceArmed());
}

}  // namespace
}  // namespace mcx::obs
