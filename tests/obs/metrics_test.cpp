// mcx::obs metric primitives: histogram bucket geometry and quantile edge
// cases (0, 1, max, overflow), counter sharding under a concurrent hammer
// (the TSan CI job runs these with Obs* in its filter), gauge levels and
// registry snapshot shape. Geometry checks lean on the bucketIndex /
// bucketLo / bucketWidth statics the Histogram exposes for exactly this.
#include "obs/metrics.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <thread>
#include <vector>

#include "scenario/spec.hpp"

namespace mcx::obs {
namespace {

using Hist = Histogram;

TEST(ObsHistogram, GeometryConstantsAreConsistent) {
  // 8 unit buckets, 37 octave groups of 8 sub-buckets, 1 overflow bucket.
  EXPECT_EQ(Hist::kSubBuckets, 8u);
  EXPECT_EQ(Hist::kGroups, 37u);
  EXPECT_EQ(Hist::kBuckets, 305u);
}

TEST(ObsHistogram, UnitBucketsBelowEight) {
  for (std::uint64_t v = 0; v < 8; ++v) {
    EXPECT_EQ(Hist::bucketIndex(v), v);
    EXPECT_EQ(Hist::bucketLo(v), v);
    EXPECT_EQ(Hist::bucketWidth(v), 1u);
  }
}

TEST(ObsHistogram, BucketsTileTheRangeWithoutGapsOrOverlap) {
  // Every regular bucket's upper edge is the next bucket's lower edge, all
  // the way to the overflow threshold 2^40.
  for (std::size_t i = 0; i + 1 < Hist::kBuckets; ++i) {
    EXPECT_EQ(Hist::bucketLo(i) + Hist::bucketWidth(i), Hist::bucketLo(i + 1))
        << "gap or overlap at bucket " << i;
  }
  EXPECT_EQ(Hist::bucketLo(Hist::kBuckets - 1), std::uint64_t{1} << 40);
  EXPECT_EQ(Hist::bucketWidth(Hist::kBuckets - 1), 0u);
}

TEST(ObsHistogram, EveryBucketEdgeRoundTripsThroughBucketIndex) {
  for (std::size_t i = 0; i + 1 < Hist::kBuckets; ++i) {
    const std::uint64_t lo = Hist::bucketLo(i);
    const std::uint64_t hi = lo + Hist::bucketWidth(i) - 1;
    EXPECT_EQ(Hist::bucketIndex(lo), i) << "lower edge of bucket " << i;
    EXPECT_EQ(Hist::bucketIndex(hi), i) << "upper edge of bucket " << i;
  }
}

TEST(ObsHistogram, RelativeBucketErrorIsBounded) {
  // The HDR contract: width <= lo / 8 for every octave bucket, i.e. any
  // recorded value is within 12.5% of its bucket's lower bound.
  for (std::size_t i = Hist::kSubBuckets; i + 1 < Hist::kBuckets; ++i)
    EXPECT_LE(Hist::bucketWidth(i) * 8, Hist::bucketLo(i)) << "bucket " << i;
}

TEST(ObsHistogram, OverflowThresholdAndExtremes) {
  const std::uint64_t threshold = std::uint64_t{1} << 40;
  EXPECT_EQ(Hist::bucketIndex(threshold - 1), Hist::kBuckets - 2);
  EXPECT_EQ(Hist::bucketIndex(threshold), Hist::kBuckets - 1);
  EXPECT_EQ(Hist::bucketIndex(std::numeric_limits<std::uint64_t>::max()),
            Hist::kBuckets - 1);
}

TEST(ObsHistogram, EmptySnapshotQuantilesAreZero) {
  Hist hist;
  const Hist::Snapshot snap = hist.snapshot();
  EXPECT_EQ(snap.count, 0u);
  EXPECT_EQ(snap.quantile(0.0), 0.0);
  EXPECT_EQ(snap.quantile(0.5), 0.0);
  EXPECT_EQ(snap.quantile(1.0), 0.0);
  EXPECT_EQ(snap.mean(), 0.0);
}

TEST(ObsHistogram, SingleRecordPinsEveryQuantileNearTheValue) {
  Hist hist;
  hist.record(1000);
  const Hist::Snapshot snap = hist.snapshot();
  EXPECT_EQ(snap.count, 1u);
  EXPECT_EQ(snap.sum, 1000u);
  EXPECT_EQ(snap.max, 1000u);
  // All mass sits in bucket(1000); every quantile lands inside it and the
  // clamp-to-max keeps the top end exact.
  const std::size_t i = Hist::bucketIndex(1000);
  for (const double q : {0.0, 0.5, 0.9, 0.99, 1.0}) {
    const double v = snap.quantile(q);
    EXPECT_GE(v, static_cast<double>(Hist::bucketLo(i)));
    EXPECT_LE(v, 1000.0) << "quantile must clamp to the exact max";
  }
  EXPECT_EQ(snap.quantile(1.0), 1000.0);
}

TEST(ObsHistogram, ZeroRecordLandsInTheZeroBucket) {
  Hist hist;
  hist.record(0);
  const Hist::Snapshot snap = hist.snapshot();
  EXPECT_EQ(snap.counts[0], 1u);
  EXPECT_EQ(snap.max, 0u);
  EXPECT_EQ(snap.quantile(0.99), 0.0);
}

TEST(ObsHistogram, OverflowBucketReportsTheExactMax) {
  Hist hist;
  hist.record(100);
  const std::uint64_t huge = (std::uint64_t{1} << 40) + 12345;
  hist.record(huge);
  const Hist::Snapshot snap = hist.snapshot();
  EXPECT_EQ(snap.counts[Hist::kBuckets - 1], 1u);
  EXPECT_EQ(snap.max, huge);
  // A quantile landing in the overflow bucket must not invent a value: it
  // reports the CAS-maintained exact max.
  EXPECT_EQ(snap.quantile(1.0), static_cast<double>(huge));
  EXPECT_EQ(snap.quantile(0.99), static_cast<double>(huge));
}

TEST(ObsHistogram, QuantilesAreMonotonicInQ) {
  Hist hist;
  std::uint64_t v = 1;
  for (int i = 0; i < 1000; ++i) {
    hist.record(v);
    v = v * 2862933555777941757ull + 3037000493ull;  // LCG spread
    v &= (std::uint64_t{1} << 38) - 1;               // stay below overflow
  }
  const Hist::Snapshot snap = hist.snapshot();
  double prev = -1.0;
  for (double q = 0.0; q <= 1.0; q += 0.05) {
    const double val = snap.quantile(q);
    EXPECT_GE(val, prev) << "quantile not monotonic at q=" << q;
    prev = val;
  }
  EXPECT_LE(snap.quantile(1.0), static_cast<double>(snap.max));
}

TEST(ObsHistogram, RecordMillisClampsNegativeAndNaNToZero) {
  Hist hist;
  hist.recordMillis(-5.0);
  hist.recordMillis(std::numeric_limits<double>::quiet_NaN());
  hist.recordMillis(1.5);  // 1.5ms = 1'500'000 ns
  const Hist::Snapshot snap = hist.snapshot();
  EXPECT_EQ(snap.count, 3u);
  EXPECT_EQ(snap.counts[0], 2u);
  EXPECT_EQ(snap.max, 1'500'000u);
}

TEST(ObsCounter, AddsAndSumsAcrossShards) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
}

TEST(ObsCounter, ConcurrentHammerLosesNothing) {
  // 8 threads x 100k relaxed increments; the sharded total must be exact.
  // The TSan CI job runs this suite to prove the relaxed path is race-free.
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 100'000;
  Counter c;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) c.add();
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(c.value(), kThreads * kPerThread);
}

TEST(ObsHistogram, ConcurrentRecordsLoseNothing) {
  constexpr int kThreads = 4;
  constexpr std::uint64_t kPerThread = 50'000;
  Hist hist;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&hist, t] {
      for (std::uint64_t i = 0; i < kPerThread; ++i)
        hist.record(static_cast<std::uint64_t>(t) * 1000 + (i & 511));
    });
  }
  for (std::thread& t : threads) t.join();
  const Hist::Snapshot snap = hist.snapshot();
  EXPECT_EQ(snap.count, kThreads * kPerThread);
  std::uint64_t total = 0;
  for (const std::uint64_t n : snap.counts) total += n;
  EXPECT_EQ(total, kThreads * kPerThread);
}

TEST(ObsGauge, SetAndAdjust) {
  Gauge g;
  EXPECT_EQ(g.value(), 0);
  g.set(7);
  g.add(-10);
  EXPECT_EQ(g.value(), -3);
}

TEST(ObsRegistry, SameNameResolvesToTheSameMetric) {
  Registry reg;
  Counter& a = reg.counter("x");
  Counter& b = reg.counter("x");
  EXPECT_EQ(&a, &b);
  // Kinds are independent namespaces.
  reg.gauge("x").set(5);
  a.add(3);
  EXPECT_EQ(reg.counter("x").value(), 3u);
  EXPECT_EQ(reg.gauge("x").value(), 5);
}

TEST(ObsRegistry, SnapshotJsonHasAllThreeSectionsSortedByName) {
  Registry reg;
  reg.counter("b.count").add(2);
  reg.counter("a.count").add(1);
  reg.gauge("depth").set(4);
  reg.histogram("lat").recordMillis(2.0);

  const SpecValue doc = parseSpec(reg.toJson());
  ASSERT_TRUE(doc.isObject());
  const SpecValue* counters = doc.find("counters");
  ASSERT_NE(counters, nullptr);
  EXPECT_EQ(counters->numberOr("a.count", -1), 1.0);
  EXPECT_EQ(counters->numberOr("b.count", -1), 2.0);
  const SpecValue* gauges = doc.find("gauges");
  ASSERT_NE(gauges, nullptr);
  EXPECT_EQ(gauges->numberOr("depth", -1), 4.0);
  const SpecValue* hists = doc.find("histograms");
  ASSERT_NE(hists, nullptr);
  const SpecValue* lat = hists->find("lat");
  ASSERT_NE(lat, nullptr);
  EXPECT_EQ(lat->numberOr("count", -1), 1.0);
  EXPECT_NEAR(lat->numberOr("max_ms", -1), 2.0, 1e-9);
  EXPECT_GT(lat->numberOr("p50_ms", -1), 0.0);
  // Map iteration order == lexical name order in the serialized text.
  const std::string text = reg.toJson();
  EXPECT_LT(text.find("a.count"), text.find("b.count"));
}

TEST(ObsRegistry, GlobalIsASingleton) {
  EXPECT_EQ(&Registry::global(), &Registry::global());
}

TEST(ObsRegistry, ConcurrentResolutionAndMutationIsSafe) {
  // Threads race name resolution (mutex) against mutation (lock-free) on a
  // shared registry — the pattern every instrumented subsystem uses.
  Registry reg;
  constexpr int kThreads = 8;
  constexpr int kIters = 10'000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&reg] {
      Counter& mine = reg.counter("shared.hammer");
      for (int i = 0; i < kIters; ++i) {
        mine.add();
        reg.histogram("shared.lat").record(static_cast<std::uint64_t>(i));
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(reg.counter("shared.hammer").value(),
            static_cast<std::uint64_t>(kThreads) * kIters);
  EXPECT_EQ(reg.histogram("shared.lat").count(),
            static_cast<std::uint64_t>(kThreads) * kIters);
}

}  // namespace
}  // namespace mcx::obs
