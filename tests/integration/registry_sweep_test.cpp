// Parameterized sweep: every Table II circuit goes through the full
// build -> function matrix -> defect injection -> HBA map -> verify
// pipeline, and the crossbar geometry invariants hold for each.
#include <gtest/gtest.h>

#include "benchdata/registry.hpp"
#include "map/fast_exact_mapper.hpp"
#include "map/hybrid_mapper.hpp"
#include "xbar/defects.hpp"
#include "xbar/function_matrix.hpp"

namespace mcx {
namespace {

class RegistrySweep : public ::testing::TestWithParam<std::string> {};

TEST_P(RegistrySweep, GeometryInvariants) {
  const BenchmarkCircuit bench = loadBenchmarkFast(GetParam());
  const Cover& c = bench.cover;
  const FunctionMatrix fm = buildFunctionMatrix(c);
  EXPECT_EQ(fm.rows(), c.size() + c.nout());
  EXPECT_EQ(fm.cols(), 2 * c.nin() + 2 * c.nout());
  EXPECT_EQ(fm.dims(), twoLevelDims(c));
  // Output rows have exactly their two latch switches.
  for (std::size_t o = 0; o < c.nout(); ++o)
    EXPECT_EQ(fm.bits().rowCount(fm.rowOfOutput(o)), 2u);
  // Every product row has at least one literal and one output switch.
  for (std::size_t r = 0; r < fm.numProductRows(); ++r)
    EXPECT_GE(fm.bits().rowCount(r), 2u);
  // The IR numerator decomposes into literals + product-output switches +
  // latch switches.
  std::size_t outputSwitches = 0;
  for (const Cube& cube : c.cubes()) outputSwitches += cube.outputBits().count();
  EXPECT_EQ(fm.usedSwitches(), c.literalCount() + outputSwitches + 2 * c.nout());
}

TEST_P(RegistrySweep, CleanCrossbarAlwaysMaps) {
  const BenchmarkCircuit bench = loadBenchmarkFast(GetParam());
  const FunctionMatrix fm = buildFunctionMatrix(bench.cover);
  const BitMatrix cm(fm.rows(), fm.cols(), true);
  const MappingResult r = HybridMapper().map(fm, cm);
  ASSERT_TRUE(r.success);
  EXPECT_TRUE(verifyMapping(fm, cm, r));
}

TEST_P(RegistrySweep, DefectiveMappingVerifies) {
  const BenchmarkCircuit bench = loadBenchmarkFast(GetParam());
  const FunctionMatrix fm = buildFunctionMatrix(bench.cover);
  Rng rng(0xfeed);
  const HybridMapper hba;
  const FastExactMapper eaFast;
  std::size_t attempts = 0, successes = 0;
  for (int rep = 0; rep < 5; ++rep) {
    Rng sample = rng.split();
    const DefectMap defects = DefectMap::sample(fm.rows(), fm.cols(), 0.05, 0.0, sample);
    const BitMatrix cm = crossbarMatrix(defects);
    ++attempts;
    const MappingResult h = hba.map(fm, cm);
    if (h.success) {
      ++successes;
      EXPECT_TRUE(verifyMapping(fm, cm, h));
      // Exactness: whenever HBA succeeds, EA-fast must too.
      EXPECT_TRUE(eaFast.map(fm, cm).success);
    }
  }
  EXPECT_GT(attempts, 0u);
  (void)successes;  // success count varies by circuit; validity is the test
}

std::vector<std::string> table2Names() {
  std::vector<std::string> names;
  for (const auto& info : paperBenchmarks())
    if (info.inTable2) names.push_back(info.name);
  return names;
}

INSTANTIATE_TEST_SUITE_P(TableII, RegistrySweep, ::testing::ValuesIn(table2Names()),
                         [](const ::testing::TestParamInfo<std::string>& paramInfo) {
                           return paramInfo.param;
                         });

}  // namespace
}  // namespace mcx
