// End-to-end pipelines across all subsystems: truth table -> minimized
// cover -> crossbar layout -> defect injection -> mapping -> functional
// simulation, for both the two-level and multi-level designs.
#include <gtest/gtest.h>

#include "benchdata/registry.hpp"
#include "logic/espresso.hpp"
#include "logic/generators.hpp"
#include "logic/isop.hpp"
#include "logic/pla.hpp"
#include "map/exact_mapper.hpp"
#include "map/hybrid_mapper.hpp"
#include "mc/defect_experiment.hpp"
#include "netlist/nand_mapper.hpp"
#include "sim/crossbar_sim.hpp"
#include "xbar/layout.hpp"
#include "xbar/multilevel_layout.hpp"

namespace mcx {
namespace {

TEST(Integration, Rd53FullTwoLevelPipeline) {
  // Generate, minimize, lay out, inject defects, map with HBA, simulate.
  const TruthTable tt = weightFunction(5);
  const Cover cover = espressoMinimize(isopCover(tt));
  EXPECT_EQ(TruthTable::fromCover(cover), tt);

  const TwoLevelLayout layout = buildTwoLevelLayout(cover);
  Rng rng(31337);
  std::size_t mapped = 0;
  for (int rep = 0; rep < 30 && mapped < 5; ++rep) {
    Rng sample = rng.split();
    const DefectMap defects =
        DefectMap::sample(layout.fm.rows(), layout.fm.cols(), 0.05, 0.0, sample);
    const MappingResult r = HybridMapper().map(layout.fm, crossbarMatrix(defects));
    if (!r.success) continue;
    ++mapped;
    EXPECT_EQ(countTwoLevelMismatches(layout, r.rowAssignment, defects), 0u) << "rep=" << rep;
  }
  EXPECT_GT(mapped, 0u);
}

TEST(Integration, DualImplementationComputesComplement) {
  // When the dual is cheaper the crossbar computes !f; the OL's free
  // inversion recovers f — functionally the pair (f, !f) is available either
  // way. Verify the complement cover really is the complement.
  const TruthTable tt = sqrtFunction(8);
  const Cover on = espressoMinimize(isopCover(tt));
  const Cover dual = espressoMinimize(isopCover(tt.complemented()));
  EXPECT_EQ(TruthTable::fromCover(dual), tt.complemented());
  // The paper's Table I reports the sqrt8 dual as smaller; ours should agree
  // directionally.
  EXPECT_LT(dual.size(), on.size() + 5);
}

TEST(Integration, PlaRoundTripThroughMinimizerAndMapper) {
  const std::string pla =
      ".i 4\n.o 2\n"
      "11-- 10\n"
      "1-1- 10\n"
      "--11 01\n"
      "0--0 01\n"
      "1--- 01\n"
      ".e\n";
  const PlaFile file = parsePlaString(pla);
  const Cover minimized = espressoMinimize(file.on, file.dc);
  EXPECT_EQ(TruthTable::fromCover(minimized), TruthTable::fromCover(file.on));

  const TwoLevelLayout layout = buildTwoLevelLayout(minimized);
  const DefectMap clean(layout.fm.rows(), layout.fm.cols());
  EXPECT_EQ(countTwoLevelMismatches(layout, identityAssignment(layout.fm.rows()), clean), 0u);
}

TEST(Integration, MultiLevelPipelineOnStructuredFunction) {
  const BenchmarkCircuit t481 = loadBenchmarkFast("t481");
  const NandNetwork net = mapToNand(t481.cover);
  const MultiLevelLayout layout = buildMultiLevelLayout(net);
  EXPECT_LT(layout.dims().area(), twoLevelDims(t481.cover).area());

  // Clean simulation agrees with the cover on sampled inputs.
  const DefectMap clean(layout.fm.rows(), layout.fm.cols());
  const auto id = identityAssignment(layout.fm.rows());
  Rng rng(5);
  for (int rep = 0; rep < 50; ++rep) {
    DynBits in(16);
    for (std::size_t v = 0; v < 16; ++v) in.set(v, rng.bernoulli(0.5));
    const DynBits expected = t481.cover.evaluate(in);
    const DynBits got = simulateMultiLevel(layout, id, clean, in);
    EXPECT_EQ(got.test(0), expected.test(0)) << "rep=" << rep;
  }
}

TEST(Integration, Table2StyleExperimentOnMisex1StandIn) {
  const BenchmarkCircuit misex1 = loadBenchmarkFast("misex1");
  const FunctionMatrix fm = buildFunctionMatrix(misex1.cover);
  EXPECT_EQ(fm.dims().area(), 570u);

  DefectExperimentConfig cfg;
  cfg.samples = 40;
  cfg.stuckOpenRate = 0.10;
  const auto hba = runDefectExperiment(fm, HybridMapper(), cfg);
  const auto ea = runDefectExperiment(fm, ExactMapper(), cfg);
  // The paper reports 100% for misex1 at 10%; allow sampling slack.
  EXPECT_GE(hba.successRate(), 0.85);
  EXPECT_GE(ea.successRate(), hba.successRate());
}

TEST(Integration, WholeRegistryBuildsFunctionMatrices) {
  for (const auto& info : paperBenchmarks()) {
    if (!info.inTable2) continue;
    const BenchmarkCircuit c = loadBenchmarkFast(info.name);
    const FunctionMatrix fm = buildFunctionMatrix(c.cover);
    EXPECT_EQ(fm.rows(), c.cover.size() + c.cover.nout()) << info.name;
    EXPECT_GT(fm.inclusionRatio(), 0.0) << info.name;
    EXPECT_LT(fm.inclusionRatio(), 1.0) << info.name;
  }
}

}  // namespace
}  // namespace mcx
