// Cross-oracle consistency: every independent representation of the same
// function (cover, ISOP, espresso output, NAND network, factor tree, BDD,
// Quine-McCluskey exact cover) must agree.
#include <gtest/gtest.h>

#include "benchdata/registry.hpp"
#include "logic/bdd.hpp"
#include "logic/espresso.hpp"
#include "logic/generators.hpp"
#include "logic/isop.hpp"
#include "logic/quine_mccluskey.hpp"
#include "netlist/export.hpp"
#include "netlist/kernels.hpp"
#include "netlist/nand_mapper.hpp"

namespace mcx {
namespace {

TEST(OracleConsistency, AllRepresentationsOfRd53Agree) {
  const TruthTable tt = weightFunction(5);
  const Cover isopC = isopCover(tt);
  const Cover minimized = espressoMinimize(isopC);
  const NandNetwork quick = mapToNand(minimized);
  const NandNetwork best = mapToNandBest(minimized);

  BddManager mgr(5);
  for (std::size_t o = 0; o < 3; ++o) {
    const BddRef ref = mgr.fromTruthTable(tt.bits(o));
    EXPECT_EQ(mgr.fromCover(isopC, o), ref) << "o=" << o;
    EXPECT_EQ(mgr.fromCover(minimized, o), ref) << "o=" << o;
  }
  EXPECT_EQ(quick.toTruthTable(), tt);
  EXPECT_EQ(best.toTruthTable(), tt);
}

TEST(OracleConsistency, QuineMcCluskeyBoundsEspressoOnBenchmarks) {
  // Per-output exact minima lower-bound the heuristic per-output covers.
  const TruthTable tt = weightFunction(5);
  const Cover minimized = espressoMinimize(isopCover(tt));
  for (std::size_t o = 0; o < tt.nout(); ++o) {
    const QmResult exact = quineMcCluskey(tt, o);
    const std::size_t heuristicPerOutput = minimized.projection(o).size();
    EXPECT_LE(exact.cover.size(), heuristicPerOutput) << "o=" << o;
    EXPECT_EQ(ttOfCubes(exact.cover, 5), tt.bits(o)) << "o=" << o;
  }
}

TEST(OracleConsistency, KernelAndQuickFactorAgreeViaBdd) {
  Rng rng(2025);
  for (int rep = 0; rep < 10; ++rep) {
    RandomSopOptions opts;
    opts.nin = 7;
    opts.nout = 1;
    opts.products = 10;
    opts.literalsPerProduct = 3.0;
    const Cover cover = randomSop(opts, rng);
    const auto proj = cover.projection(0);
    BddManager mgr(7);
    const BddRef ref = mgr.fromCover(cover, 0);

    const NandNetwork quick = mapToNand(cover);
    const NandNetwork best = mapToNandBest(cover);
    EXPECT_EQ(mgr.fromTruthTable(quick.toTruthTable().bits(0)), ref) << "rep=" << rep;
    EXPECT_EQ(mgr.fromTruthTable(best.toTruthTable().bits(0)), ref) << "rep=" << rep;
    (void)proj;
  }
}

TEST(OracleConsistency, BestMapperNeverWorseThanEitherStrategy) {
  Rng rng(2026);
  for (int rep = 0; rep < 15; ++rep) {
    RandomSopOptions opts;
    opts.nin = 8;
    opts.nout = 2;
    opts.products = 12;
    const Cover cover = randomSop(opts, rng);
    const auto cost = [](const NandNetwork& n) {
      return n.gateCount() + n.interconnectCount();
    };
    NandMapOptions flat;
    flat.factored = false;
    const std::size_t bestCost = cost(mapToNandBest(cover));
    EXPECT_LE(bestCost, cost(mapToNand(cover, flat))) << "rep=" << rep;
    EXPECT_LE(bestCost, cost(mapToNand(cover))) << "rep=" << rep;
  }
}

TEST(OracleConsistency, GeneratedBenchmarksRoundTripThroughExports) {
  // The exporters must at least produce structurally complete artifacts for
  // every generated benchmark.
  for (const char* name : {"rd53", "sqrt8"}) {
    const BenchmarkCircuit bench = loadBenchmarkFast(name);
    const NandNetwork net = mapToNandBest(bench.cover);
    const std::string dot = toDot(net, name);
    const std::string verilog = toVerilog(net, name);
    EXPECT_NE(dot.find("digraph"), std::string::npos) << name;
    for (std::size_t o = 0; o < bench.cover.nout(); ++o) {
      std::string port = "o";  // append form: GCC 12 -Wrestrict (PR 105329)
      port += std::to_string(o + 1);
      EXPECT_NE(verilog.find(port), std::string::npos) << name;
    }
    // One gate declaration per NAND gate.
    std::size_t gates = 0;
    for (std::size_t pos = verilog.find("nand ("); pos != std::string::npos;
         pos = verilog.find("nand (", pos + 1))
      ++gates;
    EXPECT_EQ(gates, net.gateCount()) << name;
  }
}

}  // namespace
}  // namespace mcx
