#include "mc/defect_experiment.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <utility>

#include "logic/sop_parser.hpp"
#include "map/exact_mapper.hpp"
#include "map/hybrid_mapper.hpp"
#include "scenario/defect_model.hpp"
#include "scenario/registry.hpp"

namespace mcx {
namespace {

FunctionMatrix testFm() {
  return buildFunctionMatrix(parseSop("x1 x2 + !x2 x3 + x1 !x3 + x2 x3"));
}

// Success counts observed for the sparse sampler at the exact seeds/rates
// of SparseSamplerPinnedSuccessCounts; see that test for the re-pin policy.
constexpr std::size_t kPinnedSparseSuccesses = 20;
constexpr std::size_t kPinnedSparseMixedSuccesses = 3;

TEST(DefectExperiment, ZeroRateGivesFullSuccess) {
  DefectExperimentConfig cfg;
  cfg.samples = 20;
  cfg.stuckOpenRate = 0.0;
  const DefectExperimentResult r = runDefectExperiment(testFm(), HybridMapper(), cfg);
  EXPECT_EQ(r.successes, 20u);
  EXPECT_DOUBLE_EQ(r.successRate(), 1.0);
}

TEST(DefectExperiment, SaturatedRateGivesZeroSuccess) {
  DefectExperimentConfig cfg;
  cfg.samples = 10;
  cfg.stuckOpenRate = 1.0;
  const DefectExperimentResult r = runDefectExperiment(testFm(), HybridMapper(), cfg);
  EXPECT_EQ(r.successes, 0u);
}

TEST(DefectExperiment, DeterministicForFixedSeed) {
  DefectExperimentConfig cfg;
  cfg.samples = 50;
  cfg.stuckOpenRate = 0.15;
  cfg.seed = 77;
  const auto a = runDefectExperiment(testFm(), HybridMapper(), cfg);
  const auto b = runDefectExperiment(testFm(), HybridMapper(), cfg);
  EXPECT_EQ(a.successes, b.successes);
  EXPECT_EQ(a.totalBacktracks, b.totalBacktracks);
}

TEST(DefectExperiment, ExactAtLeastAsSuccessful) {
  DefectExperimentConfig cfg;
  cfg.samples = 60;
  cfg.stuckOpenRate = 0.12;
  const auto hba = runDefectExperiment(testFm(), HybridMapper(), cfg);
  const auto ea = runDefectExperiment(testFm(), ExactMapper(), cfg);
  EXPECT_GE(ea.successes, hba.successes);
}

TEST(DefectExperiment, SpareRowsImproveSuccess) {
  DefectExperimentConfig base;
  base.samples = 60;
  base.stuckOpenRate = 0.25;
  DefectExperimentConfig spare = base;
  spare.spareRows = 3;
  const auto without = runDefectExperiment(testFm(), HybridMapper(), base);
  const auto with = runDefectExperiment(testFm(), HybridMapper(), spare);
  EXPECT_GE(with.successes, without.successes);
}

TEST(DefectExperiment, TimingIsPopulatedWhenOptedIn) {
  DefectExperimentConfig cfg;
  cfg.samples = 5;
  cfg.timePerSample = true;
  const auto r = runDefectExperiment(testFm(), HybridMapper(), cfg);
  EXPECT_EQ(r.perSampleMillis.count, 5u);
  EXPECT_GE(r.meanSeconds(), 0.0);
  EXPECT_GE(r.totalSeconds, 0.0);
}

TEST(DefectExperiment, PerSampleTimingIsOffByDefault) {
  // Sweep-style callers should not pay two clock reads per sample; the
  // aggregate wall time of the run is still reported.
  DefectExperimentConfig cfg;
  cfg.samples = 5;
  const auto r = runDefectExperiment(testFm(), HybridMapper(), cfg);
  EXPECT_EQ(r.perSampleMillis.count, 0u);
  EXPECT_GT(r.totalSeconds, 0.0);
  EXPECT_GT(r.meanSeconds(), 0.0);
}

TEST(DefectExperiment, TimingKnobDoesNotChangeOutcomes) {
  DefectExperimentConfig cfg;
  cfg.samples = 40;
  cfg.stuckOpenRate = 0.15;
  cfg.seed = 123;
  cfg.keepMappings = true;
  DefectExperimentConfig timed = cfg;
  timed.timePerSample = true;
  const auto a = runDefectExperiment(testFm(), HybridMapper(), cfg);
  const auto b = runDefectExperiment(testFm(), HybridMapper(), timed);
  EXPECT_EQ(a.successes, b.successes);
  ASSERT_EQ(a.mappings.size(), b.mappings.size());
  for (std::size_t s = 0; s < a.mappings.size(); ++s)
    EXPECT_EQ(a.mappings[s].rowAssignment, b.mappings[s].rowAssignment);
}

TEST(DefectExperiment, ResultsAreIdenticalAtAnyThreadCount) {
  // Covers the legacy rate-pair path and both sparse samplers (stuck-open
  // only, and mixed with stuck-closed poisoning): the determinism contract
  // binds every sampler the engine can run.
  const std::vector<std::shared_ptr<const DefectModel>> models = {
      nullptr,  // legacy rate pair
      std::make_shared<SparseIidBernoulli>(0.12, 0.0),
      std::make_shared<SparseIidBernoulli>(0.10, 0.02),
  };
  for (const auto& model : models) {
    SCOPED_TRACE(model ? model->describe() : "legacy rate pair");
    DefectExperimentConfig base;
    base.samples = 64;
    base.stuckOpenRate = 0.12;
    base.model = model;
    base.seed = 0xfeed;
    base.keepMappings = true;
    base.threads = 1;
    const auto reference = runDefectExperiment(testFm(), HybridMapper(), base);
    ASSERT_EQ(reference.mappings.size(), base.samples);

    for (const std::size_t threads : {std::size_t{2}, std::size_t{8}}) {
      DefectExperimentConfig cfg = base;
      cfg.threads = threads;
      const auto got = runDefectExperiment(testFm(), HybridMapper(), cfg);
      EXPECT_EQ(got.successes, reference.successes) << "threads=" << threads;
      EXPECT_EQ(got.totalBacktracks, reference.totalBacktracks) << "threads=" << threads;
      ASSERT_EQ(got.mappings.size(), reference.mappings.size());
      for (std::size_t s = 0; s < got.mappings.size(); ++s) {
        EXPECT_EQ(got.mappings[s].success, reference.mappings[s].success)
            << "threads=" << threads << " sample=" << s;
        EXPECT_EQ(got.mappings[s].rowAssignment, reference.mappings[s].rowAssignment)
            << "threads=" << threads << " sample=" << s;
      }
    }
  }
}

TEST(DefectExperiment, ResultsAreIdenticalAtAnyThreadCountForNonIidModels) {
  // The determinism contract is a property of the engine + every
  // DefectModel, not of the paper's i.i.d. sampler: correlated scenarios
  // draw variable amounts of randomness per sample, which is exactly the
  // pattern that would break a naive shared-stream implementation.
  for (const char* scenario : {"clustered", "lines", "composite"}) {
    DefectExperimentConfig base;
    base.samples = 48;
    base.seed = 0xfeed;
    base.model = makeScenario(scenario, 0.08);
    base.keepMappings = true;
    base.threads = 1;
    const auto reference = runDefectExperiment(testFm(), HybridMapper(), base);

    for (const std::size_t threads : {std::size_t{2}, std::size_t{8}}) {
      DefectExperimentConfig cfg = base;
      cfg.threads = threads;
      const auto got = runDefectExperiment(testFm(), HybridMapper(), cfg);
      EXPECT_EQ(got.successes, reference.successes)
          << "scenario=" << scenario << " threads=" << threads;
      ASSERT_EQ(got.mappings.size(), reference.mappings.size());
      for (std::size_t s = 0; s < got.mappings.size(); ++s)
        EXPECT_EQ(got.mappings[s].rowAssignment, reference.mappings[s].rowAssignment)
            << "scenario=" << scenario << " threads=" << threads << " sample=" << s;
    }
  }
}

TEST(DefectExperiment, MatchesForEachDefectSampleStreams) {
  // The engine and the callback variant must see the same defect draws —
  // and the engine's context path (incremental adjacency) must reproduce
  // the plain mapper.map() exactly. Checked for the legacy sampler and the
  // sparse one.
  for (const bool sparse : {false, true}) {
    SCOPED_TRACE(sparse ? "sparse" : "legacy");
    DefectExperimentConfig cfg;
    cfg.samples = 16;
    cfg.stuckOpenRate = 0.15;
    if (sparse) cfg.model = std::make_shared<SparseIidBernoulli>(0.15, 0.01);
    cfg.seed = 99;
    cfg.keepMappings = true;
    cfg.threads = 4;
    const auto result = runDefectExperiment(testFm(), HybridMapper(), cfg);

    const HybridMapper mapper;
    const FunctionMatrix fm = testFm();
    forEachDefectSample(fm, cfg, [&](std::size_t s, const DefectMap&, const BitMatrix& cm) {
      const MappingResult direct = mapper.map(fm, cm);
      ASSERT_LT(s, result.mappings.size());
      EXPECT_EQ(direct.success, result.mappings[s].success) << "sample=" << s;
      EXPECT_EQ(direct.rowAssignment, result.mappings[s].rowAssignment) << "sample=" << s;
    });
  }
}

TEST(DefectExperiment, SparseSamplerPinnedSuccessCounts) {
  // Pinned regression for the sparse stream on one circuit: a refactor of
  // the binomial inversion, the 32-bit placement draws, or the redraw rule
  // would silently shift every sparse experiment. If this fails after an
  // INTENTIONAL sampler change, re-pin the counts (and expect the bench
  // JSONs to move too); an unintentional failure is a broken stream.
  const FunctionMatrix fm = testFm();
  DefectExperimentConfig cfg;
  cfg.samples = 120;
  cfg.seed = 0x5eed;
  cfg.threads = 1;
  cfg.model = std::make_shared<SparseIidBernoulli>(0.20, 0.0);
  const auto hba = runDefectExperiment(fm, HybridMapper(), cfg);
  cfg.model = std::make_shared<SparseIidBernoulli>(0.15, 0.05);
  const auto mixed = runDefectExperiment(fm, HybridMapper(), cfg);
  EXPECT_EQ(hba.successes, kPinnedSparseSuccesses);
  EXPECT_EQ(mixed.successes, kPinnedSparseMixedSuccesses);
}

/// Delegates to an inner model but fires the token during the FINAL
/// sample's defect draw: the per-sample abort check has already passed, so
/// every sample completes while the token ends the run "stopped" — the race
/// a deadline expiring between the last sample and the engine's final
/// bookkeeping produces in the wild, made deterministic.
class CancelOnLastDrawModel : public DefectModel {
public:
  CancelOnLastDrawModel(std::shared_ptr<const DefectModel> inner, CancelToken* token,
                        std::size_t lastDraw)
      : inner_(std::move(inner)), token_(token), lastDraw_(lastDraw) {}
  std::string name() const override { return inner_->name(); }
  std::string describe() const override { return inner_->describe(); }
  void generate(std::size_t rows, std::size_t cols, Rng& rng,
                DefectMap& out) const override {
    if (draws_.fetch_add(1) + 1 == lastDraw_) token_->cancel();
    inner_->generate(rows, cols, rng, out);
  }

private:
  std::shared_ptr<const DefectModel> inner_;
  CancelToken* token_;
  std::size_t lastDraw_;
  mutable std::atomic<std::size_t> draws_{0};
};

TEST(DefectExperiment, TokenFiringAfterTheLastSampleDoesNotLabelTheRunAborted) {
  DefectExperimentConfig cfg;
  cfg.samples = 8;
  cfg.threads = 1;
  cfg.seed = 5;
  cfg.cancel = std::make_shared<CancelToken>();
  cfg.model = std::make_shared<CancelOnLastDrawModel>(
      std::make_shared<IidBernoulli>(0.1, 0.0), cfg.cancel.get(), cfg.samples);
  const DefectExperimentResult r = runDefectExperiment(testFm(), HybridMapper(), cfg);
  // All samples ran; a fully-completed run must never be reported aborted
  // even though the token is now signalling stop.
  EXPECT_EQ(r.completed, cfg.samples);
  EXPECT_FALSE(r.aborted);
  EXPECT_EQ(r.abortReason, "");
}

TEST(ForEachDefectSample, DeliversRequestedSamples) {
  DefectExperimentConfig cfg;
  cfg.samples = 7;
  cfg.stuckOpenRate = 0.1;
  std::size_t calls = 0;
  const FunctionMatrix fm = testFm();
  forEachDefectSample(fm, cfg, [&](std::size_t idx, const DefectMap& d, const BitMatrix& cm) {
    EXPECT_EQ(idx, calls);
    EXPECT_EQ(d.rows(), fm.rows());
    EXPECT_EQ(cm.rows(), fm.rows());
    EXPECT_EQ(cm.cols(), fm.cols());
    ++calls;
  });
  EXPECT_EQ(calls, 7u);
}

}  // namespace
}  // namespace mcx
