#include "mc/defect_experiment.hpp"

#include <gtest/gtest.h>

#include "logic/sop_parser.hpp"
#include "map/exact_mapper.hpp"
#include "map/hybrid_mapper.hpp"
#include "scenario/registry.hpp"

namespace mcx {
namespace {

FunctionMatrix testFm() {
  return buildFunctionMatrix(parseSop("x1 x2 + !x2 x3 + x1 !x3 + x2 x3"));
}

TEST(DefectExperiment, ZeroRateGivesFullSuccess) {
  DefectExperimentConfig cfg;
  cfg.samples = 20;
  cfg.stuckOpenRate = 0.0;
  const DefectExperimentResult r = runDefectExperiment(testFm(), HybridMapper(), cfg);
  EXPECT_EQ(r.successes, 20u);
  EXPECT_DOUBLE_EQ(r.successRate(), 1.0);
}

TEST(DefectExperiment, SaturatedRateGivesZeroSuccess) {
  DefectExperimentConfig cfg;
  cfg.samples = 10;
  cfg.stuckOpenRate = 1.0;
  const DefectExperimentResult r = runDefectExperiment(testFm(), HybridMapper(), cfg);
  EXPECT_EQ(r.successes, 0u);
}

TEST(DefectExperiment, DeterministicForFixedSeed) {
  DefectExperimentConfig cfg;
  cfg.samples = 50;
  cfg.stuckOpenRate = 0.15;
  cfg.seed = 77;
  const auto a = runDefectExperiment(testFm(), HybridMapper(), cfg);
  const auto b = runDefectExperiment(testFm(), HybridMapper(), cfg);
  EXPECT_EQ(a.successes, b.successes);
  EXPECT_EQ(a.totalBacktracks, b.totalBacktracks);
}

TEST(DefectExperiment, ExactAtLeastAsSuccessful) {
  DefectExperimentConfig cfg;
  cfg.samples = 60;
  cfg.stuckOpenRate = 0.12;
  const auto hba = runDefectExperiment(testFm(), HybridMapper(), cfg);
  const auto ea = runDefectExperiment(testFm(), ExactMapper(), cfg);
  EXPECT_GE(ea.successes, hba.successes);
}

TEST(DefectExperiment, SpareRowsImproveSuccess) {
  DefectExperimentConfig base;
  base.samples = 60;
  base.stuckOpenRate = 0.25;
  DefectExperimentConfig spare = base;
  spare.spareRows = 3;
  const auto without = runDefectExperiment(testFm(), HybridMapper(), base);
  const auto with = runDefectExperiment(testFm(), HybridMapper(), spare);
  EXPECT_GE(with.successes, without.successes);
}

TEST(DefectExperiment, TimingIsPopulated) {
  DefectExperimentConfig cfg;
  cfg.samples = 5;
  const auto r = runDefectExperiment(testFm(), HybridMapper(), cfg);
  EXPECT_EQ(r.perSampleMillis.count, 5u);
  EXPECT_GE(r.meanSeconds(), 0.0);
  EXPECT_GE(r.totalSeconds, 0.0);
}

TEST(DefectExperiment, ResultsAreIdenticalAtAnyThreadCount) {
  DefectExperimentConfig base;
  base.samples = 64;
  base.stuckOpenRate = 0.12;
  base.seed = 0xfeed;
  base.keepMappings = true;
  base.threads = 1;
  const auto reference = runDefectExperiment(testFm(), HybridMapper(), base);
  ASSERT_EQ(reference.mappings.size(), base.samples);

  for (const std::size_t threads : {std::size_t{2}, std::size_t{8}}) {
    DefectExperimentConfig cfg = base;
    cfg.threads = threads;
    const auto got = runDefectExperiment(testFm(), HybridMapper(), cfg);
    EXPECT_EQ(got.successes, reference.successes) << "threads=" << threads;
    EXPECT_EQ(got.totalBacktracks, reference.totalBacktracks) << "threads=" << threads;
    ASSERT_EQ(got.mappings.size(), reference.mappings.size());
    for (std::size_t s = 0; s < got.mappings.size(); ++s) {
      EXPECT_EQ(got.mappings[s].success, reference.mappings[s].success)
          << "threads=" << threads << " sample=" << s;
      EXPECT_EQ(got.mappings[s].rowAssignment, reference.mappings[s].rowAssignment)
          << "threads=" << threads << " sample=" << s;
    }
  }
}

TEST(DefectExperiment, ResultsAreIdenticalAtAnyThreadCountForNonIidModels) {
  // The determinism contract is a property of the engine + every
  // DefectModel, not of the paper's i.i.d. sampler: correlated scenarios
  // draw variable amounts of randomness per sample, which is exactly the
  // pattern that would break a naive shared-stream implementation.
  for (const char* scenario : {"clustered", "lines", "composite"}) {
    DefectExperimentConfig base;
    base.samples = 48;
    base.seed = 0xfeed;
    base.model = makeScenario(scenario, 0.08);
    base.keepMappings = true;
    base.threads = 1;
    const auto reference = runDefectExperiment(testFm(), HybridMapper(), base);

    for (const std::size_t threads : {std::size_t{2}, std::size_t{8}}) {
      DefectExperimentConfig cfg = base;
      cfg.threads = threads;
      const auto got = runDefectExperiment(testFm(), HybridMapper(), cfg);
      EXPECT_EQ(got.successes, reference.successes)
          << "scenario=" << scenario << " threads=" << threads;
      ASSERT_EQ(got.mappings.size(), reference.mappings.size());
      for (std::size_t s = 0; s < got.mappings.size(); ++s)
        EXPECT_EQ(got.mappings[s].rowAssignment, reference.mappings[s].rowAssignment)
            << "scenario=" << scenario << " threads=" << threads << " sample=" << s;
    }
  }
}

TEST(DefectExperiment, MatchesForEachDefectSampleStreams) {
  // The engine and the callback variant must see the same defect draws.
  DefectExperimentConfig cfg;
  cfg.samples = 16;
  cfg.stuckOpenRate = 0.15;
  cfg.seed = 99;
  cfg.keepMappings = true;
  cfg.threads = 4;
  const auto result = runDefectExperiment(testFm(), HybridMapper(), cfg);

  const HybridMapper mapper;
  const FunctionMatrix fm = testFm();
  forEachDefectSample(fm, cfg, [&](std::size_t s, const DefectMap&, const BitMatrix& cm) {
    const MappingResult direct = mapper.map(fm, cm);
    ASSERT_LT(s, result.mappings.size());
    EXPECT_EQ(direct.success, result.mappings[s].success) << "sample=" << s;
    EXPECT_EQ(direct.rowAssignment, result.mappings[s].rowAssignment) << "sample=" << s;
  });
}

TEST(ForEachDefectSample, DeliversRequestedSamples) {
  DefectExperimentConfig cfg;
  cfg.samples = 7;
  cfg.stuckOpenRate = 0.1;
  std::size_t calls = 0;
  const FunctionMatrix fm = testFm();
  forEachDefectSample(fm, cfg, [&](std::size_t idx, const DefectMap& d, const BitMatrix& cm) {
    EXPECT_EQ(idx, calls);
    EXPECT_EQ(d.rows(), fm.rows());
    EXPECT_EQ(cm.rows(), fm.rows());
    EXPECT_EQ(cm.cols(), fm.cols());
    ++calls;
  });
  EXPECT_EQ(calls, 7u);
}

}  // namespace
}  // namespace mcx
