#include "mc/executor.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <limits>
#include <memory>
#include <stdexcept>
#include <thread>
#include <vector>

#include "mc/cancel.hpp"

namespace mcx {
namespace {

TEST(ParallelForEach, CoversEveryIndexExactlyOnce) {
  for (const std::size_t threads : {std::size_t{1}, std::size_t{2}, std::size_t{8}}) {
    std::vector<std::atomic<int>> hits(137);
    parallelForEach(hits.size(), threads,
                    [&](std::size_t, std::size_t i) { hits[i].fetch_add(1); });
    for (std::size_t i = 0; i < hits.size(); ++i) EXPECT_EQ(hits[i].load(), 1) << "i=" << i;
  }
}

TEST(ParallelForEach, WorkerIdsAreDense) {
  const std::size_t threads = 4;
  std::atomic<std::size_t> bad{0};
  parallelForEach(1000, threads, [&](std::size_t worker, std::size_t) {
    if (worker >= threads) bad.fetch_add(1);
  });
  EXPECT_EQ(bad.load(), 0u);
}

TEST(ParallelForEach, EmptyRangeIsANoOp) {
  std::atomic<int> calls{0};
  parallelForEach(0, 4, [&](std::size_t, std::size_t) { calls.fetch_add(1); });
  EXPECT_EQ(calls.load(), 0);
}

TEST(ParallelForEach, PropagatesTheFirstException) {
  for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    EXPECT_THROW(parallelForEach(100, threads,
                                 [](std::size_t, std::size_t i) {
                                   if (i == 37) throw std::runtime_error("boom");
                                 }),
                 std::runtime_error);
  }
}

TEST(ResolveThreadCount, ZeroMeansHardwareConcurrency) {
  EXPECT_GE(resolveThreadCount(0), 1u);
  EXPECT_EQ(resolveThreadCount(3), 3u);
}

TEST(ExecutorPool, CoversEveryIndexAtAnyParallelism) {
  for (const std::size_t threads : {std::size_t{1}, std::size_t{2}, std::size_t{8}}) {
    ExecutorPool pool(threads);
    EXPECT_EQ(pool.slots(), std::max<std::size_t>(threads, 1));
    std::vector<std::atomic<int>> hits(211);
    const bool completed = pool.run(
        hits.size(), [&](std::size_t, std::size_t i) { hits[i].fetch_add(1); });
    EXPECT_TRUE(completed);
    for (std::size_t i = 0; i < hits.size(); ++i) EXPECT_EQ(hits[i].load(), 1) << "i=" << i;
  }
}

TEST(ExecutorPool, SlotIdsStayWithinSlots) {
  ExecutorPool pool(4);
  std::atomic<std::size_t> bad{0};
  pool.run(1000, [&](std::size_t slot, std::size_t) {
    if (slot >= pool.slots()) bad.fetch_add(1);
  });
  EXPECT_EQ(bad.load(), 0u);
}

TEST(ExecutorPool, IsReusableAcrossManyRuns) {
  // One pool, many experiments: the daemon's usage pattern. Each run must
  // cover its own range exactly, with no bleed-through between runs.
  ExecutorPool pool(4);
  for (int round = 0; round < 50; ++round) {
    std::vector<std::atomic<int>> hits(97);
    EXPECT_TRUE(pool.run(hits.size(), [&](std::size_t, std::size_t i) { hits[i].fetch_add(1); }));
    for (std::size_t i = 0; i < hits.size(); ++i) ASSERT_EQ(hits[i].load(), 1);
  }
}

TEST(ExecutorPool, RunStopsEarlyWhenTheTokenFires) {
  ExecutorPool pool(2);
  CancelToken token;
  std::atomic<int> started{0};
  const bool completed = pool.run(
      10000,
      [&](std::size_t, std::size_t) {
        if (started.fetch_add(1) == 10) token.cancel();
      },
      &token);
  EXPECT_FALSE(completed);
  // Well under the full range: only chunks already claimed when the token
  // fired may still run.
  EXPECT_LT(started.load(), 10000);
}

TEST(ExecutorPool, ExpiredDeadlineTokenStopsTheRun) {
  ExecutorPool pool(2);
  CancelToken token;
  token.setDeadlineAfterMillis(5);
  std::atomic<int> calls{0};
  const bool completed = pool.run(
      100000,
      [&](std::size_t, std::size_t) {
        calls.fetch_add(1);
        std::this_thread::sleep_for(std::chrono::microseconds(100));
      },
      &token);
  EXPECT_FALSE(completed);
  EXPECT_LT(calls.load(), 100000);
}

TEST(CancelToken, HugeMillisecondBudgetSaturatesInsteadOfOverflowing) {
  // deadline_ms is client-controllable; 1e300 ms * 1e6 would overflow the
  // int64 nanosecond cast (UB, in practice an instantly-expired deadline).
  // The conversion must saturate to a far-future deadline instead.
  CancelToken token;
  token.setDeadlineAfterMillis(1e300);
  EXPECT_TRUE(token.hasDeadline());
  EXPECT_FALSE(token.expired());
  EXPECT_FALSE(token.stopRequested());
  EXPECT_EQ(token.reason(), CancelToken::StopReason::None);
}

TEST(CancelToken, NonPositiveOrNanBudgetExpiresImmediately) {
  CancelToken zero;
  zero.setDeadlineAfterMillis(0);
  EXPECT_TRUE(zero.expired());

  CancelToken negative;
  negative.setDeadlineAfterMillis(-5);
  EXPECT_TRUE(negative.expired());

  CancelToken nan;
  nan.setDeadlineAfterMillis(std::numeric_limits<double>::quiet_NaN());
  EXPECT_TRUE(nan.expired());
}

TEST(ExecutorPool, PropagatesCallbackExceptions) {
  ExecutorPool pool(4);
  EXPECT_THROW(pool.run(500,
                        [](std::size_t, std::size_t i) {
                          if (i == 137) throw std::runtime_error("boom");
                        }),
               std::runtime_error);
  // The pool survives the throwing run.
  std::atomic<int> calls{0};
  EXPECT_TRUE(pool.run(50, [&](std::size_t, std::size_t) { calls.fetch_add(1); }));
  EXPECT_EQ(calls.load(), 50);
}

TEST(ExecutorPool, DestructionWithWorkInFlightReleasesTheCaller) {
  // A caller blocked in run() while the pool is destroyed on another thread
  // must come back (with completed == false), never deadlock or crash.
  auto pool = std::make_unique<ExecutorPool>(4);
  std::atomic<bool> running{false};
  std::atomic<bool> release{false};
  bool completed = true;

  std::thread caller([&] {
    completed = pool->run(100000, [&](std::size_t, std::size_t) {
      running.store(true);
      while (!release.load()) std::this_thread::sleep_for(std::chrono::milliseconds(1));
    });
  });
  while (!running.load()) std::this_thread::sleep_for(std::chrono::milliseconds(1));

  std::thread destroyer([&] { pool.reset(); });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  release.store(true);  // let the in-flight callbacks finish
  destroyer.join();
  caller.join();
  EXPECT_FALSE(completed) << "an abandoned run must not claim completion";
}

TEST(ExecutorPool, ConcurrentRunsFromSeveralCallersAllComplete) {
  ExecutorPool pool(4);
  constexpr int kCallers = 6;
  std::vector<std::vector<std::atomic<int>>> hits(kCallers);
  for (auto& h : hits) h = std::vector<std::atomic<int>>(143);
  std::vector<std::thread> callers;
  std::atomic<int> failures{0};
  for (int c = 0; c < kCallers; ++c)
    callers.emplace_back([&, c] {
      if (!pool.run(hits[c].size(),
                    [&, c](std::size_t, std::size_t i) { hits[c][i].fetch_add(1); }))
        failures.fetch_add(1);
    });
  for (auto& t : callers) t.join();
  EXPECT_EQ(failures.load(), 0);
  for (int c = 0; c < kCallers; ++c)
    for (std::size_t i = 0; i < hits[c].size(); ++i) ASSERT_EQ(hits[c][i].load(), 1);
}

}  // namespace
}  // namespace mcx
