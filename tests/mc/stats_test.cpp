#include "mc/stats.hpp"

#include <gtest/gtest.h>

namespace mcx {
namespace {

TEST(Summarize, EmptyInput) {
  const SummaryStats s = summarize({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.mean, 0.0);
}

TEST(Summarize, SingleValue) {
  const SummaryStats s = summarize({5.0});
  EXPECT_EQ(s.count, 1u);
  EXPECT_DOUBLE_EQ(s.mean, 5.0);
  EXPECT_DOUBLE_EQ(s.stddev, 0.0);
  EXPECT_DOUBLE_EQ(s.min, 5.0);
  EXPECT_DOUBLE_EQ(s.max, 5.0);
}

TEST(Summarize, KnownSample) {
  const SummaryStats s = summarize({2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0});
  EXPECT_DOUBLE_EQ(s.mean, 5.0);
  EXPECT_NEAR(s.stddev, 2.13809, 1e-4);  // sample stddev
  EXPECT_DOUBLE_EQ(s.min, 2.0);
  EXPECT_DOUBLE_EQ(s.max, 9.0);
}

TEST(Wilson, ZeroTrials) { EXPECT_DOUBLE_EQ(wilsonHalfWidth(0, 0), 0.0); }

TEST(Wilson, ShrinksWithSampleSize) {
  const double w200 = wilsonHalfWidth(100, 200);
  const double w2000 = wilsonHalfWidth(1000, 2000);
  EXPECT_GT(w200, w2000);
  EXPECT_GT(w200, 0.0);
  EXPECT_LT(w200, 0.1);
}

TEST(Wilson, ExtremeProportionsStayBounded) {
  EXPECT_GT(wilsonHalfWidth(200, 200), 0.0);
  EXPECT_LT(wilsonHalfWidth(200, 200), 0.05);
  EXPECT_GT(wilsonHalfWidth(0, 200), 0.0);
}

}  // namespace
}  // namespace mcx
