#include "mc/parallel.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <vector>

namespace mcx {
namespace {

TEST(ParallelForEach, CoversEveryIndexExactlyOnce) {
  for (const std::size_t threads : {std::size_t{1}, std::size_t{2}, std::size_t{8}}) {
    std::vector<std::atomic<int>> hits(137);
    parallelForEach(hits.size(), threads,
                    [&](std::size_t, std::size_t i) { hits[i].fetch_add(1); });
    for (std::size_t i = 0; i < hits.size(); ++i) EXPECT_EQ(hits[i].load(), 1) << "i=" << i;
  }
}

TEST(ParallelForEach, WorkerIdsAreDense) {
  const std::size_t threads = 4;
  std::atomic<std::size_t> bad{0};
  parallelForEach(1000, threads, [&](std::size_t worker, std::size_t) {
    if (worker >= threads) bad.fetch_add(1);
  });
  EXPECT_EQ(bad.load(), 0u);
}

TEST(ParallelForEach, EmptyRangeIsANoOp) {
  std::atomic<int> calls{0};
  parallelForEach(0, 4, [&](std::size_t, std::size_t) { calls.fetch_add(1); });
  EXPECT_EQ(calls.load(), 0);
}

TEST(ParallelForEach, PropagatesTheFirstException) {
  for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    EXPECT_THROW(parallelForEach(100, threads,
                                 [](std::size_t, std::size_t i) {
                                   if (i == 37) throw std::runtime_error("boom");
                                 }),
                 std::runtime_error);
  }
}

TEST(ResolveThreadCount, ZeroMeansHardwareConcurrency) {
  EXPECT_GE(resolveThreadCount(0), 1u);
  EXPECT_EQ(resolveThreadCount(3), 3u);
}

}  // namespace
}  // namespace mcx
