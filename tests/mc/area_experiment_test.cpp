#include "mc/area_experiment.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace mcx {
namespace {

TEST(AreaExperiment, ProducesRequestedSamples) {
  AreaExperimentConfig cfg;
  cfg.nin = 6;
  cfg.samples = 30;
  const AreaExperimentResult r = runAreaExperiment(cfg);
  EXPECT_EQ(r.samples.size(), 30u);
  for (const AreaSample& s : r.samples) {
    EXPECT_GT(s.products, 0u);
    EXPECT_GT(s.twoLevelArea, 0u);
    EXPECT_GT(s.multiLevelArea, 0u);
  }
}

TEST(AreaExperiment, SamplesSortedByProducts) {
  AreaExperimentConfig cfg;
  cfg.nin = 7;
  cfg.samples = 25;
  const AreaExperimentResult r = runAreaExperiment(cfg);
  for (std::size_t i = 1; i < r.samples.size(); ++i)
    EXPECT_GE(r.samples[i].products, r.samples[i - 1].products);
}

TEST(AreaExperiment, TwoLevelAreaFollowsFormula) {
  AreaExperimentConfig cfg;
  cfg.nin = 8;
  cfg.samples = 20;
  const AreaExperimentResult r = runAreaExperiment(cfg);
  for (const AreaSample& s : r.samples)
    EXPECT_EQ(s.twoLevelArea, (s.products + 1) * (2 * 8 + 2));
}

TEST(AreaExperiment, DeterministicForSeed) {
  AreaExperimentConfig cfg;
  cfg.nin = 6;
  cfg.samples = 15;
  cfg.seed = 9;
  const auto a = runAreaExperiment(cfg);
  const auto b = runAreaExperiment(cfg);
  ASSERT_EQ(a.samples.size(), b.samples.size());
  for (std::size_t i = 0; i < a.samples.size(); ++i) {
    EXPECT_EQ(a.samples[i].twoLevelArea, b.samples[i].twoLevelArea);
    EXPECT_EQ(a.samples[i].multiLevelArea, b.samples[i].multiLevelArea);
  }
}

TEST(AreaExperiment, SuccessRateIsAShare) {
  AreaExperimentConfig cfg;
  cfg.nin = 8;
  cfg.samples = 40;
  const AreaExperimentResult r = runAreaExperiment(cfg);
  EXPECT_GE(r.successRate(), 0.0);
  EXPECT_LE(r.successRate(), 1.0);
}

TEST(AreaExperiment, DefectModelAddsYieldMeasurements) {
  AreaExperimentConfig cfg;
  cfg.nin = 5;
  cfg.samples = 10;
  cfg.seed = 4;
  cfg.defectModel = std::make_shared<IidBernoulli>(0.05, 0.0);
  cfg.defectDraws = 12;
  const AreaExperimentResult r = runAreaExperiment(cfg);
  for (const AreaSample& s : r.samples) {
    EXPECT_GE(s.twoLevelYield, 0.0);
    EXPECT_LE(s.twoLevelYield, 1.0);
    EXPECT_GE(s.multiLevelYield, 0.0);
    EXPECT_LE(s.multiLevelYield, 1.0);
  }

  // Unset model keeps the sentinel, and the yield pass stays thread-count
  // invariant (per-sample streams).
  AreaExperimentConfig plain = cfg;
  plain.defectModel = nullptr;
  for (const AreaSample& s : runAreaExperiment(plain).samples)
    EXPECT_DOUBLE_EQ(s.twoLevelYield, -1.0);

  AreaExperimentConfig threaded = cfg;
  threaded.threads = 4;
  const AreaExperimentResult r4 = runAreaExperiment(threaded);
  ASSERT_EQ(r4.samples.size(), r.samples.size());
  for (std::size_t i = 0; i < r.samples.size(); ++i) {
    EXPECT_DOUBLE_EQ(r4.samples[i].twoLevelYield, r.samples[i].twoLevelYield);
    EXPECT_DOUBLE_EQ(r4.samples[i].multiLevelYield, r.samples[i].multiLevelYield);
  }
}

TEST(AreaExperiment, RejectsBadConfig) {
  AreaExperimentConfig cfg;
  cfg.nin = 1;
  EXPECT_THROW(runAreaExperiment(cfg), InvalidArgument);
  cfg.nin = 6;
  cfg.minProducts = 5;
  cfg.maxProducts = 3;
  EXPECT_THROW(runAreaExperiment(cfg), InvalidArgument);
}

}  // namespace
}  // namespace mcx
