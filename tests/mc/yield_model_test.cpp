#include "mc/yield_model.hpp"

#include <gtest/gtest.h>

#include "logic/sop_parser.hpp"
#include "benchdata/registry.hpp"
#include "map/exact_mapper.hpp"
#include "map/hybrid_mapper.hpp"
#include "mc/defect_experiment.hpp"
#include "util/error.hpp"

namespace mcx {
namespace {

FunctionMatrix smallFm() {
  return buildFunctionMatrix(parseSop("x1 x2 + !x2 x3 + x1 !x3 + x2 x3"));
}

TEST(YieldModel, ZeroRateIsCertainty) {
  const YieldEstimate e = estimateYield(smallFm(), 0.0);
  EXPECT_DOUBLE_EQ(e.successProbability, 1.0);
  EXPECT_DOUBLE_EQ(e.expectedStrandedRows, 0.0);
}

TEST(YieldModel, FullRateIsZero) {
  const YieldEstimate e = estimateYield(smallFm(), 1.0);
  EXPECT_DOUBLE_EQ(e.successProbability, 0.0);
}

TEST(YieldModel, MonotoneInRate) {
  const FunctionMatrix fm = smallFm();
  double last = 1.1;
  for (const double q : {0.0, 0.05, 0.1, 0.2, 0.4}) {
    const double p = estimateYield(fm, q).successProbability;
    EXPECT_LE(p, last);
    last = p;
  }
}

TEST(YieldModel, MonotoneInSpares) {
  const FunctionMatrix fm = smallFm();
  double last = -1;
  for (const std::size_t spare : {0u, 1u, 2u, 4u, 8u}) {
    const double p = estimateYield(fm, 0.2, spare).successProbability;
    EXPECT_GE(p, last);
    last = p;
  }
}

TEST(YieldModel, TracksMonteCarloWithDocumentedOptimism) {
  // The independence approximation ignores rows competing for the same
  // healthy crossbar rows, so on a tiny 5-row crossbar the model runs
  // optimistic — it must stay an (approximate) upper bound and within a
  // generous band of the Monte Carlo truth.
  const FunctionMatrix fm = smallFm();
  for (const double q : {0.05, 0.10, 0.15}) {
    DefectExperimentConfig cfg;
    cfg.samples = 400;
    cfg.stuckOpenRate = q;
    const double mc = runDefectExperiment(fm, HybridMapper(), cfg).successRate();
    const double model = estimateYield(fm, q).successProbability;
    EXPECT_GE(model, mc - 0.05) << "q=" << q;  // optimistic bias direction
    EXPECT_NEAR(model, mc, 0.25) << "q=" << q;
  }
}

TEST(YieldModel, TightAtTheExtremes) {
  const FunctionMatrix fm = smallFm();
  for (const double q : {0.005, 0.6}) {
    DefectExperimentConfig cfg;
    cfg.samples = 300;
    cfg.stuckOpenRate = q;
    const double mc = runDefectExperiment(fm, HybridMapper(), cfg).successRate();
    const double model = estimateYield(fm, q).successProbability;
    EXPECT_NEAR(model, mc, 0.08) << "q=" << q;
  }
}

TEST(YieldModel, CrossChecksMonteCarloUnderIidBernoulli) {
  // The analytic estimate and the Monte Carlo engine must agree (within a
  // CI-safe band: Wilson half-width at 400 samples plus the documented
  // approximation error) when the defects really are independent — i.e.
  // under IidBernoulli routed through the scenario API — on a
  // realistically-sized benchmark FM and with the exact mapper (a true
  // maximum matching, the closed form's own assumption). The tiny-FM
  // optimism case is covered by TracksMonteCarloWithDocumentedOptimism.
  //
  // Under the *clustered* models the closed form is expected to diverge,
  // and no test should pin the gap: estimateYield assumes every crosspoint
  // fails independently, so (a) it cannot see that a cluster concentrates
  // its damage on one or two physical rows, leaving the remaining rows
  // cleaner than an i.i.d. world at the same overall rate, and (b) it
  // cannot see cluster-borne stuck-closed cells poisoning whole lines,
  // which kills rows/columns outright. The two effects pull in opposite
  // directions (fewer damaged rows vs. harsher per-row damage), and which
  // wins depends on cluster size and the FM shape — that regime shift is
  // exactly what the scenarios suite's "analytic iid" column makes visible.
  // Points chosen in the model's intended regime (spare-row sizing; at the
  // optimum-size mid-cliff the sequential-greedy approximation runs
  // pessimistic against a true maximum matching — also documented in
  // yield_model.hpp — so only the low-rate point is checked there).
  const FunctionMatrix fm = buildFunctionMatrix(loadBenchmarkFast("misex1").cover);
  struct Point {
    double q;
    std::size_t spares;
    double tolerance;
  };
  for (const Point& point : {Point{0.02, 0, 0.07}, Point{0.05, 2, 0.05},
                             Point{0.10, 2, 0.06}, Point{0.10, 4, 0.05}}) {
    DefectExperimentConfig cfg;
    cfg.samples = 400;
    cfg.seed = 0xc05c;
    cfg.spareRows = point.spares;
    cfg.model = std::make_shared<IidBernoulli>(point.q, 0.0);
    const double mc = runDefectExperiment(fm, ExactMapper(), cfg).successRate();
    const double model = estimateYield(fm, point.q, point.spares).successProbability;
    EXPECT_NEAR(model, mc, point.tolerance)
        << "q=" << point.q << " spares=" << point.spares;
  }
}

TEST(YieldModel, SparesForTargetFindsThreshold) {
  const FunctionMatrix fm = smallFm();
  const std::size_t spares = sparesForTargetYield(fm, 0.3, 0.95, 32);
  ASSERT_LE(spares, 32u);
  EXPECT_GE(estimateYield(fm, 0.3, spares).successProbability, 0.95);
  if (spares > 0) {
    EXPECT_LT(estimateYield(fm, 0.3, spares - 1).successProbability, 0.95);
  }
}

TEST(YieldModel, Validation) {
  EXPECT_THROW(estimateYield(smallFm(), -0.1), InvalidArgument);
  EXPECT_THROW(sparesForTargetYield(smallFm(), 0.1, 1.5), InvalidArgument);
}

}  // namespace
}  // namespace mcx
