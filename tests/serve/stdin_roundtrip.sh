# End-to-end stdin/stdout round trip through a real mcx_serve process:
# ok, parse-error and overload-free mixed traffic; counters on stderr.
#
# Usage: sh stdin_roundtrip.sh <path-to-mcx_serve>
set -e
SERVE="$1"
[ -x "$SERVE" ] || { echo "mcx_serve binary not found: $SERVE"; exit 1; }

workdir=$(mktemp -d)
trap 'rm -rf "$workdir"' EXIT

cat > "$workdir/requests.jsonl" <<'EOF'
{"id": "ok-1", "circuit": "rd53-min", "mapper": "hba", "samples": 5, "seed": 7}
{"id": "bad-json", "circuit": "rd53-min",
{"id": "bad-circuit", "circuit": "no-such-circuit", "samples": 5}
{"id": "ok-2", "circuit": "rd53-min", "scenario": "clustered", "rate": 0.05, "samples": 5}
{"id": "stats-1", "type": "stats"}
EOF

"$SERVE" --queue-depth 8 --request-threads 1 --pool-threads 1 \
  < "$workdir/requests.jsonl" > "$workdir/out.jsonl" 2> "$workdir/err.log"
status=$?
[ "$status" -eq 0 ] || { echo "daemon exited $status"; cat "$workdir/err.log"; exit 1; }

fail() { echo "FAIL: $1"; echo "--- stdout:"; cat "$workdir/out.jsonl"; echo "--- stderr:"; cat "$workdir/err.log"; exit 1; }

[ "$(wc -l < "$workdir/out.jsonl")" -eq 5 ] || fail "expected 5 response lines"
grep -q '"id": "ok-1"' "$workdir/out.jsonl" || fail "missing ok-1 response"
grep '"id": "ok-1"' "$workdir/out.jsonl" | grep -q '"status": "ok"' || fail "ok-1 not ok"
grep '"id": "ok-1"' "$workdir/out.jsonl" | grep -q '"completed": 5' || fail "ok-1 completed != 5"
# The truncated line has no recoverable id but must still answer `parse`.
grep -q '"code": "parse"' "$workdir/out.jsonl" || fail "no parse error emitted"
grep '"id": "bad-circuit"' "$workdir/out.jsonl" | grep -q '"code": "parse"' \
  || fail "bad-circuit not rejected as parse"
grep '"id": "ok-2"' "$workdir/out.jsonl" | grep -q '"status": "ok"' || fail "ok-2 not ok"
# The stats request answers inline with the service counters and the
# process-wide metrics registry (per-stage latency histograms included).
grep '"id": "stats-1"' "$workdir/out.jsonl" | grep -q '"status": "ok"' \
  || fail "stats request not answered ok"
grep '"id": "stats-1"' "$workdir/out.jsonl" | grep -q '"registry"' \
  || fail "stats response missing registry snapshot"
grep '"id": "stats-1"' "$workdir/out.jsonl" | grep -q '"serve.parse"' \
  || fail "stats response missing per-stage histograms"
# Counters land on stderr as one JSON object after the drain.
grep -q '"received": 5' "$workdir/err.log" || fail "counters missing received=5"
grep -q '"completed_ok": 2' "$workdir/err.log" || fail "counters missing completed_ok=2"
grep -q '"parse_errors": 2' "$workdir/err.log" || fail "counters missing parse_errors=2"
echo "PASS"
