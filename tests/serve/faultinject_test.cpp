// The fault-injection layer itself: arming semantics, plan kinds, spec
// parsing — the machinery every failure-path test in this directory leans on.
#include "util/faultinject.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <new>
#include <vector>

#include "util/error.hpp"

namespace mcx {
namespace {

using faultinject::Kind;
using faultinject::Plan;

class FaultInjectTest : public ::testing::Test {
protected:
  void TearDown() override { faultinject::reset(); }
};

TEST_F(FaultInjectTest, UnarmedSiteIsANoOp) {
  EXPECT_NO_THROW(faultinject::onSite("mc.sample"));
  EXPECT_EQ(faultinject::hits("mc.sample"), 0u);
}

TEST_F(FaultInjectTest, ArmedThrowSiteRaisesFaultInjected) {
  faultinject::arm("mc.sample", {Kind::Throw, 0, 0, UINT64_MAX});
  EXPECT_THROW(faultinject::onSite("mc.sample"), FaultInjected);
  // Other sites stay unaffected while one is armed.
  EXPECT_NO_THROW(faultinject::onSite("circuit.synthesize"));
  EXPECT_EQ(faultinject::hits("mc.sample"), 1u);
}

TEST_F(FaultInjectTest, BadAllocKindRaisesBadAlloc) {
  faultinject::arm("serve.enqueue", {Kind::BadAlloc, 0, 0, UINT64_MAX});
  EXPECT_THROW(faultinject::onSite("serve.enqueue"), std::bad_alloc);
}

TEST_F(FaultInjectTest, StallKindSleeps) {
  faultinject::arm("mc.sample", {Kind::Stall, 20.0, 0, UINT64_MAX});
  const auto start = std::chrono::steady_clock::now();
  faultinject::onSite("mc.sample");
  const auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_GE(std::chrono::duration_cast<std::chrono::milliseconds>(elapsed).count(), 15);
}

TEST_F(FaultInjectTest, SkipLetsEarlyHitsPass) {
  faultinject::arm("mc.sample", {Kind::Throw, 0, /*skip=*/2, UINT64_MAX});
  EXPECT_NO_THROW(faultinject::onSite("mc.sample"));
  EXPECT_NO_THROW(faultinject::onSite("mc.sample"));
  EXPECT_THROW(faultinject::onSite("mc.sample"), FaultInjected);
}

TEST_F(FaultInjectTest, TimesBoundsTheFires) {
  faultinject::arm("mc.sample", {Kind::Throw, 0, 0, /*times=*/1});
  EXPECT_THROW(faultinject::onSite("mc.sample"), FaultInjected);
  EXPECT_NO_THROW(faultinject::onSite("mc.sample"));  // budget spent
  EXPECT_EQ(faultinject::hits("mc.sample"), 2u);      // hit counting continues
}

TEST_F(FaultInjectTest, DisarmStopsFiringButKeepsCounts) {
  faultinject::arm("mc.sample", {Kind::Throw, 0, 0, UINT64_MAX});
  EXPECT_THROW(faultinject::onSite("mc.sample"), FaultInjected);
  faultinject::disarm("mc.sample");
  EXPECT_NO_THROW(faultinject::onSite("mc.sample"));
  EXPECT_EQ(faultinject::hits("mc.sample"), 1u);
}

TEST_F(FaultInjectTest, ResetClearsEverything) {
  faultinject::arm("mc.sample", {Kind::Throw, 0, 0, UINT64_MAX});
  EXPECT_THROW(faultinject::onSite("mc.sample"), FaultInjected);
  faultinject::reset();
  EXPECT_NO_THROW(faultinject::onSite("mc.sample"));
  EXPECT_EQ(faultinject::hits("mc.sample"), 0u);
}

TEST_F(FaultInjectTest, ArmFromSpecParsesTheEnvFormat) {
  faultinject::armFromSpec("circuit.synthesize=throw;mc.sample=stall:1;serve.enqueue=badalloc");
  EXPECT_THROW(faultinject::onSite("circuit.synthesize"), FaultInjected);
  EXPECT_NO_THROW(faultinject::onSite("mc.sample"));  // stall, doesn't throw
  EXPECT_THROW(faultinject::onSite("serve.enqueue"), std::bad_alloc);
}

TEST_F(FaultInjectTest, ArmFromSpecRejectsMalformedEntries) {
  EXPECT_THROW(faultinject::armFromSpec("mc.sample"), ParseError);
  EXPECT_THROW(faultinject::armFromSpec("mc.sample=explode"), ParseError);
  EXPECT_THROW(faultinject::armFromSpec("mc.sample=stall:abc"), ParseError);
  EXPECT_THROW(faultinject::armFromSpec("=throw"), ParseError);
}

TEST_F(FaultInjectTest, ArmFromSpecParsesSkipModifier) {
  // throw@2: let two hits pass, fail from the third on.
  faultinject::armFromSpec("mc.sample=throw@2");
  EXPECT_NO_THROW(faultinject::onSite("mc.sample"));
  EXPECT_NO_THROW(faultinject::onSite("mc.sample"));
  EXPECT_THROW(faultinject::onSite("mc.sample"), FaultInjected);
  EXPECT_THROW(faultinject::onSite("mc.sample"), FaultInjected);
}

TEST_F(FaultInjectTest, ArmFromSpecParsesTimesModifier) {
  // badallocx1: fire once, then fall dormant.
  faultinject::armFromSpec("serve.enqueue=badallocx1");
  EXPECT_THROW(faultinject::onSite("serve.enqueue"), std::bad_alloc);
  EXPECT_NO_THROW(faultinject::onSite("serve.enqueue"));
}

TEST_F(FaultInjectTest, ArmFromSpecCombinesSkipAndTimesOnAnyKind) {
  // Exactly the third synthesis fails; stall keeps its millis argument.
  faultinject::armFromSpec("circuit.synthesize=throw@2x1;mc.sample=stall:1@1x1");
  EXPECT_NO_THROW(faultinject::onSite("circuit.synthesize"));
  EXPECT_NO_THROW(faultinject::onSite("circuit.synthesize"));
  EXPECT_THROW(faultinject::onSite("circuit.synthesize"), FaultInjected);
  EXPECT_NO_THROW(faultinject::onSite("circuit.synthesize"));  // x1 spent
  EXPECT_NO_THROW(faultinject::onSite("mc.sample"));  // skipped, then stalls
  EXPECT_NO_THROW(faultinject::onSite("mc.sample"));
}

TEST_F(FaultInjectTest, ProbabilityZeroNeverFiresButCounts) {
  Plan plan{Kind::Throw, 0, 0, UINT64_MAX};
  plan.probability = 0.0;
  faultinject::arm("mc.sample", plan);
  for (int i = 0; i < 50; ++i) EXPECT_NO_THROW(faultinject::onSite("mc.sample"));
  EXPECT_EQ(faultinject::hits("mc.sample"), 50u);
  EXPECT_EQ(faultinject::fired("mc.sample"), 0u);
}

TEST_F(FaultInjectTest, ProbabilityDrawsAreSeededAndReplayable) {
  // The same seed must reproduce the exact fire pattern; a fractional
  // probability must fire some but not all of a long hit run.
  auto firePattern = [] {
    faultinject::seed(42);
    Plan plan{Kind::Throw, 0, 0, UINT64_MAX};
    plan.probability = 0.3;
    faultinject::arm("mc.sample", plan);
    std::vector<bool> fires;
    for (int i = 0; i < 200; ++i) {
      bool fired = false;
      try {
        faultinject::onSite("mc.sample");
      } catch (const FaultInjected&) {
        fired = true;
      }
      fires.push_back(fired);
    }
    faultinject::reset();
    return fires;
  };
  const std::vector<bool> first = firePattern();
  const std::vector<bool> second = firePattern();
  EXPECT_EQ(first, second);
  const std::size_t fires =
      static_cast<std::size_t>(std::count(first.begin(), first.end(), true));
  EXPECT_GT(fires, 20u) << "p=0.3 over 200 hits";
  EXPECT_LT(fires, 120u);
}

TEST_F(FaultInjectTest, ArmFromSpecParsesProbabilityModifier) {
  faultinject::seed(7);
  faultinject::armFromSpec("mc.sample=throw%0;serve.enqueue=badalloc%100");
  EXPECT_NO_THROW(faultinject::onSite("mc.sample"));
  EXPECT_THROW(faultinject::onSite("serve.enqueue"), std::bad_alloc);

  // Probability composes with the other modifiers on any kind.
  faultinject::armFromSpec("circuit.synthesize=stall:1@1x2%100");
  EXPECT_NO_THROW(faultinject::onSite("circuit.synthesize"));
  EXPECT_EQ(faultinject::fired("circuit.synthesize"), 0u);  // skip window
  EXPECT_NO_THROW(faultinject::onSite("circuit.synthesize"));
  EXPECT_EQ(faultinject::fired("circuit.synthesize"), 1u);
}

TEST_F(FaultInjectTest, ArmFromSpecRejectsBadProbability) {
  EXPECT_THROW(faultinject::armFromSpec("mc.sample=throw%101"), ParseError);
  EXPECT_THROW(faultinject::armFromSpec("mc.sample=throw%"), ParseError);
}

TEST_F(FaultInjectTest, ArmFromSpecRejectsMalformedModifiers) {
  // Dangling or non-numeric modifiers fall through to the kind matcher and
  // are rejected as unknown kinds; overflow is a count error.
  EXPECT_THROW(faultinject::armFromSpec("mc.sample=throw@"), ParseError);
  EXPECT_THROW(faultinject::armFromSpec("mc.sample=throw@x3"), ParseError);
  EXPECT_THROW(faultinject::armFromSpec("mc.sample=throwx"), ParseError);
  EXPECT_THROW(faultinject::armFromSpec("mc.sample=throwx99999999999999999999999"),
               ParseError);
}

}  // namespace
}  // namespace mcx
