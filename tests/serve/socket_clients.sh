# Unix-socket transport: a second client connecting while the first is
# still active, traffic on both, responses routed to the originating
# connection. Regression for the event loop scanning a pollfd row for a
# connection accepted AFTER the poll was built (out-of-bounds vector read
# that could wedge the loop on garbage revents).
#
# Usage: sh socket_clients.sh <path-to-mcx_serve>
SERVE="$1"
[ -x "$SERVE" ] || { echo "mcx_serve binary not found: $SERVE"; exit 1; }
command -v python3 >/dev/null 2>&1 || { echo "SKIP: python3 not available"; exit 77; }

workdir=$(mktemp -d)
trap 'rm -rf "$workdir"' EXIT
sock="$workdir/mcx.sock"

"$SERVE" --queue-depth 8 --request-threads 1 --pool-threads 1 --socket "$sock" \
  > "$workdir/out.log" 2> "$workdir/err.log" &
daemon=$!

i=0
while [ ! -S "$sock" ] && [ "$i" -lt 50 ]; do sleep 0.1; i=$((i + 1)); done
[ -S "$sock" ] || { echo "FAIL: socket never appeared"; cat "$workdir/err.log"; kill "$daemon" 2>/dev/null; exit 1; }

python3 - "$sock" > "$workdir/client.log" 2>&1 <<'EOF'
import json
import socket
import sys

path = sys.argv[1]

def connect():
    s = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    s.settimeout(30)
    s.connect(path)
    return s, s.makefile("rw")

def ask(f, request):
    f.write(json.dumps(request) + "\n")
    f.flush()
    response = json.loads(f.readline())
    assert response["id"] == request["id"], response
    assert response["status"] == "ok", response
    assert response["completed"] == request["samples"], response
    return response

a_sock, a = connect()
ask(a, {"id": "a1", "circuit": "rd53-min", "samples": 5, "seed": 7})

# The regression: accept a second connection while the first is live. The
# buggy loop then read one pollfd past the end and could hang on a blocking
# read of the fresh, silent socket — ask() on it proves the loop survived.
b_sock, b = connect()
ask(b, {"id": "b1", "circuit": "rd53-min", "samples": 5, "seed": 8})

# And the first connection still serves afterwards, with its own routing.
ask(a, {"id": "a2", "circuit": "rd53-min", "samples": 5, "seed": 9})

for f in (a, b):
    f.close()
for s in (a_sock, b_sock):
    s.close()
print("CLIENT-OK")
EOF
client=$?

kill -TERM "$daemon" 2>/dev/null
wait "$daemon"
status=$?

fail() { echo "FAIL: $1"; echo "--- client:"; cat "$workdir/client.log"; echo "--- stderr:"; cat "$workdir/err.log"; exit 1; }

[ "$client" -eq 0 ] || fail "client script failed"
grep -q 'CLIENT-OK' "$workdir/client.log" || fail "client did not finish"
[ "$status" -eq 0 ] || fail "daemon exited $status after SIGTERM (want 0)"
grep -q '"completed_ok": 3' "$workdir/err.log" || fail "counters missing completed_ok=3"
echo "PASS"
