// Resource governance: cost-aware admission, per-client token buckets,
// queue aging, batch-lane shedding, sample-count degradation, the watchdog
// and the health probe. The fault-injection layer manufactures slow and
// stuck requests; each test drives a private ExperimentService.
#include <gtest/gtest.h>

#include <chrono>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "scenario/spec.hpp"
#include "serve/service.hpp"
#include "util/faultinject.hpp"

namespace mcx::serve {
namespace {

using faultinject::Kind;

/// Collects response lines (thread-safe) and finds them by id.
class ResponseLog {
public:
  ExperimentService::Sink sink() {
    return [this](const std::string& line) {
      const std::lock_guard<std::mutex> lock(mutex_);
      lines_.push_back(line);
    };
  }
  std::size_t size() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return lines_.size();
  }
  SpecValue response(const std::string& id) const {
    const std::lock_guard<std::mutex> lock(mutex_);
    for (const std::string& line : lines_) {
      const SpecValue doc = parseSpec(line);
      if (doc.stringOr("id", "") == id) return doc;
    }
    ADD_FAILURE() << "no response for id " << id;
    return SpecValue{};
  }
  bool has(const std::string& id) const {
    const std::lock_guard<std::mutex> lock(mutex_);
    for (const std::string& line : lines_) {
      const SpecValue doc = parseSpec(line);
      if (doc.stringOr("id", "") == id) return true;
    }
    return false;
  }

private:
  mutable std::mutex mutex_;
  std::vector<std::string> lines_;
};

std::string errorCode(const SpecValue& response) {
  const SpecValue* error = response.find("error");
  if (error == nullptr) return "";
  return error->stringOr("code", "");
}

std::string errorMessage(const SpecValue& response) {
  const SpecValue* error = response.find("error");
  if (error == nullptr) return "";
  return error->stringOr("message", "");
}

template <typename Fn>
bool waitFor(const Fn& done) {
  for (int i = 0; i < 500; ++i) {
    if (done()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  return done();
}

std::string request(const std::string& id, const std::string& extra = {}) {
  return R"({"id":")" + id + R"(","circuit":"gen:parity4","samples":5)" +
         (extra.empty() ? "" : "," + extra) + "}";
}

class GovernanceTest : public ::testing::Test {
protected:
  void TearDown() override { faultinject::reset(); }

  static ServiceOptions smallOptions() {
    ServiceOptions options;
    options.queueDepth = 4;
    options.requestThreads = 1;
    options.poolThreads = 1;
    return options;
  }
};

TEST_F(GovernanceTest, QueueCostBudgetShedsExpensiveRequests) {
  // Budget below one unknown-circuit request's cost (samples x 1024):
  // a cheap request (5 x 1024) fits, a heavy one (200 x 1024) is shed with
  // the typed overloaded error naming its cost.
  ServiceOptions options = smallOptions();
  options.queueCostBudget = 100 * 1024;
  ResponseLog log;
  ExperimentService service(options, log.sink());

  // Stall the worker so admission happens against an occupied queue.
  faultinject::arm("mc.sample", {Kind::Stall, 50.0, 0, 1});
  service.submit(request("warm"));
  ASSERT_TRUE(waitFor([&] { return faultinject::hits("mc.sample") >= 1; }));

  service.submit(request("cheap"));
  service.submit(R"({"id":"heavy","circuit":"gen:parity4","samples":200})");
  const SpecValue heavy = log.response("heavy");
  EXPECT_EQ(errorCode(heavy), "overloaded");
  EXPECT_NE(errorMessage(heavy).find("cost"), std::string::npos);

  service.drain();
  EXPECT_EQ(log.response("cheap").stringOr("status", ""), "ok");
  EXPECT_EQ(service.counters().costShed, 1u);
  EXPECT_EQ(service.counters().shedOverloaded, 1u) << "cost sheds are overloaded sheds";
}

TEST_F(GovernanceTest, CostModelLearnsRealizedArea) {
  // After one execution the circuit's cost is its true realized area, not
  // the unknown-circuit default: a budget that sheds the default-priced
  // request admits the same request once the model has learned.
  // gen:parity4 realizes far smaller than the 1024-cell default.
  ServiceOptions options = smallOptions();
  options.queueCostBudget = 4000;  // below 5 x 1024 default, above 5 x true area
  ResponseLog log;
  ExperimentService service(options, log.sink());

  service.submit(request("before"));
  EXPECT_EQ(errorCode(log.response("before")), "overloaded")
      << "unknown circuit priced at the default must exceed the tight budget";

  // One sample fits the budget at default pricing and teaches the model.
  service.submit(R"({"id":"teach","circuit":"gen:parity4","samples":1})");
  ASSERT_TRUE(waitFor([&] { return log.has("teach"); }));
  EXPECT_EQ(log.response("teach").stringOr("status", ""), "ok");

  service.submit(request("after"));
  service.drain();
  EXPECT_EQ(log.response("after").stringOr("status", ""), "ok")
      << "learned pricing must fit the budget the default exceeded";
  EXPECT_EQ(service.counters().costShed, 1u);
}

TEST_F(GovernanceTest, ClientBucketShedsOnlyTheGreedyClient) {
  ServiceOptions options = smallOptions();
  options.queueDepth = 64;
  options.clientCostRate = 1;             // effectively no refill during the test
  options.clientCostBurst = 12 * 1024.0;  // two default-priced requests, not three
  ResponseLog log;
  ExperimentService service(options, log.sink());

  // Keep the worker busy while the clients submit, so every request is
  // priced at the unknown-circuit default (5 x 1024) and admission order is
  // deterministic.
  faultinject::arm("mc.sample", {Kind::Stall, 60.0, 0, 1});
  service.submit(request("slow"));
  ASSERT_TRUE(waitFor([&] { return faultinject::hits("mc.sample") >= 1; }));

  service.submit(request("a1"), nullptr, "alice");
  service.submit(request("a2"), nullptr, "alice");
  service.submit(request("a3"), nullptr, "alice");
  service.submit(request("b1"), nullptr, "bob");
  service.drain();

  EXPECT_EQ(errorCode(log.response("a3")), "overloaded")
      << "alice's third request exceeds her bucket";
  EXPECT_EQ(log.response("a1").stringOr("status", ""), "ok");
  EXPECT_EQ(log.response("a2").stringOr("status", ""), "ok");
  EXPECT_EQ(log.response("b1").stringOr("status", ""), "ok")
      << "bob has his own bucket";
  EXPECT_EQ(service.counters().clientShed, 1u);
}

TEST_F(GovernanceTest, ExpiredQueuedRequestsAreSweptBeforeWork) {
  // One slow request occupies the worker while three 5 ms-deadline requests
  // expire in the queue; the sweep answers all of them the moment the
  // worker dequeues, without running their synthesis or samples.
  ResponseLog log;
  ExperimentService service(smallOptions(), log.sink());
  faultinject::arm("mc.sample", {Kind::Stall, 60.0, 0, 1});

  service.submit(request("slow"));
  ASSERT_TRUE(waitFor([&] { return faultinject::hits("mc.sample") >= 1; }));
  service.submit(request("q1", R"("deadline_ms":5)"));
  service.submit(request("q2", R"("deadline_ms":5)"));
  service.submit(request("q3", R"("deadline_ms":5)"));
  service.drain();

  for (const char* id : {"q1", "q2", "q3"}) {
    const SpecValue doc = log.response(id);
    EXPECT_EQ(errorCode(doc), "deadline_exceeded") << id;
    EXPECT_EQ(doc.find("samples"), nullptr)
        << "expired-in-queue answers carry no partial counts: nothing ran";
  }
  const ServiceCounters counters = service.counters();
  EXPECT_EQ(counters.agedOut, 3u);
  EXPECT_EQ(counters.deadlineExceeded, 3u);
  EXPECT_EQ(counters.completedOk, 1u);
}

TEST_F(GovernanceTest, BatchLaneIsShedFirstUnderLoad) {
  // Queue depth 4, shed fraction 0.5: with >= 2 queued, new batch requests
  // are shed while interactive ones are still admitted.
  ResponseLog log;
  ExperimentService service(smallOptions(), log.sink());
  faultinject::arm("mc.sample", {Kind::Stall, 60.0, 0, 1});

  service.submit(request("slow"));
  ASSERT_TRUE(waitFor([&] { return faultinject::hits("mc.sample") >= 1; }));
  service.submit(request("q1"));
  service.submit(request("q2"));
  service.submit(request("batch", R"("lane":"batch")"));
  service.submit(request("inter", R"("lane":"interactive")"));
  service.drain();

  EXPECT_EQ(errorCode(log.response("batch")), "overloaded");
  EXPECT_EQ(log.response("inter").stringOr("status", ""), "ok");
  EXPECT_EQ(service.counters().batchShed, 1u);
}

TEST_F(GovernanceTest, BatchLaneRunsNormallyWhenIdle) {
  ResponseLog log;
  ExperimentService service(smallOptions(), log.sink());
  service.submit(request("b", R"("lane":"batch")"));
  service.drain();
  EXPECT_EQ(log.response("b").stringOr("status", ""), "ok");
  EXPECT_EQ(service.counters().batchShed, 0u);
}

TEST_F(GovernanceTest, DegradationTrimsSamplesToTheRemainingBudget) {
  ServiceOptions options = smallOptions();
  options.degradeSamples = true;
  ResponseLog log;
  ExperimentService service(options, log.sink());

  // Teach the per-sample EWMA an expensive rate: 20 ms per sample.
  faultinject::arm("mc.sample", {Kind::Stall, 20.0, 0, 5});
  service.submit(request("teach"));
  ASSERT_TRUE(waitFor([&] { return log.has("teach"); }));
  faultinject::reset();

  // 1000 samples against a 200 ms deadline cannot fit at ~20 ms/sample:
  // the trimmer cuts the count, the response is ok and labeled degraded.
  service.submit(R"({"id":"big","circuit":"gen:parity4","samples":1000,)"
                 R"("deadline_ms":200})");
  service.drain();

  const SpecValue big = log.response("big");
  ASSERT_EQ(big.stringOr("status", ""), "ok");
  EXPECT_EQ(big.boolOr("degraded", false), true);
  EXPECT_EQ(big.numberOr("requested_samples", 0), 1000);
  EXPECT_LT(big.numberOr("samples", 1000), 1000);
  EXPECT_GE(big.numberOr("completed", 0), 1);
  EXPECT_EQ(service.counters().degradedResponses, 1u);
}

TEST_F(GovernanceTest, DegradationOffByDefault) {
  ResponseLog log;
  ExperimentService service(smallOptions(), log.sink());
  service.submit(request("r", R"("deadline_ms":60000)"));
  service.drain();
  const SpecValue doc = log.response("r");
  EXPECT_EQ(doc.stringOr("status", ""), "ok");
  EXPECT_EQ(doc.find("degraded"), nullptr)
      << "no degraded label unless the trimmer actually ran";
  EXPECT_EQ(doc.numberOr("samples", 0), 5);
}

TEST_F(GovernanceTest, WatchdogFlagsStuckRequests) {
  ServiceOptions options = smallOptions();
  options.watchdogFactor = 3;  // cold histogram -> the 100 ms floor applies
  ResponseLog log;
  ExperimentService service(options, log.sink());

  // One sample stalls 900 ms: past the 100 ms floor AND past 3x any p99 the
  // process-global histogram may have accumulated from sibling tests, the
  // watchdog must flag the request while it is still in flight.
  faultinject::arm("mc.sample", {Kind::Stall, 900.0, 0, 1});
  service.submit(request("stuck"));
  EXPECT_TRUE(waitFor([&] { return service.counters().watchdogFlags >= 1; }));
  service.drain();
  EXPECT_EQ(log.response("stuck").stringOr("status", ""), "ok")
      << "flagging is observation, not cancellation";
  EXPECT_EQ(service.counters().watchdogFlags, 1u);
}

TEST_F(GovernanceTest, HealthProbeReportsLoadAndStatus) {
  ResponseLog log;
  ExperimentService service(smallOptions(), log.sink());

  service.submit(R"({"type":"health","id":"h1"})");
  const SpecValue idle = log.response("h1");
  ASSERT_EQ(idle.stringOr("status", ""), "ok");
  const SpecValue* health = idle.find("health");
  ASSERT_NE(health, nullptr);
  EXPECT_EQ(health->stringOr("status", ""), "ok");
  EXPECT_EQ(health->numberOr("queue_depth", -1), 0);
  EXPECT_GT(health->numberOr("rss_bytes", 0), 0) << "RSS sampling (Linux)";
  EXPECT_EQ(service.counters().healthRequests, 1u);
}

TEST_F(GovernanceTest, StatsAndHealthBypassAFullQueue) {
  // The satellite contract: fill the queue to the brim (worker stalled,
  // depth exhausted, experiment requests shedding) and both control-plane
  // probes still answer synchronously.
  ResponseLog log;
  ExperimentService service(smallOptions(), log.sink());
  faultinject::arm("mc.sample", {Kind::Stall, 150.0, 0, 1});

  service.submit(request("slow"));
  ASSERT_TRUE(waitFor([&] { return faultinject::hits("mc.sample") >= 1; }));
  for (int i = 0; i < 6; ++i) service.submit(request("fill" + std::to_string(i)));
  ASSERT_GE(service.counters().shedOverloaded, 1u) << "the queue really is full";

  service.submit(R"({"type":"stats","id":"s"})");
  service.submit(R"({"type":"health","id":"h"})");
  const SpecValue stats = log.response("s");
  EXPECT_EQ(stats.stringOr("status", ""), "ok");
  EXPECT_NE(stats.find("stats"), nullptr);
  const SpecValue health = log.response("h");
  EXPECT_EQ(health.stringOr("status", ""), "ok");
  ASSERT_NE(health.find("health"), nullptr);
  EXPECT_EQ(health.find("health")->stringOr("status", ""), "degraded")
      << "a full queue is overload mode";

  service.drain();
  // Probes are not experiment requests: accepted + shed + probes == received.
  const ServiceCounters c = service.counters();
  EXPECT_EQ(c.received,
            c.accepted + c.shedOverloaded + c.statsRequests + c.healthRequests);
}

TEST_F(GovernanceTest, HealthReportsDrainingStatus) {
  ResponseLog log;
  ExperimentService service(smallOptions(), log.sink());
  service.drain();
  service.submit(R"({"type":"health","id":"h"})");
  const SpecValue doc = log.response("h");
  ASSERT_NE(doc.find("health"), nullptr);
  EXPECT_EQ(doc.find("health")->stringOr("status", ""), "draining");
}

TEST_F(GovernanceTest, OversizedLineCountsAndReportsLength) {
  ServiceOptions options = smallOptions();
  options.limits.maxLineBytes = 64;
  ResponseLog log;
  ExperimentService service(options, log.sink());

  const std::string big =
      R"({"id":"big","circuit":")" + std::string(128, 'x') + R"("})";
  service.submit(big);
  const SpecValue doc = log.response("big");
  EXPECT_EQ(errorCode(doc), "parse");
  EXPECT_NE(errorMessage(doc).find(std::to_string(big.size())), std::string::npos)
      << "the observed length must be in the message";
  EXPECT_EQ(service.counters().oversizedLines, 1u);
  EXPECT_EQ(service.counters().parseErrors, 1u);
}

TEST_F(GovernanceTest, LaneParsingRejectsUnknownLane) {
  ResponseLog log;
  ExperimentService service(smallOptions(), log.sink());
  service.submit(request("bad", R"("lane":"express")"));
  EXPECT_EQ(errorCode(log.response("bad")), "parse");
}

}  // namespace
}  // namespace mcx::serve
