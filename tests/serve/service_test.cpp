// ExperimentService behaviour under adversity: deadline enforcement with
// partial counts, load shedding that never blocks in-flight work,
// mid-experiment cancellation, clean drain, structured internal failures —
// the fault-injection layer manufactures the adversity on demand.
#include "serve/service.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "scenario/spec.hpp"
#include "util/faultinject.hpp"

namespace mcx::serve {
namespace {

using faultinject::Kind;

/// Collects response lines (thread-safe) and finds them by id.
class ResponseLog {
public:
  ExperimentService::Sink sink() {
    return [this](const std::string& line) {
      const std::lock_guard<std::mutex> lock(mutex_);
      lines_.push_back(line);
    };
  }
  std::size_t size() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return lines_.size();
  }
  /// Parsed response for @p id; fails the test when absent.
  SpecValue response(const std::string& id) const {
    const std::lock_guard<std::mutex> lock(mutex_);
    for (const std::string& line : lines_) {
      const SpecValue doc = parseSpec(line);
      if (doc.stringOr("id", "") == id) return doc;
    }
    ADD_FAILURE() << "no response for id " << id;
    return SpecValue{};
  }
  bool has(const std::string& id) const {
    const std::lock_guard<std::mutex> lock(mutex_);
    for (const std::string& line : lines_) {
      const SpecValue doc = parseSpec(line);
      if (doc.stringOr("id", "") == id) return true;
    }
    return false;
  }

private:
  mutable std::mutex mutex_;
  std::vector<std::string> lines_;
};

std::string errorCode(const SpecValue& response) {
  const SpecValue* error = response.find("error");
  if (error == nullptr) return "";
  return error->stringOr("code", "");
}

/// Spin until @p done or ~5s; the faultinject hit counters make "the worker
/// reached the experiment" observable without sleeping blind.
template <typename Fn>
bool waitFor(const Fn& done) {
  for (int i = 0; i < 500; ++i) {
    if (done()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  return done();
}

class ServiceTest : public ::testing::Test {
protected:
  void TearDown() override { faultinject::reset(); }

  static ServiceOptions smallOptions() {
    ServiceOptions options;
    options.queueDepth = 4;
    options.requestThreads = 1;
    options.poolThreads = 1;
    return options;
  }
};

TEST_F(ServiceTest, CompletesSimpleRequestsAndCountsThem) {
  ResponseLog log;
  ExperimentService service(smallOptions(), log.sink());
  service.submit(R"({"id": "a", "circuit": "rd53-min", "samples": 5, "seed": 7})");
  service.submit(R"({"id": "b", "circuit": "rd53-min", "samples": 5, "seed": 8})");
  service.drain();

  const SpecValue a = log.response("a");
  EXPECT_EQ(a.stringOr("status", ""), "ok");
  EXPECT_EQ(a.numberOr("completed", 0), 5.0);
  EXPECT_EQ(log.response("b").stringOr("status", ""), "ok");

  const ServiceCounters counters = service.counters();
  EXPECT_EQ(counters.received, 2u);
  EXPECT_EQ(counters.accepted, 2u);
  EXPECT_EQ(counters.completedOk, 2u);
  EXPECT_EQ(counters.samplesCompleted, 10u);
  // The second identical circuit coalesced onto the first's compilation.
  EXPECT_GE(counters.circuitCacheHits + counters.circuitCacheMisses, 2u);
  EXPECT_GE(counters.circuitCacheHits, 1u);
}

TEST_F(ServiceTest, DeadlineExceededMidExperimentReportsPartialCounts) {
  // Every sample stalls 5ms; 1000 samples would take ~5s but the budget is
  // 100ms: the worker must notice between samples and abort with partials.
  faultinject::arm("mc.sample", {Kind::Stall, 5.0, 0, UINT64_MAX});
  ResponseLog log;
  ExperimentService service(smallOptions(), log.sink());
  service.submit(
      R"({"id": "slow", "circuit": "rd53-min", "samples": 1000, "seed": 7, "deadline_ms": 100})");
  service.drain();

  const SpecValue response = log.response("slow");
  EXPECT_EQ(response.stringOr("status", ""), "error");
  EXPECT_EQ(errorCode(response), "deadline_exceeded");
  const double completed = response.numberOr("completed", -1);
  EXPECT_GT(completed, 0.0) << "some samples should finish before the deadline";
  EXPECT_LT(completed, 1000.0) << "the deadline should cut the run short";
  EXPECT_EQ(response.numberOr("samples", 0), 1000.0);
  EXPECT_EQ(service.counters().deadlineExceeded, 1u);
  EXPECT_EQ(service.counters().completedOk, 0u);
}

TEST_F(ServiceTest, DefaultDeadlineAppliesToRequestsWithoutOne) {
  faultinject::arm("mc.sample", {Kind::Stall, 5.0, 0, UINT64_MAX});
  ServiceOptions options = smallOptions();
  options.defaultDeadlineMillis = 100;
  ResponseLog log;
  ExperimentService service(options, log.sink());
  service.submit(R"({"id": "slow", "circuit": "rd53-min", "samples": 1000, "seed": 7})");
  service.drain();
  EXPECT_EQ(errorCode(log.response("slow")), "deadline_exceeded");
}

TEST_F(ServiceTest, AbsurdDeadlineBudgetSaturatesInsteadOfExpiringInstantly) {
  // deadline_ms is client input: 1e300 ms would overflow the nanosecond
  // conversion unclamped and come back as an instantly-expired deadline.
  // Saturated, it behaves like "no deadline" and the request completes.
  ResponseLog log;
  ExperimentService service(smallOptions(), log.sink());
  service.submit(
      R"({"id": "huge", "circuit": "rd53-min", "samples": 5, "seed": 7, "deadline_ms": 1e300})");
  service.drain();
  EXPECT_EQ(log.response("huge").stringOr("status", ""), "ok");
  EXPECT_EQ(service.counters().deadlineExceeded, 0u);
  EXPECT_EQ(service.counters().completedOk, 1u);
}

TEST_F(ServiceTest, DeadlineSpentInQueueIsEnforcedBeforeAnyWork) {
  // One executor: a stalled request occupies it while a 20ms-deadline
  // request waits behind it long enough to expire in the queue.
  faultinject::arm("mc.sample", {Kind::Stall, 20.0, 0, UINT64_MAX});
  ResponseLog log;
  ExperimentService service(smallOptions(), log.sink());
  service.submit(R"({"id": "busy", "circuit": "rd53-min", "samples": 20, "seed": 7})");
  ASSERT_TRUE(waitFor([] { return faultinject::hits("mc.sample") >= 1; }));
  service.submit(
      R"({"id": "late", "circuit": "rd53-min", "samples": 5, "seed": 7, "deadline_ms": 20})");
  service.drain();

  EXPECT_EQ(log.response("busy").stringOr("status", ""), "ok");
  const SpecValue late = log.response("late");
  EXPECT_EQ(errorCode(late), "deadline_exceeded");
  // Expired before starting: no samples were run at all.
  EXPECT_EQ(late.find("completed"), nullptr);
}

TEST_F(ServiceTest, OverloadSheddingIsImmediateAndSparesInFlightWork) {
  faultinject::arm("mc.sample", {Kind::Stall, 10.0, 0, UINT64_MAX});
  ServiceOptions options = smallOptions();
  options.queueDepth = 1;
  ResponseLog log;
  ExperimentService service(options, log.sink());

  // First request occupies the single executor...
  service.submit(R"({"id": "running", "circuit": "rd53-min", "samples": 50, "seed": 7})");
  ASSERT_TRUE(waitFor([] { return faultinject::hits("mc.sample") >= 1; }));
  // ...second fills the depth-1 queue...
  service.submit(R"({"id": "queued", "circuit": "rd53-min", "samples": 5, "seed": 7})");
  // ...third must be shed immediately, without touching the other two.
  const auto start = std::chrono::steady_clock::now();
  service.submit(R"({"id": "shed", "circuit": "rd53-min", "samples": 5, "seed": 7})");
  const auto shedLatency = std::chrono::steady_clock::now() - start;
  EXPECT_LT(std::chrono::duration_cast<std::chrono::milliseconds>(shedLatency).count(), 100)
      << "shedding must not wait for in-flight work";
  EXPECT_TRUE(log.has("shed")) << "the overloaded response is synchronous";
  EXPECT_EQ(errorCode(log.response("shed")), "overloaded");

  service.drain();
  EXPECT_EQ(log.response("running").stringOr("status", ""), "ok");
  EXPECT_EQ(log.response("queued").stringOr("status", ""), "ok");
  const ServiceCounters counters = service.counters();
  EXPECT_EQ(counters.shedOverloaded, 1u);
  EXPECT_EQ(counters.completedOk, 2u);
}

TEST_F(ServiceTest, ShutdownNowCancelsMidExperimentWithPartialCounts) {
  faultinject::arm("mc.sample", {Kind::Stall, 5.0, 0, UINT64_MAX});
  ResponseLog log;
  ExperimentService service(smallOptions(), log.sink());
  service.submit(R"({"id": "doomed", "circuit": "rd53-min", "samples": 1000, "seed": 7})");
  ASSERT_TRUE(waitFor([] { return faultinject::hits("mc.sample") >= 1; }));
  service.shutdownNow();

  const SpecValue response = log.response("doomed");
  EXPECT_EQ(response.stringOr("status", ""), "error");
  EXPECT_EQ(errorCode(response), "cancelled");
  EXPECT_LT(response.numberOr("completed", 1e9), 1000.0);
  EXPECT_EQ(service.counters().cancelled, 1u);
  // The service is latched draining: new work is shed, not queued.
  service.submit(R"({"id": "after", "circuit": "rd53-min", "samples": 5})");
  EXPECT_EQ(errorCode(log.response("after")), "overloaded");
}

TEST_F(ServiceTest, DrainFinishesAdmittedWorkThenRejectsNew) {
  ResponseLog log;
  ExperimentService service(smallOptions(), log.sink());
  for (int i = 0; i < 3; ++i) {
    // Built via append: GCC 12 -Wrestrict false positive (PR 105329).
    std::string line = R"({"id": "d)";
    line += std::to_string(i);
    line += R"(", "circuit": "rd53-min", "samples": 5, "seed": 7})";
    service.submit(line);
  }
  service.drain();
  for (int i = 0; i < 3; ++i) {
    std::string id = "d";
    id += std::to_string(i);
    EXPECT_EQ(log.response(id).stringOr("status", ""), "ok");
  }
  EXPECT_EQ(service.counters().completedOk, 3u);

  service.submit(R"({"id": "post", "circuit": "rd53-min", "samples": 5})");
  EXPECT_EQ(errorCode(log.response("post")), "overloaded");
  EXPECT_EQ(service.counters().shedOverloaded, 1u);
}

TEST_F(ServiceTest, SynthesisFailureIsInternalAndTheServiceSurvives) {
  faultinject::arm("circuit.synthesize", {Kind::Throw, 0, 0, UINT64_MAX});
  ResponseLog log;
  ExperimentService service(smallOptions(), log.sink());
  // cache:false forces the raw pipeline, so the armed synthesis site fires.
  service.submit(
      R"({"id": "boom", "circuit": {"circuit": "gen:majority5", "synth": "espresso"}, )"
      R"("samples": 5, "cache": false})");
  // drain() latches the service closed; wait for the response instead so
  // the service stays open for the follow-up request below.
  ASSERT_TRUE(waitFor([&] { return log.has("boom"); }));
  EXPECT_EQ(errorCode(log.response("boom")), "internal");
  EXPECT_EQ(service.counters().internalErrors, 1u);

  // The daemon must outlive the request's death.
  faultinject::reset();
  service.submit(R"({"id": "next", "circuit": "rd53-min", "samples": 5, "seed": 7})");
  // drain() is one-shot; wait for the response instead.
  ASSERT_TRUE(waitFor([&] { return log.has("next"); }));
  EXPECT_EQ(log.response("next").stringOr("status", ""), "ok");
}

TEST_F(ServiceTest, SatMapperRequestCompletes) {
  ResponseLog log;
  ExperimentService service(smallOptions(), log.sink());
  service.submit(
      R"({"id": "sat", "circuit": "rd53-min", "mapper": "sat", "samples": 5, "seed": 7})");
  service.drain();
  const SpecValue response = log.response("sat");
  EXPECT_EQ(response.stringOr("status", ""), "ok");
  EXPECT_EQ(response.stringOr("mapper", ""), "SAT");
  EXPECT_EQ(response.numberOr("completed", 0), 5.0);
}

TEST_F(ServiceTest, SatSolveStallHitsDeadlineWithPartialCounts) {
  // Every sat solve stalls 5ms; 1000 samples against a 100ms budget: the
  // worker must notice between samples and abort with partial counts, same
  // contract as the mc.sample stall but through the SAT backend's site.
  faultinject::arm("sat.solve", {Kind::Stall, 5.0, 0, UINT64_MAX});
  ResponseLog log;
  ExperimentService service(smallOptions(), log.sink());
  service.submit(
      R"({"id": "slowsat", "circuit": "rd53-min", "mapper": "sat", "samples": 1000, )"
      R"("seed": 7, "deadline_ms": 100})");
  service.drain();

  const SpecValue response = log.response("slowsat");
  EXPECT_EQ(response.stringOr("status", ""), "error");
  EXPECT_EQ(errorCode(response), "deadline_exceeded");
  const double completed = response.numberOr("completed", -1);
  EXPECT_GT(completed, 0.0) << "some samples should finish before the deadline";
  EXPECT_LT(completed, 1000.0) << "the deadline should cut the run short";
  EXPECT_EQ(service.counters().deadlineExceeded, 1u);
}

TEST_F(ServiceTest, SatSolveThrowIsInternalAndTheServiceSurvives) {
  faultinject::arm("sat.solve", {Kind::Throw, 0, 0, UINT64_MAX});
  ResponseLog log;
  ExperimentService service(smallOptions(), log.sink());
  service.submit(
      R"({"id": "satboom", "circuit": "rd53-min", "mapper": "sat", "samples": 5, "seed": 7})");
  ASSERT_TRUE(waitFor([&] { return log.has("satboom"); }));
  EXPECT_EQ(errorCode(log.response("satboom")), "internal");
  EXPECT_EQ(service.counters().internalErrors, 1u);

  faultinject::reset();
  service.submit(
      R"({"id": "satnext", "circuit": "rd53-min", "mapper": "sat", "samples": 5, "seed": 7})");
  ASSERT_TRUE(waitFor([&] { return log.has("satnext"); }));
  EXPECT_EQ(log.response("satnext").stringOr("status", ""), "ok");
}

TEST_F(ServiceTest, AllocationFailureAtAdmissionIsInternal) {
  faultinject::arm("serve.enqueue", {Kind::BadAlloc, 0, 0, UINT64_MAX});
  ResponseLog log;
  ExperimentService service(smallOptions(), log.sink());
  service.submit(R"({"id": "oom", "circuit": "rd53-min", "samples": 5})");
  EXPECT_EQ(errorCode(log.response("oom")), "internal");
  EXPECT_EQ(service.counters().internalErrors, 1u);
  EXPECT_EQ(service.counters().accepted, 0u);
}

TEST_F(ServiceTest, ParseErrorsAnswerSynchronouslyWithBestEffortId) {
  ResponseLog log;
  ExperimentService service(smallOptions(), log.sink());
  service.submit(R"({"id": "typo", "circuit": "rd53-min", "sample": 5})");
  service.submit(R"({"id": "trunc", "circuit": )");
  service.submit("not json at all");
  EXPECT_EQ(log.size(), 3u);  // all three answered without touching the queue
  EXPECT_EQ(errorCode(log.response("typo")), "parse");
  EXPECT_EQ(errorCode(log.response("trunc")), "parse");
  EXPECT_EQ(errorCode(log.response("")), "parse");
  EXPECT_EQ(service.counters().parseErrors, 3u);
  EXPECT_EQ(service.counters().accepted, 0u);
}

TEST_F(ServiceTest, PerRequestSinkOverridesTheDefault) {
  ResponseLog defaultLog;
  ResponseLog connectionLog;
  ExperimentService service(smallOptions(), defaultLog.sink());
  service.submit(R"({"id": "routed", "circuit": "rd53-min", "samples": 5, "seed": 7})",
                 connectionLog.sink());
  service.drain();
  EXPECT_EQ(defaultLog.size(), 0u);
  EXPECT_EQ(connectionLog.response("routed").stringOr("status", ""), "ok");
}

TEST_F(ServiceTest, SlowPerRequestSinkDoesNotStallOtherResponses) {
  // A per-request sink wedged on one slow consumer must not hold a global
  // emission lock: responses bound for the default sink (and any other
  // connection) keep flowing on the second request thread.
  ServiceOptions options = smallOptions();
  options.requestThreads = 2;
  ResponseLog log;
  ExperimentService service(options, log.sink());

  std::mutex gate;
  std::condition_variable cv;
  bool blocked = false;
  bool release = false;
  ExperimentService::Sink stuckSink = [&](const std::string&) {
    std::unique_lock<std::mutex> lock(gate);
    blocked = true;
    cv.notify_all();
    cv.wait(lock, [&] { return release; });
  };
  service.submit(R"({"id": "stuck", "circuit": "rd53-min", "samples": 5, "seed": 7})",
                 stuckSink);
  {
    std::unique_lock<std::mutex> lock(gate);
    ASSERT_TRUE(cv.wait_for(lock, std::chrono::seconds(5), [&] { return blocked; }))
        << "the stuck request never reached its sink";
  }

  service.submit(R"({"id": "flows", "circuit": "rd53-min", "samples": 5, "seed": 7})");
  EXPECT_TRUE(waitFor([&] { return log.has("flows"); }))
      << "a wedged per-request sink stalled an unrelated response";

  {
    const std::lock_guard<std::mutex> lock(gate);
    release = true;
  }
  cv.notify_all();
  service.drain();
  EXPECT_EQ(log.response("flows").stringOr("status", ""), "ok");
  EXPECT_EQ(service.counters().completedOk, 2u);
}

TEST_F(ServiceTest, StatsRequestAnswersInlineWithRegistrySnapshot) {
  ResponseLog log;
  ExperimentService service(smallOptions(), log.sink());
  service.submit(R"({"id": "work", "circuit": "rd53-min", "samples": 5, "seed": 7})");
  service.drain();
  // Answered synchronously on the submitting thread — works even after the
  // drain latch closes the queue, so an operator can always pull stats.
  service.submit(R"({"id": "s1", "type": "stats"})");
  ASSERT_TRUE(log.has("s1"));

  const SpecValue stats = log.response("s1");
  EXPECT_EQ(stats.stringOr("status", ""), "ok");
  const SpecValue* payload = stats.find("stats");
  ASSERT_NE(payload, nullptr);
  const SpecValue* svc = payload->find("service");
  ASSERT_NE(svc, nullptr);
  EXPECT_EQ(svc->numberOr("completed_ok", -1), 1.0);
  EXPECT_EQ(svc->numberOr("stats_requests", -1), 1.0);
  const SpecValue* registry = payload->find("registry");
  ASSERT_NE(registry, nullptr);
  const SpecValue* hists = registry->find("histograms");
  ASSERT_NE(hists, nullptr);
  // The per-stage latency histograms saw the completed request (the
  // registry is process-wide, so counts are >= this service's one).
  for (const char* name :
       {"serve.parse", "serve.queue_wait", "serve.synthesis", "serve.mc_run"}) {
    const SpecValue* hist = hists->find(name);
    ASSERT_NE(hist, nullptr) << name;
    EXPECT_GE(hist->numberOr("count", 0), 1.0) << name;
  }

  const ServiceCounters counters = service.counters();
  EXPECT_EQ(counters.statsRequests, 1u);
  EXPECT_EQ(counters.received, 2u);
  EXPECT_EQ(counters.accepted, 1u);  // stats never touches the queue
}

TEST_F(ServiceTest, CoverStageHitsAndMissesSurfaceInCounters) {
  // Two realizations of one synthesis declaration: the second request
  // misses the full-spec cache (different realize) but reuses the
  // synthesized cover, which the counters must break out per stage.
  ResponseLog log;
  ExperimentService service(smallOptions(), log.sink());
  service.submit(
      R"({"id": "f3", "circuit": {"circuit": "sop:x1 x2 + x3 x4 + !x1 x5", )"
      R"("synth": "qm", "realize": "two-level"}, "samples": 5, "seed": 7})");
  service.submit(
      R"({"id": "f4", "circuit": {"circuit": "sop:x1 x2 + x3 x4 + !x1 x5", )"
      R"("synth": "qm", "realize": "multilevel"}, "samples": 5, "seed": 7})");
  service.drain();
  EXPECT_EQ(log.response("f3").stringOr("status", ""), "ok");
  EXPECT_EQ(log.response("f4").stringOr("status", ""), "ok");

  const ServiceCounters counters = service.counters();
  EXPECT_EQ(counters.circuitCacheMisses, 2u) << "distinct realizations";
  EXPECT_GE(counters.circuitCoverHits, 1u) << "shared synthesis stage";
  // The JSON snapshot carries the cover stage too.
  const std::string json = service.countersJson();
  EXPECT_NE(json.find("\"circuit_cover_hits\""), std::string::npos);
  EXPECT_NE(json.find("\"circuit_cover_misses\""), std::string::npos);
}

TEST_F(ServiceTest, DestructorWithWorkInFlightDoesNotHangOrLeak) {
  faultinject::arm("mc.sample", {Kind::Stall, 5.0, 0, UINT64_MAX});
  ResponseLog log;
  {
    ExperimentService service(smallOptions(), log.sink());
    service.submit(R"({"id": "cut", "circuit": "rd53-min", "samples": 1000, "seed": 7})");
    ASSERT_TRUE(waitFor([] { return faultinject::hits("mc.sample") >= 1; }));
    // ~ExperimentService fires the token and joins: must terminate promptly.
  }
  EXPECT_EQ(errorCode(log.response("cut")), "cancelled");
}

}  // namespace
}  // namespace mcx::serve
