// Adversarial-input hardening for the request path (and the JSON parsers
// under it): every truncated prefix of valid requests/specs, deeply nested
// garbage, and a table of malformed shapes must produce a typed ParseError /
// ServeError(Parse) — never a crash, a hang, or any other exception type.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "circuit/registry.hpp"
#include "map/registry.hpp"
#include "scenario/registry.hpp"
#include "scenario/spec.hpp"
#include "serve/error.hpp"
#include "serve/request.hpp"
#include "util/error.hpp"

namespace mcx::serve {
namespace {

/// parseRequest must either succeed or throw ServeError with code Parse.
/// Anything else (raw ParseError, bad_alloc, segfault, hang) is a bug.
void expectParseOrServeError(const std::string& line) {
  try {
    parseRequest(line, RequestLimits{});
  } catch (const ServeError& e) {
    EXPECT_EQ(e.code(), ErrorCode::Parse) << "line: " << line;
  } catch (const std::exception& e) {
    FAIL() << "non-ServeError escaped parseRequest for line: " << line
           << "\n  what(): " << e.what();
  }
}

TEST(RequestFuzzTest, EveryTruncatedPrefixOfValidRequestsIsRejectedCleanly) {
  const std::vector<std::string> wellFormed = {
      R"({"id": "r1", "circuit": "rd53-min", "mapper": "hba", "samples": 5, "seed": 7})",
      R"({"circuit": {"circuit": "gen:majority5", "synth": "espresso", "realize": "multilevel"}})",
      R"({"circuit": "rd53-min", "mapper": {"mapper": "ea", "munkres": true}})",
      R"({"circuit": "rd53-min", "scenario": {"preset": "clustered", "rate": 0.05}})",
      R"({"circuit": "rd53-min", "scenario": "gradient", "rate": 0.08, "deadline_ms": 50.5})",
  };
  for (const std::string& line : wellFormed) {
    // The complete line itself must parse (guards against a stale table).
    EXPECT_NO_THROW(parseRequest(line, RequestLimits{})) << line;
    for (std::size_t cut = 0; cut < line.size(); ++cut)
      expectParseOrServeError(line.substr(0, cut));
  }
}

TEST(RequestFuzzTest, DeeplyNestedGarbageIsARejectionNotAStackOverflow) {
  // 4096 unclosed opens of each nesting flavour: the parser's depth cap must
  // fail these with a ParseError long before the call stack is in danger.
  const std::string arrays(4096, '[');
  std::string objects;
  for (int i = 0; i < 4096; ++i) objects += "{\"k\":";
  std::string mixed;
  for (int i = 0; i < 2048; ++i) mixed += "[{\"k\":";

  for (const std::string& garbage : {arrays, objects, mixed}) {
    expectParseOrServeError(garbage);
    expectParseOrServeError("{\"circuit\": " + garbage);
    EXPECT_THROW(parseSpec(garbage), ParseError);
  }

  // Exactly at / just past the documented cap of 64 levels.
  std::string ok = "1";
  for (int i = 0; i < 60; ++i) ok = "[" + ok + "]";
  EXPECT_NO_THROW(parseSpec(ok));
  std::string deep = "1";
  for (int i = 0; i < 65; ++i) deep = "[" + deep + "]";
  EXPECT_THROW(parseSpec(deep), ParseError);
}

TEST(RequestFuzzTest, MalformedShapesTable) {
  const std::vector<std::string> lines = {
      "",                  // empty line
      "   ",               // whitespace only
      "null",              // not an object
      "42",                //
      "[1,2,3]",           //
      "\"just a string\"", //
      "{",                 // bare open
      "{}",                // no circuit
      "{\"circuit\"}",     // key without value
      R"({"circuit": "no-such-circuit"})",                        // unknown preset
      R"({"circuit": "rd53-min", "mapper": "no-such-mapper"})",   //
      R"({"circuit": "rd53-min", "scenario": "no-such-model"})",  //
      R"({"circuit": 7})",                                        // wrong type
      R"({"circuit": "rd53-min", "samples": 0})",                 // below min
      R"({"circuit": "rd53-min", "samples": -3})",                //
      R"({"circuit": "rd53-min", "samples": 1.5})",               // non-integral
      R"({"circuit": "rd53-min", "samples": 1e300})",             // absurd
      R"({"circuit": "rd53-min", "seed": "abc"})",                //
      R"({"circuit": "rd53-min", "rate": 1.5})",                  // rate out of [0,1]
      R"({"circuit": "rd53-min", "open": -0.1})",                 //
      R"({"circuit": "rd53-min", "deadline_ms": 0})",             // must be positive
      R"({"circuit": "rd53-min", "deadline_ms": -5})",            //
      R"({"circuit": "rd53-min", "multilevel": "yes"})",          // wrong type
      R"({"circuit": "rd53-min", "cache": 1})",                   //
      R"({"circuit": "rd53-min", "id": [1]})",                    // id wrong type
      R"({"circuit": "rd53-min", "typo_member": 1})",             // unknown member
      R"({"circuit": "rd53-min", "scenario": "clustered", "open": 0.1})",  // mixed paths
      R"({"circuit": {"circuit": "gen:majority5", "synth": "martians"}})", // bad enum
      R"({"circuit": "rd53-min", "mapper": {"mapper": "ea", "generations": "many"}})",
      "{\"circuit\": \"rd53-min\"",             // unterminated object
      "{\"circuit\": \"rd53-min\", ",           // trailing comma + EOF
      "{\"circuit\": \"rd53\\",                 // dangling escape
      std::string("{\"circuit\": \"rd53\x01\"}"),  // control char in string
  };
  for (const std::string& line : lines) {
    try {
      parseRequest(line, RequestLimits{});
      FAIL() << "accepted malformed line: " << line;
    } catch (const ServeError& e) {
      EXPECT_EQ(e.code(), ErrorCode::Parse) << line;
    } catch (const std::exception& e) {
      FAIL() << "wrong exception type for line: " << line << "\n  what(): " << e.what();
    }
  }
}

TEST(RequestFuzzTest, OversizedLineIsRejectedBeforeParsing) {
  RequestLimits limits;
  limits.maxLineBytes = 64;
  const std::string big = "{\"circuit\": \"" + std::string(128, 'x') + "\"}";
  try {
    parseRequest(big, limits);
    FAIL() << "oversized line accepted";
  } catch (const ServeError& e) {
    EXPECT_EQ(e.code(), ErrorCode::Parse);
  }
}

TEST(RequestFuzzTest, TruncatedRegistrySpecsFailTyped) {
  // The registry-level spec parsers (circuit / mapper / scenario) share the
  // hardened JSON front door; truncations of valid spec objects must come
  // back as ParseError, never crash.
  const std::string circuit =
      R"({"circuit": "gen:majority5", "synth": "espresso", "maxFanin": 4})";
  const std::string mapper = R"({"mapper": "colperm", "restarts": 3, "seed": 7})";
  const std::string scenario = R"({"model": "clustered", "density": 0.05, "spread": 2.5})";
  for (const std::string& spec : {circuit, mapper, scenario}) {
    for (std::size_t cut = 0; cut < spec.size(); ++cut) {
      const std::string prefix = spec.substr(0, cut);
      try {
        const SpecValue doc = parseSpec(prefix);
        // A prefix that happens to parse as JSON must still fail spec
        // validation unless it is the (vacuous) empty-ish object.
        if (doc.isObject() && !doc.members.empty()) {
          if (&spec == &circuit) circuitSpecFromSpec(doc);
          if (&spec == &mapper) mapperFromSpec(doc);
          if (&spec == &scenario) modelFromSpec(doc);
        }
      } catch (const ParseError&) {
        // expected shape of rejection
      } catch (const InvalidArgument&) {
        // registry-level range validation is equally acceptable
      } catch (const std::exception& e) {
        FAIL() << "unexpected exception for prefix \"" << prefix << "\": " << e.what();
      }
    }
  }
}

}  // namespace
}  // namespace mcx::serve
