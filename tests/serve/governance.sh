# Resource governance end-to-end through a real daemon process:
#   - --health-file heartbeats while serving (atomic rename; removed on
#     clean exit) and the inline {"type":"health"} probe
#   - --max-line-bytes streaming guard: an oversized UNTERMINATED line is
#     answered immediately with a typed parse error carrying the observed
#     length, the rest of the line is discarded, and the session keeps
#     serving afterwards
#   - the governed counters (oversized_lines, health_requests) in the exit
#     flush
#
# Usage: sh governance.sh <path-to-mcx_serve>
SERVE="$1"
[ -x "$SERVE" ] || { echo "mcx_serve binary not found: $SERVE"; exit 1; }

workdir=$(mktemp -d)
trap 'rm -rf "$workdir"' EXIT
mkfifo "$workdir/in"

"$SERVE" --queue-depth 8 --request-threads 1 --pool-threads 1 \
  --max-line-bytes 256 --cache-budget-mb 16 \
  --health-file "$workdir/health.json" --health-interval 0.1 \
  --degrade --watchdog-factor 4 \
  < "$workdir/in" > "$workdir/out.log" 2> "$workdir/err.log" &
daemon=$!
# Hold the fifo's write end open across requests; closing fd 3 is the EOF
# that starts the daemon's drain.
exec 3> "$workdir/in"

fail() {
  echo "FAIL: $1"
  echo "--- stdout:"; cat "$workdir/out.log"
  echo "--- stderr:"; cat "$workdir/err.log"
  exec 3>&- 2>/dev/null
  kill "$daemon" 2>/dev/null
  exit 1
}

await() { # await <pattern> <what>
  i=0
  until grep -q "$1" "$workdir/out.log" 2>/dev/null; do
    i=$((i + 1))
    [ "$i" -lt 100 ] || fail "timed out waiting for $2"
    sleep 0.1
  done
}

# A normal request answers ok with governance armed at benign settings.
printf '{"id":"r1","circuit":"rd53-min","samples":5}\n' >&3
await '"id": "r1"' "r1 response"
grep '"id": "r1"' "$workdir/out.log" | grep -q '"status": "ok"' || fail "r1 not ok"

# The heartbeat file appears while serving and reports a healthy daemon.
i=0
until [ -f "$workdir/health.json" ]; do
  i=$((i + 1)); [ "$i" -lt 100 ] || fail "health file never appeared"
  sleep 0.1
done
grep -q '"status": "ok"' "$workdir/health.json" || fail "health file not ok"
grep -q '"cache_budget_bytes": 16777216' "$workdir/health.json" \
  || fail "health file missing the cache budget"

# The inline probe returns the same payload without touching admission.
printf '{"type":"health"}\n' >&3
await '"queue_capacity"' "inline health probe"

# Streaming oversized guard: 400 bytes with NO newline must be answered
# now (typed parse error, observed length), not buffered until framing
# arrives.
awk 'BEGIN{for(i=0;i<400;i++)printf "x"}' >&3
await '"code": "parse"' "oversized-line rejection"
grep -q 'exceeds the 256-byte limit' "$workdir/out.log" \
  || fail "parse error does not name the limit"
grep -q 'line is 400 bytes' "$workdir/out.log" \
  || fail "parse error does not report the observed length"

# The tail of the oversized line is discarded at its newline and the
# session serves the next request normally.
printf 'tail-of-the-oversized-line\n{"id":"r2","circuit":"rd53-min","samples":5}\n' >&3
await '"id": "r2"' "post-discard response"
grep '"id": "r2"' "$workdir/out.log" | grep -q '"status": "ok"' || fail "r2 not ok"

# EOF -> graceful drain -> counters flush -> clean exit.
exec 3>&-
wait "$daemon"
status=$?
[ "$status" -eq 0 ] || fail "daemon exited $status (want 0)"
[ ! -f "$workdir/health.json" ] || fail "health file not removed on clean exit"
grep -q '"completed_ok": 2' "$workdir/err.log" || fail "counters missing completed_ok=2"
grep -q '"oversized_lines": 1' "$workdir/err.log" || fail "counters missing oversized_lines=1"
grep -q '"health_requests": 1' "$workdir/err.log" || fail "counters missing health_requests=1"
grep -q '"parse_errors": 1' "$workdir/err.log" || fail "counters missing parse_errors=1"
echo "PASS"
