# Graceful-drain contract: SIGTERM while a request is in flight.
# The daemon must finish the admitted request, emit its response, flush the
# counters JSON to stderr and exit 0 — never abort mid-experiment.
#
# Usage: sh sigterm_drain.sh <path-to-mcx_serve>
SERVE="$1"
[ -x "$SERVE" ] || { echo "mcx_serve binary not found: $SERVE"; exit 1; }

workdir=$(mktemp -d)
trap 'rm -rf "$workdir"' EXIT

# A fifo held open by this script keeps the daemon's stdin from hitting EOF,
# so the exit we observe is the signal path, not the end-of-input path.
mkfifo "$workdir/in"
# --metrics-interval exercises the periodic registry flush during the run.
"$SERVE" --queue-depth 8 --request-threads 1 --pool-threads 1 \
  --metrics-interval 0.2 \
  < "$workdir/in" > "$workdir/out.jsonl" 2> "$workdir/err.log" &
daemon=$!
exec 3> "$workdir/in"

# A request big enough to still be running when the signal lands.
echo '{"id": "slow", "circuit": "sqrt8-min", "mapper": "hba", "samples": 400, "seed": 3}' >&3

# Give the daemon a moment to admit the request, then signal mid-flight.
sleep 1
kill -TERM "$daemon"
wait "$daemon"
status=$?
exec 3>&-

fail() { echo "FAIL: $1"; echo "--- stdout:"; cat "$workdir/out.jsonl"; echo "--- stderr:"; cat "$workdir/err.log"; exit 1; }

[ "$status" -eq 0 ] || fail "daemon exited $status after SIGTERM (want 0)"
grep -q 'SIGTERM' "$workdir/err.log" || fail "missing SIGTERM drain notice"
# The in-flight request completed in full during the drain.
grep '"id": "slow"' "$workdir/out.jsonl" | grep -q '"status": "ok"' \
  || fail "in-flight request did not complete during drain"
grep '"id": "slow"' "$workdir/out.jsonl" | grep -q '"completed": 400' \
  || fail "in-flight request was cut short"
grep -q '"completed_ok": 1' "$workdir/err.log" || fail "counters not flushed"
# At least one periodic metrics tick fired during the ~1s run.
grep -q 'mcx_serve: metrics' "$workdir/err.log" || fail "no periodic metrics flush"
echo "PASS"
