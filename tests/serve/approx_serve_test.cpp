// The "epsilon" protocol member end-to-end: parse-time validation (typed
// ParseErrors, never a crash), the graded response shape when a budget is
// declared, and the classical response shape (no graded fields) when it is
// not — existing clients must see byte-compatible output.
#include <gtest/gtest.h>

#include <mutex>
#include <string>
#include <vector>

#include "scenario/spec.hpp"
#include "serve/error.hpp"
#include "serve/request.hpp"
#include "serve/service.hpp"
#include "util/faultinject.hpp"

namespace mcx::serve {
namespace {

/// Collects response lines (thread-safe) and finds them by id.
class ResponseLog {
public:
  ExperimentService::Sink sink() {
    return [this](const std::string& line) {
      const std::lock_guard<std::mutex> lock(mutex_);
      lines_.push_back(line);
    };
  }
  SpecValue response(const std::string& id) const {
    const std::lock_guard<std::mutex> lock(mutex_);
    for (const std::string& line : lines_) {
      const SpecValue doc = parseSpec(line);
      if (doc.stringOr("id", "") == id) return doc;
    }
    ADD_FAILURE() << "no response for id " << id;
    return SpecValue{};
  }

private:
  mutable std::mutex mutex_;
  std::vector<std::string> lines_;
};

class ApproxTestServe : public ::testing::Test {
protected:
  void TearDown() override { faultinject::reset(); }

  static ServiceOptions smallOptions() {
    ServiceOptions options;
    options.queueDepth = 4;
    options.requestThreads = 1;
    options.poolThreads = 1;
    return options;
  }
};

TEST_F(ApproxTestServe, EpsilonMemberParsesAndValidates) {
  const RequestLimits limits;
  const Request ok = parseRequest(
      R"({"id": "e", "circuit": "rd53-min", "samples": 5, "epsilon": 0.1})", limits);
  ASSERT_TRUE(ok.epsilon.has_value());
  EXPECT_DOUBLE_EQ(*ok.epsilon, 0.1);
  EXPECT_FALSE(parseRequest(R"({"circuit": "rd53-min"})", limits).epsilon.has_value());

  const auto expectParseError = [&](const std::string& line) {
    try {
      parseRequest(line, limits);
      ADD_FAILURE() << "expected ServeError(Parse) for " << line;
    } catch (const ServeError& e) {
      EXPECT_EQ(e.code(), ErrorCode::Parse) << line;
    }
  };
  expectParseError(R"({"circuit": "rd53-min", "epsilon": 1.5})");
  expectParseError(R"({"circuit": "rd53-min", "epsilon": -0.1})");
  expectParseError(R"({"circuit": "rd53-min", "epsilon": "small"})");
  expectParseError(R"({"circuit": "rd53-min", "epsilon": null})");
}

TEST_F(ApproxTestServe, GradedRequestGainsTheGradedResponseFields) {
  ResponseLog log;
  ExperimentService service(smallOptions(), log.sink());
  const std::string base =
      R"("circuit": "rd53-min", "mapper": {"mapper": "approx", "inner": "fast-ea", "epsilon": 1.0}, "open": 0.25, "samples": 30, "seed": 61166)";
  service.submit(R"({"id": "graded", "epsilon": 0.05, )" + base + "}");
  service.submit(R"({"id": "plain", )" + base + "}");
  service.drain();

  const SpecValue graded = log.response("graded");
  EXPECT_EQ(graded.stringOr("status", ""), "ok");
  EXPECT_DOUBLE_EQ(graded.numberOr("epsilon", -1), 0.05);
  const double accepted = graded.numberOr("epsilon_accepted", -1);
  const double successes = graded.numberOr("successes", -1);
  EXPECT_GE(accepted, successes);
  EXPECT_GE(successes, 0.0);
  EXPECT_EQ(graded.numberOr("rescued", -1), accepted - successes);
  EXPECT_NEAR(graded.numberOr("functional_yield", -1), accepted / 30.0, 1e-6);
  EXPECT_GE(graded.numberOr("mean_realized_error", -1), 0.0);

  // Same experiment without a budget: classical response shape, no graded
  // members, identical exact verdict.
  const SpecValue plain = log.response("plain");
  EXPECT_EQ(plain.stringOr("status", ""), "ok");
  EXPECT_EQ(plain.find("epsilon"), nullptr);
  EXPECT_EQ(plain.find("epsilon_accepted"), nullptr);
  EXPECT_EQ(plain.find("functional_yield"), nullptr);
  EXPECT_EQ(plain.find("rescued"), nullptr);
  EXPECT_EQ(plain.find("mean_realized_error"), nullptr);
  EXPECT_EQ(plain.numberOr("successes", -2), successes);
}

TEST_F(ApproxTestServe, InjectedFaultAtTheEvaluateSiteSurfacesAsInternal) {
  // The rescue path's fault site must turn into a structured internal error
  // response, not a crash or a hang — the soak relies on this.
  faultinject::arm("approx.evaluate", {faultinject::Kind::Throw});
  ResponseLog log;
  ExperimentService service(smallOptions(), log.sink());
  service.submit(
      R"({"id": "f", "circuit": "rd53-min", "epsilon": 0.1, "mapper": {"mapper": "approx", "inner": "fast-ea", "epsilon": 1.0}, "open": 0.4, "samples": 20, "seed": 3})");
  service.drain();

  const SpecValue response = log.response("f");
  EXPECT_EQ(response.stringOr("status", ""), "error");
  const SpecValue* error = response.find("error");
  ASSERT_NE(error, nullptr);
  EXPECT_EQ(error->stringOr("code", ""), "internal");
  EXPECT_GE(faultinject::hits("approx.evaluate"), 1u);
}

}  // namespace
}  // namespace mcx::serve
