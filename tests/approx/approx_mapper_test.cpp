// ApproxMapper behaviour: pass-through on inner success, graded partial
// rescues with exact realized error, epsilon gating, weight-ordered cube
// sacrifice, the approx.evaluate fault site — and the independent
// cross-checks the subsystem's honesty rests on: every reported per-sample
// error is re-derived from scratch (Cover -> truth tables through a
// different code path), every retained row set is confirmed matchable by
// the SAT backend, and every exact failure is confirmed UNSAT-or-unresolved
// (never SAT) on real defect samples.
#include "approx/approx_mapper.hpp"

#include <gtest/gtest.h>

#include "api/experiment.hpp"
#include "approx/error.hpp"
#include "circuit/cache.hpp"
#include "logic/truth_table.hpp"
#include "map/registry.hpp"
#include "mc/defect_experiment.hpp"
#include "sat/cnf.hpp"
#include "sat/cube.hpp"
#include "sat/solver.hpp"
#include "util/faultinject.hpp"

namespace mcx {
namespace {

/// f = x1 + x2 over 2 inputs, 1 output: two product rows, one output row.
Cover twoCubeCover() {
  Cover cover(2, 1);
  cover.add(makeCube("1-", "1"));
  cover.add(makeCube("-1", "1"));
  return cover;
}

BitMatrix cleanCrossbar(const FunctionMatrix& fm) {
  return BitMatrix(fm.rows(), fm.cols(), true);
}

class ApproxTestMapper : public ::testing::Test {
protected:
  void TearDown() override { faultinject::reset(); }
};

TEST_F(ApproxTestMapper, CleanCrossbarPassesInnerSuccessThrough) {
  const FunctionMatrix fm = buildFunctionMatrix(twoCubeCover());
  const ApproxMapper mapper;
  const MappingResult result = mapper.map(fm, cleanCrossbar(fm));
  EXPECT_TRUE(result.success);
  EXPECT_TRUE(result.droppedRows.empty());
  EXPECT_DOUBLE_EQ(result.realizedErrorOrBinary(), 0.0);
  EXPECT_TRUE(verifyMapping(fm, cleanCrossbar(fm), result));
}

TEST_F(ApproxTestMapper, RescuesByDroppingTheUnrealizableCubeWithExactError) {
  const FunctionMatrix fm = buildFunctionMatrix(twoCubeCover());
  // Product row 0 requires colOfPosLiteral(0); kill that column everywhere
  // so no exact mapping exists but everything else still fits.
  BitMatrix cm = cleanCrossbar(fm);
  cm.setCol(fm.colOfPosLiteral(0), false);

  const ApproxMapper mapper;  // sacrifice budget 1.0
  const MappingResult result = mapper.map(fm, cm);
  EXPECT_FALSE(result.success);
  ASSERT_EQ(result.droppedRows.size(), 1u);
  EXPECT_EQ(result.droppedRows[0], 0u);
  EXPECT_EQ(result.rowAssignment[0], MappingResult::kUnassigned);
  // Dropping "x1" loses exactly one of the four (minterm, output) pairs
  // (the minterm covered only by it).
  EXPECT_DOUBLE_EQ(result.realizedError, 0.25);
  EXPECT_TRUE(verifyPartialMapping(fm, cm, result));
}

TEST_F(ApproxTestMapper, EpsilonBudgetTurnsOverCostRescuesIntoPlainFailures) {
  const FunctionMatrix fm = buildFunctionMatrix(twoCubeCover());
  BitMatrix cm = cleanCrossbar(fm);
  cm.setCol(fm.colOfPosLiteral(0), false);

  const ApproxMapper mapper(ApproxMapperOptions{0.1});  // rescue would cost 0.25
  const MappingResult result = mapper.map(fm, cm);
  EXPECT_FALSE(result.success);
  EXPECT_TRUE(result.droppedRows.empty());
  EXPECT_DOUBLE_EQ(result.realizedErrorOrBinary(), 1.0);
}

TEST_F(ApproxTestMapper, DeadOutputRowIsATotalFailure) {
  const FunctionMatrix fm = buildFunctionMatrix(twoCubeCover());
  BitMatrix cm = cleanCrossbar(fm);
  cm.setCol(fm.colOfOutputBar(0), false);  // no row can host the output latch

  const ApproxMapper mapper;
  const MappingResult result = mapper.map(fm, cm);
  EXPECT_FALSE(result.success);
  EXPECT_TRUE(result.droppedRows.empty());
  EXPECT_DOUBLE_EQ(result.realizedErrorOrBinary(), 1.0);
}

TEST_F(ApproxTestMapper, SacrificesTheLowestWeightCubeWhenRowsCompete) {
  // A = x1 (covers m1, m3), B = x1 x2 (covers m3 only): B's coverage is a
  // subset of A's, so B's unique weight is 0 and A's is 1. Leave exactly
  // one CM row able to host a colOfPosLiteral(0) requirement: A and B
  // compete for it and the greedy must keep A — dropping B costs nothing.
  Cover cover(2, 1);
  cover.add(makeCube("1-", "1"));
  cover.add(makeCube("11", "1"));
  const FunctionMatrix fm = buildFunctionMatrix(cover);
  BitMatrix cm = cleanCrossbar(fm);
  cm.setCol(fm.colOfPosLiteral(0), false);
  cm.set(0, fm.colOfPosLiteral(0));

  const ApproxMapper mapper;
  const MappingResult result = mapper.map(fm, cm);
  EXPECT_FALSE(result.success);
  ASSERT_EQ(result.droppedRows.size(), 1u);
  EXPECT_EQ(result.droppedRows[0], 1u) << "the zero-weight cube must be the sacrifice";
  EXPECT_DOUBLE_EQ(result.realizedError, 0.0) << "B adds no coverage beyond A";
  EXPECT_TRUE(verifyPartialMapping(fm, cm, result));
}

TEST_F(ApproxTestMapper, FaultSiteFiresOnTheRescuePath) {
  faultinject::arm("approx.evaluate", {faultinject::Kind::Throw});
  const FunctionMatrix fm = buildFunctionMatrix(twoCubeCover());
  BitMatrix cm = cleanCrossbar(fm);
  cm.setCol(fm.colOfPosLiteral(0), false);

  const ApproxMapper mapper;
  EXPECT_THROW(mapper.map(fm, cm), FaultInjected);
  EXPECT_GE(faultinject::hits("approx.evaluate"), 1u);
  // The exact path never reaches the site.
  faultinject::reset();
  faultinject::arm("approx.evaluate", {faultinject::Kind::Throw});
  EXPECT_TRUE(mapper.map(fm, cleanCrossbar(fm)).success);
  EXPECT_EQ(faultinject::hits("approx.evaluate"), 0u);
}

TEST_F(ApproxTestMapper, RegistrySpecParsesInnerAndEpsilon) {
  const auto mapper = makeMapper(R"({"mapper": "approx", "inner": "hba", "epsilon": 0.5})");
  EXPECT_EQ(mapper->name().rfind("approx(", 0), 0u) << mapper->name();
  EXPECT_NE(mapper->name().find("0.5"), std::string::npos) << mapper->name();

  EXPECT_THROW(makeMapper(R"({"mapper": "approx", "epsilon": 1.5})"), ParseError);
  EXPECT_THROW(makeMapper(R"({"mapper": "approx", "epsilon": -0.1})"), ParseError);
  EXPECT_THROW(makeMapper(R"({"mapper": "approx", "bogus": 1})"), ParseError);
  EXPECT_NO_THROW(makeMapper("approx"));  // the preset: fast-ea inner, eps 1.0
}

TEST_F(ApproxTestMapper, ReportedErrorsMatchExhaustiveAndSatGroundTruth) {
  // Real defect samples on a committed circuit: every graded verdict is
  // cross-checked against (a) an exhaustive truth-table re-derivation of
  // the realized error through Cover/TruthTable (not the mapper's cached
  // path) and (b) the SAT backend — the retained rows must be matchable,
  // and the full set must never be provably matchable (the inner exact
  // mapper said no).
  const std::shared_ptr<const Circuit> circuit = compileCircuit("rd53-min");
  const FunctionMatrix& fm = circuit->fm;
  const Cover& cover = circuit->cover;
  ASSERT_EQ(cover.size(), fm.numProductRows());

  const ApproxMapper mapper;
  DefectExperimentConfig config;
  config.samples = 40;
  config.seed = 0xf00d;
  config.stuckOpenRate = 0.25;

  std::vector<std::size_t> outputRows;
  for (std::size_t o = 0; o < fm.numOutputRows(); ++o)
    outputRows.push_back(fm.rowOfOutput(o));
  std::vector<std::size_t> allCmRows(0);
  std::size_t partials = 0;
  std::size_t satChecked = 0;
  // The per-cube conflict budget idiom of the optimality suite: feasible
  // sides resolve constructively in a few hundred conflicts; infeasible
  // sides may budget-out to Unknown, which is an honest non-answer (and
  // still != Sat). A handful of SAT-checked samples keeps the test fast.
  constexpr std::size_t kMaxSatChecks = 8;

  forEachDefectSample(fm, config, [&](std::size_t, const DefectMap&, const BitMatrix& cm) {
    const MappingResult result = mapper.map(fm, cm);
    if (result.success) {
      EXPECT_TRUE(verifyMapping(fm, cm, result));
      return;
    }
    if (result.droppedRows.empty()) return;  // total failure (binary)
    ++partials;
    EXPECT_TRUE(verifyPartialMapping(fm, cm, result));
    EXPECT_LE(result.realizedError, mapper.options().epsilon);

    // (a) Exhaustive re-derivation: realized = the retained cubes as a
    // fresh Cover, compared minterm by minterm against the full cover.
    Cover retained(cover.nin(), cover.nout());
    std::vector<std::size_t> retainedRows;
    std::size_t nextDrop = 0;
    for (std::size_t i = 0; i < cover.size(); ++i) {
      if (nextDrop < result.droppedRows.size() && result.droppedRows[nextDrop] == i) {
        ++nextDrop;
        continue;
      }
      retained.add(cover.cube(i));
      retainedRows.push_back(i);
    }
    const TruthTable specTt = TruthTable::fromCover(cover);
    const TruthTable gotTt = TruthTable::fromCover(retained);
    std::size_t wrong = 0;
    for (std::size_t o = 0; o < specTt.nout(); ++o)
      for (std::size_t m = 0; m < specTt.numMinterms(); ++m)
        if (specTt.get(o, m) != gotTt.get(o, m)) ++wrong;
    const double exhaustive = static_cast<double>(wrong) /
                              static_cast<double>(specTt.nout() * specTt.numMinterms());
    EXPECT_DOUBLE_EQ(result.realizedError, exhaustive);

    // (b) SAT cross-check. Retained product rows + output rows must be
    // matchable...
    if (satChecked >= kMaxSatChecks) return;
    ++satChecked;
    if (allCmRows.size() != cm.rows()) {
      allCmRows.resize(cm.rows());
      for (std::size_t r = 0; r < cm.rows(); ++r) allCmRows[r] = r;
    }
    std::vector<std::size_t> fmRows = retainedRows;
    fmRows.insert(fmRows.end(), outputRows.begin(), outputRows.end());
    const BitMatrix subsetAdj = buildCandidateAdjacency(fm.bits(), fmRows, cm, allCmRows);
    sat::MatchingCnf subsetEnc = sat::encodeMatching(subsetAdj);
    ASSERT_FALSE(subsetEnc.trivialUnsat);
    sat::SolverOptions options;
    options.conflictLimit = 10000;
    EXPECT_EQ(sat::solveCubes(subsetEnc.cnf, sat::generateCubes(subsetEnc, 2), options).verdict,
              sat::Verdict::Sat)
        << "retained rows must be matchable";
    // ...and the full row set must never be proven matchable.
    const BitMatrix fullAdj = buildCandidateAdjacency(fm.bits(), cm);
    sat::MatchingCnf fullEnc = sat::encodeMatching(fullAdj);
    if (!fullEnc.trivialUnsat) {
      EXPECT_NE(sat::solveCubes(fullEnc.cnf, sat::generateCubes(fullEnc, 2), options).verdict,
                sat::Verdict::Sat)
          << "a rescue happened on a sample the exact mapper could have mapped";
    }
  });
  EXPECT_GT(partials, 0u) << "the rate/seed must actually exercise the rescue path";
}

TEST_F(ApproxTestMapper, EngineCountsGradedAcceptanceAndRescues) {
  const auto run = [](double epsilon) {
    return ExperimentBuilder()
        .circuit("rd53-min")
        .mapper(R"({"mapper": "approx", "inner": "fast-ea", "epsilon": 1.0})")
        .legacyRates(0.25)
        .samples(40)
        .seed(0xf00d)
        .errorBudget(epsilon)
        .run();
  };
  // eps = 0: the graded path must collapse to the classical verdict.
  const ExperimentResult exact = run(0.0);
  EXPECT_EQ(exact.outcome.epsilonAccepted, exact.outcome.successes);
  EXPECT_EQ(exact.outcome.rescued, 0u);
  EXPECT_TRUE(exact.graded);

  // eps = 0.05: rescued samples join the accepted count.
  const ExperimentResult graded = run(0.05);
  EXPECT_EQ(graded.outcome.successes, exact.outcome.successes)
      << "the exact success count must not depend on the budget";
  EXPECT_GE(graded.outcome.epsilonAccepted, graded.outcome.successes);
  EXPECT_EQ(graded.outcome.rescued,
            graded.outcome.epsilonAccepted - graded.outcome.successes);
  EXPECT_GT(graded.outcome.rescued, 0u) << "0.25 stuck-open must produce rescues";
  EXPECT_GE(graded.functionalYield(), graded.successRate());
  EXPECT_GT(graded.meanRealizedError(), 0.0);
}

}  // namespace
}  // namespace mcx
