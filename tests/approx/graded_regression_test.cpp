// Graded-path regression anchors.
//
// (1) The eps = 0 bit-identity anchor: re-running the committed
// BENCH_defect_mc.json workloads through the GRADED path (errorBudget(0))
// must reproduce the committed success counts exactly, with zero rescues —
// graded acceptance is a strict generalization of pass/fail, and a zero
// budget must collapse to the classical verdict bit-for-bit.
//
// (2) The committed BENCH_approx.json pin: the file's structural invariants
// (monotone yield curves, yield(0) == exact successes, nonzero rescues) are
// re-asserted, and one cell is re-derived from scratch and compared
// bit-exactly, so the graded engine + approx mapper + NN generator chain
// cannot drift silently.
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>

#include "api/experiment.hpp"
#include "scenario/spec.hpp"

#ifndef MCX_REPO_ROOT
#error "MCX_REPO_ROOT must point at the repository root (set by CMake)"
#endif

namespace mcx {
namespace {

SpecValue loadCommittedJson(const std::string& name) {
  std::ifstream file(std::string(MCX_REPO_ROOT) + "/" + name);
  EXPECT_TRUE(file.good()) << "committed " << name << " not found";
  std::ostringstream buffer;
  buffer << file.rdbuf();
  return parseSpec(buffer.str());
}

std::string workloadSpec(const std::string& name) {
  if (name == "rd53") return "rd53-min";
  if (name == "sqrt8") return "sqrt8-min";
  if (name == "t481 stand-in") return "t481";
  if (name == "bw") return "bw";
  ADD_FAILURE() << "unknown committed workload " << name;
  return "rd53";
}

TEST(ApproxTestGradedAnchor, ZeroBudgetReproducesCommittedPassFailCounts) {
  const SpecValue doc = loadCommittedJson("BENCH_defect_mc.json");
  ASSERT_TRUE(doc.isObject());
  const auto samples = static_cast<std::size_t>(doc.numberOr("samples", 0));
  const double rate = doc.numberOr("stuck_open_rate", 0.0);
  ASSERT_GT(samples, 0u);
  ASSERT_GT(rate, 0.0);

  const SpecValue* circuits = doc.find("circuits");
  ASSERT_NE(circuits, nullptr);
  std::size_t checked = 0;
  for (const SpecValue& circuit : circuits->array) {
    const std::string spec = workloadSpec(circuit.stringOr("name", ""));
    const SpecValue* mappers = circuit.find("mappers");
    ASSERT_NE(mappers, nullptr);
    for (const SpecValue& entry : mappers->array) {
      if (entry.stringOr("scenario", "") != "iid (legacy rates)") continue;
      const std::string mapperName = entry.stringOr("mapper", "");
      const std::string preset = mapperName == "HBA"   ? "hba"
                                 : mapperName == "EA"  ? "ea"
                                                       : "";
      ASSERT_FALSE(preset.empty()) << mapperName;
      const auto committed = static_cast<std::size_t>(
          entry.find("runs")->array.front().numberOr("successes", -1));

      const ExperimentResult result = ExperimentBuilder()
                                          .circuit(spec)
                                          .multiLevel()
                                          .mapper(preset)
                                          .legacyRates(rate)
                                          .samples(samples)
                                          .seed(0x51a)
                                          .threads(1)
                                          .errorBudget(0.0)
                                          .run();
      EXPECT_TRUE(result.graded);
      EXPECT_EQ(result.outcome.successes, committed)
          << spec << " / " << preset << ": graded run changed the exact verdict";
      EXPECT_EQ(result.outcome.epsilonAccepted, committed)
          << spec << " / " << preset << ": eps=0 acceptance must equal pass/fail";
      EXPECT_EQ(result.outcome.rescued, 0u) << spec << " / " << preset;
      ++checked;
    }
  }
  EXPECT_EQ(checked, 8u);
}

TEST(ApproxTestBenchPin, CommittedApproxJsonInvariantsHold) {
  const SpecValue doc = loadCommittedJson("BENCH_approx.json");
  ASSERT_TRUE(doc.isObject());
  EXPECT_EQ(doc.stringOr("bench", ""), "ablation-approx");
  EXPECT_EQ(doc.numberOr("yield_zero_mismatches", -1), 0.0);
  EXPECT_EQ(doc.numberOr("monotonicity_violations", -1), 0.0);
  EXPECT_GT(doc.numberOr("total_rescued", 0), 0.0)
      << "the committed run must show real rescues";

  const SpecValue* grid = doc.find("epsilon_grid");
  ASSERT_NE(grid, nullptr);
  ASSERT_GE(grid->array.size(), 2u);
  EXPECT_EQ(grid->array.front().number, 0.0);

  const SpecValue* cells = doc.find("cells");
  ASSERT_NE(cells, nullptr);
  ASSERT_FALSE(cells->array.empty());
  for (const SpecValue& cell : cells->array) {
    const SpecValue* curve = cell.find("yield");
    ASSERT_NE(curve, nullptr) << cell.stringOr("circuit", "?");
    ASSERT_EQ(curve->array.size(), grid->array.size());
    // yield(0) == exact successes, and the curve is monotone.
    EXPECT_EQ(curve->array.front().number, cell.numberOr("successes", -1))
        << cell.stringOr("circuit", "?");
    for (std::size_t i = 1; i < curve->array.size(); ++i)
      EXPECT_GE(curve->array[i].number, curve->array[i - 1].number)
          << cell.stringOr("circuit", "?") << " step " << i;
  }
}

TEST(ApproxTestBenchPin, RederivesOneCommittedCellBitExactly) {
  const SpecValue doc = loadCommittedJson("BENCH_approx.json");
  ASSERT_TRUE(doc.isObject());
  const auto samples = static_cast<std::size_t>(doc.numberOr("samples", 0));
  const auto seed = static_cast<std::uint64_t>(doc.numberOr("seed", 0));
  ASSERT_GT(samples, 0u);
  const SpecValue* grid = doc.find("epsilon_grid");
  ASSERT_NE(grid, nullptr);

  const SpecValue* cells = doc.find("cells");
  ASSERT_NE(cells, nullptr);
  const SpecValue* pinned = nullptr;
  for (const SpecValue& cell : cells->array)
    if (cell.stringOr("circuit", "") == "rd53-min" && cell.numberOr("rate", 0) == 0.15)
      pinned = &cell;
  ASSERT_NE(pinned, nullptr) << "committed rd53-min @ 15% cell missing";

  const ExperimentResult result =
      ExperimentBuilder()
          .circuit("rd53-min")
          .mapper(R"({"mapper": "approx", "inner": "fast-ea", "epsilon": 1.0})")
          .legacyRates(0.15)
          .samples(samples)
          .seed(seed)
          .errorBudget(1.0)
          .keepMappings(true)
          .run();
  EXPECT_EQ(result.outcome.successes,
            static_cast<std::size_t>(pinned->numberOr("successes", -1)));
  EXPECT_EQ(result.outcome.rescued,
            static_cast<std::size_t>(pinned->numberOr("rescued", -1)));

  const SpecValue* curve = pinned->find("yield");
  ASSERT_NE(curve, nullptr);
  ASSERT_EQ(curve->array.size(), grid->array.size());
  for (std::size_t i = 0; i < grid->array.size(); ++i) {
    const double eps = grid->array[i].number;
    std::size_t ok = 0;
    for (const MappingResult& m : result.outcome.mappings)
      if (m.realizedErrorOrBinary() <= eps) ++ok;
    EXPECT_EQ(ok, static_cast<std::size_t>(curve->array[i].number))
        << "yield(" << eps << ") drifted from the committed curve";
  }
}

}  // namespace
}  // namespace mcx
