// Unit tests of the functional error-metric core (src/approx/error.hpp):
// exact minterm-diff counting, don't-care exclusion, budget acceptance, and
// the retained-subset error of a cover (the quantity the approx mapper
// reports per sample).
#include "approx/error.hpp"

#include <gtest/gtest.h>

#include "logic/cover.hpp"
#include "logic/truth_table.hpp"
#include "util/error.hpp"

namespace mcx {
namespace {

using approx::compareTruthTables;
using approx::coverSubsetError;
using approx::ErrorBudget;
using approx::ErrorReport;

TEST(ApproxTestError, IdenticalTablesAreExact) {
  const TruthTable tt = TruthTable::fromFunction(
      3, 2, [](std::size_t m, std::size_t o) { return ((m >> o) & 1u) != 0; });
  const ErrorReport report = compareTruthTables(tt, tt);
  EXPECT_EQ(report.carePairs, 2u * 8u);
  EXPECT_EQ(report.wrongPairs, 0u);
  EXPECT_EQ(report.fraction(), 0.0);
}

TEST(ApproxTestError, CountsDiffsPerOutput) {
  TruthTable spec(2, 2);
  spec.set(0, 1);
  spec.set(0, 3);
  spec.set(1, 0);
  TruthTable realized = spec;
  realized.set(0, 1, false);  // one wrong pair on output 0
  realized.set(1, 2, true);   // one wrong pair on output 1
  const ErrorReport report = compareTruthTables(spec, realized);
  EXPECT_EQ(report.carePairs, 8u);
  EXPECT_EQ(report.wrongPairs, 2u);
  ASSERT_EQ(report.wrongPerOutput.size(), 2u);
  EXPECT_EQ(report.wrongPerOutput[0], 1u);
  EXPECT_EQ(report.wrongPerOutput[1], 1u);
  EXPECT_DOUBLE_EQ(report.fraction(), 0.25);
  EXPECT_DOUBLE_EQ(report.fractionForOutput(0), 0.25);
}

TEST(ApproxTestError, DontCarePairsAreExcludedFromBothCounts) {
  TruthTable spec(2, 1);
  spec.set(0, 1);
  TruthTable realized(2, 1);  // all-zero: minterm 1 is wrong
  TruthTable dc(2, 1);
  dc.set(0, 1);  // ...but the spec does not care about it
  const ErrorReport report = compareTruthTables(spec, realized, dc);
  EXPECT_EQ(report.carePairs, 3u);
  EXPECT_EQ(report.wrongPairs, 0u);
  EXPECT_EQ(report.fraction(), 0.0);
}

TEST(ApproxTestError, EmptyCareSetCountsAsExact) {
  ErrorReport report;
  EXPECT_EQ(report.fraction(), 0.0);
}

TEST(ApproxTestError, BudgetChecksGlobalAndPerOutputFractions) {
  ErrorReport report;
  report.carePairs = 8;
  report.wrongPairs = 1;
  report.wrongPerOutput = {1, 0};
  report.carePerOutput = {4, 4};

  ErrorBudget budget;
  budget.epsilon = 0.125;
  EXPECT_TRUE(budget.withinBudget(report));
  budget.epsilon = 0.1;
  EXPECT_FALSE(budget.withinBudget(report));

  budget.epsilon = 0.5;
  budget.perOutputEpsilon = {0.25, 0.0};
  EXPECT_TRUE(budget.withinBudget(report));
  budget.perOutputEpsilon = {0.1, 0.0};  // output 0 is 25% wrong
  EXPECT_FALSE(budget.withinBudget(report));
}

TEST(ApproxTestError, FullRetentionOfACoverIsExact) {
  Cover cover(2, 1);
  cover.add(makeCube("1-", "1"));
  cover.add(makeCube("-1", "1"));
  const ErrorReport report = coverSubsetError(cover, {0, 1});
  EXPECT_EQ(report.wrongPairs, 0u);
  EXPECT_EQ(report.carePairs, 4u);
}

TEST(ApproxTestError, DroppedCubeCostsExactlyItsUniqueCoverage) {
  // ON set = {m1, m3} from "1-" union {m2, m3} from "-1". Dropping the
  // second cube loses only m2 (m3 stays covered by the first).
  Cover cover(2, 1);
  cover.add(makeCube("1-", "1"));
  cover.add(makeCube("-1", "1"));
  const ErrorReport report = coverSubsetError(cover, {0});
  EXPECT_EQ(report.carePairs, 4u);
  EXPECT_EQ(report.wrongPairs, 1u);
  EXPECT_DOUBLE_EQ(report.fraction(), 0.25);
}

TEST(ApproxTestError, SubsetErrorHonorsDontCares) {
  Cover cover(2, 1);
  cover.add(makeCube("1-", "1"));
  cover.add(makeCube("-1", "1"));
  Cover dc(2, 1);
  dc.add(makeCube("01", "1"));  // m2 — exactly the pair dropping cube 1 loses
  const ErrorReport report = coverSubsetError(cover, dc, {0});
  EXPECT_EQ(report.carePairs, 3u);
  EXPECT_EQ(report.wrongPairs, 0u);
}

TEST(ApproxTestError, RetainedIndexOutOfRangeThrows) {
  Cover cover(2, 1);
  cover.add(makeCube("1-", "1"));
  EXPECT_THROW(coverSubsetError(cover, {1}), Error);
}

}  // namespace
}  // namespace mcx
