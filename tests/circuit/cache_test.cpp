#include "circuit/cache.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <thread>
#include <vector>

#include "circuit/registry.hpp"
#include "util/error.hpp"

namespace mcx {
namespace {

/// A private cache per test: the global one is shared with other suites.
class CircuitCacheTest : public ::testing::Test {
protected:
  CircuitCache cache;
};

TEST_F(CircuitCacheTest, RepeatedSpecSharesTheArtifact) {
  const CircuitSpec spec = makeCircuitSpec("rd53-min");
  const auto first = cache.compile(spec);
  const auto second = cache.compile(spec);
  EXPECT_EQ(first.get(), second.get()) << "a cache hit must not re-synthesize";
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.size(), 1u);
}

TEST_F(CircuitCacheTest, CachedAndFreshCompilesAreBitIdentical) {
  const CircuitSpec spec =
      makeCircuitSpec(R"({"circuit":"rd53-min","realize":"multilevel"})");
  const auto cached = cache.compile(spec);
  const auto fresh = compileCircuit(spec, /*useCache=*/false);
  EXPECT_NE(cached.get(), fresh.get());
  EXPECT_EQ(cached->cover, fresh->cover);
  EXPECT_EQ(cached->fm.bits(), fresh->fm.bits());
  EXPECT_EQ(cached->layout->connOfGate, fresh->layout->connOfGate);
}

TEST_F(CircuitCacheTest, BypassDoesNotTouchTheCache) {
  const CircuitSpec spec = makeCircuitSpec("fig5");
  const auto fresh = compileCircuit(spec, /*useCache=*/false);
  EXPECT_NE(fresh, nullptr);
  EXPECT_EQ(cache.size(), 0u);
}

TEST_F(CircuitCacheTest, DistinctKnobsAreDistinctEntries) {
  CircuitSpec two = makeCircuitSpec("rd53");
  CircuitSpec multi = two;
  multi.realize = CircuitSpec::Realize::MultiLevel;
  const auto a = cache.compile(two);
  const auto b = cache.compile(multi);
  EXPECT_NE(a.get(), b.get());
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.stats().hits, 0u);
}

TEST_F(CircuitCacheTest, RealizationVariantsShareOneSynthesisRun) {
  // The expensive stage is keyed by source + synth alone: two-level,
  // multi-level and differently factored variants of one declaration must
  // synthesize once (stats.coverMisses) and share the identical cover.
  CircuitSpec spec = makeCircuitSpec("rd53-min");
  const auto two = cache.compile(spec);
  spec.realize = CircuitSpec::Realize::MultiLevel;
  const auto multi = cache.compile(spec);
  spec.factoring = CircuitSpec::Factoring::Kernel;
  const auto kernel = cache.compile(spec);

  const CircuitCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.misses, 3u);
  EXPECT_EQ(stats.coverMisses, 1u) << "espresso must run once across realizations";
  EXPECT_EQ(stats.coverHits, 2u);
  EXPECT_EQ(two->cover, multi->cover);
  EXPECT_EQ(two->cover, kernel->cover);
  EXPECT_NE(multi->fm.bits(), two->fm.bits());
}

TEST_F(CircuitCacheTest, ConcurrentCompilesAreDeterministic) {
  // Hammer one spec (plus a few distinct ones) from several threads: every
  // returned artifact must be bit-identical to a fresh compile, and the
  // shared spec must compile exactly once.
  const CircuitSpec shared = makeCircuitSpec("rd53-min");
  const auto reference = compileCircuit(shared, /*useCache=*/false);

  constexpr std::size_t kThreads = 8;
  std::vector<std::shared_ptr<const Circuit>> results(kThreads);
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t)
    threads.emplace_back([&, t] {
      if (t % 2 == 1) cache.compile(makeCircuitSpec("gen:majority" + std::to_string(t)));
      results[t] = cache.compile(shared);
    });
  for (std::thread& thread : threads) thread.join();

  for (std::size_t t = 0; t < kThreads; ++t) {
    ASSERT_NE(results[t], nullptr);
    EXPECT_EQ(results[t].get(), results[0].get());
    EXPECT_EQ(results[t]->fm.bits(), reference->fm.bits());
    EXPECT_EQ(results[t]->cover, reference->cover);
  }
  const CircuitCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.misses, 1u + kThreads / 2) << "shared spec + 4 distinct generators";
  EXPECT_EQ(stats.hits + stats.misses, kThreads + kThreads / 2);
}

TEST_F(CircuitCacheTest, FileContentIsTheKey) {
  const std::string path = ::testing::TempDir() + "/mcx_cache_test.pla";
  auto writeFile = [&path](const std::string& body) {
    std::ofstream file(path);
    file << body;
  };
  writeFile(".i 2\n.o 1\n11 1\n.e\n");
  const CircuitSpec spec = makeCircuitSpec("file:" + path);

  const auto first = cache.compile(spec);
  const auto again = cache.compile(spec);
  EXPECT_EQ(first.get(), again.get());

  // Same path, different bytes: the content key must miss and recompile.
  writeFile(".i 2\n.o 1\n11 1\n00 1\n.e\n");
  const auto edited = cache.compile(spec);
  EXPECT_NE(edited.get(), first.get());
  EXPECT_EQ(edited->cover.size(), 2u);
  EXPECT_EQ(cache.stats().misses, 2u);

  std::remove(path.c_str());
  EXPECT_THROW(cache.compile(spec), ParseError) << "unreadable file is a hard error";
}

TEST_F(CircuitCacheTest, LabelDiffersButCompileIsShared) {
  // The label is presentation, not identity: the heavy compile is shared,
  // but each declaration gets its own label back.
  CircuitSpec plain = makeCircuitSpec("gen:parity4");
  CircuitSpec named = plain;
  named.label = "mine";
  const auto a = cache.compile(plain);
  const auto b = cache.compile(named);
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(a->label, "parity4");
  EXPECT_EQ(b->label, "mine");
  EXPECT_EQ(a->fm.bits(), b->fm.bits());
}

TEST_F(CircuitCacheTest, ClearResets) {
  cache.compile(makeCircuitSpec("fig5"));
  cache.clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.stats().misses, 0u);
  cache.compile(makeCircuitSpec("fig5"));
  EXPECT_EQ(cache.stats().misses, 1u);
}

TEST(CircuitContentKey, DistinguishesContentNotLabel) {
  CircuitSpec a = makeCircuitSpec("rd53");
  CircuitSpec b = a;
  b.label = "other-name";
  EXPECT_EQ(circuitContentKey(a), circuitContentKey(b));

  CircuitSpec inlineA = makeCircuitSpec("sop:x1 x2");
  CircuitSpec inlineB = makeCircuitSpec("sop:x1 + x2");
  EXPECT_NE(circuitContentKey(inlineA), circuitContentKey(inlineB));
  EXPECT_NE(fnv1a64(circuitContentKey(inlineA)), fnv1a64(circuitContentKey(inlineB)));
}

}  // namespace
}  // namespace mcx
