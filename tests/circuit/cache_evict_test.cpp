// Byte-accounted LRU eviction: budget invariants, LRU order, stats, and the
// concurrent eviction-vs-hit bit-identity hammer. A private cache per test —
// the global one is shared with other suites (and is the only instance that
// publishes the circuit.cache_bytes gauge).
#include "circuit/cache.hpp"

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "circuit/registry.hpp"
#include "obs/metrics.hpp"

namespace mcx {
namespace {

class CacheEvictTest : public ::testing::Test {
protected:
  CircuitCache cache;
};

/// A family of distinct specs with non-trivial footprints (generator
/// circuits: no file I/O, deterministic, a few KB each realized).
std::vector<CircuitSpec> distinctSpecs(std::size_t count) {
  std::vector<CircuitSpec> specs;
  const char* families[] = {"gen:majority", "gen:parity", "gen:weight"};
  for (std::size_t i = 0; i < count; ++i) {
    const std::string source = std::string(families[i % 3]) + std::to_string(4 + i % 5);
    specs.push_back(i % 2 ? makeCircuitSpec(R"({"circuit":")" + source +
                                            R"(","realize":"multilevel"})")
                          : makeCircuitSpec(source));
  }
  return specs;
}

TEST_F(CacheEvictTest, UnboundedByDefault) {
  EXPECT_EQ(cache.byteBudget(), 0u);
  for (const CircuitSpec& spec : distinctSpecs(6)) cache.compile(spec);
  EXPECT_EQ(cache.stats().evictions, 0u);
  EXPECT_GT(cache.currentBytes(), 0u) << "inserts must be byte-accounted even unbounded";
}

TEST_F(CacheEvictTest, BytesTrackEstimates) {
  const auto circuit = cache.compile(makeCircuitSpec("gen:parity4"));
  EXPECT_GE(cache.currentBytes(), circuit->estimatedBytes())
      << "resident bytes must include the realized circuit";
  cache.clear();
  EXPECT_EQ(cache.currentBytes(), 0u);
}

TEST_F(CacheEvictTest, BudgetIsEnforcedAfterEveryInsert) {
  const auto specs = distinctSpecs(10);
  // Size the budget to roughly two circuits' worth of footprint.
  const auto probe = cache.compile(specs[0]);
  const std::size_t budget = 3 * probe->estimatedBytes();
  cache.clear();
  cache.setByteBudget(budget);
  for (const CircuitSpec& spec : specs) {
    cache.compile(spec);
    EXPECT_LE(cache.currentBytes(), budget)
        << "budget must hold after every insert returns";
  }
  const CircuitCache::Stats stats = cache.stats();
  EXPECT_GT(stats.evictions, 0u);
  EXPECT_GT(stats.evictedBytes, 0u);
}

TEST_F(CacheEvictTest, ShrinkingTheBudgetEvictsImmediately) {
  for (const CircuitSpec& spec : distinctSpecs(6)) cache.compile(spec);
  const std::size_t before = cache.currentBytes();
  ASSERT_GT(before, 128u);
  cache.setByteBudget(before / 2);
  EXPECT_LE(cache.currentBytes(), before / 2);
  EXPECT_GT(cache.stats().evictions, 0u);
}

TEST_F(CacheEvictTest, LeastRecentlyUsedGoesFirst) {
  const CircuitSpec hot = makeCircuitSpec("gen:majority5");
  const CircuitSpec cold = makeCircuitSpec("gen:parity5");
  const auto hotArtifact = cache.compile(hot);
  cache.compile(cold);
  cache.compile(hot);  // refresh: cold is now the LRU entry

  // A budget of exactly the current footprint minus one byte must evict
  // the cold entry (and possibly its cover), never the hot circuit.
  cache.setByteBudget(cache.currentBytes() - 1);
  EXPECT_GT(cache.stats().evictions, 0u);
  const auto again = cache.compile(hot);
  EXPECT_EQ(again.get(), hotArtifact.get()) << "the refreshed entry must survive";
}

TEST_F(CacheEvictTest, EvictedSpecRecompilesBitIdentical) {
  const CircuitSpec spec =
      makeCircuitSpec(R"({"circuit":"gen:weight5","realize":"multilevel"})");
  const auto first = cache.compile(spec);
  cache.setByteBudget(1);  // evict everything on the next enforcement
  cache.compile(makeCircuitSpec("gen:parity4"));
  EXPECT_EQ(cache.size(), 0u) << "1-byte budget keeps nothing resident";

  // The held shared_ptr stays valid after eviction, and the re-compile is
  // a distinct but bit-identical artifact.
  const auto second = cache.compile(spec);
  EXPECT_NE(first.get(), second.get());
  EXPECT_EQ(first->cover, second->cover);
  EXPECT_EQ(first->fm.bits(), second->fm.bits());
  EXPECT_EQ(first->layout->connOfGate, second->layout->connOfGate);
}

TEST_F(CacheEvictTest, RegistryCountersAndGauge) {
  obs::Registry& registry = obs::Registry::global();
  const std::uint64_t evictionsBefore = registry.counter("circuit.cache.evictions").value();
  cache.setByteBudget(1);
  cache.compile(makeCircuitSpec("gen:parity4"));
  EXPECT_GT(registry.counter("circuit.cache.evictions").value(), evictionsBefore);

  // Only the global cache drives the gauge: this private cache's churn must
  // not perturb it, while the global instance publishes its own footprint.
  const std::int64_t gaugeBefore = registry.gauge("circuit.cache_bytes").value();
  cache.compile(makeCircuitSpec("gen:parity5"));
  EXPECT_EQ(registry.gauge("circuit.cache_bytes").value(), gaugeBefore);
  const auto held = CircuitCache::global().compile(makeCircuitSpec("gen:majority4"));
  EXPECT_GE(registry.gauge("circuit.cache_bytes").value(),
            static_cast<std::int64_t>(held->estimatedBytes()));
}

TEST_F(CacheEvictTest, ConcurrentEvictionHammerStaysBitIdentical) {
  // The satellite contract: 8 threads compiling a spec set ~4x the byte
  // budget; every returned circuit bit-identical to a fresh compile, and
  // the budget never exceeded after any insert returns.
  const auto specs = distinctSpecs(12);
  std::vector<std::shared_ptr<const Circuit>> references;
  std::size_t workingSet = 0;
  for (const CircuitSpec& spec : specs) {
    references.push_back(compileCircuit(spec, /*useCache=*/false));
    workingSet += references.back()->estimatedBytes();
  }
  const std::size_t budget = workingSet / 4;
  cache.setByteBudget(budget);

  constexpr std::size_t kThreads = 8;
  constexpr std::size_t kRounds = 6;
  std::vector<std::string> failures(kThreads);
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t)
    threads.emplace_back([&, t] {
      for (std::size_t round = 0; round < kRounds; ++round) {
        for (std::size_t i = 0; i < specs.size(); ++i) {
          const std::size_t pick = (i + t * 5 + round) % specs.size();
          const auto got = cache.compile(specs[pick]);
          if (got->fm.bits() != references[pick]->fm.bits() ||
              got->cover != references[pick]->cover) {
            failures[t] = "spec " + std::to_string(pick) + " not bit-identical";
            return;
          }
          if (cache.currentBytes() > budget) {
            failures[t] = "budget exceeded after insert";
            return;
          }
        }
      }
    });
  for (std::thread& thread : threads) thread.join();
  for (std::size_t t = 0; t < kThreads; ++t) EXPECT_EQ(failures[t], "") << "thread " << t;

  const CircuitCache::Stats stats = cache.stats();
  EXPECT_GT(stats.evictions, 0u) << "a 1/4-working-set budget must churn";
  EXPECT_LE(cache.currentBytes(), budget);
}

}  // namespace
}  // namespace mcx
