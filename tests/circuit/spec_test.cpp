#include "circuit/spec.hpp"

#include <gtest/gtest.h>

#include "circuit/registry.hpp"
#include "scenario/spec.hpp"
#include "util/error.hpp"

namespace mcx {
namespace {

TEST(CircuitSpec, SourceStringForms) {
  const CircuitSpec gen = circuitSourceSpec("gen:weight5");
  EXPECT_EQ(gen.source, CircuitSpec::Source::Generator);
  EXPECT_EQ(gen.name, "weight5");

  const CircuitSpec pla = circuitSourceSpec("pla:.i 2\n.o 1\n11 1\n.e");
  EXPECT_EQ(pla.source, CircuitSpec::Source::InlinePla);

  const CircuitSpec sop = circuitSourceSpec("sop:x1 x2 + !x3");
  EXPECT_EQ(sop.source, CircuitSpec::Source::InlineSop);
  EXPECT_EQ(sop.text, "x1 x2 + !x3");

  const CircuitSpec bare = circuitSourceSpec("rd53");
  EXPECT_EQ(bare.source, CircuitSpec::Source::Registry);
  EXPECT_EQ(bare.name, "rd53");
}

TEST(CircuitSpec, SourceStringErrors) {
  EXPECT_THROW(circuitSourceSpec("file:"), ParseError);                 // empty path
  EXPECT_THROW(circuitSourceSpec("file:/nonexistent/x.pla"), ParseError);
  EXPECT_THROW(circuitSourceSpec("pla:"), ParseError);
  EXPECT_THROW(circuitSourceSpec("sop:"), ParseError);
  EXPECT_THROW(circuitSourceSpec("gen:weight"), ParseError);            // no size
  EXPECT_THROW(circuitSourceSpec("gen:5weight"), ParseError);           // size first
  EXPECT_THROW(circuitSourceSpec("gen:bogus7"), ParseError);            // unknown family
  EXPECT_THROW(circuitSourceSpec("gen:weight0"), ParseError);           // zero size
  // The arity bound fires at declaration time, not mid-experiment.
  EXPECT_THROW(circuitSourceSpec("gen:weight20"), ParseError);
  EXPECT_THROW(circuitSourceSpec("gen:adder9"), ParseError);            // 18 inputs
  EXPECT_NO_THROW(circuitSourceSpec("gen:adder8"));                     // 16 inputs
}

TEST(CircuitSpec, GeneratorIdParsing) {
  const GeneratorId gen = parseGeneratorId("majority7");
  EXPECT_EQ(gen.family, "majority");
  EXPECT_EQ(gen.size, 7u);
}

TEST(CircuitSpec, CanonicalCoversTheKnobs) {
  CircuitSpec spec = circuitSourceSpec("rd53");
  EXPECT_EQ(spec.canonical(), "circuit{src=reg:rd53;synth=none;realize=two-level}");

  spec.synth = CircuitSpec::Synth::Espresso;
  spec.realize = CircuitSpec::Realize::MultiLevel;
  spec.factoring = CircuitSpec::Factoring::Kernel;
  spec.maxFanin = 4;
  EXPECT_EQ(spec.canonical(),
            "circuit{src=reg:rd53;synth=espresso;realize=multilevel;"
            "factoring=kernel;fanin=4}");

  // The factoring/fan-in knobs only exist for multi-level realizations:
  // they must not split two-level cache keys.
  CircuitSpec a = circuitSourceSpec("rd53");
  CircuitSpec b = circuitSourceSpec("rd53");
  b.factoring = CircuitSpec::Factoring::Kernel;
  b.maxFanin = 4;
  EXPECT_EQ(a.canonical(), b.canonical());

  // The label is presentation, not identity.
  CircuitSpec labeled = circuitSourceSpec("rd53");
  labeled.label = "pretty";
  EXPECT_EQ(labeled.canonical(), a.canonical());
  EXPECT_EQ(labeled.displayLabel(), "pretty");
  EXPECT_EQ(a.displayLabel(), "rd53");
}

TEST(CircuitSpec, EnumParsersRejectUnknownValues) {
  EXPECT_EQ(synthFromString("espresso"), CircuitSpec::Synth::Espresso);
  EXPECT_EQ(realizeFromString("multilevel"), CircuitSpec::Realize::MultiLevel);
  EXPECT_EQ(realizeFromString("multi-level"), CircuitSpec::Realize::MultiLevel);
  EXPECT_EQ(factoringFromString("best"), CircuitSpec::Factoring::Best);
  EXPECT_THROW(synthFromString("expresso"), ParseError);
  EXPECT_THROW(realizeFromString("3d"), ParseError);
  EXPECT_THROW(factoringFromString("fast"), ParseError);
}

TEST(CircuitSpecJson, ParsesFullSpec) {
  const CircuitSpec spec = makeCircuitSpec(
      R"({"circuit": "gen:weight5", "synth": "espresso", "realize": "multilevel",
          "factoring": "kernel", "maxFanin": 4, "label": "rd53ish"})");
  EXPECT_EQ(spec.source, CircuitSpec::Source::Generator);
  EXPECT_EQ(spec.name, "weight5");
  EXPECT_EQ(spec.synth, CircuitSpec::Synth::Espresso);
  EXPECT_EQ(spec.realize, CircuitSpec::Realize::MultiLevel);
  EXPECT_EQ(spec.factoring, CircuitSpec::Factoring::Kernel);
  EXPECT_EQ(spec.maxFanin, 4u);
  EXPECT_EQ(spec.displayLabel(), "rd53ish");
}

TEST(CircuitSpecJson, PresetBaseWithOverrides) {
  // "circuit" may name a preset; the other members override its knobs.
  const CircuitSpec spec =
      makeCircuitSpec(R"({"circuit": "rd53-min", "realize": "multilevel"})");
  EXPECT_EQ(spec.source, CircuitSpec::Source::Generator);
  EXPECT_EQ(spec.name, "weight5");
  EXPECT_EQ(spec.synth, CircuitSpec::Synth::Espresso);
  EXPECT_EQ(spec.realize, CircuitSpec::Realize::MultiLevel);
}

TEST(CircuitSpecJson, RecordsExplicitlySetKnobs) {
  // Tools that override defaults (the multilevel suite, fig6's reference
  // row) need to distinguish a deliberate knob from the default — label
  // text mentioning "realize" must not trip the detection.
  const CircuitSpec defaulted =
      makeCircuitSpec(R"({"circuit": "rd53", "label": "my \"realize\" run"})");
  EXPECT_FALSE(defaulted.realizeExplicit);
  EXPECT_FALSE(defaulted.factoringExplicit);

  const CircuitSpec explicitKnobs = makeCircuitSpec(
      R"({"circuit": "rd53", "realize": "two-level", "factoring": "quick"})");
  EXPECT_TRUE(explicitKnobs.realizeExplicit);
  EXPECT_TRUE(explicitKnobs.factoringExplicit);
}

TEST(CircuitSpecJson, HardErrors) {
  EXPECT_THROW(makeCircuitSpec("{}"), ParseError);                        // no circuit
  EXPECT_THROW(makeCircuitSpec(R"({"circuit": "rd53", "synth": "qqq"})"), ParseError);
  EXPECT_THROW(makeCircuitSpec(R"({"circuit": "rd53", "realize": "3d"})"), ParseError);
  EXPECT_THROW(makeCircuitSpec(R"({"circuit": "rd53", "factoring": "x"})"), ParseError);
  EXPECT_THROW(makeCircuitSpec(R"({"circuit": "rd53", "maxFanin": -1})"), ParseError);
  EXPECT_THROW(makeCircuitSpec(R"({"circuit": "rd53", "maxFanin": 0.5})"), ParseError);
  EXPECT_THROW(makeCircuitSpec(R"({"circuit": "rd53", "typo": 1})"), ParseError);
  EXPECT_THROW(makeCircuitSpec(R"({"circuit": 42})"), ParseError);        // wrong type
  EXPECT_THROW(makeCircuitSpec(R"({"circuit": "no-such"})"), ParseError);
  EXPECT_THROW(makeCircuitSpec("[1, 2]"), ParseError);                    // not an object
}

TEST(CircuitSpecJson, UnknownNameListsPresets) {
  try {
    makeCircuitSpec("no-such-circuit");
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("no-such-circuit"), std::string::npos);
    EXPECT_NE(what.find("rd53"), std::string::npos) << "error should list the presets";
    EXPECT_NE(what.find("file:"), std::string::npos) << "error should name the schemes";
  }
}

}  // namespace
}  // namespace mcx
