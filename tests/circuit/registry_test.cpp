#include "circuit/registry.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "api/driver.hpp"
#include "benchdata/registry.hpp"
#include "util/error.hpp"

namespace mcx {
namespace {

TEST(CircuitRegistry, CoversEveryPaperBenchmark) {
  for (const BenchmarkInfo& info : paperBenchmarks()) {
    const CircuitPreset* preset = findCircuitPreset(info.name);
    ASSERT_NE(preset, nullptr) << info.name;
    EXPECT_EQ(preset->spec.source, CircuitSpec::Source::Registry);
    EXPECT_EQ(preset->spec.name, info.name);
    EXPECT_EQ(preset->spec.synth, CircuitSpec::Synth::None)
        << info.name << ": registry presets must keep the historical fast load";
  }
}

TEST(CircuitRegistry, DerivedPresets) {
  ASSERT_NE(findCircuitPreset("rd53-min"), nullptr);
  ASSERT_NE(findCircuitPreset("sqrt8-min"), nullptr);
  ASSERT_NE(findCircuitPreset("majority7-min"), nullptr);
  ASSERT_NE(findCircuitPreset("fig5"), nullptr);
  EXPECT_EQ(findCircuitPreset("rd53-min")->spec.synth, CircuitSpec::Synth::Espresso);
  EXPECT_EQ(findCircuitPreset("fig5")->spec.source, CircuitSpec::Source::InlineSop);
  EXPECT_EQ(findCircuitPreset("bogus"), nullptr);
}

TEST(CircuitRegistry, MakeCircuitSpecResolvesPresetsAndSources) {
  EXPECT_EQ(makeCircuitSpec("rd53-min").canonical(),
            findCircuitPreset("rd53-min")->spec.canonical());
  EXPECT_EQ(makeCircuitSpec("  {\"circuit\": \"bw\"}").name, "bw");
  EXPECT_EQ(makeCircuitSpec("gen:parity4").source, CircuitSpec::Source::Generator);
  EXPECT_THROW(makeCircuitSpec("no-such-circuit"), ParseError);
}

TEST(CircuitRegistry, ListCircuitsPrintsEveryPreset) {
  std::ostringstream out;
  bench::listCircuits(out);
  const std::string listing = out.str();
  for (const CircuitPreset& preset : circuitPresets())
    EXPECT_NE(listing.find(preset.name + "  —  "), std::string::npos) << preset.name;
}

}  // namespace
}  // namespace mcx
