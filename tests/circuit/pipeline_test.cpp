#include "circuit/pipeline.hpp"

#include <gtest/gtest.h>

#include "benchdata/registry.hpp"
#include "circuit/registry.hpp"
#include "logic/espresso.hpp"
#include "logic/generators.hpp"
#include "logic/isop.hpp"
#include "logic/quine_mccluskey.hpp"
#include "logic/truth_table.hpp"
#include "netlist/nand_mapper.hpp"
#include "util/error.hpp"
#include "xbar/multilevel_layout.hpp"

#ifndef MCX_REPO_ROOT
#error "MCX_REPO_ROOT must point at the repository root (set by CMake)"
#endif

namespace mcx {
namespace {

const std::string kAdderPla = std::string(MCX_REPO_ROOT) + "/examples/data/adder.pla";

TEST(CircuitPipeline, RegistryTwoLevelBitIdenticalToHandBuiltPath) {
  // The pipeline must reproduce the experiment suites' historical front-end
  // exactly — this is what keeps the committed BENCH JSON counts valid.
  const Circuit circuit = buildCircuit(makeCircuitSpec("bw"));
  const Cover hand = loadBenchmarkFast("bw").cover;
  EXPECT_EQ(circuit.cover, hand);
  EXPECT_EQ(circuit.fm.bits(), buildFunctionMatrix(hand).bits());
  EXPECT_FALSE(circuit.layout.has_value());
  EXPECT_EQ(circuit.label, "bw");
  EXPECT_EQ(circuit.stats.products, hand.size());
}

TEST(CircuitPipeline, RegistryMultiLevelBitIdenticalToHandBuiltPath) {
  CircuitSpec spec = makeCircuitSpec("t481");
  spec.realize = CircuitSpec::Realize::MultiLevel;
  const Circuit circuit = buildCircuit(spec);
  const MultiLevelLayout hand =
      buildMultiLevelLayout(mapToNand(loadBenchmarkFast("t481").cover));
  ASSERT_TRUE(circuit.layout.has_value());
  EXPECT_EQ(circuit.fm.bits(), hand.fm.bits());
  EXPECT_EQ(circuit.layout->connOfGate, hand.connOfGate);
}

TEST(CircuitPipeline, GeneratorEspressoMatchesHandSynthesis) {
  // rd53-min is the exact cover the multilevel defect suite always built:
  // espressoMinimize(isopCover(weightFunction(5))).
  const Circuit circuit = buildCircuit(makeCircuitSpec("rd53-min"));
  EXPECT_EQ(circuit.cover, espressoMinimize(isopCover(weightFunction(5))));
  EXPECT_EQ(circuit.label, "rd53");
  EXPECT_GE(circuit.stats.sourceProducts, circuit.stats.products);
}

TEST(CircuitPipeline, RegistryEspressoIsThePolishedLoad) {
  const Circuit circuit = buildCircuit(makeCircuitSpec(R"({"circuit":"rd53","synth":"espresso"})"));
  EXPECT_EQ(circuit.cover, loadBenchmark("rd53").cover);
}

TEST(CircuitPipeline, FileSourceRoundTripsTheFunction) {
  const Circuit circuit = buildCircuit(makeCircuitSpec("file:" + kAdderPla));
  EXPECT_EQ(circuit.cover.nin(), 4u);
  EXPECT_EQ(circuit.cover.nout(), 3u);
  EXPECT_EQ(circuit.label, "adder.pla");
  // The fixture is a real 2-bit adder: the compiled cover must compute it.
  EXPECT_EQ(TruthTable::fromCover(circuit.cover), adderFunction(2));

  // Synthesis steps preserve the function.
  for (const char* synth : {"espresso", "qm", "isop"}) {
    const Circuit minimized = buildCircuit(makeCircuitSpec(
        std::string(R"({"circuit":"file:)") + kAdderPla + R"(","synth":")" + synth + "\"}"));
    EXPECT_EQ(TruthTable::fromCover(minimized.cover), adderFunction(2)) << synth;
  }
}

TEST(CircuitPipeline, InlineSourcesCompile) {
  const Circuit pla =
      buildCircuit(makeCircuitSpec("pla:.i 2\n.o 1\n11 1\n00 1\n.e"));
  EXPECT_EQ(pla.cover.size(), 2u);

  const Circuit sop = buildCircuit(makeCircuitSpec("sop:x1 x2 + !x1 !x2"));
  EXPECT_EQ(TruthTable::fromCover(sop.cover), TruthTable::fromCover(pla.cover));
}

TEST(CircuitPipeline, QmSynthesisIsExact) {
  // XOR of 4: QM must land on the 8-minterm optimum.
  const Circuit circuit =
      buildCircuit(makeCircuitSpec(R"({"circuit":"gen:parity4","synth":"qm"})"));
  EXPECT_EQ(circuit.cover.size(), quineMcCluskey(parityFunction(4), 0).cover.size());
  EXPECT_EQ(TruthTable::fromCover(circuit.cover), parityFunction(4));
}

TEST(CircuitPipeline, FactoringKnobSelectsTheMapper) {
  const std::string base = R"({"circuit":"t481","realize":"multilevel","factoring":")";
  const Circuit flat = buildCircuit(makeCircuitSpec(base + "flat\"}"));
  const Circuit kernel = buildCircuit(makeCircuitSpec(base + "kernel\"}"));
  const Circuit best = buildCircuit(makeCircuitSpec(base + "best\"}"));
  // t481 is the structured circuit: kernel factoring must beat the flat
  // NAND-NAND form, and "best" is by construction no worse than either.
  EXPECT_LT(kernel.dims().area(), flat.dims().area());
  EXPECT_LE(best.dims().area(), kernel.dims().area());
  EXPECT_EQ(best.dims().area(),
            multiLevelDims(mapToNandBest(best.cover)).area());
}

TEST(CircuitPipeline, MaxFaninBoundsTheNetwork) {
  const Circuit bounded = buildCircuit(
      makeCircuitSpec(R"({"circuit":"rd53-min","realize":"multilevel","maxFanin":2})"));
  ASSERT_TRUE(bounded.layout.has_value());
  const NandNetwork& net = bounded.layout->network;
  for (const auto gate : net.gates()) EXPECT_LE(net.fanins(gate).size(), 2u);
}

TEST(CircuitPipeline, SemanticErrors) {
  // Registry circuits ship their own synthesis recipe; the JSON parser
  // rejects the combination eagerly, and the pipeline itself backstops
  // directly-constructed specs.
  EXPECT_THROW(makeCircuitSpec(R"({"circuit":"bw","synth":"qm"})"), ParseError);
  EXPECT_THROW(makeCircuitSpec(R"({"circuit":"bw","synth":"isop"})"), ParseError);
  CircuitSpec registryQm;
  registryQm.source = CircuitSpec::Source::Registry;
  registryQm.name = "bw";
  registryQm.synth = CircuitSpec::Synth::Qm;
  EXPECT_THROW(buildCircuit(registryQm), InvalidArgument);
  // QM is exact and bounded; t481 has 16 inputs.
  EXPECT_THROW(buildCircuit(makeCircuitSpec(
                   R"({"circuit":"sop:x1 x13 + x14 x15 x16","synth":"qm"})")),
               InvalidArgument);
  // Unknown registry name straight into the pipeline (bypassing the circuit
  // registry's eager check).
  CircuitSpec unknown;
  unknown.source = CircuitSpec::Source::Registry;
  unknown.name = "no-such";
  EXPECT_THROW(buildCircuit(unknown), InvalidArgument);
  // Malformed inline PLA fails in the parser, with a line number.
  try {
    buildCircuit(makeCircuitSpec("pla:.i 2\n.o 1\n11 1\n"));
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_NE(std::string(e.what()).find("missing .e"), std::string::npos);
  }
}

}  // namespace
}  // namespace mcx
