// SatMapper: exactness against fast-ea, registry spec parsing, engine
// determinism at any thread count, and cancellation semantics.
#include "sat/sat_mapper.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "api/driver.hpp"
#include "logic/generators.hpp"
#include "logic/sop_parser.hpp"
#include "map/fast_exact_mapper.hpp"
#include "map/registry.hpp"
#include "mc/defect_experiment.hpp"
#include "scenario/spec.hpp"
#include "util/error.hpp"
#include "xbar/defects.hpp"

namespace mcx {
namespace {

TEST(SatTestMapper, CleanCrossbarSucceeds) {
  const FunctionMatrix fm = buildFunctionMatrix(parseSop("x1 x2 + x3"));
  const BitMatrix cm(fm.rows(), fm.cols(), true);
  const MappingResult r = SatMapper().map(fm, cm);
  ASSERT_TRUE(r.success);
  EXPECT_FALSE(r.aborted);
  EXPECT_TRUE(verifyMapping(fm, cm, r));
}

TEST(SatTestMapper, TooSmallCrossbarFails) {
  const FunctionMatrix fm = buildFunctionMatrix(parseSop("x1 x2 + x3"));
  const BitMatrix cm(fm.rows() - 1, fm.cols(), true);
  EXPECT_FALSE(SatMapper().map(fm, cm).success);
}

TEST(SatTestMapper, ColumnMismatchThrows) {
  const FunctionMatrix fm = buildFunctionMatrix(parseSop("x1"));
  const BitMatrix cm(fm.rows(), fm.cols() + 1, true);
  EXPECT_THROW(SatMapper().map(fm, cm), InvalidArgument);
}

TEST(SatTestMapper, AgreesWithFastExactMapperEverywhere) {
  // The SAT backend is exact: identical success set to Hopcroft-Karp on
  // random circuits x random defect maps, and every success verifies.
  // Infeasible instances with large Hall certificates are pigeonhole-hard
  // (exponential resolution lower bound), so the budget is bounded: a
  // budget-out still agrees with HK — feasible instances solve
  // constructively orders of magnitude below the limit.
  Rng rng(67);
  const FastExactMapper fast;
  SatMapperOptions satOpts;
  satOpts.conflictLimit = 2048;
  const SatMapper satMapper(satOpts);
  int successes = 0;
  int failures = 0;
  for (int rep = 0; rep < 80; ++rep) {
    RandomSopOptions opts;
    opts.nin = 4 + static_cast<std::size_t>(rng.uniformInt(0, 3));
    opts.nout = 1 + static_cast<std::size_t>(rng.uniformInt(0, 2));
    opts.products = 4 + static_cast<std::size_t>(rng.uniformInt(0, 8));
    const FunctionMatrix fm = buildFunctionMatrix(randomSop(opts, rng));
    Rng sample = rng.split();
    const DefectMap defects = DefectMap::sample(
        fm.rows(), fm.cols(), 0.05 + 0.25 * sample.uniform(), 0.0, sample);
    const BitMatrix cm = crossbarMatrix(defects);
    const MappingResult viaSat = satMapper.map(fm, cm);
    const MappingResult viaHk = fast.map(fm, cm);
    ASSERT_EQ(viaSat.success, viaHk.success) << "rep " << rep;
    if (viaSat.success) {
      EXPECT_TRUE(verifyMapping(fm, cm, viaSat)) << "rep " << rep;
      ++successes;
    } else {
      EXPECT_FALSE(viaSat.aborted) << "rep " << rep;
      ++failures;
    }
  }
  EXPECT_GT(successes, 10);
  EXPECT_GT(failures, 10);
}

TEST(SatTestMapper, RegistryPresetAndSpecRoundTrip) {
  ASSERT_NE(findMapperPreset("sat"), nullptr);
  EXPECT_EQ(makeMapper("sat")->name(), std::string("SAT"));

  const auto mapper = mapperFromSpec(parseSpec(
      R"({"mapper": "sat", "cubeDepth": 3, "conflictLimit": 500, "learn": false,
          "parallelCubes": true})"));
  const auto* satMapper = dynamic_cast<const SatMapper*>(mapper.get());
  ASSERT_NE(satMapper, nullptr);
  EXPECT_EQ(satMapper->options().cubeDepth, 3u);
  EXPECT_EQ(satMapper->options().conflictLimit, 500u);
  EXPECT_FALSE(satMapper->options().learn);
  EXPECT_TRUE(satMapper->options().parallelCubes);
}

TEST(SatTestMapper, MalformedSpecsThrowTypedParseErrors) {
  // Non-integral cube depth.
  EXPECT_THROW(mapperFromSpec(parseSpec(R"({"mapper": "sat", "cubeDepth": 1.5})")), ParseError);
  // Negative / out-of-range values.
  EXPECT_THROW(mapperFromSpec(parseSpec(R"({"mapper": "sat", "cubeDepth": -1})")), ParseError);
  EXPECT_THROW(mapperFromSpec(parseSpec(R"({"mapper": "sat", "cubeDepth": 17})")), ParseError);
  EXPECT_THROW(mapperFromSpec(parseSpec(R"({"mapper": "sat", "conflictLimit": -5})")),
               ParseError);
  EXPECT_THROW(mapperFromSpec(parseSpec(R"({"mapper": "sat", "conflictLimit": 2.5})")),
               ParseError);
  // Unknown option key.
  EXPECT_THROW(mapperFromSpec(parseSpec(R"({"mapper": "sat", "cubes": 4})")), ParseError);
}

TEST(SatTestMapper, ListMappersAdvertisesOptionSpec) {
  // `mcx_bench --list-mappers` output: the sat preset line must carry the
  // machine-usable JSON option spec.
  std::ostringstream out;
  bench::listMappers(out);
  const std::string listing = out.str();
  EXPECT_NE(listing.find("sat"), std::string::npos);
  EXPECT_NE(listing.find("cubeDepth"), std::string::npos);
  EXPECT_NE(listing.find("conflictLimit"), std::string::npos);
  EXPECT_NE(listing.find("parallelCubes"), std::string::npos);
}

DefectExperimentConfig satEngineConfig(std::size_t samples) {
  DefectExperimentConfig config;
  config.samples = samples;
  config.seed = 99;
  config.stuckOpenRate = 0.20;
  config.keepMappings = true;
  return config;
}

TEST(SatTestMapper, EngineResultsIdenticalAtAnyThreadCount) {
  const FunctionMatrix fm =
      buildFunctionMatrix(parseSop("x1 x2 + x1 x3 + x2 x4 + x3 x4 + x1 x4 + x2 x3"));
  const SatMapper mapper;
  DefectExperimentConfig config = satEngineConfig(60);
  config.threads = 1;
  const DefectExperimentResult ref = runDefectExperiment(fm, mapper, config);
  EXPECT_GT(ref.successes, 0u);
  EXPECT_LT(ref.successes, ref.samples);
  for (const std::size_t threads : {2u, 8u}) {
    config.threads = threads;
    const DefectExperimentResult r = runDefectExperiment(fm, mapper, config);
    ASSERT_EQ(r.successes, ref.successes) << threads << " threads";
    ASSERT_EQ(r.mappings.size(), ref.mappings.size());
    for (std::size_t s = 0; s < r.mappings.size(); ++s)
      ASSERT_EQ(r.mappings[s].rowAssignment, ref.mappings[s].rowAssignment)
          << "sample " << s << " at " << threads << " threads";
  }
}

TEST(SatTestMapper, ParallelCubesMatchesSequentialVerdictsAndModels) {
  // parallelCubes=true farms cube solves onto the engine's pool from inside
  // worker lanes (nested ExecutorPool::run) — results must be bit-identical
  // to the sequential mapper at every thread count.
  const FunctionMatrix fm =
      buildFunctionMatrix(parseSop("x1 x2 + x1 x3 + x2 x4 + x3 x4 + x1 x4 + x2 x3"));
  SatMapperOptions parallelOpts;
  parallelOpts.parallelCubes = true;
  const SatMapper sequential;
  const SatMapper parallel(parallelOpts);
  DefectExperimentConfig config = satEngineConfig(40);
  config.threads = 1;
  const DefectExperimentResult ref = runDefectExperiment(fm, sequential, config);
  config.threads = 4;
  const DefectExperimentResult par = runDefectExperiment(fm, parallel, config);
  ASSERT_EQ(par.successes, ref.successes);
  ASSERT_EQ(par.mappings.size(), ref.mappings.size());
  for (std::size_t s = 0; s < par.mappings.size(); ++s)
    ASSERT_EQ(par.mappings[s].rowAssignment, ref.mappings[s].rowAssignment) << "sample " << s;
}

TEST(SatTestMapper, DeadlineMidRunAbortsWithPartialCountsAndRerunIsIdentical) {
  // PR 6 contract, extended into the mapper: a deadline firing mid-solve
  // leaves the in-flight sample unrecorded (MappingResult::aborted), the
  // partial counts are a prefix-subset of an uninterrupted run's, and a
  // rerun without the token is bit-identical to a reference run.
  const FunctionMatrix fm =
      buildFunctionMatrix(parseSop("x1 x2 + x1 x3 + x2 x4 + x3 x4 + x1 x4 + x2 x3"));
  const SatMapper mapper;
  DefectExperimentConfig config = satEngineConfig(200);
  config.threads = 2;

  const DefectExperimentResult reference = runDefectExperiment(fm, mapper, config);

  DefectExperimentConfig abortedConfig = config;
  abortedConfig.cancel = std::make_shared<CancelToken>();
  abortedConfig.cancel->setDeadlineAfterMillis(0.5);
  const DefectExperimentResult partial = runDefectExperiment(fm, mapper, abortedConfig);
  if (partial.aborted) {
    EXPECT_EQ(partial.abortReason, "deadline_exceeded");
    EXPECT_LT(partial.completed, partial.samples);
    EXPECT_LE(partial.successes, reference.successes);
    // Every recorded sample matches the reference run sample-for-sample —
    // an aborted sat solve never pollutes a recorded slot.
    for (std::size_t s = 0; s < partial.mappings.size(); ++s)
      if (partial.mappings[s].success)
        EXPECT_EQ(partial.mappings[s].rowAssignment, reference.mappings[s].rowAssignment)
            << "sample " << s;
  }
  // (On a very fast box the run may finish inside the budget; the rerun
  // check below is the invariant that must hold either way.)

  const DefectExperimentResult rerun = runDefectExperiment(fm, mapper, config);
  EXPECT_FALSE(rerun.aborted);
  EXPECT_EQ(rerun.successes, reference.successes);
  for (std::size_t s = 0; s < rerun.mappings.size(); ++s)
    ASSERT_EQ(rerun.mappings[s].rowAssignment, reference.mappings[s].rowAssignment)
        << "sample " << s;
}

}  // namespace
}  // namespace mcx
