// CDCL/DPLL core: verdicts against truth-table ground truth, assumption
// semantics, budgets, and cooperative interruption.
#include "sat/solver.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "mc/cancel.hpp"
#include "util/rng.hpp"

namespace mcx::sat {
namespace {

/// Ground truth by exhaustive assignment enumeration (vars <= 20).
bool bruteForceSat(const Cnf& cnf) {
  const int n = cnf.numVars();
  for (std::uint32_t m = 0; m < (1u << n); ++m) {
    bool all = true;
    for (std::size_t ci = 0; ci < cnf.numClauses() && all; ++ci) {
      bool clauseSat = false;
      for (const Lit l : cnf.clause(ci)) {
        const bool val = (m >> (varOf(l) - 1)) & 1;
        if ((l > 0) == val) {
          clauseSat = true;
          break;
        }
      }
      all = clauseSat;
    }
    if (all) return true;
  }
  return cnf.numClauses() == 0;
}

bool modelSatisfies(const Cnf& cnf, const std::vector<std::uint8_t>& model) {
  for (std::size_t ci = 0; ci < cnf.numClauses(); ++ci) {
    bool clauseSat = false;
    for (const Lit l : cnf.clause(ci))
      if ((l > 0) == (model[static_cast<std::size_t>(varOf(l))] != 0)) {
        clauseSat = true;
        break;
      }
    if (!clauseSat) return false;
  }
  return true;
}

TEST(SatTestSolver, EmptyFormulaIsSat) {
  Cnf cnf;
  cnf.addVar();
  const SolveResult r = solve(cnf);
  EXPECT_EQ(r.verdict, Verdict::Sat);
}

TEST(SatTestSolver, EmptyClauseIsUnsat) {
  Cnf cnf;
  cnf.addVar();
  cnf.addClause({});
  EXPECT_EQ(solve(cnf).verdict, Verdict::Unsat);
}

TEST(SatTestSolver, UnitContradictionIsUnsat) {
  Cnf cnf;
  const Var v = cnf.addVar();
  cnf.addClause({v});
  cnf.addClause({-v});
  EXPECT_EQ(solve(cnf).verdict, Verdict::Unsat);
}

TEST(SatTestSolver, ModelSatisfiesEveryClause) {
  Cnf cnf;
  const Var a = cnf.addVar();
  const Var b = cnf.addVar();
  const Var c = cnf.addVar();
  cnf.addClause({a, b});
  cnf.addClause({-a, c});
  cnf.addClause({-b, -c});
  const SolveResult r = solve(cnf);
  ASSERT_EQ(r.verdict, Verdict::Sat);
  EXPECT_TRUE(modelSatisfies(cnf, r.model));
}

TEST(SatTestSolver, AgreesWithBruteForceOnRandom3Cnf) {
  // Random 3-CNF around the 4.2 clause/var ratio: a mix of SAT and UNSAT
  // instances, each checked against exhaustive enumeration, with both
  // learning enabled (CDCL) and disabled (DPLL).
  Rng rng(7);
  int sat = 0;
  int unsat = 0;
  for (int rep = 0; rep < 200; ++rep) {
    const int n = 5 + static_cast<int>(rng.uniformInt(0, 7));
    const int clauses = static_cast<int>(4.2 * n);
    Cnf cnf;
    for (int v = 0; v < n; ++v) cnf.addVar();
    for (int ci = 0; ci < clauses; ++ci) {
      std::vector<Lit> lits;
      for (int k = 0; k < 3; ++k) {
        const Var v = 1 + static_cast<Var>(rng.uniformInt(0, n - 1));
        lits.push_back(rng.uniformInt(0, 1) != 0 ? v : -v);
      }
      cnf.addClause(lits);
    }
    const bool truth = bruteForceSat(cnf);
    truth ? ++sat : ++unsat;
    for (const bool learn : {true, false}) {
      SolverOptions opts;
      opts.learn = learn;
      const SolveResult r = solve(cnf, opts);
      ASSERT_EQ(r.verdict, truth ? Verdict::Sat : Verdict::Unsat)
          << "rep " << rep << " learn " << learn;
      if (truth) EXPECT_TRUE(modelSatisfies(cnf, r.model));
    }
  }
  // The ratio straddles the phase transition: both verdicts must occur or
  // the cross-check lost its teeth.
  EXPECT_GT(sat, 10);
  EXPECT_GT(unsat, 10);
}

TEST(SatTestSolver, AssumptionsRestrictAndConflict) {
  Cnf cnf;
  const Var a = cnf.addVar();
  const Var b = cnf.addVar();
  cnf.addClause({a, b});
  // Assuming both false contradicts the clause; assuming a true satisfies.
  EXPECT_EQ(solve(cnf, {}, {-a, -b}).verdict, Verdict::Unsat);
  const SolveResult r = solve(cnf, {}, {-a});
  ASSERT_EQ(r.verdict, Verdict::Sat);
  EXPECT_FALSE(r.model[static_cast<std::size_t>(a)]);
  EXPECT_TRUE(r.model[static_cast<std::size_t>(b)]);
  // An assumption that unit propagation already satisfied is a dummy level,
  // not a conflict.
  Cnf unitCnf;
  const Var u = unitCnf.addVar();
  unitCnf.addClause({u});
  EXPECT_EQ(solve(unitCnf, {}, {u}).verdict, Verdict::Sat);
  EXPECT_EQ(solve(unitCnf, {}, {-u}).verdict, Verdict::Unsat);
}

/// Pigeonhole PHP(h+1, h): h+1 pigeons into h holes — small enough to
/// refute, large enough to force real conflict work.
Cnf pigeonhole(int holes) {
  Cnf cnf;
  std::vector<std::vector<Var>> at(holes + 1);
  for (int p = 0; p <= holes; ++p)
    for (int h = 0; h < holes; ++h) at[p].push_back(cnf.addVar());
  for (int p = 0; p <= holes; ++p) {
    std::vector<Lit> alo(at[p].begin(), at[p].end());
    cnf.addClause(alo);
  }
  for (int h = 0; h < holes; ++h)
    for (int p = 0; p <= holes; ++p)
      for (int q = p + 1; q <= holes; ++q) cnf.addClause({-at[p][h], -at[q][h]});
  return cnf;
}

TEST(SatTestSolver, ConflictBudgetYieldsUnknownNotInterrupted) {
  const Cnf cnf = pigeonhole(7);
  SolverOptions opts;
  opts.conflictLimit = 10;
  const SolveResult r = solve(cnf, opts);
  EXPECT_EQ(r.verdict, Verdict::Unknown);
  EXPECT_FALSE(r.interrupted);
  EXPECT_GE(r.stats.conflicts, 10u);
}

TEST(SatTestSolver, PigeonholeRefutedAndRestartsFire) {
  const Cnf cnf = pigeonhole(5);
  const SolveResult r = solve(cnf);
  EXPECT_EQ(r.verdict, Verdict::Unsat);
  // PHP(6,5) needs well past kRestartBase conflicts: the Luby schedule
  // must have kicked in (and stayed deterministic — fixed stats).
  EXPECT_GT(r.stats.restarts, 0u);
  EXPECT_EQ(solve(cnf).stats.conflicts, r.stats.conflicts) << "solver must be deterministic";
}

TEST(SatTestSolver, InterruptPredicateStopsSolve) {
  const Cnf cnf = pigeonhole(8);
  SolverOptions opts;
  std::uint64_t polls = 0;
  opts.interrupt = [&polls] { return ++polls > 3; };
  const SolveResult r = solve(cnf, opts);
  EXPECT_EQ(r.verdict, Verdict::Unknown);
  EXPECT_TRUE(r.interrupted);
}

TEST(SatTestSolver, CancelTokenStopsSolve) {
  const Cnf cnf = pigeonhole(8);
  CancelToken token;
  token.cancel();
  SolverOptions opts;
  opts.cancel = &token;
  const SolveResult r = solve(cnf, opts);
  EXPECT_EQ(r.verdict, Verdict::Unknown);
  EXPECT_TRUE(r.interrupted);
  EXPECT_EQ(r.stats.decisions, 0u) << "a pre-fired token stops before any work";
}

}  // namespace
}  // namespace mcx::sat
