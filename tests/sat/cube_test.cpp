// Cube-and-conquer driver: split generation, deterministic winner rule,
// pool-vs-sequential equivalence, and cancellation.
#include "sat/cube.hpp"

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "mc/cancel.hpp"
#include "mc/executor.hpp"
#include "sat/cnf.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace mcx::sat {
namespace {

BitMatrix randomAdjacency(Rng& rng, std::size_t rows, std::size_t cols, double density) {
  BitMatrix adj(rows, cols, false);
  for (std::size_t i = 0; i < rows; ++i)
    for (std::size_t j = 0; j < cols; ++j)
      if (rng.uniform() < density) adj.set(i, j);
  return adj;
}

TEST(SatTestCube, DepthZeroYieldsSingleEmptyCube) {
  Cnf cnf;
  const Var a = cnf.addVar();
  cnf.addClause({a});
  const std::vector<Cube> cubes = generateCubes(cnf, 0, cnf.numVars());
  ASSERT_EQ(cubes.size(), 1u);
  EXPECT_TRUE(cubes[0].lits.empty());
}

TEST(SatTestCube, DepthSaturatesAtOccurringVariables) {
  Cnf cnf;
  const Var a = cnf.addVar();
  cnf.addVar();  // never occurs
  cnf.addClause({a});
  const std::vector<Cube> cubes = generateCubes(cnf, 4, cnf.numVars());
  ASSERT_EQ(cubes.size(), 2u) << "only one variable occurs: depth saturates at 1";
  EXPECT_EQ(cubes[0].lits, std::vector<Lit>{a}) << "cube 0 is the all-positive branch";
  EXPECT_EQ(cubes[1].lits, std::vector<Lit>{-a});
}

TEST(SatTestCube, SplitPrefersHighestOccurrence) {
  Cnf cnf;
  const Var a = cnf.addVar();
  const Var b = cnf.addVar();
  const Var c = cnf.addVar();
  cnf.addClause({a, b});
  cnf.addClause({-b, c});
  cnf.addClause({b, c});
  const std::vector<Cube> cubes = generateCubes(cnf, 1, cnf.numVars());
  ASSERT_EQ(cubes.size(), 2u);
  EXPECT_EQ(varOf(cubes[0].lits[0]), b) << "b occurs three times, the contention maximum";
}

TEST(SatTestCube, MatchingSplitUsesDistinctRowsAndColumns) {
  // A dense adjacency: plain occurrence counting would pick same-row
  // variables (adjacent indices); the matching-aware overload must not.
  Rng rng(5);
  const BitMatrix adj = randomAdjacency(rng, 8, 8, 0.9);
  const MatchingCnf enc = encodeMatching(adj);
  const std::vector<Cube> cubes = generateCubes(enc, 3);
  ASSERT_EQ(cubes.size(), 8u);
  std::set<std::uint32_t> rows;
  std::set<std::uint32_t> cols;
  for (const Lit l : cubes[0].lits) {
    const auto [i, j] = enc.pairOf[static_cast<std::size_t>(varOf(l)) - 1];
    rows.insert(i);
    cols.insert(j);
  }
  EXPECT_EQ(rows.size(), 3u) << "split variables must come from distinct FM rows";
  EXPECT_EQ(cols.size(), 3u) << "split variables must come from distinct CM rows";
}

TEST(SatTestCube, RequiresAtLeastOneCube) {
  Cnf cnf;
  cnf.addVar();
  EXPECT_THROW(solveCubes(cnf, {}, {}), InvalidArgument);
}

TEST(SatTestCube, AllCubesUnsatProvesUnsat) {
  // 3 rows competing for 2 usable columns: Hall violation, every cube must
  // refute and the aggregate must be a proof, not a guess.
  BitMatrix adj(3, 3, false);
  for (std::size_t i = 0; i < 3; ++i) {
    adj.set(i, 0);
    adj.set(i, 1);
  }
  const MatchingCnf enc = encodeMatching(adj);
  const std::vector<Cube> cubes = generateCubes(enc, 2);
  const CubeOutcome out = solveCubes(enc.cnf, cubes, {});
  EXPECT_EQ(out.verdict, Verdict::Unsat);
  EXPECT_EQ(out.cubesSolved, cubes.size());
  EXPECT_FALSE(out.interrupted);
}

TEST(SatTestCube, PoolAndSequentialAgreeOnWinnerAndModel) {
  // The determinism contract: winning cube, model, and verdict identical
  // with no pool, a small pool, and a big pool — across a batch of random
  // feasible and infeasible instances.
  Rng rng(11);
  ExecutorPool small(2);
  ExecutorPool big(8);
  int satSeen = 0;
  int unsatSeen = 0;
  for (int rep = 0; rep < 40; ++rep) {
    const BitMatrix adj = randomAdjacency(rng, 7, 7, 0.25 + 0.4 * rng.uniform());
    const MatchingCnf enc = encodeMatching(adj);
    if (enc.trivialUnsat) continue;
    const std::vector<Cube> cubes = generateCubes(enc, 2);
    const CubeOutcome seq = solveCubes(enc.cnf, cubes, {});
    const CubeOutcome par2 = solveCubes(enc.cnf, cubes, {}, &small);
    const CubeOutcome par8 = solveCubes(enc.cnf, cubes, {}, &big);
    ASSERT_EQ(seq.verdict, par2.verdict) << "rep " << rep;
    ASSERT_EQ(seq.verdict, par8.verdict) << "rep " << rep;
    if (seq.verdict == Verdict::Sat) {
      ++satSeen;
      EXPECT_EQ(seq.winningCube, par2.winningCube) << "rep " << rep;
      EXPECT_EQ(seq.winningCube, par8.winningCube) << "rep " << rep;
      EXPECT_EQ(seq.model, par2.model) << "rep " << rep;
      EXPECT_EQ(seq.model, par8.model) << "rep " << rep;
    } else {
      ++unsatSeen;
    }
  }
  EXPECT_GT(satSeen, 5);
  EXPECT_GT(unsatSeen, 5);
}

TEST(SatTestCube, FiredTokenYieldsInterruptedUnknown) {
  Rng rng(3);
  const BitMatrix adj = randomAdjacency(rng, 6, 6, 0.5);
  const MatchingCnf enc = encodeMatching(adj);
  CancelToken token;
  token.cancel();
  SolverOptions base;
  base.cancel = &token;
  const CubeOutcome out = solveCubes(enc.cnf, generateCubes(enc, 2), base);
  EXPECT_EQ(out.verdict, Verdict::Unknown);
  EXPECT_TRUE(out.interrupted);
}

TEST(SatTestCube, BudgetExhaustionIsNotInterrupted) {
  // A formula hard enough that 1-conflict budgets cannot resolve it: the
  // outcome must be Unknown with interrupted=false (budget, not cancel).
  BitMatrix adj(8, 8, true);
  for (std::size_t i = 0; i < 4; ++i)
    for (std::size_t j = 2; j < 8; ++j) adj.reset(i, j);  // 4 rows into 2 columns
  const MatchingCnf enc = encodeMatching(adj);
  SolverOptions base;
  base.conflictLimit = 1;
  const CubeOutcome out = solveCubes(enc.cnf, generateCubes(enc, 1), base);
  EXPECT_NE(out.verdict, Verdict::Sat);
  if (out.verdict == Verdict::Unknown) EXPECT_FALSE(out.interrupted);
}

}  // namespace
}  // namespace mcx::sat
