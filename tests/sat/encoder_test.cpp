// Matching encoder: exhaustive cross-checks against brute-force matching
// and Hopcroft-Karp, model round-trips, and the SAT => feasible property.
#include "sat/cnf.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <vector>

#include "logic/sop_parser.hpp"
#include "map/matching.hpp"
#include "sat/solver.hpp"
#include "util/rng.hpp"
#include "xbar/defects.hpp"
#include "xbar/function_matrix.hpp"

namespace mcx::sat {
namespace {

BitMatrix adjacencyFromMask(std::size_t rows, std::size_t cols, std::uint32_t mask) {
  BitMatrix adj(rows, cols, false);
  for (std::size_t i = 0; i < rows; ++i)
    for (std::size_t j = 0; j < cols; ++j)
      if ((mask >> (i * cols + j)) & 1) adj.set(i, j);
  return adj;
}

/// Brute force: does an injective row -> column assignment exist along set
/// adjacency bits? (rows <= cols, all rows must be assigned.)
bool bruteForceMatch(const BitMatrix& adj) {
  std::vector<std::size_t> cols(adj.cols());
  std::iota(cols.begin(), cols.end(), 0);
  do {
    bool ok = true;
    for (std::size_t i = 0; i < adj.rows() && ok; ++i) ok = adj.test(i, cols[i]);
    if (ok) return true;
  } while (std::next_permutation(cols.begin(), cols.end()));
  return false;
}

/// Decoded assignment is valid: in-range, on set bits, pairwise distinct.
void expectValidAssignment(const BitMatrix& adj, const std::vector<std::size_t>& assignment) {
  ASSERT_EQ(assignment.size(), adj.rows());
  std::vector<std::uint8_t> used(adj.cols(), 0);
  for (std::size_t i = 0; i < adj.rows(); ++i) {
    ASSERT_LT(assignment[i], adj.cols());
    EXPECT_TRUE(adj.test(i, assignment[i])) << "row " << i;
    EXPECT_FALSE(used[assignment[i]]) << "column reused at row " << i;
    used[assignment[i]] = 1;
  }
}

Verdict verdictOf(const BitMatrix& adj, std::vector<std::size_t>* assignment = nullptr) {
  const MatchingCnf enc = encodeMatching(adj);
  if (enc.trivialUnsat) return Verdict::Unsat;
  const SolveResult r = solve(enc.cnf);
  if (r.verdict == Verdict::Sat && assignment != nullptr)
    EXPECT_TRUE(decodeModel(enc, r.model, *assignment));
  return r.verdict;
}

TEST(SatTestEncoder, EmptyRowIsTrivialUnsat) {
  BitMatrix adj(2, 2, false);
  adj.set(0, 0);
  const MatchingCnf enc = encodeMatching(adj);
  EXPECT_TRUE(enc.trivialUnsat);
  EXPECT_TRUE(enc.cnf.hasEmptyClause());
  EXPECT_EQ(solve(enc.cnf).verdict, Verdict::Unsat);
}

TEST(SatTestEncoder, SingleCandidateBecomesUnit) {
  // Stuck-closed poisoning folds into the adjacency as shrunken candidate
  // sets; a row left with one candidate must pin it in every model.
  BitMatrix adj(2, 2, true);
  adj.reset(0, 1);  // row 0 can only sit on column 0
  std::vector<std::size_t> assignment;
  ASSERT_EQ(verdictOf(adj, &assignment), Verdict::Sat);
  EXPECT_EQ(assignment[0], 0u);
  EXPECT_EQ(assignment[1], 1u);
}

TEST(SatTestEncoder, VarMintingIsRowMajorOverSetBits) {
  BitMatrix adj(2, 3, false);
  adj.set(0, 1);
  adj.set(0, 2);
  adj.set(1, 0);
  const MatchingCnf enc = encodeMatching(adj);
  EXPECT_EQ(enc.numAssignVars, 3);
  EXPECT_EQ(enc.varFor(0, 1), 1);
  EXPECT_EQ(enc.varFor(0, 2), 2);
  EXPECT_EQ(enc.varFor(1, 0), 3);
  EXPECT_EQ(enc.varFor(0, 0), 0);
  EXPECT_EQ(enc.pairOf[0], (std::pair<std::uint32_t, std::uint32_t>{0, 1}));
}

TEST(SatTestEncoder, Exhaustive3x3AgainstBruteForceAndHopcroftKarp) {
  for (std::uint32_t mask = 0; mask < (1u << 9); ++mask) {
    const BitMatrix adj = adjacencyFromMask(3, 3, mask);
    std::vector<std::size_t> assignment;
    const Verdict v = verdictOf(adj, &assignment);
    ASSERT_NE(v, Verdict::Unknown);
    const bool truth = bruteForceMatch(adj);
    ASSERT_EQ(v == Verdict::Sat, truth) << "mask " << mask;
    ASSERT_EQ(solveFeasibleAssignment(adj).success, truth) << "mask " << mask;
    if (truth) expectValidAssignment(adj, assignment);
  }
}

TEST(SatTestEncoder, SatImpliesFeasibleNeverReverse) {
  // Property: a SAT verdict always implies Hopcroft-Karp feasibility, and
  // an Unsat verdict always implies infeasibility — on random rectangular
  // adjacencies (rows <= cols) across densities.
  Rng rng(23);
  int satSeen = 0;
  int unsatSeen = 0;
  for (int rep = 0; rep < 300; ++rep) {
    const std::size_t rows = 1 + rng.uniformInt(0, 5);
    const std::size_t cols = rows + rng.uniformInt(0, 3);
    const double density = 0.15 + 0.5 * rng.uniform();
    BitMatrix adj(rows, cols, false);
    for (std::size_t i = 0; i < rows; ++i)
      for (std::size_t j = 0; j < cols; ++j)
        if (rng.uniform() < density) adj.set(i, j);
    const Verdict v = verdictOf(adj);
    const bool feasible = solveFeasibleAssignment(adj).success;
    ASSERT_NE(v, Verdict::Unknown);
    ASSERT_EQ(v == Verdict::Sat, feasible) << "rep " << rep;
    (v == Verdict::Sat ? satSeen : unsatSeen)++;
  }
  EXPECT_GT(satSeen, 20);
  EXPECT_GT(unsatSeen, 20);
}

TEST(SatTestEncoder, LadderEncodingOnWideGroups) {
  // 9 candidates per group exceeds the pairwise threshold: the Sinz ladder
  // path must mint auxiliaries and still produce exact verdicts.
  BitMatrix adj(9, 9, true);
  const MatchingCnf enc = encodeMatching(adj);
  EXPECT_GT(enc.cnf.numVars(), enc.numAssignVars) << "ladder auxiliaries expected";
  std::vector<std::size_t> assignment;
  ASSERT_EQ(verdictOf(adj, &assignment), Verdict::Sat);
  expectValidAssignment(adj, assignment);

  // Same ladder groups, but a dead 3x3 corner forces a Hall violation:
  // rows {0,1,2} only fit columns {0,1}..
  BitMatrix hall(adj);
  for (std::size_t i = 0; i < 3; ++i)
    for (std::size_t j = 2; j < 9; ++j) hall.reset(i, j);
  EXPECT_EQ(verdictOf(hall), Verdict::Unsat);
}

TEST(SatEncoderExhaustiveTest, EveryDefectMapOn4x4CrossbarMatchesHopcroftKarp) {
  // Every stuck-open pattern of a 4x4 crossbar (2^16 defect maps) against
  // a fixed 4-term function matrix: the full mapper-facing pipeline
  // (candidate adjacency -> encode -> solve -> decode) must agree with
  // Hopcroft-Karp sample by sample. Kept out of the sanitizer filters by
  // suite name — it is an exhaustive sweep, not a data-race probe.
  const FunctionMatrix fm = buildFunctionMatrix(parseSop("x1 x2 + x1 x3 + x2 x3"));
  ASSERT_EQ(fm.rows(), 4u);
  MappingContext ctx;
  std::size_t feasibleSeen = 0;
  for (std::uint32_t mask = 0; mask < (1u << 16); ++mask) {
    BitMatrix cm(4, fm.cols(), true);
    for (std::size_t i = 0; i < 4; ++i)
      for (std::size_t j = 0; j < 4 && j < fm.cols(); ++j)
        if ((mask >> (i * 4 + j)) & 1) cm.reset(i, j);
    const BitMatrix& adj = ctx.candidateAdjacency(fm.bits(), cm);
    const bool feasible = solveFeasibleAssignment(adj).success;
    std::vector<std::size_t> assignment;
    const Verdict v = verdictOf(adj, &assignment);
    ASSERT_EQ(v == Verdict::Sat, feasible) << "mask " << mask;
    if (feasible) {
      ++feasibleSeen;
      expectValidAssignment(adj, assignment);
    }
  }
  EXPECT_GT(feasibleSeen, 0u);
  EXPECT_LT(feasibleSeen, std::size_t{1} << 16);
}

}  // namespace
}  // namespace mcx::sat
