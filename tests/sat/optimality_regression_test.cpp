// Regression pin against the committed BENCH_optimality.json: the
// ablation-optimality artifact must stay reproducible (same seed, samples
// and conflict budget -> same per-cell counts), contradiction-free, and
// keep at least one workload with a nonzero heuristic-vs-exact gap.
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "circuit/cache.hpp"
#include "map/registry.hpp"
#include "mc/defect_experiment.hpp"
#include "sat/cnf.hpp"
#include "sat/cube.hpp"
#include "sat/solver.hpp"
#include "scenario/spec.hpp"

#ifndef MCX_REPO_ROOT
#error "MCX_REPO_ROOT must point at the repository root (set by CMake)"
#endif

namespace mcx {
namespace {

SpecValue loadCommitted() {
  std::ifstream file(std::string(MCX_REPO_ROOT) + "/BENCH_optimality.json");
  EXPECT_TRUE(file.good()) << "committed BENCH_optimality.json not found";
  std::ostringstream buffer;
  buffer << file.rdbuf();
  return parseSpec(buffer.str());
}

TEST(OptimalityRegressionTest, CommittedArtifactIsSoundAndHasAGap) {
  const SpecValue doc = loadCommitted();
  ASSERT_TRUE(doc.isObject());
  EXPECT_EQ(doc.numberOr("total_contradictions", -1), 0.0)
      << "a committed heuristic success was never confirmed SAT";
  EXPECT_EQ(doc.numberOr("exact_mismatches", -1), 0.0)
      << "committed SAT and Hopcroft-Karp verdicts disagreed";
  EXPECT_GE(doc.numberOr("nonzero_gap_cells", 0), 1.0)
      << "the artifact must exhibit at least one workload with a real gap";

  const SpecValue* cells = doc.find("cells");
  ASSERT_NE(cells, nullptr);
  ASSERT_TRUE(cells->isArray());
  EXPECT_EQ(cells->array.size(), 6u) << "2 circuits x 3 defect rates";
  for (const SpecValue& cell : cells->array) {
    EXPECT_EQ(cell.numberOr("sat_fastea_mismatches", -1), 0.0);
    const SpecValue* mappers = cell.find("mappers");
    ASSERT_NE(mappers, nullptr);
    EXPECT_EQ(mappers->array.size(), 3u);
    for (const SpecValue& m : mappers->array)
      EXPECT_EQ(m.numberOr("contradictions", -1), 0.0) << m.stringOr("name", "?");
  }
}

TEST(OptimalityRegressionTest, RerunReproducesCommittedRd53Cell) {
  const SpecValue doc = loadCommitted();
  ASSERT_TRUE(doc.isObject());
  const auto samples = static_cast<std::size_t>(doc.numberOr("samples", 0));
  const auto seed = static_cast<std::uint64_t>(doc.numberOr("seed", 0));
  const auto budget = static_cast<std::uint64_t>(doc.numberOr("conflict_budget", 0));
  ASSERT_GT(samples, 0u);
  ASSERT_GT(budget, 0u);

  // The committed rd53 @ 5% cell: cheap to re-derive exactly (one
  // unresolved sample at most), yet it pins the full chain — synthesis ->
  // defect streams -> candidate adjacency -> encoder -> cube driver ->
  // registry-built heuristics.
  const SpecValue* cells = doc.find("cells");
  ASSERT_NE(cells, nullptr);
  const SpecValue* committed = nullptr;
  for (const SpecValue& cell : cells->array)
    if (cell.stringOr("circuit", "") == "rd53" && cell.numberOr("rate", 0.0) == 0.05)
      committed = &cell;
  ASSERT_NE(committed, nullptr) << "committed rd53 @ 5% cell missing";

  const std::shared_ptr<const Circuit> circuit = compileCircuit("rd53");
  DefectExperimentConfig config;
  config.samples = samples;
  config.seed = seed;
  config.stuckOpenRate = 0.05;

  const auto greedy = makeMapper("greedy");
  std::size_t exactOk = 0;
  std::size_t unresolved = 0;
  std::size_t greedyOk = 0;
  MappingContext ctx;
  const auto fastEa = makeMapper("fast-ea");
  forEachDefectSample(circuit->fm, config,
                      [&](std::size_t, const DefectMap&, const BitMatrix& cm) {
                        const BitMatrix& adj = ctx.candidateAdjacency(circuit->fm.bits(), cm);
                        sat::MatchingCnf enc = sat::encodeMatching(adj);
                        sat::SolverOptions base;
                        base.conflictLimit = budget;
                        const sat::Verdict v =
                            enc.trivialUnsat
                                ? sat::Verdict::Unsat
                                : sat::solveCubes(enc.cnf, sat::generateCubes(enc, 2), base)
                                      .verdict;
                        if (v == sat::Verdict::Unknown) ++unresolved;
                        if (fastEa->map(circuit->fm, cm).success) ++exactOk;
                        if (greedy->map(circuit->fm, cm).success) ++greedyOk;
                      });

  EXPECT_EQ(exactOk, static_cast<std::size_t>(committed->numberOr("exact_successes", -1)));
  EXPECT_EQ(unresolved, static_cast<std::size_t>(committed->numberOr("sat_unresolved", -1)));
  const SpecValue* mappers = committed->find("mappers");
  ASSERT_NE(mappers, nullptr);
  bool checkedGreedy = false;
  for (const SpecValue& m : mappers->array) {
    if (m.stringOr("name", "") != "greedy") continue;
    EXPECT_EQ(greedyOk, static_cast<std::size_t>(m.numberOr("successes", -1)));
    EXPECT_EQ(exactOk - greedyOk, static_cast<std::size_t>(m.numberOr("gap", -1)));
    checkedGreedy = true;
  }
  EXPECT_TRUE(checkedGreedy);
}

}  // namespace
}  // namespace mcx
