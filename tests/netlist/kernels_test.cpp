#include "netlist/kernels.hpp"

#include <gtest/gtest.h>

#include "logic/generators.hpp"
#include "logic/sop_parser.hpp"
#include "logic/truth_table.hpp"
#include "util/rng.hpp"

namespace mcx {
namespace {

std::vector<Cube> cubesOf(const std::string& sop, std::size_t nin = 0) {
  const Cover c = parseSop(sop, nin);
  return c.projection(0);
}

DynBits treeTT(const FactorTree& tree, std::size_t nin) {
  DynBits tt(std::size_t{1} << nin);
  DynBits in(nin);
  for (std::size_t m = 0; m < tt.size(); ++m) {
    for (std::size_t v = 0; v < nin; ++v) in.set(v, ((m >> v) & 1u) != 0);
    if (evaluateFactorTree(tree, in)) tt.set(m);
  }
  return tt;
}

TEST(Kernels, CubeFreeDetection) {
  EXPECT_TRUE(isCubeFree(cubesOf("x1 x2 + x3"), 3));
  EXPECT_FALSE(isCubeFree(cubesOf("x1 x2 + x1 x3"), 3));  // x1 common
  EXPECT_FALSE(isCubeFree(cubesOf("x1 x2"), 2));          // single cube
}

TEST(Kernels, TextbookExample) {
  // f = a b c + a b d: kernel {c + d} with co-kernel ab.
  const auto cubes = cubesOf("x1 x2 x3 + x1 x2 x4");
  const auto kernels = allKernels(cubes, 4);
  bool found = false;
  for (const auto& k : kernels) {
    if (k.kernel.size() == 2 && k.coKernel.literalCount() == 2) {
      EXPECT_EQ(k.coKernel.inputString(), "11--");
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(Kernels, Level0KernelIsTheCoverItself) {
  const auto cubes = cubesOf("x1 x2 + x3 x4");
  const auto kernels = allKernels(cubes, 4);
  bool coverItself = false;
  for (const auto& k : kernels)
    if (k.kernel.size() == 2 && k.coKernel.literalCount() == 0) coverItself = true;
  EXPECT_TRUE(coverItself);
}

TEST(Kernels, KernelsAreCubeFree) {
  Rng rng(71);
  RandomSopOptions opts;
  opts.nin = 6;
  opts.nout = 1;
  opts.products = 8;
  opts.literalsPerProduct = 3.0;
  const Cover c = randomSop(opts, rng);
  for (const auto& k : allKernels(c.projection(0), 6)) {
    if (k.kernel.size() >= 2) {
      EXPECT_TRUE(isCubeFree(k.kernel, 6));
    }
  }
}

TEST(AlgebraicDivide, ExactDivision) {
  // (x1 + x2)(x3) + x4 = x1 x3 + x2 x3 + x4; divide by {x1 + x2}.
  const auto cubes = cubesOf("x1 x3 + x2 x3 + x4");
  const auto divisor = cubesOf("x1 + x2", 4);
  const DivisionResult r = algebraicDivide(cubes, divisor, 4);
  ASSERT_EQ(r.quotient.size(), 1u);
  EXPECT_EQ(r.quotient[0].inputString(), "--1-");
  ASSERT_EQ(r.remainder.size(), 1u);
  EXPECT_EQ(r.remainder[0].inputString(), "---1");
}

TEST(AlgebraicDivide, NonDivisorGivesEmptyQuotient) {
  const auto cubes = cubesOf("x1 x3 + x4");
  const auto divisor = cubesOf("x1 + x2", 4);
  const DivisionResult r = algebraicDivide(cubes, divisor, 4);
  EXPECT_TRUE(r.quotient.empty());
}

TEST(AlgebraicDivide, ReconstructsCover) {
  // divisor * quotient + remainder must equal the original cover (as sets).
  const auto cubes = cubesOf("x1 x3 + x2 x3 + x1 x4 + x2 x4 + x5");
  const auto divisor = cubesOf("x1 + x2", 5);
  const DivisionResult r = algebraicDivide(cubes, divisor, 5);
  EXPECT_EQ(r.quotient.size(), 2u);  // x3 + x4
  EXPECT_EQ(r.remainder.size(), 1u);
  EXPECT_EQ(r.quotient.size() * divisor.size() + r.remainder.size(), cubes.size());
}

TEST(GoodFactor, EquivalentAndNoWorseThanQuickFactor) {
  Rng rng(72);
  for (int rep = 0; rep < 30; ++rep) {
    RandomSopOptions opts;
    opts.nin = 4 + static_cast<std::size_t>(rng.uniformInt(0, 4));
    opts.nout = 1;
    opts.products = 3 + static_cast<std::size_t>(rng.uniformInt(0, 8));
    opts.literalsPerProduct = 3.0;
    const Cover c = randomSop(opts, rng);
    const auto proj = c.projection(0);
    const FactorTree quick = factorCover(proj, opts.nin);
    const FactorTree good = goodFactor(proj, opts.nin);
    EXPECT_EQ(treeTT(good, opts.nin), treeTT(quick, opts.nin)) << "rep=" << rep;
    EXPECT_LE(good.literalCount(), quick.literalCount() + 2) << "rep=" << rep;
  }
}

TEST(GoodFactor, FindsMultiCubeDivisor) {
  // f = (x1 + x2)(x3 + x4): quick literal factoring cannot see the kernel;
  // good factoring must reach 4 literals.
  const auto cubes = cubesOf("x1 x3 + x1 x4 + x2 x3 + x2 x4");
  const FactorTree good = goodFactor(cubes, 4);
  EXPECT_EQ(good.literalCount(), 4u);
  EXPECT_EQ(treeTT(good, 4), ttOfCubes(cubes, 4));
}

}  // namespace
}  // namespace mcx
