#include "netlist/factor.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

#include "logic/generators.hpp"
#include "logic/sop_parser.hpp"
#include "logic/truth_table.hpp"
#include "util/rng.hpp"

namespace mcx {
namespace {

DynBits treeTT(const FactorTree& tree, std::size_t nin) {
  DynBits tt(std::size_t{1} << nin);
  DynBits in(nin);
  for (std::size_t m = 0; m < tt.size(); ++m) {
    for (std::size_t v = 0; v < nin; ++v) in.set(v, ((m >> v) & 1u) != 0);
    if (evaluateFactorTree(tree, in)) tt.set(m);
  }
  return tt;
}

TEST(FactorTree, LiteralBasics) {
  const FactorTree t = FactorTree::literal(2, true);
  EXPECT_EQ(t.literalCount(), 1u);
  EXPECT_EQ(t.toString(), "!x3");
}

TEST(FactorTree, FlattensNestedSameKind) {
  auto a = FactorTree::literal(0, false);
  auto b = FactorTree::literal(1, false);
  auto c = FactorTree::literal(2, false);
  std::vector<FactorTree> inner;
  inner.push_back(a);
  inner.push_back(b);
  auto andAB = FactorTree::makeAnd(std::move(inner));
  std::vector<FactorTree> outer;
  outer.push_back(std::move(andAB));
  outer.push_back(c);
  const auto andABC = FactorTree::makeAnd(std::move(outer));
  EXPECT_EQ(andABC.children.size(), 3u);
}

TEST(FactorTree, SingleChildCollapses) {
  std::vector<FactorTree> one;
  one.push_back(FactorTree::literal(0, false));
  const auto t = FactorTree::makeOr(std::move(one));
  EXPECT_EQ(t.kind, FactorTree::Kind::Literal);
}

TEST(FactorCover, SingleCubeBecomesAnd) {
  const Cover c = parseSop("x1 x2 !x3");
  const FactorTree t = factorCover(c.projection(0), 3);
  EXPECT_EQ(t.kind, FactorTree::Kind::And);
  EXPECT_EQ(t.literalCount(), 3u);
}

TEST(FactorCover, SharedLiteralIsFactoredOut) {
  // x1 x2 + x1 x3 = x1 (x2 + x3): 3 literals instead of 4.
  const Cover c = parseSop("x1 x2 + x1 x3");
  const FactorTree t = factorCover(c.projection(0), 3);
  EXPECT_EQ(t.literalCount(), 3u);
  EXPECT_EQ(treeTT(t, 3), ttOfCubes(c.projection(0), 3));
}

TEST(FactorCover, AbsorbedLiteral) {
  // x1 + x1 x2 + x3 = x1 + x3.
  const Cover c = parseSop("x1 + x1 x2 + x3");
  const FactorTree t = factorCover(c.projection(0), 3);
  EXPECT_EQ(treeTT(t, 3), ttOfCubes(c.projection(0), 3));
  EXPECT_LE(t.literalCount(), 2u);
}

TEST(FactorCover, Fig3FunctionFactorsToTwoTerms) {
  const Cover c = parseSop("x1 + x2 + x3 + x4 + x5 x6 x7 x8");
  const FactorTree t = factorCover(c.projection(0), 8);
  EXPECT_EQ(treeTT(t, 8), ttOfCubes(c.projection(0), 8));
  EXPECT_EQ(t.literalCount(), 8u);  // no sharing available
}

TEST(FactorCover, EquivalenceOnRandomCovers) {
  Rng rng(2024);
  for (int rep = 0; rep < 60; ++rep) {
    RandomSopOptions opts;
    opts.nin = 3 + static_cast<std::size_t>(rng.uniformInt(0, 6));
    opts.nout = 1;
    opts.products = 1 + static_cast<std::size_t>(rng.uniformInt(0, 14));
    opts.literalsPerProduct = 2.5;
    const Cover c = randomSop(opts, rng);
    const auto proj = c.projection(0);
    const FactorTree t = factorCover(proj, opts.nin);
    EXPECT_EQ(treeTT(t, opts.nin), ttOfCubes(proj, opts.nin)) << "rep=" << rep;
    EXPECT_LE(t.literalCount(), c.literalCount());
  }
}

TEST(FactorCover, RejectsDegenerateCovers) {
  EXPECT_THROW(factorCover({}, 3), InvalidArgument);
  std::vector<Cube> constant{makeCube("---", "")};
  EXPECT_THROW(factorCover(constant, 3), InvalidArgument);
  Cube empty(3, 0);
  empty.setLit(0, Lit::Empty);
  EXPECT_THROW(factorCover({empty}, 3), InvalidArgument);
}

}  // namespace
}  // namespace mcx
