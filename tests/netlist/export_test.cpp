#include "netlist/export.hpp"

#include <gtest/gtest.h>

#include "logic/sop_parser.hpp"
#include "netlist/nand_mapper.hpp"

namespace mcx {
namespace {

NandNetwork fig5Network() {
  return mapToNand(parseSop("x1 + x2 + x3 + x4 + x5 x6 x7 x8"));
}

TEST(ExportDot, ContainsAllNodesAndEdges) {
  const NandNetwork net = fig5Network();
  const std::string dot = toDot(net);
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  for (std::size_t i = 1; i <= 8; ++i) {
    // Built via append: GCC 12 -Wrestrict false positive (PR 105329) on
    // inlined char* + std::string concatenation.
    std::string label = "x";
    label += std::to_string(i);
    EXPECT_NE(dot.find(label), std::string::npos);
  }
  EXPECT_NE(dot.find("NAND"), std::string::npos);
  EXPECT_NE(dot.find("doublecircle"), std::string::npos);
  // Inverted rails are dashed.
  EXPECT_NE(dot.find("style=dashed"), std::string::npos);
}

TEST(ExportVerilog, StructureAndPrimitives) {
  const NandNetwork net = fig5Network();
  const std::string v = toVerilog(net, "fig5");
  EXPECT_NE(v.find("module fig5"), std::string::npos);
  EXPECT_NE(v.find("input x8;"), std::string::npos);
  EXPECT_NE(v.find("output o1;"), std::string::npos);
  EXPECT_NE(v.find("nand (g"), std::string::npos);
  EXPECT_NE(v.find("endmodule"), std::string::npos);
  // Inverted rails of x1..x4 get shared inverters.
  EXPECT_NE(v.find("not (xb1, x1);"), std::string::npos);
}

TEST(ExportVerilog, InvertedOutputGetsNot) {
  // An AND-rooted output is inverted at the latch -> `not` primitive.
  const NandNetwork net = mapToNand(parseSop("x1 x2 x3"));
  const std::string v = toVerilog(net);
  EXPECT_NE(v.find("not (o1"), std::string::npos);
}

TEST(ExportVerilog, MultiOutputPortsListed) {
  Cover c(3, 2);
  c.add(makeCube("11-", "10"));
  c.add(makeCube("--1", "01"));
  const std::string v = toVerilog(mapToNand(c));
  EXPECT_NE(v.find("o1, o2);"), std::string::npos);
  EXPECT_NE(v.find("output o2;"), std::string::npos);
}

}  // namespace
}  // namespace mcx
