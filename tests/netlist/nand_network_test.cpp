#include "netlist/nand_network.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace mcx {
namespace {

using Fanin = NandNetwork::Fanin;

TEST(NandNetwork, PisAreNodes) {
  NandNetwork net(3);
  EXPECT_EQ(net.numPis(), 3u);
  for (std::size_t i = 0; i < 3; ++i) EXPECT_TRUE(net.isPi(net.pi(i)));
  EXPECT_THROW(net.pi(3), InvalidArgument);
}

TEST(NandNetwork, SingleNandTruth) {
  NandNetwork net(2);
  const NodeId g = net.addNand({{net.pi(0), false}, {net.pi(1), false}});
  net.addOutput(g, false);
  DynBits in(2);
  EXPECT_TRUE(net.evaluate(in).test(0));   // NAND(0,0)=1
  in.set(0);
  EXPECT_TRUE(net.evaluate(in).test(0));   // NAND(1,0)=1
  in.set(1);
  EXPECT_FALSE(net.evaluate(in).test(0));  // NAND(1,1)=0
}

TEST(NandNetwork, InvertedPiFanin) {
  NandNetwork net(1);
  const NodeId g = net.addNand({{net.pi(0), true}});  // NAND(!x) = x
  net.addOutput(g, false);
  DynBits in(1);
  EXPECT_FALSE(net.evaluate(in).test(0));
  in.set(0);
  EXPECT_TRUE(net.evaluate(in).test(0));
}

TEST(NandNetwork, OutputInversionIsFree) {
  NandNetwork net(2);
  const NodeId g = net.addNand({{net.pi(0), false}, {net.pi(1), false}});
  net.addOutput(g, true);  // = AND
  DynBits in(2);
  in.set(0);
  in.set(1);
  EXPECT_TRUE(net.evaluate(in).test(0));
}

TEST(NandNetwork, StructuralHashingReusesGates) {
  NandNetwork net(2);
  const NodeId a = net.addNand({{net.pi(0), false}, {net.pi(1), false}});
  const NodeId b = net.addNand({{net.pi(1), false}, {net.pi(0), false}});  // same, reordered
  EXPECT_EQ(a, b);
  EXPECT_EQ(net.gateCount(), 1u);
  const NodeId c = net.addNand({{net.pi(0), true}, {net.pi(1), false}});
  EXPECT_NE(a, c);
  EXPECT_EQ(net.gateCount(), 2u);
}

TEST(NandNetwork, DuplicateFaninsCollapse) {
  NandNetwork net(1);
  const NodeId g = net.addNand({{net.pi(0), false}, {net.pi(0), false}});
  EXPECT_EQ(net.fanins(g).size(), 1u);
}

TEST(NandNetwork, RejectsInvalidConstructs) {
  NandNetwork net(2);
  EXPECT_THROW(net.addNand({}), InvalidArgument);
  EXPECT_THROW(net.addNand({{net.pi(0), false}, {net.pi(0), true}}), InvalidArgument);
  const NodeId g = net.addNand({{net.pi(0), false}});
  EXPECT_THROW(net.addNand({{g, true}}), InvalidArgument);  // inverted gate fanin
  EXPECT_THROW(net.addOutput(net.pi(0), false), InvalidArgument);
}

TEST(NandNetwork, LevelsAndInterconnect) {
  NandNetwork net(4);
  const NodeId g1 = net.addNand({{net.pi(0), false}, {net.pi(1), false}});
  const NodeId g2 = net.addNand({{g1, false}, {net.pi(2), false}});
  const NodeId g3 = net.addNand({{g2, false}, {net.pi(3), false}});
  net.addOutput(g3, false);
  EXPECT_EQ(net.gateCount(), 3u);
  EXPECT_EQ(net.levelCount(), 3u);
  EXPECT_EQ(net.maxFanin(), 2u);
  EXPECT_EQ(net.interconnectCount(), 2u);  // g1 and g2 feed gates; g3 does not
}

TEST(NandNetwork, Fig5Network) {
  // f = x1+x2+x3+x4 + x5 x6 x7 x8 = NAND(!x1,!x2,!x3,!x4, NAND(x5..x8)).
  NandNetwork net(8);
  std::vector<Fanin> inner;
  for (std::size_t i = 4; i < 8; ++i) inner.push_back({net.pi(i), false});
  const NodeId u = net.addNand(inner);
  std::vector<Fanin> outer;
  for (std::size_t i = 0; i < 4; ++i) outer.push_back({net.pi(i), true});
  outer.push_back({u, false});
  const NodeId f = net.addNand(outer);
  net.addOutput(f, false);

  EXPECT_EQ(net.gateCount(), 2u);
  EXPECT_EQ(net.interconnectCount(), 1u);

  const TruthTable tt = net.toTruthTable();
  for (std::size_t m = 0; m < 256; ++m) {
    const bool expected = (m & 0xF) != 0 || (m >> 4) == 0xF;
    EXPECT_EQ(tt.get(0, m), expected) << "m=" << m;
  }
}

TEST(NandNetwork, EvaluateArityChecked) {
  NandNetwork net(2);
  const NodeId g = net.addNand({{net.pi(0), false}});
  net.addOutput(g, false);
  DynBits wrong(3);
  EXPECT_THROW(net.evaluate(wrong), InvalidArgument);
}

}  // namespace
}  // namespace mcx
