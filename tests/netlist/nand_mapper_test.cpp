#include "netlist/nand_mapper.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

#include "logic/espresso.hpp"
#include "logic/generators.hpp"
#include "logic/isop.hpp"
#include "logic/sop_parser.hpp"
#include "logic/truth_table.hpp"
#include "util/rng.hpp"

namespace mcx {
namespace {

TEST(NandMapper, Fig5ExampleGivesTwoGates) {
  const Cover c = parseSop("x1 + x2 + x3 + x4 + x5 x6 x7 x8");
  const NandNetwork net = mapToNand(c);
  EXPECT_EQ(net.gateCount(), 2u);
  EXPECT_EQ(net.interconnectCount(), 1u);
  EXPECT_EQ(TruthTable::fromCover(c), net.toTruthTable());
}

TEST(NandMapper, FlatFormIsNandNand) {
  const Cover c = parseSop("x1 x2 + x3 x4 + x1 x4");
  NandMapOptions opts;
  opts.factored = false;
  const NandNetwork net = mapToNand(c, opts);
  // 3 product NANDs + 1 top NAND.
  EXPECT_EQ(net.gateCount(), 4u);
  EXPECT_EQ(net.levelCount(), 2u);
  EXPECT_EQ(TruthTable::fromCover(c), net.toTruthTable());
}

// Non-constant outputs are required by the architecture; random draws that
// hit a tautological projection are skipped.
bool anyConstantOutput(const Cover& c) {
  for (std::size_t o = 0; o < c.nout(); ++o) {
    const auto proj = c.projection(o);
    if (proj.empty() || tautology(proj, c.nin())) return true;
  }
  return false;
}

TEST(NandMapper, EquivalenceOnRandomSingleOutput) {
  Rng rng(555);
  for (int rep = 0; rep < 40; ++rep) {
    RandomSopOptions sop;
    sop.nin = 3 + static_cast<std::size_t>(rng.uniformInt(0, 6));
    sop.nout = 1;
    sop.products = 1 + static_cast<std::size_t>(rng.uniformInt(0, 10));
    const Cover c = randomSop(sop, rng);
    if (anyConstantOutput(c)) continue;
    const NandNetwork net = mapToNand(c);
    EXPECT_EQ(TruthTable::fromCover(c), net.toTruthTable()) << "rep=" << rep;
  }
}

TEST(NandMapper, EquivalenceOnRandomMultiOutput) {
  Rng rng(556);
  for (int rep = 0; rep < 20; ++rep) {
    RandomSopOptions sop;
    sop.nin = 5;
    sop.nout = 1 + static_cast<std::size_t>(rng.uniformInt(0, 3));
    sop.products = 4 + static_cast<std::size_t>(rng.uniformInt(0, 8));
    sop.outputsPerProduct = 1.5;
    const Cover c = randomSop(sop, rng);
    if (anyConstantOutput(c)) continue;
    const NandNetwork net = mapToNand(c);
    EXPECT_EQ(TruthTable::fromCover(c), net.toTruthTable()) << "rep=" << rep;
  }
}

TEST(NandMapper, RejectsTautologicalOutput) {
  Cover c(2, 1);
  c.add(makeCube("1-", "1"));
  c.add(makeCube("0-", "1"));
  EXPECT_THROW(mapToNand(c), InvalidArgument);
}

TEST(NandMapper, FoldsInternalTautologies) {
  // Non-minimal but non-constant: x1 x2 + x1 !x2 + x3 (= x1 + x3). The
  // quotient by x1 is a tautology, which must constant-fold, not crash.
  Cover c(3, 1);
  c.add(makeCube("11-", "1"));
  c.add(makeCube("10-", "1"));
  c.add(makeCube("--1", "1"));
  const NandNetwork net = mapToNand(c);
  EXPECT_EQ(TruthTable::fromCover(c), net.toTruthTable());
}

TEST(NandMapper, SharesGatesAcrossOutputs) {
  // Both outputs contain the same product; the product gate must be shared.
  Cover c(4, 2);
  c.add(makeCube("11--", "11"));
  c.add(makeCube("--10", "10"));
  c.add(makeCube("--01", "01"));
  const NandNetwork net = mapToNand(c);
  EXPECT_EQ(TruthTable::fromCover(c), net.toTruthTable());
  // 3 distinct product gates (the shared "11--" emitted once thanks to
  // structural hashing) + 1 top OR gate per output = 5 gates max.
  EXPECT_LE(net.gateCount(), 5u);
}

TEST(NandMapper, FaninBoundRespected) {
  const Cover c = parseSop("x1 x2 x3 x4 x5 x6 x7 + x8");
  for (std::size_t k = 2; k <= 4; ++k) {
    NandMapOptions opts;
    opts.maxFanin = k;
    const NandNetwork net = mapToNand(c, opts);
    EXPECT_LE(net.maxFanin(), k) << "k=" << k;
    EXPECT_EQ(TruthTable::fromCover(c), net.toTruthTable()) << "k=" << k;
  }
}

TEST(NandMapper, FaninBoundEquivalenceOnRandom) {
  Rng rng(557);
  for (int rep = 0; rep < 20; ++rep) {
    RandomSopOptions sop;
    sop.nin = 8;
    sop.nout = 1;
    sop.products = 6;
    sop.literalsPerProduct = 5.0;
    const Cover c = randomSop(sop, rng);
    NandMapOptions opts;
    opts.maxFanin = 2 + static_cast<std::size_t>(rng.uniformInt(0, 2));
    const NandNetwork net = mapToNand(c, opts);
    EXPECT_LE(net.maxFanin(), opts.maxFanin);
    EXPECT_EQ(TruthTable::fromCover(c), net.toTruthTable()) << "rep=" << rep;
  }
}

TEST(NandMapper, SingleLiteralOutput) {
  const Cover c = parseSop("x1", 3);
  const NandNetwork net = mapToNand(c);
  EXPECT_EQ(TruthTable::fromCover(c), net.toTruthTable());
  EXPECT_GE(net.gateCount(), 1u);  // wrapped in a gate (outputs must be gates)
}

TEST(NandMapper, RejectsConstantOutput) {
  Cover c(2, 1);  // empty projection = constant 0
  c.add(makeCube("11", "0"));
  EXPECT_THROW(mapToNand(c), InvalidArgument);
}

TEST(NandMapper, WeightFunctionEquivalence) {
  const TruthTable tt = weightFunction(5);
  const Cover cover = isopCover(tt);
  const NandNetwork net = mapToNand(cover);
  EXPECT_EQ(net.toTruthTable(), tt);
}

}  // namespace
}  // namespace mcx
