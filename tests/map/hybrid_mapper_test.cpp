#include "map/hybrid_mapper.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

#include "logic/generators.hpp"
#include "logic/sop_parser.hpp"
#include "xbar/defects.hpp"

namespace mcx {
namespace {

FunctionMatrix smallFm() {
  return buildFunctionMatrix(parseSop("x1 x2 + !x1 x3 + x2 x3"));
}

TEST(HybridMapper, CleanCrossbarMapsIdentity) {
  const FunctionMatrix fm = smallFm();
  const BitMatrix cm(fm.rows(), fm.cols(), true);
  const MappingResult r = HybridMapper().map(fm, cm);
  ASSERT_TRUE(r.success);
  EXPECT_TRUE(verifyMapping(fm, cm, r));
  EXPECT_EQ(r.backtracks, 0u);
  std::vector<std::size_t> identity(fm.rows());
  for (std::size_t i = 0; i < identity.size(); ++i) identity[i] = i;
  EXPECT_EQ(r.rowAssignment, identity);
}

TEST(HybridMapper, FailsWhenCrossbarTooSmall) {
  const FunctionMatrix fm = smallFm();
  const BitMatrix cm(fm.rows() - 1, fm.cols(), true);
  EXPECT_FALSE(HybridMapper().map(fm, cm).success);
}

TEST(HybridMapper, FailsOnColumnMismatch) {
  const FunctionMatrix fm = smallFm();
  const BitMatrix cm(fm.rows(), fm.cols() + 1, true);
  EXPECT_THROW(HybridMapper().map(fm, cm), InvalidArgument);
}

TEST(HybridMapper, FullyDefectiveCrossbarFails) {
  const FunctionMatrix fm = smallFm();
  const BitMatrix cm(fm.rows(), fm.cols());  // everything stuck-open
  EXPECT_FALSE(HybridMapper().map(fm, cm).success);
}

TEST(HybridMapper, OutputRowNeedsItsLatchSwitches) {
  const FunctionMatrix fm = smallFm();
  BitMatrix cm(fm.rows(), fm.cols(), true);
  // Kill the O1 column everywhere: no row can host the output row.
  cm.setCol(fm.colOfOutput(0), false);
  EXPECT_FALSE(HybridMapper().map(fm, cm).success);
}

TEST(HybridMapper, SpareRowsHelp) {
  const FunctionMatrix fm = smallFm();
  // Optimum-size crossbar with a poisoned first row fails only if no other
  // row can absorb the load; with a spare row it must succeed.
  BitMatrix cm(fm.rows() + 1, fm.cols(), true);
  cm.setRow(0, false);
  const MappingResult r = HybridMapper().map(fm, cm);
  ASSERT_TRUE(r.success);
  EXPECT_TRUE(verifyMapping(fm, cm, r));
}

TEST(HybridMapper, ZeroDefectRateAlwaysSucceeds) {
  Rng rng(4);
  for (int rep = 0; rep < 10; ++rep) {
    RandomSopOptions opts;
    opts.nin = 6;
    opts.nout = 2;
    opts.products = 8;
    const Cover cover = randomSop(opts, rng);
    const FunctionMatrix fm = buildFunctionMatrix(cover);
    const BitMatrix cm(fm.rows(), fm.cols(), true);
    EXPECT_TRUE(HybridMapper().map(fm, cm).success);
  }
}

TEST(HybridMapper, ResultsAlwaysVerifyOnRandomDefects) {
  Rng rng(8);
  RandomSopOptions opts;
  opts.nin = 6;
  opts.nout = 3;
  opts.products = 10;
  const Cover cover = randomSop(opts, rng);
  const FunctionMatrix fm = buildFunctionMatrix(cover);
  std::size_t successes = 0;
  for (int rep = 0; rep < 100; ++rep) {
    Rng sample = rng.split();
    const DefectMap defects = DefectMap::sample(fm.rows(), fm.cols(), 0.08, 0.0, sample);
    const BitMatrix cm = crossbarMatrix(defects);
    const MappingResult r = HybridMapper().map(fm, cm);
    if (r.success) {
      ++successes;
      EXPECT_TRUE(verifyMapping(fm, cm, r)) << "rep=" << rep;
    }
  }
  EXPECT_GT(successes, 0u);
}

TEST(HybridMapper, BacktrackRelocatesPreviousOwner) {
  // Product A fits CM rows {0,1,2}; product B fits only {0}. In the paper's
  // top-to-bottom greedy order A grabs 0 and B dead-ends; one-level
  // backtracking must relocate A.
  FunctionMatrix fm(1, 1, 2, 0);  // 3 rows (2 products + 1 output), 4 cols
  fm.bits().set(0, 2);            // product A
  fm.bits().set(1, 0);            // product B
  fm.bits().set(1, 2);
  fm.bits().set(2, 2);            // output row
  fm.bits().set(2, 3);
  BitMatrix cm(3, 4, true);
  cm.reset(1, 0);
  cm.reset(2, 0);
  HybridMapperOptions paperOrder;
  paperOrder.sortByCandidates = false;
  const MappingResult r = HybridMapper(paperOrder).map(fm, cm);
  ASSERT_TRUE(r.success);
  EXPECT_GE(r.backtracks, 1u);
  EXPECT_EQ(r.rowAssignment[1], 0u);  // B ends up on the only row it fits
  EXPECT_TRUE(verifyMapping(fm, cm, r));

  HybridMapperOptions noBt;
  noBt.backtracking = false;
  noBt.sortByCandidates = false;
  EXPECT_FALSE(HybridMapper(noBt).map(fm, cm).success);
}

TEST(HybridMapper, CandidateOrderingAvoidsBacktracking) {
  // Same dead-end instance: most-constrained-first ordering (the default)
  // places B before A and never needs the repair.
  FunctionMatrix fm(1, 1, 2, 0);
  fm.bits().set(0, 2);
  fm.bits().set(1, 0);
  fm.bits().set(1, 2);
  fm.bits().set(2, 2);
  fm.bits().set(2, 3);
  BitMatrix cm(3, 4, true);
  cm.reset(1, 0);
  cm.reset(2, 0);
  const MappingResult r = HybridMapper().map(fm, cm);
  ASSERT_TRUE(r.success);
  EXPECT_EQ(r.backtracks, 0u);
  EXPECT_EQ(r.rowAssignment[1], 0u);
  EXPECT_TRUE(verifyMapping(fm, cm, r));
}

}  // namespace
}  // namespace mcx
