#include "map/column_permutation_mapper.hpp"

#include <gtest/gtest.h>

#include "logic/generators.hpp"
#include "map/greedy_mapper.hpp"
#include "logic/sop_parser.hpp"
#include "xbar/defects.hpp"

namespace mcx {
namespace {

TEST(ColumnPermutationMapper, CleanCrossbarUsesIdentity) {
  const FunctionMatrix fm = buildFunctionMatrix(parseSop("x1 x2 + !x3"));
  const BitMatrix cm(fm.rows(), fm.cols(), true);
  const MappingResult r = ColumnPermutationMapper().map(fm, cm);
  ASSERT_TRUE(r.success);
  ASSERT_EQ(r.inputPermutation.size(), 3u);
  for (std::size_t v = 0; v < 3; ++v) EXPECT_EQ(r.inputPermutation[v], v);
}

TEST(ColumnPermutationMapper, SolvesRowInfeasibleInstance) {
  // Product x1 occupies the only row where column x1 works... construct:
  // two products needing x1's positive rail but that rail is dead on all
  // rows except one. Row permutation alone cannot help; rerouting x1 to
  // pair 2 can.
  Cover c(2, 1);
  c.add(makeCube("10", "1"));  // x1 !x2
  c.add(makeCube("1-", "1"));  // x1
  const FunctionMatrix fm = buildFunctionMatrix(c);
  BitMatrix cm(fm.rows(), fm.cols(), true);
  // Kill x1's positive rail (col 0) on all but one row: two products both
  // need it -> row-permutation infeasible.
  cm.reset(1, fm.colOfPosLiteral(0));
  cm.reset(2, fm.colOfPosLiteral(0));
  EXPECT_FALSE(HybridMapper().map(fm, cm).success);

  const MappingResult r = ColumnPermutationMapper().map(fm, cm);
  ASSERT_TRUE(r.success);
  EXPECT_TRUE(verifyMapping(fm, cm, r));
  // x1 must have been rerouted to the other pair.
  EXPECT_EQ(r.inputPermutation[0], 1u);
}

TEST(ColumnPermutationMapper, ReportsFailureWhenTrulyInfeasible) {
  const FunctionMatrix fm = buildFunctionMatrix(parseSop("x1 x2"));
  const BitMatrix cm(fm.rows(), fm.cols());  // all stuck-open
  ColumnPermutationOptions opts;
  opts.restarts = 5;
  EXPECT_FALSE(ColumnPermutationMapper(opts).map(fm, cm).success);
}

TEST(ColumnPermutationMapper, CustomInnerMapper) {
  const FunctionMatrix fm = buildFunctionMatrix(parseSop("x1 + x2"));
  const BitMatrix cm(fm.rows(), fm.cols(), true);
  const ColumnPermutationMapper mapper({}, std::make_shared<GreedyMapper>());
  EXPECT_EQ(mapper.name(), "ColPerm+Greedy");
  EXPECT_TRUE(mapper.map(fm, cm).success);
}

TEST(ColumnPermutationMapper, StatisticallyBeatsPlainHybrid) {
  Rng rng(4242);
  RandomSopOptions opts;
  opts.nin = 6;
  opts.nout = 2;
  opts.products = 12;
  opts.literalsPerProduct = 4.0;
  const Cover cover = randomSop(opts, rng);
  const FunctionMatrix fm = buildFunctionMatrix(cover);
  std::size_t hbaWins = 0, colWins = 0;
  const HybridMapper hba;
  const ColumnPermutationMapper colPerm;
  for (int rep = 0; rep < 60; ++rep) {
    Rng sample = rng.split();
    const DefectMap defects = DefectMap::sample(fm.rows(), fm.cols(), 0.18, 0.0, sample);
    const BitMatrix cm = crossbarMatrix(defects);
    hbaWins += hba.map(fm, cm).success ? 1 : 0;
    const MappingResult r = colPerm.map(fm, cm);
    if (r.success) {
      ++colWins;
      EXPECT_TRUE(verifyMapping(fm, cm, r));
    }
  }
  EXPECT_GE(colWins, hbaWins);
}

}  // namespace
}  // namespace mcx
