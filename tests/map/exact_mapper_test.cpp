#include "map/exact_mapper.hpp"

#include <gtest/gtest.h>

#include "logic/generators.hpp"
#include "logic/sop_parser.hpp"
#include "util/error.hpp"
#include "xbar/defects.hpp"

namespace mcx {
namespace {

TEST(ExactMapper, CleanCrossbarSucceeds) {
  const FunctionMatrix fm = buildFunctionMatrix(parseSop("x1 x2 + x3"));
  const BitMatrix cm(fm.rows(), fm.cols(), true);
  const MappingResult r = ExactMapper().map(fm, cm);
  ASSERT_TRUE(r.success);
  EXPECT_TRUE(verifyMapping(fm, cm, r));
}

TEST(ExactMapper, TooSmallCrossbarFails) {
  const FunctionMatrix fm = buildFunctionMatrix(parseSop("x1 x2 + x3"));
  const BitMatrix cm(fm.rows() - 1, fm.cols(), true);
  EXPECT_FALSE(ExactMapper().map(fm, cm).success);
}

TEST(ExactMapper, FindsMappingRequiringGlobalReshuffle) {
  // Construct an instance where greedy minterm placement provably dead-ends
  // even with one-level backtracking, but a global assignment exists.
  //
  // Products A, B, C with fits: A -> {0,1}, B -> {0,2}, C -> {0}.
  // Greedy: A->0, B->2; C needs 0: relocate A->1 works, so HBA also
  // succeeds here; for EA we only require success.
  FunctionMatrix fm(2, 1, 3, 0);
  fm.bits().set(0, 0);               // A needs col 0
  fm.bits().set(1, 1);               // B needs col 1
  fm.bits().set(2, 0);               // C needs cols 0 and 1
  fm.bits().set(2, 1);
  fm.bits().set(3, 4);               // output row needs O1 / !O1
  fm.bits().set(3, 5);
  BitMatrix cm(4, 6, true);
  cm.reset(1, 1);                    // row 1: only A or outputs
  cm.reset(2, 0);                    // row 2: only B or outputs
  cm.reset(3, 0);                    // row 3: outputs only
  cm.reset(3, 1);
  const MappingResult r = ExactMapper().map(fm, cm);
  ASSERT_TRUE(r.success);
  EXPECT_TRUE(verifyMapping(fm, cm, r));
  EXPECT_EQ(r.rowAssignment[2], 0u);  // C forced onto row 0
}

TEST(ExactMapper, ProvesInfeasibility) {
  // Two products both only fit row 0: no mapping can exist.
  FunctionMatrix fm(1, 1, 2, 0);
  fm.bits().set(0, 0);
  fm.bits().set(1, 0);
  fm.bits().set(2, 2);
  fm.bits().set(2, 3);
  BitMatrix cm(3, 4, true);
  cm.reset(1, 0);
  cm.reset(2, 0);
  EXPECT_FALSE(ExactMapper().map(fm, cm).success);
}

TEST(ExactMapper, ColumnMismatchThrows) {
  const FunctionMatrix fm = buildFunctionMatrix(parseSop("x1"));
  const BitMatrix cm(fm.rows(), fm.cols() + 2, true);
  EXPECT_THROW(ExactMapper().map(fm, cm), InvalidArgument);
}

TEST(ExactMapper, ResultsVerifyOnRandomDefects) {
  Rng rng(21);
  RandomSopOptions opts;
  opts.nin = 5;
  opts.nout = 2;
  opts.products = 8;
  const Cover cover = randomSop(opts, rng);
  const FunctionMatrix fm = buildFunctionMatrix(cover);
  for (int rep = 0; rep < 60; ++rep) {
    Rng sample = rng.split();
    const DefectMap defects = DefectMap::sample(fm.rows(), fm.cols(), 0.1, 0.0, sample);
    const BitMatrix cm = crossbarMatrix(defects);
    const MappingResult r = ExactMapper().map(fm, cm);
    if (r.success) {
      EXPECT_TRUE(verifyMapping(fm, cm, r)) << "rep=" << rep;
    }
  }
}

TEST(ExactMapper, MunkresBaselineAgreesWithFastPath) {
  // The paper's Munkres formulation and the Hopcroft-Karp fast path decide
  // the same feasibility question: identical success sets on random defects.
  Rng rng(0xea);
  RandomSopOptions opts;
  opts.nin = 5;
  opts.nout = 2;
  opts.products = 8;
  const Cover cover = randomSop(opts, rng);
  const FunctionMatrix fm = buildFunctionMatrix(cover);
  ExactMapperOptions munkres;
  munkres.useMunkres = true;
  for (int rep = 0; rep < 60; ++rep) {
    Rng sample = rng.split();
    const DefectMap defects = DefectMap::sample(fm.rows(), fm.cols(), 0.15, 0.0, sample);
    const BitMatrix cm = crossbarMatrix(defects);
    const MappingResult fast = ExactMapper().map(fm, cm);
    const MappingResult exact = ExactMapper(munkres).map(fm, cm);
    EXPECT_EQ(fast.success, exact.success) << "rep=" << rep;
    if (exact.success) {
      EXPECT_TRUE(verifyMapping(fm, cm, exact)) << "rep=" << rep;
    }
  }
}

}  // namespace
}  // namespace mcx
