#include "map/registry.hpp"

#include <gtest/gtest.h>

#include "logic/sop_parser.hpp"
#include "util/error.hpp"
#include "xbar/defects.hpp"
#include "xbar/function_matrix.hpp"

namespace mcx {
namespace {

TEST(MapperRegistry, PresetsCoverEveryVariantAndBuild) {
  const auto& presets = mapperPresets();
  ASSERT_GE(presets.size(), 8u);
  for (const MapperPreset& preset : presets) {
    EXPECT_FALSE(preset.summary.empty()) << preset.name;
    const std::shared_ptr<const IMapper> mapper = preset.make();
    ASSERT_NE(mapper, nullptr) << preset.name;
    EXPECT_FALSE(mapper->name().empty()) << preset.name;
  }
}

TEST(MapperRegistry, FindAndMakeByName) {
  EXPECT_NE(findMapperPreset("hba"), nullptr);
  EXPECT_EQ(findMapperPreset("nope"), nullptr);
  EXPECT_EQ(makeMapper("hba")->name(), "HBA");
  EXPECT_EQ(makeMapper("hba-nobt")->name(), "HBA-nobt");
  EXPECT_EQ(makeMapper("ea")->name(), "EA");
  EXPECT_EQ(makeMapper("ea-munkres")->name(), "EA-munkres");
  EXPECT_EQ(makeMapper("fast-ea")->name(), "EA-fast");
  EXPECT_EQ(makeMapper("greedy")->name(), "Greedy");
  EXPECT_EQ(makeMapper("colperm")->name(), "ColPerm+HBA");
}

TEST(MapperRegistry, UnknownNameListsPresets) {
  try {
    makeMapper("bogus");
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("unknown mapper \"bogus\""), std::string::npos);
    EXPECT_NE(what.find("hba"), std::string::npos) << "error should list the presets";
  }
}

TEST(MapperRegistry, SpecOptionsAreApplied) {
  EXPECT_EQ(makeMapper(R"({"mapper": "hba", "backtracking": false})")->name(), "HBA-nobt");
  EXPECT_EQ(makeMapper(R"({"mapper": "ea", "munkres": true})")->name(), "EA-munkres");
  EXPECT_EQ(makeMapper(R"({"preset": "fast-ea"})")->name(), "EA-fast");
  EXPECT_EQ(makeMapper(R"({"mapper": "colperm", "restarts": 3, "inner": "hba-nobt"})")->name(),
            "ColPerm+HBA-nobt");
  EXPECT_EQ(makeMapper(
                R"({"mapper": "colperm", "inner": {"mapper": "hba", "backtracking": false}})")
                ->name(),
            "ColPerm+HBA-nobt");
}

TEST(MapperRegistry, SpecErrorPaths) {
  EXPECT_THROW(makeMapper(R"({"mapper": "nope"})"), ParseError);
  EXPECT_THROW(makeMapper(R"({"mapper": "hba", "backtrackin": false})"), ParseError);
  EXPECT_THROW(makeMapper(R"({"mapper": "hba", "backtracking": 1})"), ParseError);
  EXPECT_THROW(makeMapper(R"({"preset": 3})"), ParseError);
  EXPECT_THROW(makeMapper(R"({"preset": "nope"})"), ParseError);
  EXPECT_THROW(makeMapper(R"({"mapper": "colperm", "restarts": -1})"), ParseError);
  EXPECT_THROW(makeMapper(R"([1, 2])"), ParseError);
}

TEST(MapperRegistry, RegistryMappersActuallyMap) {
  // Every preset must produce a working mapper on a clean crossbar.
  const FunctionMatrix fm =
      buildFunctionMatrix(parseSop("x1 x2 + !x2 x3 + x1 !x3"));
  const DefectMap clean(fm.rows(), fm.cols());
  const BitMatrix cm = crossbarMatrix(clean);
  for (const MapperPreset& preset : mapperPresets()) {
    const MappingResult result = preset.make()->map(fm, cm);
    EXPECT_TRUE(result.success) << preset.name;
    EXPECT_TRUE(verifyMapping(fm, cm, result)) << preset.name;
  }
}

}  // namespace
}  // namespace mcx
