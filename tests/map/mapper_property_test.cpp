// Cross-mapper properties over randomized instances:
//  * every reported success verifies against the matching rule,
//  * EA dominates HBA dominates greedy / no-backtracking variants,
//  * the column-permutation extension dominates plain HBA,
//  * zero defect rate always succeeds; full defect rate always fails.
#include <gtest/gtest.h>

#include "logic/generators.hpp"
#include "map/column_permutation_mapper.hpp"
#include "map/exact_mapper.hpp"
#include "map/greedy_mapper.hpp"
#include "map/hybrid_mapper.hpp"
#include "xbar/defects.hpp"
#include "xbar/function_matrix.hpp"

namespace mcx {
namespace {

struct Instance {
  FunctionMatrix fm;
  BitMatrix cm;
};

std::vector<Instance> randomInstances(std::size_t count, double defectRate, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Instance> instances;
  for (std::size_t i = 0; i < count; ++i) {
    RandomSopOptions opts;
    opts.nin = 4 + static_cast<std::size_t>(rng.uniformInt(0, 4));
    opts.nout = 1 + static_cast<std::size_t>(rng.uniformInt(0, 2));
    opts.products = 4 + static_cast<std::size_t>(rng.uniformInt(0, 10));
    opts.literalsPerProduct = 2.5;
    const Cover cover = randomSop(opts, rng);
    FunctionMatrix fm = buildFunctionMatrix(cover);
    Rng sampleRng = rng.split();
    const DefectMap defects =
        DefectMap::sample(fm.rows(), fm.cols(), defectRate, 0.0, sampleRng);
    instances.push_back({std::move(fm), crossbarMatrix(defects)});
  }
  return instances;
}

TEST(MapperProperties, SuccessesAlwaysVerify) {
  const auto instances = randomInstances(60, 0.12, 1001);
  const HybridMapper hba;
  const ExactMapper ea;
  const GreedyMapper greedy;
  for (const auto& [fm, cm] : instances) {
    for (const IMapper* mapper : std::initializer_list<const IMapper*>{&hba, &ea, &greedy}) {
      const MappingResult r = mapper->map(fm, cm);
      if (r.success) {
        EXPECT_TRUE(verifyMapping(fm, cm, r)) << mapper->name();
      }
    }
  }
}

TEST(MapperProperties, ExactDominatesHybrid) {
  const auto instances = randomInstances(80, 0.10, 1002);
  const HybridMapper hba;
  const ExactMapper ea;
  for (const auto& [fm, cm] : instances) {
    if (hba.map(fm, cm).success) {
      EXPECT_TRUE(ea.map(fm, cm).success);
    }
  }
}

TEST(MapperProperties, HybridDominatesNoBacktracking) {
  const auto instances = randomInstances(80, 0.12, 1003);
  HybridMapperOptions noBt;
  noBt.backtracking = false;
  const HybridMapper with, without(noBt);
  for (const auto& [fm, cm] : instances) {
    if (without.map(fm, cm).success) {
      EXPECT_TRUE(with.map(fm, cm).success);
    }
  }
}

TEST(MapperProperties, ColumnPermutationDominatesHybrid) {
  const auto instances = randomInstances(40, 0.14, 1004);
  const HybridMapper hba;
  const ColumnPermutationMapper colPerm;
  for (const auto& [fm, cm] : instances) {
    if (hba.map(fm, cm).success) {
      const MappingResult r = colPerm.map(fm, cm);
      EXPECT_TRUE(r.success);
      EXPECT_TRUE(verifyMapping(fm, cm, r));
    }
  }
}

TEST(MapperProperties, ColumnPermutationResultsVerify) {
  const auto instances = randomInstances(40, 0.2, 1005);
  const ColumnPermutationMapper colPerm;
  std::size_t successes = 0;
  for (const auto& [fm, cm] : instances) {
    const MappingResult r = colPerm.map(fm, cm);
    if (r.success) {
      ++successes;
      EXPECT_TRUE(verifyMapping(fm, cm, r));
    }
  }
  EXPECT_GT(successes, 0u);
}

TEST(MapperProperties, ZeroRateAlwaysSucceedsFullRateAlwaysFails) {
  for (const auto& [fm, cm] : randomInstances(20, 0.0, 1006)) {
    EXPECT_TRUE(HybridMapper().map(fm, cm).success);
    EXPECT_TRUE(ExactMapper().map(fm, cm).success);
  }
  for (const auto& [fm, cm] : randomInstances(20, 1.0, 1007)) {
    EXPECT_FALSE(HybridMapper().map(fm, cm).success);
    EXPECT_FALSE(ExactMapper().map(fm, cm).success);
    EXPECT_FALSE(GreedyMapper().map(fm, cm).success);
  }
}

// Success-rate monotonicity in defect rate (statistical, generous margins).
class DefectRateSweep : public ::testing::TestWithParam<double> {};

TEST_P(DefectRateSweep, ExactBeatsOrMatchesHybridRate) {
  const double rate = GetParam();
  const auto instances = randomInstances(50, rate, 42 + static_cast<std::uint64_t>(rate * 100));
  std::size_t hbaWins = 0, eaWins = 0;
  for (const auto& [fm, cm] : instances) {
    hbaWins += HybridMapper().map(fm, cm).success ? 1 : 0;
    eaWins += ExactMapper().map(fm, cm).success ? 1 : 0;
  }
  EXPECT_GE(eaWins, hbaWins);
}

INSTANTIATE_TEST_SUITE_P(Rates, DefectRateSweep, ::testing::Values(0.02, 0.05, 0.1, 0.2, 0.3));

}  // namespace
}  // namespace mcx
