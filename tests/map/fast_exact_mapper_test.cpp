#include "map/fast_exact_mapper.hpp"

#include <gtest/gtest.h>

#include "logic/generators.hpp"
#include "logic/sop_parser.hpp"
#include "map/exact_mapper.hpp"
#include "util/error.hpp"
#include "xbar/defects.hpp"

namespace mcx {
namespace {

TEST(FastExactMapper, CleanCrossbarSucceeds) {
  const FunctionMatrix fm = buildFunctionMatrix(parseSop("x1 x2 + x3"));
  const BitMatrix cm(fm.rows(), fm.cols(), true);
  const MappingResult r = FastExactMapper().map(fm, cm);
  ASSERT_TRUE(r.success);
  EXPECT_TRUE(verifyMapping(fm, cm, r));
}

TEST(FastExactMapper, TooSmallCrossbarFails) {
  const FunctionMatrix fm = buildFunctionMatrix(parseSop("x1 x2 + x3"));
  const BitMatrix cm(fm.rows() - 1, fm.cols(), true);
  EXPECT_FALSE(FastExactMapper().map(fm, cm).success);
}

TEST(FastExactMapper, ColumnMismatchThrows) {
  const FunctionMatrix fm = buildFunctionMatrix(parseSop("x1"));
  const BitMatrix cm(fm.rows(), fm.cols() + 1, true);
  EXPECT_THROW(FastExactMapper().map(fm, cm), InvalidArgument);
}

TEST(FastExactMapper, AgreesWithMunkresExactMapperEverywhere) {
  // EA-fast is exact: identical success set to EA on random instances.
  Rng rng(41);
  const ExactMapper ea;
  const FastExactMapper fast;
  for (int rep = 0; rep < 120; ++rep) {
    RandomSopOptions opts;
    opts.nin = 4 + static_cast<std::size_t>(rng.uniformInt(0, 4));
    opts.nout = 1 + static_cast<std::size_t>(rng.uniformInt(0, 2));
    opts.products = 4 + static_cast<std::size_t>(rng.uniformInt(0, 10));
    const Cover cover = randomSop(opts, rng);
    const FunctionMatrix fm = buildFunctionMatrix(cover);
    Rng sample = rng.split();
    const DefectMap defects = DefectMap::sample(
        fm.rows(), fm.cols(), 0.05 + 0.2 * sample.uniform(), 0.0, sample);
    const BitMatrix cm = crossbarMatrix(defects);
    const MappingResult a = ea.map(fm, cm);
    const MappingResult b = fast.map(fm, cm);
    EXPECT_EQ(a.success, b.success) << "rep=" << rep;
    if (b.success) {
      EXPECT_TRUE(verifyMapping(fm, cm, b)) << "rep=" << rep;
    }
  }
}

TEST(FastExactMapper, HandlesSpareRows) {
  const FunctionMatrix fm = buildFunctionMatrix(parseSop("x1 + x2"));
  BitMatrix cm(fm.rows() + 2, fm.cols(), true);
  cm.setRow(0, false);
  cm.setRow(1, false);
  const MappingResult r = FastExactMapper().map(fm, cm);
  ASSERT_TRUE(r.success);
  EXPECT_TRUE(verifyMapping(fm, cm, r));
}

}  // namespace
}  // namespace mcx
