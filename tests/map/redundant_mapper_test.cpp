#include "map/redundant_mapper.hpp"

#include <gtest/gtest.h>

#include "logic/generators.hpp"
#include "logic/sop_parser.hpp"
#include "util/error.hpp"

namespace mcx {
namespace {

FunctionMatrix testFm() {
  return buildFunctionMatrix(parseSop("x1 x2 + !x2 x3 + x1 x3"));
}

TEST(RedundantDims, AddsSparesToGeometry) {
  const FunctionMatrix fm = testFm();
  const RedundantCrossbarSpec spec{2, 1, 1};
  const CrossbarDims dims = redundantDims(fm, spec);
  EXPECT_EQ(dims.rows, fm.rows() + 2);
  EXPECT_EQ(dims.cols, 2 * (fm.nin() + 1) + 2 * (fm.nout() + 1));
}

TEST(RedundantMapper, CleanCrossbarMaps) {
  const FunctionMatrix fm = testFm();
  const RedundantCrossbarSpec spec{1, 1, 1};
  const DefectMap defects(redundantDims(fm, spec).rows, redundantDims(fm, spec).cols);
  const RedundantMappingResult r = RedundantMapper(spec).map(fm, defects);
  EXPECT_TRUE(r.success);
  EXPECT_EQ(r.inputPairOfVar.size(), fm.nin());
  EXPECT_EQ(r.outputPairOfOut.size(), fm.nout());
}

TEST(RedundantMapper, WrongDefectDimensionsThrow) {
  const FunctionMatrix fm = testFm();
  const RedundantCrossbarSpec spec{1, 0, 0};
  const DefectMap defects(fm.rows(), fm.cols());  // missing the spare row
  EXPECT_THROW(RedundantMapper(spec).map(fm, defects), InvalidArgument);
}

TEST(RedundantMapper, SpareRowAbsorbsStuckClosedRow) {
  const FunctionMatrix fm = testFm();
  const RedundantCrossbarSpec spec{1, 0, 0};
  const CrossbarDims dims = redundantDims(fm, spec);
  DefectMap defects(dims.rows, dims.cols);
  // Poison one row entirely: without a spare row this is fatal (the poisoned
  // row also kills a column... no: stuck-closed kills its row and column).
  // Poison via a crosspoint in a column no FM row requires? Columns are all
  // potentially required, so instead mark every cell of row 0 stuck-open —
  // an unusable-but-not-poisoning row.
  for (std::size_t c = 0; c < dims.cols; ++c) defects.setType(0, c, DefectType::StuckOpen);
  const RedundantMappingResult r = RedundantMapper(spec).map(fm, defects);
  EXPECT_TRUE(r.success);
}

TEST(RedundantMapper, SpareInputPairAbsorbsDeadColumn) {
  const FunctionMatrix fm = testFm();
  const RedundantCrossbarSpec spec{0, 1, 0};
  const CrossbarDims dims = redundantDims(fm, spec);
  DefectMap defects(dims.rows, dims.cols);
  // Make physical input pair 0 useless by sticking open its positive rail
  // in every row; the mapper must route some variable to the spare pair.
  for (std::size_t r = 0; r < dims.rows; ++r) defects.setType(r, 0, DefectType::StuckOpen);
  const RedundantMappingResult result = RedundantMapper(spec).map(fm, defects);
  ASSERT_TRUE(result.success);
  // Pair 0 must not be chosen for a variable whose positive rail is needed
  // everywhere — verify pair choice avoids it entirely (least-defective
  // selection) or the mapping still verifies.
  EXPECT_EQ(result.rows.rowAssignment.size(), fm.rows());
}

TEST(RedundantMapper, FailsWithoutNeededSpares) {
  const FunctionMatrix fm = testFm();
  const RedundantCrossbarSpec spec{0, 0, 0};
  const CrossbarDims dims = redundantDims(fm, spec);
  DefectMap defects(dims.rows, dims.cols);
  // Stuck-closed poisons a row AND a column; with zero spares the row loss
  // alone is fatal on an optimum-size crossbar.
  defects.setType(0, 0, DefectType::StuckClosed);
  const RedundantMappingResult r = RedundantMapper(spec).map(fm, defects);
  EXPECT_FALSE(r.success);
}

TEST(RedundantMapper, StuckClosedToleratedWithFullSpares) {
  const FunctionMatrix fm = testFm();
  const RedundantCrossbarSpec spec{1, 1, 1};
  const CrossbarDims dims = redundantDims(fm, spec);
  DefectMap defects(dims.rows, dims.cols);
  // One stuck-closed crosspoint on an input rail: kills row 0 and pair 0's
  // positive rail. Spare row + spare input pair must absorb it.
  defects.setType(0, 0, DefectType::StuckClosed);
  const RedundantMappingResult r = RedundantMapper(spec).map(fm, defects);
  EXPECT_TRUE(r.success);
}

}  // namespace
}  // namespace mcx
