// Reproduction of the paper's worked defect-mapping example (Figs. 7 and 8):
// O1 = x1 x2 + x2 x3, O2 = x1 x3 + x2 x3 on a 6x10 crossbar with stuck-open
// defects. The naive (identity) mapping is invalid; both HBA and EA find a
// valid row permutation.
#include <gtest/gtest.h>

#include "map/exact_mapper.hpp"
#include "map/hybrid_mapper.hpp"
#include "xbar/defects.hpp"
#include "xbar/function_matrix.hpp"

namespace mcx {
namespace {

Cover fig8Cover() {
  Cover c(3, 2);
  c.add(makeCube("11-", "10"));  // m1 = x1 x2      -> O1
  c.add(makeCube("-11", "10"));  // m2 = x2 x3      -> O1
  c.add(makeCube("1-1", "01"));  // m3 = x1 x3      -> O2
  c.add(makeCube("-11", "01"));  // m4 = x2 x3      -> O2
  return c;
}

// Fig. 8(b) crossbar matrix: rows H1..H6, columns V1..V10; 0 = stuck-open.
DefectMap fig8Defects() {
  const char* rows[6] = {
      "1010111101",
      "1111111111",
      "0011111111",
      "1011011111",
      "1101111111",
      "1110111011",
  };
  DefectMap map(6, 10);
  for (std::size_t r = 0; r < 6; ++r)
    for (std::size_t c = 0; c < 10; ++c)
      if (rows[r][c] == '0') map.setType(r, c, DefectType::StuckOpen);
  return map;
}

TEST(PaperExample, NaiveIdentityMappingIsInvalid) {
  const FunctionMatrix fm = buildFunctionMatrix(fig8Cover());
  const BitMatrix cm = crossbarMatrix(fig8Defects());
  MappingResult identity;
  identity.success = true;
  identity.rowAssignment = {0, 1, 2, 3, 4, 5};
  EXPECT_FALSE(verifyMapping(fm, cm, identity));
}

TEST(PaperExample, HybridFindsValidMapping) {
  const FunctionMatrix fm = buildFunctionMatrix(fig8Cover());
  const BitMatrix cm = crossbarMatrix(fig8Defects());
  const MappingResult r = HybridMapper().map(fm, cm);
  ASSERT_TRUE(r.success);
  EXPECT_TRUE(verifyMapping(fm, cm, r));
}

TEST(PaperExample, ExactFindsValidMapping) {
  const FunctionMatrix fm = buildFunctionMatrix(fig8Cover());
  const BitMatrix cm = crossbarMatrix(fig8Defects());
  const MappingResult r = ExactMapper().map(fm, cm);
  ASSERT_TRUE(r.success);
  EXPECT_TRUE(verifyMapping(fm, cm, r));
}

TEST(PaperExample, KnownValidAssignmentHasZeroCost) {
  // A zero-cost assignment in our column convention (derived by hand, in
  // the spirit of Fig. 8(d)): m1->H5, m2->H6, m3->H4, m4->H2, O1->H3,
  // O2->H1. m4 = x2 x3 (O2) fits only the fully functional H2, which forces
  // the backtracking path in HBA.
  const FunctionMatrix fm = buildFunctionMatrix(fig8Cover());
  const BitMatrix cm = crossbarMatrix(fig8Defects());
  MappingResult assignment;
  assignment.success = true;
  assignment.rowAssignment = {4, 5, 3, 1, 2, 0};
  EXPECT_TRUE(verifyMapping(fm, cm, assignment));
}

TEST(PaperExample, HybridNeedsBacktracking) {
  // In the paper's top-to-bottom greedy order, greedy-only placement
  // dead-ends (m4 fits only H2, grabbed by m1): backtracking must be
  // exercised and must succeed.
  const FunctionMatrix fm = buildFunctionMatrix(fig8Cover());
  const BitMatrix cm = crossbarMatrix(fig8Defects());
  HybridMapperOptions noBt;
  noBt.backtracking = false;
  noBt.sortByCandidates = false;
  EXPECT_FALSE(HybridMapper(noBt).map(fm, cm).success);
  HybridMapperOptions paperOrder;
  paperOrder.sortByCandidates = false;
  const MappingResult withBt = HybridMapper(paperOrder).map(fm, cm);
  EXPECT_TRUE(withBt.success);
  EXPECT_GE(withBt.backtracks, 1u);

  // Most-constrained-first ordering (the default) solves the same instance
  // without any repair: m4 is placed before m1 can steal H2.
  const MappingResult sorted = HybridMapper().map(fm, cm);
  EXPECT_TRUE(sorted.success);
  EXPECT_EQ(sorted.backtracks, 0u);
}

TEST(PaperExample, DefectOnUsedSwitchBlocksThatPlacement) {
  const FunctionMatrix fm = buildFunctionMatrix(fig8Cover());
  const BitMatrix cm = crossbarMatrix(fig8Defects());
  // m1 = x1 x2 needs columns V1, V2, O1(V7): H1 has V2 stuck-open.
  EXPECT_FALSE(rowMatches(fm.bits(), 0, cm, 0));
  // H2 is fully functional: every FM row fits it.
  for (std::size_t r = 0; r < fm.rows(); ++r) EXPECT_TRUE(rowMatches(fm.bits(), r, cm, 1));
}

}  // namespace
}  // namespace mcx
