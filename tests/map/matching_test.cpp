#include "map/matching.hpp"

#include <gtest/gtest.h>

#include "logic/sop_parser.hpp"

namespace mcx {
namespace {

TEST(RowMatching, RequiredOneNeedsFunctionalCell) {
  BitMatrix fm(1, 4), cm(2, 4, true);
  fm.set(0, 2);
  EXPECT_TRUE(rowMatches(fm, 0, cm, 0));
  cm.reset(1, 2);
  EXPECT_FALSE(rowMatches(fm, 0, cm, 1));
}

TEST(RowMatching, ZerosMatchAnything) {
  BitMatrix fm(1, 4), cm(1, 4);  // CM fully stuck-open
  EXPECT_TRUE(rowMatches(fm, 0, cm, 0));
}

TEST(MatchingMatrix, ZeroMeansCompatible) {
  BitMatrix fm(2, 3), cm(2, 3, true);
  fm.set(0, 0);
  fm.set(1, 2);
  cm.reset(0, 0);  // kills fm row 0 on cm row 0
  const CostMatrix m = buildMatchingMatrix(fm, {0, 1}, cm, {0, 1});
  EXPECT_EQ(m.at(0, 0), 1);
  EXPECT_EQ(m.at(0, 1), 0);
  EXPECT_EQ(m.at(1, 0), 0);
  EXPECT_EQ(m.at(1, 1), 0);
}

TEST(MatchingMatrix, RowSubsets) {
  BitMatrix fm(3, 2), cm(3, 2, true);
  fm.set(2, 1);
  cm.reset(0, 1);
  const CostMatrix m = buildMatchingMatrix(fm, {2}, cm, {0, 2});
  EXPECT_EQ(m.rows(), 1u);
  EXPECT_EQ(m.cols(), 2u);
  EXPECT_EQ(m.at(0, 0), 1);
  EXPECT_EQ(m.at(0, 1), 0);
}

TEST(VerifyMapping, AcceptsValidRejectsInvalid) {
  const Cover cover = parseSop("x1 + x2");
  const FunctionMatrix fm = buildFunctionMatrix(cover);
  BitMatrix cm(3, fm.cols(), true);

  MappingResult ok;
  ok.success = true;
  ok.rowAssignment = {0, 1, 2};
  EXPECT_TRUE(verifyMapping(fm, cm, ok));

  MappingResult dup = ok;
  dup.rowAssignment = {0, 0, 1};
  EXPECT_FALSE(verifyMapping(fm, cm, dup));

  MappingResult wrongSize = ok;
  wrongSize.rowAssignment = {0, 1};
  EXPECT_FALSE(verifyMapping(fm, cm, wrongSize));

  MappingResult notSuccess = ok;
  notSuccess.success = false;
  EXPECT_FALSE(verifyMapping(fm, cm, notSuccess));

  cm.reset(1, fm.colOfPosLiteral(0));  // row 1 cannot host product x1 (row 0)
  MappingResult broken = ok;
  broken.rowAssignment = {1, 0, 2};
  EXPECT_FALSE(verifyMapping(fm, cm, broken));
}

TEST(VerifyMapping, HonorsInputPermutation) {
  const Cover cover = parseSop("x1", 2);
  const FunctionMatrix fm = buildFunctionMatrix(cover);
  BitMatrix cm(2, fm.cols(), true);
  cm.reset(0, fm.colOfPosLiteral(0));  // x1's own column is dead on row 0

  MappingResult direct;
  direct.success = true;
  direct.rowAssignment = {0, 1};
  EXPECT_FALSE(verifyMapping(fm, cm, direct));

  MappingResult permuted = direct;
  permuted.inputPermutation = {1, 0};  // route x1 through pair 1
  EXPECT_TRUE(verifyMapping(fm, cm, permuted));
}

}  // namespace
}  // namespace mcx
