#include "map/matching.hpp"

#include <gtest/gtest.h>

#include "logic/sop_parser.hpp"
#include "scenario/defect_model.hpp"
#include "util/rng.hpp"

namespace mcx {
namespace {

TEST(RowMatching, RequiredOneNeedsFunctionalCell) {
  BitMatrix fm(1, 4), cm(2, 4, true);
  fm.set(0, 2);
  EXPECT_TRUE(rowMatches(fm, 0, cm, 0));
  cm.reset(1, 2);
  EXPECT_FALSE(rowMatches(fm, 0, cm, 1));
}

TEST(RowMatching, ZerosMatchAnything) {
  BitMatrix fm(1, 4), cm(1, 4);  // CM fully stuck-open
  EXPECT_TRUE(rowMatches(fm, 0, cm, 0));
}

TEST(MatchingMatrix, ZeroMeansCompatible) {
  BitMatrix fm(2, 3), cm(2, 3, true);
  fm.set(0, 0);
  fm.set(1, 2);
  cm.reset(0, 0);  // kills fm row 0 on cm row 0
  const CostMatrix m = buildMatchingMatrix(fm, {0, 1}, cm, {0, 1});
  EXPECT_EQ(m.at(0, 0), 1);
  EXPECT_EQ(m.at(0, 1), 0);
  EXPECT_EQ(m.at(1, 0), 0);
  EXPECT_EQ(m.at(1, 1), 0);
}

TEST(MatchingMatrix, RowSubsets) {
  BitMatrix fm(3, 2), cm(3, 2, true);
  fm.set(2, 1);
  cm.reset(0, 1);
  const CostMatrix m = buildMatchingMatrix(fm, {2}, cm, {0, 2});
  EXPECT_EQ(m.rows(), 1u);
  EXPECT_EQ(m.cols(), 2u);
  EXPECT_EQ(m.at(0, 0), 1);
  EXPECT_EQ(m.at(0, 1), 0);
}

TEST(VerifyMapping, AcceptsValidRejectsInvalid) {
  const Cover cover = parseSop("x1 + x2");
  const FunctionMatrix fm = buildFunctionMatrix(cover);
  BitMatrix cm(3, fm.cols(), true);

  MappingResult ok;
  ok.success = true;
  ok.rowAssignment = {0, 1, 2};
  EXPECT_TRUE(verifyMapping(fm, cm, ok));

  MappingResult dup = ok;
  dup.rowAssignment = {0, 0, 1};
  EXPECT_FALSE(verifyMapping(fm, cm, dup));

  MappingResult wrongSize = ok;
  wrongSize.rowAssignment = {0, 1};
  EXPECT_FALSE(verifyMapping(fm, cm, wrongSize));

  MappingResult notSuccess = ok;
  notSuccess.success = false;
  EXPECT_FALSE(verifyMapping(fm, cm, notSuccess));

  cm.reset(1, fm.colOfPosLiteral(0));  // row 1 cannot host product x1 (row 0)
  MappingResult broken = ok;
  broken.rowAssignment = {1, 0, 2};
  EXPECT_FALSE(verifyMapping(fm, cm, broken));
}

TEST(VerifyMapping, HonorsInputPermutation) {
  const Cover cover = parseSop("x1", 2);
  const FunctionMatrix fm = buildFunctionMatrix(cover);
  BitMatrix cm(2, fm.cols(), true);
  cm.reset(0, fm.colOfPosLiteral(0));  // x1's own column is dead on row 0

  MappingResult direct;
  direct.success = true;
  direct.rowAssignment = {0, 1};
  EXPECT_FALSE(verifyMapping(fm, cm, direct));

  MappingResult permuted = direct;
  permuted.inputPermutation = {1, 0};  // route x1 through pair 1
  EXPECT_TRUE(verifyMapping(fm, cm, permuted));
}

TEST(CandidateAdjacency, AgreesWithRowMatches) {
  Rng rng(21);
  for (int rep = 0; rep < 20; ++rep) {
    const std::size_t rows = 3 + rep % 5;
    const std::size_t cols = 70;  // multi-word rows
    BitMatrix fm(rows, cols), cm(rows + 2, cols);
    for (std::size_t r = 0; r < fm.rows(); ++r)
      for (std::size_t c = 0; c < cols; ++c) fm.set(r, c, rng.bernoulli(0.2));
    for (std::size_t r = 0; r < cm.rows(); ++r)
      for (std::size_t c = 0; c < cols; ++c) cm.set(r, c, rng.bernoulli(0.8));
    const BitMatrix adjacency = buildCandidateAdjacency(fm, cm);
    ASSERT_EQ(adjacency.rows(), fm.rows());
    ASSERT_EQ(adjacency.cols(), cm.rows());
    for (std::size_t i = 0; i < fm.rows(); ++i)
      for (std::size_t j = 0; j < cm.rows(); ++j)
        EXPECT_EQ(adjacency.test(i, j), rowMatches(fm, i, cm, j));
  }
}

TEST(MatchingMatrix, AdjacencyOverloadMatchesDirectConstruction) {
  Rng rng(5);
  BitMatrix fm(4, 9), cm(6, 9);
  for (std::size_t r = 0; r < fm.rows(); ++r)
    for (std::size_t c = 0; c < fm.cols(); ++c) fm.set(r, c, rng.bernoulli(0.3));
  for (std::size_t r = 0; r < cm.rows(); ++r)
    for (std::size_t c = 0; c < cm.cols(); ++c) cm.set(r, c, rng.bernoulli(0.7));
  std::vector<std::size_t> fmRows{0, 1, 2, 3}, cmRows{0, 1, 2, 3, 4, 5};
  const CostMatrix direct = buildMatchingMatrix(fm, fmRows, cm, cmRows);
  const CostMatrix viaAdj =
      buildMatchingMatrix(buildCandidateAdjacency(fm, fmRows, cm, cmRows));
  ASSERT_EQ(direct.rows(), viaAdj.rows());
  ASSERT_EQ(direct.cols(), viaAdj.cols());
  for (std::size_t i = 0; i < direct.rows(); ++i)
    for (std::size_t j = 0; j < direct.cols(); ++j)
      EXPECT_EQ(direct.at(i, j), viaAdj.at(i, j));
}

TEST(FeasibleAssignment, HopcroftKarpAgreesWithMunkresOnRandomMatrices) {
  // Property: on a random 0/1 adjacency, the Hopcroft-Karp fast path reports
  // feasible exactly when Munkres finds a zero-cost assignment.
  Rng rng(31337);
  for (int rep = 0; rep < 300; ++rep) {
    const std::size_t n = 1 + static_cast<std::size_t>(rng.uniformInt(0, 7));
    const std::size_t m = n + static_cast<std::size_t>(rng.uniformInt(0, 4));
    const double density = 0.1 + 0.8 * rng.uniform();
    BitMatrix adjacency(n, m);
    for (std::size_t i = 0; i < n; ++i)
      for (std::size_t j = 0; j < m; ++j)
        if (rng.bernoulli(density)) adjacency.set(i, j);

    const FeasibleAssignment fast = solveFeasibleAssignment(adjacency);
    const AssignmentResult exact = munkresSolve(buildMatchingMatrix(adjacency));
    EXPECT_EQ(fast.success, exact.cost == 0) << "rep=" << rep;

    if (fast.success) {
      // The returned assignment must be a valid system of distinct
      // representatives over set adjacency bits.
      ASSERT_EQ(fast.assignment.size(), n);
      std::vector<bool> used(m, false);
      for (std::size_t i = 0; i < n; ++i) {
        ASSERT_LT(fast.assignment[i], m);
        EXPECT_TRUE(adjacency.test(i, fast.assignment[i])) << "rep=" << rep;
        EXPECT_FALSE(used[fast.assignment[i]]) << "rep=" << rep;
        used[fast.assignment[i]] = true;
      }
    }
  }
}

TEST(CandidateAdjacency, ZeroColumnRowsFitEverything) {
  // Empty rows are subsets of anything: both overloads must agree.
  const BitMatrix fm(3, 0), cm(4, 0);
  const BitMatrix full = buildCandidateAdjacency(fm, cm);
  EXPECT_EQ(full.count(), 3u * 4u);
  const BitMatrix subset = buildCandidateAdjacency(fm, {0, 2}, cm, {1, 3});
  EXPECT_EQ(subset.count(), 2u * 2u);
}

TEST(FeasibleAssignment, EmptyRowFailsBeforeSolving) {
  BitMatrix adjacency(3, 4, true);
  adjacency.setRow(1, false);
  EXPECT_FALSE(solveFeasibleAssignment(adjacency).success);
}

TEST(FeasibleAssignment, MoreRowsThanColumnsIsInfeasible) {
  const BitMatrix adjacency(4, 3, true);
  EXPECT_FALSE(solveFeasibleAssignment(adjacency).success);
}

// --- MappingContext: incremental adjacency ---------------------------------

TEST(MappingContext, IncrementalAdjacencyBitIdenticalToFullRebuild) {
  // The context's defect-driven rebuild must agree with the full
  // word-parallel fit-test build on every sample — including stuck-closed
  // poisoning, empty FM rows, and dimensions straddling word boundaries.
  Rng rng(53);
  for (int rep = 0; rep < 400; ++rep) {
    const std::size_t fmRows = 1 + rng.uniformInt(0, 40);
    const std::size_t cols = 1 + rng.uniformInt(0, 130);
    const std::size_t cmRows = fmRows + rng.uniformInt(0, 8);
    BitMatrix fm(fmRows, cols);
    for (std::size_t r = 0; r < fmRows; ++r)
      for (std::size_t c = 0; c < cols; ++c)
        if (rng.bernoulli(0.1)) fm.set(r, c);  // leaves some rows all-zero
    const double open = rng.uniform() * 0.3;
    const double closed = rng.bernoulli(0.5) ? rng.uniform() * 0.05 : 0.0;
    const IidBernoulli model(open, closed);
    DefectMap defects;
    DirtyRows dirty;
    model.generateTracked(cmRows, cols, rng, defects, dirty);
    BitMatrix cm;
    crossbarMatrixInto(defects, cm);

    const BitMatrix full = buildCandidateAdjacency(fm, cm);
    MappingContext ctx;
    ctx.setSample(&defects, &dirty);
    const BitMatrix& incremental = ctx.candidateAdjacency(fm, cm);
    ASSERT_EQ(full, incremental) << "rep=" << rep << " fm=" << fmRows << "x" << cols
                                 << " closed=" << defects.stuckClosedCount();
  }
}

TEST(MappingContext, UnregisteredSampleFallsBackToFullRebuild) {
  BitMatrix fm(3, 10), cm(4, 10, true);
  fm.set(0, 7);
  cm.reset(2, 7);
  MappingContext ctx;  // no setSample
  const BitMatrix& adjacency = ctx.candidateAdjacency(fm, cm);
  EXPECT_EQ(adjacency, buildCandidateAdjacency(fm, cm));
}

TEST(MappingContext, MarkAllDirtyRowsForceFullRebuild) {
  Rng rng(57);
  const IidBernoulli model(0.15, 0.0);
  DefectMap defects = model.sample(6, 20, rng);
  BitMatrix cm;
  crossbarMatrixInto(defects, cm);
  BitMatrix fm(5, 20);
  fm.set(1, 3);
  fm.set(4, 17);
  DirtyRows dirty;
  dirty.markAll();
  MappingContext ctx;
  ctx.setSample(&defects, &dirty);
  EXPECT_EQ(ctx.candidateAdjacency(fm, cm), buildCandidateAdjacency(fm, cm));
}

TEST(MappingContext, RebindsWhenFmContentChangesAtTheSameAddress) {
  // The per-FM column index is keyed on (address, dims, content hash): the
  // worst case for an address-only key is the same object mutated in place
  // (or a new FM reallocated at the old one's address), where a stale index
  // would be served silently.
  Rng rng(61);
  const IidBernoulli model(0.2, 0.02);
  DefectMap defects;
  DirtyRows dirty;
  model.generateTracked(8, 40, rng, defects, dirty);
  BitMatrix cm;
  crossbarMatrixInto(defects, cm);
  BitMatrix fm(6, 40);
  for (std::size_t c = 0; c < 40; c += 3) fm.set(1, c);
  MappingContext ctx;
  ctx.setSample(&defects, &dirty);
  EXPECT_EQ(ctx.candidateAdjacency(fm, cm), buildCandidateAdjacency(fm, cm));
  // Same address, same dims, different bits: the context must notice.
  for (std::size_t c = 0; c < 40; c += 2) fm.set(4, c);
  fm.reset(1, 0);
  EXPECT_EQ(ctx.candidateAdjacency(fm, cm), buildCandidateAdjacency(fm, cm));
}

}  // namespace
}  // namespace mcx
