#include "xbar/function_matrix.hpp"

#include <gtest/gtest.h>

#include "logic/sop_parser.hpp"
#include "util/error.hpp"

namespace mcx {
namespace {

Cover fig8Cover() {
  // O1 = x1 x2 + x2 x3 ; O2 = x1 x3 + x2 x3 (Fig. 8(a) of the paper).
  Cover c(3, 2);
  c.add(makeCube("11-", "10"));
  c.add(makeCube("-11", "10"));
  c.add(makeCube("1-1", "01"));
  c.add(makeCube("-11", "01"));
  return c;
}

TEST(FunctionMatrix, Fig8Shape) {
  const FunctionMatrix fm = buildFunctionMatrix(fig8Cover());
  EXPECT_EQ(fm.rows(), 6u);   // 4 products + 2 outputs
  EXPECT_EQ(fm.cols(), 10u);  // 2*3 + 2*2
  EXPECT_EQ(fm.numProductRows(), 4u);
  EXPECT_EQ(fm.numOutputRows(), 2u);
  EXPECT_EQ(fm.dims().area(), 60u);
}

TEST(FunctionMatrix, Fig8ProductRows) {
  const FunctionMatrix fm = buildFunctionMatrix(fig8Cover());
  // m1 = x1 x2 -> columns x1, x2, O1.
  EXPECT_TRUE(fm.bits().test(0, fm.colOfPosLiteral(0)));
  EXPECT_TRUE(fm.bits().test(0, fm.colOfPosLiteral(1)));
  EXPECT_TRUE(fm.bits().test(0, fm.colOfOutput(0)));
  EXPECT_FALSE(fm.bits().test(0, fm.colOfOutput(1)));
  EXPECT_EQ(fm.bits().rowCount(0), 3u);
  // m3 = x1 x3 -> columns x1, x3, O2.
  EXPECT_TRUE(fm.bits().test(2, fm.colOfPosLiteral(0)));
  EXPECT_TRUE(fm.bits().test(2, fm.colOfPosLiteral(2)));
  EXPECT_TRUE(fm.bits().test(2, fm.colOfOutput(1)));
}

TEST(FunctionMatrix, Fig8OutputRows) {
  const FunctionMatrix fm = buildFunctionMatrix(fig8Cover());
  for (std::size_t o = 0; o < 2; ++o) {
    const std::size_t row = fm.rowOfOutput(o);
    EXPECT_TRUE(fm.bits().test(row, fm.colOfOutput(o)));
    EXPECT_TRUE(fm.bits().test(row, fm.colOfOutputBar(o)));
    EXPECT_EQ(fm.bits().rowCount(row), 2u);
  }
}

TEST(FunctionMatrix, NegativeLiteralsUseComplementColumns) {
  const Cover c = parseSop("!x1 x2");
  const FunctionMatrix fm = buildFunctionMatrix(c);
  EXPECT_TRUE(fm.bits().test(0, fm.colOfNegLiteral(0)));
  EXPECT_FALSE(fm.bits().test(0, fm.colOfPosLiteral(0)));
  EXPECT_TRUE(fm.bits().test(0, fm.colOfPosLiteral(1)));
}

TEST(FunctionMatrix, SharedProductAssertsAllItsOutputColumns) {
  Cover c(2, 3);
  c.add(makeCube("11", "101"));
  const FunctionMatrix fm = buildFunctionMatrix(c);
  EXPECT_TRUE(fm.bits().test(0, fm.colOfOutput(0)));
  EXPECT_FALSE(fm.bits().test(0, fm.colOfOutput(1)));
  EXPECT_TRUE(fm.bits().test(0, fm.colOfOutput(2)));
}

TEST(FunctionMatrix, Fig3ExampleCounts) {
  const Cover c = parseSop("x1 + x2 + x3 + x4 + x5 x6 x7 x8");
  const FunctionMatrix fm = buildFunctionMatrix(c);
  EXPECT_EQ(fm.rows(), 6u);
  EXPECT_EQ(fm.cols(), 18u);
  // Switch count: 4 single-literal products (2 switches each: literal + O) +
  // one 4-literal product (5) + output row (2) = 15.
  EXPECT_EQ(fm.usedSwitches(), 15u);
  EXPECT_NEAR(fm.inclusionRatio(), 15.0 / 108.0, 1e-12);
}

TEST(FunctionMatrix, InputPermutationMovesLiteralColumns) {
  const Cover c = parseSop("x1 !x2");
  const FunctionMatrix fm = buildFunctionMatrix(c);
  const FunctionMatrix pm = fm.withInputPermutation({1, 0});
  EXPECT_TRUE(pm.bits().test(0, pm.colOfPosLiteral(1)));
  EXPECT_TRUE(pm.bits().test(0, pm.colOfNegLiteral(0)));
  EXPECT_FALSE(pm.bits().test(0, pm.colOfPosLiteral(0)));
  // Output columns unchanged.
  EXPECT_TRUE(pm.bits().test(0, pm.colOfOutput(0)));
  EXPECT_EQ(pm.usedSwitches(), fm.usedSwitches());
}

TEST(FunctionMatrix, InputPermutationValidation) {
  const Cover c = parseSop("x1 x2");
  const FunctionMatrix fm = buildFunctionMatrix(c);
  EXPECT_THROW(fm.withInputPermutation({0}), InvalidArgument);
}

TEST(FunctionMatrix, ColumnAccessorsValidateRange) {
  const FunctionMatrix fm = buildFunctionMatrix(fig8Cover());
  EXPECT_THROW(fm.colOfPosLiteral(3), InvalidArgument);
  EXPECT_THROW(fm.colOfOutput(2), InvalidArgument);
  EXPECT_THROW(fm.colOfConnection(0), InvalidArgument);  // two-level: none
}

TEST(FunctionMatrix, RejectsEmptyCover) {
  Cover c(2, 1);
  EXPECT_THROW(buildFunctionMatrix(c), InvalidArgument);
}

}  // namespace
}  // namespace mcx
