#include "xbar/layout.hpp"

#include <gtest/gtest.h>

#include "logic/espresso.hpp"
#include "logic/sop_parser.hpp"

namespace mcx {
namespace {

TEST(TwoLevelLayout, BuildKeepsCoverAndFm) {
  const Cover c = parseSop("x1 x2 + !x3");
  const TwoLevelLayout layout = buildTwoLevelLayout(c);
  EXPECT_EQ(layout.cover, c);
  EXPECT_EQ(layout.fm.rows(), 3u);
  EXPECT_EQ(layout.dims().area(), twoLevelDims(c).area());
}

TEST(TwoLevelLayout, AsciiDiagramMentionsGeometry) {
  const Cover c = parseSop("x1 + x2");
  const std::string s = buildTwoLevelLayout(c).toAsciiDiagram();
  EXPECT_NE(s.find("x1"), std::string::npos);
  EXPECT_NE(s.find("!O1"), std::string::npos);
  EXPECT_NE(s.find("area=18"), std::string::npos);
  EXPECT_NE(s.find('#'), std::string::npos);
}

TEST(ChooseDual, PicksSmallerImplementation) {
  // f = x1 + x2 + x3: complement !x1 !x2 !x3 has 1 product vs 3.
  const Cover f = parseSop("x1 + x2 + x3");
  const Cover fbar = espressoMinimize(complementCover(f));
  const DualChoice choice = chooseDual(f, fbar);
  EXPECT_TRUE(choice.usedComplement);
  EXPECT_EQ(choice.areaOriginal, twoLevelDims(f).area());
  EXPECT_EQ(choice.areaComplement, twoLevelDims(fbar).area());
  EXPECT_LT(choice.areaComplement, choice.areaOriginal);
  EXPECT_EQ(choice.layout.cover.size(), fbar.size());
}

TEST(ChooseDual, KeepsOriginalWhenSmaller) {
  // f = x1 x2 x3 (1 product); complement has 3 products.
  const Cover f = parseSop("x1 x2 x3");
  const Cover fbar = espressoMinimize(complementCover(f));
  const DualChoice choice = chooseDual(f, fbar);
  EXPECT_FALSE(choice.usedComplement);
}

}  // namespace
}  // namespace mcx
