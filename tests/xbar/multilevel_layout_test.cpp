#include "xbar/multilevel_layout.hpp"

#include <gtest/gtest.h>

#include "logic/sop_parser.hpp"
#include "netlist/nand_mapper.hpp"
#include "util/error.hpp"

namespace mcx {
namespace {

MultiLevelLayout fig5Layout() {
  const Cover c = parseSop("x1 + x2 + x3 + x4 + x5 x6 x7 x8");
  return buildMultiLevelLayout(mapToNand(c));
}

TEST(MultiLevelLayout, Fig5Geometry) {
  const MultiLevelLayout layout = fig5Layout();
  EXPECT_EQ(layout.fm.rows(), 3u);
  EXPECT_EQ(layout.fm.cols(), 19u);
  EXPECT_EQ(layout.fm.numConnectionCols(), 1u);
  EXPECT_EQ(layout.dims().area(), 57u);
}

TEST(MultiLevelLayout, ConnectionColumnWiring) {
  const MultiLevelLayout layout = fig5Layout();
  // Gate 0 (NAND x5..x8) owns connection column 0 and writes into it.
  ASSERT_EQ(layout.connOfGate.size(), 2u);
  EXPECT_EQ(layout.connOfGate[0], 0u);
  EXPECT_EQ(layout.connOfGate[1], MultiLevelLayout::kNoConnection);
  const std::size_t conn = layout.fm.colOfConnection(0);
  EXPECT_TRUE(layout.fm.bits().test(0, conn));  // writer
  EXPECT_TRUE(layout.fm.bits().test(1, conn));  // reader (gate 1)
}

TEST(MultiLevelLayout, GateRowsCarryLiteralSwitches) {
  const MultiLevelLayout layout = fig5Layout();
  const FunctionMatrix& fm = layout.fm;
  // Gate 0 reads x5..x8 on positive columns.
  for (std::size_t v = 4; v < 8; ++v) EXPECT_TRUE(fm.bits().test(0, fm.colOfPosLiteral(v)));
  // Gate 1 reads !x1..!x4.
  for (std::size_t v = 0; v < 4; ++v) EXPECT_TRUE(fm.bits().test(1, fm.colOfNegLiteral(v)));
}

TEST(MultiLevelLayout, OutputWiring) {
  const MultiLevelLayout layout = fig5Layout();
  const FunctionMatrix& fm = layout.fm;
  // The output gate (row 1) writes into O1; the latch row has O1 and !O1.
  EXPECT_TRUE(fm.bits().test(1, fm.colOfOutput(0)));
  EXPECT_TRUE(fm.bits().test(fm.rowOfOutput(0), fm.colOfOutput(0)));
  EXPECT_TRUE(fm.bits().test(fm.rowOfOutput(0), fm.colOfOutputBar(0)));
}

TEST(MultiLevelLayout, MultiOutputNetworks) {
  Cover c(4, 2);
  c.add(makeCube("11--", "10"));
  c.add(makeCube("1--1", "10"));
  c.add(makeCube("--11", "01"));
  const MultiLevelLayout layout = buildMultiLevelLayout(mapToNand(c));
  EXPECT_EQ(layout.fm.nout(), 2u);
  EXPECT_EQ(layout.fm.rows(), layout.network.gateCount() + 2);
  EXPECT_EQ(layout.dims(), multiLevelDims(layout.network));
}

TEST(MultiLevelLayout, RejectsEmptyNetwork) {
  NandNetwork net(2);
  EXPECT_THROW(buildMultiLevelLayout(net), InvalidArgument);
}

TEST(MultiLevelLayout, DiagramMentionsGeometry) {
  const std::string s = fig5Layout().toAsciiDiagram();
  EXPECT_NE(s.find("area=57"), std::string::npos);
  EXPECT_NE(s.find("gates=2"), std::string::npos);
}

}  // namespace
}  // namespace mcx
