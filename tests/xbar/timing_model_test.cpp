#include "xbar/timing_model.hpp"

#include <gtest/gtest.h>

#include "logic/sop_parser.hpp"
#include "netlist/nand_mapper.hpp"
#include "util/error.hpp"

namespace mcx {
namespace {

TEST(TimingModel, TwoLevelIsConstantSevenSteps) {
  EXPECT_EQ(twoLevelCycles(), 7u);
  const Cover c = parseSop("x1 x2 + x3 + !x4");
  const AreaDelay ad = twoLevelAreaDelay(c);
  EXPECT_EQ(ad.cycles, 7u);
  EXPECT_EQ(ad.area, twoLevelDims(c).area());
  EXPECT_EQ(ad.product(), ad.area * 7u);
}

TEST(TimingModel, MultiLevelScalesWithGates) {
  const Cover c = parseSop("x1 + x2 + x3 + x4 + x5 x6 x7 x8");
  const NandNetwork net = mapToNand(c);
  ASSERT_EQ(net.gateCount(), 2u);
  EXPECT_EQ(multiLevelCycles(net), 8u);  // 2*2 + 4
  const AreaDelay ad = multiLevelAreaDelay(net);
  EXPECT_EQ(ad.area, 57u);
  EXPECT_EQ(ad.cycles, 8u);
}

TEST(TimingModel, Fig5TradeoffAreaDownCyclesUp) {
  // The paper's multi-level example halves the area but needs more steps.
  const Cover c = parseSop("x1 + x2 + x3 + x4 + x5 x6 x7 x8");
  const AreaDelay two = twoLevelAreaDelay(c);
  const AreaDelay multi = multiLevelAreaDelay(mapToNand(c));
  EXPECT_LT(multi.area, two.area);
  EXPECT_GT(multi.cycles, two.cycles);
}

TEST(TimingModel, EmptyNetworkRejected) {
  NandNetwork net(2);
  EXPECT_THROW(multiLevelCycles(net), InvalidArgument);
}

}  // namespace
}  // namespace mcx
