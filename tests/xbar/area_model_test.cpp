#include "xbar/area_model.hpp"

#include <gtest/gtest.h>

#include "logic/sop_parser.hpp"
#include "netlist/nand_mapper.hpp"
#include "util/error.hpp"

namespace mcx {
namespace {

TEST(AreaModel, TwoLevelFormula) {
  EXPECT_EQ(twoLevelDims(8, 1, 5), (CrossbarDims{6, 18}));
  EXPECT_EQ(twoLevelDims(8, 1, 5).area(), 108u);
}

// Every (I, O, P) row of the paper's Table II must reproduce the printed
// area cost with the (P+O)(2I+2O) model.
struct TableIIRow {
  const char* name;
  std::size_t i, o, p, area;
};

class TableIIAreas : public ::testing::TestWithParam<TableIIRow> {};

TEST_P(TableIIAreas, FormulaMatchesPaper) {
  const TableIIRow& row = GetParam();
  EXPECT_EQ(twoLevelDims(row.i, row.o, row.p).area(), row.area) << row.name;
}

INSTANTIATE_TEST_SUITE_P(
    Paper, TableIIAreas,
    ::testing::Values(
        TableIIRow{"rd53", 5, 3, 31, 544}, TableIIRow{"squar5", 5, 8, 25, 858},
        TableIIRow{"bw", 5, 28, 22, 3300},  // Table II prints O=8/330: typos (see DESIGN.md)
        TableIIRow{"inc", 7, 9, 30, 1248}, TableIIRow{"misex1", 8, 7, 12, 570},
        TableIIRow{"sqrt8", 8, 4, 29, 792},  // Table II prints I=7; areas imply I=8
        TableIIRow{"sao2", 10, 4, 58, 1736}, TableIIRow{"rd73", 7, 3, 127, 2600},
        TableIIRow{"clip", 9, 5, 120, 3500}, TableIIRow{"rd84", 8, 4, 255, 6216},
        TableIIRow{"ex1010", 10, 10, 284, 11760}, TableIIRow{"table3", 14, 14, 175, 10584},
        TableIIRow{"exp5", 8, 63, 74, 19454}, TableIIRow{"apex4", 9, 19, 436, 25480},
        TableIIRow{"alu4", 14, 8, 575, 25652}),
    [](const ::testing::TestParamInfo<TableIIRow>& info) { return info.param.name; });

TEST(AreaModel, TwoLevelFromCover) {
  const Cover c = parseSop("x1 + x2 + x3 + x4 + x5 x6 x7 x8");
  EXPECT_EQ(twoLevelDims(c).area(), 108u);
}

TEST(AreaModel, MultiLevelFig5Example) {
  // Paper Fig. 5: 3 horizontal x 19 vertical lines (the text's "59" is a
  // typo for 3*19 = 57).
  const Cover c = parseSop("x1 + x2 + x3 + x4 + x5 x6 x7 x8");
  const NandNetwork net = mapToNand(c);
  const MultiLevelStats stats = multiLevelStats(net);
  EXPECT_EQ(stats.gates, 2u);
  EXPECT_EQ(stats.connections, 1u);
  EXPECT_EQ(stats.outputs, 1u);
  const CrossbarDims dims = multiLevelDims(net);
  EXPECT_EQ(dims, (CrossbarDims{3, 19}));
  EXPECT_EQ(dims.area(), 57u);
}

TEST(AreaModel, MultiLevelBeatsTwoLevelOnFig5) {
  const Cover c = parseSop("x1 + x2 + x3 + x4 + x5 x6 x7 x8");
  EXPECT_LT(multiLevelDims(mapToNand(c)).area(), twoLevelDims(c).area());
}

TEST(AreaModel, InclusionRatioFig3) {
  // Paper Section II: the Fig. 3 example uses 31 switches; with the
  // table-consistent 6x18 crossbar IR = 31/108.
  const double ir = inclusionRatio(31, {6, 18});
  EXPECT_NEAR(ir, 31.0 / 108.0, 1e-12);
}

TEST(AreaModel, RejectsEmptyShapes) {
  EXPECT_THROW(twoLevelDims(0, 1, 1), InvalidArgument);
  EXPECT_THROW(twoLevelDims(1, 0, 1), InvalidArgument);
  EXPECT_THROW(twoLevelDims(1, 1, 0), InvalidArgument);
  EXPECT_THROW(inclusionRatio(1, {0, 0}), InvalidArgument);
}

}  // namespace
}  // namespace mcx
