#include "xbar/defects.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace mcx {
namespace {

TEST(DefectMap, StartsClean) {
  DefectMap map(4, 6);
  EXPECT_EQ(map.stuckOpenCount(), 0u);
  EXPECT_EQ(map.stuckClosedCount(), 0u);
  EXPECT_EQ(map.type(0, 0), DefectType::None);
}

TEST(DefectMap, SetAndQueryTypes) {
  DefectMap map(3, 3);
  map.setType(0, 1, DefectType::StuckOpen);
  map.setType(2, 2, DefectType::StuckClosed);
  EXPECT_EQ(map.type(0, 1), DefectType::StuckOpen);
  EXPECT_EQ(map.type(2, 2), DefectType::StuckClosed);
  EXPECT_TRUE(map.isStuckOpen(0, 1));
  EXPECT_TRUE(map.isStuckClosed(2, 2));
  map.setType(0, 1, DefectType::None);
  EXPECT_EQ(map.type(0, 1), DefectType::None);
}

TEST(DefectMap, PoisoningQueriesFollowStuckClosed) {
  DefectMap map(3, 4);
  map.setType(1, 2, DefectType::StuckClosed);
  EXPECT_TRUE(map.rowPoisoned(1));
  EXPECT_FALSE(map.rowPoisoned(0));
  EXPECT_TRUE(map.colPoisoned(2));
  EXPECT_FALSE(map.colPoisoned(3));
  // Stuck-open does not poison lines.
  map.setType(0, 0, DefectType::StuckOpen);
  EXPECT_FALSE(map.rowPoisoned(0));
  EXPECT_FALSE(map.colPoisoned(0));
}

TEST(DefectMap, SampleIsDeterministicAndCalibrated) {
  Rng a(12), b(12);
  const DefectMap m1 = DefectMap::sample(100, 100, 0.1, 0.02, a);
  const DefectMap m2 = DefectMap::sample(100, 100, 0.1, 0.02, b);
  EXPECT_EQ(m1.stuckOpenCount(), m2.stuckOpenCount());
  EXPECT_EQ(m1.stuckClosedCount(), m2.stuckClosedCount());
  EXPECT_NEAR(static_cast<double>(m1.stuckOpenCount()) / 10000.0, 0.1, 0.02);
  EXPECT_NEAR(static_cast<double>(m1.stuckClosedCount()) / 10000.0, 0.02, 0.01);
}

TEST(DefectMap, SampleRejectsBadRates) {
  Rng rng(1);
  EXPECT_THROW(DefectMap::sample(2, 2, -0.1, 0.0, rng), InvalidArgument);
  EXPECT_THROW(DefectMap::sample(2, 2, 0.7, 0.5, rng), InvalidArgument);
}

TEST(CrossbarMatrix, CleanMapIsAllFunctional) {
  const DefectMap map(3, 5);
  const BitMatrix cm = crossbarMatrix(map);
  EXPECT_EQ(cm.count(), 15u);
}

TEST(CrossbarMatrix, StuckOpenClearsSingleCell) {
  DefectMap map(3, 3);
  map.setType(1, 1, DefectType::StuckOpen);
  const BitMatrix cm = crossbarMatrix(map);
  EXPECT_FALSE(cm.test(1, 1));
  EXPECT_EQ(cm.count(), 8u);
}

TEST(CrossbarMatrix, StuckClosedClearsRowAndColumn) {
  DefectMap map(4, 4);
  map.setType(1, 2, DefectType::StuckClosed);
  const BitMatrix cm = crossbarMatrix(map);
  for (std::size_t c = 0; c < 4; ++c) EXPECT_FALSE(cm.test(1, c));
  for (std::size_t r = 0; r < 4; ++r) EXPECT_FALSE(cm.test(r, 2));
  EXPECT_EQ(cm.count(), 9u);  // 16 - 4 - 4 + 1
}

TEST(CrossbarMatrix, MatchesFig8Pattern) {
  // Build the Fig. 8(b) CM: 6x10 with specific stuck-open zeros.
  DefectMap map(6, 10);
  const std::pair<int, int> zeros[] = {{0, 1}, {0, 3}, {0, 8}, {2, 0}, {2, 1},
                                       {3, 1}, {3, 4}, {5, 3}, {5, 7}};
  for (const auto& [r, c] : zeros) map.setType(r, c, DefectType::StuckOpen);
  const BitMatrix cm = crossbarMatrix(map);
  EXPECT_EQ(cm.count(), 60u - 9u);
  EXPECT_FALSE(cm.test(0, 1));
  EXPECT_TRUE(cm.test(1, 1));
}

}  // namespace
}  // namespace mcx
