#include "assign/munkres.hpp"

#include <gtest/gtest.h>

#include "assign/brute_force.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace mcx {
namespace {

TEST(Munkres, TrivialSingleCell) {
  CostMatrix m(1, 1);
  m.at(0, 0) = 7;
  const auto r = munkresSolve(m);
  EXPECT_EQ(r.cost, 7);
  EXPECT_EQ(r.assignment, (std::vector<std::size_t>{0}));
}

TEST(Munkres, ClassicExample) {
  // Well-known 3x3 instance with optimum 5 (1+2+2? -> verify via brute force).
  CostMatrix m(3, 3);
  const int costs[3][3] = {{1, 2, 3}, {2, 4, 6}, {3, 6, 9}};
  for (std::size_t r = 0; r < 3; ++r)
    for (std::size_t c = 0; c < 3; ++c) m.at(r, c) = costs[r][c];
  const auto exact = bruteForceAssign(m);
  const auto got = munkresSolve(m);
  EXPECT_EQ(got.cost, exact.cost);
}

TEST(Munkres, ZeroCostFeasibilityMatrix) {
  // 0/1 matching matrix in the paper's style: a perfect zero assignment
  // exists only along a specific permutation.
  CostMatrix m(3, 3, 1);
  m.at(0, 2) = 0;
  m.at(1, 0) = 0;
  m.at(2, 1) = 0;
  const auto r = munkresSolve(m);
  EXPECT_EQ(r.cost, 0);
  EXPECT_EQ(r.assignment, (std::vector<std::size_t>{2, 0, 1}));
}

TEST(Munkres, InfeasibleZeroCost) {
  // Two rows compete for the single zero column.
  CostMatrix m(2, 2, 1);
  m.at(0, 0) = 0;
  m.at(1, 0) = 0;
  const auto r = munkresSolve(m);
  EXPECT_EQ(r.cost, 1);
}

TEST(Munkres, RectangularLeavesColumnsFree) {
  CostMatrix m(2, 4, 5);
  m.at(0, 3) = 0;
  m.at(1, 1) = 0;
  const auto r = munkresSolve(m);
  EXPECT_EQ(r.cost, 0);
  EXPECT_EQ(r.assignment[0], 3u);
  EXPECT_EQ(r.assignment[1], 1u);
}

TEST(Munkres, RequiresRowsLeqCols) {
  CostMatrix m(3, 2);
  EXPECT_THROW(munkresSolve(m), InvalidArgument);
}

TEST(Munkres, MatchesBruteForceOnRandomSquare) {
  Rng rng(1);
  for (int rep = 0; rep < 100; ++rep) {
    const std::size_t n = 2 + static_cast<std::size_t>(rng.uniformInt(0, 4));
    CostMatrix m(n, n);
    for (std::size_t r = 0; r < n; ++r)
      for (std::size_t c = 0; c < n; ++c)
        m.at(r, c) = static_cast<std::int64_t>(rng.uniformInt(0, 20));
    const auto exact = bruteForceAssign(m);
    const auto got = munkresSolve(m);
    EXPECT_EQ(got.cost, exact.cost) << "rep=" << rep;
    // Assignment must be a valid injection with the reported cost.
    std::vector<bool> used(n, false);
    std::int64_t total = 0;
    for (std::size_t r = 0; r < n; ++r) {
      EXPECT_FALSE(used[got.assignment[r]]);
      used[got.assignment[r]] = true;
      total += m.at(r, got.assignment[r]);
    }
    EXPECT_EQ(total, got.cost);
  }
}

TEST(Munkres, MatchesBruteForceOnRandomRectangular) {
  Rng rng(2);
  for (int rep = 0; rep < 60; ++rep) {
    const std::size_t n = 2 + static_cast<std::size_t>(rng.uniformInt(0, 3));
    const std::size_t m_ = n + static_cast<std::size_t>(rng.uniformInt(0, 3));
    CostMatrix m(n, m_);
    for (std::size_t r = 0; r < n; ++r)
      for (std::size_t c = 0; c < m_; ++c)
        m.at(r, c) = static_cast<std::int64_t>(rng.uniformInt(0, 9));
    const auto exact = bruteForceAssign(m);
    const auto got = munkresSolve(m);
    EXPECT_EQ(got.cost, exact.cost) << "rep=" << rep;
  }
}

TEST(Munkres, LargeZeroOneFeasibility) {
  // Random sparse feasibility instances: Munkres finds zero cost iff a
  // perfect matching exists (checked by brute force on small instances).
  Rng rng(3);
  for (int rep = 0; rep < 60; ++rep) {
    const std::size_t n = 2 + static_cast<std::size_t>(rng.uniformInt(0, 4));
    CostMatrix m(n, n, 1);
    for (std::size_t r = 0; r < n; ++r)
      for (std::size_t c = 0; c < n; ++c)
        if (rng.bernoulli(0.4)) m.at(r, c) = 0;
    const auto exact = bruteForceAssign(m);
    const auto got = munkresSolve(m);
    EXPECT_EQ(got.cost == 0, exact.cost == 0) << "rep=" << rep;
  }
}

}  // namespace
}  // namespace mcx
