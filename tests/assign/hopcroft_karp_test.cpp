#include "assign/hopcroft_karp.hpp"

#include <gtest/gtest.h>

#include "assign/munkres.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace mcx {
namespace {

TEST(HopcroftKarp, EmptyGraph) {
  const BipartiteGraph g(3, 3);
  const MatchingResult r = hopcroftKarp(g);
  EXPECT_EQ(r.size, 0u);
  EXPECT_FALSE(r.perfectForLeft(3));
}

TEST(HopcroftKarp, PerfectMatchingOnPermutation) {
  BipartiteGraph g(4, 4);
  g.addEdge(0, 2);
  g.addEdge(1, 0);
  g.addEdge(2, 3);
  g.addEdge(3, 1);
  const MatchingResult r = hopcroftKarp(g);
  EXPECT_EQ(r.size, 4u);
  EXPECT_TRUE(r.perfectForLeft(4));
  EXPECT_EQ(r.matchOfLeft, (std::vector<std::size_t>{2, 0, 3, 1}));
}

TEST(HopcroftKarp, AugmentingPathNeeded) {
  // 0-{0,1}, 1-{0}: greedy 0->0 must be undone.
  BipartiteGraph g(2, 2);
  g.addEdge(0, 0);
  g.addEdge(0, 1);
  g.addEdge(1, 0);
  const MatchingResult r = hopcroftKarp(g);
  EXPECT_EQ(r.size, 2u);
  EXPECT_EQ(r.matchOfLeft[0], 1u);
  EXPECT_EQ(r.matchOfLeft[1], 0u);
}

TEST(HopcroftKarp, DetectsHallViolation) {
  // Three left vertices share two right neighbors.
  BipartiteGraph g(3, 3);
  for (std::size_t l = 0; l < 3; ++l) {
    g.addEdge(l, 0);
    g.addEdge(l, 1);
  }
  const MatchingResult r = hopcroftKarp(g);
  EXPECT_EQ(r.size, 2u);
}

TEST(HopcroftKarp, RectangularRightSurplus) {
  BipartiteGraph g(2, 5);
  g.addEdge(0, 4);
  g.addEdge(1, 4);
  g.addEdge(1, 2);
  const MatchingResult r = hopcroftKarp(g);
  EXPECT_EQ(r.size, 2u);
  EXPECT_TRUE(r.perfectForLeft(2));
}

TEST(HopcroftKarp, EdgeValidation) {
  BipartiteGraph g(2, 2);
  EXPECT_THROW(g.addEdge(2, 0), InvalidArgument);
  EXPECT_THROW(g.addEdge(0, 2), InvalidArgument);
}

TEST(HopcroftKarp, AgreesWithMunkresFeasibilityOnRandom) {
  Rng rng(77);
  for (int rep = 0; rep < 200; ++rep) {
    const std::size_t n = 2 + static_cast<std::size_t>(rng.uniformInt(0, 8));
    BipartiteGraph g(n, n);
    CostMatrix cost(n, n, 1);
    for (std::size_t l = 0; l < n; ++l)
      for (std::size_t r = 0; r < n; ++r)
        if (rng.bernoulli(0.35)) {
          g.addEdge(l, r);
          cost.at(l, r) = 0;
        }
    const bool hkPerfect = hopcroftKarp(g).perfectForLeft(n);
    const bool munkresPerfect = munkresSolve(cost).cost == 0;
    EXPECT_EQ(hkPerfect, munkresPerfect) << "rep=" << rep;
  }
}

TEST(HopcroftKarp, WarmStartMatchesColdStartSize) {
  // The greedy maximal seed can change WHICH maximum matching comes out,
  // never its size — the success set of every mapper is warm/cold
  // invariant (the committed bench success counts rely on this).
  Rng rng(91);
  for (int rep = 0; rep < 300; ++rep) {
    const std::size_t rows = 1 + rng.uniformInt(0, 30);
    const std::size_t cols = 1 + rng.uniformInt(0, 40);
    BitMatrix adj(rows, cols);
    const double density = rng.uniform() * 0.6;
    for (std::size_t r = 0; r < rows; ++r)
      for (std::size_t c = 0; c < cols; ++c)
        if (rng.bernoulli(density)) adj.set(r, c);
    const MatchingResult cold = hopcroftKarp(adj, /*warmStart=*/false);
    const MatchingResult warm = hopcroftKarp(adj, /*warmStart=*/true);
    EXPECT_EQ(warm.size, cold.size) << "rep=" << rep;
    // The warm matching must still be a real matching on real edges.
    std::vector<bool> used(cols, false);
    std::size_t matched = 0;
    for (std::size_t l = 0; l < rows; ++l) {
      const std::size_t r = warm.matchOfLeft[l];
      if (r == MatchingResult::kUnmatched) continue;
      ++matched;
      ASSERT_TRUE(adj.test(l, r)) << "rep=" << rep;
      ASSERT_FALSE(used[r]) << "rep=" << rep;
      used[r] = true;
    }
    EXPECT_EQ(matched, warm.size) << "rep=" << rep;
  }
}

TEST(HopcroftKarp, ListGraphWarmStartMatchesColdStartSize) {
  // Same warm/cold size invariance on the adjacency-list overload (which
  // also warm-starts by default).
  Rng rng(92);
  for (int rep = 0; rep < 100; ++rep) {
    const std::size_t rows = 1 + rng.uniformInt(0, 30);
    const std::size_t cols = 1 + rng.uniformInt(0, 40);
    BipartiteGraph g(rows, cols);
    const double density = rng.uniform() * 0.6;
    for (std::size_t l = 0; l < rows; ++l)
      for (std::size_t r = 0; r < cols; ++r)
        if (rng.bernoulli(density)) g.addEdge(l, r);
    const MatchingResult cold = hopcroftKarp(g, /*warmStart=*/false);
    const MatchingResult warm = hopcroftKarp(g);
    EXPECT_EQ(warm.size, cold.size) << "rep=" << rep;
  }
}

TEST(HopcroftKarp, WarmStartPerfectOnCleanAdjacency) {
  // All-ones adjacency (the clean crossbar): the greedy seed alone is a
  // perfect matching and no augmentation phases run.
  const BitMatrix adj(70, 70, true);
  const MatchingResult r = hopcroftKarp(adj);
  EXPECT_TRUE(r.perfectForLeft(70));
  for (std::size_t l = 0; l < 70; ++l) EXPECT_EQ(r.matchOfLeft[l], l);
}

TEST(HopcroftKarp, MatchingIsConsistent) {
  Rng rng(78);
  BipartiteGraph g(40, 50);
  std::vector<std::vector<bool>> adj(40, std::vector<bool>(50, false));
  for (std::size_t l = 0; l < 40; ++l)
    for (std::size_t r = 0; r < 50; ++r)
      if (rng.bernoulli(0.2)) {
        g.addEdge(l, r);
        adj[l][r] = true;
      }
  const MatchingResult m = hopcroftKarp(g);
  std::vector<bool> rightUsed(50, false);
  std::size_t matched = 0;
  for (std::size_t l = 0; l < 40; ++l) {
    const std::size_t r = m.matchOfLeft[l];
    if (r == MatchingResult::kUnmatched) continue;
    ++matched;
    EXPECT_TRUE(adj[l][r]);          // only real edges
    EXPECT_FALSE(rightUsed[r]);      // injective
    rightUsed[r] = true;
  }
  EXPECT_EQ(matched, m.size);
}

}  // namespace
}  // namespace mcx
