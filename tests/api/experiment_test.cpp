#include "api/experiment.hpp"

#include <gtest/gtest.h>

#include "circuit/cache.hpp"
#include "logic/sop_parser.hpp"
#include "map/hybrid_mapper.hpp"
#include "scenario/registry.hpp"
#include "scenario/spec.hpp"
#include "util/error.hpp"

namespace mcx {
namespace {

Cover testCover() { return parseSop("x1 x2 + !x2 x3 + x1 !x3 + x2 x3"); }

TEST(ExperimentBuilder, RequiresCircuitAndMapper) {
  EXPECT_THROW(ExperimentBuilder().run(), InvalidArgument);
  EXPECT_THROW(ExperimentBuilder().circuit("f", testCover()).run(), InvalidArgument);
  EXPECT_THROW(ExperimentBuilder().mapper("hba").run(), InvalidArgument);
  EXPECT_THROW(ExperimentBuilder().mapper(std::shared_ptr<const IMapper>()), InvalidArgument);
  EXPECT_THROW(ExperimentBuilder().scenario(std::shared_ptr<const DefectModel>()),
               InvalidArgument);
}

TEST(ExperimentBuilder, UnknownNamesThrowEagerly) {
  EXPECT_THROW(ExperimentBuilder().mapper("bogus"), ParseError);
  EXPECT_THROW(ExperimentBuilder().scenario("bogus"), ParseError);
  // Circuits resolve through the circuit registry now: unknown names and
  // unreadable files fail at declaration time, like mappers and scenarios.
  EXPECT_THROW(ExperimentBuilder().circuit("no-such-circuit"), ParseError);
  EXPECT_THROW(ExperimentBuilder().circuit("file:/nonexistent.pla"), ParseError);
}

TEST(ExperimentBuilder, LegacyPathBitIdenticalToHandBuiltConfig) {
  // The builder is a declaration layer over runDefectExperiment: the legacy
  // rate-pair path must reproduce a hand-built config draw for draw.
  const FunctionMatrix fm = buildFunctionMatrix(testCover());
  DefectExperimentConfig cfg;
  cfg.samples = 60;
  cfg.stuckOpenRate = 0.12;
  cfg.stuckClosedRate = 0.01;
  cfg.seed = 0x7ab1e2;
  cfg.keepMappings = true;
  const DefectExperimentResult direct = runDefectExperiment(fm, HybridMapper(), cfg);

  const ExperimentResult viaBuilder = ExperimentBuilder()
                                          .circuit("test", testCover())
                                          .mapper("hba")
                                          .legacyRates(0.12, 0.01)
                                          .samples(60)
                                          .seed(0x7ab1e2)
                                          .keepMappings(true)
                                          .run();
  EXPECT_EQ(viaBuilder.scenario, "iid (legacy rates)");
  EXPECT_EQ(viaBuilder.outcome.successes, direct.successes);
  EXPECT_EQ(viaBuilder.outcome.totalBacktracks, direct.totalBacktracks);
  ASSERT_EQ(viaBuilder.outcome.mappings.size(), direct.mappings.size());
  for (std::size_t s = 0; s < direct.mappings.size(); ++s)
    EXPECT_EQ(viaBuilder.outcome.mappings[s].rowAssignment, direct.mappings[s].rowAssignment)
        << "sample=" << s;
}

TEST(ExperimentBuilder, ScenarioAndRegistryCircuit) {
  const ExperimentResult r = ExperimentBuilder()
                                 .circuit("rd53")
                                 .mapper("hba")
                                 .scenario("clustered", 0.05)
                                 .samples(20)
                                 .seed(9)
                                 .run();
  EXPECT_EQ(r.circuit, "rd53");
  EXPECT_EQ(r.mapper, "HBA");
  EXPECT_NE(r.scenario.find("clustered"), std::string::npos);
  EXPECT_EQ(r.outcome.samples, 20u);
  EXPECT_GT(r.area(), 0u);
  // Same declaration, same outcome: the engine's determinism carries
  // through the facade.
  const ExperimentResult again = ExperimentBuilder()
                                     .circuit("rd53")
                                     .mapper("hba")
                                     .scenario("clustered", 0.05)
                                     .samples(20)
                                     .seed(9)
                                     .run();
  EXPECT_EQ(r.outcome.successes, again.outcome.successes);
}

TEST(ExperimentBuilder, BuilderCopiesAreIndependent) {
  ExperimentBuilder base;
  base.circuit("test", testCover()).samples(30).seed(5);
  const ExperimentResult hba =
      ExperimentBuilder(base).mapper("hba").legacyRates(0.10).run();
  const ExperimentResult ea = ExperimentBuilder(base).mapper("ea").legacyRates(0.10).run();
  EXPECT_EQ(hba.mapper, "HBA");
  EXPECT_EQ(ea.mapper, "EA");
  // EA is exact: it succeeds at least wherever HBA does.
  EXPECT_GE(ea.outcome.successes, hba.outcome.successes);
}

TEST(ExperimentBuilder, MultiLevelLayout) {
  const ExperimentResult two = ExperimentBuilder()
                                   .circuit("test", testCover())
                                   .mapper("hba")
                                   .samples(5)
                                   .run();
  const ExperimentResult multi = ExperimentBuilder()
                                     .circuit("test", testCover())
                                     .multiLevel()
                                     .mapper("hba")
                                     .samples(5)
                                     .run();
  EXPECT_NE(two.rows * 1000 + two.cols, multi.rows * 1000 + multi.cols)
      << "multi-level layout must differ from the two-level one";
}

TEST(ExperimentBuilder, PlaFileRoundTripsEndToEnd) {
  // A committed .pla fixture through the whole chain: file -> pipeline ->
  // cache -> engine. The second run must hit the memo cache (no
  // re-synthesis) and reproduce the first run exactly.
  const std::string source =
      std::string("file:") + MCX_REPO_ROOT + "/examples/data/adder.pla";
  ExperimentBuilder declared;
  declared.circuit(source).mapper("hba").legacyRates(0.10).samples(40).seed(11);

  const CircuitCache::Stats before = CircuitCache::global().stats();
  const ExperimentResult first = ExperimentBuilder(declared).run();
  const ExperimentResult second = ExperimentBuilder(declared).run();
  const CircuitCache::Stats after = CircuitCache::global().stats();

  EXPECT_EQ(first.circuit, "adder.pla");
  EXPECT_NE(first.circuitSpec.find("file:"), std::string::npos);
  EXPECT_EQ(first.outcome.samples, 40u);
  EXPECT_GT(first.rows, 0u);
  EXPECT_EQ(first.outcome.successes, second.outcome.successes);
  EXPECT_GE(after.hits, before.hits + 1)
      << "the repeated declaration must be served from the circuit cache";

  // The builder's multiLevel() knob overrides the spec's realization.
  const ExperimentResult multi = ExperimentBuilder(declared).multiLevel().run();
  EXPECT_GT(multi.rows, first.rows);

  // cache(false) bypasses memoization but must stay bit-identical.
  const ExperimentResult bypassed = ExperimentBuilder(declared).cache(false).run();
  EXPECT_EQ(bypassed.outcome.successes, first.outcome.successes);
}

TEST(ExperimentBuilder, CircuitSpecJsonDeclaration) {
  const ExperimentResult r =
      ExperimentBuilder()
          .circuit(R"({"circuit":"gen:weight5","synth":"espresso","realize":"multilevel"})")
          .mapper("hba")
          .legacyRates(0.10)
          .samples(10)
          .seed(3)
          .run();
  EXPECT_EQ(r.circuit, "weight5");
  EXPECT_NE(r.circuitSpec.find("synth=espresso"), std::string::npos);
  EXPECT_NE(r.circuitSpec.find("realize=multilevel"), std::string::npos);
}

TEST(ExperimentResult, UniformJsonRoundTrips) {
  const ExperimentResult r = ExperimentBuilder()
                                 .circuit("test", testCover())
                                 .mapper("fast-ea")
                                 .scenario("paper-iid", 0.10)
                                 .samples(10)
                                 .seed(3)
                                 .timePerSample(true)
                                 .run();
  const SpecValue parsed = parseSpec(r.toJson());
  ASSERT_TRUE(parsed.isObject());
  EXPECT_EQ(parsed.stringOr("circuit", ""), "test");
  EXPECT_EQ(parsed.stringOr("mapper", ""), "EA-fast");
  EXPECT_DOUBLE_EQ(parsed.numberOr("samples", -1), 10.0);
  EXPECT_DOUBLE_EQ(parsed.numberOr("successes", -1),
                   static_cast<double>(r.outcome.successes));
  EXPECT_DOUBLE_EQ(parsed.numberOr("seed", -1), 3.0);
  EXPECT_NE(parsed.find("success_rate"), nullptr);
  EXPECT_NE(parsed.find("mean_seconds"), nullptr);
  EXPECT_NE(parsed.find("mean_map_millis"), nullptr)
      << "timed runs must carry the per-sample timing field";
}

}  // namespace
}  // namespace mcx
