#include "api/experiment.hpp"

#include <gtest/gtest.h>

#include "logic/sop_parser.hpp"
#include "map/hybrid_mapper.hpp"
#include "scenario/registry.hpp"
#include "scenario/spec.hpp"
#include "util/error.hpp"

namespace mcx {
namespace {

Cover testCover() { return parseSop("x1 x2 + !x2 x3 + x1 !x3 + x2 x3"); }

TEST(ExperimentBuilder, RequiresCircuitAndMapper) {
  EXPECT_THROW(ExperimentBuilder().run(), InvalidArgument);
  EXPECT_THROW(ExperimentBuilder().circuit("f", testCover()).run(), InvalidArgument);
  EXPECT_THROW(ExperimentBuilder().mapper("hba").run(), InvalidArgument);
  EXPECT_THROW(ExperimentBuilder().mapper(std::shared_ptr<const IMapper>()), InvalidArgument);
  EXPECT_THROW(ExperimentBuilder().scenario(std::shared_ptr<const DefectModel>()),
               InvalidArgument);
}

TEST(ExperimentBuilder, UnknownNamesThrowEagerly) {
  EXPECT_THROW(ExperimentBuilder().mapper("bogus"), ParseError);
  EXPECT_THROW(ExperimentBuilder().scenario("bogus"), ParseError);
  EXPECT_THROW(ExperimentBuilder().circuit("no-such-circuit"), InvalidArgument);
}

TEST(ExperimentBuilder, LegacyPathBitIdenticalToHandBuiltConfig) {
  // The builder is a declaration layer over runDefectExperiment: the legacy
  // rate-pair path must reproduce a hand-built config draw for draw.
  const FunctionMatrix fm = buildFunctionMatrix(testCover());
  DefectExperimentConfig cfg;
  cfg.samples = 60;
  cfg.stuckOpenRate = 0.12;
  cfg.stuckClosedRate = 0.01;
  cfg.seed = 0x7ab1e2;
  cfg.keepMappings = true;
  const DefectExperimentResult direct = runDefectExperiment(fm, HybridMapper(), cfg);

  const ExperimentResult viaBuilder = ExperimentBuilder()
                                          .circuit("test", testCover())
                                          .mapper("hba")
                                          .legacyRates(0.12, 0.01)
                                          .samples(60)
                                          .seed(0x7ab1e2)
                                          .keepMappings(true)
                                          .run();
  EXPECT_EQ(viaBuilder.scenario, "iid (legacy rates)");
  EXPECT_EQ(viaBuilder.outcome.successes, direct.successes);
  EXPECT_EQ(viaBuilder.outcome.totalBacktracks, direct.totalBacktracks);
  ASSERT_EQ(viaBuilder.outcome.mappings.size(), direct.mappings.size());
  for (std::size_t s = 0; s < direct.mappings.size(); ++s)
    EXPECT_EQ(viaBuilder.outcome.mappings[s].rowAssignment, direct.mappings[s].rowAssignment)
        << "sample=" << s;
}

TEST(ExperimentBuilder, ScenarioAndRegistryCircuit) {
  const ExperimentResult r = ExperimentBuilder()
                                 .circuit("rd53")
                                 .mapper("hba")
                                 .scenario("clustered", 0.05)
                                 .samples(20)
                                 .seed(9)
                                 .run();
  EXPECT_EQ(r.circuit, "rd53");
  EXPECT_EQ(r.mapper, "HBA");
  EXPECT_NE(r.scenario.find("clustered"), std::string::npos);
  EXPECT_EQ(r.outcome.samples, 20u);
  EXPECT_GT(r.area(), 0u);
  // Same declaration, same outcome: the engine's determinism carries
  // through the facade.
  const ExperimentResult again = ExperimentBuilder()
                                     .circuit("rd53")
                                     .mapper("hba")
                                     .scenario("clustered", 0.05)
                                     .samples(20)
                                     .seed(9)
                                     .run();
  EXPECT_EQ(r.outcome.successes, again.outcome.successes);
}

TEST(ExperimentBuilder, BuilderCopiesAreIndependent) {
  ExperimentBuilder base;
  base.circuit("test", testCover()).samples(30).seed(5);
  const ExperimentResult hba =
      ExperimentBuilder(base).mapper("hba").legacyRates(0.10).run();
  const ExperimentResult ea = ExperimentBuilder(base).mapper("ea").legacyRates(0.10).run();
  EXPECT_EQ(hba.mapper, "HBA");
  EXPECT_EQ(ea.mapper, "EA");
  // EA is exact: it succeeds at least wherever HBA does.
  EXPECT_GE(ea.outcome.successes, hba.outcome.successes);
}

TEST(ExperimentBuilder, MultiLevelLayout) {
  const ExperimentResult two = ExperimentBuilder()
                                   .circuit("test", testCover())
                                   .mapper("hba")
                                   .samples(5)
                                   .run();
  const ExperimentResult multi = ExperimentBuilder()
                                     .circuit("test", testCover())
                                     .multiLevel()
                                     .mapper("hba")
                                     .samples(5)
                                     .run();
  EXPECT_NE(two.rows * 1000 + two.cols, multi.rows * 1000 + multi.cols)
      << "multi-level layout must differ from the two-level one";
}

TEST(ExperimentResult, UniformJsonRoundTrips) {
  const ExperimentResult r = ExperimentBuilder()
                                 .circuit("test", testCover())
                                 .mapper("fast-ea")
                                 .scenario("paper-iid", 0.10)
                                 .samples(10)
                                 .seed(3)
                                 .timePerSample(true)
                                 .run();
  const SpecValue parsed = parseSpec(r.toJson());
  ASSERT_TRUE(parsed.isObject());
  EXPECT_EQ(parsed.stringOr("circuit", ""), "test");
  EXPECT_EQ(parsed.stringOr("mapper", ""), "EA-fast");
  EXPECT_DOUBLE_EQ(parsed.numberOr("samples", -1), 10.0);
  EXPECT_DOUBLE_EQ(parsed.numberOr("successes", -1),
                   static_cast<double>(r.outcome.successes));
  EXPECT_DOUBLE_EQ(parsed.numberOr("seed", -1), 3.0);
  EXPECT_NE(parsed.find("success_rate"), nullptr);
  EXPECT_NE(parsed.find("mean_seconds"), nullptr);
  EXPECT_NE(parsed.find("mean_map_millis"), nullptr)
      << "timed runs must carry the per-sample timing field";
}

}  // namespace
}  // namespace mcx
