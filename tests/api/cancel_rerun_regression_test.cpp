// Cancellation must not perturb determinism: an experiment that is aborted
// mid-run and then re-run to completion must reproduce the committed
// BENCH_defect_mc.json success counts bit-identically. The per-sample RNG
// streams are pre-split before the first abort check, so a cancelled run
// consumes nothing from the streams of the samples it never reached.
#include <gtest/gtest.h>

#include <fstream>
#include <memory>
#include <sstream>

#include "api/experiment.hpp"
#include "mc/cancel.hpp"
#include "mc/executor.hpp"
#include "scenario/spec.hpp"

#ifndef MCX_REPO_ROOT
#error "MCX_REPO_ROOT must point at the repository root (set by CMake)"
#endif

namespace mcx {
namespace {

TEST(CancelRerunRegression, AbortedRunDoesNotPerturbARerunsCommittedCounts) {
  std::ifstream file(std::string(MCX_REPO_ROOT) + "/BENCH_defect_mc.json");
  ASSERT_TRUE(file.good()) << "committed BENCH_defect_mc.json not found";
  std::ostringstream buffer;
  buffer << file.rdbuf();
  const SpecValue doc = parseSpec(buffer.str());
  const auto samples = static_cast<std::size_t>(doc.numberOr("samples", 0));
  const double rate = doc.numberOr("stuck_open_rate", 0.0);
  ASSERT_GT(samples, 0u);

  // The committed rd53/HBA legacy row: the canonical bit-identity anchor.
  const SpecValue* circuits = doc.find("circuits");
  ASSERT_NE(circuits, nullptr);
  std::size_t committed = 0;
  bool found = false;
  for (const SpecValue& circuit : circuits->array) {
    if (circuit.stringOr("name", "") != "rd53") continue;
    for (const SpecValue& entry : circuit.find("mappers")->array) {
      if (entry.stringOr("scenario", "") != "iid (legacy rates)") continue;
      if (entry.stringOr("mapper", "") != "HBA") continue;
      committed = static_cast<std::size_t>(
          entry.find("runs")->array.front().numberOr("successes", -1));
      found = true;
    }
  }
  ASSERT_TRUE(found) << "committed rd53/HBA legacy row missing";

  const auto declare = [&] {
    return ExperimentBuilder()
        .circuit("rd53-min")
        .multiLevel()
        .mapper("hba")
        .legacyRates(rate)
        .samples(samples)
        .seed(0x51a)
        .threads(1);
  };

  // Run 1: cancel after a handful of samples — a genuine mid-run abort.
  auto token = std::make_shared<CancelToken>();
  std::size_t sofar = 0;
  ExperimentBuilder aborted = declare();
  aborted.cancelToken(token);
  // Cancel from within the run via a pre-cancelled deadline is racy to time;
  // instead run a first pass whose token fires almost immediately.
  token->setDeadlineAfterMillis(0.5);
  const ExperimentResult partial = aborted.run();
  sofar = partial.outcome.completed;
  if (partial.outcome.aborted) {
    EXPECT_EQ(partial.outcome.abortReason, "deadline_exceeded");
    EXPECT_LT(sofar, samples);
  }
  // (On a very fast machine the run may beat the 0.5ms budget; the rerun
  // check below is meaningful either way, and CI boxes abort reliably.)

  // Run 2: the rerun, same declaration, no token — must be bit-identical to
  // the committed count, no matter how far run 1 got before aborting.
  const ExperimentResult rerun = declare().run();
  EXPECT_FALSE(rerun.outcome.aborted);
  EXPECT_EQ(rerun.outcome.completed, samples);
  EXPECT_EQ(rerun.outcome.successes, committed)
      << "a cancelled run perturbed the pre-split RNG streams of a rerun";

  // And a third run through a shared persistent pool matches too: pool
  // reuse is not allowed to change the sample-to-stream assignment.
  ExecutorPool pool(2);
  ExperimentBuilder pooled = declare();
  pooled.pool(&pool);
  EXPECT_EQ(pooled.run().outcome.successes, committed)
      << "running on a persistent pool changed the committed counts";
}

}  // namespace
}  // namespace mcx
