#include "api/driver.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace mcx::bench {
namespace {

Driver makeDriver() {
  Driver driver;
  driver.add({"beta", "the second suite", [](const std::vector<std::string>&) { return 0; }});
  driver.add({"alpha", "the first suite", [](const std::vector<std::string>&) { return 7; }});
  return driver;
}

TEST(BenchDriver, ListSuitesIsSortedWithSummaries) {
  const Driver driver = makeDriver();
  std::ostringstream out, err;
  EXPECT_EQ(driver.run({"--list-suites"}, out, err), 0);
  EXPECT_EQ(out.str(), "alpha  —  the first suite\nbeta  —  the second suite\n");
  EXPECT_TRUE(err.str().empty());
}

TEST(BenchDriver, ListMappersAndScenarios) {
  const Driver driver = makeDriver();
  std::ostringstream mappers, scenarios, err;
  EXPECT_EQ(driver.run({"--list-mappers"}, mappers, err), 0);
  EXPECT_NE(mappers.str().find("hba  —  "), std::string::npos);
  EXPECT_NE(mappers.str().find("fast-ea"), std::string::npos);
  EXPECT_EQ(driver.run({"--list-scenarios"}, scenarios, err), 0);
  EXPECT_NE(scenarios.str().find("paper-iid  —  "), std::string::npos);
  EXPECT_NE(scenarios.str().find("clustered"), std::string::npos);
}

TEST(BenchDriver, ListCircuits) {
  const Driver driver = makeDriver();
  std::ostringstream circuits, err;
  EXPECT_EQ(driver.run({"--list-circuits"}, circuits, err), 0);
  EXPECT_NE(circuits.str().find("bw  —  "), std::string::npos);
  EXPECT_NE(circuits.str().find("rd53-min"), std::string::npos);
  EXPECT_NE(circuits.str().find("fig5"), std::string::npos);
}

TEST(BenchDriver, DispatchesToSuiteWithRemainingArgs) {
  Driver driver;
  std::vector<std::string> seen;
  driver.add({"suite", "a suite", [&seen](const std::vector<std::string>& args) {
                seen = args;
                return 3;
              }});
  std::ostringstream out, err;
  EXPECT_EQ(driver.run({"suite", "--samples", "5"}, out, err), 3);
  EXPECT_EQ(seen, (std::vector<std::string>{"--samples", "5"}));
}

TEST(BenchDriver, UnknownSuiteListsAvailableOnes) {
  const Driver driver = makeDriver();
  std::ostringstream out, err;
  EXPECT_EQ(driver.run({"gamma"}, out, err), 2);
  EXPECT_NE(err.str().find("unknown suite \"gamma\""), std::string::npos);
  EXPECT_NE(err.str().find("alpha"), std::string::npos);
}

TEST(BenchDriver, NoArgsPrintsUsageAndFails) {
  const Driver driver = makeDriver();
  std::ostringstream out, err;
  EXPECT_EQ(driver.run({}, out, err), 2);
  EXPECT_NE(err.str().find("usage: mcx_bench"), std::string::npos);

  std::ostringstream helpOut, helpErr;
  EXPECT_EQ(driver.run({"--help"}, helpOut, helpErr), 0);
  EXPECT_NE(helpOut.str().find("usage: mcx_bench"), std::string::npos);
  EXPECT_NE(helpOut.str().find("alpha"), std::string::npos);
}

TEST(BenchDriver, UnknownFlagFails) {
  const Driver driver = makeDriver();
  std::ostringstream out, err;
  EXPECT_EQ(driver.run({"--list-sweets"}, out, err), 2);
  EXPECT_NE(err.str().find("unknown flag"), std::string::npos);
}

TEST(BenchDriver, DuplicateSuiteNameRejected) {
  Driver driver = makeDriver();
  EXPECT_THROW(
      driver.add({"alpha", "again", [](const std::vector<std::string>&) { return 0; }}),
      Error);
}

TEST(BenchDriver, CommonOptionsPrecedence) {
  CommonOptions common;
  cli::ArgParser parser("suite", "test");
  common.addTo(parser);
  std::ostringstream out, err;
  ASSERT_EQ(parser.parse({"--samples", "7", "--json", "x.json"}, out, err),
            cli::ArgParser::Outcome::Ok);
  EXPECT_EQ(common.samplesOr(100), 7u);
  EXPECT_EQ(common.seedOr(42), 42u);
  EXPECT_EQ(common.threadsOr(), 0u);
  EXPECT_EQ(common.jsonOr("default.json"), "x.json");

  CommonOptions defaults;
  EXPECT_EQ(defaults.seedOr(42), 42u);
  EXPECT_EQ(defaults.jsonOr("default.json"), "default.json");
}

}  // namespace
}  // namespace mcx::bench
