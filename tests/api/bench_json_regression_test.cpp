// Bit-identity regression against the committed BENCH_defect_mc.json: the
// legacy i.i.d. rate-pair path, declared as a CircuitSpec and invoked
// through the ExperimentBuilder facade, must reproduce the committed
// success counts exactly. This pins the whole chain — circuit registry ->
// synthesis pipeline -> memo cache -> builder -> config -> engine ->
// pre-split RNG streams -> mapper — to the numbers every prior PR has
// preserved.
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "api/experiment.hpp"
#include "scenario/spec.hpp"

#ifndef MCX_REPO_ROOT
#error "MCX_REPO_ROOT must point at the repository root (set by CMake)"
#endif

namespace mcx {
namespace {

/// The committed workloads as circuit-pipeline declarations (what the
/// multilevel suite runs): espresso-polished generated circuits, fast
/// registry stand-ins.
std::string workloadSpec(const std::string& name) {
  if (name == "rd53") return "rd53-min";
  if (name == "sqrt8") return "sqrt8-min";
  if (name == "t481 stand-in") return "t481";
  if (name == "bw") return "bw";
  ADD_FAILURE() << "unknown committed workload " << name;
  return "rd53";
}

TEST(BenchJsonRegression, BuilderReproducesCommittedLegacySuccessCounts) {
  std::ifstream file(std::string(MCX_REPO_ROOT) + "/BENCH_defect_mc.json");
  ASSERT_TRUE(file.good()) << "committed BENCH_defect_mc.json not found";
  std::ostringstream buffer;
  buffer << file.rdbuf();
  const SpecValue doc = parseSpec(buffer.str());
  ASSERT_TRUE(doc.isObject());

  const auto samples = static_cast<std::size_t>(doc.numberOr("samples", 0));
  const double rate = doc.numberOr("stuck_open_rate", 0.0);
  ASSERT_GT(samples, 0u);
  ASSERT_GT(rate, 0.0);

  const SpecValue* circuits = doc.find("circuits");
  ASSERT_NE(circuits, nullptr);
  ASSERT_TRUE(circuits->isArray());

  std::size_t checked = 0;
  for (const SpecValue& circuit : circuits->array) {
    const std::string name = circuit.stringOr("name", "");
    const std::string spec = workloadSpec(name);

    const SpecValue* mappers = circuit.find("mappers");
    ASSERT_NE(mappers, nullptr) << name;
    for (const SpecValue& entry : mappers->array) {
      // Only the legacy rate-pair rows are the bit-identity surface; the
      // sparse-sampler rows use a different (statistically equivalent)
      // stream and are covered by their own statistical tests.
      if (entry.stringOr("scenario", "") != "iid (legacy rates)") continue;
      const std::string mapperName = entry.stringOr("mapper", "");
      const std::string preset = mapperName == "HBA"   ? "hba"
                                 : mapperName == "EA"  ? "ea"
                                                       : "";
      ASSERT_FALSE(preset.empty()) << "unexpected committed mapper " << mapperName;

      const SpecValue* runs = entry.find("runs");
      ASSERT_NE(runs, nullptr);
      ASSERT_FALSE(runs->array.empty());
      const auto committed =
          static_cast<std::size_t>(runs->array.front().numberOr("successes", -1));

      const ExperimentResult result = ExperimentBuilder()
                                          .circuit(spec)
                                          .multiLevel()
                                          .mapper(preset)
                                          .legacyRates(rate)
                                          .samples(samples)
                                          .seed(0x51a)
                                          .threads(1)
                                          .run();
      EXPECT_EQ(result.outcome.successes, committed)
          << name << " / " << mapperName
          << ": facade no longer reproduces the committed success count";
      ++checked;
    }
  }
  // 4 circuits x {HBA, EA} legacy rows — fail loudly if the committed file
  // ever loses its regression surface.
  EXPECT_EQ(checked, 8u);
}

}  // namespace
}  // namespace mcx
