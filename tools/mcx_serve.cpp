// mcx_serve — the deadline-aware experiment daemon.
//
// Speaks JSON lines: one experiment request per line in, one response line
// per request out (see src/serve/request.hpp for the schema and
// src/serve/error.hpp for the error taxonomy). Two transports:
//
//   mcx_serve                      stdin -> stdout (responses), counters on
//                                  stderr at exit
//   mcx_serve --socket /tmp/mcx   unix stream socket; each connection gets
//                                  its own responses back
//
// Robustness contract:
//   - requests are validated eagerly; malformed input gets a structured
//     `parse` error, never a crash
//   - the admission queue is bounded (--queue-depth); over capacity the
//     request is shed immediately with `overloaded`
//   - SIGINT/SIGTERM drain gracefully: stop admitting, finish in-flight
//     work, flush the counters JSON to stderr, exit 0
//   - MCX_FAULTINJECT arms the fault-injection sites (testing only)
//
// Observability:
//   - --metrics-interval <s> flushes the full telemetry snapshot (service
//     counters + registry histograms) to stderr periodically, one line
//     prefixed "mcx_serve: metrics "
//   - --health-file <path> heartbeats the liveness snapshot (status,
//     queue/in-flight load, cache bytes, RSS) to the file atomically
//     (write-temp-then-rename) every --health-interval seconds; the
//     `{"type":"health"}` protocol request returns the same payload inline
//   - MCX_TRACE=<path> arms Chrome trace_event output (chrome://tracing)
//   - MCX_PROFILE=1 arms the gated hot-path profiling counters
//
// Resource governance (all off by default — see --help):
//   --cache-budget-mb bounds the global circuit cache (LRU eviction),
//   --queue-cost-budget / --client-cost-rate replace count-only admission
//   with cost-aware shedding (cost = samples x learned circuit area; socket
//   connections are distinct clients), --degrade trims deadline-carrying
//   requests' sample counts to fit their remaining budget, and
//   --watchdog-factor flags requests stuck past N x the p99 stage latency.
#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include <condition_variable>
#include <thread>

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "circuit/cache.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "serve/service.hpp"
#include "util/arg_parser.hpp"
#include "util/faultinject.hpp"
#include "util/stopwatch.hpp"

namespace {

// Self-pipe: the signal handler writes one byte; the poll loop wakes up and
// begins the drain. Async-signal-safe (write only).
int gSignalPipe[2] = {-1, -1};
std::atomic<int> gSignal{0};

void onSignal(int sig) {
  gSignal.store(sig, std::memory_order_relaxed);
  const char byte = 1;
  [[maybe_unused]] const ssize_t n = ::write(gSignalPipe[1], &byte, 1);
}

bool installSignalHandlers() {
  if (::pipe(gSignalPipe) != 0) return false;
  ::fcntl(gSignalPipe[0], F_SETFL, O_NONBLOCK);
  ::fcntl(gSignalPipe[1], F_SETFL, O_NONBLOCK);
  struct sigaction sa;
  std::memset(&sa, 0, sizeof(sa));
  sa.sa_handler = onSignal;
  sigemptyset(&sa.sa_mask);
  sa.sa_flags = 0;  // no SA_RESTART: blocked reads return EINTR and re-poll
  if (::sigaction(SIGINT, &sa, nullptr) != 0) return false;
  if (::sigaction(SIGTERM, &sa, nullptr) != 0) return false;
  ::signal(SIGPIPE, SIG_IGN);  // a client hanging up must not kill the daemon
  return true;
}

/// How long a response write may wait for a client to drain its socket
/// buffer before the response is dropped. Client fds are non-blocking, so
/// this bounds the worst case a stuck (connected but not reading) client
/// can cost a request thread — it can never wedge the service.
constexpr int kWriteTimeoutMillis = 2000;

/// Append a newline and write the whole buffer to the non-blocking @p fd,
/// retrying partial writes and polling for writability within the timeout
/// budget. Returns false when the peer is gone or too slow to drain (the
/// response is dropped; the experiment still ran and the counters still
/// account for it).
bool writeLine(int fd, const std::string& line) {
  std::string buffer = line;
  buffer.push_back('\n');
  std::size_t off = 0;
  const mcx::Stopwatch elapsed;  // budget clock for the whole response write
  while (off < buffer.size()) {
    const ssize_t n = ::write(fd, buffer.data() + off, buffer.size() - off);
    if (n > 0) {
      off += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      const int leftMillis = kWriteTimeoutMillis - static_cast<int>(elapsed.millis());
      if (leftMillis <= 0) return false;  // stuck client: drop, don't wedge
      struct pollfd pfd = {fd, POLLOUT, 0};
      const int ready = ::poll(&pfd, 1, leftMillis);
      if (ready > 0 && (pfd.revents & (POLLERR | POLLHUP | POLLNVAL)) == 0) continue;
      if (ready < 0 && errno == EINTR) continue;
      return false;
    }
    return false;
  }
  return true;
}

/// Split complete lines out of a connection's accumulation buffer and submit
/// each. Blank lines are ignored (keep-alives / trailing newlines).
///
/// Streaming oversized-line guard: an unterminated line used to accumulate
/// without bound until its newline finally arrived. Instead, the moment the
/// partial line exceeds the parse limit it is submitted as-is — producing
/// the typed `parse` error with the observed length — and the connection
/// switches to discard-until-newline, so a misbehaving client's memory cost
/// is bounded by the limit, not by its patience.
void submitLines(mcx::serve::ExperimentService& service, std::string& buffer,
                 const mcx::serve::ExperimentService::Sink& sink,
                 const std::string& client, bool& discarding) {
  std::size_t start = 0;
  for (;;) {
    const std::size_t nl = buffer.find('\n', start);
    if (nl == std::string::npos) break;
    std::string line = buffer.substr(start, nl - start);
    start = nl + 1;
    if (discarding) {  // tail of an oversized line already answered
      discarding = false;
      continue;
    }
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.find_first_not_of(" \t") == std::string::npos) continue;
    service.submit(line, sink, client);
  }
  buffer.erase(0, start);
  if (discarding) {
    buffer.clear();  // still inside the oversized line: keep dropping
  } else if (buffer.size() > service.options().limits.maxLineBytes) {
    service.submit(buffer, sink, client);
    buffer.clear();
    discarding = true;
  }
}

/// stdin -> stdout mode. Returns when stdin hits EOF or a signal arrives.
void runStdinLoop(mcx::serve::ExperimentService& service) {
  std::string buffer;
  bool discarding = false;
  const std::string client = "stdin";
  char chunk[4096];
  for (;;) {
    struct pollfd fds[2] = {{STDIN_FILENO, POLLIN, 0}, {gSignalPipe[0], POLLIN, 0}};
    const int ready = ::poll(fds, 2, -1);
    if (ready < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (fds[1].revents != 0) break;  // SIGINT/SIGTERM: start the drain
    if (fds[0].revents == 0) continue;
    const ssize_t n = ::read(STDIN_FILENO, chunk, sizeof(chunk));
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) {  // EOF: submit any unterminated trailing line, then drain
      if (!buffer.empty()) buffer.push_back('\n');
      submitLines(service, buffer, nullptr, client, discarding);
      break;
    }
    buffer.append(chunk, static_cast<std::size_t>(n));
    submitLines(service, buffer, nullptr, client, discarding);
  }
}

/// Write end of a connection, shared between the event loop (which closes
/// it) and the service's request threads (which respond on it). The mutex
/// orders responses against close(), so a late response to a hung-up client
/// is dropped instead of racing a reused fd.
struct ConnWriter {
  std::mutex mutex;
  int fd = -1;
  bool closed = false;
  bool broken = false;  ///< a write failed or timed out; stop paying for it

  void write(const std::string& line) {
    const std::lock_guard<std::mutex> lock(mutex);
    if (closed || broken) return;
    // A failed write latches the connection broken so a stuck client costs
    // at most one write timeout; the fd itself is closed only by the event
    // loop (via close()), which owns its lifetime.
    if (!writeLine(fd, line)) broken = true;
  }
  void close() {
    const std::lock_guard<std::mutex> lock(mutex);
    if (!closed) ::close(fd);
    closed = true;
  }
};

struct Connection {
  std::string buffer;
  std::string client;       ///< per-connection cost-bucket key
  bool discarding = false;  ///< inside an already-answered oversized line
  std::shared_ptr<ConnWriter> writer = std::make_shared<ConnWriter>();
};

/// Unix-socket mode: a single-threaded accept+read event loop; responses are
/// written back to the originating connection from the service's request
/// threads (serialized per connection).
int runSocketLoop(mcx::serve::ExperimentService& service, const std::string& path) {
  ::unlink(path.c_str());
  const int listenFd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listenFd < 0) {
    std::cerr << "mcx_serve: socket: " << std::strerror(errno) << "\n";
    return 1;
  }
  struct sockaddr_un addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    std::cerr << "mcx_serve: socket path too long\n";
    return 1;
  }
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  if (::bind(listenFd, reinterpret_cast<struct sockaddr*>(&addr), sizeof(addr)) != 0 ||
      ::listen(listenFd, 16) != 0) {
    std::cerr << "mcx_serve: bind/listen " << path << ": " << std::strerror(errno) << "\n";
    ::close(listenFd);
    return 1;
  }
  std::cerr << "mcx_serve: listening on " << path << "\n";

  std::vector<std::unique_ptr<Connection>> connections;
  std::uint64_t clientSerial = 0;  // distinct cost-bucket key per connection
  char chunk[4096];
  for (;;) {
    std::vector<struct pollfd> fds;
    fds.push_back({gSignalPipe[0], POLLIN, 0});
    fds.push_back({listenFd, POLLIN, 0});
    for (const auto& conn : connections) fds.push_back({conn->writer->fd, POLLIN, 0});

    const int ready = ::poll(fds.data(), fds.size(), -1);
    if (ready < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (fds[0].revents != 0) break;  // signal: drain and exit

    // fds rows 2..2+polled were built from the pre-accept connection list;
    // a connection admitted below has no pollfd row yet, so the scan must
    // be bounded by this snapshot, never by the (possibly grown) vector.
    const std::size_t polled = connections.size();

    if ((fds[1].revents & POLLIN) != 0) {
      const int fd = ::accept(listenFd, nullptr, nullptr);
      if (fd >= 0) {
        // Non-blocking: response writes poll for writability with a bounded
        // budget (writeLine), so a client that stops reading can never
        // wedge a request thread on a full socket buffer.
        ::fcntl(fd, F_SETFL, O_NONBLOCK);
        auto conn = std::make_unique<Connection>();
        conn->client = "conn-" + std::to_string(++clientSerial);
        conn->writer->fd = fd;
        connections.push_back(std::move(conn));
      }
    }

    for (std::size_t i = 0; i < polled;) {
      Connection& conn = *connections[i];
      const short revents = fds[2 + i].revents;
      bool closed = false;
      if ((revents & (POLLIN | POLLHUP | POLLERR)) != 0) {
        const ssize_t n = ::read(conn.writer->fd, chunk, sizeof(chunk));
        if (n > 0) {
          conn.buffer.append(chunk, static_cast<std::size_t>(n));
          const std::shared_ptr<ConnWriter> writer = conn.writer;
          submitLines(
              service, conn.buffer,
              [writer](const std::string& line) { writer->write(line); },
              conn.client, conn.discarding);
        } else if (n == 0 ||
                   (n < 0 && errno != EINTR && errno != EAGAIN && errno != EWOULDBLOCK)) {
          closed = true;
        }
      }
      if (closed) {
        // In-flight requests for this connection still finish; their late
        // responses are dropped by the ConnWriter's closed latch.
        conn.writer->close();
        connections.erase(connections.begin() + static_cast<std::ptrdiff_t>(i));
        break;  // fds indices are stale after erase; re-poll
      }
      ++i;
    }
  }

  service.drain();
  for (const auto& conn : connections) conn->writer->close();
  ::close(listenFd);
  ::unlink(path.c_str());
  return 0;
}

/// Background stderr flusher for --metrics-interval: one compact snapshot
/// line per tick, stopped promptly (condition variable, not a sleep) when
/// the daemon drains.
class MetricsFlusher {
public:
  MetricsFlusher(mcx::serve::ExperimentService& service, double intervalSeconds)
      : service_(service), intervalSeconds_(intervalSeconds) {
    if (intervalSeconds_ > 0) thread_ = std::thread([this] { loop(); });
  }
  ~MetricsFlusher() {
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      stop_ = true;
    }
    tick_.notify_all();
    if (thread_.joinable()) thread_.join();
  }

private:
  void loop() {
    std::unique_lock<std::mutex> lock(mutex_);
    for (;;) {
      if (tick_.wait_for(lock, std::chrono::duration<double>(intervalSeconds_),
                         [this] { return stop_; }))
        return;
      lock.unlock();
      // One pre-built string per tick: stderr is unbuffered, and the final
      // counters flush may race this thread — whole-line writes keep both
      // readable.
      std::cerr << ("mcx_serve: metrics " + service_.statsJson(false) + "\n")
                << std::flush;
      lock.lock();
    }
  }

  mcx::serve::ExperimentService& service_;
  double intervalSeconds_;
  std::mutex mutex_;
  std::condition_variable tick_;
  bool stop_ = false;
  std::thread thread_;
};

/// --health-file heartbeat: the liveness snapshot is written to a temp file
/// and renamed over the target, so an external prober (a container liveness
/// probe, a supervisor) always reads a complete JSON document — never a
/// torn write. A final beat lands at shutdown so the last observable status
/// is "draining", and the file is removed on clean exit (a leftover file
/// with a stale mtime = the daemon died uncleanly).
class HealthBeat {
public:
  HealthBeat(mcx::serve::ExperimentService& service, std::string path,
             double intervalSeconds)
      : service_(service), path_(std::move(path)), intervalSeconds_(intervalSeconds) {
    if (!path_.empty() && intervalSeconds_ > 0) {
      beat();  // the file exists as soon as the daemon is serving
      thread_ = std::thread([this] { loop(); });
    }
  }
  ~HealthBeat() {
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      stop_ = true;
    }
    tick_.notify_all();
    if (thread_.joinable()) {
      thread_.join();
      beat();  // last words: status "draining"
      std::remove(path_.c_str());
    }
  }

private:
  void beat() {
    const std::string tmp = path_ + ".tmp";
    {
      std::ofstream out(tmp, std::ios::trunc);
      if (!out) return;  // unwritable path: skip the beat, keep serving
      out << service_.healthJson(false) << "\n";
    }
    std::rename(tmp.c_str(), path_.c_str());
  }

  void loop() {
    std::unique_lock<std::mutex> lock(mutex_);
    for (;;) {
      if (tick_.wait_for(lock, std::chrono::duration<double>(intervalSeconds_),
                         [this] { return stop_; }))
        return;
      lock.unlock();
      beat();
      lock.lock();
    }
  }

  mcx::serve::ExperimentService& service_;
  std::string path_;
  double intervalSeconds_;
  std::mutex mutex_;
  std::condition_variable tick_;
  bool stop_ = false;
  std::thread thread_;
};

}  // namespace

int main(int argc, char** argv) {
  mcx::serve::ServiceOptions options;
  std::string socketPath;
  double defaultDeadline = 0;
  double metricsInterval = 0;
  std::size_t maxSamples = options.limits.maxSamples;
  std::size_t maxLineBytes = options.limits.maxLineBytes;
  std::size_t cacheBudgetMb = 0;
  std::string healthFile;
  double healthInterval = 1.0;

  mcx::cli::ArgParser parser(
      "mcx_serve",
      "Deadline-aware experiment service: JSON-lines requests on stdin (or a "
      "unix socket), one JSON response line per request, structured errors, "
      "bounded admission, graceful SIGTERM drain.");
  parser.add("--queue-depth", &options.queueDepth, "N",
             "admitted-but-unstarted requests held before shedding (default 64)");
  parser.add("--request-threads", &options.requestThreads, "N",
             "concurrent request executors (default 1)");
  parser.add("--pool-threads", &options.poolThreads, "N",
             "sample-pool parallelism shared by all requests (0 = hardware)");
  parser.add("--default-deadline-ms", &defaultDeadline, "MS",
             "deadline applied to requests without deadline_ms (0 = none)");
  parser.add("--max-samples", &maxSamples, "N",
             "per-request sample cap enforced at parse time");
  parser.add("--max-line-bytes", &maxLineBytes, "N",
             "longest request line accepted; longer lines get a typed parse "
             "error with the observed length (default 1 MiB)");
  parser.add("--metrics-interval", &metricsInterval, "S",
             "flush the telemetry snapshot to stderr every S seconds (0 = off)");
  parser.add("--health-file", &healthFile, "PATH",
             "heartbeat the health snapshot to PATH (atomic rename; removed "
             "on clean exit)");
  parser.add("--health-interval", &healthInterval, "S",
             "seconds between health-file beats (default 1)");
  parser.add("--cache-budget-mb", &cacheBudgetMb, "MB",
             "bound the shared circuit cache; over budget the least recently "
             "used artifacts are evicted (0 = unbounded)");
  parser.add("--queue-cost-budget", &options.queueCostBudget, "UNITS",
             "summed cost (samples x learned circuit area) the queue holds "
             "before shedding (0 = count-only admission)");
  parser.add("--client-cost-rate", &options.clientCostRate, "UNITS",
             "per-client token bucket: cost units refilled per second "
             "(0 = off; each socket connection is a client)");
  parser.add("--client-cost-burst", &options.clientCostBurst, "UNITS",
             "per-client bucket capacity (0 = one second of rate)");
  parser.add("--batch-shed-fraction", &options.batchShedFraction, "F",
             "queue fullness at which batch-lane requests are shed first "
             "(default 0.5)");
  parser.addSwitch("--degrade",  &options.degradeSamples,
             "trim deadline-carrying requests' samples to the remaining "
             "budget; trimmed responses carry \"degraded\": true");
  parser.add("--watchdog-factor", &options.watchdogFactor, "N",
             "flag requests stuck in flight past N x the p99 request latency "
             "(0 = watchdog off)");
  parser.add("--socket", &socketPath, "PATH",
             "serve a unix stream socket instead of stdin/stdout");

  switch (parser.parse(argc, argv, std::cout, std::cerr)) {
    case mcx::cli::ArgParser::Outcome::Ok: break;
    case mcx::cli::ArgParser::Outcome::Handled: return 0;
    case mcx::cli::ArgParser::Outcome::Error: return 2;
  }
  options.defaultDeadlineMillis = defaultDeadline;
  options.limits.maxSamples = maxSamples;
  options.limits.maxLineBytes = maxLineBytes;
  mcx::CircuitCache::global().setByteBudget(cacheBudgetMb * (std::size_t{1} << 20));

  try {
    mcx::faultinject::armFromEnv();
  } catch (const std::exception& e) {
    std::cerr << "mcx_serve: MCX_FAULTINJECT: " << e.what() << "\n";
    return 2;
  }
  // MCX_TRACE / MCX_PROFILE arm tracing and hot-path profiling; a periodic
  // metrics flush arms profiling too so its snapshots carry the gated
  // counters. Bad trace paths warn and leave tracing off (armTraceFromEnv).
  mcx::obs::armTraceFromEnv();
  mcx::obs::armProfilingFromEnv();
  if (metricsInterval > 0) mcx::obs::setProfiling(true);

  if (!installSignalHandlers()) {
    std::cerr << "mcx_serve: failed to install signal handlers\n";
    return 1;
  }

  int exitCode = 0;
  {
    mcx::serve::ExperimentService service(options, [](const std::string& line) {
      std::cout << line << "\n" << std::flush;
    });
    const MetricsFlusher flusher(service, metricsInterval);
    const HealthBeat health(service, healthFile, healthInterval);

    if (socketPath.empty())
      runStdinLoop(service);
    else
      exitCode = runSocketLoop(service, socketPath);

    // Graceful drain: stop admitting, finish everything admitted. The
    // counters are the service's last words, flushed to stderr so response
    // parsing on stdout never sees them.
    service.drain();
    const int sig = gSignal.load(std::memory_order_relaxed);
    if (sig != 0)
      std::cerr << "mcx_serve: received " << (sig == SIGTERM ? "SIGTERM" : "SIGINT")
                << ", drained\n";
    std::cerr << service.countersJson(false) << std::endl;
  }
  return exitCode;
}
