// Multi-level synthesis on structured vs unstructured functions.
//
// Demonstrates when the paper's multi-level design wins: a structured
// function (product-of-sums, the t481-like case) collapses to a handful of
// NAND gates, while a random SOP of the same product count does not factor
// and the multi-level connection columns outweigh the savings. Also shows
// the dual (complement) optimization and the fan-in-bound tradeoff.
#include <iostream>

#include "benchdata/registry.hpp"
#include "benchdata/synthetic.hpp"
#include "logic/espresso.hpp"
#include "logic/isop.hpp"
#include "logic/generators.hpp"
#include "netlist/nand_mapper.hpp"
#include "util/text_table.hpp"
#include "xbar/area_model.hpp"

int main() {
  using namespace mcx;

  TextTable table({"function", "I", "O", "P", "two-level", "gates", "multi-level", "winner"});
  auto addRow = [&table](const std::string& name, const Cover& cover) {
    const NandNetwork net = mapToNand(cover);
    const std::size_t two = twoLevelDims(cover).area();
    const std::size_t multi = multiLevelDims(net).area();
    table.addRow({name, std::to_string(cover.nin()), std::to_string(cover.nout()),
                  std::to_string(cover.size()), std::to_string(two),
                  std::to_string(net.gateCount()), std::to_string(multi),
                  multi < two ? "multi-level" : "two-level"});
  };

  // Structured: the t481-like product-of-sums stand-in.
  addRow("t481 stand-in", loadBenchmarkFast("t481").cover);

  // Unstructured: a random SOP with the same shape.
  Rng rng(2718);
  RandomSopOptions random;
  random.nin = 16;
  random.nout = 1;
  random.products = 256;
  random.literalsPerProduct = 4.0;
  addRow("random SOP, same shape", randomSop(random, rng));

  // The paper's Fig. 5 example.
  addRow("fig5 example", [] {
    Cover c(8, 1);
    c.add(makeCube("1-------", "1"));
    c.add(makeCube("-1------", "1"));
    c.add(makeCube("--1-----", "1"));
    c.add(makeCube("---1----", "1"));
    c.add(makeCube("----1111", "1"));
    return c;
  }());

  // Parity: the classic two-level worst case.
  addRow("parity-8", espressoMinimize(isopCover(parityFunction(8))));

  std::cout << "Two-level vs multi-level crossbar area:\n" << table << "\n";

  // Dual optimization on a generated benchmark.
  const Cover sqrt8on = espressoMinimize(isopCover(sqrtFunction(8)));
  const Cover sqrt8off = espressoMinimize(isopCover(sqrtFunction(8).complemented()));
  std::cout << "Dual optimization (sqrt8): original P = " << sqrt8on.size()
            << " (area " << twoLevelDims(sqrt8on).area() << "), complement P = "
            << sqrt8off.size() << " (area " << twoLevelDims(sqrt8off).area()
            << ") -> implement " << (twoLevelDims(sqrt8off).area() < twoLevelDims(sqrt8on).area()
                                         ? "the complement (as the paper does)"
                                         : "the original")
            << "\n\n";

  // Fan-in bound sweep on the structured function.
  const Cover structured = productOfSumsCover(16, {4, 4, 4, 4});
  TextTable fanin({"max fan-in", "gates", "levels", "multi-level area"});
  for (const std::size_t k : {std::size_t{2}, std::size_t{3}, std::size_t{4}, std::size_t{8},
                              std::size_t{0}}) {
    NandMapOptions opts;
    opts.maxFanin = k;
    const NandNetwork net = mapToNand(structured, opts);
    fanin.addRow({k == 0 ? "unbounded" : std::to_string(k), std::to_string(net.gateCount()),
                  std::to_string(net.levelCount()),
                  std::to_string(multiLevelDims(net).area())});
  }
  std::cout << "Fan-in bound tradeoff (t481-like function):\n" << fanin;
  return 0;
}
