// Defect-tolerant mapping walkthrough: the paper's Figs. 7 and 8.
//
// O1 = x1 x2 + x2 x3, O2 = x1 x3 + x2 x3 must be mapped onto a 6x10
// crossbar with stuck-at-open defects. The naive mapping is invalid; the
// hybrid algorithm (HBA) finds a valid row permutation, which the
// behavioral simulator then confirms computes the right function.
#include <iostream>

#include "logic/truth_table.hpp"
#include "map/exact_mapper.hpp"
#include "map/hybrid_mapper.hpp"
#include "sim/crossbar_sim.hpp"
#include "xbar/defects.hpp"
#include "xbar/layout.hpp"

int main() {
  using namespace mcx;

  Cover cover(3, 2);
  cover.add(makeCube("11-", "10"));  // m1 = x1 x2 -> O1
  cover.add(makeCube("-11", "10"));  // m2 = x2 x3 -> O1
  cover.add(makeCube("1-1", "01"));  // m3 = x1 x3 -> O2
  cover.add(makeCube("-11", "01"));  // m4 = x2 x3 -> O2
  std::cout << "O1 = x1 x2 + x2 x3,  O2 = x1 x3 + x2 x3   (paper Figs. 7/8)\n\n";

  const TwoLevelLayout layout = buildTwoLevelLayout(cover);
  std::cout << "Function matrix (FM), '#' = required active switch:\n"
            << layout.fm.bits().toString('.', '#') << "\n";

  // The Fig. 8(b) defect pattern (stuck-at-open crosspoints).
  DefectMap defects(6, 10);
  const char* cmRows[6] = {"1010111101", "1111111111", "0011111111",
                           "1011011111", "1101111111", "1110111011"};
  for (std::size_t r = 0; r < 6; ++r)
    for (std::size_t c = 0; c < 10; ++c)
      if (cmRows[r][c] == '0') defects.setType(r, c, DefectType::StuckOpen);
  const BitMatrix cm = crossbarMatrix(defects);
  std::cout << "Crossbar matrix (CM), '.' = stuck-at-open:\n" << cm.toString('.', '1') << "\n";

  // Naive mapping (Fig. 7(a)).
  const auto naive = identityAssignment(layout.fm.rows());
  MappingResult naiveResult;
  naiveResult.success = true;
  naiveResult.rowAssignment = naive;
  std::cout << "naive identity mapping valid? "
            << (verifyMapping(layout.fm, cm, naiveResult) ? "yes" : "NO") << "\n";
  std::cout << "  simulated mismatches with naive mapping: "
            << countTwoLevelMismatches(layout, naive, defects) << " of 16 checks\n\n";

  // Hybrid algorithm (Fig. 7(b) / Algorithm 1).
  const MappingResult hba = HybridMapper().map(layout.fm, cm);
  if (!hba.success) {
    std::cout << "HBA found no mapping (unexpected for this example)\n";
    return 1;
  }
  std::cout << "HBA mapping (FM row -> crossbar row, " << hba.backtracks
            << " backtrack repairs):\n";
  const char* names[6] = {"m1", "m2", "m3", "m4", "O1", "O2"};
  for (std::size_t i = 0; i < hba.rowAssignment.size(); ++i)
    std::cout << "  " << names[i] << " -> H" << hba.rowAssignment[i] + 1 << "\n";
  std::cout << "  valid? " << (verifyMapping(layout.fm, cm, hba) ? "yes" : "NO") << "\n";
  std::cout << "  simulated mismatches after remapping: "
            << countTwoLevelMismatches(layout, hba.rowAssignment, defects) << "\n\n";

  // The exact algorithm agrees.
  const MappingResult ea = ExactMapper().map(layout.fm, cm);
  std::cout << "EA (full Munkres) also finds a mapping: " << (ea.success ? "yes" : "no")
            << "\n";
  return countTwoLevelMismatches(layout, hba.rowAssignment, defects) == 0 ? 0 : 1;
}
