// Yield explorer: how much redundancy buys how much mapping success.
//
// The paper leaves redundant-line yield analysis as future work (Section
// VI); this example walks a benchmark across defect rates and spare-line
// budgets, including stuck-at-closed defects — which are untolerable on an
// optimum-size crossbar but absorbable with spare rows and column pairs.
#include <iostream>

#include "benchdata/registry.hpp"
#include "map/redundant_mapper.hpp"
#include "mc/stats.hpp"
#include "util/env.hpp"
#include "util/text_table.hpp"
#include "xbar/function_matrix.hpp"

int main() {
  using namespace mcx;

  const std::size_t samples = envSizeT("MCX_SAMPLES", 100);
  const BenchmarkCircuit bench = loadBenchmarkFast("misex1");
  const FunctionMatrix fm = buildFunctionMatrix(bench.cover);
  std::cout << "circuit: " << bench.info.name << "  (" << fm.rows() << "x" << fm.cols()
            << " optimum crossbar, " << samples << " Monte Carlo samples per cell)\n\n";

  const double stuckOpen = 0.05;
  const double stuckClosed = 0.005;
  std::cout << "defect rates: " << stuckOpen * 100 << "% stuck-open, " << stuckClosed * 100
            << "% stuck-closed (stuck-closed poisons a whole row AND column)\n\n";

  TextTable table({"spare rows", "spare in-pairs", "spare out-pairs", "success rate"});
  for (const std::size_t spare : {0u, 1u, 2u, 4u, 8u}) {
    RedundantCrossbarSpec spec;
    spec.spareRows = spare;
    spec.spareInputPairs = spare / 2;
    spec.spareOutputPairs = spare / 2;
    const CrossbarDims dims = redundantDims(fm, spec);
    const RedundantMapper mapper(spec);

    Rng rng(97 + spare);
    std::size_t successes = 0;
    for (std::size_t s = 0; s < samples; ++s) {
      Rng sampleRng = rng.split();
      const DefectMap defects =
          DefectMap::sample(dims.rows, dims.cols, stuckOpen, stuckClosed, sampleRng);
      if (mapper.map(fm, defects, 1000 + s).success) ++successes;
    }
    const double rate = static_cast<double>(successes) / static_cast<double>(samples);
    table.addRow({std::to_string(spare), std::to_string(spec.spareInputPairs),
                  std::to_string(spec.spareOutputPairs),
                  TextTable::percent(rate) + " +/- " +
                      TextTable::percent(wilsonHalfWidth(successes, samples), 1)});
  }
  std::cout << table;
  std::cout << "\nWith zero spares any stuck-closed defect is fatal (Section IV-A of the\n"
               "paper); spare lines recover most of the yield.\n";
  return 0;
}
