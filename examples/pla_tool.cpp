// pla_tool: a small command-line front end over the library.
//
// Reads an espresso-format PLA, reports the crossbar statistics the paper
// uses (P, area cost, inclusion ratio), and optionally minimizes the cover,
// compares against the dual, maps it onto a randomly defective optimum-size
// crossbar with HBA and EA, or re-emits the (minimized) PLA. See --help.
#include <iostream>
#include <optional>
#include <string>

#include "logic/espresso.hpp"
#include "logic/pla.hpp"
#include "map/exact_mapper.hpp"
#include "map/hybrid_mapper.hpp"
#include "netlist/nand_mapper.hpp"
#include "util/arg_parser.hpp"
#include "util/error.hpp"
#include "util/stopwatch.hpp"
#include "xbar/defects.hpp"
#include "xbar/function_matrix.hpp"
#include "xbar/layout.hpp"

namespace {

void report(const char* label, const mcx::Cover& cover) {
  const mcx::FunctionMatrix fm = mcx::buildFunctionMatrix(cover);
  std::cout << label << ": I=" << cover.nin() << " O=" << cover.nout()
            << " P=" << cover.size() << "  area=" << fm.dims().area() << " (" << fm.dims().rows
            << "x" << fm.dims().cols << ")  IR="
            << static_cast<int>(100.0 * fm.inclusionRatio() + 0.5) << "%\n";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mcx;

  std::string plaPath;
  bool minimize = false, dual = false, multilevel = false, writeBack = false;
  std::optional<double> mapRate;
  std::uint64_t seed = 1;

  cli::ArgParser parser("pla_tool", "crossbar statistics and mapping for PLA files");
  parser.addPositional("file.pla", &plaPath, "espresso-format PLA input");
  parser.addSwitch("--minimize", &minimize, "espresso-minimize the cover first");
  parser.addSwitch("--dual", &dual, "compare against the minimized complement");
  parser.addSwitch("--multilevel", &multilevel, "report the multi-level NAND design");
  parser.addSwitch("--write-pla", &writeBack, "re-emit the (minimized) PLA");
  parser.add("--map", &mapRate, "RATE", "map onto a crossbar with this stuck-open rate");
  parser.add("--seed", &seed, "N", "defect-sampling seed (default 1)");
  switch (parser.parse(argc, argv, std::cout, std::cerr)) {
    case cli::ArgParser::Outcome::Handled: return 0;
    case cli::ArgParser::Outcome::Error: return 2;
    case cli::ArgParser::Outcome::Ok: break;
  }

  try {
    const PlaFile pla = readPlaFile(plaPath);
    Cover cover = pla.on;
    report("input", cover);

    if (minimize) {
      Stopwatch watch;
      cover = espressoMinimize(pla.on, pla.dc);
      std::cout << "minimized in " << watch.millis() << " ms\n";
      report("minimized", cover);
    }

    if (dual) {
      const Cover comp = espressoMinimize(complementCover(pla.on, pla.dc));
      report("dual (complement)", comp);
      if (twoLevelDims(comp).area() < twoLevelDims(cover).area())
        std::cout << "  -> the dual is smaller; the crossbar's free output inversion makes it\n"
                     "     the better implementation (paper Section I, bold rows of Table II)\n";
    }

    if (multilevel) {
      const NandNetwork net = mapToNand(cover);
      const auto dims = multiLevelDims(net);
      std::cout << "multi-level: G=" << net.gateCount() << " C=" << net.interconnectCount()
                << "  area=" << dims.area() << " (" << dims.rows << "x" << dims.cols << ")\n";
    }

    if (mapRate) {
      const FunctionMatrix fm = buildFunctionMatrix(cover);
      Rng rng(seed);
      const DefectMap defects = DefectMap::sample(fm.rows(), fm.cols(), *mapRate, 0.0, rng);
      const BitMatrix cm = crossbarMatrix(defects);
      for (const auto& [name, result] :
           {std::pair<const char*, MappingResult>{"HBA", HybridMapper().map(fm, cm)},
            std::pair<const char*, MappingResult>{"EA", ExactMapper().map(fm, cm)}}) {
        std::cout << name << " at " << *mapRate * 100 << "% stuck-open: "
                  << (result.success ? "valid mapping found" : "no mapping") << "\n";
      }
    }

    if (writeBack) std::cout << writePla(cover);
  } catch (const Error& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  return 0;
}
