// pla_tool: a small command-line front end over the library.
//
// Usage:
//   pla_tool <file.pla> [--minimize] [--dual] [--multilevel]
//            [--map <defect-rate>] [--seed <n>] [--write-pla]
//
// Reads an espresso-format PLA, reports the crossbar statistics the paper
// uses (P, area cost, inclusion ratio), and optionally minimizes the cover,
// compares against the dual, maps it onto a randomly defective optimum-size
// crossbar with HBA and EA, or re-emits the (minimized) PLA.
#include <cstring>
#include <iostream>
#include <optional>
#include <string>

#include "logic/espresso.hpp"
#include "logic/pla.hpp"
#include "map/exact_mapper.hpp"
#include "map/hybrid_mapper.hpp"
#include "netlist/nand_mapper.hpp"
#include "util/error.hpp"
#include "util/stopwatch.hpp"
#include "xbar/defects.hpp"
#include "xbar/function_matrix.hpp"
#include "xbar/layout.hpp"

namespace {

void report(const char* label, const mcx::Cover& cover) {
  const mcx::FunctionMatrix fm = mcx::buildFunctionMatrix(cover);
  std::cout << label << ": I=" << cover.nin() << " O=" << cover.nout()
            << " P=" << cover.size() << "  area=" << fm.dims().area() << " (" << fm.dims().rows
            << "x" << fm.dims().cols << ")  IR="
            << static_cast<int>(100.0 * fm.inclusionRatio() + 0.5) << "%\n";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mcx;
  if (argc < 2) {
    std::cerr << "usage: pla_tool <file.pla> [--minimize] [--dual] [--multilevel]\n"
                 "                [--map <defect-rate>] [--seed <n>] [--write-pla]\n";
    return 2;
  }

  bool minimize = false, dual = false, multilevel = false, writeBack = false;
  std::optional<double> mapRate;
  std::uint64_t seed = 1;
  for (int i = 2; i < argc; ++i) {
    if (!std::strcmp(argv[i], "--minimize")) minimize = true;
    else if (!std::strcmp(argv[i], "--dual")) dual = true;
    else if (!std::strcmp(argv[i], "--multilevel")) multilevel = true;
    else if (!std::strcmp(argv[i], "--write-pla")) writeBack = true;
    else if (!std::strcmp(argv[i], "--map") && i + 1 < argc) mapRate = std::stod(argv[++i]);
    else if (!std::strcmp(argv[i], "--seed") && i + 1 < argc) seed = std::stoull(argv[++i]);
    else {
      std::cerr << "unknown option: " << argv[i] << "\n";
      return 2;
    }
  }

  try {
    const PlaFile pla = readPlaFile(argv[1]);
    Cover cover = pla.on;
    report("input", cover);

    if (minimize) {
      Stopwatch watch;
      cover = espressoMinimize(pla.on, pla.dc);
      std::cout << "minimized in " << watch.millis() << " ms\n";
      report("minimized", cover);
    }

    if (dual) {
      const Cover comp = espressoMinimize(complementCover(pla.on, pla.dc));
      report("dual (complement)", comp);
      if (twoLevelDims(comp).area() < twoLevelDims(cover).area())
        std::cout << "  -> the dual is smaller; the crossbar's free output inversion makes it\n"
                     "     the better implementation (paper Section I, bold rows of Table II)\n";
    }

    if (multilevel) {
      const NandNetwork net = mapToNand(cover);
      const auto dims = multiLevelDims(net);
      std::cout << "multi-level: G=" << net.gateCount() << " C=" << net.interconnectCount()
                << "  area=" << dims.area() << " (" << dims.rows << "x" << dims.cols << ")\n";
    }

    if (mapRate) {
      const FunctionMatrix fm = buildFunctionMatrix(cover);
      Rng rng(seed);
      const DefectMap defects = DefectMap::sample(fm.rows(), fm.cols(), *mapRate, 0.0, rng);
      const BitMatrix cm = crossbarMatrix(defects);
      for (const auto& [name, result] :
           {std::pair<const char*, MappingResult>{"HBA", HybridMapper().map(fm, cm)},
            std::pair<const char*, MappingResult>{"EA", ExactMapper().map(fm, cm)}}) {
        std::cout << name << " at " << *mapRate * 100 << "% stuck-open: "
                  << (result.success ? "valid mapping found" : "no mapping") << "\n";
      }
    }

    if (writeBack) std::cout << writePla(cover);
  } catch (const Error& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  return 0;
}
