// pla_tool: a thin command-line front end over the circuit pipeline.
//
// Reads an espresso-format PLA and reports the crossbar statistics the
// paper uses (P, area cost, inclusion ratio). Synthesis and realization are
// circuit-pipeline declarations (circuit/spec.hpp) — this tool no longer
// hand-rolls espresso/NAND-mapping/defect plumbing: --minimize flips the
// spec's synth knob, --multilevel its realize knob, and --map runs a Monte
// Carlo defect-mapping experiment through ExperimentBuilder. See --help.
#include <iostream>
#include <optional>
#include <string>

#include "api/experiment.hpp"
#include "circuit/cache.hpp"
#include "logic/espresso.hpp"
#include "logic/pla.hpp"
#include "util/arg_parser.hpp"
#include "util/error.hpp"
#include "xbar/area_model.hpp"

namespace {

void report(const char* stage, const mcx::Circuit& circuit) {
  const mcx::Cover& cover = circuit.cover;
  std::cout << stage << ": I=" << cover.nin() << " O=" << cover.nout()
            << " P=" << cover.size() << "  area=" << circuit.dims().area() << " ("
            << circuit.fm.rows() << "x" << circuit.fm.cols() << ")  IR="
            << static_cast<int>(100.0 * circuit.fm.inclusionRatio() + 0.5) << "%\n";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mcx;

  std::string plaPath;
  bool minimize = false, dual = false, multilevel = false, writeBack = false;
  std::optional<double> mapRate;
  std::size_t samples = 100;
  std::uint64_t seed = 1;

  cli::ArgParser parser("pla_tool", "crossbar statistics and mapping for PLA files");
  parser.addPositional("file.pla", &plaPath, "espresso-format PLA input");
  parser.addSwitch("--minimize", &minimize, "espresso-minimize the cover first");
  parser.addSwitch("--dual", &dual, "compare against the minimized complement");
  parser.addSwitch("--multilevel", &multilevel, "report the multi-level NAND design");
  parser.addSwitch("--write-pla", &writeBack, "re-emit the (minimized) PLA");
  parser.add("--map", &mapRate, "RATE",
             "Monte Carlo defect-mapping success (HBA and EA) at this stuck-open rate");
  parser.add("--samples", &samples, "N", "samples for --map (default 100)");
  parser.add("--seed", &seed, "N", "defect-sampling seed (default 1)");
  switch (parser.parse(argc, argv, std::cout, std::cerr)) {
    case cli::ArgParser::Outcome::Handled: return 0;
    case cli::ArgParser::Outcome::Error: return 2;
    case cli::ArgParser::Outcome::Ok: break;
  }

  try {
    // The whole front end is one declaration; everything below reads the
    // compiled artifacts (and repeated compiles hit the memo cache).
    CircuitSpec spec = circuitSourceSpec("file:" + plaPath);
    const std::shared_ptr<const Circuit> input = compileCircuit(spec);
    report("input", *input);

    spec.synth = minimize ? CircuitSpec::Synth::Espresso : CircuitSpec::Synth::None;
    std::shared_ptr<const Circuit> circuit = input;
    if (minimize) {
      circuit = compileCircuit(spec);
      std::cout << "minimized in " << circuit->stats.synthMillis << " ms\n";
      report("minimized", *circuit);
    }

    if (dual) {
      const Cover comp = espressoMinimize(complementCover(input->cover, input->dc));
      const std::size_t compArea = twoLevelDims(comp).area();
      std::cout << "dual (complement): I=" << comp.nin() << " O=" << comp.nout()
                << " P=" << comp.size() << "  area=" << compArea << "\n";
      if (compArea < circuit->dims().area())
        std::cout << "  -> the dual is smaller; the crossbar's free output inversion makes it\n"
                     "     the better implementation (paper Section I, bold rows of Table II)\n";
    }

    if (multilevel) {
      CircuitSpec mlSpec = spec;
      mlSpec.realize = CircuitSpec::Realize::MultiLevel;
      const std::shared_ptr<const Circuit> ml = compileCircuit(mlSpec);
      std::cout << "multi-level: G=" << ml->layout->network.gateCount()
                << " C=" << ml->layout->network.interconnectCount() << "  area="
                << ml->dims().area() << " (" << ml->fm.rows() << "x" << ml->fm.cols()
                << ")\n";
    }

    if (mapRate) {
      for (const char* mapper : {"hba", "ea"}) {
        const ExperimentResult r = ExperimentBuilder()
                                       .circuit(spec)
                                       .mapper(mapper)
                                       .legacyRates(*mapRate)
                                       .samples(samples)
                                       .seed(seed)
                                       .run();
        std::cout << r.mapper << " at " << *mapRate * 100 << "% stuck-open: "
                  << r.outcome.successes << "/" << r.outcome.samples
                  << " samples mapped\n";
      }
    }

    if (writeBack) std::cout << writePla(circuit->cover);
  } catch (const Error& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  return 0;
}
