// Quickstart: the paper's running example through the public mcx:: facade.
//
// Builds f = x1 + x2 + x3 + x4 + x5 x6 x7 x8 (Fig. 3 / Fig. 5), lays it out
// on a two-level and a multi-level crossbar, then runs defect-mapping
// experiments the way every tool in this repo does now: declared with
// ExperimentBuilder, resolved through the mapper and scenario registries,
// serialized with the uniform ExperimentResult JSON.
#include <iostream>

#include "api/experiment.hpp"
#include "circuit/cache.hpp"
#include "circuit/registry.hpp"
#include "logic/sop_parser.hpp"
#include "logic/truth_table.hpp"
#include "netlist/nand_mapper.hpp"
#include "sim/crossbar_sim.hpp"
#include "xbar/layout.hpp"
#include "xbar/multilevel_layout.hpp"

int main() {
  using namespace mcx;

  const Cover f = parseSop("x1 + x2 + x3 + x4 + x5 x6 x7 x8");
  std::cout << "f = x1 + x2 + x3 + x4 + x5 x6 x7 x8   (paper Figs. 3 and 5)\n\n";

  // --- The two layouts (Fig. 3 / Fig. 5) ---------------------------------
  const TwoLevelLayout twoLevel = buildTwoLevelLayout(f);
  const MultiLevelLayout multiLevel = buildMultiLevelLayout(mapToNand(f));
  std::cout << "Two-level crossbar layout:\n" << twoLevel.toAsciiDiagram() << "\n";
  std::cout << "Multi-level crossbar layout:\n" << multiLevel.toAsciiDiagram() << "\n";
  std::cout << "area: " << twoLevel.dims().area() << " (two-level) -> "
            << multiLevel.dims().area() << " (multi-level)\n\n";

  // --- Defect-mapping experiments through the facade ---------------------
  // One base declaration; clones vary the axis under study. The registries
  // resolve mapper names ("hba", "ea", "fast-ea", ...) and scenario presets
  // ("paper-iid", "clustered", ...) — see `mcx_bench --list-mappers` and
  // `--list-scenarios`.
  ExperimentBuilder base;
  base.circuit("fig5", f).samples(200).seed(42);

  std::cout << "mapping success under 10% stuck-open (200 samples):\n";
  for (const char* mapper : {"greedy", "hba", "ea"}) {
    const ExperimentResult r =
        ExperimentBuilder(base).mapper(mapper).scenario("paper-iid", 0.10).run();
    std::cout << "  " << r.mapper << ": " << 100.0 * r.successRate() << "%\n";
  }

  std::cout << "\nHBA on the multi-level layout under clustered defects:\n";
  const ExperimentResult clustered =
      ExperimentBuilder(base).multiLevel().mapper("hba").scenario("clustered", 0.08).run();
  std::cout << clustered.toJson() << "\n";

  // --- The declarative circuit pipeline -----------------------------------
  // Circuits are full pipeline declarations too: source (registry name,
  // .pla file, inline text, generator), synthesis and realization, compiled
  // through a memoized front-end — the same spec never re-synthesizes. See
  // `mcx_bench --list-circuits` for the presets.
  const CircuitSpec rd53 =
      makeCircuitSpec(R"({"circuit":"gen:weight5","synth":"espresso","realize":"multilevel"})");
  const auto compiled = compileCircuit(rd53);
  std::cout << "\ncompiled " << rd53.canonical() << ":\n  P=" << compiled->stats.products
            << " (from " << compiled->stats.sourceProducts << " ISOP products), area "
            << compiled->dims().area() << ", synthesized in "
            << compiled->stats.synthMillis << " ms\n";
  compileCircuit(rd53);  // same declaration -> cache hit, no re-synthesis
  const CircuitCache::Stats cacheStats = CircuitCache::global().stats();
  std::cout << "  circuit cache: " << cacheStats.hits << " hits, " << cacheStats.misses
            << " misses\n";

  // --- Functional verification through the Snider-logic simulator ---------
  // Both clean layouts must compute f on all 256 inputs.
  const TruthTable ref = TruthTable::fromCover(f);
  const DefectMap cleanTwo(twoLevel.fm.rows(), twoLevel.fm.cols());
  const DefectMap cleanMulti(multiLevel.fm.rows(), multiLevel.fm.cols());
  const auto idTwo = identityAssignment(twoLevel.fm.rows());
  const auto idMulti = identityAssignment(multiLevel.fm.rows());
  std::size_t mismatches = 0;
  DynBits in(8);
  for (std::size_t m = 0; m < 256; ++m) {
    for (std::size_t v = 0; v < 8; ++v) in.set(v, ((m >> v) & 1u) != 0);
    if (simulateTwoLevel(twoLevel, idTwo, cleanTwo, in).test(0) != ref.get(0, m)) ++mismatches;
    if (simulateMultiLevel(multiLevel, idMulti, cleanMulti, in).test(0) != ref.get(0, m))
      ++mismatches;
  }
  std::cout << "\nsimulation check over all 256 inputs, both designs: " << mismatches
            << " mismatches\n";
  return mismatches == 0 ? 0 : 1;
}
