// Quickstart: the paper's running example, end to end.
//
// Builds f = x1 + x2 + x3 + x4 + x5 x6 x7 x8 (Fig. 3 / Fig. 5), lays it out
// on a two-level and a multi-level crossbar, prints both diagrams with their
// area costs and inclusion ratios, and verifies each crossbar functionally
// with the behavioral simulator.
#include <iostream>

#include "logic/sop_parser.hpp"
#include "logic/truth_table.hpp"
#include "netlist/nand_mapper.hpp"
#include "sim/crossbar_sim.hpp"
#include "xbar/layout.hpp"
#include "xbar/multilevel_layout.hpp"

int main() {
  using namespace mcx;

  const Cover f = parseSop("x1 + x2 + x3 + x4 + x5 x6 x7 x8");
  std::cout << "f = x1 + x2 + x3 + x4 + x5 x6 x7 x8   (paper Figs. 3 and 5)\n\n";

  // --- Two-level NAND-AND design (Fig. 3) --------------------------------
  const TwoLevelLayout twoLevel = buildTwoLevelLayout(f);
  std::cout << "Two-level crossbar layout:\n" << twoLevel.toAsciiDiagram();
  std::cout << "inclusion ratio = "
            << static_cast<int>(100.0 * twoLevel.fm.inclusionRatio() + 0.5) << "%\n";
  std::cout << "(the paper quotes 7x18 = 126 counting the input-latch line; "
               "its tables use rows = P + O, giving "
            << twoLevel.dims().rows << "x" << twoLevel.dims().cols << " = "
            << twoLevel.dims().area() << ")\n\n";

  // --- Multi-level design (Fig. 5) ----------------------------------------
  const NandNetwork net = mapToNand(f);
  const MultiLevelLayout multiLevel = buildMultiLevelLayout(net);
  std::cout << "Multi-level crossbar layout (" << net.gateCount() << " NAND gates, "
            << multiLevel.fm.numConnectionCols() << " connection column):\n"
            << multiLevel.toAsciiDiagram() << "\n";
  std::cout << "area reduction: " << twoLevel.dims().area() << " -> "
            << multiLevel.dims().area() << " ("
            << static_cast<int>(100.0 * multiLevel.dims().area() / twoLevel.dims().area())
            << "% of two-level)\n\n";

  // --- Functional verification through the Snider-logic simulator ---------
  const TruthTable ref = TruthTable::fromCover(f);
  const DefectMap cleanTwo(twoLevel.fm.rows(), twoLevel.fm.cols());
  const DefectMap cleanMulti(multiLevel.fm.rows(), multiLevel.fm.cols());
  const auto idTwo = identityAssignment(twoLevel.fm.rows());
  const auto idMulti = identityAssignment(multiLevel.fm.rows());
  std::size_t mismatches = 0;
  DynBits in(8);
  for (std::size_t m = 0; m < 256; ++m) {
    for (std::size_t v = 0; v < 8; ++v) in.set(v, ((m >> v) & 1u) != 0);
    if (simulateTwoLevel(twoLevel, idTwo, cleanTwo, in).test(0) != ref.get(0, m)) ++mismatches;
    if (simulateMultiLevel(multiLevel, idMulti, cleanMulti, in).test(0) != ref.get(0, m))
      ++mismatches;
  }
  std::cout << "simulation check over all 256 inputs, both designs: " << mismatches
            << " mismatches\n";
  return mismatches == 0 ? 0 : 1;
}
