// The synthesis pipeline: compile a CircuitSpec into a Circuit artifact.
//
// A Circuit bundles everything the experiment layers consume — the
// post-synthesis cover, the crossbar FunctionMatrix, the multi-level layout
// (when realized multi-level) and the synthesis statistics. buildCircuit is
// the uncached compile; circuit/cache.hpp memoizes it by content so
// repeated experiments over the same declaration skip re-synthesis.
//
// Bit-identity contract: a Registry spec with synth=none reproduces exactly
// the covers the experiment suites always used (loadBenchmarkFast +
// buildFunctionMatrix / mapToNand with default options) — the committed
// BENCH_*.json success counts stay the regression anchor of this front-end.
#pragma once

#include <optional>
#include <string>

#include "circuit/spec.hpp"
#include "logic/cover.hpp"
#include "xbar/function_matrix.hpp"
#include "xbar/multilevel_layout.hpp"

namespace mcx {

struct CircuitSynthStats {
  std::size_t sourceProducts = 0;  ///< P of the source cover, pre-synthesis
  std::size_t products = 0;        ///< P after the synthesis step
  double sourceMillis = 0.0;       ///< load/parse/generate time
  double synthMillis = 0.0;        ///< minimization time
  double realizeMillis = 0.0;      ///< crossbar realization time
};

/// The compiled artifact of a CircuitSpec.
struct Circuit {
  CircuitSpec spec;
  std::string label;
  Cover cover;  ///< post-synthesis cover (the FM's product rows, in order)
  Cover dc;     ///< source don't-care set (PLA sources; empty otherwise)
  FunctionMatrix fm;
  /// Realization metadata for multi-level circuits (gate network, row ->
  /// connection-column binding); nullopt for two-level realizations.
  std::optional<MultiLevelLayout> layout;
  CircuitSynthStats stats;

  CrossbarDims dims() const { return fm.dims(); }

  /// Approximate heap footprint of the artifact (covers, bit matrix,
  /// layout) — the cost the memo cache charges against its byte budget.
  /// An estimate, not an accounting: monotone in circuit size and within a
  /// small constant factor of the real allocation.
  std::size_t estimatedBytes() const;
};

/// Stage 1 of the pipeline — source + synthesis, no realization. This is
/// the expensive stage (file parse, espresso/QM/ISOP), and its identity is
/// CircuitSpec::synthCanonical(): every realization variant of the same
/// declaration shares one synthesized cover in the memo cache.
struct SynthesizedCover {
  Cover on;   ///< post-synthesis ON cover
  Cover dc;   ///< source don't-care set (PLA sources; empty otherwise)
  std::size_t sourceProducts = 0;
  double sourceMillis = 0.0;
  double synthMillis = 0.0;

  /// Approximate heap footprint (see Circuit::estimatedBytes).
  std::size_t estimatedBytes() const;
};
SynthesizedCover buildSynthesizedCover(const CircuitSpec& spec);

/// Stage 2 — realize a synthesized cover onto the crossbar per the spec's
/// realize/factoring/maxFanin knobs.
Circuit realizeCircuit(const CircuitSpec& spec, const SynthesizedCover& synthesized);

/// Compile a spec, uncached (both stages). Throws mcx::ParseError for
/// unparsable sources, mcx::InvalidArgument for semantically impossible
/// pipelines (unknown registry name, qm/isop beyond their arity bounds,
/// synthesis steps on registry circuits other than none/espresso).
Circuit buildCircuit(const CircuitSpec& spec);

}  // namespace mcx
