#include "circuit/cache.hpp"

#include <algorithm>
#include <fstream>
#include <limits>
#include <sstream>
#include <utility>

#include "circuit/registry.hpp"
#include "logic/pla.hpp"
#include "obs/metrics.hpp"
#include "util/error.hpp"

namespace mcx {

namespace {

std::string readFileBytes(const std::string& path) {
  std::ifstream file(path, std::ios::binary);
  if (!file) throw ParseError("cannot open PLA file: " + path);
  std::ostringstream bytes;
  bytes << file.rdbuf();
  return bytes.str();
}

}  // namespace

namespace {

/// Source bytes behind the declaration: file content for File sources, the
/// exact cube-list serialization for Cover sources; empty otherwise
/// (registry/generator names and inline text are in the canonical string).
std::string contentSuffix(const CircuitSpec& spec) {
  switch (spec.source) {
    case CircuitSpec::Source::File:
      return '\n' + readFileBytes(spec.name);
    case CircuitSpec::Source::Cover:
      MCX_REQUIRE(spec.cover.has_value(), "circuit spec: Cover source without a cover");
      // Serialized fresh on every lookup: a cached serialization living
      // next to a mutable `cover` field could go stale and silently key
      // the wrong circuit, and the O(products) string build is noise next
      // to the experiment the compile feeds.
      return '\n' + writePla(*spec.cover);
    default:
      return {};
  }
}

}  // namespace

std::string circuitContentKey(const CircuitSpec& spec) {
  return spec.canonical() + contentSuffix(spec);
}

std::string circuitSynthContentKey(const CircuitSpec& spec) {
  return spec.synthCanonical() + contentSuffix(spec);
}

std::uint64_t fnv1a64(const std::string& text) {
  std::uint64_t hash = 0xcbf29ce484222325ull;
  for (const char c : text) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 0x100000001b3ull;
  }
  return hash;
}

CircuitCache& CircuitCache::global() {
  static CircuitCache cache;
  // Only the process-wide instance drives the registry gauge: tests build
  // private caches whose footprints would otherwise fight over one value.
  static const bool armed = (cache.publishGauge_ = true);
  (void)armed;
  return cache;
}

namespace {

template <typename Buckets>
auto* findEntry(Buckets& buckets, std::uint64_t hash, const std::string& key) {
  auto& bucket = buckets[hash];
  for (auto& entry : bucket)
    if (entry.key == key) return &entry;
  return static_cast<decltype(bucket.data())>(nullptr);
}

/// Registry mirrors of Stats. The struct stays the resettable per-cache
/// view (clear() zeroes it; tests pin that); the registry counters are the
/// process-monotonic view the stats snapshot exposes.
obs::Counter& cacheHitCounter() {
  static obs::Counter& c = obs::Registry::global().counter("circuit.cache.hits");
  return c;
}
obs::Counter& cacheMissCounter() {
  static obs::Counter& c = obs::Registry::global().counter("circuit.cache.misses");
  return c;
}
obs::Counter& coverHitCounter() {
  static obs::Counter& c = obs::Registry::global().counter("circuit.cache.cover_hits");
  return c;
}
obs::Counter& coverMissCounter() {
  static obs::Counter& c = obs::Registry::global().counter("circuit.cache.cover_misses");
  return c;
}
obs::Counter& evictionCounter() {
  static obs::Counter& c = obs::Registry::global().counter("circuit.cache.evictions");
  return c;
}
obs::Counter& evictedBytesCounter() {
  static obs::Counter& c = obs::Registry::global().counter("circuit.cache.evicted_bytes");
  return c;
}
obs::Gauge& cacheBytesGauge() {
  static obs::Gauge& g = obs::Registry::global().gauge("circuit.cache_bytes");
  return g;
}

/// Evict the least-recently-used entry across one bucket level; returns the
/// freed byte count (0 when the level is empty).
template <typename Buckets>
std::size_t evictOldest(Buckets& buckets, std::uint64_t* oldestStampOut) {
  std::uint64_t oldest = std::numeric_limits<std::uint64_t>::max();
  typename Buckets::iterator oldestBucket = buckets.end();
  std::size_t oldestIndex = 0;
  for (auto it = buckets.begin(); it != buckets.end(); ++it) {
    for (std::size_t i = 0; i < it->second.size(); ++i) {
      if (it->second[i].lastUse < oldest) {
        oldest = it->second[i].lastUse;
        oldestBucket = it;
        oldestIndex = i;
      }
    }
  }
  if (oldestBucket == buckets.end()) return 0;
  const std::size_t freed = oldestBucket->second[oldestIndex].bytes;
  oldestBucket->second.erase(oldestBucket->second.begin() +
                             static_cast<std::ptrdiff_t>(oldestIndex));
  if (oldestBucket->second.empty()) buckets.erase(oldestBucket);
  if (oldestStampOut) *oldestStampOut = oldest;
  return freed;
}

}  // namespace

void CircuitCache::publishBytesLocked() {
  if (publishGauge_) cacheBytesGauge().set(static_cast<std::int64_t>(totalBytes_));
}

void CircuitCache::enforceBudgetLocked() {
  // Joint LRU across both memo stages: whichever level holds the globally
  // oldest entry gives it up first. Handed-out shared_ptrs keep evicted
  // artifacts alive for their holders, so eviction can never corrupt a
  // result a concurrent compile() already returned — the bit-identity
  // guarantee costs nothing beyond the re-compile on the next miss.
  while (budget_ != 0 && totalBytes_ > budget_) {
    std::uint64_t circuitStamp = std::numeric_limits<std::uint64_t>::max();
    std::uint64_t coverStamp = std::numeric_limits<std::uint64_t>::max();
    // Probe both levels' oldest stamps without erasing: scan, then evict
    // from the level holding the older one.
    for (const auto& [hash, bucket] : circuits_)
      for (const auto& entry : bucket) circuitStamp = std::min(circuitStamp, entry.lastUse);
    for (const auto& [hash, bucket] : covers_)
      for (const auto& entry : bucket) coverStamp = std::min(coverStamp, entry.lastUse);
    std::size_t freed = 0;
    if (circuitStamp <= coverStamp && circuitStamp != std::numeric_limits<std::uint64_t>::max()) {
      freed = evictOldest(circuits_, nullptr);
    } else if (coverStamp != std::numeric_limits<std::uint64_t>::max()) {
      freed = evictOldest(covers_, nullptr);
    } else {
      break;  // both levels empty; nothing left to free
    }
    totalBytes_ -= std::min(freed, totalBytes_);
    ++stats_.evictions;
    stats_.evictedBytes += freed;
    evictionCounter().add(1);
    evictedBytesCounter().add(freed);
  }
  publishBytesLocked();
}

std::shared_ptr<const Circuit> CircuitCache::compile(const CircuitSpec& spec) {
  // The source content is read once and keys both stages.
  const std::string suffix = contentSuffix(spec);
  const std::string key = spec.canonical() + suffix;

  // Build while holding the lock: compilation is a front-end cost, and
  // serializing it means concurrent requests for the same spec do the work
  // exactly once. Holding the lock across insert + eviction also makes the
  // budget invariant atomic: no caller can observe currentBytes() above the
  // budget after any compile() returns.
  std::lock_guard<std::mutex> lock(mutex_);
  if (auto* entry = findEntry(circuits_, fnv1a64(key), key)) {
    ++stats_.hits;
    cacheHitCounter().add(1);
    entry->lastUse = ++useClock_;
    // The label is presentation, not identity: two specs differing only in
    // label share one compile, but each caller gets its own label back.
    // Relabeled variants are memoized under a label-discriminated key, so
    // the artifact copy happens once per distinct label, not per lookup.
    if (entry->value->label != spec.displayLabel()) {
      const std::string labeledKey = key + "\n#label=" + spec.displayLabel();
      const std::uint64_t labeledHash = fnv1a64(labeledKey);
      if (auto* labeled = findEntry(circuits_, labeledHash, labeledKey)) {
        labeled->lastUse = ++useClock_;
        return labeled->value;
      }
      auto relabeled = std::make_shared<Circuit>(*entry->value);
      relabeled->spec.label = spec.label;
      relabeled->label = spec.displayLabel();
      const std::size_t bytes = relabeled->estimatedBytes();
      circuits_[labeledHash].push_back({labeledKey, relabeled, bytes, ++useClock_});
      totalBytes_ += bytes;
      enforceBudgetLocked();
      return relabeled;
    }
    return entry->value;
  }
  ++stats_.misses;
  cacheMissCounter().add(1);

  // Synthesis stage, shared across realization variants of the declaration.
  const std::string synthKey = spec.synthCanonical() + suffix;
  const std::uint64_t synthHash = fnv1a64(synthKey);
  std::shared_ptr<const SynthesizedCover> synthesized;
  if (auto* entry = findEntry(covers_, synthHash, synthKey)) {
    ++stats_.coverHits;
    coverHitCounter().add(1);
    entry->lastUse = ++useClock_;
    synthesized = entry->value;
  } else {
    ++stats_.coverMisses;
    coverMissCounter().add(1);
    synthesized = std::make_shared<const SynthesizedCover>(buildSynthesizedCover(spec));
    const std::size_t bytes = synthesized->estimatedBytes();
    covers_[synthHash].push_back({synthKey, synthesized, bytes, ++useClock_});
    totalBytes_ += bytes;
  }

  auto circuit = std::make_shared<const Circuit>(realizeCircuit(spec, *synthesized));
  const std::size_t bytes = circuit->estimatedBytes();
  circuits_[fnv1a64(key)].push_back({key, circuit, bytes, ++useClock_});
  totalBytes_ += bytes;
  enforceBudgetLocked();
  return circuit;
}

CircuitCache::Stats CircuitCache::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

std::size_t CircuitCache::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::size_t entries = 0;
  for (const auto& [hash, bucket] : circuits_) entries += bucket.size();
  return entries;
}

void CircuitCache::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  circuits_.clear();
  covers_.clear();
  stats_ = {};
  totalBytes_ = 0;
  publishBytesLocked();
}

void CircuitCache::setByteBudget(std::size_t bytes) {
  std::lock_guard<std::mutex> lock(mutex_);
  budget_ = bytes;
  enforceBudgetLocked();
}

std::size_t CircuitCache::byteBudget() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return budget_;
}

std::size_t CircuitCache::currentBytes() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return totalBytes_;
}

std::shared_ptr<const Circuit> compileCircuit(const CircuitSpec& spec, bool useCache) {
  if (!useCache) return std::make_shared<const Circuit>(buildCircuit(spec));
  return CircuitCache::global().compile(spec);
}

std::shared_ptr<const Circuit> compileCircuit(const std::string& nameOrSpec, bool useCache) {
  return compileCircuit(makeCircuitSpec(nameOrSpec), useCache);
}

}  // namespace mcx
