#include "circuit/cache.hpp"

#include <fstream>
#include <sstream>
#include <utility>

#include "circuit/registry.hpp"
#include "logic/pla.hpp"
#include "obs/metrics.hpp"
#include "util/error.hpp"

namespace mcx {

namespace {

std::string readFileBytes(const std::string& path) {
  std::ifstream file(path, std::ios::binary);
  if (!file) throw ParseError("cannot open PLA file: " + path);
  std::ostringstream bytes;
  bytes << file.rdbuf();
  return bytes.str();
}

}  // namespace

namespace {

/// Source bytes behind the declaration: file content for File sources, the
/// exact cube-list serialization for Cover sources; empty otherwise
/// (registry/generator names and inline text are in the canonical string).
std::string contentSuffix(const CircuitSpec& spec) {
  switch (spec.source) {
    case CircuitSpec::Source::File:
      return '\n' + readFileBytes(spec.name);
    case CircuitSpec::Source::Cover:
      MCX_REQUIRE(spec.cover.has_value(), "circuit spec: Cover source without a cover");
      // Serialized fresh on every lookup: a cached serialization living
      // next to a mutable `cover` field could go stale and silently key
      // the wrong circuit, and the O(products) string build is noise next
      // to the experiment the compile feeds.
      return '\n' + writePla(*spec.cover);
    default:
      return {};
  }
}

}  // namespace

std::string circuitContentKey(const CircuitSpec& spec) {
  return spec.canonical() + contentSuffix(spec);
}

std::string circuitSynthContentKey(const CircuitSpec& spec) {
  return spec.synthCanonical() + contentSuffix(spec);
}

std::uint64_t fnv1a64(const std::string& text) {
  std::uint64_t hash = 0xcbf29ce484222325ull;
  for (const char c : text) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 0x100000001b3ull;
  }
  return hash;
}

CircuitCache& CircuitCache::global() {
  static CircuitCache cache;
  return cache;
}

namespace {

template <typename Buckets>
auto* findEntry(Buckets& buckets, std::uint64_t hash, const std::string& key) {
  auto& bucket = buckets[hash];
  for (auto& entry : bucket)
    if (entry.key == key) return &entry;
  return static_cast<decltype(bucket.data())>(nullptr);
}

/// Registry mirrors of Stats. The struct stays the resettable per-cache
/// view (clear() zeroes it; tests pin that); the registry counters are the
/// process-monotonic view the stats snapshot exposes.
obs::Counter& cacheHitCounter() {
  static obs::Counter& c = obs::Registry::global().counter("circuit.cache.hits");
  return c;
}
obs::Counter& cacheMissCounter() {
  static obs::Counter& c = obs::Registry::global().counter("circuit.cache.misses");
  return c;
}
obs::Counter& coverHitCounter() {
  static obs::Counter& c = obs::Registry::global().counter("circuit.cache.cover_hits");
  return c;
}
obs::Counter& coverMissCounter() {
  static obs::Counter& c = obs::Registry::global().counter("circuit.cache.cover_misses");
  return c;
}

}  // namespace

std::shared_ptr<const Circuit> CircuitCache::compile(const CircuitSpec& spec) {
  // The source content is read once and keys both stages.
  const std::string suffix = contentSuffix(spec);
  const std::string key = spec.canonical() + suffix;

  // Build while holding the lock: compilation is a front-end cost, and
  // serializing it means concurrent requests for the same spec do the work
  // exactly once.
  std::lock_guard<std::mutex> lock(mutex_);
  if (auto* entry = findEntry(circuits_, fnv1a64(key), key)) {
    ++stats_.hits;
    cacheHitCounter().add(1);
    // The label is presentation, not identity: two specs differing only in
    // label share one compile, but each caller gets its own label back.
    // Relabeled variants are memoized under a label-discriminated key, so
    // the artifact copy happens once per distinct label, not per lookup.
    if (entry->value->label != spec.displayLabel()) {
      const std::string labeledKey = key + "\n#label=" + spec.displayLabel();
      const std::uint64_t labeledHash = fnv1a64(labeledKey);
      if (auto* labeled = findEntry(circuits_, labeledHash, labeledKey))
        return labeled->value;
      auto relabeled = std::make_shared<Circuit>(*entry->value);
      relabeled->spec.label = spec.label;
      relabeled->label = spec.displayLabel();
      circuits_[labeledHash].push_back({labeledKey, relabeled});
      return relabeled;
    }
    return entry->value;
  }
  ++stats_.misses;
  cacheMissCounter().add(1);

  // Synthesis stage, shared across realization variants of the declaration.
  const std::string synthKey = spec.synthCanonical() + suffix;
  const std::uint64_t synthHash = fnv1a64(synthKey);
  std::shared_ptr<const SynthesizedCover> synthesized;
  if (auto* entry = findEntry(covers_, synthHash, synthKey)) {
    ++stats_.coverHits;
    coverHitCounter().add(1);
    synthesized = entry->value;
  } else {
    ++stats_.coverMisses;
    coverMissCounter().add(1);
    synthesized = std::make_shared<const SynthesizedCover>(buildSynthesizedCover(spec));
    covers_[synthHash].push_back({synthKey, synthesized});
  }

  auto circuit = std::make_shared<const Circuit>(realizeCircuit(spec, *synthesized));
  circuits_[fnv1a64(key)].push_back({key, circuit});
  return circuit;
}

CircuitCache::Stats CircuitCache::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

std::size_t CircuitCache::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::size_t entries = 0;
  for (const auto& [hash, bucket] : circuits_) entries += bucket.size();
  return entries;
}

void CircuitCache::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  circuits_.clear();
  covers_.clear();
  stats_ = {};
}

std::shared_ptr<const Circuit> compileCircuit(const CircuitSpec& spec, bool useCache) {
  if (!useCache) return std::make_shared<const Circuit>(buildCircuit(spec));
  return CircuitCache::global().compile(spec);
}

std::shared_ptr<const Circuit> compileCircuit(const std::string& nameOrSpec, bool useCache) {
  return compileCircuit(makeCircuitSpec(nameOrSpec), useCache);
}

}  // namespace mcx
