// Circuit registry: named circuit presets and JSON spec parsing.
//
// The third leg of the registry triad (scenario/registry.hpp for defect
// models, map/registry.hpp for mappers): every circuit the experiments use
// is constructible from a name ("bw", "rd53-min", ...) or a small JSON
// spec, so a whole workload — circuit x mapper x scenario — is one
// declaration. Presets cover every paper benchmark (Tables I and II) plus
// the espresso-polished generated functions the reproduction suites run.
#pragma once

#include <string>
#include <vector>

#include "circuit/spec.hpp"
#include "scenario/spec.hpp"

namespace mcx {

struct CircuitPreset {
  std::string name;
  std::string summary;
  CircuitSpec spec;
};

/// All registered presets, in presentation order (paper benchmarks first,
/// derived presets after).
const std::vector<CircuitPreset>& circuitPresets();

/// Preset lookup by name; nullptr when unknown.
const CircuitPreset* findCircuitPreset(const std::string& name);

/// Build a spec from a JSON document:
///   {"circuit": "file:examples/data/adder.pla", "synth": "espresso",
///    "realize": "multilevel", "factoring": "kernel", "maxFanin": 4,
///    "label": "adder"}
/// "circuit" is a preset name or a prefixed source string (file:/pla:/sop:/
/// gen:, see circuitSourceSpec); the remaining members override the base
/// declaration. Throws mcx::ParseError on unknown members or values.
CircuitSpec circuitSpecFromSpec(const SpecValue& spec);

/// Resolve a circuit string: a preset name ("bw"), a prefixed source
/// ("file:adder.pla", "gen:weight5", ...) or, when the string starts with
/// '{', a JSON spec. Throws mcx::ParseError listing the known presets when
/// the name resolves to nothing.
CircuitSpec makeCircuitSpec(const std::string& nameOrSpec);

}  // namespace mcx
