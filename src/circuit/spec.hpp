// CircuitSpec: the declarative front-end of the synthesis pipeline.
//
// The paper's experiments all start the same way — a two-level cover,
// optionally minimized, realized as a two-level or multi-level (factored
// NAND) crossbar. CircuitSpec captures that whole front-end as one typed
// declaration: where the cover comes from (benchmark registry, .pla file,
// inline PLA/SOP text, function generator, or a C++ Cover), which synthesis
// step to run (none / espresso / exact QM / ISOP round-trip) and how to
// realize it (two-level, or multi-level with factoring and fan-in knobs).
// circuit/pipeline.hpp compiles a spec into a Circuit artifact;
// circuit/registry.hpp resolves names and JSON specs; circuit/cache.hpp
// memoizes compilation by content.
#pragma once

#include <cstddef>
#include <optional>
#include <string>

#include "logic/cover.hpp"

namespace mcx {

struct CircuitSpec {
  /// Where the source cover comes from.
  enum class Source {
    Registry,   ///< paper benchmark registry (benchdata/registry.hpp)
    File,       ///< espresso-format .pla file ("file:path")
    InlinePla,  ///< inline PLA text ("pla:...")
    InlineSop,  ///< inline SOP expression ("sop:x1 x2 + !x3")
    Generator,  ///< mathematically defined function ("gen:weight5")
    Cover,      ///< explicit C++ Cover (not reachable from JSON)
  };
  /// Two-level synthesis step applied to the source cover.
  enum class Synth {
    None,      ///< use the source cover as-is
    Espresso,  ///< heuristic minimization (registry: the polished load)
    Qm,        ///< exact Quine-McCluskey minimum per output (small arity)
    Isop,      ///< irredundant SOP via truth-table round-trip
  };
  enum class Realize { TwoLevel, MultiLevel };
  /// SOP -> NAND strategy (multi-level realizations only).
  enum class Factoring {
    Quick,   ///< literal-based quick factoring (mapToNand default)
    Flat,    ///< no factoring: flat NAND-NAND form
    Kernel,  ///< kernel-based good factoring
    Best,    ///< try all three, keep the smallest crossbar (mapToNandBest)
  };

  Source source = Source::Registry;
  std::string name;            ///< registry name, file path or generator id
  std::string text;            ///< inline PLA / SOP text
  std::optional<Cover> cover;  ///< Source::Cover payload
  Synth synth = Synth::None;
  Realize realize = Realize::TwoLevel;
  Factoring factoring = Factoring::Quick;
  std::size_t maxFanin = 0;    ///< NAND fan-in bound; 0 = unbounded
  std::string label;           ///< display label; empty = derived from source
  /// Set by the JSON parser when the member was explicitly present — lets
  /// tools distinguish a deliberate knob from the default without
  /// re-inspecting the document. Not part of the spec's identity.
  bool realizeExplicit = false;
  bool factoringExplicit = false;

  bool multiLevel() const { return realize == Realize::MultiLevel; }
  std::string defaultLabel() const;
  std::string displayLabel() const { return label.empty() ? defaultLabel() : label; }

  /// Canonical one-line declaration string: the spec's identity for display
  /// and memoization. Covers every knob except the label. NOTE: for File
  /// sources the file CONTENT is not part of canonical() — the memo cache
  /// folds it into the content key separately (circuitContentKey).
  std::string canonical() const;
  /// Identity of the synthesis stage only (source + synth, no realization):
  /// the memo key under which every realization variant of a declaration
  /// shares one synthesized cover.
  std::string synthCanonical() const;
};

// Enum <-> string helpers; the FromString parsers throw mcx::ParseError
// listing the valid values (a typo'd spec must not silently synthesize the
// wrong circuit).
std::string toString(CircuitSpec::Synth synth);
std::string toString(CircuitSpec::Realize realize);
std::string toString(CircuitSpec::Factoring factoring);
CircuitSpec::Synth synthFromString(const std::string& text);
CircuitSpec::Realize realizeFromString(const std::string& text);
CircuitSpec::Factoring factoringFromString(const std::string& text);

/// A validated generator id: family + size, e.g. "weight5" -> {weight, 5}.
/// Two-dimensional families (nn) carry a second size: "nn-8x4" ->
/// {family "nn-", size 8, size2 4}.
struct GeneratorId {
  std::string family;
  std::size_t size = 0;
  std::size_t size2 = 0;  ///< second dimension (nn outputs); 0 when unused
};

/// Parse and fully validate a generator id (the part after "gen:"): known
/// family (weight, sqrt, parity, majority, adder, nn-), positive size, and
/// an input count within the explicit-truth-table bound (1..16 inputs;
/// adder takes 2*size; nn-<nin>x<nout> bounds both dimensions eagerly).
/// Throws mcx::ParseError — the single source of truth for both
/// declaration-time validation and the pipeline's dispatch.
GeneratorId parseGeneratorId(const std::string& id);

/// Parse a prefixed source string into a spec with default synthesis and
/// realization:
///   "file:examples/data/adder.pla"  (must exist and be readable)
///   "pla:.i 2\n.o 1\n11 1\n.e"
///   "sop:x1 x2 + !x3"
///   "gen:weight5" | "gen:sqrt8" | "gen:parity4" | "gen:majority7" |
///   "gen:adder2" | "gen:nn-8x4"  (family + size; see logic/generators.hpp)
/// Unprefixed strings are Registry sources, NOT validated here — use
/// makeCircuitSpec (circuit/registry.hpp) to resolve preset/registry names
/// with a helpful error.
CircuitSpec circuitSourceSpec(const std::string& source);

}  // namespace mcx
