#include "circuit/spec.hpp"

#include <charconv>
#include <fstream>

#include "util/error.hpp"

namespace mcx {

namespace {

std::string basenameOf(const std::string& path) {
  const auto slash = path.find_last_of('/');
  return slash == std::string::npos ? path : path.substr(slash + 1);
}

}  // namespace

std::string CircuitSpec::defaultLabel() const {
  switch (source) {
    case Source::Registry: return name;
    case Source::File: return basenameOf(name);
    case Source::InlinePla: return "inline-pla";
    case Source::InlineSop: return "inline-sop";
    case Source::Generator: return name;
    case Source::Cover: return "cover";
  }
  return "circuit";
}

std::string CircuitSpec::synthCanonical() const {
  std::string src;
  switch (source) {
    case Source::Registry: src = "reg:" + name; break;
    case Source::File: src = "file:" + name; break;
    case Source::InlinePla: src = "pla:" + text; break;
    case Source::InlineSop: src = "sop:" + text; break;
    case Source::Generator: src = "gen:" + name; break;
    // The cover's exact cube list is folded in by circuitContentKey; the
    // canonical string only records the source kind.
    case Source::Cover: src = "cover"; break;
  }
  return "circuit{src=" + src + ";synth=" + toString(synth) + "}";
}

std::string CircuitSpec::canonical() const {
  std::string out = synthCanonical();
  out.pop_back();  // reopen the closing '}'
  out += ";realize=" + toString(realize);
  if (realize == Realize::MultiLevel) {
    out += ";factoring=" + toString(factoring);
    out += ";fanin=" + std::to_string(maxFanin);
  }
  return out + "}";
}

std::string toString(CircuitSpec::Synth synth) {
  switch (synth) {
    case CircuitSpec::Synth::None: return "none";
    case CircuitSpec::Synth::Espresso: return "espresso";
    case CircuitSpec::Synth::Qm: return "qm";
    case CircuitSpec::Synth::Isop: return "isop";
  }
  return "?";
}

std::string toString(CircuitSpec::Realize realize) {
  return realize == CircuitSpec::Realize::TwoLevel ? "two-level" : "multilevel";
}

std::string toString(CircuitSpec::Factoring factoring) {
  switch (factoring) {
    case CircuitSpec::Factoring::Quick: return "quick";
    case CircuitSpec::Factoring::Flat: return "flat";
    case CircuitSpec::Factoring::Kernel: return "kernel";
    case CircuitSpec::Factoring::Best: return "best";
  }
  return "?";
}

CircuitSpec::Synth synthFromString(const std::string& text) {
  if (text == "none") return CircuitSpec::Synth::None;
  if (text == "espresso") return CircuitSpec::Synth::Espresso;
  if (text == "qm") return CircuitSpec::Synth::Qm;
  if (text == "isop") return CircuitSpec::Synth::Isop;
  throw ParseError("circuit spec: unknown synth \"" + text +
                   "\" (valid: none, espresso, qm, isop)");
}

CircuitSpec::Realize realizeFromString(const std::string& text) {
  if (text == "two-level") return CircuitSpec::Realize::TwoLevel;
  if (text == "multilevel" || text == "multi-level") return CircuitSpec::Realize::MultiLevel;
  throw ParseError("circuit spec: unknown realize \"" + text +
                   "\" (valid: two-level, multilevel)");
}

CircuitSpec::Factoring factoringFromString(const std::string& text) {
  if (text == "quick") return CircuitSpec::Factoring::Quick;
  if (text == "flat") return CircuitSpec::Factoring::Flat;
  if (text == "kernel") return CircuitSpec::Factoring::Kernel;
  if (text == "best") return CircuitSpec::Factoring::Best;
  throw ParseError("circuit spec: unknown factoring \"" + text +
                   "\" (valid: quick, flat, kernel, best)");
}

GeneratorId parseGeneratorId(const std::string& id) {
  const auto digits = id.find_first_of("0123456789");
  if (digits == 0 || digits == std::string::npos)
    throw ParseError("circuit spec: generator id must be <family><size>, e.g. "
                     "gen:weight5 (got \"" + id + "\")");
  GeneratorId gen;
  gen.family = id.substr(0, digits);
  if (gen.family != "weight" && gen.family != "sqrt" && gen.family != "parity" &&
      gen.family != "majority" && gen.family != "adder" && gen.family != "nn-")
    throw ParseError("circuit spec: unknown generator family \"" + gen.family +
                     "\" (valid: weight, sqrt, parity, majority, adder, nn-)");
  const std::string sizeText = id.substr(digits);
  if (gen.family == "nn-") {
    // Two-dimensional id: nn-<nin>x<nout>, both bounds validated eagerly so
    // a bad declaration fails at parse time, not mid-experiment.
    const auto x = sizeText.find('x');
    if (x == std::string::npos)
      throw ParseError("circuit spec: nn generator id must be nn-<nin>x<nout>, e.g. "
                       "gen:nn-8x4 (got \"" + id + "\")");
    const std::string ninText = sizeText.substr(0, x);
    const std::string noutText = sizeText.substr(x + 1);
    const auto [ninEnd, ninEc] =
        std::from_chars(ninText.data(), ninText.data() + ninText.size(), gen.size);
    if (ninEc != std::errc() || ninEnd != ninText.data() + ninText.size() || gen.size == 0)
      throw ParseError("circuit spec: bad nn input count \"" + ninText + "\"");
    const auto [noutEnd, noutEc] =
        std::from_chars(noutText.data(), noutText.data() + noutText.size(), gen.size2);
    if (noutEc != std::errc() || noutEnd != noutText.data() + noutText.size() ||
        gen.size2 == 0)
      throw ParseError("circuit spec: bad nn output count \"" + noutText + "\"");
    if (gen.size > 16)
      throw ParseError("circuit spec: generator \"" + id + "\" needs " +
                       std::to_string(gen.size) + " inputs, beyond the 16-input bound");
    if (gen.size2 > 16)
      throw ParseError("circuit spec: generator \"" + id + "\" declares " +
                       std::to_string(gen.size2) + " outputs, beyond the 16-output bound");
    return gen;
  }
  const auto [end, ec] =
      std::from_chars(sizeText.data(), sizeText.data() + sizeText.size(), gen.size);
  if (ec != std::errc() || end != sizeText.data() + sizeText.size() || gen.size == 0)
    throw ParseError("circuit spec: bad generator size \"" + sizeText + "\"");
  // Truth tables are explicit 2^n objects; bound the input count so the
  // declaration fails fast instead of mid-experiment.
  const std::size_t inputs = gen.family == "adder" ? 2 * gen.size : gen.size;
  if (inputs > 16)
    throw ParseError("circuit spec: generator \"" + id + "\" needs " +
                     std::to_string(inputs) + " inputs, beyond the 16-input bound");
  return gen;
}

CircuitSpec circuitSourceSpec(const std::string& source) {
  CircuitSpec spec;
  if (source.starts_with("file:")) {
    spec.source = CircuitSpec::Source::File;
    spec.name = source.substr(5);
    if (spec.name.empty()) throw ParseError("circuit spec: empty file: path");
    // Fail at declaration time, not deep inside an experiment run.
    std::ifstream probe(spec.name);
    if (!probe) throw ParseError("circuit spec: cannot open PLA file: " + spec.name);
    return spec;
  }
  if (source.starts_with("pla:")) {
    spec.source = CircuitSpec::Source::InlinePla;
    spec.text = source.substr(4);
    if (spec.text.empty()) throw ParseError("circuit spec: empty pla: text");
    return spec;
  }
  if (source.starts_with("sop:")) {
    spec.source = CircuitSpec::Source::InlineSop;
    spec.text = source.substr(4);
    if (spec.text.empty()) throw ParseError("circuit spec: empty sop: text");
    return spec;
  }
  if (source.starts_with("gen:")) {
    spec.source = CircuitSpec::Source::Generator;
    spec.name = source.substr(4);
    parseGeneratorId(spec.name);  // full validation at declaration time
    return spec;
  }
  spec.source = CircuitSpec::Source::Registry;
  spec.name = source;
  return spec;
}

}  // namespace mcx
