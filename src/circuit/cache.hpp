// Memoized synthesis front-end: content-hash-keyed circuit compilation.
//
// Synthesis dominates experiment start-up (espresso on a paper benchmark is
// milliseconds to seconds; the Monte Carlo engine then maps thousands of
// samples against the SAME FunctionMatrix). The cache memoizes
// buildCircuit by CONTENT: the key is the spec's canonical declaration
// plus the bytes behind it (the .pla file's content for File sources, the
// serialized cover for Cover sources), so an edited file re-synthesizes
// while a repeated declaration is a hash lookup. Memoization is two-stage:
// the synthesized cover is keyed by source + synth alone, so the two-level
// and multi-level (or differently factored) realizations of one
// declaration share a single synthesis run.
//
// RESOURCE GOVERNANCE: the cache is byte-accounted. Every entry (both
// stages) carries a cost estimate (Circuit::estimatedBytes), and a
// configurable budget (setByteBudget; 0 = unbounded) triggers LRU eviction
// on insert — an open-ended stream of distinct circuit specs can no longer
// grow memory without bound. The invariant is strict: after any compile()
// returns, currentBytes() <= byteBudget(). Eviction never invalidates a
// handed-out artifact (entries are shared_ptrs; callers keep theirs alive),
// and a re-compile after eviction is bit-identical to the evicted artifact
// — the deterministic-pipeline contract, hammer-tested concurrently.
// Evictions are counted in Stats and in the process registry
// ("circuit.cache.evictions" / "circuit.cache.evicted_bytes"); the global
// cache additionally publishes its footprint as the "circuit.cache_bytes"
// gauge.
//
// Thread-safe: compile() may be called from any thread; a compile in flight
// holds the cache lock, so concurrent requests for the same spec produce
// one build and share the artifact. Benchmarks that must measure the real
// pipeline bypass the cache with compileCircuit(spec, /*useCache=*/false).
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "circuit/pipeline.hpp"

namespace mcx {

/// The memo key: canonical declaration + source content (file bytes for
/// File sources, serialized cover for Cover sources; inline text is already
/// part of the canonical string). Throws mcx::ParseError when a File
/// source's bytes cannot be read.
std::string circuitContentKey(const CircuitSpec& spec);

/// The synthesis-stage memo key (synthCanonical + source content): shared
/// by every realization variant of the same source + synth declaration.
std::string circuitSynthContentKey(const CircuitSpec& spec);

/// FNV-1a 64-bit hash of a content key (the bucket index; entries chain on
/// the full key, so hash collisions cannot alias two circuits).
std::uint64_t fnv1a64(const std::string& text);

class CircuitCache {
public:
  /// The process-wide cache ExperimentBuilder and compileCircuit use.
  static CircuitCache& global();

  /// Compile @p spec, memoized by content key. Returns a shared immutable
  /// artifact; repeated calls with the same content return the same object
  /// (until the entry is evicted — the artifact a caller holds stays valid
  /// regardless, and a re-compile is bit-identical).
  std::shared_ptr<const Circuit> compile(const CircuitSpec& spec);

  struct Stats {
    std::uint64_t hits = 0;          ///< full-circuit lookups served
    std::uint64_t misses = 0;        ///< circuits realized
    std::uint64_t coverHits = 0;     ///< realizations that reused a synthesized cover
    std::uint64_t coverMisses = 0;   ///< synthesis runs (source + minimize)
    std::uint64_t evictions = 0;     ///< entries evicted to honor the budget
    std::uint64_t evictedBytes = 0;  ///< summed cost of evicted entries
  };
  Stats stats() const;
  std::size_t size() const;
  void clear();

  /// LRU eviction budget in estimated bytes (0 = unbounded, the default).
  /// Shrinking the budget evicts immediately; after this returns,
  /// currentBytes() <= bytes (when bytes > 0).
  void setByteBudget(std::size_t bytes);
  std::size_t byteBudget() const;
  /// Summed cost estimate of every resident entry, both stages.
  std::size_t currentBytes() const;

private:
  /// Hash-bucketed entries chained on the full content key, so hash
  /// collisions cannot alias two circuits. Two levels: realized circuits
  /// by circuitContentKey, synthesized covers by circuitSynthContentKey —
  /// compiling the two-level and multi-level variants of one declaration
  /// synthesizes once. Each entry carries its byte cost and an LRU stamp.
  template <typename T>
  struct EntryOf {
    std::string key;
    std::shared_ptr<const T> value;
    std::size_t bytes = 0;
    std::uint64_t lastUse = 0;
  };
  template <typename T>
  using Buckets = std::unordered_map<std::uint64_t, std::vector<EntryOf<T>>>;

  void enforceBudgetLocked();
  void publishBytesLocked();

  mutable std::mutex mutex_;
  Buckets<Circuit> circuits_;
  Buckets<SynthesizedCover> covers_;
  Stats stats_;
  std::size_t budget_ = 0;      ///< 0 = unbounded
  std::size_t totalBytes_ = 0;  ///< summed entry costs, both stages
  std::uint64_t useClock_ = 0;  ///< monotonic LRU stamp source
  bool publishGauge_ = false;   ///< only the global cache drives the gauge
};

/// Compile through the global cache (default), or run the raw pipeline when
/// @p useCache is false (benchmarking bypass: no lookup, no insertion).
std::shared_ptr<const Circuit> compileCircuit(const CircuitSpec& spec, bool useCache = true);

/// Resolve a circuit string (circuit/registry.hpp) and compile it.
std::shared_ptr<const Circuit> compileCircuit(const std::string& nameOrSpec,
                                              bool useCache = true);

}  // namespace mcx
