#include "circuit/pipeline.hpp"

#include <cstdint>
#include <utility>

#include "benchdata/registry.hpp"
#include "logic/espresso.hpp"
#include "logic/generators.hpp"
#include "logic/isop.hpp"
#include "logic/pla.hpp"
#include "logic/quine_mccluskey.hpp"
#include "logic/sop_parser.hpp"
#include "logic/truth_table.hpp"
#include "netlist/nand_mapper.hpp"
#include "util/error.hpp"
#include "util/faultinject.hpp"
#include "util/stopwatch.hpp"

namespace mcx {

namespace {

TruthTable generatorTable(const std::string& id) {
  // parseGeneratorId is the single validator (family list + arity bound);
  // this is pure dispatch.
  const GeneratorId gen = parseGeneratorId(id);
  if (gen.family == "weight") return weightFunction(gen.size);
  if (gen.family == "sqrt") return sqrtFunction(gen.size);
  if (gen.family == "parity") return parityFunction(gen.size);
  if (gen.family == "majority") return majorityFunction(gen.size);
  if (gen.family == "adder") return adderFunction(gen.size);
  if (gen.family == "nn-") return nnLayerFunction(gen.size, gen.size2);
  throw InvalidArgument("unknown generator family in \"" + id + "\"");
}

/// Exact minimum cover: per-output Quine-McCluskey, merged so cubes with
/// identical input parts share a row (the same merge isopCover performs).
Cover qmCover(const Cover& on, const Cover& dc) {
  const TruthTable ttOn = TruthTable::fromCover(on);
  const TruthTable ttDc = TruthTable::fromCover(dc);
  Cover result(on.nin(), on.nout());
  for (std::size_t o = 0; o < on.nout(); ++o) {
    for (const Cube& c : quineMcCluskey(ttOn, ttDc, o).cover) {
      Cube wide(on.nin(), on.nout());
      for (std::size_t v = 0; v < on.nin(); ++v) wide.setLit(v, c.lit(v));
      wide.setOut(o);
      result.add(std::move(wide));
    }
  }
  result.mergeDuplicateInputs();
  return result;
}

}  // namespace

SynthesizedCover buildSynthesizedCover(const CircuitSpec& spec) {
  // Armed only under test/diagnosis: lets the serve suite prove that a
  // synthesis failure surfaces as a structured `internal` error instead of
  // taking the daemon down.
  faultinject::onSite("circuit.synthesize");

  SynthesizedCover result;

  // --- source: produce the base ON (and don't-care) cover ------------------
  Stopwatch watch;
  Cover on;
  Cover dc;
  bool synthesized = false;  // Registry sources fold synth into the load.
  switch (spec.source) {
    case CircuitSpec::Source::Registry: {
      // The registry circuits ship their own synthesis recipe (generated
      // circuits run ISOP + optional espresso polish with the paper's dual
      // selection; stand-ins are built to the paper's P by construction):
      // synth=none is the fast load, synth=espresso the polished one, and
      // anything else would silently mean something different than it says.
      if (spec.synth == CircuitSpec::Synth::None) {
        on = loadBenchmarkFast(spec.name).cover;
      } else if (spec.synth == CircuitSpec::Synth::Espresso) {
        on = loadBenchmark(spec.name).cover;
      } else {
        throw InvalidArgument("circuit \"" + spec.name +
                              "\": registry circuits support synth none/espresso only");
      }
      synthesized = true;
      break;
    }
    case CircuitSpec::Source::File: {
      const PlaFile pla = readPlaFile(spec.name);
      on = pla.on;
      dc = pla.dc;
      break;
    }
    case CircuitSpec::Source::InlinePla: {
      const PlaFile pla = parsePlaString(spec.text);
      on = pla.on;
      dc = pla.dc;
      break;
    }
    case CircuitSpec::Source::InlineSop: {
      on = parseSop(spec.text);
      dc = Cover(on.nin(), on.nout());
      break;
    }
    case CircuitSpec::Source::Generator: {
      // Generated functions are born as ISOP covers of their truth table
      // (the same base the benchmark registry uses), so synth=isop is a
      // no-op for them and synth=espresso is the classic polish.
      on = isopCover(generatorTable(spec.name));
      dc = Cover(on.nin(), on.nout());
      break;
    }
    case CircuitSpec::Source::Cover: {
      MCX_REQUIRE(spec.cover.has_value(), "circuit spec: Cover source without a cover");
      on = *spec.cover;
      dc = Cover(on.nin(), on.nout());
      break;
    }
  }
  if (dc.nin() != on.nin() || dc.nout() != on.nout()) dc = Cover(on.nin(), on.nout());
  result.sourceMillis = watch.lapMillis();  // lap: the synth stage times from here
  result.sourceProducts = on.size();

  // --- synthesis ------------------------------------------------------------
  if (!synthesized) {
    switch (spec.synth) {
      case CircuitSpec::Synth::None:
        break;
      case CircuitSpec::Synth::Espresso:
        on = espressoMinimize(on, dc);
        break;
      case CircuitSpec::Synth::Qm:
        MCX_REQUIRE(on.nin() <= 12, "circuit spec: synth qm is exact and limited to 12 "
                                    "inputs (got " + std::to_string(on.nin()) + ")");
        on = qmCover(on, dc);
        break;
      case CircuitSpec::Synth::Isop:
        MCX_REQUIRE(on.nin() <= 16, "circuit spec: synth isop round-trips an explicit "
                                    "truth table, limited to 16 inputs (got " +
                                        std::to_string(on.nin()) + ")");
        if (spec.source != CircuitSpec::Source::Generator)
          on = dc.empty() ? isopCover(TruthTable::fromCover(on))
                          : isopCover(TruthTable::fromCover(on), TruthTable::fromCover(dc));
        break;
    }
  }
  result.synthMillis = watch.millis();
  result.on = std::move(on);
  result.dc = std::move(dc);
  return result;
}

Circuit realizeCircuit(const CircuitSpec& spec, const SynthesizedCover& synthesized) {
  Circuit circuit;
  circuit.spec = spec;
  circuit.label = spec.displayLabel();
  circuit.cover = synthesized.on;
  circuit.dc = synthesized.dc;
  circuit.stats.sourceProducts = synthesized.sourceProducts;
  circuit.stats.products = synthesized.on.size();
  circuit.stats.sourceMillis = synthesized.sourceMillis;
  circuit.stats.synthMillis = synthesized.synthMillis;

  Stopwatch watch;
  if (spec.realize == CircuitSpec::Realize::TwoLevel) {
    circuit.fm = buildFunctionMatrix(circuit.cover);
  } else {
    NandNetwork net;
    if (spec.factoring == CircuitSpec::Factoring::Best) {
      net = mapToNandBest(circuit.cover, spec.maxFanin);
    } else {
      NandMapOptions opts;
      opts.maxFanin = spec.maxFanin;
      opts.factored = spec.factoring != CircuitSpec::Factoring::Flat;
      opts.kernelFactoring = spec.factoring == CircuitSpec::Factoring::Kernel;
      net = mapToNand(circuit.cover, opts);
    }
    circuit.layout = buildMultiLevelLayout(std::move(net));
    circuit.fm = circuit.layout->fm;
  }
  circuit.stats.realizeMillis = watch.millis();
  return circuit;
}

Circuit buildCircuit(const CircuitSpec& spec) {
  return realizeCircuit(spec, buildSynthesizedCover(spec));
}

namespace {

std::size_t bitsBytes(std::size_t widthBits) {
  return ((widthBits + 63) / 64) * sizeof(std::uint64_t) + 3 * sizeof(void*);
}

std::size_t coverBytes(const Cover& cover) {
  // Each cube holds two DynBits (input pairs + outputs) plus vector
  // bookkeeping; the cube vector itself is the per-entry overhead.
  const std::size_t perCube =
      bitsBytes(2 * cover.nin()) + bitsBytes(cover.nout()) + sizeof(Cube);
  return sizeof(Cover) + cover.size() * perCube;
}

std::size_t matrixBytes(const FunctionMatrix& fm) {
  return sizeof(FunctionMatrix) + fm.rows() * bitsBytes(fm.cols());
}

std::size_t layoutBytes(const MultiLevelLayout& layout) {
  std::size_t gateBytes = 0;
  for (const auto gate : layout.network.gates())
    gateBytes += 64 + layout.network.fanins(gate).size() * 8;
  return sizeof(MultiLevelLayout) + gateBytes + matrixBytes(layout.fm) +
         layout.connOfGate.size() * sizeof(std::size_t);
}

}  // namespace

std::size_t SynthesizedCover::estimatedBytes() const {
  return sizeof(SynthesizedCover) + coverBytes(on) + coverBytes(dc);
}

std::size_t Circuit::estimatedBytes() const {
  std::size_t bytes = sizeof(Circuit) + coverBytes(cover) + coverBytes(dc) +
                      matrixBytes(fm) + label.size();
  if (layout.has_value()) bytes += layoutBytes(*layout);
  return bytes;
}

}  // namespace mcx
