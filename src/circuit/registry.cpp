#include "circuit/registry.hpp"

#include <initializer_list>

#include "benchdata/registry.hpp"
#include "util/error.hpp"

namespace mcx {

namespace {

/// Reject unrecognized spec members (same rationale as the mapper and
/// scenario registries: a typo'd knob must not silently compile the default
/// pipeline under the wrong label).
void requireOnlyKeys(const SpecValue& spec, std::initializer_list<const char*> allowed) {
  for (const auto& [key, value] : spec.members) {
    bool known = false;
    for (const char* name : allowed)
      if (key == name) {
        known = true;
        break;
      }
    if (!known) throw ParseError("circuit spec: unknown member \"" + key + "\"");
  }
}

std::string sourceWord(BenchmarkSource source) {
  switch (source) {
    case BenchmarkSource::Generated: return "generated exactly";
    case BenchmarkSource::Synthetic: return "synthetic stand-in";
    case BenchmarkSource::StructureSeeded: return "structure-seeded stand-in";
  }
  return "?";
}

CircuitSpec generatorPreset(const std::string& generatorId, const std::string& label) {
  CircuitSpec spec = circuitSourceSpec("gen:" + generatorId);
  spec.synth = CircuitSpec::Synth::Espresso;
  spec.label = label;
  return spec;
}

std::vector<CircuitPreset> makePresets() {
  std::vector<CircuitPreset> presets;
  // Every paper benchmark, under its registry name: the fast load, exactly
  // what ExperimentBuilder::circuit(name) and the defect suites always used
  // (the committed BENCH JSON counts anchor this path bit-identically).
  for (const BenchmarkInfo& info : paperBenchmarks()) {
    CircuitSpec spec;
    spec.source = CircuitSpec::Source::Registry;
    spec.name = info.name;
    std::string tables;
    if (info.inTable1) tables += " Table I";
    if (info.inTable2) tables += tables.empty() ? " Table II" : "+II";
    presets.push_back({info.name,
                       sourceWord(info.source) + ", I=" + std::to_string(info.inputs) +
                           " O=" + std::to_string(info.outputs) +
                           " P=" + std::to_string(info.products) + tables,
                       std::move(spec)});
  }
  // Espresso-polished generated functions: the exact covers the multilevel
  // defect suite and the ablations synthesize by hand today.
  presets.push_back({"rd53-min", "espresso-polished ISOP of the 5-input weight function",
                     generatorPreset("weight5", "rd53")});
  presets.push_back({"sqrt8-min", "espresso-polished ISOP of the 8-bit integer sqrt",
                     generatorPreset("sqrt8", "sqrt8")});
  presets.push_back({"majority7-min", "espresso-polished ISOP of the 7-input majority",
                     generatorPreset("majority7", "majority-7")});
  // Error-tolerant NN workload axis: binarized sign-neuron layers whose
  // quality degrades gracefully with wrong minterms (the approx subsystem's
  // natural benchmark; see logic/generators.hpp nnLayerFunction).
  presets.push_back({"nn-small", "espresso-polished 6-input 3-neuron binarized NN layer",
                     generatorPreset("nn-6x3", "nn-6x3")});
  presets.push_back({"nn-wide", "espresso-polished 8-input 4-neuron binarized NN layer",
                     generatorPreset("nn-8x4", "nn-8x4")});
  {
    CircuitSpec fig5 = circuitSourceSpec("sop:x1 + x2 + x3 + x4 + x5 x6 x7 x8");
    fig5.label = "fig5";
    presets.push_back(
        {"fig5", "the paper's running example f = x1+x2+x3+x4+x5x6x7x8 (Figs. 3/5)",
         std::move(fig5)});
  }
  return presets;
}

}  // namespace

const std::vector<CircuitPreset>& circuitPresets() {
  static const std::vector<CircuitPreset> presets = makePresets();
  return presets;
}

const CircuitPreset* findCircuitPreset(const std::string& name) {
  for (const CircuitPreset& preset : circuitPresets())
    if (preset.name == name) return &preset;
  return nullptr;
}

namespace {

std::string knownPresetNames() {
  std::string known;
  for (const CircuitPreset& preset : circuitPresets()) {
    if (!known.empty()) known += ", ";
    known += preset.name;
  }
  return known;
}

/// Resolve a "circuit" string: preset name first, then the prefixed source
/// forms. Bare names that match nothing get the full preset list.
CircuitSpec resolveSource(const std::string& source) {
  if (const CircuitPreset* preset = findCircuitPreset(source)) return preset->spec;
  if (source.starts_with("file:") || source.starts_with("pla:") ||
      source.starts_with("sop:") || source.starts_with("gen:"))
    return circuitSourceSpec(source);
  throw ParseError("unknown circuit \"" + source + "\" (known presets: " +
                   knownPresetNames() + "; or a file:/pla:/sop:/gen: source, "
                   "or a JSON spec)");
}

}  // namespace

CircuitSpec circuitSpecFromSpec(const SpecValue& spec) {
  if (!spec.isObject()) throw ParseError("circuit spec: expected a JSON object");
  requireOnlyKeys(spec, {"circuit", "synth", "realize", "factoring", "maxFanin", "label"});

  const std::string source = spec.stringOr("circuit", "");
  if (source.empty()) throw ParseError("circuit spec: missing \"circuit\" member");
  CircuitSpec result = resolveSource(source);

  if (spec.find("synth") != nullptr)
    result.synth = synthFromString(spec.stringOr("synth", ""));
  if (spec.find("realize") != nullptr) {
    result.realize = realizeFromString(spec.stringOr("realize", ""));
    result.realizeExplicit = true;
  }
  if (spec.find("factoring") != nullptr) {
    result.factoring = factoringFromString(spec.stringOr("factoring", ""));
    result.factoringExplicit = true;
  }
  if (spec.find("maxFanin") != nullptr) {
    const double fanin = spec.numberOr("maxFanin", 0.0);
    // Integrality matters: 0.5 would truncate to 0 = unbounded, silently
    // compiling a different circuit than declared.
    if (fanin < 0.0 || fanin > 1e6 ||
        fanin != static_cast<double>(static_cast<std::size_t>(fanin)))
      throw ParseError("circuit spec: \"maxFanin\" must be an integer in [0, 1e6]");
    result.maxFanin = static_cast<std::size_t>(fanin);
  }
  if (spec.find("label") != nullptr) result.label = spec.stringOr("label", "");
  // The registry circuits ship their own synthesis recipe (none = fast
  // load, espresso = polished load); reject the rest here so the bad
  // declaration fails eagerly, like every other invalid spec.
  if (result.source == CircuitSpec::Source::Registry &&
      result.synth != CircuitSpec::Synth::None &&
      result.synth != CircuitSpec::Synth::Espresso)
    throw ParseError("circuit spec: registry circuit \"" + result.name +
                     "\" supports synth none/espresso only");
  return result;
}

CircuitSpec makeCircuitSpec(const std::string& nameOrSpec) {
  std::size_t first = 0;
  while (first < nameOrSpec.size() &&
         (nameOrSpec[first] == ' ' || nameOrSpec[first] == '\t' || nameOrSpec[first] == '\n'))
    ++first;
  if (first < nameOrSpec.size() && nameOrSpec[first] == '{')
    return circuitSpecFromSpec(parseSpec(nameOrSpec));
  return resolveSource(nameOrSpec);
}

}  // namespace mcx
