// Hopcroft-Karp maximum bipartite matching.
//
// The paper decides mapping validity through a zero-cost Munkres assignment
// (O(n^3)). Validity is really a perfect-matching question, which
// Hopcroft-Karp answers in O(E sqrt(V)) — the basis of the FastExactMapper
// extension (map/fast_exact_mapper.hpp) that keeps EA's exactness at a
// fraction of its runtime.
#pragma once

#include <cstddef>
#include <vector>

#include "util/bit_matrix.hpp"

namespace mcx {

class BipartiteGraph {
public:
  BipartiteGraph(std::size_t numLeft, std::size_t numRight);

  void addEdge(std::size_t left, std::size_t right);

  std::size_t numLeft() const { return adj_.size(); }
  std::size_t numRight() const { return numRight_; }
  const std::vector<std::size_t>& neighbors(std::size_t left) const;

private:
  std::size_t numRight_;
  std::vector<std::vector<std::size_t>> adj_;
};

struct MatchingResult {
  /// Size of the maximum matching.
  std::size_t size = 0;
  /// matchOfLeft[l] = matched right vertex or kUnmatched.
  std::vector<std::size_t> matchOfLeft;
  static constexpr std::size_t kUnmatched = static_cast<std::size_t>(-1);

  bool perfectForLeft(std::size_t numLeft) const { return size == numLeft; }
};

/// Maximum matching via Hopcroft-Karp. The same warm-start contract as the
/// bit-matrix overload below: the greedy seed changes which maximum
/// matching is returned, never its size.
MatchingResult hopcroftKarp(const BipartiteGraph& graph, bool warmStart = true);

/// Maximum matching directly on a bit-matrix adjacency (left vertex = row,
/// right vertex = column). Neighbor lists are walked word-at-a-time with
/// countr_zero, so no per-edge adjacency structure is ever materialized —
/// the fast path for the crossbar row-matching feasibility question.
///
/// With @p warmStart (the default) the phases are seeded with a greedy
/// maximal matching — each left vertex takes its first free neighbor — so
/// augmentation only runs for the leftovers. On the near-clean crossbar
/// adjacencies of the Monte Carlo sweeps the greedy pass places almost
/// every FM row (a defect-free CM row accepts any FM row) and the BFS/DFS
/// phases merely repair around the defective rows. The matching SIZE is
/// the same either way (Hopcroft-Karp is maximum from any initial
/// matching); only which maximum matching is returned can differ.
MatchingResult hopcroftKarp(const BitMatrix& adjacency, bool warmStart = true);

}  // namespace mcx
