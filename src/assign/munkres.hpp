// Munkres (Hungarian) assignment algorithm.
//
// The paper's defect-tolerant mapper assigns function-matrix rows to
// crossbar rows through a 0/1 "matching matrix" (0 = rows compatible) and
// declares a mapping valid iff a zero-total-cost assignment exists
// (Munkres 1957, reference [21] of the paper). This implementation solves
// the general rectangular min-cost assignment problem in O(n^2 m).
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <vector>

namespace mcx {

/// Dense cost matrix, rows*cols, row-major.
class CostMatrix {
public:
  CostMatrix(std::size_t rows, std::size_t cols, std::int64_t value = 0)
      : rows_(rows), cols_(cols), v_(rows * cols, value) {}

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::int64_t& at(std::size_t r, std::size_t c) { return v_[r * cols_ + c]; }
  std::int64_t at(std::size_t r, std::size_t c) const { return v_[r * cols_ + c]; }

private:
  std::size_t rows_, cols_;
  std::vector<std::int64_t> v_;
};

struct AssignmentResult {
  /// assignment[r] = column assigned to row r (every row is assigned;
  /// requires rows <= cols).
  std::vector<std::size_t> assignment;
  /// Total cost of the assignment.
  std::int64_t cost = 0;
};

/// Solve min-cost assignment of every row to a distinct column.
/// Requires rows() <= cols(). Costs must be non-negative.
AssignmentResult munkresSolve(const CostMatrix& cost);

}  // namespace mcx
