// Brute-force assignment solver: reference oracle for Munkres tests and for
// the tiny worked examples from the paper (Fig. 8).
#pragma once

#include "assign/munkres.hpp"

namespace mcx {

/// Exhaustive min-cost assignment (rows <= cols <= ~10). Exponential; test
/// and example use only.
AssignmentResult bruteForceAssign(const CostMatrix& cost);

}  // namespace mcx
