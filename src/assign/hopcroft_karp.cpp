#include "assign/hopcroft_karp.hpp"

#include <limits>
#include <queue>

#include "util/error.hpp"

namespace mcx {

BipartiteGraph::BipartiteGraph(std::size_t numLeft, std::size_t numRight)
    : numRight_(numRight), adj_(numLeft) {}

void BipartiteGraph::addEdge(std::size_t left, std::size_t right) {
  MCX_REQUIRE(left < adj_.size() && right < numRight_, "BipartiteGraph::addEdge out of range");
  adj_[left].push_back(right);
}

const std::vector<std::size_t>& BipartiteGraph::neighbors(std::size_t left) const {
  MCX_REQUIRE(left < adj_.size(), "BipartiteGraph::neighbors out of range");
  return adj_[left];
}

namespace {

constexpr std::size_t kInf = std::numeric_limits<std::size_t>::max();

struct HkState {
  const BipartiteGraph& g;
  std::vector<std::size_t> matchL, matchR, dist;

  explicit HkState(const BipartiteGraph& graph)
      : g(graph),
        matchL(graph.numLeft(), MatchingResult::kUnmatched),
        matchR(graph.numRight(), MatchingResult::kUnmatched),
        dist(graph.numLeft()) {}

  bool bfs() {
    std::queue<std::size_t> q;
    for (std::size_t l = 0; l < g.numLeft(); ++l) {
      if (matchL[l] == MatchingResult::kUnmatched) {
        dist[l] = 0;
        q.push(l);
      } else {
        dist[l] = kInf;
      }
    }
    bool foundAugmenting = false;
    while (!q.empty()) {
      const std::size_t l = q.front();
      q.pop();
      for (const std::size_t r : g.neighbors(l)) {
        const std::size_t next = matchR[r];
        if (next == MatchingResult::kUnmatched) {
          foundAugmenting = true;
        } else if (dist[next] == kInf) {
          dist[next] = dist[l] + 1;
          q.push(next);
        }
      }
    }
    return foundAugmenting;
  }

  bool dfs(std::size_t l) {
    for (const std::size_t r : g.neighbors(l)) {
      const std::size_t next = matchR[r];
      if (next == MatchingResult::kUnmatched || (dist[next] == dist[l] + 1 && dfs(next))) {
        matchL[l] = r;
        matchR[r] = l;
        return true;
      }
    }
    dist[l] = kInf;
    return false;
  }
};

}  // namespace

MatchingResult hopcroftKarp(const BipartiteGraph& graph) {
  HkState state(graph);
  MatchingResult result;
  while (state.bfs()) {
    for (std::size_t l = 0; l < graph.numLeft(); ++l)
      if (state.matchL[l] == MatchingResult::kUnmatched && state.dfs(l)) ++result.size;
  }
  result.matchOfLeft = std::move(state.matchL);
  return result;
}

}  // namespace mcx
