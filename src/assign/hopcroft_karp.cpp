#include "assign/hopcroft_karp.hpp"

#include <bit>
#include <limits>
#include <vector>

#include "obs/metrics.hpp"
#include "util/error.hpp"

namespace mcx {

BipartiteGraph::BipartiteGraph(std::size_t numLeft, std::size_t numRight)
    : numRight_(numRight), adj_(numLeft) {}

void BipartiteGraph::addEdge(std::size_t left, std::size_t right) {
  MCX_REQUIRE(left < adj_.size() && right < numRight_, "BipartiteGraph::addEdge out of range");
  adj_[left].push_back(right);
}

const std::vector<std::size_t>& BipartiteGraph::neighbors(std::size_t left) const {
  MCX_REQUIRE(left < adj_.size(), "BipartiteGraph::neighbors out of range");
  return adj_[left];
}

namespace {

constexpr std::size_t kInf = std::numeric_limits<std::size_t>::max();

// Adjacency-list view of a BipartiteGraph.
struct ListGraphView {
  const BipartiteGraph& g;

  std::size_t numLeft() const { return g.numLeft(); }
  std::size_t numRight() const { return g.numRight(); }

  template <typename Fn>
  bool forEachNeighbor(std::size_t l, Fn&& fn) const {
    for (const std::size_t r : g.neighbors(l)) {
      if (fn(r)) return true;
    }
    return false;
  }

  /// Greedy maximal seed: every left takes its first unmatched neighbor.
  std::size_t greedySeed(std::vector<std::size_t>& matchL,
                         std::vector<std::size_t>& matchR) const {
    std::size_t placed = 0;
    for (std::size_t l = 0; l < g.numLeft(); ++l) {
      for (const std::size_t r : g.neighbors(l)) {
        if (matchR[r] != MatchingResult::kUnmatched) continue;
        matchL[l] = r;
        matchR[r] = l;
        ++placed;
        break;
      }
    }
    return placed;
  }
};

// Bit-matrix view: each set bit of row l is an edge l -> (word * 64 + bit),
// walked word-at-a-time with countr_zero — no per-edge adjacency structure.
struct BitGraphView {
  const BitMatrix& adj;

  std::size_t numLeft() const { return adj.rows(); }
  std::size_t numRight() const { return adj.cols(); }

  template <typename Fn>
  bool forEachNeighbor(std::size_t l, Fn&& fn) const {
    const auto words = adj.rowWords(l);
    for (std::size_t i = 0; i < words.size(); ++i) {
      BitMatrix::Word bits = words[i];
      while (bits != 0) {
        const std::size_t r = i * BitMatrix::kWordBits +
                              static_cast<std::size_t>(std::countr_zero(bits));
        bits &= bits - 1;
        if (fn(r)) return true;
      }
    }
    return false;
  }

  /// Greedy maximal seed, word-parallel: candidate words are ANDed with a
  /// free-rights mask, so already-taken neighbors are skipped 64 at a time
  /// instead of bit by bit (they dominate once the matching fills up).
  std::size_t greedySeed(std::vector<std::size_t>& matchL,
                         std::vector<std::size_t>& matchR) const {
    using Word = BitMatrix::Word;
    if (adj.rows() == 0 || adj.cols() == 0) return 0;
    const std::size_t words = adj.rowWords(0).size();
    std::vector<Word> free(words, ~Word{0});
    free[words - 1] = BitMatrix::tailMask(adj.cols());
    std::size_t placed = 0;
    for (std::size_t l = 0; l < adj.rows(); ++l) {
      const auto row = adj.rowWords(l);
      for (std::size_t w = 0; w < words; ++w) {
        const Word cand = row[w] & free[w];
        if (cand == 0) continue;
        const std::size_t bit = static_cast<std::size_t>(std::countr_zero(cand));
        const std::size_t r = w * BitMatrix::kWordBits + bit;
        free[w] &= ~(Word{1} << bit);
        matchL[l] = r;
        matchR[r] = l;
        ++placed;
        break;
      }
    }
    return placed;
  }
};

// One Hopcroft-Karp engine for every graph representation: the Graph policy
// only supplies vertex counts and neighbor iteration.
template <typename Graph>
struct HkEngine {
  Graph g;
  std::vector<std::size_t> matchL, matchR, dist, queue;

  explicit HkEngine(Graph graph)
      : g(graph),
        matchL(g.numLeft(), MatchingResult::kUnmatched),
        matchR(g.numRight(), MatchingResult::kUnmatched),
        dist(g.numLeft()) {}

  bool bfs() {
    // Flat FIFO (reused across phases): a std::queue would allocate a deque
    // chunk per phase, on the warm-started per-sample path.
    queue.clear();
    std::size_t head = 0;
    for (std::size_t l = 0; l < g.numLeft(); ++l) {
      if (matchL[l] == MatchingResult::kUnmatched) {
        dist[l] = 0;
        queue.push_back(l);
      } else {
        dist[l] = kInf;
      }
    }
    bool foundAugmenting = false;
    while (head < queue.size()) {
      const std::size_t l = queue[head];
      ++head;
      g.forEachNeighbor(l, [&](std::size_t r) {
        const std::size_t next = matchR[r];
        if (next == MatchingResult::kUnmatched) {
          foundAugmenting = true;
        } else if (dist[next] == kInf) {
          dist[next] = dist[l] + 1;
          queue.push_back(next);
        }
        return false;
      });
    }
    return foundAugmenting;
  }

  bool dfs(std::size_t l) {
    const bool augmented = g.forEachNeighbor(l, [&](std::size_t r) {
      const std::size_t next = matchR[r];
      if (next == MatchingResult::kUnmatched || (dist[next] == dist[l] + 1 && dfs(next))) {
        matchL[l] = r;
        matchR[r] = l;
        return true;
      }
      return false;
    });
    if (!augmented) dist[l] = kInf;
    return augmented;
  }

  MatchingResult run(bool warmStart = false) {
    MatchingResult result;
    std::size_t phases = 0;
    if (warmStart) {
      result.size = g.greedySeed(matchL, matchR);
      if (result.size == g.numLeft()) {  // perfect already: no phases needed
        recordHkProfile(warmStart, phases);
        result.matchOfLeft = std::move(matchL);
        return result;
      }
    }
    while (bfs()) {
      ++phases;
      for (std::size_t l = 0; l < g.numLeft(); ++l)
        if (matchL[l] == MatchingResult::kUnmatched && dfs(l)) ++result.size;
    }
    recordHkProfile(warmStart, phases);
    result.matchOfLeft = std::move(matchL);
    return result;
  }

  /// Warm-vs-cold phase telemetry. A warm HK run costs ~1µs, so even a
  /// registry-counter increment is measurable here — everything hides
  /// behind the profilingArmed() relaxed-load gate (one branch disarmed).
  static void recordHkProfile(bool warmStart, std::size_t phases) {
    if (!obs::profilingArmed()) return;
    static obs::Counter& warmRuns = obs::Registry::global().counter("hk.warm_runs");
    static obs::Counter& coldRuns = obs::Registry::global().counter("hk.cold_runs");
    static obs::Counter& warmPhases = obs::Registry::global().counter("hk.warm_phases");
    static obs::Counter& coldPhases = obs::Registry::global().counter("hk.cold_phases");
    if (warmStart) {
      warmRuns.add(1);
      warmPhases.add(phases);
    } else {
      coldRuns.add(1);
      coldPhases.add(phases);
    }
  }
};

}  // namespace

MatchingResult hopcroftKarp(const BipartiteGraph& graph, bool warmStart) {
  return HkEngine<ListGraphView>(ListGraphView{graph}).run(warmStart);
}

MatchingResult hopcroftKarp(const BitMatrix& adjacency, bool warmStart) {
  return HkEngine<BitGraphView>(BitGraphView{adjacency}).run(warmStart);
}

}  // namespace mcx
