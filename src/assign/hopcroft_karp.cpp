#include "assign/hopcroft_karp.hpp"

#include <bit>
#include <limits>
#include <queue>

#include "util/error.hpp"

namespace mcx {

BipartiteGraph::BipartiteGraph(std::size_t numLeft, std::size_t numRight)
    : numRight_(numRight), adj_(numLeft) {}

void BipartiteGraph::addEdge(std::size_t left, std::size_t right) {
  MCX_REQUIRE(left < adj_.size() && right < numRight_, "BipartiteGraph::addEdge out of range");
  adj_[left].push_back(right);
}

const std::vector<std::size_t>& BipartiteGraph::neighbors(std::size_t left) const {
  MCX_REQUIRE(left < adj_.size(), "BipartiteGraph::neighbors out of range");
  return adj_[left];
}

namespace {

constexpr std::size_t kInf = std::numeric_limits<std::size_t>::max();

// Adjacency-list view of a BipartiteGraph.
struct ListGraphView {
  const BipartiteGraph& g;

  std::size_t numLeft() const { return g.numLeft(); }
  std::size_t numRight() const { return g.numRight(); }

  template <typename Fn>
  bool forEachNeighbor(std::size_t l, Fn&& fn) const {
    for (const std::size_t r : g.neighbors(l)) {
      if (fn(r)) return true;
    }
    return false;
  }
};

// Bit-matrix view: each set bit of row l is an edge l -> (word * 64 + bit),
// walked word-at-a-time with countr_zero — no per-edge adjacency structure.
struct BitGraphView {
  const BitMatrix& adj;

  std::size_t numLeft() const { return adj.rows(); }
  std::size_t numRight() const { return adj.cols(); }

  template <typename Fn>
  bool forEachNeighbor(std::size_t l, Fn&& fn) const {
    const auto words = adj.rowWords(l);
    for (std::size_t i = 0; i < words.size(); ++i) {
      BitMatrix::Word bits = words[i];
      while (bits != 0) {
        const std::size_t r = i * BitMatrix::kWordBits +
                              static_cast<std::size_t>(std::countr_zero(bits));
        bits &= bits - 1;
        if (fn(r)) return true;
      }
    }
    return false;
  }
};

// One Hopcroft-Karp engine for every graph representation: the Graph policy
// only supplies vertex counts and neighbor iteration.
template <typename Graph>
struct HkEngine {
  Graph g;
  std::vector<std::size_t> matchL, matchR, dist;

  explicit HkEngine(Graph graph)
      : g(graph),
        matchL(g.numLeft(), MatchingResult::kUnmatched),
        matchR(g.numRight(), MatchingResult::kUnmatched),
        dist(g.numLeft()) {}

  bool bfs() {
    std::queue<std::size_t> q;
    for (std::size_t l = 0; l < g.numLeft(); ++l) {
      if (matchL[l] == MatchingResult::kUnmatched) {
        dist[l] = 0;
        q.push(l);
      } else {
        dist[l] = kInf;
      }
    }
    bool foundAugmenting = false;
    while (!q.empty()) {
      const std::size_t l = q.front();
      q.pop();
      g.forEachNeighbor(l, [&](std::size_t r) {
        const std::size_t next = matchR[r];
        if (next == MatchingResult::kUnmatched) {
          foundAugmenting = true;
        } else if (dist[next] == kInf) {
          dist[next] = dist[l] + 1;
          q.push(next);
        }
        return false;
      });
    }
    return foundAugmenting;
  }

  bool dfs(std::size_t l) {
    const bool augmented = g.forEachNeighbor(l, [&](std::size_t r) {
      const std::size_t next = matchR[r];
      if (next == MatchingResult::kUnmatched || (dist[next] == dist[l] + 1 && dfs(next))) {
        matchL[l] = r;
        matchR[r] = l;
        return true;
      }
      return false;
    });
    if (!augmented) dist[l] = kInf;
    return augmented;
  }

  MatchingResult run() {
    MatchingResult result;
    while (bfs()) {
      for (std::size_t l = 0; l < g.numLeft(); ++l)
        if (matchL[l] == MatchingResult::kUnmatched && dfs(l)) ++result.size;
    }
    result.matchOfLeft = std::move(matchL);
    return result;
  }
};

}  // namespace

MatchingResult hopcroftKarp(const BipartiteGraph& graph) {
  return HkEngine<ListGraphView>(ListGraphView{graph}).run();
}

MatchingResult hopcroftKarp(const BitMatrix& adjacency) {
  return HkEngine<BitGraphView>(BitGraphView{adjacency}).run();
}

}  // namespace mcx
