#include "assign/brute_force.hpp"

#include <algorithm>
#include <numeric>

#include "util/error.hpp"

namespace mcx {

AssignmentResult bruteForceAssign(const CostMatrix& cost) {
  const std::size_t n = cost.rows();
  const std::size_t m = cost.cols();
  MCX_REQUIRE(n <= m, "bruteForceAssign: requires rows <= cols");
  MCX_REQUIRE(m <= 10, "bruteForceAssign: limited to 10 columns");

  std::vector<std::size_t> perm(m);
  std::iota(perm.begin(), perm.end(), 0u);

  AssignmentResult best;
  best.cost = std::numeric_limits<std::int64_t>::max();
  do {
    std::int64_t c = 0;
    for (std::size_t i = 0; i < n; ++i) c += cost.at(i, perm[i]);
    if (c < best.cost) {
      best.cost = c;
      best.assignment.assign(perm.begin(), perm.begin() + static_cast<std::ptrdiff_t>(n));
    }
  } while (std::next_permutation(perm.begin(), perm.end()));
  return best;
}

}  // namespace mcx
