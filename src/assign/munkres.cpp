#include "assign/munkres.hpp"

#include "util/error.hpp"

namespace mcx {

AssignmentResult munkresSolve(const CostMatrix& cost) {
  const std::size_t n = cost.rows();
  const std::size_t m = cost.cols();
  MCX_REQUIRE(n <= m, "munkresSolve: requires rows <= cols");

  // Shortest augmenting path formulation (equivalent to Munkres; standard
  // O(n^2 m) potentials method). 1-based arrays per the classic exposition.
  constexpr std::int64_t kInf = std::numeric_limits<std::int64_t>::max() / 4;
  std::vector<std::int64_t> u(n + 1, 0), v(m + 1, 0);
  std::vector<std::size_t> p(m + 1, 0);    // p[col] = row matched to col (0 = none)
  std::vector<std::size_t> way(m + 1, 0);

  for (std::size_t i = 1; i <= n; ++i) {
    p[0] = i;
    std::size_t j0 = 0;
    std::vector<std::int64_t> minv(m + 1, kInf);
    std::vector<char> used(m + 1, false);
    do {
      used[j0] = true;
      const std::size_t i0 = p[j0];
      std::int64_t delta = kInf;
      std::size_t j1 = 0;
      for (std::size_t j = 1; j <= m; ++j) {
        if (used[j]) continue;
        const std::int64_t cur =
            cost.at(i0 - 1, j - 1) - u[i0] - v[j];
        if (cur < minv[j]) {
          minv[j] = cur;
          way[j] = j0;
        }
        if (minv[j] < delta) {
          delta = minv[j];
          j1 = j;
        }
      }
      for (std::size_t j = 0; j <= m; ++j) {
        if (used[j]) {
          u[p[j]] += delta;
          v[j] -= delta;
        } else {
          minv[j] -= delta;
        }
      }
      j0 = j1;
    } while (p[j0] != 0);
    do {
      const std::size_t j1 = way[j0];
      p[j0] = p[j1];
      j0 = j1;
    } while (j0 != 0);
  }

  AssignmentResult result;
  result.assignment.assign(n, 0);
  for (std::size_t j = 1; j <= m; ++j) {
    if (p[j] != 0) result.assignment[p[j] - 1] = j - 1;
  }
  for (std::size_t i = 0; i < n; ++i) result.cost += cost.at(i, result.assignment[i]);
  return result;
}

}  // namespace mcx
