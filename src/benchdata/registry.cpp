#include "benchdata/registry.hpp"

#include <map>

#include "benchdata/synthetic.hpp"
#include "logic/espresso.hpp"
#include "logic/generators.hpp"
#include "logic/isop.hpp"
#include "util/error.hpp"

namespace mcx {

namespace {

struct Recipe {
  BenchmarkInfo info;
  double literalsPerProduct = 4.0;   // synthetic stand-ins only
  double outputsPerProduct = 1.0;
  SyntheticTails tails;
  std::vector<std::size_t> groups;   // structure-seeded stand-ins only
};

std::vector<Recipe> makeRecipes() {
  std::vector<Recipe> r;
  auto add = [&r](BenchmarkInfo info, double litPP = 4.0, double outPP = 1.0,
                  std::vector<std::size_t> groups = {}, SyntheticTails tails = {}) {
    Recipe rec;
    rec.info = std::move(info);
    rec.literalsPerProduct = litPP;
    rec.outputsPerProduct = outPP;
    rec.tails = tails;
    rec.groups = std::move(groups);
    r.push_back(std::move(rec));
  };

  using Src = BenchmarkSource;
  // ---- Table II circuits (paper order) ----------------------------------
  add({"rd53", 5, 3, 31, Src::Generated,
       "weight function, generated exactly; P measured by our minimizer",
       544, 0.33, 0.98, 0.98, false, true, true});
  add({"squar5", 5, 8, 25, Src::Synthetic, "stand-in with paper (I,O,P)",
       858, 0.16, 1.00, 1.00, false, false, true},
      3.3, 1.5);
  add({"bw", 5, 28, 22, Src::Synthetic,
       "stand-in; paper Table II prints O=8/area 330, Table I area 3300 implies O=28 "
       "(MCNC bw is 5-in/28-out); we use O=28",
       3300, 0.12, 1.00, 1.00, false, true, true},
      4.5, 11.0);
  add({"inc", 7, 9, 30, Src::Synthetic, "stand-in with paper (I,O,P)",
       1248, 0.17, 1.00, 1.00, false, false, true},
      4.0, 2.5);
  add({"misex1", 8, 7, 12, Src::Synthetic, "stand-in with paper (I,O,P)",
       570, 0.19, 1.00, 1.00, false, true, true},
      5.0, 2.9);
  add({"sqrt8", 8, 4, 29, Src::Generated,
       "integer sqrt, generated exactly; paper prints I=7 but its areas imply I=8; "
       "Table II uses the dual (complement), area 792",
       792, 0.21, 1.00, 1.00, true, true, true});
  add({"sao2", 10, 4, 58, Src::Synthetic, "stand-in with paper (I,O,P)",
       1736, 0.29, 0.94, 0.97, false, false, true},
      7.3, 1.2);
  add({"rd73", 7, 3, 127, Src::Generated,
       "weight function, generated exactly; P measured by our minimizer",
       2600, 0.34, 0.78, 0.92, false, false, true});
  add({"clip", 9, 5, 120, Src::Synthetic,
       "stand-in with paper (I,O,P); 40% minterm-dense products reproduce the paper's "
       "sub-100% success at the same inclusion ratio",
       3500, 0.23, 0.76, 0.79, false, false, true},
      2.5, 1.3, {}, {0.40, 0.0, 0.0});
  add({"rd84", 8, 4, 255, Src::Generated,
       "weight function, generated exactly; P measured by our minimizer",
       6216, 0.33, 0.82, 0.89, false, true, true});
  add({"ex1010", 10, 10, 284, Src::Synthetic, "stand-in with paper (I,O,P)",
       11760, 0.23, 1.00, 1.00, false, false, true},
      7.4, 2.0);
  add({"table3", 14, 14, 175, Src::Synthetic, "stand-in with paper (I,O,P)",
       10584, 0.25, 1.00, 1.00, false, false, true},
      12.0, 3.0);
  add({"misex3c", 14, 14, 197, Src::Synthetic,
       "stand-in with paper (I,O,P); paper area 11856 vs formula (197+14)(56)=11816",
       11856, 0.13, 1.00, 1.00, false, false, true},
      6.0, 1.7);
  add({"exp5", 8, 63, 74, Src::Synthetic,
       "stand-in with paper (I,O,P); 15% of products share ~26 of 63 outputs, the "
       "wide-row tail that drives the paper's 65% success",
       19454, 0.10, 0.65, 0.80, false, false, true},
      7.5, 12.0, {}, {0.0, 0.15, 26.0});
  add({"apex4", 9, 19, 436, Src::Synthetic,
       "stand-in with paper (I,O,P); literal density 8.3/9 — pure-minterm rows would "
       "make 10%-defective optimum crossbars infeasible (both rails of a variable dead "
       "kills a row for every product), which the real apex4 avoids",
       25480, 0.21, 1.00, 1.00, false, false, true},
      8.3, 3.9);
  add({"alu4", 14, 8, 575, Src::Synthetic, "stand-in with paper (I,O,P)",
       25652, 0.19, 1.00, 1.00, false, false, true},
      7.0, 1.45);

  // ---- Table I extras ----------------------------------------------------
  add({"con1", 7, 2, 9, Src::Synthetic,
       "stand-in; P=9 derived from Table I area 198 = (9+2)(14+4)",
       198, std::nullopt, std::nullopt, std::nullopt, false, true, false},
      4.0, 1.2);
  add({"b12", 15, 9, 43, Src::Synthetic,
       "stand-in; P=43 derived from Table I area 2496 = (43+9)(30+18)",
       2496, std::nullopt, std::nullopt, std::nullopt, false, true, false},
      8.0, 1.5);
  add({"t481", 16, 1, 256, Src::StructureSeeded,
       "product-of-sums stand-in (4x4x4x4); paper's t481 has P=481 — a random SOP "
       "would lose the published multi-level advantage, structure is preserved instead",
       std::nullopt, std::nullopt, std::nullopt, std::nullopt, false, true, false},
      0.0, 0.0, {4, 4, 4, 4});
  add({"cordic", 23, 2, 1024, Src::StructureSeeded,
       "product-of-sums stand-in (4^5 over 20 of 23 vars, duplicated to 2 outputs); "
       "paper's cordic has P=914",
       std::nullopt, std::nullopt, std::nullopt, std::nullopt, false, true, false},
      0.0, 0.0, {4, 4, 4, 4, 4});
  return r;
}

const std::vector<Recipe>& recipes() {
  static const std::vector<Recipe> r = makeRecipes();
  return r;
}

const Recipe& findRecipe(const std::string& name) {
  for (const Recipe& r : recipes())
    if (r.info.name == name) return r;
  throw InvalidArgument("unknown benchmark: " + name);
}

Cover buildGenerated(const std::string& name, bool polish) {
  TruthTable tt;
  if (name == "rd53") tt = weightFunction(5);
  else if (name == "rd73") tt = weightFunction(7);
  else if (name == "rd84") tt = weightFunction(8);
  else if (name == "sqrt8") tt = sqrtFunction(8);
  else throw InvalidArgument("unknown generated benchmark: " + name);

  Cover cover = isopCover(tt);
  if (polish) cover = espressoMinimize(cover);
  if (name == "sqrt8") {
    // The paper implements sqrt8 as its dual (Table II bold row): minimize
    // the complement and keep it when smaller, which it is (38 vs 29 in the
    // paper's numbers).
    Cover comp = isopCover(tt.complemented());
    if (polish) comp = espressoMinimize(comp);
    if (comp.size() < cover.size()) cover = std::move(comp);
  }
  return cover;
}

Cover buildCircuit(const Recipe& r, bool polish) {
  switch (r.info.source) {
    case BenchmarkSource::Generated:
      return buildGenerated(r.info.name, polish);
    case BenchmarkSource::Synthetic:
      return syntheticCover(r.info.name, r.info.inputs, r.info.outputs, r.info.products,
                            r.literalsPerProduct, r.outputsPerProduct, r.tails);
    case BenchmarkSource::StructureSeeded: {
      Cover single = productOfSumsCover(r.info.inputs, r.groups);
      if (r.info.outputs == 1) return single;
      // Multi-output structure-seeded circuits replicate the function with a
      // rotated variable assignment per output.
      Cover multi(r.info.inputs, r.info.outputs);
      for (std::size_t o = 0; o < r.info.outputs; ++o) {
        for (const Cube& c : single.cubes()) {
          Cube mc(r.info.inputs, r.info.outputs);
          for (std::size_t v = 0; v < r.info.inputs; ++v)
            mc.setLit((v + o) % r.info.inputs, c.lit(v));
          mc.setOut(o);
          multi.add(std::move(mc));
        }
      }
      multi.mergeDuplicateInputs();
      return multi;
    }
  }
  throw InvalidArgument("bad benchmark source");
}

}  // namespace

const std::vector<BenchmarkInfo>& paperBenchmarks() {
  static const std::vector<BenchmarkInfo> infos = [] {
    std::vector<BenchmarkInfo> v;
    for (const Recipe& r : recipes()) v.push_back(r.info);
    return v;
  }();
  return infos;
}

BenchmarkCircuit loadBenchmark(const std::string& name) {
  const Recipe& r = findRecipe(name);
  return {r.info, buildCircuit(r, /*polish=*/true)};
}

BenchmarkCircuit loadBenchmarkFast(const std::string& name) {
  const Recipe& r = findRecipe(name);
  return {r.info, buildCircuit(r, /*polish=*/false)};
}

}  // namespace mcx
