// Registry of the paper's benchmark circuits (Tables I and II).
//
// Each entry records the paper's published statistics (inputs, outputs,
// products, success rates where given) and how this library rebuilds the
// circuit (exact generation vs. synthetic stand-in — see
// benchdata/synthetic.hpp for the substitution policy).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "logic/cover.hpp"

namespace mcx {

enum class BenchmarkSource {
  Generated,      ///< mathematically defined, generated exactly
  Synthetic,      ///< random irredundant stand-in with the paper's (I, O, P)
  StructureSeeded ///< product-of-sums stand-in preserving factorability
};

struct BenchmarkInfo {
  std::string name;
  std::size_t inputs = 0;
  std::size_t outputs = 0;
  std::size_t products = 0;  ///< paper's P (Table II / derived from Table I)
  BenchmarkSource source = BenchmarkSource::Synthetic;
  std::string note;          ///< substitution / typo documentation

  // Paper-published reference values (when the table lists the circuit).
  std::optional<std::size_t> paperAreaTwoLevel;   ///< Table I/II area cost
  std::optional<double> paperIr;                   ///< Table II IR
  std::optional<double> paperPsuccHba;             ///< Table II HBA success
  std::optional<double> paperPsuccEa;              ///< Table II EA success
  bool paperUsedDual = false;                      ///< bold row in Table II
  bool inTable1 = false;
  bool inTable2 = false;
};

struct BenchmarkCircuit {
  BenchmarkInfo info;
  Cover cover;
};

/// All registered circuits, in paper order (Table II first, Table I extras
/// after).
const std::vector<BenchmarkInfo>& paperBenchmarks();

/// Build a circuit by name. Generated circuits run the ISOP + espresso
/// pipeline (their P is measured, not fixed); stand-ins match the paper's P
/// exactly by construction. Throws InvalidArgument for unknown names.
BenchmarkCircuit loadBenchmark(const std::string& name);

/// Like loadBenchmark but without espresso polish on generated circuits
/// (faster; P may be slightly larger).
BenchmarkCircuit loadBenchmarkFast(const std::string& name);

}  // namespace mcx
