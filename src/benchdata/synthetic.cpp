#include "benchdata/synthetic.hpp"

#include <numeric>

#include "logic/generators.hpp"
#include "util/error.hpp"

namespace mcx {

namespace {

std::uint64_t nameSeed(const std::string& name) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (const char c : name) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ull;
  }
  return h;
}

}  // namespace

Cover syntheticCover(const std::string& name, std::size_t nin, std::size_t nout,
                     std::size_t products, double literalsPerProduct,
                     double outputsPerProduct, const SyntheticTails& tails) {
  Rng rng(nameSeed(name));
  RandomSopOptions opts;
  opts.nin = nin;
  opts.nout = nout;
  opts.products = products;
  opts.literalsPerProduct = literalsPerProduct;
  opts.outputsPerProduct = outputsPerProduct;
  opts.heavyLiteralFraction = tails.heavyLiteralFraction;
  opts.heavyOutputFraction = tails.heavyOutputFraction;
  opts.heavyOutputsPerProduct = tails.heavyOutputsPerProduct;
  opts.irredundant = true;
  return randomSop(opts, rng);
}

Cover productOfSumsCover(std::size_t nin, const std::vector<std::size_t>& groupSizes) {
  MCX_REQUIRE(!groupSizes.empty(), "productOfSumsCover: no groups");
  const std::size_t used = std::accumulate(groupSizes.begin(), groupSizes.end(), std::size_t{0});
  MCX_REQUIRE(used <= nin, "productOfSumsCover: groups exceed variable budget");

  // Expand Π_i (x_{g_i,1} + ... + x_{g_i,k_i}) by choosing one variable per
  // group; the expansion is the unique minimal SOP of this unate function.
  std::size_t products = 1;
  for (const std::size_t s : groupSizes) {
    MCX_REQUIRE(s >= 1, "productOfSumsCover: empty group");
    products *= s;
  }
  MCX_REQUIRE(products <= 1'000'000, "productOfSumsCover: expansion too large");

  Cover cover(nin, 1);
  std::vector<std::size_t> choice(groupSizes.size(), 0);
  for (std::size_t p = 0; p < products; ++p) {
    Cube c(nin, 1);
    std::size_t base = 0;
    for (std::size_t g = 0; g < groupSizes.size(); ++g) {
      c.setLit(base + choice[g], Lit::Pos);
      base += groupSizes[g];
    }
    c.setOut(0);
    cover.add(std::move(c));
    // Increment the mixed-radix counter.
    for (std::size_t g = 0; g < groupSizes.size(); ++g) {
      if (++choice[g] < groupSizes[g]) break;
      choice[g] = 0;
    }
  }
  return cover;
}

}  // namespace mcx
