// Synthetic benchmark construction (MCNC/IWLS'93 substitutes).
//
// The paper evaluates on MCNC PLA benchmarks, which are not redistributable
// here. Three substitution strategies preserve what the experiments measure:
//   1. exact generation for mathematically defined circuits
//      (logic/generators.hpp: rd53/rd73/rd84, sqrt8),
//   2. statistical stand-ins with the paper's exact (I, O, P) — identical
//      crossbar dimensions, area cost and FM density, which is what the
//      defect-mapping Monte Carlo depends on,
//   3. structure-seeded stand-ins (product-of-sums functions with small
//      factored forms) for t481/cordic, whose published result is that
//      multi-level synthesis wins; a random SOP would not preserve that.
#pragma once

#include <cstddef>
#include <string>

#include "logic/cover.hpp"
#include "util/rng.hpp"

namespace mcx {

/// Random irredundant cover with exactly (nin, nout, products), a literal
/// density and an output-sharing density tuned per circuit so the inclusion
/// ratio tracks the paper's Table II. Deterministic per name.
struct SyntheticTails {
  double heavyLiteralFraction = 0.0;
  double heavyOutputFraction = 0.0;
  double heavyOutputsPerProduct = 0.0;
};

Cover syntheticCover(const std::string& name, std::size_t nin, std::size_t nout,
                     std::size_t products, double literalsPerProduct,
                     double outputsPerProduct = 1.0, const SyntheticTails& tails = {});

/// Positive-unate product-of-sums function: f = OR(g1) AND OR(g2) ... where
/// group i uses groupSizes[i] fresh variables. Its unique minimal SOP is the
/// full expansion (prod of sizes products) while its factored NAND form has
/// ~|groups| gates, reproducing the t481/cordic "multi-level wins" shape.
/// nin must be >= sum(groupSizes); extra variables are unused by the
/// function but present in the interface... (they would make outputs
/// constant in those vars, which is fine for area accounting).
Cover productOfSumsCover(std::size_t nin, const std::vector<std::size_t>& groupSizes);

}  // namespace mcx
