#include "sat/solver.hpp"

#include <algorithm>
#include <cstddef>
#include <utility>

#include "util/error.hpp"

namespace mcx::sat {

const char* verdictLabel(Verdict v) {
  switch (v) {
    case Verdict::Sat: return "sat";
    case Verdict::Unsat: return "unsat";
    case Verdict::Unknown: break;
  }
  return "unknown";
}

namespace {

constexpr std::int32_t kNoReason = -1;

/// Restart intervals follow the Luby sequence (1, 1, 2, 1, 1, 2, 4, ...)
/// scaled by kRestartBase conflicts — the standard heavy-tail cure, and a
/// fixed sequence, so restarts cost nothing in determinism.
constexpr std::uint64_t kRestartBase = 100;

std::uint64_t luby(std::uint64_t i) {
  std::uint64_t size = 1;
  std::uint32_t seq = 0;
  while (size < i + 1) {
    size = 2 * size + 1;
    ++seq;
  }
  while (size - 1 != i) {
    size = (size - 1) / 2;
    --seq;
    i %= size;
  }
  return std::uint64_t{1} << seq;
}

class Solver {
public:
  Solver(const Cnf& cnf, const SolverOptions& opts) : opts_(opts), nVars_(cnf.numVars()) {
    assigns_.assign(nVars_ + 1, 0);
    level_.assign(nVars_ + 1, 0);
    reason_.assign(nVars_ + 1, kNoReason);
    seen_.assign(nVars_ + 1, 0);
    activity_.assign(nVars_ + 1, 0.0);
    // Initial phase true: on exactly-one-constrained encodings (the
    // matching CNF) a positive decision commits one group member and the
    // at-most-one clauses sweep the rest of its row and column away in
    // unit propagation — the classic constructive matching search. (A
    // false-first default instead whittles candidates away one by one and
    // degenerates into exponential thrashing on feasible instances.)
    // Phase saving takes over after the first assignment.
    phase_.assign(nVars_ + 1, 1);
    watches_.assign(2 * static_cast<std::size_t>(nVars_), {});
    trail_.reserve(nVars_);

    // Normalize each input clause (sorted, deduplicated, tautologies
    // dropped) so the watch invariants below never meet a repeated
    // literal. Determinism: normalization is input-only.
    std::vector<Lit> norm;
    for (std::size_t ci = 0; ci < cnf.numClauses() && !rootConflict_; ++ci) {
      const std::span<const Lit> in = cnf.clause(ci);
      norm.assign(in.begin(), in.end());
      std::sort(norm.begin(), norm.end(),
                [](Lit a, Lit b) { return varOf(a) != varOf(b) ? varOf(a) < varOf(b) : a < b; });
      norm.erase(std::unique(norm.begin(), norm.end()), norm.end());
      bool taut = false;
      for (std::size_t k = 0; k + 1 < norm.size(); ++k)
        if (norm[k] == -norm[k + 1]) {
          taut = true;
          break;
        }
      if (taut) continue;
      if (norm.empty()) {
        rootConflict_ = true;
      } else if (norm.size() == 1) {
        if (!enqueueRoot(norm[0])) rootConflict_ = true;
      } else {
        addClauseInternal(norm);
      }
    }
  }

  SolveResult run(const std::vector<Lit>& assumptions) {
    SolveResult res;
    if (rootConflict_) return finish(res, Verdict::Unsat);
    if (externalStop()) return interrupted(res);

    for (;;) {
      const std::int32_t confl = propagate();
      if (confl != kNoReason) {
        ++stats_.conflicts;
        varInc_ *= (1.0 / 0.95);
        // Every decision in scope is an assumption (or the root level):
        // the formula is unsatisfiable under the assumption prefix.
        if (decisionLevel() <= assumptions.size()) return finish(res, Verdict::Unsat);
        if (opts_.learn) {
          learnFromConflict(confl);
        } else {
          // Chronological DPLL: flip the deepest decision, re-asserted as
          // an implied literal of the parent level so the subtree is never
          // revisited.
          const Lit dec = trail_[trailLim_[decisionLevel() - 1]];
          cancelUntil(decisionLevel() - 1);
          uncheckedEnqueue(-dec, kNoReason);
        }
        if (opts_.conflictLimit != 0 && stats_.conflicts >= opts_.conflictLimit)
          return finish(res, Verdict::Unknown);
        if ((stats_.conflicts & 0xF) == 0 && externalStop()) return interrupted(res);
        // Luby restart (learning mode only — learned clauses carry the
        // progress across the restart; plain DPLL would retrace the exact
        // same tree forever). Assumption levels are kept.
        if (opts_.learn && ++sinceRestart_ >= kRestartBase * luby(stats_.restarts)) {
          sinceRestart_ = 0;
          ++stats_.restarts;
          cancelUntil(assumptions.size());
        }
        continue;
      }

      if ((++polls_ & 0x3F) == 0 && externalStop()) return interrupted(res);

      // Re-establish the assumption prefix: decision level k+1 carries
      // assumption k (a dummy level when it already holds).
      Lit decision = 0;
      while (decisionLevel() < assumptions.size()) {
        const Lit a = assumptions[decisionLevel()];
        MCX_REQUIRE(a != 0 && varOf(a) <= nVars_, "sat::solve: assumption out of range");
        const int v = value(a);
        if (v > 0) {
          trailLim_.push_back(static_cast<std::uint32_t>(trail_.size()));
          continue;
        }
        if (v < 0) return finish(res, Verdict::Unsat);
        decision = a;
        break;
      }
      if (decision == 0) {
        const Var next = pickBranchVar();
        if (next == 0) {
          res.model.assign(static_cast<std::size_t>(nVars_) + 1, 0);
          for (Var v = 1; v <= nVars_; ++v) res.model[static_cast<std::size_t>(v)] = assigns_[v] > 0;
          return finish(res, Verdict::Sat);
        }
        ++stats_.decisions;
        decision = phase_[next] ? next : -next;
      }
      trailLim_.push_back(static_cast<std::uint32_t>(trail_.size()));
      uncheckedEnqueue(decision, kNoReason);
    }
  }

private:
  struct Clause {
    std::uint32_t off = 0;
    std::uint32_t len = 0;
  };
  struct Watch {
    std::uint32_t clause = 0;
    Lit blocker = 0;
  };

  static std::size_t idx(Lit l) {
    return 2 * (static_cast<std::size_t>(varOf(l)) - 1) + (l < 0 ? 1 : 0);
  }
  int value(Lit l) const {
    const int a = assigns_[varOf(l)];
    return l > 0 ? a : -a;
  }
  std::size_t decisionLevel() const { return trailLim_.size(); }

  bool externalStop() const {
    if (opts_.cancel != nullptr && opts_.cancel->stopRequested()) return true;
    return opts_.interrupt && opts_.interrupt();
  }

  SolveResult finish(SolveResult& res, Verdict v) {
    res.verdict = v;
    res.stats = stats_;
    return std::move(res);
  }
  SolveResult interrupted(SolveResult& res) {
    res.interrupted = true;
    return finish(res, Verdict::Unknown);
  }

  std::uint32_t addClauseInternal(const std::vector<Lit>& lits) {
    const std::uint32_t ci = static_cast<std::uint32_t>(clauses_.size());
    clauses_.push_back({static_cast<std::uint32_t>(arena_.size()),
                        static_cast<std::uint32_t>(lits.size())});
    arena_.insert(arena_.end(), lits.begin(), lits.end());
    watches_[idx(lits[0])].push_back({ci, lits[1]});
    watches_[idx(lits[1])].push_back({ci, lits[0]});
    return ci;
  }

  bool enqueueRoot(Lit p) {
    const int v = value(p);
    if (v < 0) return false;
    if (v == 0) uncheckedEnqueue(p, kNoReason);
    return true;
  }

  void uncheckedEnqueue(Lit p, std::int32_t from) {
    const Var v = varOf(p);
    assigns_[v] = p > 0 ? 1 : -1;
    level_[v] = static_cast<std::int32_t>(decisionLevel());
    reason_[v] = from;
    phase_[v] = p > 0;  // phase saving
    trail_.push_back(p);
  }

  void cancelUntil(std::size_t lvl) {
    if (decisionLevel() <= lvl) return;
    for (std::size_t c = trail_.size(); c > trailLim_[lvl]; --c) {
      const Var v = varOf(trail_[c - 1]);
      assigns_[v] = 0;
      reason_[v] = kNoReason;
    }
    trail_.resize(trailLim_[lvl]);
    qhead_ = trail_.size();
    trailLim_.resize(lvl);
  }

  /// Two-watched-literal unit propagation. Returns the conflicting clause
  /// index, kNoReason when a fixpoint is reached.
  std::int32_t propagate() {
    while (qhead_ < trail_.size()) {
      const Lit p = trail_[qhead_++];
      ++stats_.propagations;
      std::vector<Watch>& ws = watches_[idx(-p)];
      std::size_t keep = 0;
      for (std::size_t wi = 0; wi < ws.size(); ++wi) {
        const Watch w = ws[wi];
        if (value(w.blocker) > 0) {
          ws[keep++] = w;
          continue;
        }
        const Clause& c = clauses_[w.clause];
        Lit* lits = arena_.data() + c.off;
        if (lits[0] == -p) std::swap(lits[0], lits[1]);
        if (value(lits[0]) > 0) {
          ws[keep++] = {w.clause, lits[0]};
          continue;
        }
        bool moved = false;
        for (std::uint32_t k = 2; k < c.len; ++k) {
          if (value(lits[k]) >= 0) {
            std::swap(lits[1], lits[k]);
            watches_[idx(lits[1])].push_back({w.clause, lits[0]});
            moved = true;
            break;
          }
        }
        if (moved) continue;
        ws[keep++] = {w.clause, lits[0]};
        if (value(lits[0]) < 0) {
          // Conflict: keep the remaining watches and stop propagating.
          for (std::size_t rest = wi + 1; rest < ws.size(); ++rest) ws[keep++] = ws[rest];
          ws.resize(keep);
          qhead_ = trail_.size();
          return static_cast<std::int32_t>(w.clause);
        }
        uncheckedEnqueue(lits[0], static_cast<std::int32_t>(w.clause));
      }
      ws.resize(keep);
    }
    return kNoReason;
  }

  void bump(Var v) {
    if ((activity_[v] += varInc_) > 1e100) {
      for (Var u = 1; u <= nVars_; ++u) activity_[u] *= 1e-100;
      varInc_ *= 1e-100;
    }
  }

  /// First-UIP conflict analysis + backjump + learned-clause attach.
  void learnFromConflict(std::int32_t confl) {
    learnt_.clear();
    learnt_.push_back(0);  // slot for the asserting literal
    int pathC = 0;
    Lit p = 0;
    std::size_t index = trail_.size();
    do {
      const Clause& c = clauses_[static_cast<std::size_t>(confl)];
      const Lit* lits = arena_.data() + c.off;
      for (std::uint32_t k = (p == 0 ? 0 : 1); k < c.len; ++k) {
        const Lit q = lits[k];
        const Var v = varOf(q);
        if (seen_[v] || level_[v] == 0) continue;
        seen_[v] = 1;
        bump(v);
        if (level_[v] >= static_cast<std::int32_t>(decisionLevel()))
          ++pathC;
        else
          learnt_.push_back(q);
      }
      while (!seen_[varOf(trail_[index - 1])]) --index;
      --index;
      p = trail_[index];
      confl = reason_[varOf(p)];
      seen_[varOf(p)] = 0;
      --pathC;
    } while (pathC > 0);
    learnt_[0] = -p;

    std::size_t btLevel = 0;
    std::size_t maxAt = 1;
    for (std::size_t k = 1; k < learnt_.size(); ++k) {
      const std::size_t lvl = static_cast<std::size_t>(level_[varOf(learnt_[k])]);
      if (lvl > btLevel) {
        btLevel = lvl;
        maxAt = k;
      }
    }
    for (std::size_t k = 1; k < learnt_.size(); ++k) seen_[varOf(learnt_[k])] = 0;

    cancelUntil(btLevel);
    ++stats_.learned;
    if (learnt_.size() == 1) {
      uncheckedEnqueue(learnt_[0], kNoReason);
    } else {
      std::swap(learnt_[1], learnt_[maxAt]);
      const std::uint32_t ci = addClauseInternal(learnt_);
      uncheckedEnqueue(learnt_[0], static_cast<std::int32_t>(ci));
    }
  }

  Var pickBranchVar() const {
    Var best = 0;
    double bestAct = -1.0;
    for (Var v = 1; v <= nVars_; ++v)
      if (assigns_[v] == 0 && activity_[v] > bestAct) {
        bestAct = activity_[v];
        best = v;  // strict '>' keeps the lowest-index tie-break
      }
    return best;
  }

  const SolverOptions& opts_;
  const Var nVars_;
  bool rootConflict_ = false;

  std::vector<Lit> arena_;
  std::vector<Clause> clauses_;
  std::vector<std::vector<Watch>> watches_;

  std::vector<std::int8_t> assigns_;
  std::vector<std::int32_t> level_;
  std::vector<std::int32_t> reason_;
  std::vector<std::uint8_t> seen_;
  std::vector<double> activity_;
  std::vector<std::uint8_t> phase_;
  double varInc_ = 1.0;

  std::vector<Lit> trail_;
  std::vector<std::uint32_t> trailLim_;
  std::size_t qhead_ = 0;
  std::uint64_t polls_ = 0;
  std::uint64_t sinceRestart_ = 0;

  std::vector<Lit> learnt_;
  SolverStats stats_;
};

}  // namespace

SolveResult solve(const Cnf& cnf, const SolverOptions& opts, const std::vector<Lit>& assumptions) {
  Solver solver(cnf, opts);
  return solver.run(assumptions);
}

}  // namespace mcx::sat
