#include "sat/sat_mapper.hpp"

#include "sat/cnf.hpp"
#include "sat/cube.hpp"
#include "util/error.hpp"
#include "util/faultinject.hpp"

namespace mcx {

MappingResult SatMapper::map(const FunctionMatrix& fm, const BitMatrix& cm) const {
  MappingContext ctx;  // no registered sample or execution state
  return map(fm, cm, ctx);
}

MappingResult SatMapper::map(const FunctionMatrix& fm, const BitMatrix& cm,
                             MappingContext& ctx) const {
  MCX_REQUIRE(fm.cols() == cm.cols(), "SatMapper: column count mismatch");
  faultinject::onSite("sat.solve");

  MappingResult result;
  if (fm.rows() > cm.rows()) return result;

  const BitMatrix& adjacency = ctx.candidateAdjacency(fm.bits(), cm);
  const sat::MatchingCnf enc = sat::encodeMatching(adjacency);
  if (enc.trivialUnsat) return result;  // an FM row with zero candidates

  sat::SolverOptions base;
  base.conflictLimit = options_.conflictLimit;
  base.learn = options_.learn;
  base.cancel = ctx.cancelToken();

  ExecutorPool* pool = options_.pool;
  if (pool == nullptr && options_.parallelCubes) pool = ctx.pool();

  const std::vector<sat::Cube> cubes = sat::generateCubes(enc, options_.cubeDepth);
  sat::CubeOutcome outcome = sat::solveCubes(enc.cnf, cubes, base, pool);

  switch (outcome.verdict) {
    case sat::Verdict::Sat:
      result.success = sat::decodeModel(enc, outcome.model, result.rowAssignment);
      MCX_REQUIRE(result.success, "SatMapper: SAT model failed to decode to a valid placement");
      break;
    case sat::Verdict::Unsat:
      break;  // proven unmappable
    case sat::Verdict::Unknown:
      // Interrupted (deadline/cancel): no verdict — the engine drops the
      // sample. Budget-exhausted: counted as a failure, documented in
      // SatMapperOptions::conflictLimit.
      result.aborted = outcome.interrupted;
      break;
  }
  return result;
}

}  // namespace mcx
