// mcx::sat — a dependency-free CDCL/DPLL solver.
//
// Small by design: the matching formulas are a few hundred variables, so
// two-watched-literal propagation, activity-based branching, (optional)
// first-UIP clause learning and Luby restarts are enough — no clause
// deletion, no randomness. Determinism is a contract, not an accident:
// the restart schedule is a fixed sequence, branching
// picks the maximum-activity variable with lowest-index tie-break and every
// update is schedule-free, so equal inputs produce equal verdicts, models
// and statistics on any machine at any thread count (each solve is
// single-threaded; the cube driver owns the parallelism).
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "mc/cancel.hpp"
#include "sat/cnf.hpp"

namespace mcx::sat {

enum class Verdict { Sat, Unsat, Unknown };

/// "sat" / "unsat" / "unknown" — for bench tables and logs.
const char* verdictLabel(Verdict v);

struct SolverOptions {
  /// Give up (Verdict::Unknown, interrupted=false) after this many
  /// conflicts; 0 = unlimited. The budget is part of the deterministic
  /// input: the same limit yields the same verdict everywhere.
  std::uint64_t conflictLimit = 0;
  /// First-UIP clause learning with non-chronological backjumps. Off
  /// degrades to chronological DPLL (decision flipping) — the ablation
  /// knob for what learning buys at these sizes.
  bool learn = true;
  /// Cooperative cancellation, polled between decisions/conflicts. A fired
  /// token yields Unknown with interrupted=true.
  const CancelToken* cancel = nullptr;
  /// Extra interrupt predicate (the cube driver's sibling-SAT early exit);
  /// same effect as a fired token.
  std::function<bool()> interrupt;
};

struct SolverStats {
  std::uint64_t decisions = 0;
  std::uint64_t propagations = 0;
  std::uint64_t conflicts = 0;
  std::uint64_t learned = 0;
  std::uint64_t restarts = 0;

  SolverStats& operator+=(const SolverStats& o) {
    decisions += o.decisions;
    propagations += o.propagations;
    conflicts += o.conflicts;
    learned += o.learned;
    restarts += o.restarts;
    return *this;
  }
};

struct SolveResult {
  Verdict verdict = Verdict::Unknown;
  /// Unknown because cancel/interrupt fired (vs the conflict budget).
  bool interrupted = false;
  /// model[v] = truth of variable v (index 0 unused); complete and valid
  /// exactly when verdict == Sat.
  std::vector<std::uint8_t> model;
  SolverStats stats;
};

/// Solve @p cnf under @p assumptions (literals treated as a forced decision
/// prefix — the cube driver passes each cube here). Unsat then means
/// "unsatisfiable under the assumptions".
SolveResult solve(const Cnf& cnf, const SolverOptions& opts = {},
                  const std::vector<Lit>& assumptions = {});

}  // namespace mcx::sat
