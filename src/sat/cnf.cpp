#include "sat/cnf.hpp"

#include <bit>
#include <limits>

#include "util/error.hpp"

namespace mcx::sat {

void Cnf::addClause(std::span<const Lit> lits) {
  for (const Lit l : lits)
    MCX_REQUIRE(l != 0 && varOf(l) <= vars_, "Cnf::addClause: literal out of range");
  if (lits.empty()) hasEmptyClause_ = true;
  lits_.insert(lits_.end(), lits.begin(), lits.end());
  offsets_.push_back(static_cast<std::uint32_t>(lits_.size()));
}

namespace {

/// At-most-one over @p vars. Pairwise up to kPairwiseMax (fewer clauses than
/// the ladder at small k, no auxiliaries); the sequential "ladder" encoding
/// (Sinz 2005) above that: s_k commits "one of vars[0..k] is already set",
/// so a second true variable contradicts in unit propagation alone.
constexpr std::size_t kPairwiseMax = 6;

void addAtMostOne(Cnf& cnf, const std::vector<Var>& vars) {
  const std::size_t n = vars.size();
  if (n <= 1) return;
  if (n <= kPairwiseMax) {
    for (std::size_t a = 0; a + 1 < n; ++a)
      for (std::size_t b = a + 1; b < n; ++b) cnf.addClause({-vars[a], -vars[b]});
    return;
  }
  std::vector<Var> s(n - 1);
  for (Var& v : s) v = cnf.addVar();
  cnf.addClause({-vars[0], s[0]});
  for (std::size_t k = 1; k + 1 < n; ++k) {
    cnf.addClause({-vars[k], s[k]});
    cnf.addClause({-s[k - 1], s[k]});
    cnf.addClause({-vars[k], -s[k - 1]});
  }
  cnf.addClause({-vars[n - 1], -s[n - 2]});
}

}  // namespace

MatchingCnf encodeMatching(const BitMatrix& adjacency) {
  MatchingCnf m;
  m.fmRows = adjacency.rows();
  m.cmRows = adjacency.cols();
  m.varAt.assign(m.fmRows * m.cmRows, 0);

  // One variable per set adjacency bit, minted in row-major word order.
  for (std::size_t i = 0; i < m.fmRows; ++i) {
    const std::span<const BitMatrix::Word> words = adjacency.rowWords(i);
    for (std::size_t w = 0; w < words.size(); ++w) {
      BitMatrix::Word word = words[w];
      if (w + 1 == words.size()) word &= BitMatrix::tailMask(m.cmRows);
      while (word != 0) {
        const std::size_t j =
            w * BitMatrix::kWordBits + static_cast<std::size_t>(std::countr_zero(word));
        word &= word - 1;
        const Var v = m.cnf.addVar();
        m.varAt[i * m.cmRows + j] = v;
        m.pairOf.emplace_back(static_cast<std::uint32_t>(i), static_cast<std::uint32_t>(j));
      }
    }
  }
  m.numAssignVars = m.cnf.numVars();

  // Exactly-one per FM row. The at-least-one clause is where stuck-closed
  // poisoning lands (already folded into the adjacency): a row with no
  // candidates emits the empty clause, a single candidate a unit. The
  // at-most-one half is redundant for satisfiability (decode just drops
  // extras), but it is what keeps cube-and-conquer cheap: a cube asserting
  // two candidates of the same FM row would otherwise be a pigeonhole
  // instance (fmRows rows into fmRows - 1 remaining CM rows), which is
  // exponentially hard for clause learning; with the row constraint the
  // cube dies in one unit propagation.
  std::vector<Lit> clause;
  for (std::size_t i = 0; i < m.fmRows; ++i) {
    clause.clear();
    for (std::size_t j = 0; j < m.cmRows; ++j)
      if (const Var v = m.varAt[i * m.cmRows + j]; v != 0) clause.push_back(v);
    if (clause.empty()) m.trivialUnsat = true;
    m.cnf.addClause(clause);
    addAtMostOne(m.cnf, clause);  // Lit == Var and row candidates are positive
  }

  // At-most-one per CM row: the candidates of CM row j are the set bits of
  // adjacency column j — one word-parallel transpose makes them row scans.
  BitMatrix columns;
  columns.assignTransposed(adjacency);
  std::vector<Var> group;
  for (std::size_t j = 0; j < m.cmRows; ++j) {
    group.clear();
    const std::span<const BitMatrix::Word> words = columns.rowWords(j);
    for (std::size_t w = 0; w < words.size(); ++w) {
      BitMatrix::Word word = words[w];
      if (w + 1 == words.size()) word &= BitMatrix::tailMask(m.fmRows);
      while (word != 0) {
        const std::size_t i =
            w * BitMatrix::kWordBits + static_cast<std::size_t>(std::countr_zero(word));
        word &= word - 1;
        group.push_back(m.varAt[i * m.cmRows + j]);
      }
    }
    addAtMostOne(m.cnf, group);
  }
  return m;
}

bool decodeModel(const MatchingCnf& m, const std::vector<std::uint8_t>& model,
                 std::vector<std::size_t>& assignment) {
  constexpr std::size_t kUnset = std::numeric_limits<std::size_t>::max();
  if (model.size() <= static_cast<std::size_t>(m.numAssignVars)) return false;
  assignment.assign(m.fmRows, kUnset);
  std::vector<std::uint8_t> used(m.cmRows, 0);
  // Ascending variables scan (i asc, j asc), so each FM row takes its
  // lowest true candidate. The encoding is exactly-one per FM row, but the
  // decode stays defensive: duplicate candidates (were they ever produced)
  // would burn CM rows no other FM row holds, so taking the first is safe.
  for (Var v = 1; v <= m.numAssignVars; ++v) {
    if (!model[static_cast<std::size_t>(v)]) continue;
    const auto [i, j] = m.pairOf[static_cast<std::size_t>(v) - 1];
    if (used[j]) return false;  // at-most-one violated: not a real model
    used[j] = 1;
    if (assignment[i] == kUnset) assignment[i] = j;
  }
  for (const std::size_t a : assignment)
    if (a == kUnset) return false;  // at-least-one violated
  return true;
}

}  // namespace mcx::sat
