// mcx::sat — CNF formulas and the row-matching encoder.
//
// The SAT backend gives the mapping experiments an exact verdict: a sample
// is mappable iff the CNF below is satisfiable, so every heuristic mapper
// can be scored against ground truth (the ablation-optimality suite). The
// encoding works directly off the per-sample candidate adjacency the
// MappingContext already maintains — one Boolean variable per set adjacency
// bit (FM row i may sit on CM row j), an exactly-one constraint per FM row
// and an at-most-one constraint per CM row. The per-FM-row at-most-one half
// is redundant for the verdict but makes bad cubes (two candidates of one
// FM row asserted) die in unit propagation instead of spawning a pigeonhole
// search. Stuck-closed poisoning needs no
// extra clauses: the adjacency already folds it in, and an FM row whose
// candidates were all poisoned away simply yields an empty (trivially
// unsatisfiable) at-least-one clause; a single surviving candidate becomes
// a unit clause.
#pragma once

#include <cstddef>
#include <cstdint>
#include <initializer_list>
#include <span>
#include <utility>
#include <vector>

#include "util/bit_matrix.hpp"

namespace mcx::sat {

/// DIMACS-style literal: +v asserts variable v, -v negates it (v >= 1).
using Lit = std::int32_t;
using Var = std::int32_t;

inline Var varOf(Lit l) { return l < 0 ? -l : l; }

/// A CNF formula as a flattened clause pool: one literal vector plus clause
/// offsets, so the solver walks clauses by span with no per-clause
/// allocation.
class Cnf {
public:
  /// Allocate a fresh variable and return its (1-based) index.
  Var addVar() { return ++vars_; }
  Var numVars() const { return vars_; }

  /// Append a clause. Literals must reference allocated variables. An empty
  /// clause is legal and marks the formula trivially unsatisfiable.
  void addClause(std::span<const Lit> lits);
  void addClause(std::initializer_list<Lit> lits) {
    addClause(std::span<const Lit>(lits.begin(), lits.size()));
  }

  std::size_t numClauses() const { return offsets_.size() - 1; }
  std::span<const Lit> clause(std::size_t i) const {
    return {lits_.data() + offsets_[i], offsets_[i + 1] - offsets_[i]};
  }
  bool hasEmptyClause() const { return hasEmptyClause_; }

private:
  Var vars_ = 0;
  std::vector<Lit> lits_;
  std::vector<std::uint32_t> offsets_{0};
  bool hasEmptyClause_ = false;
};

/// The row-matching problem of one defect sample as CNF (see the header
/// comment for the clause shape). Assignment variables come first — they
/// are the cube-and-conquer split candidates — auxiliary at-most-one ladder
/// variables after.
struct MatchingCnf {
  Cnf cnf;
  std::size_t fmRows = 0;
  std::size_t cmRows = 0;
  /// Assignment variables are 1..numAssignVars; ladder variables above.
  Var numAssignVars = 0;
  /// (fmRow, cmRow) of each assignment variable, indexed by var - 1, in
  /// row-major adjacency order (so ascending variables scan j ascending
  /// within each FM row — the decode tie-break).
  std::vector<std::pair<std::uint32_t, std::uint32_t>> pairOf;
  /// fmRows x cmRows lookup: variable of (i, j), 0 where the bit is clear.
  std::vector<Var> varAt;
  /// Some FM row had no candidate CM row (an empty at-least-one clause was
  /// emitted): the sample is unmappable without any search.
  bool trivialUnsat = false;

  Var varFor(std::size_t fmRow, std::size_t cmRow) const {
    return varAt[fmRow * cmRows + cmRow];
  }
};

/// Encode the candidate adjacency (bit (i, j) = FM row i fits CM row j)
/// into a MatchingCnf. Word-packed: variables are minted by scanning the
/// adjacency's row words, and the per-CM-row at-most-one groups come from
/// one 64x64 block transpose of the adjacency.
MatchingCnf encodeMatching(const BitMatrix& adjacency);

/// Decode a SAT model into assignment[fmRow] = cmRow (the lowest true
/// candidate per FM row), validating that every chosen pair is a real
/// candidate and the CM rows are pairwise distinct. Returns false on any
/// violation — a decoded mapping is valid by construction or rejected.
bool decodeModel(const MatchingCnf& m, const std::vector<std::uint8_t>& model,
                 std::vector<std::size_t>& assignment);

}  // namespace mcx::sat
