// SatMapper: exact mapping verdicts through the SAT backend.
//
// Encodes the per-sample candidate adjacency as CNF (sat/cnf.hpp), splits
// it cube-and-conquer style on the most-contended assignment variables and
// solves with the CDCL core — proving a mapping (decoded from the winning
// model, valid by construction) or unmappability (all cubes Unsat). The
// verdict therefore always equals the Hopcroft-Karp exact mappers'; what
// SAT adds is an independently-derived ground truth for the
// ablation-optimality suite and a scalable search harness for encodings
// richer than pure matching.
//
// Deterministic at any thread count: per-cube solves are deterministic and
// a SAT cube only cancels higher-index siblings, so the winning cube is
// always the minimum SAT index (see sat/cube.hpp).
#pragma once

#include <cstdint>

#include "map/matching.hpp"

namespace mcx {

struct SatMapperOptions {
  /// Cube-and-conquer split depth: 2^cubeDepth cubes over the
  /// highest-occurrence assignment variables. 0 = one monolithic solve.
  std::size_t cubeDepth = 2;
  /// Per-cube conflict budget; 0 = unlimited. The default is bounded:
  /// infeasible samples with large Hall certificates are pigeonhole
  /// formulas (exponential for resolution), and an unbounded default would
  /// let one such sample hang a service request forever. Feasible samples
  /// solve constructively in at most ~1k conflicts, so 10k changes no
  /// feasible verdict; budget-exhausted samples count as failures, like a
  /// heuristic giving up — never as successes. Pass 0 explicitly for a
  /// proof-or-bust run.
  std::uint64_t conflictLimit = 10000;
  /// First-UIP clause learning (off = chronological DPLL ablation).
  bool learn = true;
  /// Farm cubes onto the MappingContext's ExecutorPool. Off by default:
  /// the Monte Carlo engine already saturates the pool with samples, so
  /// per-cube jobs only add queue churn there; turn it on for single-shot
  /// solves (or pass an explicit pool below).
  bool parallelCubes = false;
  /// Explicit pool override for programmatic use; beats parallelCubes.
  ExecutorPool* pool = nullptr;
};

class SatMapper final : public IMapper {
public:
  SatMapper() = default;
  explicit SatMapper(const SatMapperOptions& options) : options_(options) {}

  std::string name() const override { return "SAT"; }
  MappingResult map(const FunctionMatrix& fm, const BitMatrix& cm) const override;
  MappingResult map(const FunctionMatrix& fm, const BitMatrix& cm,
                    MappingContext& ctx) const override;

  const SatMapperOptions& options() const { return options_; }

private:
  SatMapperOptions options_;
};

}  // namespace mcx
