// mcx::sat — cube-and-conquer: split a formula into assumption cubes and
// solve them with deterministic early exit.
//
// The split follows the ParaCuber/Mallob idiom: pick the most-contended
// (highest-occurrence) variables and branch on every sign combination,
// yielding 2^depth independent subproblems that farm onto the experiment
// ExecutorPool. Cubes are solved in iterative-deepening rounds (a fixed
// geometric conflict-budget schedule), so one hard cube can never starve
// an easy SAT sibling. Early exit is deterministic by construction: a SAT
// cube only cancels siblings with a *higher* index, so within the earliest
// round containing a SAT, every lower-index cube either proved Unsat or
// ran the round's full budget without a model — the winner (and its model)
// is schedule- and thread-count-independent. All cubes Unsat proves the
// formula unsatisfiable.
#pragma once

#include <cstddef>
#include <vector>

#include "sat/solver.hpp"

namespace mcx {
class ExecutorPool;
}

namespace mcx::sat {

/// One branch of the split: literals assumed true for the sub-solve.
struct Cube {
  std::vector<Lit> lits;
};

/// Generate 2^depth cubes over the @p depth highest-occurrence variables in
/// [1, maxSplitVar] (count descending, lowest index first on ties — the
/// assignment variables of a MatchingCnf when maxSplitVar is its
/// numAssignVars). Depth saturates at the number of variables that occur at
/// all; depth 0 (or nothing to split on) yields the single empty cube.
/// Cube c assumes split variable k positive when bit k of c is clear, so
/// cube 0 is the all-positive branch.
std::vector<Cube> generateCubes(const Cnf& cnf, std::size_t depth, Var maxSplitVar);

/// Matching-aware split: same contention signal, but the split variables
/// are drawn from pairwise-distinct FM rows *and* distinct CM rows, so no
/// cube is emptied outright by an exactly-one constraint. Depth saturates
/// at the number of distinct-row/column candidates available.
std::vector<Cube> generateCubes(const MatchingCnf& enc, std::size_t depth);

struct CubeOutcome {
  Verdict verdict = Verdict::Unknown;
  /// Lowest-index SAT cube (the deterministic winner); meaningful when Sat.
  std::size_t winningCube = 0;
  /// The winner's model; complete exactly when verdict == Sat.
  std::vector<std::uint8_t> model;
  std::size_t cubesSolved = 0;  ///< cubes that ran to their own verdict
  std::size_t cubesPruned = 0;  ///< cubes cut off by a lower-index SAT winner
  SolverStats stats;            ///< summed over every cube solve
  /// An external cancel (token/interrupt) cut the search before a verdict.
  bool interrupted = false;
};

/// Solve @p cubes against @p cnf (each cube's literals as assumptions) in
/// iterative-deepening rounds. With a pool, a round's unresolved cubes run
/// concurrently (the caller's lane participates; safe to call from inside
/// a pool worker); without one, sequentially in index order with the same
/// winner rule. @p base carries learning mode, cancellation, and the
/// per-cube conflict cap (base.conflictLimit) that the round budgets grow
/// toward — 0 escalates without bound until every cube resolves.
CubeOutcome solveCubes(const Cnf& cnf, const std::vector<Cube>& cubes,
                       const SolverOptions& base, ExecutorPool* pool = nullptr);

}  // namespace mcx::sat
