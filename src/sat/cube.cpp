#include "sat/cube.hpp"

#include <algorithm>
#include <atomic>
#include <limits>
#include <mutex>

#include "mc/executor.hpp"
#include "util/error.hpp"

namespace mcx::sat {

namespace {

/// Round budget schedule for solveCubes: every unresolved cube gets
/// kFirstRoundBudget conflicts in round 0, kRoundBudgetGrowth times more
/// each round after. Restarting a cube from scratch wastes at most a
/// 1/(growth-1) fraction of the final round's work, and in exchange no
/// single hard cube can starve an easy SAT sibling behind it.
constexpr std::uint64_t kFirstRoundBudget = 512;
constexpr std::uint64_t kRoundBudgetGrowth = 4;

std::vector<Cube> cubesOver(const std::vector<Var>& split) {
  std::vector<Cube> cubes(std::size_t{1} << split.size());
  for (std::size_t c = 0; c < cubes.size(); ++c) {
    cubes[c].lits.reserve(split.size());
    for (std::size_t k = 0; k < split.size(); ++k)
      cubes[c].lits.push_back(((c >> k) & 1) != 0 ? -split[k] : split[k]);
  }
  return cubes;
}

std::vector<Var> occurrenceOrder(const Cnf& cnf, Var maxSplitVar) {
  // Occurrence counts over the eligible variables (both polarities — the
  // ParaCuber "literal occurrence" contention signal).
  std::vector<std::uint32_t> occ(static_cast<std::size_t>(maxSplitVar) + 1, 0);
  for (std::size_t ci = 0; ci < cnf.numClauses(); ++ci)
    for (const Lit l : cnf.clause(ci))
      if (varOf(l) <= maxSplitVar) ++occ[static_cast<std::size_t>(varOf(l))];

  std::vector<Var> order;
  order.reserve(static_cast<std::size_t>(maxSplitVar));
  for (Var v = 1; v <= maxSplitVar; ++v)
    if (occ[static_cast<std::size_t>(v)] > 0) order.push_back(v);
  std::stable_sort(order.begin(), order.end(), [&](Var a, Var b) {
    return occ[static_cast<std::size_t>(a)] > occ[static_cast<std::size_t>(b)];
  });
  return order;
}

}  // namespace

std::vector<Cube> generateCubes(const Cnf& cnf, std::size_t depth, Var maxSplitVar) {
  MCX_REQUIRE(maxSplitVar >= 0 && maxSplitVar <= cnf.numVars(),
              "generateCubes: maxSplitVar out of range");
  MCX_REQUIRE(depth <= 20, "generateCubes: depth too large (2^depth cubes)");

  std::vector<Var> order = occurrenceOrder(cnf, maxSplitVar);
  order.resize(std::min(depth, order.size()));
  return cubesOver(order);
}

std::vector<Cube> generateCubes(const MatchingCnf& enc, std::size_t depth) {
  MCX_REQUIRE(depth <= 20, "generateCubes: depth too large (2^depth cubes)");

  // Same contention signal, but split variables are picked greedily from
  // *distinct* FM rows and distinct CM rows. Two candidates of one FM row
  // make a degenerate split (the exactly-one constraint empties the
  // both-positive branch), and two of one CM row likewise; distinctness
  // keeps every cube a genuine region of the search space.
  const std::vector<Var> order = occurrenceOrder(enc.cnf, enc.numAssignVars);
  std::vector<std::uint8_t> rowUsed(enc.fmRows, 0);
  std::vector<std::uint8_t> colUsed(enc.cmRows, 0);
  std::vector<Var> split;
  for (const Var v : order) {
    if (split.size() >= depth) break;
    const auto [i, j] = enc.pairOf[static_cast<std::size_t>(v) - 1];
    if (rowUsed[i] || colUsed[j]) continue;
    rowUsed[i] = 1;
    colUsed[j] = 1;
    split.push_back(v);
  }
  return cubesOver(split);
}

CubeOutcome solveCubes(const Cnf& cnf, const std::vector<Cube>& cubes,
                       const SolverOptions& base, ExecutorPool* pool) {
  constexpr std::size_t kNone = std::numeric_limits<std::size_t>::max();
  const std::size_t n = cubes.size();
  MCX_REQUIRE(n > 0, "solveCubes: need at least one cube");

  // Verdict::Unknown marks a cube as unresolved; stats accumulate across
  // every attempt (rounds re-run unresolved cubes from scratch).
  std::vector<Verdict> verdicts(n, Verdict::Unknown);
  std::vector<SolverStats> cubeStats(n);
  std::atomic<std::size_t> winner{kNone};
  std::mutex modelMutex;
  std::size_t modelIndex = kNone;
  std::vector<std::uint8_t> model;

  const auto externalStop = [&base] {
    if (base.cancel != nullptr && base.cancel->stopRequested()) return true;
    return base.interrupt && base.interrupt();
  };

  auto runCube = [&](std::size_t i, std::uint64_t budget) {
    // A lower-index sibling already proved SAT: this cube can no longer be
    // the winner, skip it (pruned).
    if (winner.load(std::memory_order_relaxed) < i) return;
    SolverOptions opts = base;
    opts.conflictLimit = budget;
    opts.interrupt = [&base, &winner, i] {
      if (base.interrupt && base.interrupt()) return true;
      return winner.load(std::memory_order_relaxed) < i;
    };
    SolveResult r = solve(cnf, opts, cubes[i].lits);
    cubeStats[i] += r.stats;
    if (r.verdict != Verdict::Unknown) verdicts[i] = r.verdict;
    if (r.verdict == Verdict::Sat) {
      // Race down to the minimum SAT index; only higher-index siblings see
      // the new winner in their interrupt predicate.
      std::size_t cur = winner.load(std::memory_order_relaxed);
      while (i < cur && !winner.compare_exchange_weak(cur, i, std::memory_order_relaxed)) {
      }
      const std::lock_guard<std::mutex> lock(modelMutex);
      if (i < modelIndex) {
        modelIndex = i;
        model = std::move(r.model);
      }
    }
  };

  // Iterative-deepening rounds: every unresolved cube is attempted with the
  // same per-round conflict budget, the budget growing geometrically up to
  // base.conflictLimit (unbounded when the limit is 0). Determinism at any
  // thread count: the budget schedule is fixed, a single solve at a fixed
  // budget is deterministic, and the winner is the minimum-index SAT cube
  // of the earliest round containing one — every lower-index cube either
  // resolved Unsat in an earlier round or ran this round's full budget
  // without SAT, independent of schedule.
  std::uint64_t budget =
      base.conflictLimit != 0 ? std::min(kFirstRoundBudget, base.conflictLimit)
                              : kFirstRoundBudget;
  bool exhausted = false;
  while (!externalStop()) {
    const bool finalRound = base.conflictLimit != 0 && budget >= base.conflictLimit;
    if (finalRound) budget = base.conflictLimit;

    std::vector<std::size_t> pending;
    for (std::size_t i = 0; i < n; ++i)
      if (verdicts[i] == Verdict::Unknown) pending.push_back(i);
    if (pending.empty()) break;

    if (pool != nullptr && pending.size() > 1) {
      pool->run(
          pending.size(), [&](std::size_t, std::size_t k) { runCube(pending[k], budget); },
          base.cancel);
    } else {
      for (const std::size_t i : pending) {
        if (externalStop()) break;
        runCube(i, budget);
        // Minimum SAT index within the round: every lower pending cube
        // already ran this round's budget without SAT.
        if (verdicts[i] == Verdict::Sat) break;
      }
    }

    if (winner.load(std::memory_order_relaxed) != kNone) break;
    if (finalRound) {
      exhausted = true;
      break;
    }
    budget = budget > std::numeric_limits<std::uint64_t>::max() / kRoundBudgetGrowth
                 ? std::numeric_limits<std::uint64_t>::max()
                 : budget * kRoundBudgetGrowth;
    if (base.conflictLimit != 0) budget = std::min(budget, base.conflictLimit);
  }

  CubeOutcome agg;
  const std::size_t winnerFinal = winner.load(std::memory_order_relaxed);
  bool allUnsat = true;
  for (std::size_t i = 0; i < n; ++i) {
    agg.stats += cubeStats[i];
    if (verdicts[i] != Verdict::Unknown)
      ++agg.cubesSolved;
    else if (winnerFinal < i)
      ++agg.cubesPruned;
    if (verdicts[i] != Verdict::Unsat) allUnsat = false;
  }

  // An external cancel trumps even a found model: the caller treats the
  // sample as aborted (unrecorded), which keeps reruns bit-identical — a
  // cancelled round may have cut off a lower-index cube that an
  // uninterrupted run would have crowned instead.
  if (externalStop() && !(allUnsat && agg.cubesSolved == n)) {
    agg.verdict = Verdict::Unknown;
    agg.interrupted = true;
  } else if (modelIndex != kNone) {
    agg.verdict = Verdict::Sat;
    agg.winningCube = modelIndex;
    agg.model = std::move(model);
  } else if (allUnsat && agg.cubesSolved == n) {
    agg.verdict = Verdict::Unsat;
  } else {
    agg.verdict = Verdict::Unknown;
    agg.interrupted = !exhausted && externalStop();
  }
  return agg;
}

}  // namespace mcx::sat
