// Functional error metrics: exact minterm-diff counting between an intended
// cover and a (defect-)degraded realization.
//
// The unit of error is a care (minterm, output) pair: a pair is wrong when
// the realized function and the specification disagree on it, and a pair is
// excluded from both numerator and denominator when the specification marks
// it don't-care. Everything here is computed on explicit truth tables
// (logic/truth_table.hpp), so the counts are exact, not sampled — this is
// the ground truth that graded acceptance (functional yield(ε)) and the
// approximate mapper's per-sample realizedError are defined against, and
// what the SAT cross-check tests verify independently.
#pragma once

#include <cstddef>
#include <vector>

#include "logic/cover.hpp"
#include "logic/truth_table.hpp"

namespace mcx::approx {

/// Exact error tally of one realization against its specification.
struct ErrorReport {
  std::size_t carePairs = 0;   ///< (minterm, output) pairs that matter
  std::size_t wrongPairs = 0;  ///< care pairs where realized != spec
  std::vector<std::size_t> wrongPerOutput;
  std::vector<std::size_t> carePerOutput;

  /// Global error fraction in [0, 1]; an empty care set counts as exact.
  double fraction() const {
    return carePairs == 0 ? 0.0
                          : static_cast<double>(wrongPairs) / static_cast<double>(carePairs);
  }
  double fractionForOutput(std::size_t o) const {
    return carePerOutput[o] == 0 ? 0.0
                                 : static_cast<double>(wrongPerOutput[o]) /
                                       static_cast<double>(carePerOutput[o]);
  }
};

/// Declarative acceptance budget: a global fraction of care pairs allowed
/// wrong, optionally tightened per output.
struct ErrorBudget {
  /// Fraction of care (minterm, output) pairs allowed wrong, in [0, 1].
  /// 0 is exact acceptance — the classical pass/fail criterion.
  double epsilon = 0.0;
  /// Optional per-output budgets (empty = global only). Entry o bounds
  /// output o's own wrong fraction; all listed outputs must hold.
  std::vector<double> perOutputEpsilon;

  bool withinBudget(const ErrorReport& report) const;
};

/// Exact pairwise diff of two truth tables of identical arity: every
/// (minterm, output) pair is a care pair.
ErrorReport compareTruthTables(const TruthTable& spec, const TruthTable& realized);

/// Don't-care-aware diff: pairs set in @p dontCare are excluded from both
/// counts (the specification does not care what the realization does there).
ErrorReport compareTruthTables(const TruthTable& spec, const TruthTable& realized,
                               const TruthTable& dontCare);

/// Error of realizing only the cubes @p retained (indices into @p spec's
/// cube list) instead of the full cover: the dropped cubes' uniquely-covered
/// ON pairs go missing. Retained-subset realizations can only under-cover
/// (they never assert a pair the full cover does not), so this is the exact
/// functional cost of an approximate mapper's sacrifice.
ErrorReport coverSubsetError(const Cover& spec, const std::vector<std::size_t>& retained);

/// Don't-care-aware variant: @p dc pairs are free.
ErrorReport coverSubsetError(const Cover& spec, const Cover& dc,
                             const std::vector<std::size_t>& retained);

}  // namespace mcx::approx
