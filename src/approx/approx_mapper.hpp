// ApproxMapper: graded defect-tolerant mapping under an error budget.
//
// Wraps an exact/heuristic inner mapper. When the inner mapper succeeds the
// result passes through untouched (realizedError = 0). When it fails — the
// classical "dead sample" — the approx path deliberately sacrifices the
// lowest-weight unrealizable product cubes to rescue the rest: output rows
// are mandatory, product rows are re-added in descending weight order with
// an incremental augmenting-path matching, so the retained set is a
// maximum-weight matchable row subset (greedy is optimal here — matchable
// subsets form a transversal matroid). A cube's weight is the number of
// (minterm, output) care pairs only it covers, and the reported
// realizedError is recomputed exactly from the retained cubes' truth tables
// (src/approx/error.hpp) — never estimated from the weights.
//
// Scope: two-level function matrices (numConnectionCols() == 0) with at
// most 16 inputs — the explicit-truth-table bound. Outside that scope, or
// when the best rescue still exceeds the mapper's epsilon budget, the inner
// mapper's plain failure is returned unchanged (binary error 1).
//
// Result contract on a rescue: success stays false (the full FM was NOT
// realized); rowAssignment covers the retained rows with kUnassigned at
// droppedRows; realizedError holds the exact care-pair error fraction. The
// Monte Carlo engine accepts the sample iff realizedError <= its configured
// epsilon (functional yield(ε)), and verifies the physical half with
// verifyPartialMapping.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "map/matching.hpp"

namespace mcx {

struct ApproxMapperOptions {
  /// The mapper's own sacrifice budget: a rescue whose exact realized error
  /// exceeds this fraction is discarded (plain failure). 1.0 = report every
  /// achievable rescue and leave acceptance to the experiment's epsilon.
  double epsilon = 1.0;
};

class ApproxMapper final : public IMapper {
public:
  ApproxMapper() : ApproxMapper(ApproxMapperOptions{}) {}
  /// Null @p inner defaults to the fast exact mapper (one maximum bipartite
  /// matching), so the rescue path only ever runs on truly unmappable
  /// samples and yield(0) stays bit-identical to the exact yield.
  explicit ApproxMapper(const ApproxMapperOptions& options,
                        std::shared_ptr<const IMapper> inner = nullptr);

  std::string name() const override;
  MappingResult map(const FunctionMatrix& fm, const BitMatrix& cm) const override;
  MappingResult map(const FunctionMatrix& fm, const BitMatrix& cm,
                    MappingContext& ctx) const override;

  const ApproxMapperOptions& options() const { return options_; }
  const IMapper& inner() const { return *inner_; }

private:
  /// Per-FM precomputation (cube list, spec truth tables, cube weights,
  /// weight-sorted row order): depends only on the FM content, not on the
  /// defect sample, so it is cached under the FM's content hash and shared
  /// by every worker thread of an experiment.
  struct FmAnalysis;

  std::shared_ptr<const FmAnalysis> analyze(const FunctionMatrix& fm) const;
  MappingResult rescue(const FunctionMatrix& fm, const BitMatrix& cm,
                       const BitMatrix& adjacency, MappingResult innerFailure) const;

  ApproxMapperOptions options_;
  std::shared_ptr<const IMapper> inner_;
  mutable std::mutex cacheMutex_;
  mutable std::unordered_map<std::uint64_t, std::shared_ptr<const FmAnalysis>> cache_;
};

}  // namespace mcx
