#include "approx/approx_mapper.hpp"

#include <algorithm>
#include <sstream>

#include "approx/error.hpp"
#include "logic/truth_table.hpp"
#include "map/fast_exact_mapper.hpp"
#include "util/error.hpp"
#include "util/faultinject.hpp"

namespace mcx {

namespace {

// Content hash of an FM (dims + bit words), FNV-1a. Collisions only risk
// serving a stale analysis for a *different* function, so the cache entry
// also pins the dims and the reconstructed cover is rebuilt on mismatch.
std::uint64_t fmContentHash(const FunctionMatrix& fm) {
  std::uint64_t h = 1469598103934665603ull;
  const auto mix = [&h](std::uint64_t v) {
    h ^= v;
    h *= 1099511628211ull;
  };
  mix(fm.rows());
  mix(fm.cols());
  mix(fm.nin());
  for (std::size_t r = 0; r < fm.rows(); ++r)
    for (const BitMatrix::Word w : fm.bits().rowWords(r)) mix(w);
  return h;
}

// Inverse of buildFunctionMatrix for two-level matrices: product row i has a
// 1 on colOfPosLiteral(v) / colOfNegLiteral(v) per literal and on
// colOfOutput(o) per asserted output.
Cover coverOfFunctionMatrix(const FunctionMatrix& fm) {
  Cover cover(fm.nin(), fm.numOutputRows());
  for (std::size_t r = 0; r < fm.numProductRows(); ++r) {
    Cube c(fm.nin(), fm.numOutputRows());
    for (std::size_t v = 0; v < fm.nin(); ++v) {
      const bool pos = fm.bits().test(r, fm.colOfPosLiteral(v));
      const bool neg = fm.bits().test(r, fm.colOfNegLiteral(v));
      MCX_REQUIRE(!(pos && neg), "approx: FM row asserts both polarities of a variable");
      if (pos) c.setLit(v, Lit::Pos);
      if (neg) c.setLit(v, Lit::Neg);
    }
    for (std::size_t o = 0; o < fm.numOutputRows(); ++o)
      if (fm.bits().test(r, fm.colOfOutput(o))) c.setOut(o);
    cover.add(std::move(c));
  }
  return cover;
}

}  // namespace

struct ApproxMapper::FmAnalysis {
  std::uint64_t hash = 0;
  std::size_t rows = 0, cols = 0;
  Cover cover;
  TruthTable specTt;
  std::vector<DynBits> cubeTt;  // input-part truth table per product row
  // weight[i] = care (minterm, output) pairs only product row i covers —
  // what the spec loses outright if row i alone is dropped.
  std::vector<std::uint64_t> weight;
  // Product rows in rescue order: descending weight, ties ascending index
  // (deterministic across platforms).
  std::vector<std::size_t> order;
};

ApproxMapper::ApproxMapper(const ApproxMapperOptions& options,
                           std::shared_ptr<const IMapper> inner)
    : options_(options),
      inner_(inner ? std::move(inner) : std::make_shared<FastExactMapper>()) {
  MCX_REQUIRE(options_.epsilon >= 0.0 && options_.epsilon <= 1.0,
              "ApproxMapper: epsilon must be in [0, 1]");
}

std::string ApproxMapper::name() const {
  std::ostringstream out;
  out << "approx(" << inner_->name() << ", eps=" << options_.epsilon << ")";
  return out.str();
}

std::shared_ptr<const ApproxMapper::FmAnalysis> ApproxMapper::analyze(
    const FunctionMatrix& fm) const {
  const std::uint64_t hash = fmContentHash(fm);
  {
    std::lock_guard<std::mutex> lock(cacheMutex_);
    const auto it = cache_.find(hash);
    if (it != cache_.end() && it->second->rows == fm.rows() && it->second->cols == fm.cols())
      return it->second;
  }

  auto analysis = std::make_shared<FmAnalysis>();
  analysis->hash = hash;
  analysis->rows = fm.rows();
  analysis->cols = fm.cols();
  analysis->cover = coverOfFunctionMatrix(fm);
  analysis->specTt = TruthTable::fromCover(analysis->cover);

  const Cover& cover = analysis->cover;
  const std::size_t products = cover.size();
  analysis->cubeTt.reserve(products);
  for (std::size_t i = 0; i < products; ++i)
    analysis->cubeTt.push_back(ttOfCube(cover.cube(i)));

  analysis->weight.assign(products, 0);
  const std::size_t nout = cover.nout();
  for (std::size_t o = 0; o < nout; ++o) {
    for (std::size_t i = 0; i < products; ++i) {
      if (!cover.cube(i).out(o)) continue;
      DynBits unique = analysis->cubeTt[i];
      for (std::size_t j = 0; j < products && unique.count() > 0; ++j)
        if (j != i && cover.cube(j).out(o)) unique.andNot(analysis->cubeTt[j]);
      analysis->weight[i] += unique.count();
    }
  }

  analysis->order.resize(products);
  for (std::size_t i = 0; i < products; ++i) analysis->order[i] = i;
  std::stable_sort(analysis->order.begin(), analysis->order.end(),
                   [&w = analysis->weight](std::size_t a, std::size_t b) {
                     return w[a] > w[b];
                   });

  std::lock_guard<std::mutex> lock(cacheMutex_);
  // Unbounded growth guard: an experiment uses one FM, so anything beyond a
  // handful of entries is churn from ad-hoc callers.
  if (cache_.size() >= 32) cache_.clear();
  cache_.emplace(hash, analysis);
  return analysis;
}

MappingResult ApproxMapper::map(const FunctionMatrix& fm, const BitMatrix& cm) const {
  MappingResult exact = inner_->map(fm, cm);
  if (exact.success || exact.aborted) return exact;
  return rescue(fm, cm, buildCandidateAdjacency(fm.bits(), cm), std::move(exact));
}

MappingResult ApproxMapper::map(const FunctionMatrix& fm, const BitMatrix& cm,
                                MappingContext& ctx) const {
  MappingResult exact = inner_->map(fm, cm, ctx);
  if (exact.success || exact.aborted) return exact;
  return rescue(fm, cm, ctx.candidateAdjacency(fm.bits(), cm), std::move(exact));
}

MappingResult ApproxMapper::rescue(const FunctionMatrix& fm, const BitMatrix& cm,
                                   const BitMatrix& adjacency,
                                   MappingResult innerFailure) const {
  // Outside the graded scope (multi-level FM, truth tables too wide): the
  // sample stays a plain binary failure.
  if (fm.numConnectionCols() != 0 || fm.nin() > 16 || fm.rows() > cm.rows())
    return innerFailure;

  faultinject::onSite("approx.evaluate");

  const auto analysis = analyze(fm);
  const std::size_t products = fm.numProductRows();
  const std::size_t nout = fm.numOutputRows();

  std::vector<std::size_t> rowOfCm(cm.rows(), MappingResult::kUnassigned);
  std::vector<std::size_t> cmOfRow(fm.rows(), MappingResult::kUnassigned);
  std::vector<unsigned char> visited(cm.rows(), 0);

  // One Kuhn augmenting pass for FM row r against the current matching.
  const auto augment = [&](std::size_t r) -> bool {
    std::fill(visited.begin(), visited.end(), 0);
    // Explicit DFS stack of (fmRow, next CM column to try).
    std::vector<std::pair<std::size_t, std::size_t>> stack{{r, 0}};
    // path[depth] = CM row taken at that depth, rebound on success.
    std::vector<std::size_t> path;
    while (!stack.empty()) {
      auto& [row, col] = stack.back();
      bool descended = false;
      for (; col < cm.rows(); ++col) {
        if (visited[col] || !adjacency.test(row, col)) continue;
        visited[col] = 1;
        path.resize(stack.size());
        path[stack.size() - 1] = col;
        const std::size_t occupant = rowOfCm[col];
        if (occupant == MappingResult::kUnassigned) {
          // Free CM row found: rebind the whole alternating path.
          for (std::size_t d = 0; d < stack.size(); ++d) {
            rowOfCm[path[d]] = stack[d].first;
            cmOfRow[stack[d].first] = path[d];
          }
          return true;
        }
        ++col;  // resume after this candidate when the branch dead-ends
        stack.emplace_back(occupant, 0);
        descended = true;
        break;
      }
      if (!descended) stack.pop_back();
    }
    return false;
  };

  // Output rows are mandatory: a function with a dead output latch has no
  // graded value (the paper's crossbar cannot read the output at all).
  for (std::size_t o = 0; o < nout; ++o)
    if (!augment(fm.rowOfOutput(o))) return innerFailure;

  // Product rows, heaviest first. Matchable row subsets form a transversal
  // matroid over the candidate adjacency, so greedy-by-weight with
  // augmenting paths lands on a maximum-weight matchable subset.
  std::vector<std::size_t> dropped;
  for (const std::size_t r : analysis->order)
    if (!augment(r)) dropped.push_back(r);

  if (dropped.empty()) {
    // The inner mapper failed but a full matching exists (possible only for
    // heuristic inners like HBA): promote to a plain exact success.
    MappingResult full;
    full.success = true;
    full.rowAssignment = std::move(cmOfRow);
    full.backtracks = innerFailure.backtracks;
    full.realizedError = 0.0;
    return full;
  }

  std::vector<std::size_t> retained;
  retained.reserve(products - dropped.size());
  for (std::size_t i = 0; i < products; ++i)
    if (cmOfRow[i] != MappingResult::kUnassigned) retained.push_back(i);
  const double err = approx::coverSubsetError(analysis->cover, retained).fraction();
  if (err > options_.epsilon) return innerFailure;

  std::sort(dropped.begin(), dropped.end());
  MappingResult partial;
  partial.success = false;
  partial.rowAssignment = std::move(cmOfRow);
  partial.droppedRows = std::move(dropped);
  partial.realizedError = err;
  partial.backtracks = innerFailure.backtracks;
  return partial;
}

}  // namespace mcx
