#include "approx/error.hpp"

#include "util/error.hpp"

namespace mcx::approx {

bool ErrorBudget::withinBudget(const ErrorReport& report) const {
  if (report.fraction() > epsilon) return false;
  const std::size_t outs =
      std::min(perOutputEpsilon.size(), report.wrongPerOutput.size());
  for (std::size_t o = 0; o < outs; ++o)
    if (report.fractionForOutput(o) > perOutputEpsilon[o]) return false;
  return true;
}

namespace {

ErrorReport compareImpl(const TruthTable& spec, const TruthTable& realized,
                        const TruthTable* dontCare) {
  MCX_REQUIRE(spec.nin() == realized.nin() && spec.nout() == realized.nout(),
              "compareTruthTables: arity mismatch");
  ErrorReport report;
  report.wrongPerOutput.resize(spec.nout(), 0);
  report.carePerOutput.resize(spec.nout(), 0);
  const std::size_t minterms = spec.numMinterms();
  for (std::size_t o = 0; o < spec.nout(); ++o) {
    DynBits diff = spec.bits(o) ^ realized.bits(o);
    std::size_t care = minterms;
    if (dontCare != nullptr) {
      diff.andNot(dontCare->bits(o));
      care = minterms - dontCare->bits(o).count();
    }
    const std::size_t wrong = diff.count();
    report.wrongPerOutput[o] = wrong;
    report.carePerOutput[o] = care;
    report.wrongPairs += wrong;
    report.carePairs += care;
  }
  return report;
}

}  // namespace

ErrorReport compareTruthTables(const TruthTable& spec, const TruthTable& realized) {
  return compareImpl(spec, realized, nullptr);
}

ErrorReport compareTruthTables(const TruthTable& spec, const TruthTable& realized,
                               const TruthTable& dontCare) {
  MCX_REQUIRE(spec.nin() == dontCare.nin() && spec.nout() == dontCare.nout(),
              "compareTruthTables: don't-care arity mismatch");
  return compareImpl(spec, realized, &dontCare);
}

namespace {

TruthTable subsetTable(const Cover& spec, const std::vector<std::size_t>& retained) {
  MCX_REQUIRE(spec.nin() <= 16, "coverSubsetError: explicit truth tables, 16-input bound");
  TruthTable realized(spec.nin(), spec.nout());
  for (const std::size_t i : retained) {
    MCX_REQUIRE(i < spec.size(), "coverSubsetError: retained index out of range");
    const Cube& c = spec.cube(i);
    const DynBits tt = ttOfCube(c);
    for (std::size_t o = 0; o < spec.nout(); ++o)
      if (c.out(o)) realized.bits(o) |= tt;
  }
  return realized;
}

}  // namespace

ErrorReport coverSubsetError(const Cover& spec, const std::vector<std::size_t>& retained) {
  return compareTruthTables(TruthTable::fromCover(spec), subsetTable(spec, retained));
}

ErrorReport coverSubsetError(const Cover& spec, const Cover& dc,
                             const std::vector<std::size_t>& retained) {
  return compareTruthTables(TruthTable::fromCover(spec), subsetTable(spec, retained),
                            TruthTable::fromCover(dc));
}

}  // namespace mcx::approx
