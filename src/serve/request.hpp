// Service request/response schema: one JSON line in, one JSON line out.
//
// A request is a complete experiment declaration — the JSON-lines twin of
// an ExperimentBuilder chain — validated EAGERLY at parse time through the
// same registries the builder uses, so an unknown circuit, a typo'd mapper
// option or an out-of-range knob is rejected before anything is queued:
//
//   {"id": "r1", "circuit": "rd53", "mapper": "hba",
//    "scenario": "clustered", "rate": 0.08,
//    "samples": 200, "seed": 42, "deadline_ms": 500}
//
// Members:
//   id           string or number, echoed verbatim in the response
//                (optional; the service numbers unnamed requests)
//   circuit      preset / prefixed source string, or an inline circuit
//                spec object (required)
//   mapper       preset name or mapper spec object (default "hba")
//   scenario     preset name or model spec object; absent = the legacy
//                i.i.d. rate-pair path at `open`/`closed`
//   rate         preset scenario rate (default 0.10)
//   open/closed  legacy rate-pair knobs (scenario absent only)
//   samples      Monte Carlo samples, 1..maxSamples (default 200)
//   seed         RNG root seed (default 1)
//   spare_rows   redundancy rows, 0..1024 (default 0)
//   multilevel   override the circuit spec's realization (optional bool)
//   deadline_ms  per-request time budget, measured from ADMISSION —
//                queueing and synthesis count (optional; service default)
//   cache        compile through the memo cache (default true)
//   lane         "interactive" (default) or "batch" — batch requests are
//                the first shed when the service enters overload mode
//   epsilon      graded acceptance budget in [0, 1] (optional): samples
//                within the realized-error budget count toward functional
//                yield(ε) and the response gains the graded fields
//                (epsilon_accepted, functional_yield, rescued,
//                mean_realized_error); absent = classical pass/fail output
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>

#include "circuit/spec.hpp"
#include "map/matching.hpp"
#include "scenario/defect_model.hpp"

namespace mcx::serve {

/// Parse-time bounds (the service's self-protection knobs).
struct RequestLimits {
  std::size_t maxSamples = 1000000;
  std::size_t maxSpareRows = 1024;
  std::size_t maxLineBytes = 1 << 20;  ///< reject megabyte "lines" up front
};

struct Request {
  /// Scheduling lane: batch work is shed first under overload, so the
  /// interactive lane keeps its latency while the service degrades.
  enum class Lane { Interactive, Batch };

  std::string id;
  CircuitSpec circuit;
  std::shared_ptr<const IMapper> mapper;
  /// Null = the legacy i.i.d. rate-pair path (open/closed below).
  std::shared_ptr<const DefectModel> scenario;
  std::string scenarioLabel;  ///< for the response ("iid (legacy rates)" when null)
  double legacyOpen = 0.10;
  double legacyClosed = 0.0;
  std::size_t samples = 200;
  std::uint64_t seed = 1;
  std::size_t spareRows = 0;
  std::optional<bool> multiLevel;
  std::optional<double> deadlineMillis;
  /// Graded acceptance budget; absent = classical pass/fail response shape.
  std::optional<double> epsilon;
  bool useCache = true;
  Lane lane = Lane::Interactive;
};

/// Parse and validate one request line. Throws ServeError(ErrorCode::Parse)
/// on malformed JSON, unknown members, unresolvable registry names, or
/// out-of-range values — never anything else, and never crashes or hangs on
/// adversarial input (fuzz-tested; the JSON parser depth-caps nesting).
Request parseRequest(const std::string& line, const RequestLimits& limits);

/// Best-effort id extraction from a line that failed parseRequest, so even
/// a malformed request's error response can be correlated by the client.
std::string extractRequestId(const std::string& line);

}  // namespace mcx::serve
