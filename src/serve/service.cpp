#include "serve/service.hpp"

#include <algorithm>
#include <new>
#include <sstream>
#include <utility>

#include "api/experiment.hpp"
#include "util/faultinject.hpp"

namespace mcx::serve {

namespace {

/// Shared response prologue: {"id":..., "status":...}.
void beginResponse(JsonWriter& json, const std::string& id, const char* status) {
  json.beginObject();
  json.field("id", id);
  json.field("status", status);
}

std::string errorResponse(const std::string& id, ErrorCode code, const std::string& message,
                          const ExperimentResult* partial = nullptr, double queueMs = -1,
                          double totalMs = -1) {
  std::ostringstream out;
  JsonWriter json(out, /*pretty=*/false);
  beginResponse(json, id, "error");
  json.key("error");
  json.beginObject();
  json.field("code", errorCodeLabel(code));
  json.field("message", message);
  json.endObject();
  if (partial != nullptr) {
    // Deadline/cancel aborts report exactly how far the experiment got —
    // the partial counts are real, well-labeled Monte Carlo results.
    json.field("samples", partial->outcome.samples);
    json.field("completed", partial->outcome.completed);
    json.field("successes", partial->outcome.successes);
    json.field("success_rate", partial->successRate());
  }
  if (queueMs >= 0) json.field("queue_ms", queueMs);
  if (totalMs >= 0) json.field("total_ms", totalMs);
  json.endObject();
  return out.str();
}

std::string okResponse(const std::string& id, const ExperimentResult& result, double queueMs,
                       double runMs, double totalMs) {
  std::ostringstream out;
  JsonWriter json(out, /*pretty=*/false);
  beginResponse(json, id, "ok");
  json.field("circuit", result.circuit);
  json.field("mapper", result.mapper);
  json.field("scenario", result.scenario);
  json.field("rows", result.rows);
  json.field("cols", result.cols);
  json.field("samples", result.outcome.samples);
  json.field("completed", result.outcome.completed);
  json.field("successes", result.outcome.successes);
  json.field("success_rate", result.successRate());
  json.field("total_backtracks", result.outcome.totalBacktracks);
  json.field("queue_ms", queueMs);
  json.field("run_ms", runMs);
  json.field("total_ms", totalMs);
  json.endObject();
  return out.str();
}

}  // namespace

ExperimentService::ExperimentService(ServiceOptions options, Sink sink)
    : options_(options),
      defaultSink_(std::move(sink)),
      cacheBaseline_(CircuitCache::global().stats()),
      pool_(options.poolThreads) {
  const std::size_t workers = std::max<std::size_t>(1, options_.requestThreads);
  workers_.reserve(workers);
  for (std::size_t w = 0; w < workers; ++w)
    workers_.emplace_back([this] { workerLoop(); });
}

ExperimentService::~ExperimentService() {
  shutdownNow();
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  workReady_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ExperimentService::bumpForCode(ErrorCode code) {
  // Caller holds mutex_.
  switch (code) {
    case ErrorCode::Parse: ++counters_.parseErrors; break;
    case ErrorCode::DeadlineExceeded: ++counters_.deadlineExceeded; break;
    case ErrorCode::Cancelled: ++counters_.cancelled; break;
    case ErrorCode::Overloaded: ++counters_.shedOverloaded; break;
    case ErrorCode::Internal: ++counters_.internalErrors; break;
  }
}

void ExperimentService::emit(const Sink& sink, const std::string& line) {
  // Per-request sinks serialize themselves (the daemon's per-connection
  // writer holds its own lock), so they are invoked WITHOUT the global emit
  // lock: a sink blocked on one slow consumer must never stall responses
  // bound for every other connection. Only the shared default sink — one
  // output stream for all requests — needs the global serialization.
  if (sink) {
    sink(line);
    return;
  }
  const std::lock_guard<std::mutex> lock(emitMutex_);
  if (defaultSink_) defaultSink_(line);
}

void ExperimentService::submit(const std::string& line, Sink sink) {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    ++counters_.received;
  }

  // Parse + eager validation happen on the submitter's thread, before any
  // queue interaction: a malformed request never occupies a queue slot.
  Request request;
  try {
    faultinject::onSite("serve.enqueue");
    request = parseRequest(line, options_.limits);
  } catch (const ServeError& e) {
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      bumpForCode(e.code());
    }
    emit(sink, errorResponse(extractRequestId(line), e.code(), e.what()));
    return;
  } catch (const std::bad_alloc&) {
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      ++counters_.internalErrors;
    }
    emit(sink, errorResponse(extractRequestId(line), ErrorCode::Internal,
                             "allocation failure at admission"));
    return;
  }

  auto pending = std::make_shared<Pending>();
  pending->request = std::move(request);
  pending->sink = std::move(sink);
  pending->token = std::make_shared<CancelToken>();
  // The deadline clock starts NOW, at admission: a request that waits out
  // its whole budget in the queue is shed by its executor immediately.
  const double deadline = pending->request.deadlineMillis.has_value()
                              ? *pending->request.deadlineMillis
                              : options_.defaultDeadlineMillis;
  if (deadline > 0) pending->token->setDeadlineAfterMillis(deadline);

  bool rejected = false;
  const char* rejectReason = nullptr;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (draining_ || stopping_) {
      bumpForCode(ErrorCode::Overloaded);
      rejected = true;
      rejectReason = "service is draining";
    } else if (queue_.size() >= options_.queueDepth) {
      bumpForCode(ErrorCode::Overloaded);
      rejected = true;
      rejectReason = "admission queue full";
    } else {
      queue_.push_back(pending);
      ++counters_.accepted;
      counters_.queueHighWater =
          std::max<std::uint64_t>(counters_.queueHighWater, queue_.size());
    }
  }
  if (rejected) {
    emit(pending->sink,
         errorResponse(pending->request.id, ErrorCode::Overloaded, rejectReason));
    return;
  }
  workReady_.notify_one();
}

void ExperimentService::workerLoop() {
  for (;;) {
    std::shared_ptr<Pending> pending;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      workReady_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (stopping_) return;
        continue;
      }
      pending = queue_.front();
      queue_.pop_front();
      inFlight_.push_back(pending->token);
    }

    execute(*pending);

    {
      const std::lock_guard<std::mutex> lock(mutex_);
      const auto it = std::find(inFlight_.begin(), inFlight_.end(), pending->token);
      if (it != inFlight_.end()) inFlight_.erase(it);
      if (queue_.empty() && inFlight_.empty()) idle_.notify_all();
    }
  }
}

void ExperimentService::execute(Pending& pending) {
  const Request& req = pending.request;
  const double queueMs = pending.admitted.millis();

  // A request that spent its whole budget queued is answered without
  // doing any work — the structured deadline_exceeded with zero samples.
  if (pending.token->stopRequested()) {
    const CancelToken::StopReason reason = pending.token->reason();
    const ErrorCode code = reason == CancelToken::StopReason::Cancelled
                               ? ErrorCode::Cancelled
                               : ErrorCode::DeadlineExceeded;
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      bumpForCode(code);
    }
    emit(pending.sink,
         errorResponse(req.id, code,
                       code == ErrorCode::Cancelled ? "cancelled before start"
                                                    : "deadline exceeded in queue",
                       nullptr, queueMs, pending.admitted.millis()));
    return;
  }

  Stopwatch runWatch;
  try {
    ExperimentBuilder builder;
    builder.circuit(req.circuit)
        .mapper(req.mapper)
        .samples(req.samples)
        .seed(req.seed)
        .spareRows(req.spareRows)
        .cache(req.useCache)
        .pool(&pool_)
        .cancelToken(pending.token);
    if (req.scenario != nullptr)
      builder.scenario(req.scenario);
    else
      builder.legacyRates(req.legacyOpen, req.legacyClosed);
    if (req.multiLevel.has_value()) builder.multiLevel(*req.multiLevel);

    const ExperimentResult result = builder.run();
    const double runMs = runWatch.millis();
    const double totalMs = pending.admitted.millis();

    if (result.outcome.aborted) {
      const ErrorCode code = result.outcome.abortReason == "cancelled"
                                 ? ErrorCode::Cancelled
                                 : ErrorCode::DeadlineExceeded;
      {
        const std::lock_guard<std::mutex> lock(mutex_);
        bumpForCode(code);
        counters_.samplesCompleted += result.outcome.completed;
        counters_.busyMillis += runMs;
      }
      emit(pending.sink, errorResponse(req.id, code,
                                       code == ErrorCode::Cancelled
                                           ? "cancelled mid-experiment"
                                           : "deadline exceeded mid-experiment",
                                       &result, queueMs, totalMs));
      return;
    }

    {
      const std::lock_guard<std::mutex> lock(mutex_);
      ++counters_.completedOk;
      counters_.samplesCompleted += result.outcome.completed;
      counters_.busyMillis += runMs;
    }
    emit(pending.sink, okResponse(req.id, result, queueMs, runMs, totalMs));
  } catch (const std::bad_alloc&) {
    const std::lock_guard<std::mutex> lock(mutex_);  // counters under lock
    ++counters_.internalErrors;
    counters_.busyMillis += runWatch.millis();
    emit(pending.sink, errorResponse(req.id, ErrorCode::Internal, "allocation failure",
                                     nullptr, queueMs, pending.admitted.millis()));
  } catch (const std::exception& e) {
    // Synthesis failures, engine invariant violations, injected faults:
    // the request dies with a structured `internal`, the daemon lives on.
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      ++counters_.internalErrors;
      counters_.busyMillis += runWatch.millis();
    }
    emit(pending.sink, errorResponse(req.id, ErrorCode::Internal, e.what(), nullptr,
                                     queueMs, pending.admitted.millis()));
  }
}

void ExperimentService::drain() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    draining_ = true;
  }
  workReady_.notify_all();
  std::unique_lock<std::mutex> lock(mutex_);
  idle_.wait(lock, [this] { return queue_.empty() && inFlight_.empty(); });
}

void ExperimentService::shutdownNow() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    draining_ = true;
    for (const auto& pending : queue_) pending->token->cancel();
    for (const auto& token : inFlight_) token->cancel();
  }
  drain();
}

bool ExperimentService::draining() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return draining_;
}

ServiceCounters ExperimentService::counters() const {
  ServiceCounters snapshot;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    snapshot = counters_;
  }
  const CircuitCache::Stats cache = CircuitCache::global().stats();
  snapshot.circuitCacheHits = cache.hits - cacheBaseline_.hits;
  snapshot.circuitCacheMisses = cache.misses - cacheBaseline_.misses;
  snapshot.synthesisRuns = cache.coverMisses - cacheBaseline_.coverMisses;
  return snapshot;
}

void ExperimentService::writeCountersJson(JsonWriter& json) const {
  const ServiceCounters c = counters();
  json.beginObject();
  json.field("received", c.received);
  json.field("accepted", c.accepted);
  json.field("completed_ok", c.completedOk);
  json.field("parse_errors", c.parseErrors);
  json.field("shed_overloaded", c.shedOverloaded);
  json.field("deadline_exceeded", c.deadlineExceeded);
  json.field("cancelled", c.cancelled);
  json.field("internal_errors", c.internalErrors);
  json.field("queue_high_water", c.queueHighWater);
  json.field("samples_completed", c.samplesCompleted);
  json.field("busy_millis", c.busyMillis);
  json.field("circuit_cache_hits", c.circuitCacheHits);
  json.field("circuit_cache_misses", c.circuitCacheMisses);
  json.field("synthesis_runs", c.synthesisRuns);
  json.endObject();
}

std::string ExperimentService::countersJson(bool pretty) const {
  std::ostringstream out;
  JsonWriter json(out, pretty);
  writeCountersJson(json);
  return out.str();
}

}  // namespace mcx::serve
