#include "serve/service.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <new>
#include <sstream>
#include <utility>

#include "api/experiment.hpp"
#include "obs/trace.hpp"
#include "scenario/spec.hpp"
#include "util/faultinject.hpp"
#include "util/process.hpp"

namespace mcx::serve {

namespace {

/// Shared response prologue: {"id":..., "status":...}.
void beginResponse(JsonWriter& json, const std::string& id, const char* status) {
  json.beginObject();
  json.field("id", id);
  json.field("status", status);
}

std::string errorResponse(const std::string& id, ErrorCode code, const std::string& message,
                          const ExperimentResult* partial = nullptr, double queueMs = -1,
                          double totalMs = -1) {
  std::ostringstream out;
  JsonWriter json(out, /*pretty=*/false);
  beginResponse(json, id, "error");
  json.key("error");
  json.beginObject();
  json.field("code", errorCodeLabel(code));
  json.field("message", message);
  json.endObject();
  if (partial != nullptr) {
    // Deadline/cancel aborts report exactly how far the experiment got —
    // the partial counts are real, well-labeled Monte Carlo results.
    json.field("samples", partial->outcome.samples);
    json.field("completed", partial->outcome.completed);
    json.field("successes", partial->outcome.successes);
    json.field("success_rate", partial->successRate());
  }
  if (queueMs >= 0) json.field("queue_ms", queueMs);
  if (totalMs >= 0) json.field("total_ms", totalMs);
  json.endObject();
  return out.str();
}

std::string okResponse(const std::string& id, const ExperimentResult& result, double queueMs,
                       double runMs, double totalMs, std::size_t requestedSamples = 0) {
  std::ostringstream out;
  JsonWriter json(out, /*pretty=*/false);
  beginResponse(json, id, "ok");
  json.field("circuit", result.circuit);
  json.field("mapper", result.mapper);
  json.field("scenario", result.scenario);
  json.field("rows", result.rows);
  json.field("cols", result.cols);
  json.field("samples", result.outcome.samples);
  json.field("completed", result.outcome.completed);
  json.field("successes", result.outcome.successes);
  json.field("success_rate", result.successRate());
  if (result.graded) {
    // The request carried an "epsilon" budget: graded counts join the
    // response. Absent otherwise, keeping legacy responses byte-identical.
    json.field("epsilon", result.config.epsilon);
    json.field("epsilon_accepted", result.outcome.epsilonAccepted);
    json.field("functional_yield", result.functionalYield());
    json.field("rescued", result.outcome.rescued);
    json.field("mean_realized_error", result.meanRealizedError());
  }
  json.field("total_backtracks", result.outcome.totalBacktracks);
  if (requestedSamples > 0) {
    // The degradation trimmer ran: the answer is real but computed over
    // fewer samples than asked for — labeled so clients can re-ask with a
    // bigger deadline instead of silently trusting a thinner estimate.
    json.field("degraded", true);
    json.field("requested_samples", requestedSamples);
  }
  json.field("queue_ms", queueMs);
  json.field("synth_ms", result.synthesisMillis);
  json.field("run_ms", runMs);
  json.field("total_ms", totalMs);
  json.endObject();
  return out.str();
}

/// The service's metric handles, resolved once per process. The registry
/// entries are process-monotonic ("serve.*"); per-service views subtract
/// the baseline captured at construction (see ServiceCounters).
struct ServeRegistry {
  obs::Counter& received;
  obs::Counter& accepted;
  obs::Counter& completedOk;
  obs::Counter& parseErrors;
  obs::Counter& shedOverloaded;
  obs::Counter& deadlineExceeded;
  obs::Counter& cancelled;
  obs::Counter& internalErrors;
  obs::Counter& samplesCompleted;
  obs::Counter& busyMicros;
  obs::Counter& statsRequests;
  obs::Counter& healthRequests;
  obs::Counter& oversizedLines;
  obs::Counter& agedOut;
  obs::Counter& clientShed;
  obs::Counter& costShed;
  obs::Counter& batchShed;
  obs::Counter& degraded;
  obs::Counter& watchdogFlags;
  obs::Gauge& queueDepth;
  obs::Gauge& inflight;
  obs::Gauge& queuedCost;
  obs::Gauge& stuckRequests;
  obs::Histogram& parseHist;
  obs::Histogram& queueWaitHist;
  obs::Histogram& synthesisHist;
  obs::Histogram& mcRunHist;
  obs::Histogram& emitHist;
  obs::Histogram& totalHist;
};

ServeRegistry& serveRegistry() {
  obs::Registry& r = obs::Registry::global();
  static ServeRegistry reg{
      r.counter("serve.received"),
      r.counter("serve.accepted"),
      r.counter("serve.completed_ok"),
      r.counter("serve.parse_errors"),
      r.counter("serve.shed_overloaded"),
      r.counter("serve.deadline_exceeded"),
      r.counter("serve.cancelled"),
      r.counter("serve.internal_errors"),
      r.counter("serve.samples_completed"),
      r.counter("serve.busy_micros"),
      r.counter("serve.stats_requests"),
      r.counter("serve.health_requests"),
      r.counter("serve.oversized_lines"),
      r.counter("serve.aged_out"),
      r.counter("serve.client_shed"),
      r.counter("serve.cost_shed"),
      r.counter("serve.batch_shed"),
      r.counter("serve.degraded"),
      r.counter("serve.watchdog_flags"),
      r.gauge("serve.queue_depth"),
      r.gauge("serve.inflight"),
      r.gauge("serve.queued_cost"),
      r.gauge("serve.stuck_requests"),
      r.histogram("serve.parse"),
      r.histogram("serve.queue_wait"),
      r.histogram("serve.synthesis"),
      r.histogram("serve.mc_run"),
      r.histogram("serve.emit"),
      r.histogram("serve.total"),
  };
  return reg;
}

}  // namespace

ExperimentService::ExperimentService(ServiceOptions options, Sink sink)
    : options_(options),
      defaultSink_(std::move(sink)),
      cacheBaseline_(CircuitCache::global().stats()),
      pool_(options.poolThreads) {
  const ServeRegistry& reg = serveRegistry();
  counterBase_.received = reg.received.value();
  counterBase_.accepted = reg.accepted.value();
  counterBase_.completedOk = reg.completedOk.value();
  counterBase_.parseErrors = reg.parseErrors.value();
  counterBase_.shedOverloaded = reg.shedOverloaded.value();
  counterBase_.deadlineExceeded = reg.deadlineExceeded.value();
  counterBase_.cancelled = reg.cancelled.value();
  counterBase_.internalErrors = reg.internalErrors.value();
  counterBase_.samplesCompleted = reg.samplesCompleted.value();
  counterBase_.busyMicros = reg.busyMicros.value();
  counterBase_.statsRequests = reg.statsRequests.value();
  counterBase_.healthRequests = reg.healthRequests.value();
  counterBase_.oversizedLines = reg.oversizedLines.value();
  counterBase_.agedOut = reg.agedOut.value();
  counterBase_.clientShed = reg.clientShed.value();
  counterBase_.costShed = reg.costShed.value();
  counterBase_.batchShed = reg.batchShed.value();
  counterBase_.degraded = reg.degraded.value();
  counterBase_.watchdogFlags = reg.watchdogFlags.value();

  const std::size_t workers = std::max<std::size_t>(1, options_.requestThreads);
  workers_.reserve(workers);
  for (std::size_t w = 0; w < workers; ++w)
    workers_.emplace_back([this] { workerLoop(); });
  if (options_.watchdogFactor > 0)
    watchdog_ = std::thread([this] { watchdogLoop(); });
}

ExperimentService::~ExperimentService() {
  shutdownNow();
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  workReady_.notify_all();
  watchdogCv_.notify_all();
  for (std::thread& t : workers_) t.join();
  if (watchdog_.joinable()) watchdog_.join();
}

void ExperimentService::bumpForCode(ErrorCode code) {
  // Registry counters are atomic: callable with or without the service lock.
  ServeRegistry& reg = serveRegistry();
  switch (code) {
    case ErrorCode::Parse: reg.parseErrors.add(1); break;
    case ErrorCode::DeadlineExceeded: reg.deadlineExceeded.add(1); break;
    case ErrorCode::Cancelled: reg.cancelled.add(1); break;
    case ErrorCode::Overloaded: reg.shedOverloaded.add(1); break;
    case ErrorCode::Internal: reg.internalErrors.add(1); break;
  }
}

void ExperimentService::emit(const Sink& sink, const std::string& line) {
  // Per-request sinks serialize themselves (the daemon's per-connection
  // writer holds its own lock), so they are invoked WITHOUT the global emit
  // lock: a sink blocked on one slow consumer must never stall responses
  // bound for every other connection. Only the shared default sink — one
  // output stream for all requests — needs the global serialization.
  if (sink) {
    sink(line);
    return;
  }
  const std::lock_guard<std::mutex> lock(emitMutex_);
  if (defaultSink_) defaultSink_(line);
}

void ExperimentService::submit(const std::string& line, Sink sink,
                               const std::string& client) {
  ServeRegistry& reg = serveRegistry();
  reg.received.add(1);

  // Control-plane requests short-circuit before request parsing (which
  // rejects unknown members, "type" included). The cheap substring check
  // keeps the experiment fast path free of a second JSON parse. Both
  // snapshots bypass admission ENTIRELY — no queue slot, no cost charge,
  // no overload shed — so a saturated or draining daemon still answers
  // its operators.
  if (line.find("\"type\"") != std::string::npos) {
    std::string type;
    try {
      const SpecValue spec = parseSpec(line);
      if (spec.isObject()) type = spec.stringOr("type", "");
    } catch (const std::exception&) {
      // Malformed JSON / mistyped member: fall through to the normal
      // parse-error response below.
    }
    if (type == "stats" || type == "health") {
      const bool isStats = type == "stats";
      (isStats ? reg.statsRequests : reg.healthRequests).add(1);
      std::ostringstream out;
      JsonWriter json(out, /*pretty=*/false);
      beginResponse(json, extractRequestId(line), "ok");
      json.key(isStats ? "stats" : "health");
      if (isStats)
        writeStatsJson(json);
      else
        writeHealthJson(json);
      json.endObject();
      emit(sink, out.str());
      return;
    }
  }

  // Parse + eager validation happen on the submitter's thread, before any
  // queue interaction: a malformed request never occupies a queue slot.
  Request request;
  try {
    faultinject::onSite("serve.enqueue");
    obs::Span parseSpan("parse", &reg.parseHist);
    request = parseRequest(line, options_.limits);
  } catch (const ServeError& e) {
    bumpForCode(e.code());
    emit(sink, errorResponse(extractRequestId(line), e.code(), e.what()));
    return;
  } catch (const std::bad_alloc&) {
    reg.internalErrors.add(1);
    emit(sink, errorResponse(extractRequestId(line), ErrorCode::Internal,
                             "allocation failure at admission"));
    return;
  }

  auto pending = std::make_shared<Pending>();
  pending->request = std::move(request);
  pending->sink = std::move(sink);
  pending->token = std::make_shared<CancelToken>();
  pending->admitNanos = Stopwatch::processNanos();
  // The deadline clock starts NOW, at admission: a request that waits out
  // its whole budget in the queue is shed by its executor immediately.
  const double deadline = pending->request.deadlineMillis.has_value()
                              ? *pending->request.deadlineMillis
                              : options_.defaultDeadlineMillis;
  if (deadline > 0) pending->token->setDeadlineAfterMillis(deadline);

  bool rejected = false;
  std::string rejectReason;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    pending->cost = costOfLocked(pending->request);
    if (draining_ || stopping_) {
      rejected = true;
      rejectReason = "service is draining";
    } else if (queue_.size() >= options_.queueDepth) {
      rejected = true;
      rejectReason = "admission queue full";
    } else if (pending->request.lane == Request::Lane::Batch &&
               options_.batchShedFraction < 1.0 &&
               static_cast<double>(queue_.size()) >=
                   options_.batchShedFraction *
                       static_cast<double>(options_.queueDepth)) {
      // Overload mode sheds the batch lane first: cheap insurance that the
      // interactive lane keeps its latency while the queue is still
      // absorbing a burst.
      rejected = true;
      rejectReason = "batch lane shed under load";
      reg.batchShed.add(1);
    } else if (options_.queueCostBudget > 0 &&
               queuedCost_ + pending->cost > options_.queueCostBudget) {
      // Cost-aware admission: one million-sample request can no longer hide
      // behind a single queue slot while fifty cheap ones are shed.
      rejected = true;
      rejectReason = "queue cost budget exceeded (request cost " +
                     std::to_string(pending->cost) + ")";
      reg.costShed.add(1);
    } else if (options_.clientCostRate > 0) {
      // Per-client token bucket, refilled by wall time against the rate.
      ClientBucket& bucket = clientBuckets_[client];
      const std::uint64_t now = Stopwatch::processNanos();
      const double burst = options_.clientCostBurst > 0 ? options_.clientCostBurst
                                                        : options_.clientCostRate;
      if (bucket.lastRefillNanos == 0)
        bucket.tokens = burst;  // a new client starts with a full bucket
      else
        bucket.tokens = std::min(
            burst, bucket.tokens + options_.clientCostRate *
                                       static_cast<double>(now - bucket.lastRefillNanos) /
                                       1e9);
      bucket.lastRefillNanos = now;
      if (bucket.tokens < static_cast<double>(pending->cost)) {
        rejected = true;
        rejectReason = "client cost budget exhausted (request cost " +
                       std::to_string(pending->cost) + ")";
        reg.clientShed.add(1);
      } else {
        bucket.tokens -= static_cast<double>(pending->cost);
      }
    }
    if (!rejected) {
      queue_.push_back(pending);
      queuedCost_ += pending->cost;
      reg.accepted.add(1);
      queueHighWater_ = std::max<std::uint64_t>(queueHighWater_, queue_.size());
      reg.queueDepth.set(static_cast<std::int64_t>(queue_.size()));
      reg.queuedCost.set(static_cast<std::int64_t>(queuedCost_));
    } else {
      bumpForCode(ErrorCode::Overloaded);
    }
  }
  if (rejected) {
    emit(pending->sink,
         errorResponse(pending->request.id, ErrorCode::Overloaded, rejectReason));
    return;
  }
  workReady_.notify_one();
}

void ExperimentService::workerLoop() {
  ServeRegistry& reg = serveRegistry();
  for (;;) {
    std::shared_ptr<Pending> pending;
    std::vector<std::shared_ptr<Pending>> aged;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      workReady_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (stopping_) return;
        continue;
      }
      // CoDel-style queue aging, swept at dequeue: every queued request
      // whose deadline already fired is pulled out in one pass and answered
      // without occupying a worker iteration each. The taxonomy is
      // unchanged (they come back `deadline_exceeded` through execute()'s
      // expired-in-queue path); serve.aged_out just makes the sweep
      // observable.
      for (auto it = queue_.begin(); it != queue_.end();) {
        if ((*it)->token->stopRequested()) {
          aged.push_back(*it);
          it = queue_.erase(it);
        } else {
          ++it;
        }
      }
      if (!aged.empty()) {
        reg.agedOut.add(aged.size());
        for (const auto& entry : aged) {
          queuedCost_ -= std::min(queuedCost_, entry->cost);
          inFlight_.push_back(entry);
        }
      }
      if (!queue_.empty()) {
        pending = queue_.front();
        queue_.pop_front();
        queuedCost_ -= std::min(queuedCost_, pending->cost);
        inFlight_.push_back(pending);
      }
      reg.queueDepth.set(static_cast<std::int64_t>(queue_.size()));
      reg.queuedCost.set(static_cast<std::int64_t>(queuedCost_));
      reg.inflight.set(static_cast<std::int64_t>(inFlight_.size()));
    }

    // Aged entries first: each is a fast structured response, so the real
    // request behind them is not delayed by more than the emit cost.
    for (const auto& entry : aged) execute(*entry);
    if (pending) execute(*pending);

    {
      const std::lock_guard<std::mutex> lock(mutex_);
      aged.push_back(pending);  // retire everything this iteration executed
      for (const auto& done : aged) {
        if (!done) continue;
        const auto it = std::find(inFlight_.begin(), inFlight_.end(), done);
        if (it != inFlight_.end()) inFlight_.erase(it);
      }
      reg.inflight.set(static_cast<std::int64_t>(inFlight_.size()));
      if (queue_.empty() && inFlight_.empty()) idle_.notify_all();
    }
  }
}

void ExperimentService::execute(Pending& pending) {
  ServeRegistry& reg = serveRegistry();
  const Request& req = pending.request;
  const double queueMs = pending.admitted.millis();
  reg.queueWaitHist.recordMillis(queueMs);
  // The queue wait already happened, so no Span can cover it — but its
  // endpoints are known, and Chrome complete events carry explicit ts/dur.
  if (obs::TraceSink* trace = obs::traceSink())
    trace->writeComplete("queue_wait", static_cast<double>(pending.admitNanos) / 1e3,
                         queueMs * 1e3, obs::currentTraceTid());

  // One emission per request, timed as the "emit" stage: serializing the
  // response is cheap, but a blocking default sink shows up here.
  const auto respond = [&](const std::string& lineOut) {
    obs::Span emitSpan("emit", &reg.emitHist);
    emit(pending.sink, lineOut);
    reg.totalHist.recordMillis(pending.admitted.millis());
  };

  // A request that spent its whole budget queued is answered without
  // doing any work — the structured deadline_exceeded with zero samples.
  if (pending.token->stopRequested()) {
    const CancelToken::StopReason reason = pending.token->reason();
    const ErrorCode code = reason == CancelToken::StopReason::Cancelled
                               ? ErrorCode::Cancelled
                               : ErrorCode::DeadlineExceeded;
    bumpForCode(code);
    respond(errorResponse(req.id, code,
                          code == ErrorCode::Cancelled ? "cancelled before start"
                                                       : "deadline exceeded in queue",
                          nullptr, queueMs, pending.admitted.millis()));
    return;
  }

  // Graceful degradation: when enabled and the learned per-sample rate says
  // the full sample count cannot fit the remaining deadline budget, trim to
  // what fits (x0.8 safety margin for synthesis and emit) instead of
  // burning the whole budget on a guaranteed deadline_exceeded.
  std::size_t runSamples = req.samples;
  if (options_.degradeSamples && pending.token->hasDeadline()) {
    double perSampleMs = 0;
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      perSampleMs = ewmaSampleMillis_;
    }
    const double remainingMs = pending.token->remainingMillis();
    if (perSampleMs > 0 && std::isfinite(remainingMs)) {
      const double affordable = std::floor(remainingMs * 0.8 / perSampleMs);
      if (affordable < static_cast<double>(runSamples))
        runSamples = static_cast<std::size_t>(std::max(affordable, 1.0));
    }
  }
  const bool degraded = runSamples < req.samples;

  Stopwatch runWatch;
  try {
    ExperimentBuilder builder;
    builder.circuit(req.circuit)
        .mapper(req.mapper)
        .samples(runSamples)
        .seed(req.seed)
        .spareRows(req.spareRows)
        .cache(req.useCache)
        .pool(&pool_)
        .cancelToken(pending.token);
    if (req.scenario != nullptr)
      builder.scenario(req.scenario);
    else
      builder.legacyRates(req.legacyOpen, req.legacyClosed);
    if (req.multiLevel.has_value()) builder.multiLevel(*req.multiLevel);
    if (req.epsilon.has_value()) builder.errorBudget(*req.epsilon);

    const ExperimentResult result = builder.run();
    const double runMs = runWatch.millis();
    const double totalMs = pending.admitted.millis();
    reg.synthesisHist.recordMillis(result.synthesisMillis);
    reg.mcRunHist.recordMillis(result.mcRunMillis);
    reg.samplesCompleted.add(result.outcome.completed);
    reg.busyMicros.add(static_cast<std::uint64_t>(runMs * 1e3));

    // Feed the admission cost model: the realized area replaces the
    // unknown-circuit default, and completed samples update the per-sample
    // EWMA the degradation trimmer consults.
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      learnedArea_[req.circuit.canonical()] =
          std::max<std::uint64_t>(1, static_cast<std::uint64_t>(result.rows) *
                                         static_cast<std::uint64_t>(result.cols));
      if (result.outcome.completed > 0 && result.mcRunMillis > 0) {
        const double perSample =
            result.mcRunMillis / static_cast<double>(result.outcome.completed);
        ewmaSampleMillis_ =
            ewmaSampleMillis_ == 0 ? perSample : 0.7 * ewmaSampleMillis_ + 0.3 * perSample;
      }
    }

    if (result.outcome.aborted) {
      const ErrorCode code = result.outcome.abortReason == "cancelled"
                                 ? ErrorCode::Cancelled
                                 : ErrorCode::DeadlineExceeded;
      bumpForCode(code);
      respond(errorResponse(req.id, code,
                            code == ErrorCode::Cancelled ? "cancelled mid-experiment"
                                                         : "deadline exceeded mid-experiment",
                            &result, queueMs, totalMs));
      return;
    }

    reg.completedOk.add(1);
    if (degraded) reg.degraded.add(1);
    respond(okResponse(req.id, result, queueMs, runMs, totalMs,
                       degraded ? req.samples : 0));
  } catch (const std::bad_alloc&) {
    reg.internalErrors.add(1);
    reg.busyMicros.add(static_cast<std::uint64_t>(runWatch.millis() * 1e3));
    respond(errorResponse(req.id, ErrorCode::Internal, "allocation failure", nullptr,
                          queueMs, pending.admitted.millis()));
  } catch (const std::exception& e) {
    // Synthesis failures, engine invariant violations, injected faults:
    // the request dies with a structured `internal`, the daemon lives on.
    reg.internalErrors.add(1);
    reg.busyMicros.add(static_cast<std::uint64_t>(runWatch.millis() * 1e3));
    respond(errorResponse(req.id, ErrorCode::Internal, e.what(), nullptr, queueMs,
                          pending.admitted.millis()));
  }
}

std::uint64_t ExperimentService::costOfLocked(const Request& request) const {
  // Cost units are samples x realized area (rows x cols). A circuit this
  // service has not executed yet is charged a mid-sized default — admission
  // must price a request BEFORE synthesis, so the first execution teaches
  // the model and repeats are priced exactly.
  constexpr std::uint64_t kUnknownArea = 1024;
  const auto it = learnedArea_.find(request.circuit.canonical());
  const std::uint64_t area = it == learnedArea_.end() ? kUnknownArea : it->second;
  return static_cast<std::uint64_t>(request.samples) * std::max<std::uint64_t>(1, area);
}

void ExperimentService::watchdogLoop() {
  ServeRegistry& reg = serveRegistry();
  std::unique_lock<std::mutex> lock(mutex_);
  while (!stopping_) {
    watchdogCv_.wait_for(lock, std::chrono::milliseconds(20),
                         [this] { return stopping_; });
    if (stopping_) break;
    // Threshold: factor x p99 of the end-to-end request latency histogram,
    // floored at 100 ms so an empty or cold histogram cannot make every
    // request "stuck" (or a millisecond-fast one unflaggable in tests).
    const double p99Ms = reg.totalHist.snapshot().quantile(0.99) / 1e6;
    const double thresholdMs = std::max(options_.watchdogFactor * p99Ms, 100.0);
    std::int64_t stuck = 0;
    for (const auto& pending : inFlight_) {
      if (pending->admitted.millis() <= thresholdMs) continue;
      ++stuck;
      if (!pending->flagged) {
        pending->flagged = true;
        reg.watchdogFlags.add(1);
      }
    }
    reg.stuckRequests.set(stuck);
  }
  reg.stuckRequests.set(0);
}

void ExperimentService::drain() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    draining_ = true;
  }
  workReady_.notify_all();
  std::unique_lock<std::mutex> lock(mutex_);
  idle_.wait(lock, [this] { return queue_.empty() && inFlight_.empty(); });
}

void ExperimentService::shutdownNow() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    draining_ = true;
    for (const auto& pending : queue_) pending->token->cancel();
    for (const auto& pending : inFlight_) pending->token->cancel();
  }
  drain();
}

bool ExperimentService::draining() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return draining_;
}

ServiceCounters ExperimentService::counters() const {
  ServiceCounters snapshot;
  const ServeRegistry& reg = serveRegistry();
  snapshot.received = reg.received.value() - counterBase_.received;
  snapshot.accepted = reg.accepted.value() - counterBase_.accepted;
  snapshot.completedOk = reg.completedOk.value() - counterBase_.completedOk;
  snapshot.parseErrors = reg.parseErrors.value() - counterBase_.parseErrors;
  snapshot.shedOverloaded = reg.shedOverloaded.value() - counterBase_.shedOverloaded;
  snapshot.deadlineExceeded = reg.deadlineExceeded.value() - counterBase_.deadlineExceeded;
  snapshot.cancelled = reg.cancelled.value() - counterBase_.cancelled;
  snapshot.internalErrors = reg.internalErrors.value() - counterBase_.internalErrors;
  snapshot.samplesCompleted = reg.samplesCompleted.value() - counterBase_.samplesCompleted;
  snapshot.busyMillis =
      static_cast<double>(reg.busyMicros.value() - counterBase_.busyMicros) / 1e3;
  snapshot.statsRequests = reg.statsRequests.value() - counterBase_.statsRequests;
  snapshot.healthRequests = reg.healthRequests.value() - counterBase_.healthRequests;
  snapshot.oversizedLines = reg.oversizedLines.value() - counterBase_.oversizedLines;
  snapshot.agedOut = reg.agedOut.value() - counterBase_.agedOut;
  snapshot.clientShed = reg.clientShed.value() - counterBase_.clientShed;
  snapshot.costShed = reg.costShed.value() - counterBase_.costShed;
  snapshot.batchShed = reg.batchShed.value() - counterBase_.batchShed;
  snapshot.degradedResponses = reg.degraded.value() - counterBase_.degraded;
  snapshot.watchdogFlags = reg.watchdogFlags.value() - counterBase_.watchdogFlags;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    snapshot.queueHighWater = queueHighWater_;
  }
  const CircuitCache::Stats cache = CircuitCache::global().stats();
  snapshot.circuitCacheHits = cache.hits - cacheBaseline_.hits;
  snapshot.circuitCacheMisses = cache.misses - cacheBaseline_.misses;
  snapshot.circuitCoverHits = cache.coverHits - cacheBaseline_.coverHits;
  snapshot.circuitCoverMisses = cache.coverMisses - cacheBaseline_.coverMisses;
  snapshot.synthesisRuns = cache.coverMisses - cacheBaseline_.coverMisses;
  return snapshot;
}

void ExperimentService::writeCountersJson(JsonWriter& json) const {
  const ServiceCounters c = counters();
  json.beginObject();
  json.field("received", c.received);
  json.field("accepted", c.accepted);
  json.field("completed_ok", c.completedOk);
  json.field("parse_errors", c.parseErrors);
  json.field("shed_overloaded", c.shedOverloaded);
  json.field("deadline_exceeded", c.deadlineExceeded);
  json.field("cancelled", c.cancelled);
  json.field("internal_errors", c.internalErrors);
  json.field("queue_high_water", c.queueHighWater);
  json.field("samples_completed", c.samplesCompleted);
  json.field("busy_millis", c.busyMillis);
  json.field("stats_requests", c.statsRequests);
  json.field("health_requests", c.healthRequests);
  json.field("oversized_lines", c.oversizedLines);
  json.field("aged_out", c.agedOut);
  json.field("client_shed", c.clientShed);
  json.field("cost_shed", c.costShed);
  json.field("batch_shed", c.batchShed);
  json.field("degraded_responses", c.degradedResponses);
  json.field("watchdog_flags", c.watchdogFlags);
  json.field("circuit_cache_hits", c.circuitCacheHits);
  json.field("circuit_cache_misses", c.circuitCacheMisses);
  json.field("circuit_cover_hits", c.circuitCoverHits);
  json.field("circuit_cover_misses", c.circuitCoverMisses);
  json.field("synthesis_runs", c.synthesisRuns);
  json.endObject();
}

std::string ExperimentService::countersJson(bool pretty) const {
  std::ostringstream out;
  JsonWriter json(out, pretty);
  writeCountersJson(json);
  return out.str();
}

void ExperimentService::writeStatsJson(JsonWriter& json) const {
  json.beginObject();
  json.key("service");
  writeCountersJson(json);
  json.key("registry");
  obs::Registry::global().writeJson(json);
  json.endObject();
}

std::string ExperimentService::statsJson(bool pretty) const {
  std::ostringstream out;
  JsonWriter json(out, pretty);
  writeStatsJson(json);
  return out.str();
}

void ExperimentService::writeHealthJson(JsonWriter& json) const {
  std::size_t queued = 0;
  std::uint64_t queuedCost = 0;
  std::size_t inflight = 0;
  std::int64_t stuck = 0;
  bool draining = false;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    queued = queue_.size();
    queuedCost = queuedCost_;
    inflight = inFlight_.size();
    draining = draining_ || stopping_;
    for (const auto& pending : inFlight_)
      if (pending->flagged) ++stuck;
  }
  // "degraded" = overload mode (the batch-shed threshold is crossed) or a
  // watchdog-flagged request is still in flight — the daemon is alive and
  // answering but an operator should look at it.
  const bool overloaded =
      static_cast<double>(queued) >=
      options_.batchShedFraction * static_cast<double>(options_.queueDepth);
  const char* status = draining ? "draining" : (overloaded || stuck > 0) ? "degraded" : "ok";
  const proc::MemoryUsage mem = proc::memoryUsage();

  json.beginObject();
  json.field("status", status);
  json.field("queue_depth", queued);
  json.field("queue_capacity", options_.queueDepth);
  json.field("inflight", inflight);
  json.field("queued_cost", queuedCost);
  json.field("stuck_requests", stuck);
  json.field("cache_bytes", CircuitCache::global().currentBytes());
  json.field("cache_budget_bytes", CircuitCache::global().byteBudget());
  json.field("rss_bytes", mem.rssBytes);
  json.field("peak_rss_bytes", mem.peakRssBytes);
  json.endObject();
}

std::string ExperimentService::healthJson(bool pretty) const {
  std::ostringstream out;
  JsonWriter json(out, pretty);
  writeHealthJson(json);
  return out.str();
}

}  // namespace mcx::serve
