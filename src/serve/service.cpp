#include "serve/service.hpp"

#include <algorithm>
#include <new>
#include <sstream>
#include <utility>

#include "api/experiment.hpp"
#include "obs/trace.hpp"
#include "scenario/spec.hpp"
#include "util/faultinject.hpp"

namespace mcx::serve {

namespace {

/// Shared response prologue: {"id":..., "status":...}.
void beginResponse(JsonWriter& json, const std::string& id, const char* status) {
  json.beginObject();
  json.field("id", id);
  json.field("status", status);
}

std::string errorResponse(const std::string& id, ErrorCode code, const std::string& message,
                          const ExperimentResult* partial = nullptr, double queueMs = -1,
                          double totalMs = -1) {
  std::ostringstream out;
  JsonWriter json(out, /*pretty=*/false);
  beginResponse(json, id, "error");
  json.key("error");
  json.beginObject();
  json.field("code", errorCodeLabel(code));
  json.field("message", message);
  json.endObject();
  if (partial != nullptr) {
    // Deadline/cancel aborts report exactly how far the experiment got —
    // the partial counts are real, well-labeled Monte Carlo results.
    json.field("samples", partial->outcome.samples);
    json.field("completed", partial->outcome.completed);
    json.field("successes", partial->outcome.successes);
    json.field("success_rate", partial->successRate());
  }
  if (queueMs >= 0) json.field("queue_ms", queueMs);
  if (totalMs >= 0) json.field("total_ms", totalMs);
  json.endObject();
  return out.str();
}

std::string okResponse(const std::string& id, const ExperimentResult& result, double queueMs,
                       double runMs, double totalMs) {
  std::ostringstream out;
  JsonWriter json(out, /*pretty=*/false);
  beginResponse(json, id, "ok");
  json.field("circuit", result.circuit);
  json.field("mapper", result.mapper);
  json.field("scenario", result.scenario);
  json.field("rows", result.rows);
  json.field("cols", result.cols);
  json.field("samples", result.outcome.samples);
  json.field("completed", result.outcome.completed);
  json.field("successes", result.outcome.successes);
  json.field("success_rate", result.successRate());
  json.field("total_backtracks", result.outcome.totalBacktracks);
  json.field("queue_ms", queueMs);
  json.field("synth_ms", result.synthesisMillis);
  json.field("run_ms", runMs);
  json.field("total_ms", totalMs);
  json.endObject();
  return out.str();
}

/// The service's metric handles, resolved once per process. The registry
/// entries are process-monotonic ("serve.*"); per-service views subtract
/// the baseline captured at construction (see ServiceCounters).
struct ServeRegistry {
  obs::Counter& received;
  obs::Counter& accepted;
  obs::Counter& completedOk;
  obs::Counter& parseErrors;
  obs::Counter& shedOverloaded;
  obs::Counter& deadlineExceeded;
  obs::Counter& cancelled;
  obs::Counter& internalErrors;
  obs::Counter& samplesCompleted;
  obs::Counter& busyMicros;
  obs::Counter& statsRequests;
  obs::Gauge& queueDepth;
  obs::Gauge& inflight;
  obs::Histogram& parseHist;
  obs::Histogram& queueWaitHist;
  obs::Histogram& synthesisHist;
  obs::Histogram& mcRunHist;
  obs::Histogram& emitHist;
  obs::Histogram& totalHist;
};

ServeRegistry& serveRegistry() {
  obs::Registry& r = obs::Registry::global();
  static ServeRegistry reg{
      r.counter("serve.received"),
      r.counter("serve.accepted"),
      r.counter("serve.completed_ok"),
      r.counter("serve.parse_errors"),
      r.counter("serve.shed_overloaded"),
      r.counter("serve.deadline_exceeded"),
      r.counter("serve.cancelled"),
      r.counter("serve.internal_errors"),
      r.counter("serve.samples_completed"),
      r.counter("serve.busy_micros"),
      r.counter("serve.stats_requests"),
      r.gauge("serve.queue_depth"),
      r.gauge("serve.inflight"),
      r.histogram("serve.parse"),
      r.histogram("serve.queue_wait"),
      r.histogram("serve.synthesis"),
      r.histogram("serve.mc_run"),
      r.histogram("serve.emit"),
      r.histogram("serve.total"),
  };
  return reg;
}

}  // namespace

ExperimentService::ExperimentService(ServiceOptions options, Sink sink)
    : options_(options),
      defaultSink_(std::move(sink)),
      cacheBaseline_(CircuitCache::global().stats()),
      pool_(options.poolThreads) {
  const ServeRegistry& reg = serveRegistry();
  counterBase_.received = reg.received.value();
  counterBase_.accepted = reg.accepted.value();
  counterBase_.completedOk = reg.completedOk.value();
  counterBase_.parseErrors = reg.parseErrors.value();
  counterBase_.shedOverloaded = reg.shedOverloaded.value();
  counterBase_.deadlineExceeded = reg.deadlineExceeded.value();
  counterBase_.cancelled = reg.cancelled.value();
  counterBase_.internalErrors = reg.internalErrors.value();
  counterBase_.samplesCompleted = reg.samplesCompleted.value();
  counterBase_.busyMicros = reg.busyMicros.value();
  counterBase_.statsRequests = reg.statsRequests.value();

  const std::size_t workers = std::max<std::size_t>(1, options_.requestThreads);
  workers_.reserve(workers);
  for (std::size_t w = 0; w < workers; ++w)
    workers_.emplace_back([this] { workerLoop(); });
}

ExperimentService::~ExperimentService() {
  shutdownNow();
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  workReady_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ExperimentService::bumpForCode(ErrorCode code) {
  // Registry counters are atomic: callable with or without the service lock.
  ServeRegistry& reg = serveRegistry();
  switch (code) {
    case ErrorCode::Parse: reg.parseErrors.add(1); break;
    case ErrorCode::DeadlineExceeded: reg.deadlineExceeded.add(1); break;
    case ErrorCode::Cancelled: reg.cancelled.add(1); break;
    case ErrorCode::Overloaded: reg.shedOverloaded.add(1); break;
    case ErrorCode::Internal: reg.internalErrors.add(1); break;
  }
}

void ExperimentService::emit(const Sink& sink, const std::string& line) {
  // Per-request sinks serialize themselves (the daemon's per-connection
  // writer holds its own lock), so they are invoked WITHOUT the global emit
  // lock: a sink blocked on one slow consumer must never stall responses
  // bound for every other connection. Only the shared default sink — one
  // output stream for all requests — needs the global serialization.
  if (sink) {
    sink(line);
    return;
  }
  const std::lock_guard<std::mutex> lock(emitMutex_);
  if (defaultSink_) defaultSink_(line);
}

void ExperimentService::submit(const std::string& line, Sink sink) {
  ServeRegistry& reg = serveRegistry();
  reg.received.add(1);

  // Control-plane requests short-circuit before request parsing (which
  // rejects unknown members, "type" included). The cheap substring check
  // keeps the experiment fast path free of a second JSON parse.
  if (line.find("\"type\"") != std::string::npos) {
    bool isStats = false;
    try {
      const SpecValue spec = parseSpec(line);
      isStats = spec.isObject() && spec.stringOr("type", "") == "stats";
    } catch (const std::exception&) {
      // Malformed JSON / mistyped member: fall through to the normal
      // parse-error response below.
    }
    if (isStats) {
      reg.statsRequests.add(1);
      std::ostringstream out;
      JsonWriter json(out, /*pretty=*/false);
      beginResponse(json, extractRequestId(line), "ok");
      json.key("stats");
      writeStatsJson(json);
      json.endObject();
      emit(sink, out.str());
      return;
    }
  }

  // Parse + eager validation happen on the submitter's thread, before any
  // queue interaction: a malformed request never occupies a queue slot.
  Request request;
  try {
    faultinject::onSite("serve.enqueue");
    obs::Span parseSpan("parse", &reg.parseHist);
    request = parseRequest(line, options_.limits);
  } catch (const ServeError& e) {
    bumpForCode(e.code());
    emit(sink, errorResponse(extractRequestId(line), e.code(), e.what()));
    return;
  } catch (const std::bad_alloc&) {
    reg.internalErrors.add(1);
    emit(sink, errorResponse(extractRequestId(line), ErrorCode::Internal,
                             "allocation failure at admission"));
    return;
  }

  auto pending = std::make_shared<Pending>();
  pending->request = std::move(request);
  pending->sink = std::move(sink);
  pending->token = std::make_shared<CancelToken>();
  pending->admitNanos = Stopwatch::processNanos();
  // The deadline clock starts NOW, at admission: a request that waits out
  // its whole budget in the queue is shed by its executor immediately.
  const double deadline = pending->request.deadlineMillis.has_value()
                              ? *pending->request.deadlineMillis
                              : options_.defaultDeadlineMillis;
  if (deadline > 0) pending->token->setDeadlineAfterMillis(deadline);

  bool rejected = false;
  const char* rejectReason = nullptr;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (draining_ || stopping_) {
      bumpForCode(ErrorCode::Overloaded);
      rejected = true;
      rejectReason = "service is draining";
    } else if (queue_.size() >= options_.queueDepth) {
      bumpForCode(ErrorCode::Overloaded);
      rejected = true;
      rejectReason = "admission queue full";
    } else {
      queue_.push_back(pending);
      reg.accepted.add(1);
      queueHighWater_ = std::max<std::uint64_t>(queueHighWater_, queue_.size());
      reg.queueDepth.set(static_cast<std::int64_t>(queue_.size()));
    }
  }
  if (rejected) {
    emit(pending->sink,
         errorResponse(pending->request.id, ErrorCode::Overloaded, rejectReason));
    return;
  }
  workReady_.notify_one();
}

void ExperimentService::workerLoop() {
  ServeRegistry& reg = serveRegistry();
  for (;;) {
    std::shared_ptr<Pending> pending;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      workReady_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (stopping_) return;
        continue;
      }
      pending = queue_.front();
      queue_.pop_front();
      inFlight_.push_back(pending->token);
      reg.queueDepth.set(static_cast<std::int64_t>(queue_.size()));
      reg.inflight.set(static_cast<std::int64_t>(inFlight_.size()));
    }

    execute(*pending);

    {
      const std::lock_guard<std::mutex> lock(mutex_);
      const auto it = std::find(inFlight_.begin(), inFlight_.end(), pending->token);
      if (it != inFlight_.end()) inFlight_.erase(it);
      reg.inflight.set(static_cast<std::int64_t>(inFlight_.size()));
      if (queue_.empty() && inFlight_.empty()) idle_.notify_all();
    }
  }
}

void ExperimentService::execute(Pending& pending) {
  ServeRegistry& reg = serveRegistry();
  const Request& req = pending.request;
  const double queueMs = pending.admitted.millis();
  reg.queueWaitHist.recordMillis(queueMs);
  // The queue wait already happened, so no Span can cover it — but its
  // endpoints are known, and Chrome complete events carry explicit ts/dur.
  if (obs::TraceSink* trace = obs::traceSink())
    trace->writeComplete("queue_wait", static_cast<double>(pending.admitNanos) / 1e3,
                         queueMs * 1e3, obs::currentTraceTid());

  // One emission per request, timed as the "emit" stage: serializing the
  // response is cheap, but a blocking default sink shows up here.
  const auto respond = [&](const std::string& lineOut) {
    obs::Span emitSpan("emit", &reg.emitHist);
    emit(pending.sink, lineOut);
    reg.totalHist.recordMillis(pending.admitted.millis());
  };

  // A request that spent its whole budget queued is answered without
  // doing any work — the structured deadline_exceeded with zero samples.
  if (pending.token->stopRequested()) {
    const CancelToken::StopReason reason = pending.token->reason();
    const ErrorCode code = reason == CancelToken::StopReason::Cancelled
                               ? ErrorCode::Cancelled
                               : ErrorCode::DeadlineExceeded;
    bumpForCode(code);
    respond(errorResponse(req.id, code,
                          code == ErrorCode::Cancelled ? "cancelled before start"
                                                       : "deadline exceeded in queue",
                          nullptr, queueMs, pending.admitted.millis()));
    return;
  }

  Stopwatch runWatch;
  try {
    ExperimentBuilder builder;
    builder.circuit(req.circuit)
        .mapper(req.mapper)
        .samples(req.samples)
        .seed(req.seed)
        .spareRows(req.spareRows)
        .cache(req.useCache)
        .pool(&pool_)
        .cancelToken(pending.token);
    if (req.scenario != nullptr)
      builder.scenario(req.scenario);
    else
      builder.legacyRates(req.legacyOpen, req.legacyClosed);
    if (req.multiLevel.has_value()) builder.multiLevel(*req.multiLevel);

    const ExperimentResult result = builder.run();
    const double runMs = runWatch.millis();
    const double totalMs = pending.admitted.millis();
    reg.synthesisHist.recordMillis(result.synthesisMillis);
    reg.mcRunHist.recordMillis(result.mcRunMillis);
    reg.samplesCompleted.add(result.outcome.completed);
    reg.busyMicros.add(static_cast<std::uint64_t>(runMs * 1e3));

    if (result.outcome.aborted) {
      const ErrorCode code = result.outcome.abortReason == "cancelled"
                                 ? ErrorCode::Cancelled
                                 : ErrorCode::DeadlineExceeded;
      bumpForCode(code);
      respond(errorResponse(req.id, code,
                            code == ErrorCode::Cancelled ? "cancelled mid-experiment"
                                                         : "deadline exceeded mid-experiment",
                            &result, queueMs, totalMs));
      return;
    }

    reg.completedOk.add(1);
    respond(okResponse(req.id, result, queueMs, runMs, totalMs));
  } catch (const std::bad_alloc&) {
    reg.internalErrors.add(1);
    reg.busyMicros.add(static_cast<std::uint64_t>(runWatch.millis() * 1e3));
    respond(errorResponse(req.id, ErrorCode::Internal, "allocation failure", nullptr,
                          queueMs, pending.admitted.millis()));
  } catch (const std::exception& e) {
    // Synthesis failures, engine invariant violations, injected faults:
    // the request dies with a structured `internal`, the daemon lives on.
    reg.internalErrors.add(1);
    reg.busyMicros.add(static_cast<std::uint64_t>(runWatch.millis() * 1e3));
    respond(errorResponse(req.id, ErrorCode::Internal, e.what(), nullptr, queueMs,
                          pending.admitted.millis()));
  }
}

void ExperimentService::drain() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    draining_ = true;
  }
  workReady_.notify_all();
  std::unique_lock<std::mutex> lock(mutex_);
  idle_.wait(lock, [this] { return queue_.empty() && inFlight_.empty(); });
}

void ExperimentService::shutdownNow() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    draining_ = true;
    for (const auto& pending : queue_) pending->token->cancel();
    for (const auto& token : inFlight_) token->cancel();
  }
  drain();
}

bool ExperimentService::draining() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return draining_;
}

ServiceCounters ExperimentService::counters() const {
  ServiceCounters snapshot;
  const ServeRegistry& reg = serveRegistry();
  snapshot.received = reg.received.value() - counterBase_.received;
  snapshot.accepted = reg.accepted.value() - counterBase_.accepted;
  snapshot.completedOk = reg.completedOk.value() - counterBase_.completedOk;
  snapshot.parseErrors = reg.parseErrors.value() - counterBase_.parseErrors;
  snapshot.shedOverloaded = reg.shedOverloaded.value() - counterBase_.shedOverloaded;
  snapshot.deadlineExceeded = reg.deadlineExceeded.value() - counterBase_.deadlineExceeded;
  snapshot.cancelled = reg.cancelled.value() - counterBase_.cancelled;
  snapshot.internalErrors = reg.internalErrors.value() - counterBase_.internalErrors;
  snapshot.samplesCompleted = reg.samplesCompleted.value() - counterBase_.samplesCompleted;
  snapshot.busyMillis =
      static_cast<double>(reg.busyMicros.value() - counterBase_.busyMicros) / 1e3;
  snapshot.statsRequests = reg.statsRequests.value() - counterBase_.statsRequests;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    snapshot.queueHighWater = queueHighWater_;
  }
  const CircuitCache::Stats cache = CircuitCache::global().stats();
  snapshot.circuitCacheHits = cache.hits - cacheBaseline_.hits;
  snapshot.circuitCacheMisses = cache.misses - cacheBaseline_.misses;
  snapshot.circuitCoverHits = cache.coverHits - cacheBaseline_.coverHits;
  snapshot.circuitCoverMisses = cache.coverMisses - cacheBaseline_.coverMisses;
  snapshot.synthesisRuns = cache.coverMisses - cacheBaseline_.coverMisses;
  return snapshot;
}

void ExperimentService::writeCountersJson(JsonWriter& json) const {
  const ServiceCounters c = counters();
  json.beginObject();
  json.field("received", c.received);
  json.field("accepted", c.accepted);
  json.field("completed_ok", c.completedOk);
  json.field("parse_errors", c.parseErrors);
  json.field("shed_overloaded", c.shedOverloaded);
  json.field("deadline_exceeded", c.deadlineExceeded);
  json.field("cancelled", c.cancelled);
  json.field("internal_errors", c.internalErrors);
  json.field("queue_high_water", c.queueHighWater);
  json.field("samples_completed", c.samplesCompleted);
  json.field("busy_millis", c.busyMillis);
  json.field("stats_requests", c.statsRequests);
  json.field("circuit_cache_hits", c.circuitCacheHits);
  json.field("circuit_cache_misses", c.circuitCacheMisses);
  json.field("circuit_cover_hits", c.circuitCoverHits);
  json.field("circuit_cover_misses", c.circuitCoverMisses);
  json.field("synthesis_runs", c.synthesisRuns);
  json.endObject();
}

std::string ExperimentService::countersJson(bool pretty) const {
  std::ostringstream out;
  JsonWriter json(out, pretty);
  writeCountersJson(json);
  return out.str();
}

void ExperimentService::writeStatsJson(JsonWriter& json) const {
  json.beginObject();
  json.key("service");
  writeCountersJson(json);
  json.key("registry");
  obs::Registry::global().writeJson(json);
  json.endObject();
}

std::string ExperimentService::statsJson(bool pretty) const {
  std::ostringstream out;
  JsonWriter json(out, pretty);
  writeStatsJson(json);
  return out.str();
}

}  // namespace mcx::serve
