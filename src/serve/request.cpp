#include "serve/request.hpp"

#include <cmath>
#include <sstream>

#include "circuit/registry.hpp"
#include "map/registry.hpp"
#include "obs/metrics.hpp"
#include "scenario/registry.hpp"
#include "scenario/spec.hpp"
#include "serve/error.hpp"

namespace mcx::serve {

namespace {

[[noreturn]] void failParse(const std::string& msg) {
  throw ServeError(ErrorCode::Parse, "request: " + msg);
}

obs::Counter& oversizedLineCounter() {
  static obs::Counter& c = obs::Registry::global().counter("serve.oversized_lines");
  return c;
}

/// A non-negative integral number member within [min, max]; requests with
/// "samples": 1e300 or "seed": 1.5 are declaration bugs, not roundables.
std::uint64_t integralOr(const SpecValue& doc, const std::string& key, std::uint64_t fallback,
                         std::uint64_t min, std::uint64_t max) {
  const SpecValue* v = doc.find(key);
  if (v == nullptr) return fallback;
  if (v->kind != SpecValue::Kind::Number)
    failParse("member \"" + key + "\" must be a number");
  const double d = v->number;
  if (!(d >= 0) || d != std::floor(d) || d > 1.8e19)
    failParse("member \"" + key + "\" must be a non-negative integer");
  const auto value = static_cast<std::uint64_t>(d);
  if (value < min || value > max)
    failParse("member \"" + key + "\" out of range [" + std::to_string(min) + ", " +
              std::to_string(max) + "]");
  return value;
}

double rateOr(const SpecValue& doc, const std::string& key, double fallback) {
  const double value = doc.numberOr(key, fallback);
  if (!(value >= 0.0 && value <= 1.0))
    failParse("member \"" + key + "\" must be a rate in [0, 1]");
  return value;
}

const char* const kKnownMembers[] = {"id",     "circuit",    "mapper",     "scenario",
                                     "rate",   "open",       "closed",     "samples",
                                     "seed",   "spare_rows", "multilevel", "deadline_ms",
                                     "cache",  "lane",       "epsilon"};

void rejectUnknownMembers(const SpecValue& doc) {
  for (const auto& [name, value] : doc.members) {
    bool known = false;
    for (const char* member : kKnownMembers)
      if (name == member) {
        known = true;
        break;
      }
    if (!known) failParse("unknown member \"" + name + "\"");
  }
}

std::string idOf(const SpecValue& doc) {
  const SpecValue* v = doc.find("id");
  if (v == nullptr) return "";
  if (v->kind == SpecValue::Kind::String) return v->string;
  if (v->kind == SpecValue::Kind::Number) {
    // Echo integral ids the way the client wrote them.
    std::ostringstream out;
    if (v->number == std::floor(v->number) && std::abs(v->number) < 1e15)
      out << static_cast<long long>(v->number);
    else
      out << v->number;
    return out.str();
  }
  failParse("member \"id\" must be a string or a number");
}

}  // namespace

Request parseRequest(const std::string& line, const RequestLimits& limits) {
  if (line.size() > limits.maxLineBytes) {
    // The observed length matters operationally: it tells a client whether
    // it sent one huge request or forgot its newline framing entirely.
    oversizedLineCounter().add(1);
    failParse("line is " + std::to_string(line.size()) + " bytes, exceeds the " +
              std::to_string(limits.maxLineBytes) + "-byte limit");
  }

  SpecValue doc;
  try {
    doc = parseSpec(line);
  } catch (const ParseError& e) {
    failParse(e.what());
  }
  if (!doc.isObject()) failParse("request must be a JSON object");
  rejectUnknownMembers(doc);

  Request req;
  req.id = idOf(doc);

  // Resolution goes through the exact registries the builder uses; their
  // ParseErrors (unknown preset, malformed spec, bad option) become the
  // service's `parse` taxonomy code.
  try {
    const SpecValue* circuit = doc.find("circuit");
    if (circuit == nullptr) failParse("member \"circuit\" is required");
    if (circuit->kind == SpecValue::Kind::String)
      req.circuit = makeCircuitSpec(circuit->string);
    else if (circuit->isObject())
      req.circuit = circuitSpecFromSpec(*circuit);
    else
      failParse("member \"circuit\" must be a string or an object");

    const SpecValue* mapper = doc.find("mapper");
    if (mapper == nullptr)
      req.mapper = makeMapper("hba");
    else if (mapper->kind == SpecValue::Kind::String)
      req.mapper = makeMapper(mapper->string);
    else if (mapper->isObject())
      req.mapper = mapperFromSpec(*mapper);
    else
      failParse("member \"mapper\" must be a string or an object");

    const double rate = rateOr(doc, "rate", 0.10);
    const SpecValue* scenario = doc.find("scenario");
    if (scenario == nullptr) {
      req.scenario = nullptr;  // legacy rate-pair path
      req.legacyOpen = rateOr(doc, "open", rate);
      req.legacyClosed = rateOr(doc, "closed", 0.0);
      req.scenarioLabel = "iid (legacy rates)";
    } else {
      if (doc.find("open") != nullptr || doc.find("closed") != nullptr)
        failParse("members \"open\"/\"closed\" require the legacy path (no \"scenario\")");
      if (scenario->kind == SpecValue::Kind::String)
        req.scenario = makeScenario(scenario->string, rate);
      else if (scenario->isObject())
        req.scenario = modelFromSpec(*scenario);
      else
        failParse("member \"scenario\" must be a string or an object");
      req.scenarioLabel = req.scenario->describe();
    }
  } catch (const ServeError&) {
    throw;
  } catch (const ParseError& e) {
    failParse(e.what());
  } catch (const InvalidArgument& e) {
    failParse(e.what());
  }

  req.samples =
      static_cast<std::size_t>(integralOr(doc, "samples", 200, 1, limits.maxSamples));
  req.seed = integralOr(doc, "seed", 1, 0, UINT64_MAX);
  req.spareRows =
      static_cast<std::size_t>(integralOr(doc, "spare_rows", 0, 0, limits.maxSpareRows));

  const SpecValue* multilevel = doc.find("multilevel");
  if (multilevel != nullptr) {
    if (multilevel->kind != SpecValue::Kind::Bool)
      failParse("member \"multilevel\" must be a boolean");
    req.multiLevel = multilevel->boolean;
  }

  const SpecValue* epsilon = doc.find("epsilon");
  if (epsilon != nullptr) {
    if (epsilon->kind != SpecValue::Kind::Number ||
        !(epsilon->number >= 0.0 && epsilon->number <= 1.0))
      failParse("member \"epsilon\" must be a number in [0, 1]");
    req.epsilon = epsilon->number;
  }

  const SpecValue* deadline = doc.find("deadline_ms");
  if (deadline != nullptr) {
    if (deadline->kind != SpecValue::Kind::Number || !(deadline->number > 0))
      failParse("member \"deadline_ms\" must be a positive number");
    req.deadlineMillis = deadline->number;
  }
  try {
    req.useCache = doc.boolOr("cache", true);
  } catch (const ParseError& e) {
    failParse(e.what());
  }

  const SpecValue* lane = doc.find("lane");
  if (lane != nullptr) {
    if (lane->kind != SpecValue::Kind::String ||
        (lane->string != "interactive" && lane->string != "batch"))
      failParse("member \"lane\" must be \"interactive\" or \"batch\"");
    req.lane = lane->string == "batch" ? Request::Lane::Batch : Request::Lane::Interactive;
  }
  return req;
}

std::string extractRequestId(const std::string& line) {
  try {
    const SpecValue doc = parseSpec(line);
    if (doc.isObject()) return idOf(doc);
  } catch (...) {
    // Fall through to the lexical scan below.
  }
  // The line is malformed JSON, but the client still deserves a correlatable
  // error: scan for a top-level-looking `"id": <string|number>` token pair.
  const std::size_t key = line.find("\"id\"");
  if (key == std::string::npos) return "";
  std::size_t pos = key + 4;
  while (pos < line.size() && (line[pos] == ' ' || line[pos] == '\t')) ++pos;
  if (pos >= line.size() || line[pos] != ':') return "";
  ++pos;
  while (pos < line.size() && (line[pos] == ' ' || line[pos] == '\t')) ++pos;
  if (pos >= line.size()) return "";
  if (line[pos] == '"') {
    const std::size_t end = line.find('"', pos + 1);
    if (end == std::string::npos) return "";
    return line.substr(pos + 1, end - pos - 1);
  }
  const std::size_t end = line.find_first_not_of("-+.0123456789eE", pos);
  return line.substr(pos, end == std::string::npos ? std::string::npos : end - pos);
}

}  // namespace mcx::serve
