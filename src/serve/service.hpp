// ExperimentService — the deadline-aware, load-shedding experiment engine
// behind the mcx_serve daemon (and the serve-trace bench, which drives it
// in-process).
//
// Robustness-first design:
//   - ADMISSION CONTROL: a bounded FIFO queue. A request arriving when the
//     queue is full is rejected immediately with a structured `overloaded`
//     error — submit() never blocks and in-flight work is never displaced.
//   - DEADLINES: every request's CancelToken is armed at admission, so time
//     spent queued and in synthesis counts against the budget. Workers poll
//     the token between Monte Carlo samples; a fired deadline yields a
//     `deadline_exceeded` response carrying the partial sample counts.
//   - COOPERATIVE CANCELLATION: shutdownNow() (and per-request cancel())
//     fire tokens; workers abort between samples, never mid-sample, so the
//     shared circuit cache and executor pool stay consistent.
//   - GRACEFUL DRAIN: drain() stops admission (new requests shed as
//     `overloaded`), finishes everything already admitted, and returns when
//     the service is idle — the SIGTERM path of the daemon.
//   - SHARED RESOURCES: one persistent ExecutorPool executes every
//     experiment's samples; circuit compilation goes through the global
//     CircuitCache, so concurrent requests that share a
//     CircuitSpec::canonical() key coalesce into one synthesis (the cache
//     compiles under its lock; late arrivals get the artifact for free —
//     hit/miss counters are surfaced per service).
//
// Responses are emitted as compact JSON lines through the sink, exactly one
// call per request. Calls to the shared default sink are serialized under
// the emission lock; a per-request sink is invoked without it (so one slow
// consumer cannot stall other connections' responses) and must be
// internally thread-safe when requestThreads > 1. Ordering follows
// completion, not submission — ids correlate.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "circuit/cache.hpp"
#include "mc/executor.hpp"
#include "serve/error.hpp"
#include "serve/request.hpp"
#include "util/json_writer.hpp"
#include "util/stopwatch.hpp"

namespace mcx::serve {

struct ServiceOptions {
  /// Admitted-but-not-started requests the service will hold before
  /// shedding load. (In-flight requests do not count against the depth.)
  std::size_t queueDepth = 64;
  /// Concurrent request executors. Each takes one request at a time and
  /// runs its samples on the shared pool.
  std::size_t requestThreads = 1;
  /// Parallelism of the shared sample pool (0 = hardware concurrency).
  std::size_t poolThreads = 0;
  /// Applied to requests that carry no deadline_ms (0 = no deadline).
  double defaultDeadlineMillis = 0;
  RequestLimits limits;

  // --- resource governance (all knobs default off: count-only admission,
  // --- no degradation — the PR 6 behaviour and bench invariants) ---------

  /// Cost-aware admission: summed cost units (samples x learned circuit
  /// area, see ServiceCounters) the queue will hold before shedding.
  /// 0 = count-only admission.
  std::uint64_t queueCostBudget = 0;
  /// Per-client token bucket: cost units refilled per second (0 = off) and
  /// the bucket's burst capacity (0 = same as one second of rate).
  double clientCostRate = 0;
  double clientCostBurst = 0;
  /// Overload mode: once the queue is at least this full (fraction of
  /// queueDepth), new batch-lane requests are shed before anything else.
  /// Interactive requests are unaffected until the queue is actually full.
  double batchShedFraction = 0.5;
  /// Trim a deadline-carrying request's sample count to what the learned
  /// per-sample rate says fits the remaining budget; the response is then
  /// labeled "degraded": true with the original requested_samples.
  bool degradeSamples = false;
  /// Flag requests stuck in flight past factor x p99 of serve.total (with
  /// a 100 ms floor while the histogram warms up). 0 = watchdog off.
  double watchdogFactor = 0;
};

/// Per-service counter snapshot. The underlying counters live in the
/// process-wide obs::Registry (under "serve.*" names); each service captures
/// a baseline at construction and reports deltas, so a fresh service always
/// counts from zero while `{"type":"stats"}` exposes the process totals.
struct ServiceCounters {
  std::uint64_t received = 0;           ///< submit() calls
  std::uint64_t accepted = 0;           ///< admitted to the queue
  std::uint64_t completedOk = 0;        ///< "status":"ok" responses
  std::uint64_t parseErrors = 0;        ///< `parse` responses
  std::uint64_t shedOverloaded = 0;     ///< `overloaded` rejections
  std::uint64_t deadlineExceeded = 0;   ///< `deadline_exceeded` responses
  std::uint64_t cancelled = 0;          ///< `cancelled` responses
  std::uint64_t internalErrors = 0;     ///< `internal` responses
  std::uint64_t queueHighWater = 0;     ///< max queued-at-once observed
  std::uint64_t samplesCompleted = 0;   ///< Monte Carlo samples actually run
  double busyMillis = 0;                ///< summed per-request execution time
  std::uint64_t statsRequests = 0;      ///< `{"type":"stats"}` requests served
  std::uint64_t healthRequests = 0;     ///< `{"type":"health"}` requests served
  std::uint64_t oversizedLines = 0;     ///< lines rejected by the byte limit
  std::uint64_t agedOut = 0;            ///< expired in queue, swept before work
  std::uint64_t clientShed = 0;         ///< shed by a client's token bucket
  std::uint64_t costShed = 0;           ///< shed by the queue cost budget
  std::uint64_t batchShed = 0;          ///< batch-lane requests shed in overload
  std::uint64_t degradedResponses = 0;  ///< ok responses with trimmed samples
  std::uint64_t watchdogFlags = 0;      ///< stuck-request flags raised
  /// Global CircuitCache deltas since this service was constructed: how
  /// often requests coalesced onto an already-compiled circuit, at both
  /// memo stages (circuit artifacts and synthesized covers).
  std::uint64_t circuitCacheHits = 0;
  std::uint64_t circuitCacheMisses = 0;
  std::uint64_t circuitCoverHits = 0;
  std::uint64_t circuitCoverMisses = 0;
  std::uint64_t synthesisRuns = 0;
};

class ExperimentService {
public:
  /// Receives one compact JSON line per response (no trailing newline).
  /// Default-sink calls are serialized under the emission lock; per-request
  /// sinks are called without it and serialize themselves.
  using Sink = std::function<void(const std::string& line)>;

  ExperimentService(ServiceOptions options, Sink sink);
  /// shutdownNow() semantics: fires every outstanding token, finishes, joins.
  ~ExperimentService();

  ExperimentService(const ExperimentService&) = delete;
  ExperimentService& operator=(const ExperimentService&) = delete;

  /// Parse, validate and admit one request line. Never blocks: the response
  /// (or the parse/overloaded error) is either emitted synchronously here
  /// or scheduled on a request thread. @p sink overrides the default sink
  /// for THIS request's response (the daemon's per-connection routing).
  /// @p client keys the per-client cost bucket (the daemon passes one key
  /// per connection; empty = the anonymous shared bucket).
  /// `{"type":"stats"}` and `{"type":"health"}` lines short-circuit: their
  /// snapshots are emitted synchronously, bypassing admission entirely —
  /// a saturated or draining daemon still answers its operators.
  void submit(const std::string& line, Sink sink = nullptr,
              const std::string& client = {});

  /// Stop admitting (subsequent submits shed as `overloaded`), finish every
  /// admitted request, return when idle. Idempotent; safe from any thread.
  void drain();

  /// drain(), but firing every outstanding request's CancelToken first:
  /// queued and running requests come back `cancelled` with partial counts.
  void shutdownNow();

  bool draining() const;

  ServiceCounters counters() const;
  void writeCountersJson(JsonWriter& json) const;
  std::string countersJson(bool pretty = false) const;

  /// Full telemetry snapshot: {"service": <countersJson>, "registry":
  /// {"counters":..,"gauges":..,"histograms":..}} — the payload of the
  /// `{"type":"stats"}` protocol request and the daemon's periodic
  /// --metrics-interval flush. Histograms report per-stage request latency
  /// quantiles (queue wait, synthesis, MC run, emit) in milliseconds.
  void writeStatsJson(JsonWriter& json) const;
  std::string statsJson(bool pretty = false) const;

  /// Liveness/degradation snapshot — the `{"type":"health"}` payload and
  /// the daemon's --health-file heartbeat body. status is "ok", "degraded"
  /// (overloaded queue or watchdog-flagged requests) or "draining"; the
  /// rest is the load picture (queue depth, in-flight, queued cost, cache
  /// bytes, RSS).
  void writeHealthJson(JsonWriter& json) const;
  std::string healthJson(bool pretty = false) const;

  const ServiceOptions& options() const { return options_; }
  ExecutorPool& pool() { return pool_; }

private:
  struct Pending {
    Request request;
    Sink sink;  ///< null = service default
    std::shared_ptr<CancelToken> token;
    Stopwatch admitted;             ///< queue + execution latency clock
    std::uint64_t admitNanos = 0;   ///< process-epoch admission time (tracing)
    std::uint64_t cost = 0;         ///< admission cost units (samples x area)
    bool flagged = false;           ///< watchdog: stuck past the p99 threshold
  };

  /// Per-client admission token bucket (cost units; refilled by wall time).
  struct ClientBucket {
    double tokens = 0;
    std::uint64_t lastRefillNanos = 0;
  };

  /// Registry values captured at construction; counters() reports deltas.
  struct CounterBaseline {
    std::uint64_t received = 0;
    std::uint64_t accepted = 0;
    std::uint64_t completedOk = 0;
    std::uint64_t parseErrors = 0;
    std::uint64_t shedOverloaded = 0;
    std::uint64_t deadlineExceeded = 0;
    std::uint64_t cancelled = 0;
    std::uint64_t internalErrors = 0;
    std::uint64_t samplesCompleted = 0;
    std::uint64_t busyMicros = 0;
    std::uint64_t statsRequests = 0;
    std::uint64_t healthRequests = 0;
    std::uint64_t oversizedLines = 0;
    std::uint64_t agedOut = 0;
    std::uint64_t clientShed = 0;
    std::uint64_t costShed = 0;
    std::uint64_t batchShed = 0;
    std::uint64_t degraded = 0;
    std::uint64_t watchdogFlags = 0;
  };

  void workerLoop();
  void watchdogLoop();
  void execute(Pending& pending);
  void emit(const Sink& sink, const std::string& line);
  void bumpForCode(ErrorCode code);
  /// Admission cost estimate: samples x learned realized area (rows x cols;
  /// kUnknownArea for circuits this service has not executed yet). Called
  /// and learned under mutex_.
  std::uint64_t costOfLocked(const Request& request) const;

  ServiceOptions options_;
  Sink defaultSink_;
  CircuitCache::Stats cacheBaseline_;
  CounterBaseline counterBase_;

  mutable std::mutex mutex_;
  std::condition_variable workReady_;  ///< queue became non-empty / stopping
  std::condition_variable idle_;       ///< queue empty and nothing in flight
  std::deque<std::shared_ptr<Pending>> queue_;
  std::vector<std::shared_ptr<Pending>> inFlight_;  ///< requests being executed
  std::uint64_t queueHighWater_ = 0;   ///< a max, not a sum: stays service-local
  std::uint64_t queuedCost_ = 0;       ///< summed cost of queued requests
  bool draining_ = false;
  bool stopping_ = false;

  /// Cost model state, learned per executed circuit (guarded by mutex_):
  /// canonical spec -> realized area, plus an EWMA of per-sample run time
  /// feeding the degradation trimmer.
  std::unordered_map<std::string, std::uint64_t> learnedArea_;
  double ewmaSampleMillis_ = 0;
  std::unordered_map<std::string, ClientBucket> clientBuckets_;

  std::mutex emitMutex_;  ///< serializes DEFAULT-sink calls (one line at a time)

  ExecutorPool pool_;
  std::vector<std::thread> workers_;
  std::thread watchdog_;               ///< only started when watchdogFactor > 0
  std::condition_variable watchdogCv_; ///< wakes the watchdog for shutdown
};

}  // namespace mcx::serve
