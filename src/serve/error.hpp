// Typed error taxonomy for the experiment service's request path.
//
// Every way a request can fail maps to exactly one machine-readable code,
// so clients can branch on `error.code` instead of scraping message text,
// and the daemon's counters can bucket failures without guessing:
//
//   parse              malformed JSON, unknown member, unresolvable
//                      circuit/mapper/scenario name, out-of-range knob
//   deadline_exceeded  the request's time budget ran out (admission
//                      included); partial sample counts are reported
//   cancelled          explicit cooperative cancellation (client drop,
//                      shutdownNow); partial sample counts are reported
//   overloaded         admission queue at capacity, or the service is
//                      draining — the request was rejected *immediately*,
//                      nothing was queued
//   internal           everything else (synthesis failure, allocation
//                      failure, engine invariant violation) — the request
//                      died but the daemon did not
#pragma once

#include <string>

#include "util/error.hpp"

namespace mcx::serve {

enum class ErrorCode { Parse, DeadlineExceeded, Cancelled, Overloaded, Internal };

/// The wire label of a code (`"parse"`, `"deadline_exceeded"`, ...).
const char* errorCodeLabel(ErrorCode code);

/// The typed throw on the request path; the responder turns it into a
/// structured `{"status":"error","error":{"code":...,"message":...}}`.
class ServeError : public Error {
public:
  ServeError(ErrorCode code, const std::string& what) : Error(what), code_(code) {}
  ErrorCode code() const { return code_; }

private:
  ErrorCode code_;
};

inline const char* errorCodeLabel(ErrorCode code) {
  switch (code) {
    case ErrorCode::Parse: return "parse";
    case ErrorCode::DeadlineExceeded: return "deadline_exceeded";
    case ErrorCode::Cancelled: return "cancelled";
    case ErrorCode::Overloaded: return "overloaded";
    case ErrorCode::Internal: return "internal";
  }
  return "internal";
}

}  // namespace mcx::serve
