// Analytic yield estimation for defect-tolerant row mapping.
//
// A closed-form companion to the Monte Carlo harness: with independent
// stuck-open probability q per crosspoint, an FM row with s required
// switches fits a random CM row with probability p = (1-q)^s. Treating row
// placements as a sequential greedy process over rows sorted by descending
// s (the hardest rows choose first from the largest pool):
//
//   P(success) ~= prod_i [ 1 - (1 - p_i)^(N - i) ]
//
// The approximation errs in both directions: it is optimistic when
// dense-row tails compete for the same healthy crossbar rows, and
// pessimistic on uniform-row instances where a real maximum matching
// rearranges placements globally (augmenting paths beat sequential greedy).
// the ablation-yield-model bench suite quantifies both regimes against the Monte
// Carlo ground truth; errors stay small enough for spare-row sizing.
#pragma once

#include "xbar/function_matrix.hpp"

namespace mcx {

struct YieldEstimate {
  double successProbability = 0.0;
  /// Expected number of FM rows with zero candidate CM rows.
  double expectedStrandedRows = 0.0;
};

/// Estimate mapping success probability at stuck-open rate @p q on a
/// crossbar with @p spareRows extra rows.
YieldEstimate estimateYield(const FunctionMatrix& fm, double q, std::size_t spareRows = 0);

/// Smallest spare-row count whose estimated yield reaches @p target
/// (searches 0..maxSpare; returns maxSpare+1 if unreachable).
std::size_t sparesForTargetYield(const FunctionMatrix& fm, double q, double target,
                                 std::size_t maxSpare = 64);

}  // namespace mcx
