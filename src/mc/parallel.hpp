// Deterministic chunked parallel for-each for the Monte Carlo engine.
//
// Work over [0, n) is handed out in contiguous chunks from an atomic cursor
// to a transient pool of worker threads. Every index runs exactly once and
// workers are identified by a dense id, so callers can keep per-worker
// scratch arenas. Determinism of the *results* is the caller's contract:
// per-sample state (RNG streams) must be pre-split so that any schedule
// produces the same outputs — see runDefectExperiment.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

#include "util/rng.hpp"

namespace mcx {

/// Resolve a thread-count knob: 0 = hardware concurrency (at least 1).
std::size_t resolveThreadCount(std::size_t requested);

/// One RNG stream per sample, split from the root in sample order — the
/// thread-count-invariance anchor of every Monte Carlo engine: workers only
/// ever consume their samples' streams, so any schedule draws identically.
std::vector<Rng> splitSampleStreams(std::uint64_t seed, std::size_t samples);

/// Invoke fn(worker, index) exactly once for every index in [0, n), using up
/// to @p threads threads (0 = hardware concurrency). `worker` is a dense id
/// in [0, resolved threads) for per-worker scratch. With one thread (or
/// n <= 1) everything runs inline on the calling thread as worker 0. The
/// first exception thrown by fn cancels the remaining chunks and is
/// rethrown on the calling thread.
void parallelForEach(std::size_t n, std::size_t threads,
                     const std::function<void(std::size_t worker, std::size_t index)>& fn);

}  // namespace mcx
