// Persistent worker pool for the Monte Carlo engines and the experiment
// service.
//
// parallelForEach used to spawn and join a transient thread pool on every
// call — fine for a one-shot bench, wrong for a long-running service where
// every request would pay thread start-up and the OS would see an unbounded
// churn of short-lived threads. ExecutorPool keeps the workers alive across
// experiments: construct it once (the service owns one; benches may own one
// per run), then run() any number of parallel-for jobs on it, concurrently
// from several threads.
//
// Contracts carried over from the transient pool:
//   - every index in [0, n) runs at most once, exactly once unless the job
//     is cancelled or a callback throws;
//   - callbacks receive a dense worker slot in [0, slots()) usable for
//     per-worker scratch arenas (the calling thread participates and owns
//     slot workerCount());
//   - the first exception thrown by a callback cancels the job's remaining
//     chunks and is rethrown on the run() caller;
//   - determinism of results is the caller's contract: per-index state (RNG
//     streams) must be pre-split so any schedule produces the same outputs.
//
// New contracts:
//   - run() takes an optional CancelToken; when it fires, workers stop
//     claiming chunks and run() returns false (cooperative abort — indices
//     already started complete normally);
//   - concurrent run() calls interleave on the same workers (each job has
//     its own scratch-slot space: slots are per job, not globally unique);
//   - destroying the pool with jobs in flight is safe: remaining chunks are
//     dropped, in-flight callbacks finish, blocked run() callers wake and
//     return false. Jobs keep their own completion state alive via
//     shared_ptr, so a run() racing the destructor never touches freed pool
//     state.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "mc/cancel.hpp"
#include "util/rng.hpp"

namespace mcx {

class ExecutorPool {
public:
  using Fn = std::function<void(std::size_t slot, std::size_t index)>;

  /// Total parallelism @p threads (0 = hardware concurrency): the pool
  /// spawns threads-1 persistent workers and the run() caller contributes
  /// the final lane.
  explicit ExecutorPool(std::size_t threads = 0);

  /// Drops unstarted chunks of in-flight jobs, lets running callbacks
  /// finish, wakes blocked run() callers (they return false), joins.
  ~ExecutorPool();

  ExecutorPool(const ExecutorPool&) = delete;
  ExecutorPool& operator=(const ExecutorPool&) = delete;

  /// Persistent background workers (total parallelism minus the caller).
  std::size_t workerCount() const { return workers_.size(); }
  /// Dense worker-slot space for per-worker scratch: workers occupy
  /// [0, workerCount()), the run() caller workerCount().
  std::size_t slots() const { return workers_.size() + 1; }

  /// Invoke fn(slot, index) for indices in [0, n), up to once each, on the
  /// pool workers plus the calling thread. Blocks until the job completes
  /// or is abandoned. Returns true when every index ran; false when @p
  /// token fired or the pool was destroyed mid-job. Rethrows the first
  /// callback exception. Safe to call from multiple threads concurrently.
  bool run(std::size_t n, const Fn& fn, const CancelToken* token = nullptr);

private:
  struct Job;

  void workerLoop(std::size_t slot);
  /// Claim and execute chunks of @p job until it is exhausted, cancelled,
  /// or the pool is stopping. Returns with the job's bookkeeping updated.
  void runChunks(std::size_t slot, const std::shared_ptr<Job>& job);

  // Pool state, guarded by mutex_. Job completion state lives in the Job
  // (shared_ptr), never here: a run() caller blocked on its job must stay
  // safe even if the pool is destroyed under it.
  std::mutex mutex_;
  std::condition_variable workReady_;    ///< workers: a job was queued / stop
  std::condition_variable callersIdle_;  ///< destructor: external callers left
  std::deque<std::shared_ptr<Job>> jobs_;
  std::size_t activeCallers_ = 0;  ///< run() callers currently inside pool code
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

/// Resolve a thread-count knob: 0 = hardware concurrency (at least 1).
std::size_t resolveThreadCount(std::size_t requested);

/// One RNG stream per sample, split from the root in sample order — the
/// thread-count-invariance anchor of every Monte Carlo engine: workers only
/// ever consume their samples' streams, so any schedule draws identically.
std::vector<Rng> splitSampleStreams(std::uint64_t seed, std::size_t samples);

/// One-shot convenience over a transient ExecutorPool (the historical
/// parallelForEach contract: no cancellation, throws on callback error).
void parallelForEach(std::size_t n, std::size_t threads,
                     const std::function<void(std::size_t worker, std::size_t index)>& fn);

}  // namespace mcx
