#include "mc/parallel.hpp"

#include <algorithm>
#include <atomic>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

namespace mcx {

std::size_t resolveThreadCount(std::size_t requested) {
  if (requested != 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

std::vector<Rng> splitSampleStreams(std::uint64_t seed, std::size_t samples) {
  Rng root(seed);
  std::vector<Rng> streams;
  streams.reserve(samples);
  for (std::size_t s = 0; s < samples; ++s) streams.push_back(root.split());
  return streams;
}

void parallelForEach(std::size_t n, std::size_t threads,
                     const std::function<void(std::size_t, std::size_t)>& fn) {
  threads = std::min(resolveThreadCount(threads), std::max<std::size_t>(n, 1));
  if (threads <= 1) {
    for (std::size_t i = 0; i < n; ++i) fn(0, i);
    return;
  }

  // Small chunks balance load across samples of very different cost (a
  // near-infeasible defect draw can take orders of magnitude longer).
  const std::size_t chunk = std::max<std::size_t>(1, n / (threads * 8));
  std::atomic<std::size_t> cursor{0};
  std::exception_ptr error;
  std::mutex errorMutex;

  const auto work = [&](std::size_t worker) {
    try {
      for (;;) {
        const std::size_t begin = cursor.fetch_add(chunk, std::memory_order_relaxed);
        if (begin >= n) return;
        const std::size_t end = std::min(n, begin + chunk);
        for (std::size_t i = begin; i < end; ++i) fn(worker, i);
      }
    } catch (...) {
      const std::lock_guard<std::mutex> lock(errorMutex);
      if (!error) error = std::current_exception();
      cursor.store(n, std::memory_order_relaxed);  // cancel remaining chunks
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(threads - 1);
  for (std::size_t w = 1; w < threads; ++w) pool.emplace_back(work, w);
  work(0);
  for (std::thread& t : pool) t.join();
  if (error) std::rethrow_exception(error);
}

}  // namespace mcx
