#include "mc/defect_experiment.hpp"

#include "mc/parallel.hpp"
#include "util/error.hpp"
#include "util/stopwatch.hpp"

namespace mcx {

namespace {

/// The configured scenario, or the legacy rate-pair model when unset.
std::shared_ptr<const DefectModel> resolveModel(const DefectExperimentConfig& config) {
  if (config.model) return config.model;
  return std::make_shared<IidBernoulli>(config.stuckOpenRate, config.stuckClosedRate);
}

}  // namespace

void forEachDefectSample(const FunctionMatrix& fm, const DefectExperimentConfig& config,
                         const std::function<void(std::size_t, const DefectMap&,
                                                  const BitMatrix&)>& fn) {
  const std::shared_ptr<const DefectModel> model = resolveModel(config);
  const std::vector<Rng> streams = splitSampleStreams(config.seed, config.samples);
  const std::size_t rows = fm.rows() + config.spareRows;
  DefectMap defects;
  BitMatrix cm;
  for (std::size_t s = 0; s < config.samples; ++s) {
    Rng sampleRng = streams[s];
    model->generate(rows, fm.cols(), sampleRng, defects);
    crossbarMatrixInto(defects, cm);
    fn(s, defects, cm);
  }
}

DefectExperimentResult runDefectExperiment(const FunctionMatrix& fm, const IMapper& mapper,
                                           const DefectExperimentConfig& config) {
  DefectExperimentResult result;
  result.samples = config.samples;

  const std::shared_ptr<const DefectModel> model = resolveModel(config);
  const std::vector<Rng> streams = splitSampleStreams(config.seed, config.samples);
  const std::size_t rows = fm.rows() + config.spareRows;
  const std::size_t threads = resolveThreadCount(config.threads);

  struct PerSample {
    bool success = false;
    std::size_t backtracks = 0;
    double millis = 0;
  };
  std::vector<PerSample> outcomes(config.samples);
  if (config.keepMappings) result.mappings.resize(config.samples);

  // Per-worker scratch arenas: the DefectMap, dirty-row report, crossbar
  // BitMatrix, and mapping-context buffers are reused across every sample a
  // worker processes. The context turns each sample's dirty rows into an
  // incremental candidate-adjacency rebuild (bit-identical to the full
  // one), so results stay independent of the thread count and of whether a
  // mapper takes the context path at all.
  struct Scratch {
    DefectMap defects;
    DirtyRows dirty;
    BitMatrix cm;
    MappingContext ctx;
  };
  std::vector<Scratch> scratch(threads);

  Stopwatch wall;
  parallelForEach(config.samples, threads, [&](std::size_t worker, std::size_t s) {
    Scratch& sc = scratch[worker];
    Rng sampleRng = streams[s];
    model->generateTracked(rows, fm.cols(), sampleRng, sc.defects, sc.dirty);
    crossbarMatrixInto(sc.defects, sc.cm);
    sc.ctx.setSample(&sc.defects, &sc.dirty);

    double sec = 0;
    MappingResult mapping;
    if (config.timePerSample) {
      Stopwatch watch;
      mapping = mapper.map(fm, sc.cm, sc.ctx);
      sec = watch.seconds();
    } else {
      mapping = mapper.map(fm, sc.cm, sc.ctx);
    }

    if (mapping.success && config.verify)
      MCX_REQUIRE(verifyMapping(fm, sc.cm, mapping),
                  "runDefectExperiment: mapper returned an invalid mapping");

    PerSample& out = outcomes[s];
    out.success = mapping.success;
    out.backtracks = mapping.backtracks;
    out.millis = sec * 1e3;
    if (config.keepMappings) result.mappings[s] = std::move(mapping);
  });
  const double wallSeconds = wall.seconds();

  // Merge per-sample outcomes deterministically, in sample order.
  for (std::size_t s = 0; s < config.samples; ++s) {
    const PerSample& out = outcomes[s];
    if (out.success) ++result.successes;
    result.totalBacktracks += out.backtracks;
  }
  if (config.timePerSample) {
    // totalSeconds = summed mapper time (the paper's "Time" column).
    std::vector<double> millis(config.samples);
    for (std::size_t s = 0; s < config.samples; ++s) {
      millis[s] = outcomes[s].millis;
      result.totalSeconds += outcomes[s].millis / 1e3;
    }
    result.perSampleMillis = summarize(millis);
  } else {
    result.totalSeconds = wallSeconds;
  }
  return result;
}

}  // namespace mcx
