#include "mc/defect_experiment.hpp"

#include "util/error.hpp"
#include "util/stopwatch.hpp"

namespace mcx {

void forEachDefectSample(const FunctionMatrix& fm, const DefectExperimentConfig& config,
                         const std::function<void(std::size_t, const DefectMap&,
                                                  const BitMatrix&)>& fn) {
  Rng rng(config.seed);
  const std::size_t rows = fm.rows() + config.spareRows;
  for (std::size_t s = 0; s < config.samples; ++s) {
    Rng sampleRng = rng.split();
    const DefectMap defects =
        DefectMap::sample(rows, fm.cols(), config.stuckOpenRate, config.stuckClosedRate,
                          sampleRng);
    const BitMatrix cm = crossbarMatrix(defects);
    fn(s, defects, cm);
  }
}

DefectExperimentResult runDefectExperiment(const FunctionMatrix& fm, const IMapper& mapper,
                                           const DefectExperimentConfig& config) {
  DefectExperimentResult result;
  result.samples = config.samples;
  std::vector<double> millis;
  millis.reserve(config.samples);

  forEachDefectSample(fm, config, [&](std::size_t, const DefectMap&, const BitMatrix& cm) {
    Stopwatch watch;
    const MappingResult mapping = mapper.map(fm, cm);
    const double sec = watch.seconds();
    result.totalSeconds += sec;
    millis.push_back(sec * 1e3);
    result.totalBacktracks += mapping.backtracks;
    if (mapping.success) {
      if (config.verify)
        MCX_REQUIRE(verifyMapping(fm, cm, mapping),
                    "runDefectExperiment: mapper returned an invalid mapping");
      ++result.successes;
    }
  });
  result.perSampleMillis = summarize(millis);
  return result;
}

}  // namespace mcx
