#include "mc/defect_experiment.hpp"

#include <optional>

#include "mc/executor.hpp"
#include "obs/trace.hpp"
#include "util/error.hpp"
#include "util/faultinject.hpp"
#include "util/stopwatch.hpp"

namespace mcx {

namespace {

/// The configured scenario, or the legacy rate-pair model when unset.
std::shared_ptr<const DefectModel> resolveModel(const DefectExperimentConfig& config) {
  if (config.model) return config.model;
  return std::make_shared<IidBernoulli>(config.stuckOpenRate, config.stuckClosedRate);
}

}  // namespace

void forEachDefectSample(const FunctionMatrix& fm, const DefectExperimentConfig& config,
                         const std::function<void(std::size_t, const DefectMap&,
                                                  const BitMatrix&)>& fn) {
  const std::shared_ptr<const DefectModel> model = resolveModel(config);
  const std::vector<Rng> streams = splitSampleStreams(config.seed, config.samples);
  const std::size_t rows = fm.rows() + config.spareRows;
  DefectMap defects;
  BitMatrix cm;
  for (std::size_t s = 0; s < config.samples; ++s) {
    Rng sampleRng = streams[s];
    model->generate(rows, fm.cols(), sampleRng, defects);
    crossbarMatrixInto(defects, cm);
    fn(s, defects, cm);
  }
}

DefectExperimentResult runDefectExperiment(const FunctionMatrix& fm, const IMapper& mapper,
                                           const DefectExperimentConfig& config) {
  DefectExperimentResult result;
  result.samples = config.samples;

  const std::shared_ptr<const DefectModel> model = resolveModel(config);
  // The RNG pre-split happens up front, unconditionally: an aborted run
  // consumes no stream a rerun would need, so cancel-then-rerun reproduces
  // the full run bit-identically (the regression surface of the committed
  // bench counts).
  const std::vector<Rng> streams = splitSampleStreams(config.seed, config.samples);
  const std::size_t rows = fm.rows() + config.spareRows;

  // Run on the caller's persistent pool when provided (the service shares
  // one across requests); otherwise on a transient pool sized by the
  // historical threads knob, capped at one lane per sample.
  std::optional<ExecutorPool> localPool;
  ExecutorPool* pool = config.pool;
  if (pool == nullptr) {
    localPool.emplace(std::min(resolveThreadCount(config.threads),
                               std::max<std::size_t>(config.samples, 1)));
    pool = &*localPool;
  }
  const CancelToken* token = config.cancel.get();

  struct PerSample {
    bool done = false;  ///< sample actually ran (false after an abort)
    bool success = false;
    bool accepted = false;  ///< realized error within config.epsilon
    std::size_t backtracks = 0;
    double millis = 0;
    double error = 0;  ///< realizedErrorOrBinary() of the sample's mapping
  };
  std::vector<PerSample> outcomes(config.samples);
  if (config.keepMappings) result.mappings.resize(config.samples);

  // Per-worker scratch arenas: the DefectMap, dirty-row report, crossbar
  // BitMatrix, and mapping-context buffers are reused across every sample a
  // worker processes. The context turns each sample's dirty rows into an
  // incremental candidate-adjacency rebuild (bit-identical to the full
  // one), so results stay independent of the thread count and of whether a
  // mapper takes the context path at all.
  struct Scratch {
    DefectMap defects;
    DirtyRows dirty;
    BitMatrix cm;
    MappingContext ctx;
  };
  std::vector<Scratch> scratch(pool->slots());

  Stopwatch wall;
  obs::Span mcSpan("mc_experiment");
  pool->run(config.samples, [&](std::size_t worker, std::size_t s) {
    // Cooperative abort: a fired token skips the sample entirely (its
    // outcome stays !done); samples already past this check finish
    // normally, so scratch arenas and results are never left mid-sample.
    if (token != nullptr && token->stopRequested()) return;
    faultinject::onSite("mc.sample");

    Scratch& sc = scratch[worker];
    Rng sampleRng = streams[s];
    model->generateTracked(rows, fm.cols(), sampleRng, sc.defects, sc.dirty);
    crossbarMatrixInto(sc.defects, sc.cm);
    sc.ctx.setSample(&sc.defects, &sc.dirty);
    sc.ctx.setExecution(token, pool);

    double sec = 0;
    MappingResult mapping;
    if (config.timePerSample) {
      Stopwatch watch;
      mapping = mapper.map(fm, sc.cm, sc.ctx);
      sec = watch.seconds();
    } else {
      mapping = mapper.map(fm, sc.cm, sc.ctx);
    }

    // A mapper interrupted mid-solve reached no verdict: leave the sample
    // unrecorded (!done), exactly like the pre-sample token check above —
    // an aborted run's recorded samples are a subset of an uninterrupted
    // rerun's, outcome-identical sample by sample (streams are pre-split).
    if (mapping.aborted) return;

    if (mapping.success && config.verify)
      MCX_REQUIRE(verifyMapping(fm, sc.cm, mapping),
                  "runDefectExperiment: mapper returned an invalid mapping");
    // Graded partial mappings carry a physical claim too (the retained rows
    // really fit their CM rows); check it under the same verify knob.
    if (!mapping.success && !mapping.droppedRows.empty() && config.verify)
      MCX_REQUIRE(verifyPartialMapping(fm, sc.cm, mapping),
                  "runDefectExperiment: mapper returned an invalid partial mapping");

    PerSample& out = outcomes[s];
    out.done = true;
    out.success = mapping.success;
    out.error = mapping.realizedErrorOrBinary();
    out.accepted = out.error <= config.epsilon;
    out.backtracks = mapping.backtracks;
    out.millis = sec * 1e3;
    if (config.keepMappings) result.mappings[s] = std::move(mapping);
  }, token);
  mcSpan.finish();
  const double wallSeconds = wall.seconds();

  // Merge per-sample outcomes deterministically, in sample order; skipped
  // samples of an aborted run contribute nothing.
  for (std::size_t s = 0; s < config.samples; ++s) {
    const PerSample& out = outcomes[s];
    if (!out.done) continue;
    ++result.completed;
    if (out.success) ++result.successes;
    if (out.accepted) {
      ++result.epsilonAccepted;
      if (!out.success) ++result.rescued;
    }
    result.totalRealizedError += out.error;
    result.totalBacktracks += out.backtracks;
  }

  // Engine throughput telemetry: once per experiment, off the sample path.
  {
    static obs::Counter& experiments = obs::Registry::global().counter("mc.experiments");
    static obs::Counter& samplesRun = obs::Registry::global().counter("mc.samples");
    static obs::Gauge& samplesPerSec =
        obs::Registry::global().gauge("mc.samples_per_sec");
    experiments.add(1);
    samplesRun.add(result.completed);
    if (wallSeconds > 0)
      samplesPerSec.set(
          static_cast<std::int64_t>(static_cast<double>(result.completed) / wallSeconds));
  }

  // Label the abort only when the token actually cut the run short. The
  // completed count is the ground truth: a deadline that expires between
  // the last sample finishing and this check did not abort anything, and
  // the full result must not be reported as an error.
  if (token != nullptr && result.completed < config.samples) {
    const CancelToken::StopReason reason = token->reason();
    if (reason != CancelToken::StopReason::None) {
      result.aborted = true;
      result.abortReason = CancelToken::reasonLabel(reason);
    }
  }
  if (config.timePerSample) {
    // totalSeconds = summed mapper time (the paper's "Time" column).
    std::vector<double> millis;
    millis.reserve(result.completed);
    for (std::size_t s = 0; s < config.samples; ++s) {
      if (!outcomes[s].done) continue;
      millis.push_back(outcomes[s].millis);
      result.totalSeconds += outcomes[s].millis / 1e3;
    }
    result.perSampleMillis = summarize(millis);
  } else {
    result.totalSeconds = wallSeconds;
  }
  return result;
}

}  // namespace mcx
