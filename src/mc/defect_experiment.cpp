#include "mc/defect_experiment.hpp"

#include "mc/parallel.hpp"
#include "util/error.hpp"
#include "util/stopwatch.hpp"

namespace mcx {

namespace {

/// The configured scenario, or the legacy rate-pair model when unset.
std::shared_ptr<const DefectModel> resolveModel(const DefectExperimentConfig& config) {
  if (config.model) return config.model;
  return std::make_shared<IidBernoulli>(config.stuckOpenRate, config.stuckClosedRate);
}

}  // namespace

void forEachDefectSample(const FunctionMatrix& fm, const DefectExperimentConfig& config,
                         const std::function<void(std::size_t, const DefectMap&,
                                                  const BitMatrix&)>& fn) {
  const std::shared_ptr<const DefectModel> model = resolveModel(config);
  const std::vector<Rng> streams = splitSampleStreams(config.seed, config.samples);
  const std::size_t rows = fm.rows() + config.spareRows;
  DefectMap defects;
  BitMatrix cm;
  for (std::size_t s = 0; s < config.samples; ++s) {
    Rng sampleRng = streams[s];
    model->generate(rows, fm.cols(), sampleRng, defects);
    crossbarMatrixInto(defects, cm);
    fn(s, defects, cm);
  }
}

DefectExperimentResult runDefectExperiment(const FunctionMatrix& fm, const IMapper& mapper,
                                           const DefectExperimentConfig& config) {
  DefectExperimentResult result;
  result.samples = config.samples;

  const std::shared_ptr<const DefectModel> model = resolveModel(config);
  const std::vector<Rng> streams = splitSampleStreams(config.seed, config.samples);
  const std::size_t rows = fm.rows() + config.spareRows;
  const std::size_t threads = resolveThreadCount(config.threads);

  struct PerSample {
    bool success = false;
    std::size_t backtracks = 0;
    double millis = 0;
  };
  std::vector<PerSample> outcomes(config.samples);
  if (config.keepMappings) result.mappings.resize(config.samples);

  // Per-worker scratch arenas: the DefectMap and crossbar BitMatrix buffers
  // are reused across every sample a worker processes.
  struct Scratch {
    DefectMap defects;
    BitMatrix cm;
  };
  std::vector<Scratch> scratch(threads);

  parallelForEach(config.samples, threads, [&](std::size_t worker, std::size_t s) {
    Scratch& sc = scratch[worker];
    Rng sampleRng = streams[s];
    model->generate(rows, fm.cols(), sampleRng, sc.defects);
    crossbarMatrixInto(sc.defects, sc.cm);

    Stopwatch watch;
    MappingResult mapping = mapper.map(fm, sc.cm);
    const double sec = watch.seconds();

    if (mapping.success && config.verify)
      MCX_REQUIRE(verifyMapping(fm, sc.cm, mapping),
                  "runDefectExperiment: mapper returned an invalid mapping");

    PerSample& out = outcomes[s];
    out.success = mapping.success;
    out.backtracks = mapping.backtracks;
    out.millis = sec * 1e3;
    if (config.keepMappings) result.mappings[s] = std::move(mapping);
  });

  // Merge per-sample outcomes deterministically, in sample order.
  std::vector<double> millis(config.samples);
  for (std::size_t s = 0; s < config.samples; ++s) {
    const PerSample& out = outcomes[s];
    if (out.success) ++result.successes;
    result.totalBacktracks += out.backtracks;
    result.totalSeconds += out.millis / 1e3;
    millis[s] = out.millis;
  }
  result.perSampleMillis = summarize(millis);
  return result;
}

}  // namespace mcx
