// Cooperative cancellation for long-running experiments.
//
// A CancelToken is an atomic stop flag plus an optional monotonic deadline,
// shared between the party that wants work stopped (a service handling
// SIGTERM, an admission controller shedding load, a client disconnect) and
// the workers doing it. Workers poll stopRequested() between samples and
// abort with partial, well-labeled results — cancellation is cooperative,
// never preemptive, so shared state (caches, scratch arenas, counters) is
// always left consistent.
//
// Thread-safe: any thread may cancel() / setDeadline*, any number of
// threads may poll. Polling is two relaxed atomic loads plus (when a
// deadline is armed) one steady_clock read — cheap against the cost of a
// Monte Carlo sample.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <limits>
#include <memory>

namespace mcx {

class CancelToken {
public:
  using Clock = std::chrono::steady_clock;

  /// Why a token is requesting stop. Cancelled wins over DeadlineExceeded
  /// when both hold (an explicit cancel is the stronger, intentional
  /// signal).
  enum class StopReason { None, Cancelled, DeadlineExceeded };

  CancelToken() = default;
  CancelToken(const CancelToken&) = delete;
  CancelToken& operator=(const CancelToken&) = delete;

  /// Request stop. Idempotent; visible to every poller.
  void cancel() { cancelled_.store(true, std::memory_order_relaxed); }

  /// Arm (or move) the deadline. Workers observing Clock::now() past the
  /// deadline treat the token as stopped with reason DeadlineExceeded.
  void setDeadline(Clock::time_point deadline) {
    deadlineTicks_.store(deadline.time_since_epoch().count(), std::memory_order_relaxed);
  }
  void setDeadlineAfter(std::chrono::nanoseconds budget) {
    setDeadline(Clock::now() + std::chrono::duration_cast<Clock::duration>(budget));
  }
  /// Convenience for the service's millisecond-denominated request budgets.
  /// `ms` can be client-controlled (a request's deadline_ms), so the
  /// nanosecond conversion saturates instead of overflowing: a non-positive
  /// or NaN budget expires immediately, and anything past ~28 years clamps
  /// there — indistinguishable from "no deadline" for a real request, and
  /// far enough below int64 max that now() + budget cannot wrap either.
  void setDeadlineAfterMillis(double ms) {
    constexpr double kMaxNanos = 9.0e17;  // ~28.5 years
    double ns = ms * 1e6;
    if (!(ns >= 0)) ns = 0;  // negative or NaN: already expired
    if (ns > kMaxNanos) ns = kMaxNanos;
    setDeadlineAfter(std::chrono::nanoseconds(static_cast<std::int64_t>(ns)));
  }

  bool hasDeadline() const {
    return deadlineTicks_.load(std::memory_order_relaxed) != kNoDeadline;
  }
  /// Milliseconds until the armed deadline — negative once past, +infinity
  /// when no deadline is armed. The degradation path sizes trimmed sample
  /// counts against this remaining budget.
  double remainingMillis() const {
    const auto ticks = deadlineTicks_.load(std::memory_order_relaxed);
    if (ticks == kNoDeadline) return std::numeric_limits<double>::infinity();
    return static_cast<double>(ticks - Clock::now().time_since_epoch().count()) / 1e6;
  }
  bool cancelled() const { return cancelled_.load(std::memory_order_relaxed); }
  bool expired() const {
    const auto ticks = deadlineTicks_.load(std::memory_order_relaxed);
    return ticks != kNoDeadline && Clock::now().time_since_epoch().count() >= ticks;
  }

  /// The per-sample poll: explicit cancel or deadline passed.
  bool stopRequested() const { return cancelled() || expired(); }

  StopReason reason() const {
    if (cancelled()) return StopReason::Cancelled;
    if (expired()) return StopReason::DeadlineExceeded;
    return StopReason::None;
  }

  /// Taxonomy label for the reason ("", "cancelled", "deadline_exceeded") —
  /// matches the service's structured error codes.
  static const char* reasonLabel(StopReason reason) {
    switch (reason) {
      case StopReason::Cancelled: return "cancelled";
      case StopReason::DeadlineExceeded: return "deadline_exceeded";
      case StopReason::None: break;
    }
    return "";
  }

private:
  static constexpr Clock::time_point::rep kNoDeadline = Clock::time_point::max().time_since_epoch().count();

  std::atomic<bool> cancelled_{false};
  std::atomic<Clock::time_point::rep> deadlineTicks_{kNoDeadline};
};

using CancelTokenPtr = std::shared_ptr<CancelToken>;

}  // namespace mcx
