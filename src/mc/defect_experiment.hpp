// Monte Carlo defect-tolerant mapping experiments (Section V of the paper).
//
// For each sample a fresh defect map is drawn from the configured
// DefectModel (default: the paper's independent uniform per-crosspoint
// rates), the crossbar matrix is derived, and the mapper under test runs on
// an optimum-size (or redundant) crossbar. Success rate and runtime are
// accumulated — the quantities of Table II.
//
// The engine is parallel and deterministic: the root RNG is pre-split into
// one stream per sample (in sample order), samples are distributed over a
// worker pool with per-worker scratch arenas, and the per-sample outcomes
// are merged back in sample order. Defect maps, success counts, and row
// assignments are therefore bit-identical at any thread count.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "map/matching.hpp"
#include "mc/cancel.hpp"
#include "mc/stats.hpp"
#include "scenario/defect_model.hpp"
#include "xbar/defects.hpp"
#include "xbar/function_matrix.hpp"

namespace mcx {

class ExecutorPool;

struct DefectExperimentConfig {
  std::size_t samples = 200;       ///< the paper's sample size
  double stuckOpenRate = 0.10;     ///< the paper's Table II rate
  double stuckClosedRate = 0.0;    ///< paper: only stuck-open on optimum size
  std::size_t spareRows = 0;       ///< redundancy extension (A1)
  /// Defect-pattern generator (the scenario subsystem). Null keeps the
  /// legacy rate-pair behaviour — an IidBernoulli at stuckOpenRate /
  /// stuckClosedRate, draw-for-draw identical to the pre-scenario engine.
  std::shared_ptr<const DefectModel> model;
  std::uint64_t seed = 1;
  /// Worker threads; 0 = hardware concurrency. Results do not depend on
  /// this knob (per-sample RNG streams are pre-split in sample order).
  std::size_t threads = 0;
  /// Verify each claimed success against the matching rules (cheap; on by
  /// default so experiments cannot silently report invalid mappings).
  /// Graded partial mappings (droppedRows set) are checked with
  /// verifyPartialMapping under the same knob.
  bool verify = true;
  /// Graded acceptance budget (functional yield(ε)): a sample counts as
  /// epsilon-accepted iff its realized error — the mapper's explicit
  /// realizedError when measured, else the binary verdict — is <= epsilon.
  /// 0 (the default) is the classical pass/fail criterion: with exact
  /// mappers epsilonAccepted is then structurally identical to successes.
  double epsilon = 0.0;
  /// Time every individual mapper call: fills perSampleMillis and makes
  /// totalSeconds the sum of mapping times (the paper's "Time" column)
  /// instead of the run's wall clock. Off by default so sweep-style callers
  /// don't pay two clock reads per sample; totalSeconds then holds the
  /// whole run's wall clock (sampling + mapping + verification).
  bool timePerSample = false;
  /// Keep each sample's MappingResult in DefectExperimentResult::mappings
  /// (sample order). Off by default to keep large sweeps lean.
  bool keepMappings = false;
  /// Cooperative cancellation: checked between samples. When the token
  /// fires (explicit cancel() or deadline), remaining samples are skipped
  /// and the result is labeled aborted with the partial counts — shared
  /// state is never left mid-sample. Null = run to completion.
  std::shared_ptr<CancelToken> cancel;
  /// Caller-owned persistent worker pool (the experiment service shares one
  /// across requests). Null = a transient pool of `threads` workers, the
  /// historical per-call behaviour. The pool's parallelism overrides the
  /// `threads` knob; results depend on neither (pre-split RNG streams).
  ExecutorPool* pool = nullptr;
};

struct DefectExperimentResult {
  std::size_t samples = 0;    ///< requested sample count
  /// Samples actually mapped: == samples unless the run was aborted by a
  /// CancelToken, in which case the statistics below cover exactly these.
  std::size_t completed = 0;
  std::size_t successes = 0;
  /// Samples whose realized error is within config.epsilon — the graded
  /// success count behind functional yield(ε). Always >= successes (an
  /// exact success has realized error 0).
  std::size_t epsilonAccepted = 0;
  /// Epsilon-accepted samples that were NOT exact successes: dead samples
  /// rescued by an approximate mapper's partial realization.
  std::size_t rescued = 0;
  /// Sum of realized error over completed samples (exact fractions for
  /// error-aware mappers, 0/1 binary verdicts otherwise).
  double totalRealizedError = 0;
  /// With config.timePerSample: summed mapper time over all samples.
  /// Without: wall-clock of the whole run (sampling + mapping + verify).
  double totalSeconds = 0;
  std::size_t totalBacktracks = 0;
  /// Populated only with config.timePerSample.
  SummaryStats perSampleMillis;
  /// Per-sample mapper outputs, in sample order (only when keepMappings).
  /// In an aborted run, skipped samples hold default (failed) entries.
  std::vector<MappingResult> mappings;
  /// The run stopped early via config.cancel; the partial statistics are
  /// well-labeled ("cancelled" or "deadline_exceeded" in abortReason).
  bool aborted = false;
  std::string abortReason;

  /// Success rate over the samples that actually ran (identical to the
  /// historical samples-denominator for completed runs).
  double successRate() const {
    const std::size_t denom = completed != 0 ? completed : samples;
    return denom == 0 ? 0.0 : static_cast<double>(successes) / static_cast<double>(denom);
  }
  /// Mean per-sample time in seconds: the paper's "Time" column when
  /// config.timePerSample is set, mean wall time per sample otherwise.
  double meanSeconds() const {
    const std::size_t denom = completed != 0 ? completed : samples;
    return denom == 0 ? 0.0 : totalSeconds / static_cast<double>(denom);
  }
  /// Graded success rate: fraction of ran samples within the error budget.
  /// Equals successRate() at epsilon = 0 with exact mappers.
  double functionalYield() const {
    const std::size_t denom = completed != 0 ? completed : samples;
    return denom == 0 ? 0.0
                      : static_cast<double>(epsilonAccepted) / static_cast<double>(denom);
  }
  /// Mean realized error over the samples that ran.
  double meanRealizedError() const {
    const std::size_t denom = completed != 0 ? completed : samples;
    return denom == 0 ? 0.0 : totalRealizedError / static_cast<double>(denom);
  }
};

/// Run the Monte Carlo sweep. The mapper's map() must be safe to call
/// concurrently from several threads (all library mappers are stateless).
DefectExperimentResult runDefectExperiment(const FunctionMatrix& fm,
                                           const IMapper& mapper,
                                           const DefectExperimentConfig& config);

/// Per-sample callback variant (used by the yield/redundancy benches to run
/// several mappers on identical defect draws). Callbacks run sequentially on
/// the calling thread, in sample order; the defect draws are the same
/// streams runDefectExperiment would use. The DefectMap/BitMatrix references
/// point into reused scratch buffers — copy them to retain a sample.
void forEachDefectSample(const FunctionMatrix& fm, const DefectExperimentConfig& config,
                         const std::function<void(std::size_t, const DefectMap&,
                                                  const BitMatrix&)>& fn);

}  // namespace mcx
