// Monte Carlo defect-tolerant mapping experiments (Section V of the paper).
//
// For each sample a fresh defect map is drawn (independent uniform
// per-crosspoint rates), the crossbar matrix is derived, and the mapper
// under test runs on an optimum-size (or redundant) crossbar. Success rate
// and runtime are accumulated — the quantities of Table II.
#pragma once

#include <cstdint>
#include <functional>

#include "map/matching.hpp"
#include "mc/stats.hpp"
#include "xbar/defects.hpp"
#include "xbar/function_matrix.hpp"

namespace mcx {

struct DefectExperimentConfig {
  std::size_t samples = 200;       ///< the paper's sample size
  double stuckOpenRate = 0.10;     ///< the paper's Table II rate
  double stuckClosedRate = 0.0;    ///< paper: only stuck-open on optimum size
  std::size_t spareRows = 0;       ///< redundancy extension (A1)
  std::uint64_t seed = 1;
  /// Verify each claimed success against the matching rules (cheap; on by
  /// default so experiments cannot silently report invalid mappings).
  bool verify = true;
};

struct DefectExperimentResult {
  std::size_t samples = 0;
  std::size_t successes = 0;
  double totalSeconds = 0;
  std::size_t totalBacktracks = 0;
  SummaryStats perSampleMillis;

  double successRate() const {
    return samples == 0 ? 0.0 : static_cast<double>(successes) / static_cast<double>(samples);
  }
  /// Mean mapping time over all samples, in seconds (the paper's "Time").
  double meanSeconds() const {
    return samples == 0 ? 0.0 : totalSeconds / static_cast<double>(samples);
  }
};

DefectExperimentResult runDefectExperiment(const FunctionMatrix& fm,
                                           const IMapper& mapper,
                                           const DefectExperimentConfig& config);

/// Per-sample callback variant (used by the yield/redundancy benches to run
/// several mappers on identical defect draws).
void forEachDefectSample(const FunctionMatrix& fm, const DefectExperimentConfig& config,
                         const std::function<void(std::size_t, const DefectMap&,
                                                  const BitMatrix&)>& fn);

}  // namespace mcx
