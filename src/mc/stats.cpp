#include "mc/stats.hpp"

#include <algorithm>
#include <cmath>

namespace mcx {

SummaryStats summarize(const std::vector<double>& values) {
  SummaryStats s;
  s.count = values.size();
  if (values.empty()) return s;
  s.min = *std::min_element(values.begin(), values.end());
  s.max = *std::max_element(values.begin(), values.end());
  double sum = 0;
  for (const double v : values) sum += v;
  s.mean = sum / static_cast<double>(values.size());
  double var = 0;
  for (const double v : values) var += (v - s.mean) * (v - s.mean);
  s.stddev = values.size() > 1 ? std::sqrt(var / static_cast<double>(values.size() - 1)) : 0.0;
  return s;
}

double wilsonHalfWidth(std::size_t successes, std::size_t trials) {
  if (trials == 0) return 0.0;
  const double z = 1.959964;  // 95%
  const double n = static_cast<double>(trials);
  const double p = static_cast<double>(successes) / n;
  const double denom = 1.0 + z * z / n;
  const double half = (z / denom) * std::sqrt(p * (1.0 - p) / n + z * z / (4.0 * n * n));
  return half;
}

}  // namespace mcx
