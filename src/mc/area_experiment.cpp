#include "mc/area_experiment.hpp"

#include <algorithm>

#include "logic/generators.hpp"
#include "map/hybrid_mapper.hpp"
#include "mc/executor.hpp"
#include "util/error.hpp"
#include "xbar/area_model.hpp"
#include "xbar/function_matrix.hpp"
#include "xbar/multilevel_layout.hpp"

namespace mcx {

namespace {

/// Mapping success rate of @p fm on its optimum-size crossbar under
/// @p model, over @p draws defect maps from @p rng.
double mappingYield(const FunctionMatrix& fm, const DefectModel& model, std::size_t draws,
                    Rng& rng) {
  const HybridMapper mapper;
  DefectMap defects;
  BitMatrix cm;
  std::size_t successes = 0;
  for (std::size_t d = 0; d < draws; ++d) {
    model.generate(fm.rows(), fm.cols(), rng, defects);
    crossbarMatrixInto(defects, cm);
    if (mapper.map(fm, cm).success) ++successes;
  }
  return draws == 0 ? 0.0 : static_cast<double>(successes) / static_cast<double>(draws);
}

}  // namespace

double AreaExperimentResult::successRate() const {
  if (samples.empty()) return 0.0;
  std::size_t wins = 0;
  for (const AreaSample& s : samples)
    if (s.multiLevelArea < s.twoLevelArea) ++wins;
  return static_cast<double>(wins) / static_cast<double>(samples.size());
}

AreaExperimentResult runAreaExperiment(const AreaExperimentConfig& config) {
  MCX_REQUIRE(config.nin >= 2, "runAreaExperiment: need at least 2 inputs");
  const std::size_t maxP = config.maxProducts == 0 ? config.nin : config.maxProducts;
  MCX_REQUIRE(maxP >= config.minProducts && config.minProducts >= 1,
              "runAreaExperiment: bad product range");

  // One pre-split stream per sample, in sample order: sample i redraws
  // degenerate (constant) covers within its own stream, so the result set is
  // identical at any thread count.
  const std::vector<Rng> streams = splitSampleStreams(config.seed, config.samples);

  AreaExperimentResult result;
  result.samples.resize(config.samples);

  parallelForEach(config.samples, config.threads, [&](std::size_t, std::size_t i) {
    Rng rng = streams[i];
    for (;;) {
      RandomSopOptions sop;
      sop.nin = config.nin;
      sop.nout = 1;
      sop.products = static_cast<std::size_t>(rng.uniformInt(config.minProducts, maxP));
      sop.literalsPerProduct = config.literalsPerProduct;
      Cover cover = randomSop(sop, rng);
      cover = espressoMinimize(cover, config.espresso);
      if (cover.empty()) continue;  // degenerate (constant) draw; redraw
      // A cover whose single cube has no literals is constant 1 — skip too.
      if (cover.size() == 1 && cover.cube(0).literalCount() == 0) continue;

      const NandNetwork net = config.useBestMapping
                                  ? mapToNandBest(cover, config.nandMap.maxFanin)
                                  : mapToNand(cover, config.nandMap);

      AreaSample& sample = result.samples[i];
      sample.products = cover.size();
      sample.gates = net.gateCount();
      sample.twoLevelArea = twoLevelDims(cover).area();
      sample.multiLevelArea = multiLevelDims(net).area();
      if (config.defectModel) {
        sample.twoLevelYield =
            mappingYield(buildFunctionMatrix(cover), *config.defectModel,
                         config.defectDraws, rng);
        sample.multiLevelYield =
            mappingYield(buildMultiLevelLayout(net).fm, *config.defectModel,
                         config.defectDraws, rng);
      }
      return;
    }
  });

  std::sort(result.samples.begin(), result.samples.end(),
            [](const AreaSample& a, const AreaSample& b) { return a.products < b.products; });
  return result;
}

}  // namespace mcx
