// Two-level vs multi-level area comparison on random functions (Fig. 6).
//
// For each sample a random single-output SOP is drawn, minimized with the
// espresso-style minimizer (the two-level implementation), factored and
// mapped to NAND gates (the multi-level implementation), and both crossbar
// areas are computed. The paper reports, per input size, the cost series
// sorted by product count and the "success rate" — the share of samples
// whose multi-level area beats the two-level one.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "logic/espresso.hpp"
#include "netlist/nand_mapper.hpp"
#include "scenario/defect_model.hpp"

namespace mcx {

struct AreaExperimentConfig {
  std::size_t nin = 8;
  std::size_t samples = 200;        ///< the paper's sample size
  std::size_t minProducts = 2;      ///< random P range before minimization
  std::size_t maxProducts = 0;      ///< 0 = nin (tracks the paper's ranges)
  double literalsPerProduct = 3.0;
  std::uint64_t seed = 6;
  /// Worker threads; 0 = hardware concurrency. Results do not depend on
  /// this knob (one pre-split RNG stream per sample; degenerate draws are
  /// redrawn within the sample's own stream).
  std::size_t threads = 0;
  EspressoOptions espresso;
  /// Pick the best of flat / quick / kernel mapping per sample (like a real
  /// technology mapper); when false, nandMap is used as given.
  bool useBestMapping = true;
  NandMapOptions nandMap;           ///< used when useBestMapping is false
  /// Optional defect scenario: when set, each sample's two-level and
  /// multi-level implementations are additionally mapped (HBA) against
  /// defectDraws maps from the model, recording per-implementation yield —
  /// the area/yield tradeoff Fig. 6 does not capture. Draws come from the
  /// sample's own pre-split stream, so results stay thread-count-invariant.
  std::shared_ptr<const DefectModel> defectModel;
  std::size_t defectDraws = 20;
};

struct AreaSample {
  std::size_t products = 0;      ///< minimized product count
  std::size_t gates = 0;         ///< NAND gates in the multi-level network
  std::size_t twoLevelArea = 0;
  std::size_t multiLevelArea = 0;
  double twoLevelYield = -1.0;   ///< mapping success rate; -1 = not measured
  double multiLevelYield = -1.0;
};

struct AreaExperimentResult {
  std::vector<AreaSample> samples;  ///< sorted by product count (paper's x axis)
  /// Share of samples with multiLevelArea < twoLevelArea.
  double successRate() const;
};

AreaExperimentResult runAreaExperiment(const AreaExperimentConfig& config);

}  // namespace mcx
