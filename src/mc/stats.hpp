// Small statistics helpers for the Monte Carlo harness.
#pragma once

#include <cstddef>
#include <vector>

namespace mcx {

struct SummaryStats {
  std::size_t count = 0;
  double mean = 0;
  double stddev = 0;
  double min = 0;
  double max = 0;
};

SummaryStats summarize(const std::vector<double>& values);

/// Wilson score interval half-width for a success proportion (95%).
double wilsonHalfWidth(std::size_t successes, std::size_t trials);

}  // namespace mcx
