#include "mc/executor.hpp"

#include <algorithm>
#include <exception>

#include "obs/trace.hpp"

namespace mcx {

namespace {

/// Pool telemetry, resolved once. Chunk counting rides the chunk-claim
/// mutex acquisition that already happens, so it stays on by default;
/// per-chunk trace spans (one lane per worker in chrome://tracing) only
/// materialize when a sink is armed.
obs::Counter& poolJobsCounter() {
  static obs::Counter& c = obs::Registry::global().counter("pool.jobs");
  return c;
}
obs::Counter& poolChunksCounter() {
  static obs::Counter& c = obs::Registry::global().counter("pool.chunks");
  return c;
}

}  // namespace

std::size_t resolveThreadCount(std::size_t requested) {
  if (requested != 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

std::vector<Rng> splitSampleStreams(std::uint64_t seed, std::size_t samples) {
  Rng root(seed);
  std::vector<Rng> streams;
  streams.reserve(samples);
  for (std::size_t s = 0; s < samples; ++s) streams.push_back(root.split());
  return streams;
}

// One parallel-for job. Scheduling state is guarded by the job's own mutex
// (not the pool's), and completion is signalled on the job's own condition
// variable, so a caller blocked in run() depends only on the Job it shares
// ownership of — never on pool memory that a racing destructor could free.
struct ExecutorPool::Job {
  std::size_t n = 0;
  std::size_t chunk = 1;
  const Fn* fn = nullptr;
  const CancelToken* token = nullptr;

  std::mutex m;
  std::condition_variable done;
  std::size_t cursor = 0;    ///< next unclaimed index
  std::size_t inFlight = 0;  ///< threads currently executing a chunk
  bool abandoned = false;    ///< cancelled / pool stopped / callback threw
  std::exception_ptr error;

  bool finished() const { return cursor >= n && inFlight == 0; }
};

ExecutorPool::ExecutorPool(std::size_t threads) {
  const std::size_t total = resolveThreadCount(threads);
  workers_.reserve(total - 1);
  for (std::size_t w = 0; w + 1 < total; ++w)
    workers_.emplace_back([this, w] { workerLoop(w); });
}

ExecutorPool::~ExecutorPool() {
  std::deque<std::shared_ptr<Job>> inflight;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
    inflight = jobs_;
    jobs_.clear();
  }
  // Abandon queued work: unclaimed chunks are dropped; callbacks already
  // running finish normally; blocked run() callers wake and return false.
  for (const std::shared_ptr<Job>& job : inflight) {
    const std::lock_guard<std::mutex> lock(job->m);
    job->cursor = job->n;
    job->abandoned = true;
    if (job->finished()) job->done.notify_all();
  }
  workReady_.notify_all();
  {
    std::unique_lock<std::mutex> lock(mutex_);
    callersIdle_.wait(lock, [this] { return activeCallers_ == 0; });
  }
  for (std::thread& t : workers_) t.join();
}

void ExecutorPool::workerLoop(std::size_t slot) {
  for (;;) {
    std::shared_ptr<Job> job;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      workReady_.wait(lock, [this] { return stopping_ || !jobs_.empty(); });
      if (stopping_) return;
      job = jobs_.front();  // FIFO: drain the oldest job first
    }
    runChunks(slot, job);
  }
}

void ExecutorPool::runChunks(std::size_t slot, const std::shared_ptr<Job>& job) {
  for (;;) {
    std::size_t begin, end;
    {
      const std::lock_guard<std::mutex> lock(job->m);
      if (job->cursor >= job->n) break;
      if (job->token != nullptr && job->token->stopRequested()) {
        job->cursor = job->n;
        job->abandoned = true;
        if (job->finished()) job->done.notify_all();
        break;
      }
      begin = job->cursor;
      end = std::min(job->n, begin + job->chunk);
      job->cursor = end;
      ++job->inFlight;
    }
    poolChunksCounter().add(1);
    try {
      obs::Span chunkSpan("pool_chunk");
      for (std::size_t i = begin; i < end; ++i) (*job->fn)(slot, i);
    } catch (...) {
      const std::lock_guard<std::mutex> lock(job->m);
      if (!job->error) job->error = std::current_exception();
      job->cursor = job->n;  // cancel remaining chunks
      job->abandoned = true;
    }
    {
      const std::lock_guard<std::mutex> lock(job->m);
      --job->inFlight;
      if (job->finished()) job->done.notify_all();
    }
  }
  // Retire the job from the queue once it has no unclaimed chunks, so idle
  // workers stop rediscovering it. Any thread that observes exhaustion may
  // do the removal; double removal is a no-op.
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = std::find(jobs_.begin(), jobs_.end(), job);
  if (it != jobs_.end()) jobs_.erase(it);
}

bool ExecutorPool::run(std::size_t n, const Fn& fn, const CancelToken* token) {
  if (n == 0) return true;
  poolJobsCounter().add(1);

  // Inline fast path: no background workers (threads=1), or nothing worth
  // scheduling. Preserves the historical "one thread runs everything on the
  // caller, in order" behaviour the determinism tests pin.
  if (workers_.empty() || n == 1) {
    const std::size_t slot = workerCount();
    for (std::size_t i = 0; i < n; ++i) {
      if (token != nullptr && token->stopRequested()) return false;
      fn(slot, i);
    }
    return true;
  }

  const auto job = std::make_shared<Job>();
  job->n = n;
  // Small chunks balance load across samples of very different cost (a
  // near-infeasible defect draw can take orders of magnitude longer).
  job->chunk = std::max<std::size_t>(1, n / (slots() * 8));
  job->fn = &fn;
  job->token = token;

  {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_) {
      // Pool is being torn down under us: refuse new work.
      return false;
    }
    jobs_.push_back(job);
    ++activeCallers_;
  }
  workReady_.notify_all();

  runChunks(workerCount(), job);  // the caller contributes the last lane
  {
    std::unique_lock<std::mutex> lock(job->m);
    job->done.wait(lock, [&job] { return job->finished(); });
  }
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (--activeCallers_ == 0) callersIdle_.notify_all();
  }

  if (job->error) std::rethrow_exception(job->error);
  return !job->abandoned;
}

void parallelForEach(std::size_t n, std::size_t threads,
                     const std::function<void(std::size_t, std::size_t)>& fn) {
  // Cap the transient pool at one lane per index, as the historical
  // implementation did — spawning workers that could never claim a chunk
  // would be pure start-up cost.
  threads = std::min(resolveThreadCount(threads), std::max<std::size_t>(n, 1));
  ExecutorPool pool(threads);
  pool.run(n, fn);
}

}  // namespace mcx
