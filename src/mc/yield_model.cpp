#include "mc/yield_model.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace mcx {

YieldEstimate estimateYield(const FunctionMatrix& fm, double q, std::size_t spareRows) {
  MCX_REQUIRE(q >= 0.0 && q <= 1.0, "estimateYield: bad defect rate");
  const std::size_t N = fm.rows() + spareRows;

  std::vector<std::size_t> switches(fm.rows());
  for (std::size_t r = 0; r < fm.rows(); ++r) switches[r] = fm.bits().rowCount(r);
  std::sort(switches.begin(), switches.end(), std::greater<>());

  YieldEstimate est;
  est.successProbability = 1.0;
  for (std::size_t i = 0; i < switches.size(); ++i) {
    const double p = std::pow(1.0 - q, static_cast<double>(switches[i]));
    const double pool = static_cast<double>(N - i);
    const double rowOk = 1.0 - std::pow(1.0 - p, pool);
    est.successProbability *= rowOk;
    est.expectedStrandedRows += std::pow(1.0 - p, static_cast<double>(N));
  }
  return est;
}

std::size_t sparesForTargetYield(const FunctionMatrix& fm, double q, double target,
                                 std::size_t maxSpare) {
  MCX_REQUIRE(target > 0.0 && target < 1.0, "sparesForTargetYield: target in (0,1)");
  for (std::size_t spare = 0; spare <= maxSpare; ++spare)
    if (estimateYield(fm, q, spare).successProbability >= target) return spare;
  return maxSpare + 1;
}

}  // namespace mcx
