#include "sim/crossbar_sim.hpp"

#include <numeric>

#include "logic/truth_table.hpp"
#include "util/error.hpp"

namespace mcx {

namespace {

/// A switch participates in evaluation iff it is programmed active and not
/// stuck-open (stuck-closed is handled separately as line poisoning).
bool effectiveActive(const FunctionMatrix& fm, std::size_t fmRow, std::size_t col,
                     const DefectMap& defects, std::size_t physRow) {
  return fm.bits().test(fmRow, col) && !defects.isStuckOpen(physRow, col);
}

}  // namespace

std::vector<std::size_t> identityAssignment(std::size_t rows) {
  std::vector<std::size_t> a(rows);
  std::iota(a.begin(), a.end(), 0u);
  return a;
}

DynBits simulateTwoLevel(const TwoLevelLayout& layout,
                         const std::vector<std::size_t>& rowAssignment,
                         const DefectMap& defects, const DynBits& input) {
  const FunctionMatrix& fm = layout.fm;
  MCX_REQUIRE(rowAssignment.size() == fm.rows(), "simulateTwoLevel: bad assignment size");
  MCX_REQUIRE(defects.cols() == fm.cols(), "simulateTwoLevel: column mismatch");
  MCX_REQUIRE(input.size() == fm.nin(), "simulateTwoLevel: input arity mismatch");

  // RI/CFM: vertical line values (stuck-closed column is forced to R_ON = 0).
  std::vector<char> colValue(fm.cols(), 1);
  for (std::size_t v = 0; v < fm.nin(); ++v) {
    colValue[fm.colOfPosLiteral(v)] = input.test(v) ? 1 : 0;
    colValue[fm.colOfNegLiteral(v)] = input.test(v) ? 0 : 1;
  }
  for (std::size_t c = 0; c < fm.cols(); ++c)
    if (defects.colPoisoned(c)) colValue[c] = 0;

  // EVM: every product row computes the NAND of its connected input columns.
  std::vector<char> rowResult(fm.numProductRows(), 1);
  for (std::size_t i = 0; i < fm.numProductRows(); ++i) {
    const std::size_t phys = rowAssignment[i];
    if (defects.rowPoisoned(phys)) {
      rowResult[i] = 1;  // stuck-closed row: NAND sees a forced 0
      continue;
    }
    char conj = 1;
    for (std::size_t v = 0; v < fm.nin() && conj; ++v) {
      const std::size_t pc = fm.colOfPosLiteral(v);
      const std::size_t nc = fm.colOfNegLiteral(v);
      if (effectiveActive(fm, i, pc, defects, phys) && colValue[pc] == 0) conj = 0;
      if (effectiveActive(fm, i, nc, defects, phys) && colValue[nc] == 0) conj = 0;
    }
    rowResult[i] = static_cast<char>(1 - conj);
  }

  // EVR: output column = AND of the product rows writing into it (= !f).
  // INR + SO: invert through the output-latch row.
  DynBits out(fm.nout());
  for (std::size_t o = 0; o < fm.nout(); ++o) {
    const std::size_t col = fm.colOfOutput(o);
    char value = 1;  // initialized R_OFF
    if (defects.colPoisoned(col)) {
      value = 0;
    } else {
      for (std::size_t i = 0; i < fm.numProductRows(); ++i) {
        const std::size_t phys = rowAssignment[i];
        if (defects.rowPoisoned(phys)) continue;  // poisoned row handled above
        if (effectiveActive(fm, i, col, defects, phys) && rowResult[i] == 0) value = 0;
      }
    }
    // The output-latch row reads the column through its own switch; a broken
    // switch leaves the latch at its initialization (R_OFF = 1).
    const std::size_t outRow = fm.rowOfOutput(o);
    const std::size_t phys = rowAssignment[outRow];
    char latched = 1;
    if (!defects.rowPoisoned(phys) && effectiveActive(fm, outRow, col, defects, phys))
      latched = value;
    out.set(o, latched == 0);  // INR: f = !(!f)
  }
  return out;
}

DynBits simulateMultiLevel(const MultiLevelLayout& layout,
                           const std::vector<std::size_t>& rowAssignment,
                           const DefectMap& defects, const DynBits& input) {
  const FunctionMatrix& fm = layout.fm;
  const NandNetwork& net = layout.network;
  MCX_REQUIRE(rowAssignment.size() == fm.rows(), "simulateMultiLevel: bad assignment size");
  MCX_REQUIRE(defects.cols() == fm.cols(), "simulateMultiLevel: column mismatch");
  MCX_REQUIRE(input.size() == fm.nin(), "simulateMultiLevel: input arity mismatch");

  std::vector<char> colValue(fm.cols(), 1);  // INA: everything starts R_OFF = 1
  for (std::size_t v = 0; v < fm.nin(); ++v) {
    colValue[fm.colOfPosLiteral(v)] = input.test(v) ? 1 : 0;
    colValue[fm.colOfNegLiteral(v)] = input.test(v) ? 0 : 1;
  }
  std::vector<bool> colDead(fm.cols(), false);
  for (std::size_t c = 0; c < fm.cols(); ++c) {
    if (defects.colPoisoned(c)) {
      colDead[c] = true;
      colValue[c] = 0;
    }
  }

  // Evaluate gates one-by-one (EVM / CR loop).
  std::map<NodeId, std::size_t> gateRow;
  for (std::size_t i = 0; i < net.gates().size(); ++i) gateRow[net.gates()[i]] = i;

  std::vector<char> gateResult(net.gates().size(), 1);
  for (std::size_t i = 0; i < net.gates().size(); ++i) {
    const NodeId g = net.gates()[i];
    const std::size_t phys = rowAssignment[i];
    char result;
    if (defects.rowPoisoned(phys)) {
      result = 1;
    } else {
      char conj = 1;
      for (const auto& f : net.fanins(g)) {
        std::size_t col;
        if (net.isPi(f.node)) {
          const auto v = static_cast<std::size_t>(f.node);
          col = f.invert ? fm.colOfNegLiteral(v) : fm.colOfPosLiteral(v);
        } else {
          col = fm.colOfConnection(layout.connOfGate[gateRow.at(f.node)]);
        }
        // A stuck-open switch disconnects the fanin: the row simply does not
        // see that column (the literal silently drops out of the NAND).
        if (effectiveActive(fm, i, col, defects, phys) && colValue[col] == 0) conj = 0;
      }
      result = static_cast<char>(1 - conj);
    }
    gateResult[i] = result;

    // CR: write the result into the gate's connection column.
    if (layout.connOfGate[i] != MultiLevelLayout::kNoConnection) {
      const std::size_t col = fm.colOfConnection(layout.connOfGate[i]);
      if (!colDead[col]) {
        if (!defects.rowPoisoned(phys) && effectiveActive(fm, i, col, defects, phys))
          colValue[col] = result;
        // else: the column keeps its initialization (R_OFF = 1).
      }
    }
  }

  DynBits out(fm.nout());
  for (std::size_t o = 0; o < fm.nout(); ++o) {
    const std::size_t col = fm.colOfOutput(o);
    const std::size_t gi = gateRow.at(net.outputNode(o));
    char value = 1;
    if (colDead[col]) {
      value = 0;
    } else {
      const std::size_t phys = rowAssignment[gi];
      if (!defects.rowPoisoned(phys) && effectiveActive(fm, gi, col, defects, phys))
        value = gateResult[gi];
    }
    const std::size_t outRow = fm.rowOfOutput(o);
    const std::size_t phys = rowAssignment[outRow];
    char latched = 1;
    if (!defects.rowPoisoned(phys) && effectiveActive(fm, outRow, col, defects, phys) &&
        !colDead[col])
      latched = value;
    out.set(o, (latched != 0) != net.outputInverted(o));
  }
  return out;
}

std::size_t countTwoLevelMismatches(const TwoLevelLayout& layout,
                                    const std::vector<std::size_t>& rowAssignment,
                                    const DefectMap& defects) {
  const TruthTable ref = TruthTable::fromCover(layout.cover);
  std::size_t mismatches = 0;
  DynBits input(layout.cover.nin());
  for (std::size_t m = 0; m < ref.numMinterms(); ++m) {
    for (std::size_t v = 0; v < layout.cover.nin(); ++v) input.set(v, ((m >> v) & 1u) != 0);
    const DynBits got = simulateTwoLevel(layout, rowAssignment, defects, input);
    for (std::size_t o = 0; o < layout.cover.nout(); ++o)
      if (got.test(o) != ref.get(o, m)) ++mismatches;
  }
  return mismatches;
}

}  // namespace mcx
