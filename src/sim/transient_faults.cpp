#include "sim/transient_faults.hpp"

#include "logic/truth_table.hpp"
#include "sim/crossbar_sim.hpp"
#include "util/error.hpp"

namespace mcx {

TransientFaultStats measureTransientErrors(const TwoLevelLayout& layout,
                                           const std::vector<std::size_t>& rowAssignment,
                                           const DefectMap& defects,
                                           const TransientFaultConfig& config,
                                           std::size_t trials, Rng& rng) {
  MCX_REQUIRE(config.openRate >= 0 && config.shortRate >= 0 &&
                  config.openRate + config.shortRate <= 1.0,
              "measureTransientErrors: bad rates");
  const FunctionMatrix& fm = layout.fm;
  const TruthTable ref = TruthTable::fromCover(layout.cover);

  TransientFaultStats stats;
  DynBits input(layout.cover.nin());
  for (std::size_t t = 0; t < trials; ++t) {
    std::size_t minterm = 0;
    for (std::size_t v = 0; v < input.size(); ++v) {
      const bool bit = rng.bernoulli(0.5);
      input.set(v, bit);
      minterm |= static_cast<std::size_t>(bit) << v;
    }

    // Layer a one-shot fault pattern over the permanent defects: transient
    // faults hit the switches the mapping actually uses.
    DefectMap effective = defects;
    for (std::size_t r = 0; r < fm.rows(); ++r) {
      const std::size_t phys = rowAssignment[r];
      for (std::size_t col = 0; col < fm.cols(); ++col) {
        if (!fm.bits().test(r, col)) continue;
        if (effective.type(phys, col) != DefectType::None) continue;
        const double u = rng.uniform();
        if (u < config.openRate)
          effective.setType(phys, col, DefectType::StuckOpen);
        else if (u < config.openRate + config.shortRate)
          effective.setType(phys, col, DefectType::StuckClosed);
      }
    }

    const DynBits out = simulateTwoLevel(layout, rowAssignment, effective, input);
    for (std::size_t o = 0; o < layout.cover.nout(); ++o) {
      ++stats.evaluations;
      if (out.test(o) != ref.get(o, minterm)) ++stats.bitErrors;
    }
  }
  return stats;
}

}  // namespace mcx
