#include "sim/device_model.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "util/error.hpp"

namespace mcx {

Memristor::Memristor(DeviceParams params, double initialState)
    : p_(params), w_(std::clamp(initialState, 0.0, 1.0)) {
  MCX_REQUIRE(p_.rOn > 0 && p_.rOff > p_.rOn, "Memristor: need 0 < rOn < rOff");
  MCX_REQUIRE(p_.vThreshold > 0 && p_.mobility > 0, "Memristor: bad dynamics parameters");
}

double Memristor::resistance() const {
  if (p_.linearMix) return w_ * p_.rOn + (1.0 - w_) * p_.rOff;
  // Exponential interpolation: log-resistance linear in state (closer to
  // measured filamentary devices).
  return p_.rOff * std::pow(p_.rOn / p_.rOff, w_);
}

void Memristor::apply(double volts, double dt) {
  MCX_REQUIRE(dt >= 0, "Memristor::apply: negative dt");
  const double mag = std::abs(volts);
  if (mag <= p_.vThreshold) return;  // non-volatile retention window
  const double drive = (mag - p_.vThreshold) * p_.mobility * dt;
  // Window function keeps w in [0,1] with soft saturation at the borders.
  if (volts > 0)
    w_ = std::min(1.0, w_ + drive * (1.0 - w_ * w_ * 0.5));
  else
    w_ = std::max(0.0, w_ - drive * (1.0 - (1.0 - w_) * (1.0 - w_) * 0.5));
}

std::vector<IvPoint> sweepIV(const DeviceParams& params, double amplitude, std::size_t periods,
                             std::size_t stepsPerPeriod) {
  MCX_REQUIRE(amplitude > 0 && periods > 0 && stepsPerPeriod >= 8, "sweepIV: bad sweep");
  Memristor dev(params, 0.0);
  std::vector<IvPoint> points;
  points.reserve(periods * stepsPerPeriod);
  const double period = 1.0;
  const double dt = period / static_cast<double>(stepsPerPeriod);
  for (std::size_t k = 0; k < periods * stepsPerPeriod; ++k) {
    const double t = static_cast<double>(k) * dt;
    const double v = amplitude * std::sin(2.0 * std::numbers::pi * t / period);
    dev.apply(v, dt);
    points.push_back({t, v, dev.current(v), dev.state()});
  }
  return points;
}

}  // namespace mcx
