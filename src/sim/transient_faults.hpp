// Transient-fault injection (paper Section I: "permanent defects or
// transient faults in wires and switches ... for the sake of simplicity, we
// only explore the switching defects"). This extension explores the part
// the paper sets aside: each evaluation, every programmed-active switch
// independently misbehaves with some probability — dropping out of its NAND
// (transient open) or forcing its line low (transient short) — and we
// measure the resulting output error rate.
#pragma once

#include <cstdint>

#include "util/rng.hpp"
#include "xbar/defects.hpp"
#include "xbar/layout.hpp"

namespace mcx {

struct TransientFaultConfig {
  /// Per-evaluation probability that an active switch transiently opens.
  double openRate = 0.0;
  /// Per-evaluation probability that an active switch transiently shorts
  /// (behaves stuck-closed for this evaluation only).
  double shortRate = 0.0;
};

struct TransientFaultStats {
  std::size_t evaluations = 0;     ///< (input, output)-bit checks performed
  std::size_t bitErrors = 0;       ///< wrong output bits observed
  double bitErrorRate() const {
    return evaluations == 0 ? 0.0
                            : static_cast<double>(bitErrors) / static_cast<double>(evaluations);
  }
};

/// Evaluate a mapped two-level crossbar @p trials times on random inputs,
/// sampling a fresh transient fault pattern per evaluation (layered on top
/// of the permanent @p defects), and compare against the cover's reference
/// behaviour.
TransientFaultStats measureTransientErrors(const TwoLevelLayout& layout,
                                           const std::vector<std::size_t>& rowAssignment,
                                           const DefectMap& defects,
                                           const TransientFaultConfig& config,
                                           std::size_t trials, Rng& rng);

}  // namespace mcx
