// Memristor device model (threshold-type ion drift).
//
// Reproduces the qualitative behaviour of Fig. 1 of the paper: pinched
// hysteresis under a periodic drive, abrupt SET above +V_th and RESET below
// -V_th, and non-volatile state retention inside the threshold window.
// State w in [0,1]: w = 1 is fully SET (R_ON, logic 0 in Snider logic),
// w = 0 is fully RESET (R_OFF, logic 1).
#pragma once

#include <cstddef>
#include <vector>

namespace mcx {

struct DeviceParams {
  double rOn = 100.0;        ///< ohms, fully SET
  double rOff = 16'000.0;    ///< ohms, fully RESET
  double vThreshold = 1.0;   ///< volts; no drift inside (-vth, +vth)
  double mobility = 40.0;    ///< state change rate per (volt-over-threshold * second)
  bool linearMix = false;    ///< R(w): false = exponential mix, true = linear
};

class Memristor {
public:
  explicit Memristor(DeviceParams params = {}, double initialState = 0.0);

  double state() const { return w_; }
  double resistance() const;
  /// Current through the device at bias @p volts (instantaneous, ohmic).
  double current(double volts) const { return volts / resistance(); }

  /// Integrate the state equation over @p dt seconds at bias @p volts.
  void apply(double volts, double dt);

  void set() { w_ = 1.0; }
  void reset() { w_ = 0.0; }

private:
  DeviceParams p_;
  double w_;
};

struct IvPoint {
  double time = 0;
  double voltage = 0;
  double current = 0;
  double state = 0;
};

/// Drive a memristor with @p periods sinusoidal cycles of @p amplitude volts
/// and sample the I-V trajectory (the Fig. 1 curve).
std::vector<IvPoint> sweepIV(const DeviceParams& params, double amplitude, std::size_t periods,
                             std::size_t stepsPerPeriod);

}  // namespace mcx
