// Behavioral crossbar simulator (Snider Boolean logic: R_ON = 0, R_OFF = 1).
//
// Executes the paper's computation state machines on a *programmed,
// possibly defective* crossbar and returns the observed outputs:
//
// Two-level (Fig. 2): INA initializes every device to R_OFF; RI/CFM place
// the input literals on the vertical lines; EVM evaluates every product row
// as the NAND of its connected input columns; EVR computes each output
// column as the AND of the rows writing to it (= !f); INR inverts; SO
// latches.
//
// Multi-level (Fig. 4): gates evaluate one-by-one in topological order; CR
// copies each gate's result into its multi-level connection column, where
// later gate rows read it.
//
// Defect semantics (Section IV-A): a stuck-open device never conducts — it
// behaves as a disabled switch regardless of programming, so a required
// connection silently disappears. A stuck-closed device forces its row's
// NAND to output logic 1 and forces its column's value to logic 0 (R_ON),
// poisoning both lines.
#pragma once

#include "util/bits.hpp"
#include "xbar/defects.hpp"
#include "xbar/layout.hpp"
#include "xbar/multilevel_layout.hpp"

namespace mcx {

/// Identity row assignment (naive mapping: FM row i on crossbar row i).
std::vector<std::size_t> identityAssignment(std::size_t rows);

/// Simulate the two-level design. @p rowAssignment maps each FM row to a
/// physical row of @p defects (which may have spare rows); @p input is the
/// primary-input assignment. Returns the observed outputs after INR.
DynBits simulateTwoLevel(const TwoLevelLayout& layout,
                         const std::vector<std::size_t>& rowAssignment,
                         const DefectMap& defects, const DynBits& input);

/// Simulate the multi-level design.
DynBits simulateMultiLevel(const MultiLevelLayout& layout,
                           const std::vector<std::size_t>& rowAssignment,
                           const DefectMap& defects, const DynBits& input);

/// Exhaustively compare a mapped two-level crossbar against reference
/// truth-table behaviour; returns the number of failing (input, output)
/// pairs. nin <= ~16 recommended.
std::size_t countTwoLevelMismatches(const TwoLevelLayout& layout,
                                    const std::vector<std::size_t>& rowAssignment,
                                    const DefectMap& defects);

}  // namespace mcx
