#include "util/bit_matrix.hpp"

#include <algorithm>
#include <bit>

#include "util/error.hpp"

namespace mcx {

BitMatrix::BitMatrix(std::size_t rows, std::size_t cols, bool value)
    : rows_(rows),
      cols_(cols),
      wordsPerRow_((cols + kWordBits - 1) / kWordBits),
      w_(rows * wordsPerRow_, value ? ~Word{0} : Word{0}) {
  if (value && wordsPerRow_ > 0) {
    const Word mask = tailMask(cols_);
    for (std::size_t r = 0; r < rows_; ++r) w_[r * wordsPerRow_ + wordsPerRow_ - 1] &= mask;
  }
}

void BitMatrix::setRow(std::size_t r, bool value) {
  MCX_REQUIRE(r < rows_, "BitMatrix::setRow out of range");
  const auto words = rowWords(r);
  if (!value) {
    for (Word& w : words) w = 0;
    return;
  }
  for (Word& w : words) w = ~Word{0};
  if (wordsPerRow_ > 0) words[wordsPerRow_ - 1] &= tailMask(cols_);
}

void BitMatrix::setCol(std::size_t c, bool value) {
  MCX_REQUIRE(c < cols_, "BitMatrix::setCol out of range");
  const std::size_t word = c / kWordBits;
  const Word mask = Word{1} << (c % kWordBits);
  Word* p = w_.data() + word;
  if (value) {
    for (std::size_t r = 0; r < rows_; ++r, p += wordsPerRow_) *p |= mask;
  } else {
    for (std::size_t r = 0; r < rows_; ++r, p += wordsPerRow_) *p &= ~mask;
  }
}

void BitMatrix::fill(bool value) {
  std::fill(w_.begin(), w_.end(), value ? ~Word{0} : Word{0});
  if (value && wordsPerRow_ > 0) {
    const Word mask = tailMask(cols_);
    for (std::size_t r = 0; r < rows_; ++r) w_[r * wordsPerRow_ + wordsPerRow_ - 1] &= mask;
  }
}

void BitMatrix::reshape(std::size_t rows, std::size_t cols, bool value) {
  rows_ = rows;
  cols_ = cols;
  wordsPerRow_ = (cols + kWordBits - 1) / kWordBits;
  w_.assign(rows * wordsPerRow_, 0);  // assign() reuses the existing allocation
  if (value) fill(true);
}

std::size_t BitMatrix::count() const {
  std::size_t n = 0;
  for (Word w : w_) n += static_cast<std::size_t>(std::popcount(w));
  return n;
}

std::size_t BitMatrix::rowCount(std::size_t r) const {
  MCX_REQUIRE(r < rows_, "BitMatrix::rowCount out of range");
  std::size_t n = 0;
  for (Word w : rowWords(r)) n += static_cast<std::size_t>(std::popcount(w));
  return n;
}

std::size_t BitMatrix::colCount(std::size_t c) const {
  std::size_t n = 0;
  for (std::size_t r = 0; r < rows_; ++r) n += test(r, c) ? 1 : 0;
  return n;
}

bool BitMatrix::rowSubsetOf(std::size_t r, const BitMatrix& o, std::size_t r2) const {
  MCX_REQUIRE(cols_ == o.cols_, "BitMatrix::rowSubsetOf column mismatch");
  const auto a = rowWords(r);
  const auto b = o.rowWords(r2);
  for (std::size_t i = 0; i < a.size(); ++i)
    if ((a[i] & ~b[i]) != 0) return false;
  return true;
}

namespace {

/// In-place 64x64 bit-block transpose (Hacker's Delight fig. 7-3 scaled
/// from 32 to 64 and flipped to this codebase's LSB-first convention):
/// element (k, b) is bit b of x[k].
void transpose64(BitMatrix::Word x[64]) {
  using Word = BitMatrix::Word;
  Word m = 0x00000000FFFFFFFFull;
  for (std::size_t j = 32; j != 0; j >>= 1, m ^= m << j) {
    for (std::size_t k = 0; k < 64; k = (k + j + 1) & ~j) {
      const Word t = ((x[k] >> j) ^ x[k | j]) & m;
      x[k] ^= t << j;
      x[k | j] ^= t;
    }
  }
}

}  // namespace

void BitMatrix::assignTransposed(const BitMatrix& src) {
  MCX_REQUIRE(this != &src, "BitMatrix::assignTransposed: cannot transpose in place");
  reshape(src.cols(), src.rows());
  if (src.rows() == 0 || src.cols() == 0) return;
  const std::size_t srcWords = src.wordsPerRow_;
  const Word* const srcBase = src.w_.data();
  Word* const dstBase = w_.data();
  Word block[kWordBits];
  for (std::size_t r0 = 0; r0 < src.rows(); r0 += kWordBits) {
    const std::size_t blockRows = std::min(kWordBits, src.rows() - r0);
    for (std::size_t w = 0; w < srcWords; ++w) {
      for (std::size_t k = 0; k < blockRows; ++k) block[k] = srcBase[(r0 + k) * srcWords + w];
      for (std::size_t k = blockRows; k < kWordBits; ++k) block[k] = 0;
      transpose64(block);
      const std::size_t c0 = w * kWordBits;
      const std::size_t blockCols = std::min(kWordBits, src.cols() - c0);
      for (std::size_t k = 0; k < blockCols; ++k)
        dstBase[(c0 + k) * wordsPerRow_ + r0 / kWordBits] = block[k];
    }
  }
}

std::string BitMatrix::toString(char zero, char one) const {
  std::string s;
  s.reserve(rows_ * (cols_ + 1));
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) s.push_back(test(r, c) ? one : zero);
    s.push_back('\n');
  }
  return s;
}

}  // namespace mcx
