#include "util/bit_matrix.hpp"

#include <algorithm>
#include <bit>

#include "util/error.hpp"

namespace mcx {

BitMatrix::BitMatrix(std::size_t rows, std::size_t cols, bool value)
    : rows_(rows),
      cols_(cols),
      wordsPerRow_((cols + kWordBits - 1) / kWordBits),
      w_(rows * wordsPerRow_, value ? ~Word{0} : Word{0}) {
  if (value) {
    const std::size_t rem = cols_ % kWordBits;
    if (rem != 0 && wordsPerRow_ > 0) {
      const Word mask = (Word{1} << rem) - 1;
      for (std::size_t r = 0; r < rows_; ++r) w_[r * wordsPerRow_ + wordsPerRow_ - 1] &= mask;
    }
  }
}

bool BitMatrix::test(std::size_t r, std::size_t c) const {
  MCX_REQUIRE(r < rows_ && c < cols_, "BitMatrix::test out of range");
  return (w_[r * wordsPerRow_ + c / kWordBits] >> (c % kWordBits)) & 1u;
}

void BitMatrix::set(std::size_t r, std::size_t c) {
  MCX_REQUIRE(r < rows_ && c < cols_, "BitMatrix::set out of range");
  w_[r * wordsPerRow_ + c / kWordBits] |= Word{1} << (c % kWordBits);
}

void BitMatrix::set(std::size_t r, std::size_t c, bool value) { value ? set(r, c) : reset(r, c); }

void BitMatrix::reset(std::size_t r, std::size_t c) {
  MCX_REQUIRE(r < rows_ && c < cols_, "BitMatrix::reset out of range");
  w_[r * wordsPerRow_ + c / kWordBits] &= ~(Word{1} << (c % kWordBits));
}

void BitMatrix::setRow(std::size_t r, bool value) {
  MCX_REQUIRE(r < rows_, "BitMatrix::setRow out of range");
  const auto words = rowWords(r);
  if (!value) {
    for (Word& w : words) w = 0;
    return;
  }
  for (Word& w : words) w = ~Word{0};
  const std::size_t rem = cols_ % kWordBits;
  if (rem != 0 && wordsPerRow_ > 0) words[wordsPerRow_ - 1] &= (Word{1} << rem) - 1;
}

void BitMatrix::setCol(std::size_t c, bool value) {
  MCX_REQUIRE(c < cols_, "BitMatrix::setCol out of range");
  const std::size_t word = c / kWordBits;
  const Word mask = Word{1} << (c % kWordBits);
  Word* p = w_.data() + word;
  if (value) {
    for (std::size_t r = 0; r < rows_; ++r, p += wordsPerRow_) *p |= mask;
  } else {
    for (std::size_t r = 0; r < rows_; ++r, p += wordsPerRow_) *p &= ~mask;
  }
}

void BitMatrix::fill(bool value) {
  std::fill(w_.begin(), w_.end(), value ? ~Word{0} : Word{0});
  if (value) {
    const std::size_t rem = cols_ % kWordBits;
    if (rem != 0 && wordsPerRow_ > 0) {
      const Word mask = (Word{1} << rem) - 1;
      for (std::size_t r = 0; r < rows_; ++r) w_[r * wordsPerRow_ + wordsPerRow_ - 1] &= mask;
    }
  }
}

void BitMatrix::reshape(std::size_t rows, std::size_t cols, bool value) {
  rows_ = rows;
  cols_ = cols;
  wordsPerRow_ = (cols + kWordBits - 1) / kWordBits;
  w_.assign(rows * wordsPerRow_, 0);  // assign() reuses the existing allocation
  if (value) fill(true);
}

std::size_t BitMatrix::count() const {
  std::size_t n = 0;
  for (Word w : w_) n += static_cast<std::size_t>(std::popcount(w));
  return n;
}

std::size_t BitMatrix::rowCount(std::size_t r) const {
  MCX_REQUIRE(r < rows_, "BitMatrix::rowCount out of range");
  std::size_t n = 0;
  for (Word w : rowWords(r)) n += static_cast<std::size_t>(std::popcount(w));
  return n;
}

std::size_t BitMatrix::colCount(std::size_t c) const {
  std::size_t n = 0;
  for (std::size_t r = 0; r < rows_; ++r) n += test(r, c) ? 1 : 0;
  return n;
}

bool BitMatrix::rowSubsetOf(std::size_t r, const BitMatrix& o, std::size_t r2) const {
  MCX_REQUIRE(cols_ == o.cols_, "BitMatrix::rowSubsetOf column mismatch");
  const auto a = rowWords(r);
  const auto b = o.rowWords(r2);
  for (std::size_t i = 0; i < a.size(); ++i)
    if ((a[i] & ~b[i]) != 0) return false;
  return true;
}

std::span<const BitMatrix::Word> BitMatrix::rowWords(std::size_t r) const {
  MCX_REQUIRE(r < rows_, "BitMatrix::rowWords out of range");
  return {w_.data() + r * wordsPerRow_, wordsPerRow_};
}

std::span<BitMatrix::Word> BitMatrix::rowWords(std::size_t r) {
  MCX_REQUIRE(r < rows_, "BitMatrix::rowWords out of range");
  return {w_.data() + r * wordsPerRow_, wordsPerRow_};
}

std::string BitMatrix::toString(char zero, char one) const {
  std::string s;
  s.reserve(rows_ * (cols_ + 1));
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) s.push_back(test(r, c) ? one : zero);
    s.push_back('\n');
  }
  return s;
}

}  // namespace mcx
