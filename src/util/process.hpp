// Process self-observation: resident-set sampling for health probes and the
// chaos soak's bounded-RSS assertion. Linux-only in substance (/proc/self/
// status); other platforms report zeros, and callers treat 0 as "unknown"
// rather than "no memory".
#pragma once

#include <cstddef>

namespace mcx::proc {

struct MemoryUsage {
  std::size_t rssBytes = 0;      ///< current resident set (VmRSS); 0 = unknown
  std::size_t peakRssBytes = 0;  ///< high-water mark (VmHWM); 0 = unknown
};

/// Sample the process's resident-set usage. Never throws; fields stay 0
/// when the platform offers no /proc/self/status.
MemoryUsage memoryUsage() noexcept;

}  // namespace mcx::proc
