// Deterministic, seedable random number generation (xoshiro256**).
//
// All Monte Carlo experiments in the library take an explicit Rng so runs
// are reproducible; std::mt19937 is avoided because its streams differ
// between standard library implementations for some distribution types.
#pragma once

#include <cstdint>
#include <vector>

namespace mcx {

class Rng {
public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x853c49e6748fea9bull);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~result_type{0}; }

  /// Raw 64 random bits.
  std::uint64_t operator()();

  /// Uniform in [0, 1).
  double uniform();
  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  std::uint64_t uniformInt(std::uint64_t lo, std::uint64_t hi);
  /// True with probability p (clamped to [0,1]).
  bool bernoulli(double p);

  /// Exact Binomial(n, p) draw from a single uniform: the number of
  /// successes in n independent Bernoulli(p) trials, without performing the
  /// trials. Inverts the CDF by chopping probability mass outward from the
  /// mode, so the cost is O(stddev) — the O(defects) sampling fast path
  /// draws its defect count with this instead of one uniform per crosspoint.
  std::uint64_t binomial(std::uint64_t n, double p);

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      const std::size_t j = static_cast<std::size_t>(uniformInt(0, i - 1));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  /// Derive an independent child stream (for per-sample seeding).
  Rng split();

private:
  std::uint64_t s_[4];
};

}  // namespace mcx
