#include "util/faultinject.hpp"

#include <charconv>
#include <chrono>
#include <cstdlib>
#include <map>
#include <mutex>
#include <new>
#include <optional>
#include <thread>

namespace mcx::faultinject {

namespace detail {
std::atomic<int> armedSites{0};
}  // namespace detail

namespace {

struct SiteState {
  Plan plan;
  bool armed = false;
  std::uint64_t hits = 0;   ///< times the site was reached while armed
  std::uint64_t fired = 0;  ///< times the plan actually fired
};

struct Registry {
  std::mutex mutex;
  std::map<std::string, SiteState> sites;
  /// splitmix64 state for probability draws; fixed default seed so
  /// probabilistic plans replay even unseeded.
  std::uint64_t rngState = 0x9e3779b97f4a7c15ull;
};

/// One splitmix64 step mapped to [0, 1). Guarded by the registry mutex.
double nextUniform(Registry& r) {
  std::uint64_t z = (r.rngState += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  z ^= z >> 31;
  return static_cast<double>(z >> 11) * 0x1.0p-53;
}

Registry& registry() {
  static Registry* r = new Registry;  // immortal: sites fire during shutdown too
  return *r;
}

void syncArmedCount(Registry& r) {
  int armed = 0;
  for (const auto& [name, state] : r.sites)
    if (state.armed) ++armed;
  detail::armedSites.store(armed, std::memory_order_relaxed);
}

}  // namespace

namespace detail {

void onSiteSlow(const char* site) {
  Kind kind{};
  double stallMillis = 0;
  {
    Registry& r = registry();
    const std::lock_guard<std::mutex> lock(r.mutex);
    const auto it = r.sites.find(site);
    if (it == r.sites.end() || !it->second.armed) return;
    SiteState& state = it->second;
    ++state.hits;
    if (state.hits <= state.plan.skip) return;
    if (state.fired >= state.plan.times) return;
    if (state.plan.probability < 1.0 && nextUniform(r) >= state.plan.probability) return;
    ++state.fired;
    kind = state.plan.kind;
    stallMillis = state.plan.stallMillis;
  }
  // Fire outside the lock: a stall must not serialize every other site.
  switch (kind) {
    case Kind::Throw:
      throw FaultInjected(std::string("fault injected at site \"") + site + "\"");
    case Kind::BadAlloc: throw std::bad_alloc();
    case Kind::Stall:
      std::this_thread::sleep_for(
          std::chrono::duration<double, std::milli>(stallMillis));
      return;
  }
}

}  // namespace detail

void arm(const std::string& site, const Plan& plan) {
  Registry& r = registry();
  const std::lock_guard<std::mutex> lock(r.mutex);
  SiteState& state = r.sites[site];
  state.plan = plan;
  state.armed = true;
  state.fired = 0;
  syncArmedCount(r);
}

void disarm(const std::string& site) {
  Registry& r = registry();
  const std::lock_guard<std::mutex> lock(r.mutex);
  const auto it = r.sites.find(site);
  if (it != r.sites.end()) it->second.armed = false;
  syncArmedCount(r);
}

void reset() {
  Registry& r = registry();
  const std::lock_guard<std::mutex> lock(r.mutex);
  r.sites.clear();
  syncArmedCount(r);
}

std::uint64_t hits(const std::string& site) {
  Registry& r = registry();
  const std::lock_guard<std::mutex> lock(r.mutex);
  const auto it = r.sites.find(site);
  return it == r.sites.end() ? 0 : it->second.hits;
}

std::uint64_t fired(const std::string& site) {
  Registry& r = registry();
  const std::lock_guard<std::mutex> lock(r.mutex);
  const auto it = r.sites.find(site);
  return it == r.sites.end() ? 0 : it->second.fired;
}

void seed(std::uint64_t value) {
  Registry& r = registry();
  const std::lock_guard<std::mutex> lock(r.mutex);
  r.rngState = value ^ 0x9e3779b97f4a7c15ull;  // avoid the all-zero orbit start
}

namespace {

/// Strip a trailing `<marker><digits>` modifier off @p body. Returns the
/// digits (and shortens body) only when the suffix is well-formed; anything
/// else is left in place for the kind matcher to reject with its own error.
std::optional<std::string> stripCountSuffix(std::string& body, char marker) {
  const std::size_t pos = body.rfind(marker);
  if (pos == std::string::npos || pos + 1 >= body.size()) return std::nullopt;
  std::string digits = body.substr(pos + 1);
  if (digits.find_first_not_of("0123456789") != std::string::npos) return std::nullopt;
  body.resize(pos);
  return digits;
}

std::uint64_t parseCount(const std::string& digits, const char* what,
                         const std::string& entry) {
  std::uint64_t value = 0;
  const auto [end, ec] =
      std::from_chars(digits.data(), digits.data() + digits.size(), value);
  if (ec != std::errc() || end != digits.data() + digits.size())
    throw ParseError(std::string("faultinject: bad ") + what + " count in \"" + entry +
                     "\"");
  return value;
}

}  // namespace

void armFromSpec(const std::string& spec) {
  std::size_t pos = 0;
  while (pos < spec.size()) {
    std::size_t end = spec.find(';', pos);
    if (end == std::string::npos) end = spec.size();
    const std::string entry = spec.substr(pos, end - pos);
    pos = end + 1;
    if (entry.empty()) continue;

    const std::size_t eq = entry.find('=');
    if (eq == std::string::npos || eq == 0)
      throw ParseError("faultinject: entry \"" + entry + "\" is not site=kind");
    const std::string site = entry.substr(0, eq);

    // kind[@<skip>][x<times>][%<percent>] — modifiers come off the right,
    // outermost first: `%<percent>`, then `x<times>`, then `@<skip>`.
    std::string kind = entry.substr(eq + 1);
    Plan plan;
    if (const auto digits = stripCountSuffix(kind, '%')) {
      const std::uint64_t percent = parseCount(*digits, "probability percent", entry);
      if (percent > 100)
        throw ParseError("faultinject: probability percent > 100 in \"" + entry + "\"");
      plan.probability = static_cast<double>(percent) / 100.0;
    }
    if (const auto digits = stripCountSuffix(kind, 'x'))
      plan.times = parseCount(*digits, "times", entry);
    if (const auto digits = stripCountSuffix(kind, '@'))
      plan.skip = parseCount(*digits, "skip", entry);

    if (kind == "throw") {
      plan.kind = Kind::Throw;
    } else if (kind == "badalloc") {
      plan.kind = Kind::BadAlloc;
    } else if (kind.rfind("stall:", 0) == 0) {
      plan.kind = Kind::Stall;
      const std::string ms = kind.substr(6);
      const auto [end, ec] =
          std::from_chars(ms.data(), ms.data() + ms.size(), plan.stallMillis);
      if (ec != std::errc() || end != ms.data() + ms.size() || plan.stallMillis < 0)
        throw ParseError("faultinject: bad stall millis in \"" + entry + "\"");
    } else {
      throw ParseError("faultinject: unknown kind \"" + kind +
                       "\" (want throw | badalloc | stall:<ms>, each optionally "
                       "suffixed @<skip>, x<times> and/or %<percent>)");
    }
    arm(site, plan);
  }
}

void armFromEnv() {
  static std::once_flag once;
  std::call_once(once, [] {
    const char* seedText = std::getenv("MCX_FAULTINJECT_SEED");
    if (seedText != nullptr && *seedText != '\0')
      seed(parseCount(seedText, "MCX_FAULTINJECT_SEED", seedText));
    const char* spec = std::getenv("MCX_FAULTINJECT");
    if (spec != nullptr && *spec != '\0') armFromSpec(spec);
  });
}

}  // namespace mcx::faultinject
