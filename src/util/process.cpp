#include "util/process.hpp"

#include <cstdio>
#include <cstring>

namespace mcx::proc {

namespace {

/// Parse the "<label>: <kB> kB" value off a /proc/self/status line; returns
/// 0 when the line is not the wanted label.
std::size_t kbValue(const char* line, const char* label) {
  const std::size_t len = std::strlen(label);
  if (std::strncmp(line, label, len) != 0) return 0;
  unsigned long long kb = 0;
  if (std::sscanf(line + len, " %llu", &kb) != 1) return 0;
  return static_cast<std::size_t>(kb) * 1024;
}

}  // namespace

MemoryUsage memoryUsage() noexcept {
  MemoryUsage usage;
  std::FILE* status = std::fopen("/proc/self/status", "r");
  if (status == nullptr) return usage;
  char line[256];
  while (std::fgets(line, sizeof(line), status) != nullptr) {
    if (const std::size_t rss = kbValue(line, "VmRSS:")) usage.rssBytes = rss;
    if (const std::size_t peak = kbValue(line, "VmHWM:")) usage.peakRssBytes = peak;
  }
  std::fclose(status);
  return usage;
}

}  // namespace mcx::proc
